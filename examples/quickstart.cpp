//===- examples/quickstart.cpp - Weaver in five minutes --------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Compiles the paper's running MAX-3SAT example (Fig. 5) for an FPQA,
/// prints the annotated wQASM program, verifies it with the wChecker and
/// reports the §8 metrics. Start here.
///
//===----------------------------------------------------------------------===//

#include "core/WeaverCompiler.h"
#include "qasm/Printer.h"
#include "sat/Dimacs.h"

#include <cstdio>

using namespace weaver;

int main() {
  // The running example of the paper: three 3-literal clauses over six
  // variables, [[-1,-2,-3], [4,-5,6], [3,5,-6]].
  sat::CnfFormula Formula(6, {sat::Clause{-1, -2, -3}, sat::Clause{4, -5, 6},
                              sat::Clause{3, 5, -6}});
  Formula.setName("paper-example");
  std::printf("Input formula (DIMACS):\n%s\n",
              sat::printDimacs(Formula).c_str());

  core::WeaverOptions Options;
  Options.RunChecker = true; // wChecker: pulse-to-gate + unitary check
  auto Result = core::compileWeaver(Formula, Options);
  if (!Result) {
    std::fprintf(stderr, "compilation failed: %s\n",
                 Result.message().c_str());
    return 1;
  }

  std::printf("=== wQASM program (first 40 lines) ===\n");
  std::string Wqasm = qasm::printWqasm(Result->Program);
  size_t Pos = 0;
  for (int Line = 0; Line < 40 && Pos != std::string::npos; ++Line) {
    size_t Next = Wqasm.find('\n', Pos);
    std::printf("%s\n", Wqasm.substr(Pos, Next - Pos).c_str());
    Pos = Next == std::string::npos ? Next : Next + 1;
  }
  std::printf("... (%zu statements, %zu annotations total)\n\n",
              Result->Program.Statements.size(),
              Result->Program.numAnnotations());

  std::printf("=== wOptimizer summary ===\n");
  std::printf("clause colours:        %d\n", Result->Coloring.numColors());
  std::printf("CCZ compression:       %s\n",
              Result->CompressionUsed ? "on (profitable)" : "off");
  std::printf("laser pulses:          %zu\n", Result->Stats.totalPulses());
  std::printf("  Rydberg pulses:      %zu (%zu CZ, %zu CCZ)\n",
              Result->Stats.RydbergPulses, Result->Stats.CzGates,
              Result->Stats.CczGates);
  std::printf("  Raman pulses:        %zu local + %zu global\n",
              Result->Stats.RamanLocalPulses,
              Result->Stats.RamanGlobalPulses);
  std::printf("  shuttle batches:     %zu (%zu instructions)\n",
              Result->Stats.ShuttleBatches,
              Result->Stats.ShuttleInstructions);
  std::printf("execution time:        %.3f ms\n",
              Result->Stats.Duration * 1e3);
  std::printf("estimated success:     %.4f\n", Result->Stats.Eps);
  std::printf("compile time:          %.2f ms\n\n",
              Result->CompileSeconds * 1e3);

  std::printf("=== wChecker ===\n");
  std::printf("structural check:      %s\n",
              Result->Check->StructuralOk ? "PASS" : "FAIL");
  std::printf("unitary check:         %s\n",
              !Result->Check->UnitaryChecked ? "skipped"
              : Result->Check->UnitaryOk    ? "PASS"
                                            : "FAIL");
  if (!Result->Check->Diagnostic.empty())
    std::printf("diagnostic:            %s\n",
                Result->Check->Diagnostic.c_str());
  return Result->Check->passed() ? 0 : 1;
}
