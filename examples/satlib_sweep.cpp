//===- examples/satlib_sweep.cpp - Scaling sweep over SATLIB sizes ---------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Sweeps the SATLIB-style suite sizes the paper evaluates (20..250
/// variables) through the Weaver pipeline under several QAOA
/// (gamma, beta) points, printing per-size averages — a miniature of the
/// Fig. 8b/10b/11b/12b series for quick exploration. Each sweep point is
/// compiled as one batch across the BatchCompiler's thread pool, and all
/// workers share one PassCache: the front half (colouring + zone plan)
/// and the program template are computed once per formula, then restored
/// and angle-patched for every later point. The table's last column
/// reports the measured compile-time speedup against an uncached sweep.
/// Optionally reads a real DIMACS file instead:
///   satlib_sweep path/to/instance.cnf
///
/// With --cache-file PATH the cached sweep warm-starts from the persisted
/// PassCache snapshot at PATH (when present and valid) and writes the
/// populated cache back when the sweep finishes — a second run then
/// serves every template from disk (see pipeline/PassCache.h).
///
//===----------------------------------------------------------------------===//

#include "core/BatchCompiler.h"
#include "core/WeaverCompiler.h"
#include "core/pipeline/PassCache.h"
#include "sat/Dimacs.h"
#include "sat/Generator.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

using namespace weaver;

namespace {

constexpr int Instances = 3;
constexpr int SweepPoints = 5;

int runSingleFile(const char *Path) {
  auto F = sat::parseDimacsFile(Path);
  if (!F) {
    std::fprintf(stderr, "error: %s\n", F.message().c_str());
    return 1;
  }
  core::WeaverOptions Options;
  auto R = core::compileWeaver(*F, Options);
  if (!R) {
    std::fprintf(stderr, "error: %s\n", R.message().c_str());
    return 1;
  }
  std::printf("%s: %d vars, %zu clauses -> %d colours, %zu pulses, "
              "%.3f ms exec, EPS %.3g, compiled in %.2f ms\n",
              Path, F->numVariables(), F->numClauses(),
              R->Coloring.numColors(), R->Stats.totalPulses(),
              R->Stats.Duration * 1e3, R->Stats.Eps,
              R->CompileSeconds * 1e3);
  return 0;
}

/// Compiles the batch at every sweep point; accumulates the summed
/// compile seconds per batch slot into \p CompileBySlot and returns the
/// final point's results (metrics other than compile time are identical
/// across points at fixed layers).
std::vector<baselines::BaselineResult>
runSweep(const baselines::Backend &Backend,
         const std::vector<sat::CnfFormula> &Batch,
         std::vector<double> &CompileBySlot) {
  std::vector<baselines::BaselineResult> Last;
  for (int P = 0; P < SweepPoints; ++P) {
    core::BatchOptions BOpt;
    BOpt.Qaoa.Gamma = 0.30 + 0.10 * P;
    BOpt.Qaoa.Beta = 0.20 + 0.05 * P;
    Last = core::BatchCompiler(Backend, BOpt).compileAll(Batch);
    for (size_t I = 0; I < Last.size(); ++I)
      CompileBySlot[I] += Last[I].CompileSeconds;
  }
  return Last;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string CacheFile;
  if (Argc == 3 && std::string(Argv[1]) == "--cache-file")
    CacheFile = Argv[2];
  else if (Argc > 1)
    return runSingleFile(Argv[1]);

  // One flat batch over all sizes; the pool balances the mixed instance
  // sizes dynamically.
  std::vector<sat::CnfFormula> Batch;
  for (int N : sat::SatlibSizes)
    for (int I = 1; I <= Instances; ++I)
      Batch.push_back(sat::satlibInstance(N, I));

  std::vector<double> UncachedCompile(Batch.size(), 0);
  std::vector<double> CachedCompile(Batch.size(), 0);

  baselines::WeaverBackend Uncached;
  auto Start = std::chrono::steady_clock::now();
  runSweep(Uncached, Batch, UncachedCompile);
  double WallOff = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();

  core::pipeline::PassCache Cache;
  size_t Loaded = 0;
  if (!CacheFile.empty()) {
    // A missing/stale/corrupt snapshot is just a cold start.
    if (!Cache.loadSnapshot(CacheFile))
      Loaded = Cache.size();
  }
  core::WeaverOptions WOpt;
  WOpt.Cache = &Cache;
  baselines::WeaverBackend CachedBackend(WOpt);
  Start = std::chrono::steady_clock::now();
  std::vector<baselines::BaselineResult> Results =
      runSweep(CachedBackend, Batch, CachedCompile);
  double WallOn = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  Table T({"size", "clauses", "colours", "pulses", "compile [ms]",
           "exec [ms]", "EPS", "cache speedup"});
  for (size_t S = 0; S < std::size(sat::SatlibSizes); ++S) {
    int N = sat::SatlibSizes[S];
    double Compile = 0, Exec = 0, EpsLog = 0, CompileOff = 0, CompileOn = 0;
    size_t Pulses = 0;
    int Colors = 0;
    size_t Clauses = Batch[S * Instances].numClauses();
    for (int I = 0; I < Instances; ++I) {
      size_t Slot = S * Instances + I;
      const baselines::BaselineResult &R = Results[Slot];
      if (!R.usable()) {
        std::fprintf(stderr, "error at N=%d: %s\n", N,
                     R.Diagnostic.empty() ? "instance unsupported"
                                          : R.Diagnostic.c_str());
        return 1;
      }
      Compile += CachedCompile[Slot] / (Instances * SweepPoints);
      Exec += R.ExecutionSeconds / Instances;
      EpsLog += std::log10(R.Eps) / Instances;
      Pulses += R.Pulses / Instances;
      Colors = std::max(Colors, R.Colors);
      CompileOff += UncachedCompile[Slot];
      CompileOn += CachedCompile[Slot];
    }
    T.addRow({std::to_string(N), std::to_string(Clauses),
              std::to_string(Colors), std::to_string(Pulses),
              formatf("%.2f", Compile * 1e3), formatf("%.2f", Exec * 1e3),
              formatf("1e%.1f", EpsLog),
              formatf("%.2fx", CompileOff / CompileOn)});
  }
  std::printf("%s", T.render().c_str());
  core::pipeline::PassCache::CacheStats CS = Cache.stats();
  std::printf("sweep: %zu instances x %d points on %d threads; wall "
              "%.2f s uncached vs %.2f s cached (%.2fx); template "
              "hits/misses %llu/%llu\n",
              Batch.size(), SweepPoints,
              core::BatchCompiler(Uncached).effectiveThreads(Batch.size()),
              WallOff, WallOn, WallOff / WallOn,
              static_cast<unsigned long long>(CS.ProgramHits),
              static_cast<unsigned long long>(CS.ProgramMisses));
  if (!CacheFile.empty()) {
    Status S = Cache.saveSnapshot(CacheFile);
    if (S)
      std::fprintf(stderr, "warning: cache flush failed: %s\n",
                   S.message().c_str());
    else
      std::printf("cache file %s: %zu entries loaded, %zu persisted\n",
                  CacheFile.c_str(), Loaded, Cache.size());
  }
  return 0;
}
