//===- examples/satlib_sweep.cpp - Scaling sweep over SATLIB sizes ---------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Sweeps the SATLIB-style suite sizes the paper evaluates (20..250
/// variables) through the Weaver pipeline, printing per-size averages —
/// a miniature of the Fig. 8b/10b/11b/12b series for quick exploration.
/// Optionally reads a real DIMACS file instead:
///   satlib_sweep path/to/instance.cnf
///
//===----------------------------------------------------------------------===//

#include "core/WeaverCompiler.h"
#include "sat/Dimacs.h"
#include "sat/Generator.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace weaver;

namespace {

int runSingleFile(const char *Path) {
  auto F = sat::parseDimacsFile(Path);
  if (!F) {
    std::fprintf(stderr, "error: %s\n", F.message().c_str());
    return 1;
  }
  core::WeaverOptions Options;
  auto R = core::compileWeaver(*F, Options);
  if (!R) {
    std::fprintf(stderr, "error: %s\n", R.message().c_str());
    return 1;
  }
  std::printf("%s: %d vars, %zu clauses -> %d colours, %zu pulses, "
              "%.3f ms exec, EPS %.3g, compiled in %.2f ms\n",
              Path, F->numVariables(), F->numClauses(),
              R->Coloring.numColors(), R->Stats.totalPulses(),
              R->Stats.Duration * 1e3, R->Stats.Eps,
              R->CompileSeconds * 1e3);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1)
    return runSingleFile(Argv[1]);

  Table T({"size", "clauses", "colours", "pulses", "compile [ms]",
           "exec [ms]", "EPS"});
  for (int N : sat::SatlibSizes) {
    double Compile = 0, Exec = 0, EpsLog = 0;
    size_t Pulses = 0;
    int Colors = 0;
    const int Instances = 3;
    size_t Clauses = 0;
    for (int I = 1; I <= Instances; ++I) {
      sat::CnfFormula F = sat::satlibInstance(N, I);
      Clauses = F.numClauses();
      core::WeaverOptions Options;
      auto R = core::compileWeaver(F, Options);
      if (!R) {
        std::fprintf(stderr, "error at N=%d: %s\n", N, R.message().c_str());
        return 1;
      }
      Compile += R->CompileSeconds / Instances;
      Exec += R->Stats.Duration / Instances;
      EpsLog += std::log10(R->Stats.Eps) / Instances;
      Pulses += R->Stats.totalPulses() / Instances;
      Colors = std::max(Colors, R->Coloring.numColors());
    }
    T.addRow({std::to_string(N), std::to_string(Clauses),
              std::to_string(Colors), std::to_string(Pulses),
              formatf("%.2f", Compile * 1e3), formatf("%.2f", Exec * 1e3),
              formatf("1e%.1f", EpsLog)});
  }
  std::printf("%s", T.render().c_str());
  return 0;
}
