//===- examples/satlib_sweep.cpp - Scaling sweep over SATLIB sizes ---------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Sweeps the SATLIB-style suite sizes the paper evaluates (20..250
/// variables) through the Weaver pipeline, printing per-size averages —
/// a miniature of the Fig. 8b/10b/11b/12b series for quick exploration.
/// The whole sweep is compiled as one batch across the BatchCompiler's
/// thread pool. Optionally reads a real DIMACS file instead:
///   satlib_sweep path/to/instance.cnf
///
//===----------------------------------------------------------------------===//

#include "core/BatchCompiler.h"
#include "core/WeaverCompiler.h"
#include "sat/Dimacs.h"
#include "sat/Generator.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <chrono>
#include <cmath>
#include <cstdio>

using namespace weaver;

namespace {

int runSingleFile(const char *Path) {
  auto F = sat::parseDimacsFile(Path);
  if (!F) {
    std::fprintf(stderr, "error: %s\n", F.message().c_str());
    return 1;
  }
  core::WeaverOptions Options;
  auto R = core::compileWeaver(*F, Options);
  if (!R) {
    std::fprintf(stderr, "error: %s\n", R.message().c_str());
    return 1;
  }
  std::printf("%s: %d vars, %zu clauses -> %d colours, %zu pulses, "
              "%.3f ms exec, EPS %.3g, compiled in %.2f ms\n",
              Path, F->numVariables(), F->numClauses(),
              R->Coloring.numColors(), R->Stats.totalPulses(),
              R->Stats.Duration * 1e3, R->Stats.Eps,
              R->CompileSeconds * 1e3);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1)
    return runSingleFile(Argv[1]);

  constexpr int Instances = 3;
  // One flat batch over all sizes; the pool balances the mixed instance
  // sizes dynamically.
  std::vector<sat::CnfFormula> Batch;
  for (int N : sat::SatlibSizes)
    for (int I = 1; I <= Instances; ++I)
      Batch.push_back(sat::satlibInstance(N, I));

  baselines::WeaverBackend Backend;
  core::BatchCompiler Compiler(Backend);
  auto Start = std::chrono::steady_clock::now();
  std::vector<baselines::BaselineResult> Results =
      Compiler.compileAll(Batch);
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  Table T({"size", "clauses", "colours", "pulses", "compile [ms]",
           "exec [ms]", "EPS"});
  for (size_t S = 0; S < std::size(sat::SatlibSizes); ++S) {
    int N = sat::SatlibSizes[S];
    double Compile = 0, Exec = 0, EpsLog = 0;
    size_t Pulses = 0;
    int Colors = 0;
    size_t Clauses = Batch[S * Instances].numClauses();
    for (int I = 0; I < Instances; ++I) {
      const baselines::BaselineResult &R = Results[S * Instances + I];
      if (!R.usable()) {
        std::fprintf(stderr, "error at N=%d: %s\n", N,
                     R.Diagnostic.empty() ? "instance unsupported"
                                          : R.Diagnostic.c_str());
        return 1;
      }
      Compile += R.CompileSeconds / Instances;
      Exec += R.ExecutionSeconds / Instances;
      EpsLog += std::log10(R.Eps) / Instances;
      Pulses += R.Pulses / Instances;
      Colors = std::max(Colors, R.Colors);
    }
    T.addRow({std::to_string(N), std::to_string(Clauses),
              std::to_string(Colors), std::to_string(Pulses),
              formatf("%.2f", Compile * 1e3), formatf("%.2f", Exec * 1e3),
              formatf("1e%.1f", EpsLog)});
  }
  std::printf("%s", T.render().c_str());
  std::printf("batch: %zu instances on %d threads in %.2f s\n", Batch.size(),
              Compiler.effectiveThreads(Batch.size()), Wall);
  return 0;
}
