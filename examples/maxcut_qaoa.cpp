//===- examples/maxcut_qaoa.cpp - Max-cut via QAOA on an FPQA --------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces the paper's motivating walk-through (Fig. 1): a max-cut
/// instance is encoded as a MAX-SAT formula, solved with QAOA, and the
/// measurement distribution is read back as a graph partition. The circuit
/// additionally goes through the Weaver FPQA pipeline to show the program
/// a real device would run.
///
//===----------------------------------------------------------------------===//

#include "core/WeaverCompiler.h"
#include "qaoa/Builder.h"
#include "qaoa/MaxCut.h"
#include "qaoa/Optimizer.h"
#include "sat/Evaluator.h"
#include "sim/StateVector.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace weaver;

int main() {
  // The six-vertex graph realising Fig. 1: best cut {a,b,e} vs {c,d,f}.
  qaoa::MaxCutGraph G = qaoa::paperFigure1Graph();
  const int NumVertices = G.NumVertices;
  sat::CnfFormula F = qaoa::maxCutToFormula(G);
  std::printf("max-cut graph: %d vertices, %zu edges -> %zu clauses\n",
              NumVertices, G.Edges.size(), F.numClauses());

  // Classical outer loop tunes the angles, then one ideal QAOA run
  // produces the measurement distribution of Fig. 1c.
  qaoa::OptimizerOptions OptOptions;
  OptOptions.Layers = 2;
  qaoa::QaoaParams P = qaoa::optimizeQaoaParams(F, OptOptions).Params;
  std::printf("tuned angles: gamma=%.3f beta=%.3f (p=%d)\n", P.Gamma, P.Beta,
              P.Layers);
  circuit::Circuit C = qaoa::buildQaoaCircuit(F, P);
  sim::StateVector SV(NumVertices);
  SV.applyCircuit(C);
  std::vector<double> Probs = SV.probabilities();

  std::vector<uint64_t> Order(Probs.size());
  for (uint64_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(),
            [&](uint64_t A, uint64_t B) { return Probs[A] > Probs[B]; });

  std::printf("\ntop measurement outcomes (probability, cut size):\n");
  for (int I = 0; I < 5; ++I) {
    uint64_t Bits = Order[I];
    std::printf("  ");
    for (int V = NumVertices - 1; V >= 0; --V)
      std::printf("%d", static_cast<int>((Bits >> V) & 1));
    std::printf("  p=%.4f  cut=%zu\n", Probs[Bits], G.cutSize(Bits));
  }

  // Exact optimum for reference (Fig. 1d).
  size_t BestCut = G.maxCutBruteForce();
  size_t QaoaCut = G.cutSize(Order[0]);
  std::printf("\nbest possible cut: %zu; QAOA's most likely cut: %zu\n",
              BestCut, QaoaCut);

  // Lower the same program onto the FPQA to show the deployed form.
  core::WeaverOptions Options;
  Options.Qaoa = P;
  auto R = core::compileWeaver(F, Options);
  if (!R) {
    std::fprintf(stderr, "FPQA compilation failed: %s\n",
                 R.message().c_str());
    return 1;
  }
  std::printf("\nFPQA lowering: %d colours, %zu pulses, %.3f ms execution, "
              "EPS %.4f\n",
              R->Coloring.numColors(), R->Stats.totalPulses(),
              R->Stats.Duration * 1e3, R->Stats.Eps);
  return QaoaCut + 1 >= BestCut ? 0 : 1; // near-optimal cut expected
}
