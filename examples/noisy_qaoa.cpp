//===- examples/noisy_qaoa.cpp - Optimised QAOA under noise ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The full hybrid loop of §2.1 plus a noise study: (1) the classical
/// optimiser tunes the QAOA angles on an ideal simulator, (2) the tuned
/// circuit is compiled for the FPQA with Weaver, and (3) a Monte-Carlo
/// Pauli-noise simulation of the compressed circuit is compared against
/// the analytic EPS model the evaluation uses (§8.4).
///
//===----------------------------------------------------------------------===//

#include "core/WeaverCompiler.h"
#include "qaoa/Builder.h"
#include "qaoa/Optimizer.h"
#include "sat/Evaluator.h"
#include "sat/Generator.h"
#include "sim/Noise.h"

#include <cstdio>

using namespace weaver;

int main() {
  sat::CnfFormula F = sat::RandomSatGenerator(7).generate(8, 20);
  F.setName("noisy-demo");
  sat::MaxSatOptimum Opt = sat::bruteForceMaxSat(F);
  std::printf("formula: 8 variables, 20 clauses; MAX-SAT optimum satisfies "
              "%zu\n\n",
              Opt.BestSatisfied);

  // (1) Classical parameter optimisation on the ideal simulator.
  qaoa::OptimizerOptions OptOptions;
  qaoa::OptimizedParams Tuned = qaoa::optimizeQaoaParams(F, OptOptions);
  std::printf("tuned angles: gamma=%.3f beta=%.3f  (%d evaluations)\n",
              Tuned.Params.Gamma, Tuned.Params.Beta, Tuned.Evaluations);
  std::printf("expected satisfied clauses: %.3f / %zu; optimum mass %.3f\n\n",
              Tuned.ExpectedSatisfied, F.numClauses(), Tuned.OptimumMass);

  // (2) Compile the tuned program for the FPQA.
  core::WeaverOptions WOpt;
  WOpt.Qaoa = Tuned.Params;
  WOpt.RunChecker = true;
  auto W = core::compileWeaver(F, WOpt);
  if (!W || !W->Check->passed()) {
    std::fprintf(stderr, "compilation/verification failed\n");
    return 1;
  }
  std::printf("FPQA program: %zu pulses, %.3f ms, analytic EPS %.4f "
              "(verified)\n\n",
              W->Stats.totalPulses(), W->Stats.Duration * 1e3,
              W->Stats.Eps);

  // (3) Monte-Carlo noise on the compressed logical circuit, using the
  // same per-gate-class fidelities the analytic model charges.
  qaoa::QaoaParams CP = Tuned.Params;
  CP.UseCompressedClauses = true;
  circuit::Circuit Compressed = qaoa::buildQaoaCircuit(F, CP);
  sim::NoiseModel Noise;
  Noise.OneQubitError = 1 - WOpt.Hw.RamanFidelity;
  Noise.TwoQubitError = 1 - WOpt.Hw.CzFidelity;
  Noise.ThreeQubitError = 1 - WOpt.Hw.CczFidelity;
  sim::NoisyRunResult NR = sim::simulateNoisy(Compressed, Noise, 600, 42);
  std::printf("Monte-Carlo (600 trajectories):\n");
  std::printf("  error-free fraction:   %.4f  (gate-level EPS analogue)\n",
              NR.ErrorFreeFraction);
  std::printf("  Hellinger fidelity:    %.4f  (distribution-level)\n",
              NR.HellingerFidelity);
  std::printf("\nthe Hellinger fidelity upper-bounds the error-free "
              "fraction: some injected\nPauli errors do not change the "
              "measured distribution, so the analytic EPS\nmodel (§8.4) is "
              "a conservative estimate.\n");
  return 0;
}
