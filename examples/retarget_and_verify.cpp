//===- examples/retarget_and_verify.cpp - One program, two backends --------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The retargeting story of Fig. 3: a single hardware-agnostic QAOA
/// program is compiled (a) through the superconducting path — SABRE
/// routing onto a heavy-hex device — and (b) through the Weaver FPQA path,
/// and the FPQA output is verified against the original with the wChecker.
/// The side-by-side metrics mirror the paper's §8 comparison.
///
//===----------------------------------------------------------------------===//

#include "baselines/Superconducting.h"
#include "core/WeaverCompiler.h"
#include "sat/Generator.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace weaver;

int main() {
  // A 10-variable random 3-SAT instance (small enough to eyeball).
  sat::CnfFormula F = sat::RandomSatGenerator(2024).generate(10, 30);
  F.setName("retarget-demo");
  std::printf("input: %d variables, %zu clauses\n\n", F.numVariables(),
              F.numClauses());

  // Path 1: superconducting (Qiskit-style SABRE + {U3, CZ}).
  baselines::BaselineResult SC = baselines::compileSuperconducting(F);

  // Path 2: FPQA via Weaver (colouring + shuttling + CCZ compression).
  core::WeaverOptions Options;
  Options.RunChecker = true;
  Options.Checker.MaxUnitaryQubits = 10;
  auto W = core::compileWeaver(F, Options);
  if (!W) {
    std::fprintf(stderr, "Weaver failed: %s\n", W.message().c_str());
    return 1;
  }

  Table T({"metric", "superconducting", "fpqa (weaver)"});
  auto Fmt = [](double V) { return formatf("%.4g", V); };
  T.addRow({"compile time [s]", Fmt(SC.CompileSeconds),
            Fmt(W->CompileSeconds)});
  T.addRow({"pulses / gates", std::to_string(SC.Pulses),
            std::to_string(W->Stats.totalPulses())});
  T.addRow({"SWAPs inserted", std::to_string(SC.SwapGates), "0 (shuttling)"});
  T.addRow({"execution time [s]", Fmt(SC.ExecutionSeconds),
            Fmt(W->Stats.Duration)});
  T.addRow({"EPS", Fmt(SC.Eps), Fmt(W->Stats.Eps)});
  std::printf("%s\n", T.render().c_str());

  std::printf("wChecker: structural %s, unitary %s\n",
              W->Check->StructuralOk ? "PASS" : "FAIL",
              !W->Check->UnitaryChecked ? "skipped"
              : W->Check->UnitaryOk    ? "PASS"
                                       : "FAIL");
  if (!W->Check->passed()) {
    std::fprintf(stderr, "verification failed: %s\n",
                 W->Check->Diagnostic.c_str());
    return 1;
  }
  std::printf("\nthe FPQA program provably implements the same circuit the "
              "superconducting\npath received — retargeting preserved "
              "semantics.\n");
  return 0;
}
