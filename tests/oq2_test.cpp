//===- tests/oq2_test.cpp - OpenQASM 2 front-end tests --------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Front-end correctness and robustness: grammar coverage (registers,
/// broadcast, gate definitions, qelib, expressions), the export/ingest
/// round trip back to gate-identical circuits, QAOA structure recovery,
/// and the malformed-input corpus under tests/data/oq2/bad — every file
/// must reject with a positioned diagnostic, never crash, never allocate
/// unbounded.
///
//===----------------------------------------------------------------------===//

#include "oq2/Export.h"
#include "oq2/Frontend.h"
#include "oq2/QaoaRecover.h"
#include "qaoa/Builder.h"
#include "sat/Generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

using namespace weaver;
using circuit::GateKind;

namespace {

std::string dataDir() { return std::string(WEAVER_TEST_DATA_DIR) + "/oq2"; }

circuit::Circuit parseOrDie(const std::string &Source) {
  Expected<circuit::Circuit> C = oq2::parseOq2(Source);
  EXPECT_TRUE(C.ok()) << C.message();
  return C.ok() ? C.take() : circuit::Circuit(0);
}

void expectRejects(const std::string &Source, const std::string &Substring) {
  Expected<circuit::Circuit> C = oq2::parseOq2(Source);
  ASSERT_FALSE(C.ok()) << "accepted: " << Source;
  EXPECT_NE(C.message().find(Substring), std::string::npos)
      << "message '" << C.message() << "' lacks '" << Substring << "'";
  EXPECT_NE(C.message().find("line "), std::string::npos)
      << "diagnostic is not positioned: " << C.message();
}

bool sameGates(const circuit::Circuit &A, const circuit::Circuit &B) {
  if (A.numQubits() != B.numQubits() || A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    const circuit::Gate &X = A.gate(I), &Y = B.gate(I);
    if (X.kind() != Y.kind())
      return false;
    for (unsigned Q = 0; Q < X.numQubits(); ++Q)
      if (X.qubit(Q) != Y.qubit(Q))
        return false;
    for (unsigned P = 0; P < X.numParams(); ++P)
      if (X.param(P) != Y.param(P))
        return false;
  }
  return true;
}

} // namespace

// --- grammar coverage ----------------------------------------------------

TEST(Oq2, ParsesMinimalProgram) {
  circuit::Circuit C = parseOrDie("OPENQASM 2.0;\n"
                                  "qreg q[2];\n"
                                  "h q[0];\n"
                                  "cx q[0], q[1];\n");
  ASSERT_EQ(C.size(), 2u);
  EXPECT_EQ(C.gate(0).kind(), GateKind::H);
  EXPECT_EQ(C.gate(1).kind(), GateKind::CX);
  EXPECT_EQ(C.gate(1).qubit(0), 0);
  EXPECT_EQ(C.gate(1).qubit(1), 1);
}

TEST(Oq2, LaysOutRegistersInDeclarationOrder) {
  circuit::Circuit C = parseOrDie("OPENQASM 2.0;\n"
                                  "qreg a[2];\n"
                                  "qreg b[3];\n"
                                  "x a[1];\n"
                                  "x b[0];\n"
                                  "x b[2];\n");
  ASSERT_EQ(C.numQubits(), 5);
  EXPECT_EQ(C.gate(0).qubit(0), 1);
  EXPECT_EQ(C.gate(1).qubit(0), 2);
  EXPECT_EQ(C.gate(2).qubit(0), 4);
}

TEST(Oq2, BroadcastsWholeRegisterOperands) {
  circuit::Circuit C = parseOrDie("OPENQASM 2.0;\n"
                                  "qreg a[3];\n"
                                  "qreg b[3];\n"
                                  "h a;\n"
                                  "cx a, b;\n"
                                  "cx a[0], b;\n");
  // h a -> 3 gates; cx a,b -> elementwise; cx a[0],b broadcasts the
  // indexed operand against the register... which aliases on b? No:
  // a[0] stays fixed while b sweeps, so operands stay distinct.
  ASSERT_EQ(C.size(), 9u);
  EXPECT_EQ(C.gate(3).qubit(0), 0);
  EXPECT_EQ(C.gate(3).qubit(1), 3);
  EXPECT_EQ(C.gate(4).qubit(0), 1);
  EXPECT_EQ(C.gate(4).qubit(1), 4);
  EXPECT_EQ(C.gate(6).qubit(0), 0);
  EXPECT_EQ(C.gate(6).qubit(1), 3);
  EXPECT_EQ(C.gate(8).qubit(0), 0);
  EXPECT_EQ(C.gate(8).qubit(1), 5);
}

TEST(Oq2, ExpandsUserGateDefinitions) {
  circuit::Circuit C = parseOrDie("OPENQASM 2.0;\n"
                                  "qreg q[2];\n"
                                  "gate foo(t) a, b { rz(t * 2) a; cx a, b; }\n"
                                  "foo(0.25) q[1], q[0];\n");
  ASSERT_EQ(C.size(), 2u);
  EXPECT_EQ(C.gate(0).kind(), GateKind::RZ);
  EXPECT_EQ(C.gate(0).qubit(0), 1);
  EXPECT_EQ(C.gate(0).param(0), 0.5);
  EXPECT_EQ(C.gate(1).kind(), GateKind::CX);
  EXPECT_EQ(C.gate(1).qubit(0), 1);
  EXPECT_EQ(C.gate(1).qubit(1), 0);
}

TEST(Oq2, QelibGatesLowerToNativeSequences) {
  circuit::Circuit C = parseOrDie("OPENQASM 2.0;\n"
                                  "include \"qelib1.inc\";\n"
                                  "qreg q[2];\n"
                                  "sx q[0];\n"
                                  "u1(0.5) q[1];\n");
  // sx = sdg h sdg; u1(l) = u3(0,0,l).
  ASSERT_EQ(C.size(), 4u);
  EXPECT_EQ(C.gate(0).kind(), GateKind::Sdg);
  EXPECT_EQ(C.gate(1).kind(), GateKind::H);
  EXPECT_EQ(C.gate(2).kind(), GateKind::Sdg);
  EXPECT_EQ(C.gate(3).kind(), GateKind::U3);
  EXPECT_EQ(C.gate(3).param(2), 0.5);
}

TEST(Oq2, NativeGatesNeedNoInclude) {
  // The native-first design: every GateKind mnemonic parses without the
  // qelib include, so exported circuits are self-contained.
  circuit::Circuit C = parseOrDie("OPENQASM 2.0;\n"
                                  "qreg q[3];\n"
                                  "rzz(0.5) q[0], q[1];\n"
                                  "ccz q[0], q[1], q[2];\n"
                                  "u3(0.1, 0.2, 0.3) q[2];\n");
  ASSERT_EQ(C.size(), 3u);
  EXPECT_EQ(C.gate(0).kind(), GateKind::RZZ);
  EXPECT_EQ(C.gate(1).kind(), GateKind::CCZ);
  EXPECT_EQ(C.gate(2).kind(), GateKind::U3);
}

TEST(Oq2, EvaluatesParameterExpressions) {
  circuit::Circuit C = parseOrDie("OPENQASM 2.0;\n"
                                  "qreg q[1];\n"
                                  "rz(pi / 2) q[0];\n"
                                  "rz(-(1 + 2) * 2 ^ 2) q[0];\n"
                                  "rz(cos(0) + sin(0)) q[0];\n"
                                  "rz(sqrt(2) * ln(exp(1))) q[0];\n");
  ASSERT_EQ(C.size(), 4u);
  EXPECT_DOUBLE_EQ(C.gate(0).param(0), M_PI / 2);
  EXPECT_DOUBLE_EQ(C.gate(1).param(0), -12.0);
  EXPECT_DOUBLE_EQ(C.gate(2).param(0), 1.0);
  EXPECT_DOUBLE_EQ(C.gate(3).param(0), std::sqrt(2.0));
}

TEST(Oq2, MeasureAndBarrierLower) {
  circuit::Circuit C = parseOrDie("OPENQASM 2.0;\n"
                                  "qreg q[2];\n"
                                  "creg c[2];\n"
                                  "barrier q;\n"
                                  "measure q -> c;\n");
  ASSERT_EQ(C.size(), 3u);
  EXPECT_EQ(C.gate(0).kind(), GateKind::Barrier);
  EXPECT_EQ(C.gate(1).kind(), GateKind::Measure);
  EXPECT_EQ(C.gate(2).kind(), GateKind::Measure);
}

// --- hostile input -------------------------------------------------------

TEST(Oq2, RejectsHostileShapesWithPositionedDiagnostics) {
  expectRejects("OPENQASM 2.0;\nqreg q[1];\nrz(1.2.3) q[0];\n",
                "invalid numeric literal");
  expectRejects("OPENQASM 2.0;\nqreg q[1];\nrz(9e999999999) q[0];\n",
                "invalid numeric literal");
  expectRejects(std::string("OPENQASM 2.0;\nqreg q[1];\nh q[0];\n\0x", 35),
                "NUL byte");
  expectRejects("OPENQASM 2.0;\nqreg q[9999999999];\n", "qubit budget");
  expectRejects("OPENQASM 2.0;\nqreg q[1];\ngate f a { f a; }\n",
                "undefined gate 'f'");
  expectRejects("OPENQASM 2.0;\nqreg q[1];\nnope q[0];\n", "unknown gate");
  expectRejects("OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n", "takes 2 qubit");
  expectRejects("OPENQASM 2.0;\nqreg q[1];\nrz() q[0];\n",
                "takes 1 parameter");
  expectRejects("OPENQASM 2.0;\nqreg q[1];\nopaque mys a;\nmys q[0];\n",
                "opaque");
  expectRejects("OPENQASM 2.0;\nqreg q[2];\nqreg q[3];\n", "redeclared");
  expectRejects("OPENQASM 2.0;\nqreg q[1];\nrz(ln(0)) q[0];\n", "finite");
  expectRejects("OPENQASM 2.0;\nqreg q[1];\nh q[0]", "expected ';'");
  expectRejects("qreg q[1];\n", "OPENQASM");
}

TEST(Oq2, RejectsSourceOverSizeCapWithoutParsing) {
  oq2::Oq2Limits Limits;
  Limits.MaxSourceBytes = 64;
  std::string Big(65, 'x');
  Expected<circuit::Circuit> C = oq2::parseOq2(Big, "big", Limits);
  ASSERT_FALSE(C.ok());
  EXPECT_NE(C.message().find("exceeds"), std::string::npos);
}

TEST(Oq2, MalformedCorpusRejectsCleanly) {
  size_t Count = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(dataDir() + "/bad")) {
    SCOPED_TRACE(Entry.path().string());
    Expected<circuit::Circuit> C = oq2::parseOq2File(Entry.path().string());
    EXPECT_FALSE(C.ok()) << "hostile file accepted";
    EXPECT_FALSE(C.message().empty());
    // Every diagnostic names the file.
    EXPECT_NE(C.message().find(Entry.path().filename().string()),
              std::string::npos)
        << C.message();
    ++Count;
  }
  EXPECT_GE(Count, 20u) << "malformed corpus went missing";
}

TEST(Oq2, GoodCorpusParses) {
  size_t Count = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(dataDir() + "/good")) {
    SCOPED_TRACE(Entry.path().string());
    Expected<circuit::Circuit> C = oq2::parseOq2File(Entry.path().string());
    EXPECT_TRUE(C.ok()) << C.message();
    ++Count;
  }
  EXPECT_GE(Count, 4u);
}

// --- export / ingest round trip ------------------------------------------

TEST(Oq2, ExportRoundTripsGateForGate) {
  sat::CnfFormula F = sat::RandomSatGenerator(7).generate(8, 16);
  for (bool Compressed : {false, true}) {
    qaoa::QaoaParams P;
    P.Layers = 2;
    P.Measure = true;
    P.UseCompressedClauses = Compressed;
    circuit::Circuit Built = qaoa::buildQaoaCircuit(F, P);
    Expected<circuit::Circuit> Reparsed =
        oq2::parseOq2(oq2::printOpenQasm2(Built));
    ASSERT_TRUE(Reparsed.ok()) << Reparsed.message();
    EXPECT_TRUE(sameGates(Built, *Reparsed));
  }
}

// --- QAOA structure recovery ---------------------------------------------

TEST(Oq2, RecoversQaoaStructureBitExactly) {
  for (uint64_t Seed : {3u, 7u, 21u}) {
    sat::CnfFormula F = sat::RandomSatGenerator(Seed).generate(10, 21);
    for (bool Compressed : {false, true}) {
      SCOPED_TRACE("seed " + std::to_string(Seed) +
                   (Compressed ? " compressed" : " ladder"));
      qaoa::QaoaParams P;
      P.Gamma = 0.6125;
      P.Beta = 0.2875;
      P.Layers = 3;
      P.Measure = true;
      P.UseCompressedClauses = Compressed;
      circuit::Circuit Built = qaoa::buildQaoaCircuit(F, P);
      // The full detour: circuit -> text -> circuit -> (formula, params).
      Expected<circuit::Circuit> Ingested =
          oq2::parseOq2(oq2::printOpenQasm2(Built));
      ASSERT_TRUE(Ingested.ok()) << Ingested.message();
      Expected<oq2::RecoveredQaoa> R = oq2::recoverQaoa(*Ingested);
      ASSERT_TRUE(R.ok()) << R.message();
      EXPECT_EQ(R->Params.Gamma, P.Gamma);
      EXPECT_EQ(R->Params.Beta, P.Beta);
      EXPECT_EQ(R->Params.Layers, P.Layers);
      EXPECT_EQ(R->Params.Measure, P.Measure);
      EXPECT_EQ(R->Params.UseCompressedClauses, P.UseCompressedClauses);
      ASSERT_EQ(R->Formula.numVariables(), F.numVariables());
      ASSERT_EQ(R->Formula.numClauses(), F.numClauses());
      for (size_t I = 0; I < F.numClauses(); ++I) {
        ASSERT_EQ(R->Formula.clause(I).size(), F.clause(I).size());
        for (size_t L = 0; L < F.clause(I).size(); ++L)
          EXPECT_EQ(R->Formula.clause(I)[L].dimacs(),
                    F.clause(I)[L].dimacs());
      }
    }
  }
}

TEST(Oq2, RecoveryHandlesShortClausesAndSingleLayer) {
  sat::CnfFormula F(4, {sat::Clause{-1}, sat::Clause{2, -3},
                        sat::Clause{1, 3, -4}});
  qaoa::QaoaParams P;
  circuit::Circuit Built = qaoa::buildQaoaCircuit(F, P);
  Expected<oq2::RecoveredQaoa> R = oq2::recoverQaoa(Built);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(R->Formula.numClauses(), 3u);
  EXPECT_EQ(R->Formula.clause(0).size(), 1u);
  EXPECT_EQ(R->Formula.clause(1).size(), 2u);
  EXPECT_EQ(R->Formula.clause(2).size(), 3u);
  EXPECT_EQ(R->Params.Layers, 1);
  EXPECT_FALSE(R->Params.Measure);
}

TEST(Oq2, RecoveryRejectsNonQaoaCircuits) {
  Expected<circuit::Circuit> Bell =
      oq2::parseOq2File(dataDir() + "/good/bell.qasm");
  ASSERT_TRUE(Bell.ok()) << Bell.message();
  EXPECT_FALSE(oq2::recoverQaoa(*Bell).ok());

  circuit::Circuit Tweaked(2);
  Tweaked.h(0).h(1).rz(-0.35, 0).rx(0.6, 0).rx(0.7, 1);
  // Mixer angles differ across qubits: not a builder circuit.
  EXPECT_FALSE(oq2::recoverQaoa(Tweaked).ok());
}

TEST(Oq2, RecoveryDisambiguatesAdjacentUnitClauses) {
  // Two unit clauses produce two consecutive equal-angle RZ gates — the
  // same surface shape as one binary clause's leading run. The
  // reconstruct-and-compare step must split them correctly.
  sat::CnfFormula F(2, {sat::Clause{-1}, sat::Clause{-2}});
  qaoa::QaoaParams P;
  circuit::Circuit Built = qaoa::buildQaoaCircuit(F, P);
  Expected<oq2::RecoveredQaoa> R = oq2::recoverQaoa(Built);
  ASSERT_TRUE(R.ok()) << R.message();
  ASSERT_EQ(R->Formula.numClauses(), 2u);
  EXPECT_EQ(R->Formula.clause(0).size(), 1u);
  EXPECT_EQ(R->Formula.clause(1).size(), 1u);
}
