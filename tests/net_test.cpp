//===- tests/net_test.cpp - Socket transport tests ------------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The transport contract: every frame codec round-trips and rejects
/// hostile payloads (truncated, trailing bytes, out-of-range fields);
/// FrameParser reassembles byte-dribbled streams and poisons on corrupt
/// length prefixes; the serve-mode line parser shares the frame
/// validation; and an in-process net::Server enforces deadlines,
/// admission shedding, per-connection caps, slow-client disconnects,
/// cancellation, graceful drain, and byte-identity of served wQASM vs a
/// direct compile — including under seeded fault injection. The SIGTERM
/// subprocess drain (exactly-once resolution plus a loadable cache
/// snapshot) runs against the real weaver_serve binary.
///
//===----------------------------------------------------------------------===//

#include "baselines/Backend.h"
#include "core/pipeline/PassCache.h"
#include "net/Client.h"
#include "net/Server.h"
#include "sat/Dimacs.h"
#include "sat/Generator.h"

#include "TestPaths.h"

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <thread>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace weaver;
using namespace weaver::net;

namespace {

/// Wait bound for anything asynchronous; far above any real compile so a
/// hit means a lost wakeup or deadlock, not a slow machine.
constexpr double WaitSeconds = 120.0;

CompileFrame satlibRequest(uint64_t Id, int Vars = 20, int Index = 1) {
  CompileFrame F;
  F.RequestId = Id;
  F.NumVars = Vars;
  F.Index = Index;
  return F;
}

/// Direct (no service, no cache) compile of the same satlib instance a
/// request names — the byte-identity reference.
std::string directWqasm(int Vars, int Index) {
  baselines::WeaverBackend Direct;
  return Direct
      .compileFull(sat::satlibInstance(Vars, Index), qaoa::QaoaParams())
      .Wqasm;
}

/// An in-process server on an ephemeral port, its poll loop on a
/// background thread. Destruction requests a drain and joins.
class TestServer {
public:
  explicit TestServer(ServerOptions Options = ServerOptions()) {
    Options.Port = 0;
    Server.emplace(Options);
    Status S = Server->start();
    EXPECT_FALSE(S) << S.message();
    Loop = std::thread([this]() { RunStatus = Server->run(); });
  }
  ~TestServer() { stop(); }

  void stop() {
    if (!Loop.joinable())
      return;
    Server->requestStop();
    Loop.join();
    EXPECT_FALSE(RunStatus) << RunStatus.message();
  }

  uint16_t port() const { return Server->port(); }
  net::Server &operator*() { return *Server; }
  net::Server *operator->() { return &*Server; }

private:
  std::optional<net::Server> Server;
  std::thread Loop;
  Status RunStatus;
};

Client makeClient(const TestServer &S, uint64_t Seed = 1) {
  ClientOptions Opt;
  Opt.Port = S.port();
  Opt.Seed = Seed;
  return Client(Opt);
}

} // namespace

// --- Frame codec round-trips ---------------------------------------------

TEST(NetProtocol, CompileFrameRoundTripsSatlib) {
  CompileFrame F;
  F.RequestId = 0xDEADBEEFCAFEF00DULL;
  F.Kind = baselines::BackendKind::Atomique;
  F.Priority = -42;
  F.DeadlineMs = 1500;
  F.Gamma = 1.25;
  F.Beta = -0.75;
  F.Layers = 3;
  F.Measure = true;
  F.Compressed = true;
  F.NumVars = 75;
  F.Index = 17;

  std::string Bytes = encodeCompile(F);
  FrameParser P(MaxRequestFrameBytes);
  ASSERT_TRUE(P.feed(Bytes.data(), Bytes.size()));
  Frame Out;
  ASSERT_TRUE(P.next(Out));
  EXPECT_EQ(Out.Type, FrameType::CompileRequest);

  auto D = decodeCompile(Out.Payload);
  ASSERT_TRUE(D.ok()) << D.message();
  EXPECT_EQ(D->RequestId, F.RequestId);
  EXPECT_EQ(D->Kind, F.Kind);
  EXPECT_EQ(D->Priority, F.Priority);
  EXPECT_EQ(D->DeadlineMs, F.DeadlineMs);
  EXPECT_EQ(D->Gamma, F.Gamma);
  EXPECT_EQ(D->Beta, F.Beta);
  EXPECT_EQ(D->Layers, F.Layers);
  EXPECT_TRUE(D->Measure);
  EXPECT_TRUE(D->Compressed);
  EXPECT_EQ(D->Source, FormulaSource::Satlib);
  EXPECT_EQ(D->NumVars, F.NumVars);
  EXPECT_EQ(D->Index, F.Index);
}

TEST(NetProtocol, CompileFrameRoundTripsDimacs) {
  CompileFrame F;
  F.RequestId = 7;
  F.Source = FormulaSource::Dimacs;
  F.Dimacs = sat::printDimacs(sat::satlibInstance(20, 2));

  std::string Bytes = encodeCompile(F);
  Frame Out;
  FrameParser P(MaxRequestFrameBytes);
  ASSERT_TRUE(P.feed(Bytes.data(), Bytes.size()));
  ASSERT_TRUE(P.next(Out));
  auto D = decodeCompile(Out.Payload);
  ASSERT_TRUE(D.ok()) << D.message();
  EXPECT_EQ(D->Source, FormulaSource::Dimacs);
  EXPECT_EQ(D->Dimacs, F.Dimacs);
}

TEST(NetProtocol, ResultFrameRoundTrips) {
  ResultFrame R;
  R.RequestId = 99;
  R.Code = ResponseCode::RetryLater;
  R.BackoffMs = 250;
  R.QueueSeconds = 0.5;
  R.CompileSeconds = 1.5;
  R.CacheTier = 2;
  R.Pulses = 123456789;
  R.Diagnostic = "queue full";
  R.Wqasm = std::string("pulse data \0 with NUL", 21);

  std::string Bytes = encodeResult(R);
  Frame Out;
  FrameParser P(MaxResponseFrameBytes);
  ASSERT_TRUE(P.feed(Bytes.data(), Bytes.size()));
  ASSERT_TRUE(P.next(Out));
  EXPECT_EQ(Out.Type, FrameType::Result);
  auto D = decodeResult(Out.Payload);
  ASSERT_TRUE(D.ok()) << D.message();
  EXPECT_EQ(D->RequestId, R.RequestId);
  EXPECT_EQ(D->Code, ResponseCode::RetryLater);
  EXPECT_EQ(D->BackoffMs, 250u);
  EXPECT_EQ(D->Pulses, R.Pulses);
  EXPECT_EQ(D->Diagnostic, R.Diagnostic);
  EXPECT_EQ(D->Wqasm, R.Wqasm);
}

TEST(NetProtocol, StatsCancelErrorGoingAwayRoundTrip) {
  StatsFrame S;
  S.Counters = {{"accepted", 5}, {"shed", 2}};
  S.Text = "table";
  auto SD = decodeStats(std::string_view(encodeStats(S))
                            .substr(FrameHeaderBytes));
  ASSERT_TRUE(SD.ok()) << SD.message();
  EXPECT_EQ(SD->counter("accepted"), 5u);
  EXPECT_EQ(SD->counter("shed"), 2u);
  EXPECT_EQ(SD->counter("missing"), 0u);
  EXPECT_EQ(SD->Text, "table");

  CancelFrame C;
  C.RequestId = 31337;
  auto CD = decodeCancel(std::string_view(encodeCancel(C))
                             .substr(FrameHeaderBytes));
  ASSERT_TRUE(CD.ok()) << CD.message();
  EXPECT_EQ(CD->RequestId, 31337u);

  ErrorFrame E;
  E.Code = ResponseCode::Malformed;
  E.Message = "bad frame";
  auto ED = decodeError(std::string_view(encodeError(E))
                            .substr(FrameHeaderBytes));
  ASSERT_TRUE(ED.ok()) << ED.message();
  EXPECT_EQ(ED->Code, ResponseCode::Malformed);
  EXPECT_EQ(ED->Message, "bad frame");

  auto GD = decodeGoingAway(
      std::string_view(encodeGoingAway("draining")).substr(FrameHeaderBytes));
  ASSERT_TRUE(GD.ok()) << GD.message();
  EXPECT_EQ(*GD, "draining");
}

// --- Hostile payloads -----------------------------------------------------

TEST(NetProtocol, DecodeRejectsTruncatedAndOversuppliedPayloads) {
  std::string Bytes = encodeCompile(satlibRequest(1));
  std::string Payload = Bytes.substr(FrameHeaderBytes);

  // Every proper prefix must fail cleanly, never crash or misparse.
  for (size_t Len = 0; Len < Payload.size(); ++Len)
    EXPECT_FALSE(decodeCompile(std::string_view(Payload.data(), Len)).ok())
        << "prefix of " << Len << " bytes decoded";

  // Trailing garbage is an error too: a frame is exactly one request.
  EXPECT_FALSE(decodeCompile(Payload + "x").ok());
  EXPECT_FALSE(decodeResult(std::string_view("\x01", 1)).ok());
  EXPECT_FALSE(decodeCancel(std::string_view()).ok());
  EXPECT_FALSE(decodeStats(std::string_view("\xff\xff\xff\xff", 4)).ok());
}

TEST(NetProtocol, DecodeRejectsOutOfRangeFields) {
  auto Corrupt = [](CompileFrame F) {
    std::string Bytes = encodeCompile(F);
    return decodeCompile(
        std::string_view(Bytes).substr(FrameHeaderBytes));
  };

  CompileFrame F = satlibRequest(1);
  F.NumVars = static_cast<int32_t>(MaxRequestVars) + 1;
  EXPECT_FALSE(Corrupt(F).ok());
  F = satlibRequest(1);
  F.NumVars = 0;
  EXPECT_FALSE(Corrupt(F).ok());
  F = satlibRequest(1);
  F.Index = 0; // satlib indices are 1-based
  EXPECT_FALSE(Corrupt(F).ok());
  F = satlibRequest(1);
  F.Layers = 0;
  EXPECT_FALSE(Corrupt(F).ok());
  F = satlibRequest(1);
  F.Layers = static_cast<int32_t>(MaxRequestLayers) + 1;
  EXPECT_FALSE(Corrupt(F).ok());
  F = satlibRequest(1);
  F.Gamma = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(Corrupt(F).ok());
  F = satlibRequest(1);
  F.Beta = std::nan("");
  EXPECT_FALSE(Corrupt(F).ok());
  F = satlibRequest(1);
  F.Priority = static_cast<int32_t>(MaxRequestPriority) + 1;
  EXPECT_FALSE(Corrupt(F).ok());
}

// --- FrameParser ----------------------------------------------------------

TEST(NetFrameParser, ReassemblesByteDribbledStream) {
  std::string Stream = encodeCompile(satlibRequest(1)) + encodePing() +
                       encodeCancel(CancelFrame{2});
  FrameParser P(MaxRequestFrameBytes);
  std::vector<FrameType> Seen;
  Frame F;
  for (char C : Stream) {
    ASSERT_TRUE(P.feed(&C, 1));
    while (P.next(F))
      Seen.push_back(F.Type);
  }
  ASSERT_EQ(Seen.size(), 3u);
  EXPECT_EQ(Seen[0], FrameType::CompileRequest);
  EXPECT_EQ(Seen[1], FrameType::Ping);
  EXPECT_EQ(Seen[2], FrameType::CancelRequest);
  EXPECT_EQ(P.pendingBytes(), 0u);
  EXPECT_FALSE(P.poisoned());
}

TEST(NetFrameParser, PoisonsOnOversizedAndZeroLengthPrefixes) {
  // Length 0xFFFFFFFF: a hostile allocation request.
  FrameParser P(MaxRequestFrameBytes);
  std::string Huge("\xff\xff\xff\xff", 4);
  EXPECT_FALSE(P.feed(Huge.data(), Huge.size()));
  EXPECT_TRUE(P.poisoned());
  Frame F;
  EXPECT_FALSE(P.next(F));
  // Once poisoned, further feeds stay rejected.
  EXPECT_FALSE(P.feed("x", 1));

  // Length 0: cannot even hold the type byte; framing is lost.
  FrameParser Z(MaxRequestFrameBytes);
  std::string Zero("\x00\x00\x00\x00", 4);
  EXPECT_FALSE(Z.feed(Zero.data(), Zero.size()));
  EXPECT_TRUE(Z.poisoned());
}

TEST(NetFrameParser, PartialFrameStaysPending) {
  std::string Bytes = encodeCompile(satlibRequest(1));
  FrameParser P(MaxRequestFrameBytes);
  ASSERT_TRUE(P.feed(Bytes.data(), Bytes.size() - 1));
  Frame F;
  EXPECT_FALSE(P.next(F));
  EXPECT_GT(P.pendingBytes(), 0u);
  ASSERT_TRUE(P.feed(Bytes.data() + Bytes.size() - 1, 1));
  EXPECT_TRUE(P.next(F));
  EXPECT_EQ(P.pendingBytes(), 0u);
}

// --- Serve-mode line parser ----------------------------------------------

TEST(NetServeCommand, ParsesValidLines) {
  auto C = parseServeCommand("compile weaver 20 3");
  ASSERT_TRUE(C.ok()) << C.message();
  EXPECT_EQ(C->Act, ServeCommand::Action::Compile);
  EXPECT_EQ(C->Compile.NumVars, 20);
  EXPECT_EQ(C->Compile.Index, 3);

  C = parseServeCommand("compile atomique 50 2 0.9 0.1 5 2500");
  ASSERT_TRUE(C.ok()) << C.message();
  EXPECT_EQ(C->Compile.Kind, baselines::BackendKind::Atomique);
  EXPECT_EQ(C->Compile.Gamma, 0.9);
  EXPECT_EQ(C->Compile.Priority, 5);
  EXPECT_EQ(C->Compile.DeadlineMs, 2500u);

  C = parseServeCommand("cancel 42");
  ASSERT_TRUE(C.ok()) << C.message();
  EXPECT_EQ(C->Act, ServeCommand::Action::Cancel);
  EXPECT_EQ(C->CancelId, 42u);

  EXPECT_EQ(parseServeCommand("stats")->Act, ServeCommand::Action::Stats);
  EXPECT_EQ(parseServeCommand("quit")->Act, ServeCommand::Action::Quit);
  EXPECT_EQ(parseServeCommand("  exit  ")->Act, ServeCommand::Action::Quit);
}

TEST(NetServeCommand, RejectsHostileLines) {
  // Unknown command / wrong arity.
  EXPECT_FALSE(parseServeCommand("explode").ok());
  EXPECT_FALSE(parseServeCommand("compile weaver").ok());
  EXPECT_FALSE(parseServeCommand("compile weaver 20 3 0.7").ok());
  // Unknown backend.
  EXPECT_FALSE(parseServeCommand("compile quantum 20 3").ok());
  // Overflowing / garbage / out-of-range numerics.
  EXPECT_FALSE(
      parseServeCommand("compile weaver 99999999999999999999 1").ok());
  EXPECT_FALSE(parseServeCommand("compile weaver twenty 1").ok());
  EXPECT_FALSE(parseServeCommand("compile weaver 20 1 nan 0.3").ok());
  EXPECT_FALSE(parseServeCommand("compile weaver 20 1 inf 0.3").ok());
  EXPECT_FALSE(parseServeCommand("compile weaver 0 1").ok());
  EXPECT_FALSE(parseServeCommand("cancel -1").ok());
  EXPECT_FALSE(parseServeCommand("cancel 1x").ok());
  // Embedded NUL.
  EXPECT_FALSE(parseServeCommand(std::string_view("stats\0", 6)).ok());
  // A line past the cap, even if otherwise well-formed.
  std::string Long = "compile weaver 20 1 ";
  Long.append(MaxCommandLineBytes, ' ');
  EXPECT_FALSE(parseServeCommand(Long).ok());
  // Empty is not a command.
  EXPECT_FALSE(parseServeCommand("").ok());
}

// --- Fault config ---------------------------------------------------------

TEST(NetFaultConfig, ParsesAndValidates) {
  auto C = parseFaultConfig("seed=7,kill=0.02,partial=0.3,delay=0.2,"
                            "truncate=0.01");
  ASSERT_TRUE(C.ok()) << C.message();
  EXPECT_EQ(C->Seed, 7u);
  EXPECT_DOUBLE_EQ(C->KillProb, 0.02);
  EXPECT_DOUBLE_EQ(C->TruncateProb, 0.01);
  EXPECT_TRUE(C->enabled());

  EXPECT_FALSE(parseFaultConfig("kill=1.5").ok());   // probability > 1
  EXPECT_FALSE(parseFaultConfig("kill=-0.1").ok());  // negative
  EXPECT_FALSE(parseFaultConfig("kill=abc").ok());   // garbage
  EXPECT_FALSE(parseFaultConfig("boom=0.5").ok());   // unknown key
  EXPECT_FALSE(parseFaultConfig("kill").ok());       // missing value
}

TEST(NetFaultInjector, SameSeedSameDecisions) {
  FaultConfig Config;
  Config.Seed = 1234;
  Config.KillProb = 0.1;
  Config.PartialWriteProb = 0.5;
  Config.DelayReadProb = 0.3;
  Config.TruncateProb = 0.2;
  FaultInjector A(Config), B(Config);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_EQ(A.shouldKill(), B.shouldKill());
    EXPECT_EQ(A.shouldDelayRead(), B.shouldDelayRead());
    EXPECT_EQ(A.clampWrite(4096), B.clampWrite(4096));
    EXPECT_EQ(A.clampRead(4096), B.clampRead(4096));
  }
}

// --- In-process server: happy path and byte identity ----------------------

TEST(NetServer, CompileRoundTripIsByteIdenticalToDirect) {
  TestServer S;
  Client C = makeClient(S);
  ASSERT_FALSE(C.connect());

  auto R = C.compileSync(satlibRequest(1, 20, 1));
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(R->Code, ResponseCode::Ok) << R->Diagnostic;
  EXPECT_GT(R->Pulses, 0u);
  EXPECT_EQ(R->Wqasm, directWqasm(20, 1));

  // The same formula shipped as DIMACS text must compile to the same
  // bytes: the two formula sources converge before the pipeline.
  CompileFrame D;
  D.RequestId = 2;
  D.Source = FormulaSource::Dimacs;
  D.Dimacs = sat::printDimacs(sat::satlibInstance(20, 1));
  auto RD = C.compileSync(D);
  ASSERT_TRUE(RD.ok()) << RD.message();
  EXPECT_EQ(RD->Code, ResponseCode::Ok) << RD->Diagnostic;
  EXPECT_EQ(RD->Wqasm, R->Wqasm);
}

TEST(NetServer, PingStatsAndMalformedDimacs) {
  TestServer S;
  Client C = makeClient(S);
  ASSERT_FALSE(C.connect());

  ASSERT_FALSE(C.sendPing());
  auto Pong = C.readFrame(WaitSeconds);
  ASSERT_TRUE(Pong.ok()) << Pong.message();
  EXPECT_EQ(Pong->Type, FrameType::Pong);

  // A request with an unparseable formula fails that request only; the
  // connection (and the next request on it) survives.
  CompileFrame Bad;
  Bad.RequestId = 5;
  Bad.Source = FormulaSource::Dimacs;
  Bad.Dimacs = "p cnf 3 1\n1 2 999999999999999999 0\n";
  auto RB = C.compileSync(Bad);
  ASSERT_TRUE(RB.ok()) << RB.message();
  EXPECT_EQ(RB->Code, ResponseCode::Failed);
  EXPECT_FALSE(RB->Diagnostic.empty());

  auto R = C.compileSync(satlibRequest(6));
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(R->Code, ResponseCode::Ok) << R->Diagnostic;

  auto Stats = C.stats();
  ASSERT_TRUE(Stats.ok()) << Stats.message();
  EXPECT_GE(Stats->counter("accepted"), 1u);
  EXPECT_GE(Stats->counter("results_sent"), 2u);
  // Only the valid request reached the service; the bad DIMACS failed
  // at the transport's parse step.
  EXPECT_GE(Stats->counter("completed"), 1u);
  EXPECT_FALSE(Stats->Text.empty());
}

// --- In-process server: hostile clients -----------------------------------

TEST(NetServer, MalformedFrameGetsErrorThenDisconnect) {
  TestServer S;
  Client C = makeClient(S);
  ASSERT_FALSE(C.connect());

  // Well-framed but semantically hostile: NumVars beyond the cap.
  CompileFrame F = satlibRequest(1);
  F.NumVars = static_cast<int32_t>(MaxRequestVars) + 1;
  ASSERT_FALSE(C.sendBytes(encodeCompile(F)));

  auto E = C.readFrame(WaitSeconds);
  ASSERT_TRUE(E.ok()) << E.message();
  ASSERT_EQ(E->Type, FrameType::Error);
  auto D = decodeError(E->Payload);
  ASSERT_TRUE(D.ok()) << D.message();
  EXPECT_EQ(D->Code, ResponseCode::Malformed);

  // The server closes after a malformed frame: framing past it is not
  // trustworthy.
  auto Next = C.readFrame(WaitSeconds);
  EXPECT_FALSE(Next.ok());
  EXPECT_FALSE(C.connected());
}

TEST(NetServer, PoisonedStreamDisconnectsWithoutResponse) {
  TestServer S;
  Client C = makeClient(S);
  ASSERT_FALSE(C.connect());

  // A length prefix claiming 256 MiB: alignment is unrecoverable.
  ASSERT_FALSE(C.sendBytes(std::string("\x00\x00\x00\x10", 4) +
                           std::string(64, 'x')));
  auto R = C.readFrame(10.0);
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(C.connected());
}

TEST(NetServer, DuplicateRequestIdIsAProtocolError) {
  ServerOptions Opt;
  Opt.Service.NumThreads = 1;
  TestServer S(Opt);
  Client C = makeClient(S);
  ASSERT_FALSE(C.connect());

  // Pin the worker so the first id=1 is still in flight when the second
  // id=1 arrives.
  CompileFrame Pin = satlibRequest(1, 150, 1);
  ASSERT_FALSE(C.sendCompile(Pin));
  ASSERT_FALSE(C.sendCompile(satlibRequest(1, 20, 1)));

  // The duplicate is answered with an Error frame and a disconnect; the
  // original may or may not complete first depending on timing.
  bool SawError = false;
  while (true) {
    auto F = C.readFrame(WaitSeconds);
    if (!F.ok())
      break;
    if (F->Type == FrameType::Error) {
      auto D = decodeError(F->Payload);
      ASSERT_TRUE(D.ok()) << D.message();
      EXPECT_EQ(D->Code, ResponseCode::Malformed);
      SawError = true;
    }
  }
  EXPECT_TRUE(SawError);
}

// --- In-process server: deadlines, shedding, caps, cancel ----------------

TEST(NetServer, DeadlineExpiresQueuedRequest) {
  ServerOptions Opt;
  Opt.Service.NumThreads = 1;
  TestServer S(Opt);
  Client C = makeClient(S);
  ASSERT_FALSE(C.connect());

  // Pin the single worker with a large compile, then queue a request
  // whose deadline lapses long before the worker frees up.
  CompileFrame Pin = satlibRequest(1, 150, 1);
  ASSERT_FALSE(C.sendCompile(Pin));
  CompileFrame Doomed = satlibRequest(2, 20, 1);
  Doomed.DeadlineMs = 1;
  ASSERT_FALSE(C.sendCompile(Doomed));

  std::map<uint64_t, ResponseCode> Codes;
  while (Codes.size() < 2) {
    auto F = C.readFrame(WaitSeconds);
    ASSERT_TRUE(F.ok()) << F.message();
    if (F->Type != FrameType::Result)
      continue;
    auto R = decodeResult(F->Payload);
    ASSERT_TRUE(R.ok()) << R.message();
    EXPECT_TRUE(Codes.emplace(R->RequestId, R->Code).second)
        << "request " << R->RequestId << " resolved twice";
  }
  EXPECT_EQ(Codes[1], ResponseCode::Ok);
  EXPECT_EQ(Codes[2], ResponseCode::DeadlineExceeded);
}

TEST(NetServer, FullQueueShedsWithBackoffHint) {
  ServerOptions Opt;
  Opt.Service.NumThreads = 1;
  Opt.Service.QueueCapacity = 1;
  Opt.Service.Deduplicate = false;
  Opt.MaxInFlightPerConnection = 64;
  TestServer S(Opt);
  Client C = makeClient(S);
  ASSERT_FALSE(C.connect());

  // Worker pinned + queue capacity 1: the first request runs, the second
  // occupies the queue, and everything after is shed with RETRYING_LATER.
  ASSERT_FALSE(C.sendCompile(satlibRequest(1, 150, 1)));
  for (uint64_t Id = 2; Id <= 8; ++Id)
    ASSERT_FALSE(C.sendCompile(satlibRequest(Id, 20, 1 + Id % 10)));

  size_t Shed = 0, Completed = 0;
  std::map<uint64_t, int> Resolutions;
  while (Shed + Completed < 8) {
    auto F = C.readFrame(WaitSeconds);
    TransportStats TS = (*S).transportStats();
    ASSERT_TRUE(F.ok()) << F.message() << " after " << Shed << " shed + "
                        << Completed << " completed; disconnected="
                        << TS.Disconnected << " slow=" << TS.SlowClientDrops
                        << " idle=" << TS.IdleDrops << " poisoned="
                        << TS.PoisonedStreams << " malformed="
                        << TS.MalformedFrames << " kills="
                        << TS.InjectedKills << " results=" << TS.ResultsSent
                        << " admitted=" << TS.RequestsAdmitted
                        << " accepted=" << TS.Accepted << " frames_in="
                        << TS.FramesIn << " goingaway=" << TS.GoingAwaySent;
    if (F->Type != FrameType::Result)
      continue;
    auto R = decodeResult(F->Payload);
    ASSERT_TRUE(R.ok()) << R.message();
    EXPECT_EQ(++Resolutions[R->RequestId], 1);
    if (R->Code == ResponseCode::RetryLater) {
      ++Shed;
      EXPECT_GT(R->BackoffMs, 0u) << "shed response must carry a hint";
    } else {
      ASSERT_EQ(R->Code, ResponseCode::Ok) << R->Diagnostic;
      ++Completed;
    }
  }
  // The pinned job always completes; most of the burst is shed (whether
  // one more squeezes into the single queue slot before the worker
  // dequeues the blocker is a race either way).
  EXPECT_GE(Completed, 1u);
  EXPECT_GE(Shed, 5u);
  EXPECT_GE((*S).transportStats().Shed, Shed);

  // Shedding is advisory, not terminal: once the queue frees up, the
  // RETRYING_LATER backoff-and-resubmit loop must land the request.
  auto Retry = C.compileSync(satlibRequest(100, 20, 1));
  ASSERT_TRUE(Retry.ok()) << Retry.message();
  EXPECT_EQ(Retry->Code, ResponseCode::Ok) << Retry->Diagnostic;
}

TEST(NetServer, PerConnectionInFlightCapSheds) {
  ServerOptions Opt;
  Opt.Service.NumThreads = 1;
  Opt.Service.QueueCapacity = 256;
  Opt.Service.Deduplicate = false;
  Opt.MaxInFlightPerConnection = 2;
  TestServer S(Opt);
  Client C = makeClient(S);
  ASSERT_FALSE(C.connect());

  // Worker pinned: requests 2..5 arrive while 1 is running. With a cap
  // of 2 in flight per connection, at least two of them must be shed
  // even though the service queue has plenty of room.
  ASSERT_FALSE(C.sendCompile(satlibRequest(1, 150, 1)));
  for (uint64_t Id = 2; Id <= 5; ++Id)
    ASSERT_FALSE(C.sendCompile(satlibRequest(Id, 20, Id)));

  size_t Shed = 0, Resolved = 0;
  while (Resolved < 5) {
    auto F = C.readFrame(WaitSeconds);
    ASSERT_TRUE(F.ok()) << F.message();
    if (F->Type != FrameType::Result)
      continue;
    auto R = decodeResult(F->Payload);
    ASSERT_TRUE(R.ok()) << R.message();
    ++Resolved;
    if (R->Code == ResponseCode::RetryLater)
      ++Shed;
  }
  EXPECT_GE(Shed, 2u);
}

TEST(NetServer, CancelFrameCancelsQueuedRequest) {
  ServerOptions Opt;
  Opt.Service.NumThreads = 1;
  TestServer S(Opt);
  Client C = makeClient(S);
  ASSERT_FALSE(C.connect());

  ASSERT_FALSE(C.sendCompile(satlibRequest(1, 150, 1))); // pins the worker
  ASSERT_FALSE(C.sendCompile(satlibRequest(2, 50, 1)));  // stays queued
  ASSERT_FALSE(C.sendCancel(2));
  // Cancelling an id the server has never seen is tolerated: the result
  // may simply have raced the cancel onto the wire.
  ASSERT_FALSE(C.sendCancel(999));

  std::map<uint64_t, ResponseCode> Codes;
  while (Codes.size() < 2) {
    auto F = C.readFrame(WaitSeconds);
    ASSERT_TRUE(F.ok()) << F.message();
    if (F->Type != FrameType::Result)
      continue;
    auto R = decodeResult(F->Payload);
    ASSERT_TRUE(R.ok()) << R.message();
    Codes[R->RequestId] = R->Code;
  }
  EXPECT_EQ(Codes[1], ResponseCode::Ok);
  EXPECT_EQ(Codes[2], ResponseCode::Cancelled);
}

// --- In-process server: slow client and drain -----------------------------

TEST(NetServer, SlowClientIsDisconnectedNotBuffered) {
  ServerOptions Opt;
  // A uf50 wQASM program is far larger than this write-queue cap, so the
  // first result overflows it immediately.
  Opt.MaxWriteQueueBytes = 1024;
  TestServer S(Opt);
  Client C = makeClient(S);
  ASSERT_FALSE(C.connect());

  ASSERT_FALSE(C.sendCompile(satlibRequest(1, 50, 1)));
  // Never read: the server must drop us rather than buffer unboundedly.
  auto F = C.readFrame(WaitSeconds);
  EXPECT_FALSE(F.ok());
  EXPECT_FALSE(C.connected());

  // Poll the counter (the drop happens on the poll thread).
  bool Dropped = false;
  for (int I = 0; I < 100 && !Dropped; ++I) {
    Dropped = (*S).transportStats().SlowClientDrops > 0;
    if (!Dropped)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(Dropped);
}

TEST(NetServer, DrainDeliversInFlightResultsThenGoingAway) {
  ServerOptions Opt;
  Opt.Service.NumThreads = 1;
  Opt.DrainBudgetSeconds = WaitSeconds;
  TestServer S(Opt);
  Client C = makeClient(S);
  ASSERT_FALSE(C.connect());

  // Submit, wait until the request is admitted (a stop that lands before
  // the server even accepts the socket legitimately refuses everything),
  // then request the drain: the in-flight compile must still resolve Ok
  // and reach the wire before the socket closes.
  ASSERT_FALSE(C.sendCompile(satlibRequest(1, 50, 1)));
  for (int I = 0; I < 1000 && (*S).transportStats().RequestsAdmitted == 0;
       ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_GT((*S).transportStats().RequestsAdmitted, 0u);
  (*S).requestStop();

  bool SawGoingAway = false, SawResult = false;
  while (true) {
    auto F = C.readFrame(WaitSeconds);
    if (!F.ok())
      break; // server closed after the drain
    if (F->Type == FrameType::GoingAway)
      SawGoingAway = true;
    if (F->Type == FrameType::Result) {
      auto R = decodeResult(F->Payload);
      ASSERT_TRUE(R.ok()) << R.message();
      EXPECT_EQ(R->RequestId, 1u);
      EXPECT_EQ(R->Code, ResponseCode::Ok) << R->Diagnostic;
      EXPECT_EQ(R->Wqasm, directWqasm(50, 1));
      SawResult = true;
    }
  }
  EXPECT_TRUE(SawGoingAway);
  EXPECT_TRUE(SawResult);
  S.stop();

  // The server is gone entirely now; a late connect must fail fast.
  ClientOptions LateOpt;
  LateOpt.Port = S.port();
  LateOpt.MaxConnectAttempts = 1;
  Client L(LateOpt);
  EXPECT_TRUE(L.connect());
}

// --- In-process server: fault injection -----------------------------------

TEST(NetServer, SurvivesFaultInjectionWithByteIdentity) {
  ServerOptions Opt;
  Opt.Faults.Seed = 42;
  Opt.Faults.PartialWriteProb = 0.5;
  Opt.Faults.DelayReadProb = 0.3;
  // No kills/truncation here: every request must survive, and the test
  // asserts all of them — kill recovery is load_gen's and the smoke
  // script's job.
  TestServer S(Opt);
  Client C = makeClient(S);
  ASSERT_FALSE(C.connect());

  std::string Reference = directWqasm(20, 1);
  for (uint64_t Id = 1; Id <= 10; ++Id) {
    auto R = C.compileSync(satlibRequest(Id, 20, 1));
    ASSERT_TRUE(R.ok()) << R.message();
    ASSERT_EQ(R->Code, ResponseCode::Ok) << R->Diagnostic;
    EXPECT_EQ(R->Wqasm, Reference)
        << "request " << Id << " corrupted under write fragmentation";
  }
  EXPECT_GT((*S).faultStats().PartialWrites, 0u)
      << "fault injector never fired; test is vacuous";
}

// --- Subprocess: SIGTERM drain of the real daemon -------------------------

#ifdef WEAVER_SERVE_BIN
namespace {

/// Spawns weaver_serve with stdout redirected to \p LogPath; returns the
/// child pid or -1.
pid_t spawnServe(const std::vector<std::string> &Args,
                 const std::string &LogPath) {
  // The scratch dir persists across runs; a stale log from a previous
  // run would let waitForPort() race the child's O_TRUNC and hand back
  // the dead port of the last daemon.
  ::unlink(LogPath.c_str());
  pid_t Pid = fork();
  if (Pid != 0)
    return Pid;
  // Child.
  int LogFd = ::open(LogPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (LogFd >= 0) {
    ::dup2(LogFd, STDOUT_FILENO);
    ::close(LogFd);
  }
  std::vector<char *> Argv;
  Argv.push_back(const_cast<char *>(WEAVER_SERVE_BIN));
  for (const std::string &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);
  ::execv(WEAVER_SERVE_BIN, Argv.data());
  _exit(127);
}

/// Kills the daemon on early test exit (a failed ASSERT must not leave
/// an orphan holding inherited pipes open for whoever runs us).
struct ServeGuard {
  pid_t Pid;
  ~ServeGuard() {
    if (Pid <= 0)
      return;
    ::kill(Pid, SIGKILL);
    ::waitpid(Pid, nullptr, 0);
  }
  void disarm() { Pid = -1; }
};

/// Polls \p LogPath for the "listening on <addr>:<port>" line.
uint16_t waitForPort(const std::string &LogPath) {
  for (int I = 0; I < 600; ++I) {
    std::ifstream In(LogPath);
    std::string Line;
    while (std::getline(In, Line)) {
      size_t Pos = Line.rfind(':');
      if (Line.rfind("listening on ", 0) == 0 && Pos != std::string::npos)
        return static_cast<uint16_t>(std::stoi(Line.substr(Pos + 1)));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return 0;
}

} // namespace

TEST(NetServeProcess, SigtermDrainResolvesEveryRequestOnceAndFlushesCache) {
  std::string Dir = testTempDir();
  std::string CacheFile = Dir + "/snapshot.bin";
  std::string LogFile = Dir + "/serve.log";

  pid_t Pid = spawnServe({"--port", "0", "--threads", "2", "--cache-file",
                          CacheFile, "--drain-budget", "60"},
                         LogFile);
  ASSERT_GT(Pid, 0);
  ServeGuard Guard{Pid};
  uint16_t Port = waitForPort(LogFile);
  ASSERT_NE(Port, 0) << "daemon never printed its listening line";

  ClientOptions Opt;
  Opt.Port = Port;
  Client C(Opt);
  ASSERT_FALSE(C.connect());

  // Pipeline a burst, SIGTERM the daemon mid-flight, then read until the
  // socket closes: every request must resolve exactly once, each either
  // completed or refused — never lost, never doubled.
  constexpr uint64_t NumRequests = 12;
  for (uint64_t Id = 1; Id <= NumRequests; ++Id)
    ASSERT_FALSE(C.sendCompile(satlibRequest(Id, 20, 1 + Id % 10)));

  // Wait for the first result so the burst is genuinely mid-flight (and
  // at least one compile has populated the cache) before the SIGTERM.
  std::map<uint64_t, ResponseCode> Resolved;
  while (Resolved.empty()) {
    auto F = C.readFrame(WaitSeconds);
    ASSERT_TRUE(F.ok()) << F.message();
    if (F->Type != FrameType::Result)
      continue;
    auto R = decodeResult(F->Payload);
    ASSERT_TRUE(R.ok()) << R.message();
    Resolved.emplace(R->RequestId, R->Code);
  }
  ASSERT_EQ(::kill(Pid, SIGTERM), 0);

  while (true) {
    auto F = C.readFrame(WaitSeconds);
    if (!F.ok())
      break;
    if (F->Type != FrameType::Result)
      continue;
    auto R = decodeResult(F->Payload);
    ASSERT_TRUE(R.ok()) << R.message();
    EXPECT_TRUE(Resolved.emplace(R->RequestId, R->Code).second)
        << "request " << R->RequestId << " resolved twice";
  }
  EXPECT_EQ(Resolved.size(), NumRequests)
      << "drain lost " << (NumRequests - Resolved.size()) << " requests";
  size_t CompletedOk = 0;
  for (const auto &[Id, Code] : Resolved) {
    EXPECT_TRUE(Code == ResponseCode::Ok ||
                Code == ResponseCode::DeadlineExceeded ||
                Code == ResponseCode::Cancelled ||
                Code == ResponseCode::GoingAway)
        << "request " << Id << " resolved " << responseCodeName(Code);
    CompletedOk += Code == ResponseCode::Ok;
  }
  EXPECT_GT(CompletedOk, 0u) << "drain completed nothing";

  int WaitStatus = 0;
  ASSERT_EQ(::waitpid(Pid, &WaitStatus, 0), Pid);
  Guard.disarm();
  EXPECT_TRUE(WIFEXITED(WaitStatus) && WEXITSTATUS(WaitStatus) == 0)
      << "daemon exit status " << WaitStatus;

  // The drain must have flushed a loadable cache snapshot.
  core::pipeline::PassCache Cache;
  Status Loaded = Cache.loadSnapshot(CacheFile);
  EXPECT_FALSE(Loaded) << Loaded.message();
  EXPECT_GT(Cache.size(), 0u);
}
#endif // WEAVER_SERVE_BIN

#ifdef WEAVER_COMPILE_SERVER_BIN
TEST(NetServeProcess, ServeModeLineProtocolRejectsHostileInputAndExitsClean) {
  std::string Dir = testTempDir();
  std::string Script = Dir + "/lines.txt";
  {
    std::ofstream Out(Script);
    Out << "compile weaver 20 1\n"
        << "explode\n"
        << "compile weaver 99999999999999999999 1\n"
        << "compile weaver 20 1 nan 0.3\n"
        << "compile quantum 20 1\n"
        << "stats\n"
        << "quit\n";
  }
  std::string Cmd = std::string(WEAVER_COMPILE_SERVER_BIN) +
                    " --serve < " + Script + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  ASSERT_NE(Pipe, nullptr);
  std::string Output;
  char Buf[4096];
  size_t NumRead;
  while ((NumRead = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Output.append(Buf, NumRead);
  int Rc = pclose(Pipe);
  EXPECT_TRUE(WIFEXITED(Rc) && WEXITSTATUS(Rc) == 0)
      << "compile_server exit status " << Rc << "\n" << Output;
  // One compile completed; each hostile line produced a diagnostic
  // rather than a crash or a silently defaulted request.
  EXPECT_NE(Output.find("completed"), std::string::npos) << Output;
  EXPECT_NE(Output.find("error"), std::string::npos) << Output;
}
#endif // WEAVER_COMPILE_SERVER_BIN
