//===- tests/service_test.cpp - CompileService unit tests -----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The CompileService contract: jobs resolve exactly once to a terminal
/// state; cancellation works before dequeue, between pipeline passes, and
/// is a no-op after completion, never leaking cache entries; identical
/// in-flight requests coalesce onto one compile and only cancel when every
/// waiter votes; shutdown drains or cancels but always resolves; and the
/// WorkerPool underneath honours priorities, its queue bound, and both
/// shutdown modes. Service output is pinned byte-identical to direct
/// compiles (the full grid lives in tests/differential_test.cpp).
///
//===----------------------------------------------------------------------===//

#include "core/BatchCompiler.h"
#include "core/WorkerPool.h"
#include "core/service/CompileService.h"
#include "sat/Generator.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <optional>
#include <thread>

using namespace weaver;
using namespace weaver::core;

namespace {

/// Wait bound for anything asynchronous; far above any real compile so a
/// hit means a lost wakeup or deadlock, not a slow machine.
constexpr double WaitSeconds = 120.0;

sat::CnfFormula uf(int Vars, int Index) {
  return sat::satlibInstance(Vars, Index);
}

CompileRequest weaverJob(int Vars, int Index, int Priority = 0) {
  CompileRequest R;
  R.Formula = uf(Vars, Index);
  R.Kind = baselines::BackendKind::Weaver;
  R.Priority = Priority;
  return R;
}

JobOutcome waitOrDie(const CompileService::JobHandle &H) {
  JobOutcome Out;
  EXPECT_TRUE(H.waitFor(WaitSeconds, Out)) << "job did not resolve";
  return Out;
}

/// A single-worker service whose worker is pinned on a long job, so
/// everything submitted afterwards is deterministically still queued.
/// The blocker is a uf150 compile (tens of milliseconds); the queue
/// operations behind it take microseconds.
class BlockedService {
public:
  explicit BlockedService(ServiceOptions Opt = ServiceOptions()) {
    Opt.NumThreads = 1;
    Service.emplace(Opt);
    Blocker = Service->submit(weaverJob(150, 1, /*Priority=*/100));
  }
  CompileService &operator*() { return *Service; }
  CompileService *operator->() { return &*Service; }
  JobOutcome finishBlocker() { return waitOrDie(Blocker); }

private:
  std::optional<CompileService> Service;
  CompileService::JobHandle Blocker;
};

} // namespace

// --- WorkerPool ----------------------------------------------------------

TEST(WorkerPool, PrioritiesRunHighFirstTiesInSubmissionOrder) {
  PoolOptions Opt;
  Opt.NumThreads = 1;
  WorkerPool Pool(Opt);

  // Gate the single worker so the queue orders deterministically.
  std::promise<void> Gate;
  std::shared_future<void> Opened = Gate.get_future().share();
  ASSERT_TRUE(Pool.post([Opened]() { Opened.wait(); }));

  std::mutex M;
  std::vector<int> Order;
  auto Record = [&](int Tag) {
    std::lock_guard<std::mutex> Lock(M);
    Order.push_back(Tag);
  };
  ASSERT_TRUE(Pool.post([&]() { Record(1); }, /*Priority=*/0));
  ASSERT_TRUE(Pool.post([&]() { Record(2); }, /*Priority=*/5));
  ASSERT_TRUE(Pool.post([&]() { Record(3); }, /*Priority=*/5));
  ASSERT_TRUE(Pool.post([&]() { Record(4); }, /*Priority=*/-1));
  ASSERT_TRUE(Pool.post([&]() { Record(5); }, /*Priority=*/0));

  Gate.set_value();
  Pool.shutdown(/*Drain=*/true);
  EXPECT_EQ(Order, (std::vector<int>{2, 3, 1, 5, 4}));
}

TEST(WorkerPool, BoundedQueueBlocksPostUntilSpace) {
  PoolOptions Opt;
  Opt.NumThreads = 1;
  Opt.QueueCapacity = 1;
  WorkerPool Pool(Opt);

  std::promise<void> Gate;
  std::shared_future<void> Opened = Gate.get_future().share();
  ASSERT_TRUE(Pool.post([Opened]() { Opened.wait(); })); // occupies worker
  ASSERT_TRUE(Pool.post([]() {}));                       // fills the queue

  std::atomic<bool> ThirdPosted{false};
  std::thread Poster([&]() {
    EXPECT_TRUE(Pool.post([]() {}));
    ThirdPosted.store(true);
  });
  // The third post must block on the full queue while the gate is shut.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(ThirdPosted.load());

  Gate.set_value();
  Poster.join();
  EXPECT_TRUE(ThirdPosted.load());
  Pool.shutdown(/*Drain=*/true);
}

TEST(WorkerPool, ShutdownDrainRunsQueuedDiscardDropsThem) {
  for (bool Drain : {true, false}) {
    PoolOptions Opt;
    Opt.NumThreads = 1;
    WorkerPool Pool(Opt);
    std::promise<void> Gate;
    std::shared_future<void> Opened = Gate.get_future().share();
    ASSERT_TRUE(Pool.post([Opened]() { Opened.wait(); }));
    std::atomic<int> Ran{0};
    for (int I = 0; I < 4; ++I)
      ASSERT_TRUE(Pool.post([&]() { ++Ran; }));
    // Open the gate only after shutdown has latched its mode, so the
    // worker deterministically sees Stopping/Discarding when it returns
    // to the queue.
    std::thread Opener([&]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      Gate.set_value();
    });
    Pool.shutdown(Drain);
    Opener.join();
    EXPECT_EQ(Ran.load(), Drain ? 4 : 0);
    EXPECT_FALSE(Pool.post([]() {})); // post after shutdown is refused
  }
}

TEST(WorkerPool, BatchCompilerSharesAnInjectedPool) {
  std::vector<sat::CnfFormula> Batch;
  for (int I = 1; I <= 6; ++I)
    Batch.push_back(uf(20, I));

  baselines::WeaverBackend Backend;
  std::vector<baselines::BaselineResult> Direct =
      BatchCompiler(Backend).compileAll(Batch);

  PoolOptions PoolOpt;
  PoolOpt.NumThreads = 2;
  WorkerPool Pool(PoolOpt);
  BatchOptions BOpt;
  BOpt.Pool = &Pool;
  BatchCompiler Shared(Backend, BOpt);
  EXPECT_EQ(Shared.effectiveThreads(Batch.size()), 2);
  std::vector<baselines::BaselineResult> Pooled = Shared.compileAll(Batch);

  ASSERT_EQ(Pooled.size(), Direct.size());
  for (size_t I = 0; I < Direct.size(); ++I) {
    EXPECT_EQ(Pooled[I].Pulses, Direct[I].Pulses) << I;
    EXPECT_EQ(Pooled[I].ExecutionSeconds, Direct[I].ExecutionSeconds) << I;
    EXPECT_EQ(Pooled[I].Eps, Direct[I].Eps) << I;
  }
}

// --- Basic service lifecycle ---------------------------------------------

TEST(CompileService, CompletesJobByteIdenticalToDirectCompile) {
  ServiceOptions Opt;
  Opt.NumThreads = 2;
  CompileService Service(Opt);
  CompileService::JobHandle H = Service.submit(weaverJob(20, 1));
  JobOutcome Out = waitOrDie(H);
  EXPECT_EQ(Out.State, JobState::Completed);
  EXPECT_TRUE(Out.Metrics.usable());
  EXPECT_GT(Out.Metrics.Pulses, 0u);
  EXPECT_FALSE(Out.Wqasm.empty());

  baselines::WeaverBackend Direct;
  baselines::CompileOutput Ref =
      Direct.compileFull(uf(20, 1), qaoa::QaoaParams());
  EXPECT_EQ(Out.Wqasm, Ref.Wqasm);
  EXPECT_EQ(Out.Metrics.Pulses, Ref.Metrics.Pulses);
  EXPECT_EQ(Out.Metrics.Eps, Ref.Metrics.Eps);
}

TEST(CompileService, CallbackFiresExactlyOnce) {
  ServiceOptions Opt;
  Opt.NumThreads = 1;
  CompileService Service(Opt);
  std::promise<JobOutcome> Delivered;
  std::atomic<int> Fired{0};
  Service.submit(weaverJob(20, 2), [&](const JobOutcome &O) {
    if (++Fired == 1)
      Delivered.set_value(O);
  });
  auto Future = Delivered.get_future();
  ASSERT_EQ(Future.wait_for(std::chrono::duration<double>(WaitSeconds)),
            std::future_status::ready);
  EXPECT_EQ(Future.get().State, JobState::Completed);
  Service.shutdown();
  EXPECT_EQ(Fired.load(), 1);
}

TEST(CompileService, PriorityJobsOvertakeTheQueue) {
  BlockedService Service;
  // Queued behind the blocker: low priority submitted first, then high.
  // The single worker resolves jobs one at a time, so the completion
  // order it produces is deterministic: high must beat low.
  std::mutex M;
  std::vector<int> Order;
  auto Tag = [&](int T) {
    return [&, T](const JobOutcome &) {
      std::lock_guard<std::mutex> Lock(M);
      Order.push_back(T);
    };
  };
  CompileService::JobHandle Low =
      Service->submit(weaverJob(20, 1, 0), Tag(0));
  CompileService::JobHandle High =
      Service->submit(weaverJob(20, 2, 10), Tag(1));
  EXPECT_EQ(waitOrDie(High).State, JobState::Completed);
  EXPECT_EQ(waitOrDie(Low).State, JobState::Completed);
  Service->shutdown();
  std::lock_guard<std::mutex> Lock(M);
  EXPECT_EQ(Order, (std::vector<int>{1, 0}));
}

// --- Cancellation --------------------------------------------------------

TEST(CompileService, CancelBeforeDequeueResolvesCancelledAndLeaksNothing) {
  BlockedService Service;
  size_t CacheBefore = Service->cache()->size();
  // Priority -1 pins the victim behind everything else in the queue.
  CompileService::JobHandle Victim = Service->submit(weaverJob(20, 3, -1));
  CompileService::JobHandle Bystander = Service->submit(weaverJob(20, 4));
  Victim.cancel();

  JobOutcome Out = waitOrDie(Victim);
  EXPECT_EQ(Out.State, JobState::Cancelled);
  EXPECT_EQ(Out.Diagnostic.rfind(CancelledDiagnostic, 0), 0u);
  EXPECT_TRUE(Out.Wqasm.empty());

  // Later jobs are unaffected and the cancelled job inserted nothing.
  EXPECT_EQ(waitOrDie(Bystander).State, JobState::Completed);
  Service.finishBlocker();
  Service->shutdown();
  CompileService::ServiceStats S = Service->stats();
  EXPECT_EQ(S.Cancelled, 1u);
  EXPECT_EQ(S.Completed, 2u); // blocker + bystander
  // The victim never started: only the blocker and the bystander compiled
  // (and touched the cache).
  EXPECT_EQ(S.CompilesStarted, 2u);
  EXPECT_GE(Service->cache()->size(), CacheBefore);
}

TEST(CompileService, CancelMidPipelineAbortsBetweenPassesWithoutCacheEntries) {
  ServiceOptions Opt;
  Opt.NumThreads = 1;
  CompileService Service(Opt);

  // Self-cancel at the 4th checkpoint: colouring, zone planning, and
  // shuttle scheduling run; the job dies before gate lowering.
  CompileRequest R = weaverJob(50, 1);
  R.CancelAtCheckpoint = 4;
  JobOutcome Out = waitOrDie(Service.submit(R));
  EXPECT_EQ(Out.State, JobState::Cancelled);
  EXPECT_EQ(Out.Diagnostic.rfind(CancelledDiagnostic, 0), 0u);
  // The compile genuinely started (unlike a queue cancellation)...
  EXPECT_EQ(Service.stats().CompilesStarted, 1u);
  // ...but a cancelled pipeline publishes nothing into the cache.
  EXPECT_EQ(Service.cache()->size(), 0u);

  // Later jobs on the same formula are unaffected and repopulate it.
  JobOutcome Again = waitOrDie(Service.submit(weaverJob(50, 1)));
  EXPECT_EQ(Again.State, JobState::Completed);
  EXPECT_GT(Service.cache()->size(), 0u);
  EXPECT_EQ(Service.stats().Cancelled, 1u);
  EXPECT_EQ(Service.stats().Completed, 1u);
}

TEST(CompileService, CancelAfterCompletionIsANoOp) {
  ServiceOptions Opt;
  Opt.NumThreads = 1;
  CompileService Service(Opt);
  CompileService::JobHandle H = Service.submit(weaverJob(20, 5));
  JobOutcome Out = waitOrDie(H);
  ASSERT_EQ(Out.State, JobState::Completed);
  H.cancel();
  H.cancel(); // idempotent per handle too
  EXPECT_EQ(H.state(), JobState::Completed);
  EXPECT_EQ(waitOrDie(H).State, JobState::Completed);
  EXPECT_EQ(Service.stats().Cancelled, 0u);
  EXPECT_EQ(Service.stats().Completed, 1u);
}

TEST(CompileService, InfeasibleCompileResolvesFailedWithDiagnostic) {
  ServiceOptions Opt;
  Opt.NumThreads = 1;
  CompileService Service(Opt);
  // A clause wider than three literals is malformed for every compiler.
  CompileRequest R;
  R.Formula = sat::CnfFormula(5, {sat::Clause{1, 2, 3, 4}});
  JobOutcome Out = waitOrDie(Service.submit(R));
  EXPECT_EQ(Out.State, JobState::Failed);
  EXPECT_FALSE(Out.Diagnostic.empty());
  EXPECT_TRUE(Out.Wqasm.empty());
  EXPECT_EQ(Service.stats().Failed, 1u);
  EXPECT_EQ(Service.stats().Completed, 0u);
}

// --- Deduplication -------------------------------------------------------

TEST(CompileService, IdenticalInFlightRequestsCoalesce) {
  BlockedService Service;
  CompileService::JobHandle First = Service->submit(weaverJob(20, 6));
  CompileService::JobHandle Second = Service->submit(weaverJob(20, 6));
  CompileService::JobHandle Different = Service->submit(weaverJob(20, 7));
  EXPECT_FALSE(First.coalesced());
  EXPECT_TRUE(Second.coalesced());
  EXPECT_FALSE(Different.coalesced());
  EXPECT_EQ(First.id(), Second.id());

  JobOutcome A = waitOrDie(First), B = waitOrDie(Second);
  EXPECT_EQ(A.State, JobState::Completed);
  EXPECT_EQ(B.State, JobState::Completed);
  EXPECT_EQ(A.Wqasm, B.Wqasm);
  EXPECT_FALSE(A.Coalesced);
  EXPECT_TRUE(B.Coalesced);
  EXPECT_EQ(waitOrDie(Different).State, JobState::Completed);

  Service.finishBlocker();
  CompileService::ServiceStats S = Service->stats();
  EXPECT_EQ(S.Coalesced, 1u);
  // blocker + uf20-6 (once) + uf20-7: the coalesced submit never compiled.
  EXPECT_EQ(S.CompilesStarted, 3u);
}

TEST(CompileService, DifferentAnglesDoNotCoalesce) {
  BlockedService Service;
  CompileRequest A = weaverJob(20, 8);
  CompileRequest B = weaverJob(20, 8);
  B.Qaoa.Gamma = A.Qaoa.Gamma + 0.1;
  CompileService::JobHandle HA = Service->submit(A);
  CompileService::JobHandle HB = Service->submit(B);
  EXPECT_FALSE(HB.coalesced());
  EXPECT_NE(HA.id(), HB.id());
  EXPECT_EQ(waitOrDie(HA).State, JobState::Completed);
  EXPECT_EQ(waitOrDie(HB).State, JobState::Completed);
}

TEST(CompileService, CoalescedJobCancelsOnlyWhenEveryWaiterVotes) {
  BlockedService Service;
  // Pair 1: one of two waiters cancels -> the compile must survive.
  CompileService::JobHandle A1 = Service->submit(weaverJob(20, 9, -1));
  CompileService::JobHandle A2 = Service->submit(weaverJob(20, 9, -1));
  ASSERT_TRUE(A2.coalesced());
  A1.cancel();
  // Pair 2: both waiters cancel -> the job dies in the queue.
  CompileService::JobHandle B1 = Service->submit(weaverJob(20, 10, -1));
  CompileService::JobHandle B2 = Service->submit(weaverJob(20, 10, -1));
  ASSERT_TRUE(B2.coalesced());
  B1.cancel();
  B2.cancel();

  EXPECT_EQ(waitOrDie(A1).State, JobState::Completed);
  EXPECT_EQ(waitOrDie(A2).State, JobState::Completed);
  EXPECT_EQ(waitOrDie(B1).State, JobState::Cancelled);
  EXPECT_EQ(waitOrDie(B2).State, JobState::Cancelled);
}

TEST(CompileService, CancelRequestedJobLeavesTheDedupIndex) {
  BlockedService Service;
  CompileService::JobHandle Doomed = Service->submit(weaverJob(20, 11, -1));
  Doomed.cancel();
  ASSERT_EQ(waitOrDie(Doomed).State, JobState::Cancelled);
  // An identical new request must start fresh, not join the corpse.
  CompileService::JobHandle Fresh = Service->submit(weaverJob(20, 11, -1));
  EXPECT_FALSE(Fresh.coalesced());
  EXPECT_EQ(waitOrDie(Fresh).State, JobState::Completed);
}

// --- Shutdown ------------------------------------------------------------

TEST(CompileService, ShutdownDrainCompletesEverything) {
  ServiceOptions Opt;
  Opt.NumThreads = 2;
  CompileService Service(Opt);
  std::vector<CompileService::JobHandle> Handles;
  for (int I = 1; I <= 6; ++I)
    Handles.push_back(Service.submit(weaverJob(20, I)));
  Service.shutdown(/*Drain=*/true);
  for (CompileService::JobHandle &H : Handles)
    EXPECT_EQ(waitOrDie(H).State, JobState::Completed);
  EXPECT_EQ(Service.stats().Completed, 6u);
}

TEST(CompileService, ShutdownCancelResolvesQueuedJobsAsCancelled) {
  BlockedService Service;
  std::vector<CompileService::JobHandle> Queued;
  for (int I = 1; I <= 5; ++I)
    Queued.push_back(Service->submit(weaverJob(20, I, -1)));
  Service->shutdown(/*Drain=*/false);
  for (CompileService::JobHandle &H : Queued)
    EXPECT_EQ(waitOrDie(H).State, JobState::Cancelled);
  // The blocker either finished or aborted at a checkpoint, but resolved.
  JobOutcome B = Service.finishBlocker();
  EXPECT_TRUE(B.State == JobState::Completed ||
              B.State == JobState::Cancelled);

  // Submissions after shutdown are rejected but still resolve + call back.
  std::atomic<int> Fired{0};
  CompileService::JobHandle Late = Service->submit(
      weaverJob(20, 12), [&](const JobOutcome &) { ++Fired; });
  JobOutcome LateOut = waitOrDie(Late);
  EXPECT_EQ(LateOut.State, JobState::Failed);
  EXPECT_EQ(Fired.load(), 1);
  EXPECT_EQ(Service->stats().Failed, 1u);
}

// --- Reporting -----------------------------------------------------------

TEST(CompileService, StatsAndTablesReflectOutcomes) {
  ServiceOptions Opt;
  Opt.NumThreads = 1;
  CompileService Service(Opt);
  std::vector<JobOutcome> Outcomes;
  Outcomes.push_back(waitOrDie(Service.submit(weaverJob(20, 1))));
  Outcomes.push_back(waitOrDie(Service.submit(weaverJob(20, 1))));
  CompileService::ServiceStats S = Service.stats();
  EXPECT_EQ(S.Submitted, 2u);
  EXPECT_EQ(S.Completed, 2u);
  EXPECT_GT(S.TotalCompileSeconds, 0.0);
  EXPECT_GE(S.MaxQueueSeconds, 0.0);
  // Identical request, sequential: the second run is a program-tier hit.
  EXPECT_EQ(S.ProgramTierHits, 1u);

  std::string Aggregate = Service.statsTable().render();
  EXPECT_NE(Aggregate.find("jobs submitted"), std::string::npos);
  EXPECT_NE(Aggregate.find("cache hits program tier"), std::string::npos);
  std::string PerJob = CompileService::outcomeTable(Outcomes).render();
  EXPECT_NE(PerJob.find("completed"), std::string::npos);
  EXPECT_NE(PerJob.find("program"), std::string::npos);
  EXPECT_NE(PerJob.find("weaver"), std::string::npos);
}

// --- Watchdog and fault injection ----------------------------------------

namespace {
/// Guarantees the process-global fault engine is disabled on scope exit,
/// whatever the test body did (the engine outlives the test otherwise).
struct FaultGuard {
  ~FaultGuard() { fault::resetGlobal(); }
};
} // namespace

TEST(CompileService, WatchdogRescuesHungJobExactlyOnce) {
  // An injected hang (a worker stuck mid-job for far longer than the
  // budget) resolves Failed exactly once with the watchdog diagnostic —
  // and the worker thread survives to complete the next job.
  FaultGuard Guard;
  ServiceOptions Opt;
  Opt.NumThreads = 1;
  CompileService Service(Opt);

  ASSERT_FALSE(fault::configureGlobal(
      "seed=1;service.job.hang:count=1,delay_ms=30000"));
  CompileRequest Hung = weaverJob(20, 1);
  Hung.WatchdogSeconds = 0.15; // per-job budget, well under the stall
  std::atomic<int> Fired{0};
  JobOutcome Out = waitOrDie(
      Service.submit(Hung, [&](const JobOutcome &) { ++Fired; }));

  EXPECT_EQ(Out.State, JobState::Failed);
  EXPECT_TRUE(Out.WatchdogTimedOut);
  EXPECT_TRUE(startsWith(Out.Diagnostic, "watchdog:")) << Out.Diagnostic;
  EXPECT_GE(Out.CompileSeconds, 0.15) << "rescue cannot beat the budget";

  // The rescued worker takes the next job (hang budget spent: count=1).
  JobOutcome Next = waitOrDie(Service.submit(weaverJob(20, 2)));
  EXPECT_EQ(Next.State, JobState::Completed);

  Service.shutdown();
  EXPECT_EQ(Fired.load(), 1) << "watchdog and compile double-resolved";
  CompileService::ServiceStats S = Service.stats();
  EXPECT_EQ(S.WatchdogTimeouts, 1u);
  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.Submitted, S.Completed + S.Cancelled + S.Failed);
  EXPECT_NE(Service.statsTable().render().find("watchdog timeouts"),
            std::string::npos);
}

TEST(CompileService, WatchdogRescuesMidPipelineHang) {
  // Same rescue when the stall is between pipeline passes: the watchdog
  // cancels the job's token and the injected hang converts to a prompt
  // cooperative abort instead of sleeping out its cap.
  FaultGuard Guard;
  ServiceOptions Opt;
  Opt.NumThreads = 1;
  Opt.WatchdogSeconds = 0.15; // service-wide default budget
  CompileService Service(Opt);

  ASSERT_FALSE(fault::configureGlobal(
      "seed=1;pipeline.hang:count=1,delay_ms=30000"));
  auto Begin = std::chrono::steady_clock::now();
  JobOutcome Out = waitOrDie(Service.submit(weaverJob(20, 1)));
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Begin)
                       .count();

  EXPECT_EQ(Out.State, JobState::Failed);
  EXPECT_TRUE(Out.WatchdogTimedOut);
  EXPECT_LT(Elapsed, 20.0) << "hang must not sleep out its 30 s cap";

  JobOutcome Next = waitOrDie(Service.submit(weaverJob(20, 2)));
  EXPECT_EQ(Next.State, JobState::Completed);
}

TEST(CompileService, WatchdogBudgetCountsCompileTimeNotQueueWait) {
  // The budget clock starts when the compile starts, not at submission:
  // a fast job that waited behind a hung one must still complete even
  // though its wall-clock wait exceeded the budget.
  FaultGuard Guard;
  ServiceOptions Opt;
  Opt.NumThreads = 1;
  Opt.WatchdogSeconds = 0.2;
  CompileService Service(Opt);

  ASSERT_FALSE(fault::configureGlobal(
      "seed=1;service.job.hang:count=1,delay_ms=30000"));
  CompileService::JobHandle Hung = Service.submit(weaverJob(20, 1));
  // Queued behind the hang; its queue wait is ~the 0.2 s rescue budget.
  CompileService::JobHandle Fast = Service.submit(weaverJob(20, 2));

  EXPECT_EQ(waitOrDie(Hung).State, JobState::Failed);
  JobOutcome Out = waitOrDie(Fast);
  EXPECT_EQ(Out.State, JobState::Completed);
  EXPECT_FALSE(Out.WatchdogTimedOut);
}

TEST(CompileService, WatchdogIdleOnFastJobs) {
  // A generous budget never fires on healthy jobs.
  FaultGuard Guard;
  ServiceOptions Opt;
  Opt.NumThreads = 1;
  Opt.WatchdogSeconds = 30.0;
  CompileService Service(Opt);
  JobOutcome Out = waitOrDie(Service.submit(weaverJob(20, 1)));
  EXPECT_EQ(Out.State, JobState::Completed);
  EXPECT_FALSE(Out.WatchdogTimedOut);
  EXPECT_EQ(Service.stats().WatchdogTimeouts, 0u);
}

TEST(CompileService, InjectedWorkerCrashResolvesFailedAndPoolSurvives) {
  // A simulated worker crash resolves the job Failed with the injected
  // diagnostic; the pool keeps serving and the accounting balances.
  FaultGuard Guard;
  ServiceOptions Opt;
  Opt.NumThreads = 1;
  CompileService Service(Opt);

  ASSERT_FALSE(fault::configureGlobal("seed=1;service.job.crash:count=1"));
  JobOutcome Out = waitOrDie(Service.submit(weaverJob(20, 1)));
  EXPECT_EQ(Out.State, JobState::Failed);
  EXPECT_EQ(Out.Diagnostic, "worker crashed (injected fault)");
  EXPECT_FALSE(Out.WatchdogTimedOut);

  JobOutcome Next = waitOrDie(Service.submit(weaverJob(20, 1)));
  EXPECT_EQ(Next.State, JobState::Completed);
  CompileService::ServiceStats S = Service.stats();
  EXPECT_EQ(S.Submitted, S.Completed + S.Cancelled + S.Failed);
  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.WatchdogTimeouts, 0u);
}

TEST(CompileService, ShutdownWithArmedWatchdogIsClean) {
  // Shutdown while watchdog deadlines are outstanding (healthy jobs,
  // generous budgets) must not fire spurious timeouts or deadlock.
  FaultGuard Guard;
  ServiceOptions Opt;
  Opt.NumThreads = 2;
  Opt.WatchdogSeconds = 60.0;
  CompileService Service(Opt);
  std::vector<CompileService::JobHandle> Handles;
  for (int I = 1; I <= 4; ++I)
    Handles.push_back(Service.submit(weaverJob(20, I)));
  Service.shutdown(/*Drain=*/true);
  for (const auto &H : Handles)
    EXPECT_EQ(waitOrDie(H).State, JobState::Completed);
  EXPECT_EQ(Service.stats().WatchdogTimeouts, 0u);
}
