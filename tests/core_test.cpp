//===- tests/core_test.cpp - Weaver compiler unit + property tests --------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ClauseColoring.h"
#include "core/WChecker.h"
#include "core/WeaverCompiler.h"
#include "qaoa/Builder.h"
#include "qasm/Parser.h"
#include "qasm/Printer.h"
#include "sat/Generator.h"
#include "sim/StateVector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

using namespace weaver;
using namespace weaver::core;
using sat::Clause;
using sat::CnfFormula;

namespace {

CnfFormula paperExample() {
  // The running example of Fig. 5: [[-1,-2,-3], [4,-5,6], [3,5,-6]].
  return CnfFormula(6, {Clause{-1, -2, -3}, Clause{4, -5, 6},
                        Clause{3, 5, -6}});
}

} // namespace

// --- Clause colouring ---------------------------------------------------------

TEST(ClauseColoring, PaperExampleUsesTwoColors) {
  ClauseColoring C = colorClausesDSatur(paperExample());
  EXPECT_EQ(C.numColors(), 2);
  EXPECT_TRUE(C.isValid(paperExample()));
  // Clauses 0 and 1 are variable-disjoint; clause 2 conflicts with both.
  EXPECT_EQ(C.ColorOf[0], C.ColorOf[1]);
  EXPECT_NE(C.ColorOf[2], C.ColorOf[0]);
}

TEST(ClauseColoring, SingleClause) {
  CnfFormula F(3, {Clause{1, 2, 3}});
  ClauseColoring C = colorClausesDSatur(F);
  EXPECT_EQ(C.numColors(), 1);
}

TEST(ClauseColoring, FullyConflictingClauses) {
  CnfFormula F(3, {Clause{1, 2, 3}, Clause{1, 2, 3}, Clause{-1, -2, -3}});
  ClauseColoring C = colorClausesDSatur(F);
  EXPECT_EQ(C.numColors(), 3);
  EXPECT_TRUE(C.isValid(F));
}

TEST(ClauseColoring, EmptyFormula) {
  CnfFormula F(4, {});
  EXPECT_EQ(colorClausesDSatur(F).numColors(), 0);
}

class ColoringProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColoringProperty, DSaturIsValidAndNoWorseThanFirstFit) {
  CnfFormula F = sat::RandomSatGenerator(GetParam()).generate(15, 60);
  ClauseColoring DSatur = colorClausesDSatur(F);
  ClauseColoring FirstFit = colorClausesFirstFit(F);
  EXPECT_TRUE(DSatur.isValid(F));
  EXPECT_TRUE(FirstFit.isValid(F));
  EXPECT_LE(DSatur.numColors(), FirstFit.numColors() + 1)
      << "DSatur should not be substantially worse than first-fit";
  // Lower bound: at least ceil(maxOccurrences) colours are needed for the
  // busiest variable.
  std::vector<int> Occurrences(F.numVariables() + 1, 0);
  for (const Clause &C : F.clauses())
    for (sat::Literal L : C)
      Occurrences[L.variable()]++;
  int MaxOcc = *std::max_element(Occurrences.begin(), Occurrences.end());
  EXPECT_GE(DSatur.numColors(), MaxOcc);
  // ClausesByColor partitions all clauses.
  size_t Total = 0;
  for (const auto &Group : DSatur.ClausesByColor)
    Total += Group.size();
  EXPECT_EQ(Total, F.numClauses());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColoringProperty,
                         ::testing::Values(10, 20, 30, 40, 50, 60));

namespace {

/// The pre-rewrite quadratic DSatur (linear scan per step over set-based
/// saturation state), kept verbatim as the behavioural reference: the
/// bucketed implementation must reproduce its selection order — and thus
/// its colouring — exactly.
std::vector<int> referenceDSatur(const CnfFormula &F) {
  size_t N = F.numClauses();
  std::vector<std::vector<size_t>> Adj(N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      if (I != J && F.clause(I).sharesVariableWith(F.clause(J)))
        Adj[I].push_back(J);
  // The dense formulation has a self-loop for clauses repeating a variable.
  for (size_t I = 0; I < N; ++I) {
    const Clause &C = F.clause(I);
    for (size_t A = 0; A < C.size(); ++A)
      for (size_t B = 0; B < A; ++B)
        if (C[A].variable() == C[B].variable() &&
            (Adj[I].empty() || Adj[I].back() != I)) {
          Adj[I].push_back(I);
          std::sort(Adj[I].begin(), Adj[I].end());
        }
  }
  std::vector<int> ColorOf(N, -1);
  std::vector<std::set<int>> NeighbourColors(N);
  for (size_t Step = 0; Step < N; ++Step) {
    size_t Best = N;
    for (size_t I = 0; I < N; ++I) {
      if (ColorOf[I] != -1)
        continue;
      if (Best == N ||
          NeighbourColors[I].size() > NeighbourColors[Best].size() ||
          (NeighbourColors[I].size() == NeighbourColors[Best].size() &&
           Adj[I].size() > Adj[Best].size()))
        Best = I;
    }
    int Color = 0;
    while (NeighbourColors[Best].count(Color))
      ++Color;
    ColorOf[Best] = Color;
    for (size_t Nb : Adj[Best])
      NeighbourColors[Nb].insert(Color);
  }
  return ColorOf;
}

/// Mixed-width formula with unit/binary clauses and a repeated variable.
CnfFormula awkwardFormula() {
  return CnfFormula(7, {Clause{1}, Clause{-2, 3}, Clause{-3, -4, -5},
                        Clause{2, 4}, Clause{-1, 4, 5}, Clause{6, -6, 7},
                        Clause{5}, Clause{-7, 1, 2}});
}

} // namespace

TEST(ClauseColoring, BucketedDSaturMatchesQuadraticReference) {
  for (uint64_t Seed : {1u, 7u, 23u, 91u}) {
    CnfFormula F = sat::RandomSatGenerator(Seed).generate(18, 75);
    EXPECT_EQ(colorClausesDSatur(F).ColorOf, referenceDSatur(F))
        << "seed " << Seed;
  }
  CnfFormula Awkward = awkwardFormula();
  EXPECT_EQ(colorClausesDSatur(Awkward).ColorOf, referenceDSatur(Awkward));
}

TEST(ClauseColoring, ConflictGraphMatchesPairwisePredicate) {
  CnfFormula F = awkwardFormula();
  std::vector<std::vector<size_t>> Adj = buildClauseConflictGraph(F);
  ASSERT_EQ(Adj.size(), F.numClauses());
  for (size_t I = 0; I < F.numClauses(); ++I)
    for (size_t J = 0; J < F.numClauses(); ++J) {
      bool Conflicts =
          I != J && F.clause(I).sharesVariableWith(F.clause(J));
      bool Listed =
          std::find(Adj[I].begin(), Adj[I].end(), J) != Adj[I].end();
      if (I != J) {
        EXPECT_EQ(Listed, Conflicts) << I << " vs " << J;
      }
    }
  // Clause 5 repeats variable 6, so it carries the dense self-loop.
  EXPECT_NE(std::find(Adj[5].begin(), Adj[5].end(), 5u), Adj[5].end());
  EXPECT_EQ(std::find(Adj[0].begin(), Adj[0].end(), 0u), Adj[0].end());
}

TEST(ClauseColoring, IsValidMatchesPairwiseCheck) {
  CnfFormula F = awkwardFormula();
  sat::RandomSatGenerator Gen(3);
  // Random colourings (valid and invalid alike) must agree with the
  // brute-force pairwise definition.
  std::mt19937_64 Rng(5);
  for (int Trial = 0; Trial < 50; ++Trial) {
    ClauseColoring C;
    for (size_t I = 0; I < F.numClauses(); ++I)
      C.ColorOf.push_back(static_cast<int>(Rng() % 4));
    bool Reference = true;
    for (size_t I = 0; I < F.numClauses() && Reference; ++I)
      for (size_t J = I + 1; J < F.numClauses(); ++J)
        if (C.ColorOf[I] == C.ColorOf[J] &&
            F.clause(I).sharesVariableWith(F.clause(J))) {
          Reference = false;
          break;
        }
    EXPECT_EQ(C.isValid(F), Reference) << "trial " << Trial;
  }
  // Size mismatch is invalid.
  ClauseColoring Short;
  Short.ColorOf = {0};
  EXPECT_FALSE(Short.isValid(F));
}

TEST(ClauseColoring, FirstFitUsesSmallestFreeColourInInputOrder) {
  for (uint64_t Seed : {2u, 13u}) {
    CnfFormula F = sat::RandomSatGenerator(Seed).generate(12, 50);
    ClauseColoring C = colorClausesFirstFit(F);
    ASSERT_TRUE(C.isValid(F));
    // Reference: greedy smallest-free-colour over the pairwise predicate.
    std::vector<int> Expected(F.numClauses(), -1);
    for (size_t I = 0; I < F.numClauses(); ++I) {
      std::set<int> Used;
      for (size_t J = 0; J < I; ++J)
        if (F.clause(I).sharesVariableWith(F.clause(J)))
          Used.insert(Expected[J]);
      int Color = 0;
      while (Used.count(Color))
        ++Color;
      Expected[I] = Color;
    }
    EXPECT_EQ(C.ColorOf, Expected) << "seed " << Seed;
  }
}

// --- End-to-end compilation + verification -------------------------------------

TEST(WeaverCompiler, PaperExampleVerifies) {
  WeaverOptions Opt;
  Opt.RunChecker = true;
  auto R = compileWeaver(paperExample(), Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  ASSERT_TRUE(R->Check.has_value());
  EXPECT_TRUE(R->Check->StructuralOk) << R->Check->Diagnostic;
  EXPECT_TRUE(R->Check->UnitaryChecked);
  EXPECT_TRUE(R->Check->UnitaryOk) << R->Check->Diagnostic;
  EXPECT_TRUE(R->CompressionUsed);
  EXPECT_GT(R->Stats.RydbergPulses, 0u);
  EXPECT_EQ(R->Stats.CczGates, 6u); // 3 clauses x 2 CCZ
}

TEST(WeaverCompiler, LadderModeVerifies) {
  WeaverOptions Opt;
  Opt.RunChecker = true;
  Opt.Compression = WeaverOptions::CompressionMode::Off;
  auto R = compileWeaver(paperExample(), Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_FALSE(R->CompressionUsed);
  EXPECT_TRUE(R->Check->passed()) << R->Check->Diagnostic;
  EXPECT_EQ(R->Stats.CczGates, 0u);
  EXPECT_GT(R->Stats.CzGates, R->Stats.RamanGlobalPulses);
}

TEST(WeaverCompiler, CompressionReducesPulses) {
  WeaverOptions On, Off;
  On.Compression = WeaverOptions::CompressionMode::On;
  Off.Compression = WeaverOptions::CompressionMode::Off;
  auto ROn = compileWeaver(paperExample(), On);
  auto ROff = compileWeaver(paperExample(), Off);
  ASSERT_TRUE(ROn.ok() && ROff.ok());
  EXPECT_LT(ROn->Stats.totalPulses(), ROff->Stats.totalPulses());
  EXPECT_LT(ROn->Stats.Duration, ROff->Stats.Duration);
}

class CompileProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(CompileProperty, RandomSmallFormulasVerifyEndToEnd) {
  auto [Seed, Compress] = GetParam();
  CnfFormula F = sat::RandomSatGenerator(Seed).generate(8, 16);
  WeaverOptions Opt;
  Opt.RunChecker = true;
  Opt.Compression = Compress ? WeaverOptions::CompressionMode::On
                             : WeaverOptions::CompressionMode::Off;
  auto R = compileWeaver(F, Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  ASSERT_TRUE(R->Check.has_value());
  EXPECT_TRUE(R->Check->StructuralOk) << R->Check->Diagnostic;
  EXPECT_TRUE(R->Check->UnitaryChecked);
  EXPECT_TRUE(R->Check->UnitaryOk) << R->Check->Diagnostic;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, CompileProperty,
    ::testing::Combine(::testing::Values(101, 102, 103, 104),
                       ::testing::Bool()));

TEST(WeaverCompiler, MixedClauseWidthsVerify) {
  CnfFormula F(5, {Clause{1}, Clause{-2, 3}, Clause{-3, -4, -5},
                   Clause{2, 4}, Clause{-1, 4, 5}});
  WeaverOptions Opt;
  Opt.RunChecker = true;
  auto R = compileWeaver(F, Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_TRUE(R->Check->passed()) << R->Check->Diagnostic;
}

TEST(WeaverCompiler, TwoLayersVerify) {
  WeaverOptions Opt;
  Opt.RunChecker = true;
  Opt.Qaoa.Layers = 2;
  auto R = compileWeaver(paperExample(), Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_TRUE(R->Check->passed()) << R->Check->Diagnostic;
}

TEST(WeaverCompiler, MeasureEmitsMeasurements) {
  WeaverOptions Opt;
  Opt.Measure = true;
  auto R = compileWeaver(paperExample(), Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  size_t Measures = 0;
  for (const auto &S : R->Program.Statements)
    Measures += S.Gate.kind() == circuit::GateKind::Measure;
  EXPECT_EQ(Measures, 6u);
}

TEST(WeaverCompiler, EmptyFormulaCompiles) {
  CnfFormula F(3, {});
  WeaverOptions Opt;
  Opt.RunChecker = true;
  auto R = compileWeaver(F, Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_TRUE(R->Check->passed()) << R->Check->Diagnostic;
}

TEST(WeaverCompiler, GeneratedWqasmParsesBack) {
  WeaverOptions Opt;
  auto R = compileWeaver(paperExample(), Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  std::string Text = qasm::printWqasm(R->Program);
  auto Back = qasm::parseWqasm(Text);
  ASSERT_TRUE(Back.ok()) << Back.message();
  EXPECT_EQ(Back->Statements.size(), R->Program.Statements.size());
  EXPECT_EQ(Back->numAnnotations(), R->Program.numAnnotations());
  // The re-parsed program still passes the checker.
  CheckReport Report = checkWqasm(*Back, Opt.Hw);
  EXPECT_TRUE(Report.StructuralOk) << Report.Diagnostic;
}

TEST(WeaverCompiler, FirstFitColoringStillVerifies) {
  WeaverOptions Opt;
  Opt.UseDSatur = false;
  Opt.RunChecker = true;
  auto R = compileWeaver(paperExample(), Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_TRUE(R->Check->passed()) << R->Check->Diagnostic;
}

// --- wChecker negative cases ---------------------------------------------------

TEST(WChecker, DetectsTamperedGate) {
  WeaverOptions Opt;
  auto R = compileWeaver(paperExample(), Opt);
  ASSERT_TRUE(R.ok());
  qasm::WqasmProgram Tampered = R->Program;
  // Flip the first CCZ statement to a CZ on different qubits.
  for (auto &S : Tampered.Statements)
    if (S.Gate.kind() == circuit::GateKind::CCZ) {
      S.Gate = circuit::Gate(circuit::GateKind::CZ, {0, 1});
      break;
    }
  CheckReport Report = checkWqasm(Tampered, Opt.Hw);
  EXPECT_FALSE(Report.StructuralOk);
}

TEST(WChecker, DetectsWrongRamanAngle) {
  WeaverOptions Opt;
  auto R = compileWeaver(paperExample(), Opt);
  ASSERT_TRUE(R.ok());
  qasm::WqasmProgram Tampered = R->Program;
  for (auto &S : Tampered.Statements)
    for (auto &A : S.Annotations)
      if (A.Kind == qasm::AnnotationKind::RamanLocal) {
        A.AngleX += 0.1;
        CheckReport Report = checkWqasm(Tampered, Opt.Hw);
        EXPECT_FALSE(Report.StructuralOk);
        return;
      }
  FAIL() << "no local Raman annotation found";
}

TEST(WChecker, DetectsMissingPulse) {
  WeaverOptions Opt;
  auto R = compileWeaver(paperExample(), Opt);
  ASSERT_TRUE(R.ok());
  qasm::WqasmProgram Tampered = R->Program;
  for (auto &S : Tampered.Statements)
    if (!S.Annotations.empty() &&
        S.Annotations.back().Kind == qasm::AnnotationKind::Rydberg) {
      S.Annotations.pop_back();
      CheckReport Report = checkWqasm(Tampered, Opt.Hw);
      EXPECT_FALSE(Report.StructuralOk);
      return;
    }
  FAIL() << "no Rydberg annotation found";
}

TEST(WChecker, DetectsExtraLogicalGate) {
  WeaverOptions Opt;
  auto R = compileWeaver(paperExample(), Opt);
  ASSERT_TRUE(R.ok());
  qasm::WqasmProgram Tampered = R->Program;
  Tampered.Statements.push_back(
      qasm::GateStatement{circuit::Gate(circuit::GateKind::H, {0}), {}});
  CheckReport Report = checkWqasm(Tampered, Opt.Hw);
  EXPECT_FALSE(Report.StructuralOk);
}

/// Builds a checker input whose only content is an AOD grid (columns at 0,
/// 5, 10) followed by one parallel shuttle batch — the minimal program
/// exercising the batched-motion validation path.
static qasm::WqasmProgram
parallelShuttleProgram(std::vector<int> Indices,
                       std::vector<double> Offsets) {
  qasm::WqasmProgram P;
  P.TrailingAnnotations = {
      qasm::Annotation::aod({0.0, 5.0, 10.0}, {2.0}),
      qasm::Annotation::shuttleParallel(false, std::move(Indices),
                                        std::move(Offsets))};
  return P;
}

TEST(WChecker, AcceptsValidParallelShuttleBatch) {
  CheckReport Report = checkWqasm(
      parallelShuttleProgram({0, 1, 2}, {3.0, 2.0, 1.0}), {});
  EXPECT_TRUE(Report.StructuralOk) << Report.Diagnostic;
}

TEST(WChecker, RejectsParallelShuttleWithOverlappingColumns) {
  CheckReport Report =
      checkWqasm(parallelShuttleProgram({1, 1}, {1.0, 1.0}), {});
  EXPECT_FALSE(Report.StructuralOk);
  EXPECT_NE(Report.Diagnostic.find("ascending"), std::string::npos)
      << Report.Diagnostic;
}

TEST(WChecker, RejectsParallelShuttleOrderInversion) {
  // Column 0 would end at 7, past column 1's unmoved 5: simultaneous
  // traps may not cross.
  CheckReport Report =
      checkWqasm(parallelShuttleProgram({0}, {7.0}), {});
  EXPECT_FALSE(Report.StructuralOk);
  EXPECT_NE(Report.Diagnostic.find("cross or crowd"), std::string::npos)
      << Report.Diagnostic;
}

TEST(WChecker, RejectsParallelShuttleSubMinimumSpacing) {
  // Columns 0 and 1 both move right but end 0.4 apart — below the
  // minimum AOD separation even though their order is preserved.
  CheckReport Report = checkWqasm(
      parallelShuttleProgram({0, 1}, {5.6, 1.0}), {});
  EXPECT_FALSE(Report.StructuralOk);
  EXPECT_NE(Report.Diagnostic.find("crowd"), std::string::npos)
      << Report.Diagnostic;
}

TEST(WChecker, UnitaryCheckCatchesSemanticDrift) {
  // Build a program whose pulses are self-consistent but implement a
  // different unitary than the reference.
  WeaverOptions Opt;
  auto R = compileWeaver(paperExample(), Opt);
  ASSERT_TRUE(R.ok());
  qaoa::QaoaParams Wrong;
  Wrong.Gamma = 0.123; // reference with the wrong angle
  circuit::Circuit Reference =
      qaoa::buildQaoaCircuit(paperExample(), Wrong);
  CheckReport Report = checkWqasm(R->Program, Opt.Hw, &Reference);
  EXPECT_TRUE(Report.StructuralOk) << Report.Diagnostic;
  EXPECT_TRUE(Report.UnitaryChecked);
  EXPECT_FALSE(Report.UnitaryOk);
}

TEST(WChecker, SkipsUnitaryForLargeRegisters) {
  CnfFormula F = sat::satlibInstance(20, 1);
  WeaverOptions Opt;
  auto R = compileWeaver(F, Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  qaoa::QaoaParams P;
  circuit::Circuit Reference = qaoa::buildQaoaCircuit(F, P);
  CheckReport Report = checkWqasm(R->Program, Opt.Hw, &Reference);
  EXPECT_TRUE(Report.StructuralOk) << Report.Diagnostic;
  EXPECT_FALSE(Report.UnitaryChecked);
}

TEST(WChecker, ReconstructedCircuitMatchesReference) {
  CnfFormula F = paperExample();
  WeaverOptions Opt;
  Opt.RunChecker = true;
  auto R = compileWeaver(F, Opt);
  ASSERT_TRUE(R.ok());
  ASSERT_TRUE(R->Check->passed());
  const circuit::Circuit &Rec = R->Check->Reconstructed;
  EXPECT_EQ(Rec.numQubits(), 6);
  EXPECT_EQ(Rec.count(circuit::GateKind::CCZ), 6u);
  // The reconstruction contains only U3/CZ/CCZ.
  for (const circuit::Gate &G : Rec) {
    auto K = G.kind();
    EXPECT_TRUE(K == circuit::GateKind::U3 || K == circuit::GateKind::CZ ||
                K == circuit::GateKind::CCZ)
        << G.str();
  }
}
