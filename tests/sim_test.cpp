//===- tests/sim_test.cpp - simulator unit + property tests ---------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/GateMatrices.h"
#include "sim/Matrix.h"
#include "sim/Optimize.h"
#include "sim/StateVector.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace weaver;
using namespace weaver::sim;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {
constexpr double Pi = 3.14159265358979323846;

Gate makeGate(GateKind Kind, double P0 = 0.3) {
  unsigned Arity = circuit::gateArity(Kind);
  unsigned Params = circuit::gateNumParams(Kind);
  std::initializer_list<int> Q1 = {0}, Q2 = {0, 1}, Q3 = {0, 1, 2};
  auto Qs = Arity == 1 ? Q1 : (Arity == 2 ? Q2 : Q3);
  if (Params == 0)
    return Gate(Kind, Qs);
  if (Params == 1)
    return Gate(Kind, Qs, {P0});
  return Gate(Kind, Qs, {P0, 0.5, -0.7});
}

/// A random circuit over \p NumQubits with \p NumGates unitary gates.
Circuit randomCircuit(int NumQubits, int NumGates, uint64_t Seed) {
  static const GateKind Pool[] = {
      GateKind::X,  GateKind::H,  GateKind::S,   GateKind::T,
      GateKind::RX, GateKind::RY, GateKind::RZ,  GateKind::U3,
      GateKind::CX, GateKind::CZ, GateKind::SWAP, GateKind::RZZ,
      GateKind::CCZ};
  Xoshiro256 Rng(Seed);
  Circuit C(NumQubits);
  for (int I = 0; I < NumGates; ++I) {
    GateKind Kind = Pool[Rng.nextBelow(std::size(Pool))];
    unsigned Arity = circuit::gateArity(Kind);
    if (static_cast<int>(Arity) > NumQubits) {
      --I;
      continue;
    }
    int Q[3];
    for (unsigned J = 0; J < Arity;) {
      int Cand = static_cast<int>(Rng.nextBelow(NumQubits));
      bool Dup = false;
      for (unsigned K = 0; K < J; ++K)
        Dup |= Q[K] == Cand;
      if (!Dup)
        Q[J++] = Cand;
    }
    double P0 = Rng.nextDouble() * 2 * Pi - Pi;
    double P1 = Rng.nextDouble() * 2 * Pi - Pi;
    double P2 = Rng.nextDouble() * 2 * Pi - Pi;
    switch (circuit::gateNumParams(Kind)) {
    case 0:
      if (Arity == 1)
        C.append(Gate(Kind, {Q[0]}));
      else if (Arity == 2)
        C.append(Gate(Kind, {Q[0], Q[1]}));
      else
        C.append(Gate(Kind, {Q[0], Q[1], Q[2]}));
      break;
    case 1:
      if (Arity == 1)
        C.append(Gate(Kind, {Q[0]}, {P0}));
      else
        C.append(Gate(Kind, {Q[0], Q[1]}, {P0}));
      break;
    default:
      C.append(Gate(Kind, {Q[0]}, {P0, P1, P2}));
      break;
    }
  }
  return C;
}

} // namespace

// --- Matrix ----------------------------------------------------------------

TEST(Matrix, IdentityAndMultiply) {
  Matrix I = Matrix::identity(4);
  Matrix M(4, 4);
  M.at(0, 3) = Complex(0, 1);
  EXPECT_NEAR(I.multiply(M).maxAbsDiff(M), 0, 1e-15);
}

TEST(Matrix, DaggerConjugatesAndTransposes) {
  Matrix M(2, 2);
  M.at(0, 1) = Complex(1, 2);
  Matrix D = M.dagger();
  EXPECT_EQ(D.at(1, 0), Complex(1, -2));
}

TEST(Matrix, GlobalPhaseEquality) {
  Matrix A = Matrix::identity(2);
  Matrix B(2, 2);
  Complex Phase = std::polar(1.0, 0.83);
  B.at(0, 0) = Phase;
  B.at(1, 1) = Phase;
  EXPECT_TRUE(equalUpToGlobalPhase(A, B));
  B.at(1, 1) = std::polar(1.0, 0.84);
  EXPECT_FALSE(equalUpToGlobalPhase(A, B));
}

TEST(Matrix, GlobalPhaseRejectsScaling) {
  Matrix A = Matrix::identity(2), B = Matrix::identity(2);
  B.at(0, 0) = 2.0;
  B.at(1, 1) = 2.0;
  EXPECT_FALSE(equalUpToGlobalPhase(A, B));
}

// --- Gate matrices -----------------------------------------------------------

class GateUnitaryProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(GateUnitaryProperty, MatricesAreUnitary) {
  GateKind Kind = static_cast<GateKind>(GetParam());
  if (Kind == GateKind::Barrier || Kind == GateKind::Measure)
    GTEST_SKIP();
  EXPECT_TRUE(gateUnitary(makeGate(Kind)).isUnitary())
      << circuit::gateName(Kind);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GateUnitaryProperty,
                         ::testing::Range(0u, circuit::NumGateKinds));

TEST(GateMatrices, KnownValues) {
  Matrix X = gateUnitary(Gate(GateKind::X, {0}));
  EXPECT_EQ(X.at(0, 1), Complex(1, 0));
  Matrix CZ = gateUnitary(Gate(GateKind::CZ, {0, 1}));
  EXPECT_EQ(CZ.at(3, 3), Complex(-1, 0));
  Matrix CCZ = gateUnitary(Gate(GateKind::CCZ, {0, 1, 2}));
  EXPECT_EQ(CCZ.at(7, 7), Complex(-1, 0));
  EXPECT_EQ(CCZ.at(6, 6), Complex(1, 0));
}

TEST(GateMatrices, HSquaredIsIdentity) {
  Matrix H = gateUnitary(Gate(GateKind::H, {0}));
  EXPECT_NEAR(H.multiply(H).maxAbsDiff(Matrix::identity(2)), 0, 1e-12);
}

TEST(GateMatrices, U3ReproducesNamedGates) {
  // X = U3(pi, 0, pi); H = U3(pi/2, 0, pi).
  EXPECT_TRUE(equalUpToGlobalPhase(u3Matrix(Pi, 0, Pi),
                                   gateUnitary(Gate(GateKind::X, {0}))));
  EXPECT_TRUE(equalUpToGlobalPhase(u3Matrix(Pi / 2, 0, Pi),
                                   gateUnitary(Gate(GateKind::H, {0}))));
}

// --- State vector --------------------------------------------------------

TEST(StateVector, InitialBasisState) {
  StateVector SV(3, 0b101);
  EXPECT_EQ(SV.amplitude(0b101), Complex(1, 0));
  EXPECT_EQ(SV.amplitude(0), Complex(0, 0));
}

TEST(StateVector, XFlipsBit) {
  StateVector SV(2);
  SV.applyGate(Gate(GateKind::X, {1}));
  EXPECT_NEAR(std::abs(SV.amplitude(0b10)), 1.0, 1e-12);
}

TEST(StateVector, BellState) {
  StateVector SV(2);
  SV.applyGate(Gate(GateKind::H, {0}));
  SV.applyGate(Gate(GateKind::CX, {0, 1}));
  auto P = SV.probabilities();
  EXPECT_NEAR(P[0b00], 0.5, 1e-12);
  EXPECT_NEAR(P[0b11], 0.5, 1e-12);
  EXPECT_NEAR(P[0b01] + P[0b10], 0.0, 1e-12);
}

TEST(StateVector, CxControlIsFirstOperand) {
  StateVector SV(2, 0b01); // qubit 0 set
  SV.applyGate(Gate(GateKind::CX, {0, 1}));
  EXPECT_NEAR(std::abs(SV.amplitude(0b11)), 1.0, 1e-12);
  StateVector SV2(2, 0b10); // qubit 1 set, control 0 clear
  SV2.applyGate(Gate(GateKind::CX, {0, 1}));
  EXPECT_NEAR(std::abs(SV2.amplitude(0b10)), 1.0, 1e-12);
}

TEST(StateVector, NormPreservedByRandomCircuit) {
  Circuit C = randomCircuit(4, 60, 17);
  StateVector SV(4);
  SV.applyCircuit(C);
  EXPECT_NEAR(SV.norm(), 1.0, 1e-9);
}

TEST(StateVector, FidelityWithSelfIsOne) {
  Circuit C = randomCircuit(3, 25, 5);
  StateVector A(3), B(3);
  A.applyCircuit(C);
  B.applyCircuit(C);
  EXPECT_NEAR(A.fidelityWith(B), 1.0, 1e-9);
}

TEST(StateVector, CczAppliesPhaseOnAllOnes) {
  StateVector SV(3, 0b111);
  SV.applyGate(Gate(GateKind::CCZ, {0, 1, 2}));
  EXPECT_NEAR(SV.amplitude(0b111).real(), -1.0, 1e-12);
  StateVector SV2(3, 0b110);
  SV2.applyGate(Gate(GateKind::CCZ, {0, 1, 2}));
  EXPECT_NEAR(SV2.amplitude(0b110).real(), 1.0, 1e-12);
}

// --- Circuit unitaries ------------------------------------------------------

TEST(CircuitUnitary, MatchesGateMatrix) {
  Circuit C(2);
  C.cz(0, 1);
  Matrix U = circuitUnitary(C);
  EXPECT_NEAR(U.maxAbsDiff(gateUnitary(Gate(GateKind::CZ, {0, 1}))), 0,
              1e-12);
}

TEST(CircuitUnitary, RandomCircuitsAreUnitary) {
  for (uint64_t Seed = 0; Seed < 5; ++Seed)
    EXPECT_TRUE(circuitUnitary(randomCircuit(3, 30, Seed)).isUnitary());
}

TEST(CircuitsEquivalent, DetectsDifference) {
  Circuit A(2), B(2);
  A.h(0);
  B.h(0);
  EXPECT_TRUE(circuitsEquivalent(A, B));
  B.t(1);
  EXPECT_FALSE(circuitsEquivalent(A, B));
}

TEST(CircuitsEquivalent, IgnoresGlobalPhase) {
  Circuit A(1), B(1);
  A.rz(0.8, 0);            // exp(-i 0.4 Z)
  B.u3(0, 0, 0.8, 0);      // diag(1, e^{i 0.8}) = e^{i 0.4} RZ(0.8)
  EXPECT_TRUE(circuitsEquivalent(A, B));
}

// --- ZYZ decomposition + run merging ---------------------------------------

TEST(Zyz, ReconstructsRandomUnitaries) {
  Xoshiro256 Rng(42);
  for (int I = 0; I < 50; ++I) {
    double T = Rng.nextDouble() * Pi;
    double P = Rng.nextDouble() * 2 * Pi - Pi;
    double L = Rng.nextDouble() * 2 * Pi - Pi;
    Matrix U = u3Matrix(T, P, L);
    double T2, P2, L2;
    zyzDecompose(U, T2, P2, L2);
    EXPECT_TRUE(equalUpToGlobalPhase(U, u3Matrix(T2, P2, L2), 1e-9))
        << "theta=" << T << " phi=" << P << " lambda=" << L;
  }
}

TEST(Zyz, HandlesDiagonalAndAntiDiagonal) {
  double T, P, L;
  zyzDecompose(gateUnitary(Gate(GateKind::Z, {0})), T, P, L);
  EXPECT_NEAR(T, 0, 1e-12);
  zyzDecompose(gateUnitary(Gate(GateKind::X, {0})), T, P, L);
  EXPECT_NEAR(T, Pi, 1e-12);
}

TEST(MergeRuns, CollapsesRunToSingleU3) {
  Circuit C(1);
  C.h(0).t(0).s(0).rx(0.3, 0);
  Circuit M = mergeSingleQubitRuns(C);
  EXPECT_EQ(M.size(), 1u);
  EXPECT_EQ(M.gate(0).kind(), GateKind::U3);
  EXPECT_TRUE(circuitsEquivalent(C, M));
}

TEST(MergeRuns, DropsIdentityRuns) {
  Circuit C(1);
  C.h(0).h(0);
  EXPECT_TRUE(mergeSingleQubitRuns(C).empty());
}

TEST(MergeRuns, MultiQubitGatesFlush) {
  Circuit C(2);
  C.h(0).cz(0, 1).h(0);
  Circuit M = mergeSingleQubitRuns(C);
  // h, cz, h cannot merge across the CZ.
  EXPECT_EQ(M.size(), 3u);
  EXPECT_TRUE(circuitsEquivalent(C, M));
}

TEST(MergeRuns, PreservesRandomCircuitUnitaries) {
  for (uint64_t Seed = 100; Seed < 110; ++Seed) {
    Circuit C = randomCircuit(4, 40, Seed);
    Circuit M = mergeSingleQubitRuns(C);
    EXPECT_LE(M.size(), C.size());
    EXPECT_TRUE(circuitsEquivalent(C, M)) << "seed " << Seed;
  }
}

TEST(MergeRuns, MeasureAndBarrierFlush) {
  Circuit C(1);
  C.h(0).barrier().t(0).measure(0);
  Circuit M = mergeSingleQubitRuns(C);
  EXPECT_EQ(M.count(GateKind::Measure), 1u);
  EXPECT_EQ(M.count(GateKind::Barrier), 1u);
  EXPECT_EQ(M.count(GateKind::U3), 2u);
}
