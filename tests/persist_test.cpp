//===- tests/persist_test.cpp - Persistent PassCache snapshot tests -------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The durability contract of the PassCache snapshot format: a
/// save/load round trip serves byte-identical compiles across a process
/// "restart" (a fresh cache object), snapshot bytes are deterministic,
/// and every class of hostile file — missing, truncated, bit-flipped,
/// wrong version, wrong fingerprint, forged checksum — is rejected (or
/// degraded to a plain miss) without crashing, after which compilation
/// proceeds cold and still byte-identical. Concurrency: parallel readers
/// of one file, parallel shard writers compacted by mergeSnapshots, and
/// atomic saves racing on one path.
///
//===----------------------------------------------------------------------===//

#include "core/WeaverCompiler.h"
#include "core/pipeline/PassCache.h"
#include "qasm/Printer.h"
#include "sat/Generator.h"
#include "support/BinaryIO.h"
#include "support/FaultInjection.h"

#include "TestPaths.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <thread>
#include <vector>

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;
using sat::CnfFormula;

namespace {

CnfFormula testFormula(uint64_t Seed = 1, int Vars = 12, size_t Clauses = 40) {
  return sat::RandomSatGenerator(Seed).generate(Vars, Clauses);
}

WeaverOptions sweepPoint(double Gamma, double Beta, PassCache *Cache) {
  WeaverOptions Opt;
  Opt.Qaoa.Gamma = Gamma;
  Opt.Qaoa.Beta = Beta;
  Opt.Cache = Cache;
  return Opt;
}

std::string compileToText(const CnfFormula &F, const WeaverOptions &Opt) {
  auto R = compileWeaver(F, Opt);
  EXPECT_TRUE(R.ok()) << R.message();
  return R.ok() ? qasm::printWqasm(R->Program) : std::string();
}

/// Compiles \p F at two angle points through \p Cache, populating one
/// front entry and one template.
void populate(PassCache &Cache, const CnfFormula &F) {
  compileToText(F, sweepPoint(0.7, 0.3, &Cache));
  compileToText(F, sweepPoint(0.5, 0.2, &Cache));
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

/// Patches \p Bytes[Offset..Offset+8) with the little-endian \p V.
void patchU64At(std::vector<uint8_t> &Bytes, size_t Offset, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Bytes[Offset + I] = static_cast<uint8_t>(V >> (8 * I));
}

/// Rewrites the header checksum so forged payload bytes pass validation
/// (the malformed-payload tests need to get past the checksum gate).
void resealChecksum(std::vector<uint8_t> &Bytes) {
  ASSERT_GE(Bytes.size(), SnapshotHeaderBytes);
  patchU64At(Bytes, 32,
             fnv1a64(Bytes.data() + SnapshotHeaderBytes,
                     Bytes.size() - SnapshotHeaderBytes));
}

} // namespace

// --- Round trip ----------------------------------------------------------

TEST(PassCachePersist, RoundTripServesByteIdenticalCompiles) {
  std::string Path = testTempDir() + "/cache.bin";
  CnfFormula F = testFormula();

  // References: cache-off compiles at a stored and an unseen angle point.
  std::string RefA = compileToText(F, sweepPoint(0.7, 0.3, nullptr));
  std::string RefB = compileToText(F, sweepPoint(0.9, 0.15, nullptr));

  PassCache Writer;
  populate(Writer, F);
  ASSERT_FALSE(Writer.saveSnapshot(Path));

  // "Restart": a fresh cache object warm-started from the file.
  PassCache Reader;
  ASSERT_FALSE(Reader.loadSnapshot(Path));
  EXPECT_EQ(Reader.size(), Writer.size());
  EXPECT_EQ(Reader.stats().Materializations, 0u); // index only, so far

  EXPECT_EQ(compileToText(F, sweepPoint(0.7, 0.3, &Reader)), RefA);
  EXPECT_EQ(compileToText(F, sweepPoint(0.9, 0.15, &Reader)), RefB);

  PassCache::CacheStats S = Reader.stats();
  EXPECT_EQ(S.ProgramMisses, 0u) << "restart must be warm";
  EXPECT_EQ(S.ProgramHits, 2u);
  EXPECT_GT(S.Materializations, 0u) << "hits must come from the mapping";
}

TEST(PassCachePersist, SnapshotBytesAreDeterministic) {
  std::string DirPath = testTempDir();
  PassCache Cache;
  populate(Cache, testFormula(1));
  populate(Cache, testFormula(2));
  ASSERT_FALSE(Cache.saveSnapshot(DirPath + "/a.bin"));
  ASSERT_FALSE(Cache.saveSnapshot(DirPath + "/b.bin"));
  EXPECT_EQ(readFileBytes(DirPath + "/a.bin"),
            readFileBytes(DirPath + "/b.bin"));
}

TEST(PassCachePersist, LoadThenSaveCopiesBlobsWithoutMaterializing) {
  // The shard-merge path: load a snapshot and save it again without any
  // lookups. Unmaterialized entries must be copied byte-for-byte, giving
  // an identical file and zero materializations.
  std::string DirPath = testTempDir();
  PassCache Writer;
  populate(Writer, testFormula(1));
  populate(Writer, testFormula(2));
  ASSERT_FALSE(Writer.saveSnapshot(DirPath + "/first.bin"));

  PassCache Copier;
  ASSERT_FALSE(Copier.loadSnapshot(DirPath + "/first.bin"));
  ASSERT_FALSE(Copier.saveSnapshot(DirPath + "/second.bin"));
  EXPECT_EQ(Copier.stats().Materializations, 0u);
  EXPECT_EQ(readFileBytes(DirPath + "/first.bin"),
            readFileBytes(DirPath + "/second.bin"));
}

TEST(PassCachePersist, LoadMergesAndKeepsExistingEntries) {
  std::string Path = testTempDir() + "/cache.bin";
  PassCache A;
  populate(A, testFormula(1));
  ASSERT_FALSE(A.saveSnapshot(Path));

  // Loading into a cache that already has different entries adds the
  // file's; loading the same file again changes nothing.
  PassCache B;
  populate(B, testFormula(2));
  size_t Before = B.size();
  ASSERT_FALSE(B.loadSnapshot(Path));
  EXPECT_EQ(B.size(), Before + A.size());
  ASSERT_FALSE(B.loadSnapshot(Path));
  EXPECT_EQ(B.size(), Before + A.size());
}

// --- Hostile files -------------------------------------------------------

TEST(PassCachePersist, MissingAndEmptyFilesFailCleanly) {
  std::string DirPath = testTempDir();
  PassCache Cache;
  EXPECT_TRUE(Cache.loadSnapshot(DirPath + "/does-not-exist.bin"));
  writeFileBytes(DirPath + "/empty.bin", {});
  EXPECT_TRUE(Cache.loadSnapshot(DirPath + "/empty.bin"));
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(PassCachePersist, TruncatedFilesAreRejected) {
  std::string DirPath = testTempDir();
  CnfFormula F = testFormula();
  PassCache Writer;
  populate(Writer, F);
  ASSERT_FALSE(Writer.saveSnapshot(DirPath + "/full.bin"));
  std::vector<uint8_t> Full = readFileBytes(DirPath + "/full.bin");
  ASSERT_GT(Full.size(), SnapshotHeaderBytes);

  // Mid-header, just past the header, and one byte short of complete.
  const size_t Cuts[] = {SnapshotHeaderBytes - 1, SnapshotHeaderBytes + 16,
                         Full.size() - 1};
  for (size_t Cut : Cuts) {
    std::string Path = DirPath + "/cut" + std::to_string(Cut) + ".bin";
    writeFileBytes(Path,
                   std::vector<uint8_t>(Full.begin(), Full.begin() + Cut));
    PassCache Cache;
    EXPECT_TRUE(Cache.loadSnapshot(Path)) << "cut at " << Cut;
    EXPECT_EQ(Cache.size(), 0u);
    // The cold path still works after the rejected load.
    EXPECT_EQ(compileToText(F, sweepPoint(0.7, 0.3, &Cache)),
              compileToText(F, sweepPoint(0.7, 0.3, nullptr)));
  }
}

TEST(PassCachePersist, BitFlippedPayloadFailsChecksum) {
  std::string DirPath = testTempDir();
  PassCache Writer;
  populate(Writer, testFormula());
  ASSERT_FALSE(Writer.saveSnapshot(DirPath + "/good.bin"));
  std::vector<uint8_t> Bytes = readFileBytes(DirPath + "/good.bin");

  Bytes[SnapshotHeaderBytes + Bytes.size() / 2] ^= 0x40;
  writeFileBytes(DirPath + "/flipped.bin", Bytes);
  PassCache Cache;
  Status S = Cache.loadSnapshot(DirPath + "/flipped.bin");
  ASSERT_TRUE(S);
  EXPECT_NE(S.message().find("checksum"), std::string::npos) << S.message();
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(PassCachePersist, WrongMagicAndVersionAreRejected) {
  std::string DirPath = testTempDir();
  PassCache Writer;
  populate(Writer, testFormula());
  ASSERT_FALSE(Writer.saveSnapshot(DirPath + "/good.bin"));
  std::vector<uint8_t> Good = readFileBytes(DirPath + "/good.bin");

  std::vector<uint8_t> BadMagic = Good;
  patchU64At(BadMagic, 0, 0x21212121212121ull);
  writeFileBytes(DirPath + "/magic.bin", BadMagic);
  PassCache C1;
  Status S1 = C1.loadSnapshot(DirPath + "/magic.bin");
  ASSERT_TRUE(S1);
  EXPECT_NE(S1.message().find("snapshot"), std::string::npos) << S1.message();

  std::vector<uint8_t> BadVersion = Good;
  BadVersion[8] = static_cast<uint8_t>(SnapshotFormatVersion + 1);
  writeFileBytes(DirPath + "/version.bin", BadVersion);
  PassCache C2;
  Status S2 = C2.loadSnapshot(DirPath + "/version.bin");
  ASSERT_TRUE(S2);
  EXPECT_NE(S2.message().find("version"), std::string::npos) << S2.message();
  EXPECT_EQ(C1.size() + C2.size(), 0u);
}

TEST(PassCachePersist, FingerprintMismatchIsRejected) {
  std::string Path = testTempDir() + "/other-build.bin";
  PassCache Writer;
  populate(Writer, testFormula());
  // As if another compiler build had written the file.
  ASSERT_FALSE(Writer.saveSnapshot(Path, compilerFingerprint() + 1));

  PassCache Cache;
  Status S = Cache.loadSnapshot(Path);
  ASSERT_TRUE(S);
  EXPECT_NE(S.message().find("fingerprint"), std::string::npos)
      << S.message();
  EXPECT_EQ(Cache.size(), 0u);
  // The same file loads when the caller expects that fingerprint.
  EXPECT_FALSE(Cache.loadSnapshot(Path, compilerFingerprint() + 1));
  EXPECT_EQ(Cache.size(), Writer.size());
}

TEST(PassCachePersist, ForgedChecksumOverGarbageNeverCrashes) {
  // An attacker (or cosmic-ray cluster) can reseal the checksum over
  // arbitrary payload bytes; the bounds-checked parser must then either
  // reject the index or degrade entries to misses — never crash, never
  // block compilation.
  std::string DirPath = testTempDir();
  CnfFormula F = testFormula();
  PassCache Writer;
  populate(Writer, F);
  ASSERT_FALSE(Writer.saveSnapshot(DirPath + "/good.bin"));
  std::vector<uint8_t> Good = readFileBytes(DirPath + "/good.bin");

  // A few corruption shapes: zeroed payload head (kills the section
  // pool), 0xFF-saturated tail (kills the key index), and a single flip
  // deep in the pool (parse failure inside one blob at worst).
  for (int Shape = 0; Shape < 3; ++Shape) {
    std::vector<uint8_t> Bytes = Good;
    size_t PayloadLen = Bytes.size() - SnapshotHeaderBytes;
    if (Shape == 0)
      for (size_t I = 0; I < PayloadLen / 4; ++I)
        Bytes[SnapshotHeaderBytes + I] = 0;
    else if (Shape == 1)
      for (size_t I = Bytes.size() - PayloadLen / 4; I < Bytes.size(); ++I)
        Bytes[I] = 0xFF;
    else
      Bytes[SnapshotHeaderBytes + 24] ^= 0x01;
    resealChecksum(Bytes);
    std::string Path = DirPath + "/forged" + std::to_string(Shape) + ".bin";
    writeFileBytes(Path, Bytes);

    PassCache Cache;
    Cache.loadSnapshot(Path); // outcome may be reject or degraded entries
    EXPECT_EQ(compileToText(F, sweepPoint(0.7, 0.3, &Cache)),
              compileToText(F, sweepPoint(0.7, 0.3, nullptr)))
        << "shape " << Shape;
  }
}

// --- Concurrency ---------------------------------------------------------

TEST(PassCachePersist, ConcurrentReadersShareOneFile) {
  std::string Path = testTempDir() + "/cache.bin";
  CnfFormula F = testFormula();
  std::string Ref = compileToText(F, sweepPoint(0.7, 0.3, nullptr));
  PassCache Writer;
  populate(Writer, F);
  ASSERT_FALSE(Writer.saveSnapshot(Path));

  constexpr int Readers = 4;
  std::vector<std::string> Texts(Readers);
  std::vector<uint64_t> Misses(Readers, 1);
  std::vector<std::thread> Threads;
  for (int I = 0; I < Readers; ++I)
    Threads.emplace_back([&, I] {
      PassCache Cache;
      if (Cache.loadSnapshot(Path))
        return; // leave Misses[I] nonzero: the load must not fail
      Texts[I] = compileToText(F, sweepPoint(0.7, 0.3, &Cache));
      Misses[I] = Cache.stats().ProgramMisses;
    });
  for (std::thread &T : Threads)
    T.join();
  for (int I = 0; I < Readers; ++I) {
    EXPECT_EQ(Texts[I], Ref) << "reader " << I;
    EXPECT_EQ(Misses[I], 0u) << "reader " << I;
  }
}

TEST(PassCachePersist, ConcurrentShardWritersThenMerge) {
  // The shard_sweep protocol in miniature: N writers persist disjoint
  // segments concurrently; mergeSnapshots compacts them; the merged file
  // warm-serves every formula.
  std::string DirPath = testTempDir();
  constexpr int Shards = 4;
  std::vector<CnfFormula> Formulas;
  std::vector<std::string> Segments;
  for (int K = 0; K < Shards; ++K) {
    Formulas.push_back(testFormula(100 + K));
    Segments.push_back(DirPath + "/seg" + std::to_string(K) + ".bin");
  }

  std::vector<std::thread> Threads;
  std::vector<int> Failed(Shards, 0);
  for (int K = 0; K < Shards; ++K)
    Threads.emplace_back([&, K] {
      PassCache Cache;
      populate(Cache, Formulas[K]);
      Failed[K] = Cache.saveSnapshot(Segments[K]) ? 1 : 0;
    });
  for (std::thread &T : Threads)
    T.join();
  for (int K = 0; K < Shards; ++K)
    ASSERT_EQ(Failed[K], 0) << "segment " << K;

  std::string Merged = DirPath + "/merged.bin";
  ASSERT_FALSE(PassCache::mergeSnapshots(Segments, Merged));

  PassCache Cache;
  ASSERT_FALSE(Cache.loadSnapshot(Merged));
  for (int K = 0; K < Shards; ++K)
    EXPECT_EQ(compileToText(Formulas[K], sweepPoint(0.7, 0.3, &Cache)),
              compileToText(Formulas[K], sweepPoint(0.7, 0.3, nullptr)));
  EXPECT_EQ(Cache.stats().ProgramMisses, 0u);
}

TEST(PassCachePersist, RacingSaversOnOnePathLeaveAValidFile) {
  // Atomic temp+rename: whichever writer lands last, a concurrent reader
  // never observes a partial file.
  std::string Path = testTempDir() + "/raced.bin";
  constexpr int Writers = 4;
  std::vector<PassCache> Caches(Writers);
  for (int K = 0; K < Writers; ++K)
    populate(Caches[K], testFormula(200 + K));

  std::vector<std::thread> Threads;
  for (int K = 0; K < Writers; ++K)
    Threads.emplace_back([&, K] {
      for (int Round = 0; Round < 8; ++Round)
        ASSERT_FALSE(Caches[K].saveSnapshot(Path));
    });
  std::atomic<int> GoodLoads{0};
  Threads.emplace_back([&] {
    for (int Round = 0; Round < 16; ++Round) {
      PassCache Cache;
      Status S = Cache.loadSnapshot(Path);
      // ENOENT before the first rename is fine; anything that loads must
      // be complete and valid.
      if (!S)
        GoodLoads.fetch_add(1);
    }
  });
  for (std::thread &T : Threads)
    T.join();

  PassCache Final;
  EXPECT_FALSE(Final.loadSnapshot(Path));
  EXPECT_GT(Final.size(), 0u);
}

// --- Accounting ----------------------------------------------------------

TEST(PassCachePersist, MaterializationsCountOncePerEntry) {
  std::string Path = testTempDir() + "/cache.bin";
  CnfFormula F = testFormula();
  PassCache Writer;
  populate(Writer, F);
  ASSERT_FALSE(Writer.saveSnapshot(Path));

  PassCache Reader;
  ASSERT_FALSE(Reader.loadSnapshot(Path));
  EXPECT_EQ(Reader.stats().Materializations, 0u);
  compileToText(F, sweepPoint(0.7, 0.3, &Reader));
  uint64_t AfterFirst = Reader.stats().Materializations;
  EXPECT_GT(AfterFirst, 0u);
  compileToText(F, sweepPoint(0.4, 0.1, &Reader));
  // The second hit reuses the materialized sections.
  EXPECT_EQ(Reader.stats().Materializations, AfterFirst);
}

// --- BinaryIO primitives -------------------------------------------------

TEST(BinaryIO, ReaderLatchesOnOverrun) {
  BinaryWriter W;
  W.writeU32(7);
  BinaryReader R(W.bytes().data(), W.size());
  EXPECT_EQ(R.readU32(), 7u);
  EXPECT_TRUE(R.ok());
  (void)R.readU64(); // past the end
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.readU64(), 0u) << "failed reader must keep returning zero";
}

TEST(BinaryIO, ReadLengthRejectsOversizedCounts) {
  BinaryWriter W;
  W.writeU64(static_cast<uint64_t>(-1)); // absurd element count
  BinaryReader R(W.bytes().data(), W.size());
  EXPECT_EQ(R.readLength(8), 0u);
  EXPECT_FALSE(R.ok());
}

TEST(BinaryIO, WriterRoundTripsEveryScalar) {
  BinaryWriter W;
  W.writeU8(0xAB);
  W.writeU32(0xDEADBEEFu);
  W.writeU64(0x0123456789ABCDEFull);
  W.writeI64(-42);
  W.writeF64(3.14159);
  W.writeString("weaver");
  BinaryReader R(W.bytes().data(), W.size());
  EXPECT_EQ(R.readU8(), 0xAB);
  EXPECT_EQ(R.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(R.readU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(R.readI64(), -42);
  EXPECT_DOUBLE_EQ(R.readF64(), 3.14159);
  EXPECT_EQ(R.readString(), "weaver");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.remaining(), 0u);
}

// --- Fault injection -----------------------------------------------------

namespace {
/// Guarantees the process-global fault engine is disabled on scope exit,
/// whatever the test body did (the engine outlives the test otherwise).
struct FaultGuard {
  ~FaultGuard() { fault::resetGlobal(); }
};
} // namespace

TEST(PassCachePersist, FaultedSavesLeavePreviousSnapshotIntact) {
  // Every injectable failure on the save path — abort before writing,
  // open failure, short write (simulated crash mid-write), ENOSPC, fsync
  // failure, rename failure — must leave the previous snapshot's bytes
  // untouched and loadable. This is the durability half of the
  // atomic-save contract.
  FaultGuard Guard;
  std::string Path = testTempDir() + "/victim.bin";
  PassCache Old;
  populate(Old, testFormula(1));
  ASSERT_FALSE(Old.saveSnapshot(Path));
  std::vector<uint8_t> OldBytes = readFileBytes(Path);

  PassCache New;
  populate(New, testFormula(2)); // different content than the old snapshot

  const char *Sites[] = {"persist.save.abort", "binio.open",
                         "binio.write.short",  "binio.write.enospc",
                         "binio.fsync",        "binio.rename"};
  for (const char *Site : Sites) {
    ASSERT_FALSE(fault::configureGlobal(std::string("seed=1;") + Site));
    Status S = New.saveSnapshot(Path);
    EXPECT_TRUE(static_cast<bool>(S)) << Site << " did not fail the save";
    fault::resetGlobal();

    EXPECT_EQ(readFileBytes(Path), OldBytes)
        << Site << " corrupted the previous snapshot";
    PassCache Check;
    EXPECT_FALSE(Check.loadSnapshot(Path))
        << "previous snapshot unreadable after " << Site;
    EXPECT_EQ(Check.size(), Old.size());
  }

  // Faults lifted, the save goes through and replaces the file.
  ASSERT_FALSE(New.saveSnapshot(Path));
  EXPECT_NE(readFileBytes(Path), OldBytes);
}

TEST(PassCachePersist, DirFsyncFailureStillLeavesAValidSnapshot) {
  // binio.dirfsync fires after the rename landed: the save reports an
  // error (the directory entry may not be durable), but the file itself
  // is the complete new snapshot — never a torn in-between.
  FaultGuard Guard;
  std::string Path = testTempDir() + "/dirsync.bin";
  PassCache Cache;
  populate(Cache, testFormula(3));

  ASSERT_FALSE(fault::configureGlobal("seed=1;binio.dirfsync"));
  EXPECT_TRUE(static_cast<bool>(Cache.saveSnapshot(Path)));
  fault::resetGlobal();

  PassCache Check;
  EXPECT_FALSE(Check.loadSnapshot(Path));
  EXPECT_EQ(Check.size(), Cache.size());
}

TEST(PassCachePersist, FaultedLoadDegradesToColdCompile) {
  // A rejected load is a cache miss, not an error state: compilation
  // proceeds cold and stays byte-identical to the cache-off reference.
  FaultGuard Guard;
  std::string Path = testTempDir() + "/cold.bin";
  CnfFormula F = testFormula(4);
  std::string Ref = compileToText(F, sweepPoint(0.7, 0.3, nullptr));

  PassCache Writer;
  populate(Writer, F);
  ASSERT_FALSE(Writer.saveSnapshot(Path));

  ASSERT_FALSE(fault::configureGlobal("seed=1;persist.load.reject"));
  PassCache Reader;
  EXPECT_TRUE(static_cast<bool>(Reader.loadSnapshot(Path)));
  EXPECT_EQ(Reader.size(), 0u) << "rejected load must leave the cache cold";
  fault::resetGlobal();

  EXPECT_EQ(compileToText(F, sweepPoint(0.7, 0.3, &Reader)), Ref);
  EXPECT_GT(Reader.stats().ProgramMisses, 0u) << "compile ran cold";
}

TEST(PassCachePersist, TolerantMergeSkipsFaultRejectedSegment) {
  // The crash-recovery merge: one segment rejected (here by injection,
  // in production by a crash mid-write), the other good. The tolerant
  // overload records the loss and still merges the survivors.
  FaultGuard Guard;
  std::string DirPath = testTempDir();
  PassCache A, B;
  populate(A, testFormula(5));
  populate(B, testFormula(6));
  ASSERT_FALSE(A.saveSnapshot(DirPath + "/a.shard"));
  ASSERT_FALSE(B.saveSnapshot(DirPath + "/b.shard"));

  // count=1: exactly the first segment load is rejected.
  ASSERT_FALSE(
      fault::configureGlobal("seed=1;persist.load.reject:count=1"));
  std::vector<std::string> Skipped;
  Status S = PassCache::mergeSnapshots(
      {DirPath + "/a.shard", DirPath + "/b.shard"}, DirPath + "/merged.bin",
      &Skipped);
  fault::resetGlobal();
  EXPECT_FALSE(static_cast<bool>(S)) << S.message();
  ASSERT_EQ(Skipped.size(), 1u);
  EXPECT_NE(Skipped[0].find("a.shard"), std::string::npos);

  PassCache Merged;
  ASSERT_FALSE(Merged.loadSnapshot(DirPath + "/merged.bin"));
  EXPECT_EQ(Merged.size(), B.size()) << "survivor segment must be kept";

  // The strict overload refuses instead — callers that need every
  // segment still get the hard error.
  ASSERT_FALSE(
      fault::configureGlobal("seed=1;persist.load.reject:count=1"));
  EXPECT_TRUE(static_cast<bool>(PassCache::mergeSnapshots(
      {DirPath + "/a.shard", DirPath + "/b.shard"},
      DirPath + "/strict.bin")));
}
