//===- tests/circuit_test.cpp - circuit IR unit + property tests ----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "circuit/Circuit.h"
#include "circuit/Decompose.h"
#include "circuit/Gate.h"
#include "circuit/Schedule.h"
#include "sim/StateVector.h"

#include <gtest/gtest.h>

using namespace weaver;
using namespace weaver::circuit;

namespace {
constexpr double Pi = 3.14159265358979323846;
}

// --- Gate metadata, parameterised over every kind ------------------------

class GateKindMeta : public ::testing::TestWithParam<unsigned> {};

TEST_P(GateKindMeta, NameRoundTrips) {
  GateKind Kind = static_cast<GateKind>(GetParam());
  GateKind Parsed;
  ASSERT_TRUE(parseGateName(gateName(Kind), Parsed));
  EXPECT_EQ(Parsed, Kind);
}

TEST_P(GateKindMeta, ArityAndParamsAreConsistent) {
  GateKind Kind = static_cast<GateKind>(GetParam());
  EXPECT_LE(gateArity(Kind), 3u);
  EXPECT_LE(gateNumParams(Kind), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GateKindMeta,
                         ::testing::Range(0u, NumGateKinds));

TEST(GateName, Aliases) {
  GateKind K;
  ASSERT_TRUE(parseGateName("u", K));
  EXPECT_EQ(K, GateKind::U3);
  ASSERT_TRUE(parseGateName("cnot", K));
  EXPECT_EQ(K, GateKind::CX);
  ASSERT_TRUE(parseGateName("ccnot", K));
  EXPECT_EQ(K, GateKind::CCX);
  EXPECT_FALSE(parseGateName("frobnicate", K));
}

TEST(Gate, AccessorsAndOverlap) {
  Gate G(GateKind::CCZ, {0, 2, 4});
  EXPECT_EQ(G.numQubits(), 3u);
  EXPECT_TRUE(G.actsOn(2));
  EXPECT_FALSE(G.actsOn(1));
  Gate H(GateKind::H, {4});
  EXPECT_TRUE(G.overlaps(H));
  Gate X(GateKind::X, {1});
  EXPECT_FALSE(G.overlaps(X));
  Gate B(GateKind::Barrier, {});
  EXPECT_TRUE(G.overlaps(B));
}

TEST(Gate, StrRendersParams) {
  Gate G(GateKind::RZ, {3}, {0.5});
  EXPECT_EQ(G.str(), "rz(0.5) q[3]");
}

// --- Circuit ------------------------------------------------------------

TEST(Circuit, BuilderChainsAndCounts) {
  Circuit C(3);
  C.h(0).cx(0, 1).ccz(0, 1, 2).rz(0.3, 2).measureAll();
  EXPECT_EQ(C.size(), 7u);
  EXPECT_EQ(C.count(GateKind::Measure), 3u);
  CircuitStats S = C.stats();
  EXPECT_EQ(S.OneQubitGates, 2u);
  EXPECT_EQ(S.TwoQubitGates, 1u);
  EXPECT_EQ(S.ThreeQubitGates, 1u);
  EXPECT_EQ(S.TotalGates, 4u);
}

TEST(Circuit, DepthTracksQubitConflicts) {
  Circuit C(3);
  C.h(0).h(1).h(2); // parallel -> depth 1
  EXPECT_EQ(C.depth(), 1u);
  C.cx(0, 1); // depth 2
  C.cx(1, 2); // depth 3 (shares qubit 1)
  EXPECT_EQ(C.depth(), 3u);
}

TEST(Circuit, BarrierRaisesDepthFloor) {
  Circuit C(2);
  C.h(0);
  C.barrier();
  C.h(1); // would be depth 1 without the barrier
  EXPECT_EQ(C.depth(), 2u);
}

TEST(Circuit, WithoutNonUnitaryStripsMeasureAndBarrier) {
  Circuit C(2);
  C.h(0).barrier().measure(0).cz(0, 1);
  Circuit U = C.withoutNonUnitary();
  EXPECT_EQ(U.size(), 2u);
  EXPECT_EQ(U.gate(0).kind(), GateKind::H);
  EXPECT_EQ(U.gate(1).kind(), GateKind::CZ);
}

TEST(Circuit, AppendCircuit) {
  Circuit A(2), B(2);
  A.h(0);
  B.cz(0, 1);
  A.appendCircuit(B);
  EXPECT_EQ(A.size(), 2u);
}

// --- Decomposition: every lowering preserves the unitary -----------------

namespace {

/// Asserts translateToBasis output is equivalent and uses only the basis.
void expectBasisEquivalent(const Circuit &C, bool KeepCcz) {
  BasisOptions Opt;
  Opt.KeepCcz = KeepCcz;
  Circuit Lowered = translateToBasis(C, Opt);
  for (const Gate &G : Lowered) {
    GateKind K = G.kind();
    bool Allowed = K == GateKind::U3 || K == GateKind::CZ ||
                   K == GateKind::Barrier || K == GateKind::Measure ||
                   (KeepCcz && K == GateKind::CCZ);
    EXPECT_TRUE(Allowed) << "gate outside basis: " << G.str();
  }
  EXPECT_TRUE(sim::circuitsEquivalent(C, Lowered))
      << "lowering changed the unitary";
}

} // namespace

class SingleQubitLowering : public ::testing::TestWithParam<unsigned> {};

TEST_P(SingleQubitLowering, U3ParamsMatchUnitary) {
  GateKind Kind = static_cast<GateKind>(GetParam());
  if (gateArity(Kind) != 1 || Kind == GateKind::Measure)
    GTEST_SKIP();
  Circuit C(1);
  if (gateNumParams(Kind) == 0)
    C.append(Gate(Kind, {0}));
  else if (gateNumParams(Kind) == 1)
    C.append(Gate(Kind, {0}, {0.7}));
  else
    C.append(Gate(Kind, {0}, {0.7, -0.3, 1.1}));
  expectBasisEquivalent(C, /*KeepCcz=*/false);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SingleQubitLowering,
                         ::testing::Range(0u, NumGateKinds));

TEST(Decompose, CxAsCz) {
  Circuit C(2);
  C.cx(0, 1);
  expectBasisEquivalent(C, false);
}

TEST(Decompose, CxReversedOperands) {
  Circuit C(2);
  C.cx(1, 0);
  expectBasisEquivalent(C, false);
}

TEST(Decompose, SwapAsThreeCx) {
  Circuit C(2);
  C.swap(0, 1);
  Circuit Ref(2);
  appendSwapAsCx(Ref, 0, 1);
  EXPECT_TRUE(sim::circuitsEquivalent(C, Ref));
  expectBasisEquivalent(C, false);
}

TEST(Decompose, RzzLadder) {
  Circuit C(2);
  C.rzz(0.9, 0, 1);
  expectBasisEquivalent(C, false);
}

TEST(Decompose, CczTwoQubitNetwork) {
  Circuit C(3);
  C.ccz(0, 1, 2);
  Circuit Ref(3);
  appendCczAsTwoQubit(Ref, 0, 1, 2);
  EXPECT_TRUE(sim::circuitsEquivalent(C, Ref));
  expectBasisEquivalent(C, false);
}

TEST(Decompose, CcxBothModes) {
  Circuit C(3);
  C.ccx(0, 1, 2);
  expectBasisEquivalent(C, false);
  expectBasisEquivalent(C, true);
}

TEST(Decompose, CczKeptWhenRequested) {
  Circuit C(3);
  C.ccz(0, 1, 2);
  BasisOptions Opt;
  Opt.KeepCcz = true;
  Circuit Lowered = translateToBasis(C, Opt);
  EXPECT_EQ(Lowered.count(GateKind::CCZ), 1u);
}

TEST(Decompose, MixedCircuitEquivalence) {
  Circuit C(4);
  C.h(0).t(1).sdg(2).cx(0, 1).swap(1, 2).rzz(0.4, 2, 3).ccx(0, 2, 3).s(3);
  expectBasisEquivalent(C, false);
  expectBasisEquivalent(C, true);
}

TEST(Decompose, IdentityDropped) {
  Circuit C(1);
  C.id(0);
  Circuit Lowered = translateToBasis(C);
  EXPECT_TRUE(Lowered.empty());
}

TEST(Decompose, U3ParamsForRejectsNothingValid) {
  double T, P, L;
  u3ParamsFor(Gate(GateKind::H, {0}), T, P, L);
  EXPECT_NEAR(T, Pi / 2, 1e-12);
  EXPECT_NEAR(L, Pi, 1e-12);
}

// --- Scheduling -----------------------------------------------------------

TEST(Schedule, SerialGatesAccumulate) {
  Circuit C(1);
  C.h(0).h(0).h(0);
  GateDurations D;
  D.OneQubit = 2.0;
  Schedule S = scheduleAsap(C, D);
  EXPECT_DOUBLE_EQ(S.TotalDuration, 6.0);
  EXPECT_DOUBLE_EQ(S.StartTimes[2], 4.0);
}

TEST(Schedule, ParallelGatesOverlap) {
  Circuit C(2);
  C.h(0).h(1);
  GateDurations D;
  D.OneQubit = 2.0;
  EXPECT_DOUBLE_EQ(scheduleAsap(C, D).TotalDuration, 2.0);
}

TEST(Schedule, TwoQubitGateWaitsForBothOperands) {
  Circuit C(2);
  C.h(0).cz(0, 1);
  GateDurations D;
  D.OneQubit = 1.0;
  D.TwoQubit = 3.0;
  Schedule S = scheduleAsap(C, D);
  EXPECT_DOUBLE_EQ(S.StartTimes[1], 1.0);
  EXPECT_DOUBLE_EQ(S.TotalDuration, 4.0);
}

TEST(Schedule, BarrierSynchronises) {
  Circuit C(2);
  C.h(0).barrier().h(1);
  GateDurations D;
  D.OneQubit = 1.0;
  Schedule S = scheduleAsap(C, D);
  EXPECT_DOUBLE_EQ(S.StartTimes[2], 1.0);
  EXPECT_DOUBLE_EQ(S.TotalDuration, 2.0);
}

TEST(Schedule, MeasureUsesMeasureDuration) {
  Circuit C(1);
  C.measure(0);
  GateDurations D;
  D.Measure = 5.0;
  EXPECT_DOUBLE_EQ(scheduleAsap(C, D).TotalDuration, 5.0);
}

TEST(Schedule, GateDurationByArity) {
  GateDurations D;
  D.OneQubit = 1;
  D.TwoQubit = 2;
  D.ThreeQubit = 3;
  EXPECT_DOUBLE_EQ(gateDuration(Gate(GateKind::H, {0}), D), 1);
  EXPECT_DOUBLE_EQ(gateDuration(Gate(GateKind::CZ, {0, 1}), D), 2);
  EXPECT_DOUBLE_EQ(gateDuration(Gate(GateKind::CCZ, {0, 1, 2}), D), 3);
  EXPECT_DOUBLE_EQ(gateDuration(Gate(GateKind::Barrier, {}), D), 0);
}
