//===- tests/sat_test.cpp - SAT library unit + property tests -------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "sat/Cnf.h"
#include "sat/Dimacs.h"
#include "sat/Evaluator.h"
#include "sat/Generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace weaver;
using namespace weaver::sat;

TEST(Literal, DimacsConvention) {
  Literal L(-3);
  EXPECT_EQ(L.variable(), 3);
  EXPECT_TRUE(L.isNegated());
  EXPECT_EQ(L.dimacs(), -3);
  EXPECT_EQ(L.negated().dimacs(), 3);
}

TEST(Literal, Evaluate) {
  EXPECT_TRUE(Literal(2).evaluate(true));
  EXPECT_FALSE(Literal(2).evaluate(false));
  EXPECT_TRUE(Literal(-2).evaluate(false));
  EXPECT_FALSE(Literal(-2).evaluate(true));
}

TEST(Clause, MentionsAndSharing) {
  Clause A{1, -2, 3}, B{-3, 4, 5}, C{6, 7, 8};
  EXPECT_TRUE(A.mentions(2));
  EXPECT_FALSE(A.mentions(4));
  EXPECT_TRUE(A.sharesVariableWith(B)); // variable 3
  EXPECT_FALSE(A.sharesVariableWith(C));
}

TEST(Clause, EvaluateDisjunction) {
  Clause C{1, -2, 3};
  // Satisfied unless x1=0, x2=1, x3=0.
  EXPECT_FALSE(C.evaluate({false, true, false}));
  EXPECT_TRUE(C.evaluate({true, true, false}));
  EXPECT_TRUE(C.evaluate({false, false, false}));
  EXPECT_TRUE(C.evaluate({false, true, true}));
}

TEST(CnfFormula, AddClauseGrowsVariableCount) {
  CnfFormula F;
  F.addClause(Clause{1, -5, 2});
  EXPECT_EQ(F.numVariables(), 5);
  EXPECT_EQ(F.numClauses(), 1u);
}

TEST(CnfFormula, CountSatisfied) {
  CnfFormula F(3, {Clause{1, 2, 3}, Clause{-1, -2, -3}, Clause{1, -2, 3}});
  EXPECT_EQ(F.countSatisfied({true, true, true}), 2u);
  EXPECT_EQ(F.countSatisfied({false, false, false}), 2u);
}

TEST(CnfFormula, IsExactlyKSat) {
  CnfFormula F(3, {Clause{1, 2, 3}});
  EXPECT_TRUE(F.isExactlyKSat(3));
  F.addClause(Clause{1, 2});
  EXPECT_FALSE(F.isExactlyKSat(3));
}

// --- DIMACS -------------------------------------------------------------

TEST(Dimacs, ParsesWellFormedInput) {
  auto F = parseDimacs("c comment\np cnf 3 2\n1 -2 3 0\n-1 2 -3 0\n");
  ASSERT_TRUE(F.ok()) << F.message();
  EXPECT_EQ(F->numVariables(), 3);
  EXPECT_EQ(F->numClauses(), 2u);
  EXPECT_EQ((*F).clause(0)[1].dimacs(), -2);
}

TEST(Dimacs, ParsesClausesSpanningLines) {
  auto F = parseDimacs("p cnf 3 1\n1\n-2\n3 0\n");
  ASSERT_TRUE(F.ok()) << F.message();
  EXPECT_EQ(F->clause(0).size(), 3u);
}

TEST(Dimacs, ToleratesSatlibTrailer) {
  auto F = parseDimacs("p cnf 2 1\n1 2 0\n%\n0\n");
  ASSERT_TRUE(F.ok()) << F.message();
  EXPECT_EQ(F->numClauses(), 1u);
}

TEST(Dimacs, RejectsMissingHeader) {
  EXPECT_FALSE(parseDimacs("1 2 0\n").ok());
}

TEST(Dimacs, RejectsMalformedHeader) {
  EXPECT_FALSE(parseDimacs("p cnf x y\n").ok());
  EXPECT_FALSE(parseDimacs("p dnf 2 1\n1 0\n").ok());
}

TEST(Dimacs, RejectsOutOfRangeLiteral) {
  EXPECT_FALSE(parseDimacs("p cnf 2 1\n1 5 0\n").ok());
}

TEST(Dimacs, RejectsUnterminatedClause) {
  EXPECT_FALSE(parseDimacs("p cnf 2 1\n1 2\n").ok());
}

TEST(Dimacs, RejectsClauseCountMismatch) {
  EXPECT_FALSE(parseDimacs("p cnf 2 2\n1 2 0\n").ok());
}

TEST(Dimacs, PrintParseRoundTrip) {
  CnfFormula F = satlibInstance(20, 1);
  auto Again = parseDimacs(printDimacs(F));
  ASSERT_TRUE(Again.ok()) << Again.message();
  ASSERT_EQ(Again->numClauses(), F.numClauses());
  for (size_t I = 0; I < F.numClauses(); ++I)
    for (size_t J = 0; J < F.clause(I).size(); ++J)
      EXPECT_EQ(Again->clause(I)[J].dimacs(), F.clause(I)[J].dimacs());
}

// --- Generator ----------------------------------------------------------

class GeneratorProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorProperty, InstancesAreWellFormed3Sat) {
  int N = GetParam();
  for (int Index = 1; Index <= 10; ++Index) {
    CnfFormula F = satlibInstance(N, Index);
    EXPECT_EQ(F.numVariables(), N);
    EXPECT_TRUE(F.isExactlyKSat(3));
    size_t ExpectedClauses =
        N == 20 ? 91
                : static_cast<size_t>(std::lround(N * SatlibClauseRatio));
    EXPECT_EQ(F.numClauses(), ExpectedClauses);
    // Distinct variables within each clause; no duplicate clauses.
    std::set<std::vector<int>> Keys;
    for (const Clause &C : F.clauses()) {
      std::set<int> Vars;
      std::vector<int> Key;
      for (Literal L : C) {
        Vars.insert(L.variable());
        EXPECT_GE(L.variable(), 1);
        EXPECT_LE(L.variable(), N);
        Key.push_back(L.dimacs());
      }
      EXPECT_EQ(Vars.size(), 3u);
      std::sort(Key.begin(), Key.end());
      EXPECT_TRUE(Keys.insert(Key).second) << "duplicate clause";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SatlibSizes, GeneratorProperty,
                         ::testing::Values(20, 50, 75, 100, 150, 250));

TEST(Generator, DeterministicAcrossCalls) {
  CnfFormula A = satlibInstance(50, 3), B = satlibInstance(50, 3);
  ASSERT_EQ(A.numClauses(), B.numClauses());
  for (size_t I = 0; I < A.numClauses(); ++I)
    for (size_t J = 0; J < 3; ++J)
      EXPECT_EQ(A.clause(I)[J].dimacs(), B.clause(I)[J].dimacs());
}

TEST(Generator, DifferentIndicesDiffer) {
  CnfFormula A = satlibInstance(20, 1), B = satlibInstance(20, 2);
  bool AnyDiff = false;
  for (size_t I = 0; I < A.numClauses() && !AnyDiff; ++I)
    for (size_t J = 0; J < 3; ++J)
      AnyDiff |= A.clause(I)[J].dimacs() != B.clause(I)[J].dimacs();
  EXPECT_TRUE(AnyDiff);
}

TEST(Generator, SuiteHasTenInstances) {
  EXPECT_EQ(satlibSuite(20).size(), 10u);
  EXPECT_EQ(satlibSuite(20)[0].name(), "uf20-01");
  EXPECT_EQ(satlibSuite(20)[9].name(), "uf20-10");
}

TEST(Generator, CustomWidthK2) {
  CnfFormula F = RandomSatGenerator(5).generate(10, 30, 2);
  EXPECT_TRUE(F.isExactlyKSat(2));
  EXPECT_EQ(F.numClauses(), 30u);
}

// --- Evaluator ----------------------------------------------------------

TEST(Evaluator, AssignmentFromBits) {
  auto A = assignmentFromBits(0b101, 3);
  EXPECT_TRUE(A[0]);
  EXPECT_FALSE(A[1]);
  EXPECT_TRUE(A[2]);
}

TEST(Evaluator, BruteForceFindsSatisfyingAssignment) {
  // (x1) and (!x1 or x2): optimum 2 with x1=1, x2=1.
  CnfFormula F(2, {Clause{1}, Clause{-1, 2}});
  MaxSatOptimum Opt = bruteForceMaxSat(F);
  EXPECT_EQ(Opt.BestSatisfied, 2u);
  EXPECT_TRUE(Opt.BestAssignment[0]);
  EXPECT_TRUE(Opt.BestAssignment[1]);
}

TEST(Evaluator, BruteForceOnUnsatisfiableCore) {
  // x1 and !x1: optimum 1.
  CnfFormula F(1, {Clause{1}, Clause{-1}});
  EXPECT_EQ(bruteForceMaxSat(F).BestSatisfied, 1u);
}

TEST(Evaluator, RandomSmallInstanceOptimumBounds) {
  CnfFormula F = RandomSatGenerator(99).generate(8, 30);
  MaxSatOptimum Opt = bruteForceMaxSat(F);
  EXPECT_LE(Opt.BestSatisfied, F.numClauses());
  // Any assignment satisfies >= 7/8 of random 3-clauses in expectation;
  // the optimum certainly satisfies more than half.
  EXPECT_GT(Opt.BestSatisfied, F.numClauses() / 2);
  EXPECT_EQ(F.countSatisfied(Opt.BestAssignment), Opt.BestSatisfied);
}
