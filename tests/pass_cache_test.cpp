//===- tests/pass_cache_test.cpp - Pass-result memoisation tests ----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The PassCache contract: compilations through a cache are byte-identical
/// to uncached compilations for every parameter point, hits and misses are
/// accounted per tier, any input change invalidates the affected tiers,
/// and one cache may be shared by every worker of a BatchCompiler batch
/// without changing any result.
///
//===----------------------------------------------------------------------===//

#include "core/BatchCompiler.h"
#include "core/WeaverCompiler.h"
#include "core/pipeline/PassCache.h"
#include "core/pipeline/PassManager.h"
#include "qasm/Printer.h"
#include "sat/Generator.h"

#include <gtest/gtest.h>

#include <thread>

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;
using sat::Clause;
using sat::CnfFormula;

namespace {

CnfFormula testFormula(uint64_t Seed = 1, int Vars = 14, size_t Clauses = 50) {
  return sat::RandomSatGenerator(Seed).generate(Vars, Clauses);
}

WeaverOptions sweepPoint(double Gamma, double Beta, int Layers = 1,
                         PassCache *Cache = nullptr) {
  WeaverOptions Opt;
  Opt.Qaoa.Gamma = Gamma;
  Opt.Qaoa.Beta = Beta;
  Opt.Qaoa.Layers = Layers;
  Opt.Cache = Cache;
  return Opt;
}

/// Compiles and returns the printed program, asserting success.
std::string compileToText(const CnfFormula &F, const WeaverOptions &Opt,
                          WeaverResult *Out = nullptr) {
  auto R = compileWeaver(F, Opt);
  EXPECT_TRUE(R.ok()) << R.message();
  if (Out)
    *Out = *R;
  return qasm::printWqasm(R->Program);
}

} // namespace

// --- Hit/miss accounting -------------------------------------------------

TEST(PassCache, CountsMissThenProgramHits) {
  CnfFormula F = testFormula();
  PassCache Cache;
  WeaverResult First, Second;
  compileToText(F, sweepPoint(0.7, 0.3, 1, &Cache), &First);
  EXPECT_FALSE(First.FrontHalfFromCache);
  EXPECT_FALSE(First.ProgramFromCache);
  compileToText(F, sweepPoint(0.5, 0.2, 1, &Cache), &Second);
  EXPECT_TRUE(Second.FrontHalfFromCache);
  EXPECT_TRUE(Second.ProgramFromCache);

  PassCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.ProgramMisses, 1u);
  EXPECT_EQ(S.ProgramHits, 1u);
  EXPECT_EQ(S.FrontMisses, 1u); // consulted only on the program miss
  EXPECT_EQ(S.FrontHits, 0u);
  EXPECT_EQ(Cache.size(), 2u); // one front entry + one template
}

TEST(PassCache, LayersChangeReusesFrontHalfOnly) {
  CnfFormula F = testFormula();
  PassCache Cache;
  compileToText(F, sweepPoint(0.7, 0.3, 1, &Cache));
  WeaverResult TwoLayers;
  compileToText(F, sweepPoint(0.7, 0.3, 2, &Cache), &TwoLayers);
  EXPECT_TRUE(TwoLayers.FrontHalfFromCache);
  EXPECT_FALSE(TwoLayers.ProgramFromCache);

  PassCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.ProgramMisses, 2u);
  EXPECT_EQ(S.FrontHits, 1u);
  EXPECT_EQ(S.FrontMisses, 1u);
}

TEST(PassCache, TimingsKeepOneEntryPerPassOnHits) {
  CnfFormula F = testFormula();
  PassCache Cache;
  compileToText(F, sweepPoint(0.7, 0.3, 1, &Cache));
  WeaverResult Hit;
  compileToText(F, sweepPoint(0.6, 0.25, 1, &Cache), &Hit);
  ASSERT_EQ(Hit.PassTimings.size(), 5u);
  EXPECT_EQ(Hit.PassTimings[0].PassName, "clause-coloring");
  EXPECT_EQ(Hit.PassTimings[4].PassName, "pulse-emission");
  double Sum = 0;
  for (const PassTiming &T : Hit.PassTimings)
    if (T.PassName != "pulse-emission")
      Sum += T.Seconds;
  EXPECT_DOUBLE_EQ(Hit.CompileSeconds, Sum);
}

// --- Byte identity across a sweep ---------------------------------------

TEST(PassCache, SweepProgramsAreByteIdenticalWithCacheOnOrOff) {
  CnfFormula F = testFormula(3, 12, 45);
  PassCache Cache;
  for (int Layers = 1; Layers <= 2; ++Layers)
    for (int I = 0; I < 5; ++I) {
      double Gamma = 0.3 + 0.11 * I, Beta = 0.15 + 0.07 * I;
      WeaverResult Plain, Cached;
      std::string Off =
          compileToText(F, sweepPoint(Gamma, Beta, Layers), &Plain);
      std::string On =
          compileToText(F, sweepPoint(Gamma, Beta, Layers, &Cache), &Cached);
      ASSERT_EQ(Off, On) << "layers " << Layers << " point " << I;
      // Metrics come out of the cache bit-identically too.
      EXPECT_EQ(Plain.Stats.totalPulses(), Cached.Stats.totalPulses());
      EXPECT_EQ(Plain.Stats.CzGates, Cached.Stats.CzGates);
      EXPECT_EQ(Plain.Stats.CczGates, Cached.Stats.CczGates);
      EXPECT_EQ(Plain.Stats.Duration, Cached.Stats.Duration);
      EXPECT_EQ(Plain.Stats.Eps, Cached.Stats.Eps);
      EXPECT_EQ(Plain.Coloring.ColorOf, Cached.Coloring.ColorOf);
    }
  // 10 points over 2 layer counts: every non-first point per layer count
  // is a template hit.
  EXPECT_EQ(Cache.stats().ProgramHits, 8u);
  EXPECT_EQ(Cache.stats().ProgramMisses, 2u);
}

TEST(PassCache, MeasuredAndLadderVariantsStayByteIdentical) {
  CnfFormula Mixed(5, {Clause{1}, Clause{-2, 3}, Clause{-3, -4, -5},
                       Clause{2, 4}, Clause{-1, 4, 5}});
  PassCache Cache;
  for (bool Measure : {false, true})
    for (auto Mode : {WeaverOptions::CompressionMode::On,
                      WeaverOptions::CompressionMode::Off})
      for (double Gamma : {0.7, 0.41}) {
        WeaverOptions Off = sweepPoint(Gamma, 0.3, 2);
        Off.Measure = Measure;
        Off.Compression = Mode;
        WeaverOptions On = Off;
        On.Cache = &Cache;
        ASSERT_EQ(compileToText(Mixed, Off), compileToText(Mixed, On));
      }
}

// --- Invalidation --------------------------------------------------------

TEST(PassCache, FormulaGeometryAndOptionChangesMiss) {
  PassCache Cache;
  CnfFormula A = testFormula(1), B = testFormula(2);
  compileToText(A, sweepPoint(0.7, 0.3, 1, &Cache));

  // Different formula: both tiers miss.
  compileToText(B, sweepPoint(0.7, 0.3, 1, &Cache));
  EXPECT_EQ(Cache.stats().ProgramHits, 0u);
  EXPECT_EQ(Cache.stats().FrontHits, 0u);

  // Different geometry: both tiers miss (zone plan depends on it).
  WeaverOptions Wide = sweepPoint(0.7, 0.3, 1, &Cache);
  Wide.Geometry.SiteSpacing = 25.0;
  auto R = compileWeaver(A, Wide);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_FALSE(R->FrontHalfFromCache);

  // Different colouring heuristic: both tiers miss.
  WeaverOptions FirstFit = sweepPoint(0.7, 0.3, 1, &Cache);
  FirstFit.UseDSatur = false;
  R = compileWeaver(A, FirstFit);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_FALSE(R->FrontHalfFromCache);

  // Different hardware: the front half (no hardware inputs) is reused,
  // the program/stats tier is not (EPS depends on fidelities).
  WeaverOptions Noisy = sweepPoint(0.7, 0.3, 1, &Cache);
  Noisy.Hw.CzFidelity = 0.9;
  R = compileWeaver(A, Noisy);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_TRUE(R->FrontHalfFromCache);
  EXPECT_FALSE(R->ProgramFromCache);
}

TEST(PassCache, SuppliedColoringBypassesTheCache) {
  CnfFormula F = testFormula();
  PassCache Cache;
  CompilationContext Ctx;
  Ctx.Formula = &F;
  Ctx.Cache = &Cache;
  Ctx.Coloring = colorClausesDSatur(F);
  Ctx.HasColoring = true;
  ASSERT_TRUE(PassManager::standardFpqaPipeline().run(Ctx).ok());
  PassCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.ProgramHits + S.ProgramMisses + S.FrontHits + S.FrontMisses,
            0u);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(PassCache, CapFlushesInsteadOfGrowingUnbounded) {
  PassCache Cache(/*MaxEntries=*/2);
  compileToText(testFormula(1), sweepPoint(0.7, 0.3, 1, &Cache));
  EXPECT_EQ(Cache.size(), 2u); // front + template for formula 1
  compileToText(testFormula(2), sweepPoint(0.7, 0.3, 1, &Cache));
  EXPECT_LE(Cache.size(), 2u);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
}

// --- Sharing across BatchCompiler workers --------------------------------

TEST(PassCache, BatchCompilerWorkersShareOneCache) {
  // A sweep-style batch: few distinct formulas, each repeated.
  std::vector<CnfFormula> Batch;
  for (int Rep = 0; Rep < 4; ++Rep)
    for (uint64_t Seed : {11u, 12u, 13u})
      Batch.push_back(testFormula(Seed));

  BatchOptions BOpt;
  BOpt.NumThreads = 4;
  baselines::WeaverBackend Plain;
  std::vector<baselines::BaselineResult> Reference =
      BatchCompiler(Plain, BOpt).compileAll(Batch);

  PassCache Cache;
  WeaverOptions WOpt;
  WOpt.Cache = &Cache;
  baselines::WeaverBackend CachedBackend(WOpt);
  std::vector<baselines::BaselineResult> Cached =
      BatchCompiler(CachedBackend, BOpt).compileAll(Batch);

  ASSERT_EQ(Reference.size(), Cached.size());
  for (size_t I = 0; I < Reference.size(); ++I) {
    EXPECT_EQ(Reference[I].Pulses, Cached[I].Pulses) << I;
    EXPECT_EQ(Reference[I].TwoQubitGates, Cached[I].TwoQubitGates) << I;
    EXPECT_EQ(Reference[I].ThreeQubitGates, Cached[I].ThreeQubitGates) << I;
    EXPECT_EQ(Reference[I].ExecutionSeconds, Cached[I].ExecutionSeconds)
        << I;
    EXPECT_EQ(Reference[I].Eps, Cached[I].Eps) << I;
    EXPECT_EQ(Reference[I].Colors, Cached[I].Colors) << I;
  }
  // Whatever the interleaving, a (formula, params) pair is built at most
  // once per worker (concurrent first touches may race before the first
  // insert lands, so the exact hit count is scheduler-dependent)...
  PassCache::CacheStats S = Cache.stats();
  EXPECT_EQ(S.ProgramHits + S.ProgramMisses, Batch.size());
  EXPECT_LE(S.ProgramMisses, static_cast<uint64_t>(3 * BOpt.NumThreads));
  // ...and once the entries exist, a second pass is deterministically
  // pure hits.
  std::vector<baselines::BaselineResult> Second =
      BatchCompiler(CachedBackend, BOpt).compileAll(Batch);
  ASSERT_EQ(Second.size(), Cached.size());
  PassCache::CacheStats S2 = Cache.stats();
  EXPECT_EQ(S2.ProgramMisses, S.ProgramMisses);
  EXPECT_EQ(S2.ProgramHits, S.ProgramHits + Batch.size());
}

TEST(PassCache, ConcurrentCompilesStayByteIdentical) {
  CnfFormula F = testFormula(21, 12, 40);
  const double Gammas[4] = {0.3, 0.45, 0.6, 0.75};

  // Uncached reference per gamma.
  std::string Reference[4];
  for (int I = 0; I < 4; ++I)
    Reference[I] = compileToText(F, sweepPoint(Gammas[I], 0.3));

  // Four threads race the same cache over the same sweep points.
  PassCache Cache;
  std::string Got[4][4];
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&, T]() {
      for (int I = 0; I < 4; ++I) {
        auto R = compileWeaver(F, sweepPoint(Gammas[I], 0.3, 1, &Cache));
        if (R.ok())
          Got[T][I] = qasm::printWqasm(R->Program);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (int T = 0; T < 4; ++T)
    for (int I = 0; I < 4; ++I)
      EXPECT_EQ(Got[T][I], Reference[I]) << "thread " << T << " point " << I;
}
