//===- tests/support_test.cpp - support library unit tests ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Geometry.h"
#include "support/Rng.h"
#include "support/Status.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <set>

using namespace weaver;

TEST(Status, DefaultIsSuccess) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_FALSE(static_cast<bool>(S));
  EXPECT_TRUE(S.message().empty());
}

TEST(Status, ErrorCarriesMessage) {
  Status S = Status::error("file not found");
  EXPECT_FALSE(S.ok());
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S.message(), "file not found");
}

TEST(Status, SuccessNamedConstructor) {
  EXPECT_TRUE(Status::success().ok());
}

TEST(Expected, HoldsValue) {
  Expected<int> E(42);
  ASSERT_TRUE(E.ok());
  EXPECT_EQ(*E, 42);
}

TEST(Expected, HoldsError) {
  Expected<int> E = Expected<int>::error("bad input");
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.message(), "bad input");
}

TEST(Expected, TakeMovesValue) {
  Expected<std::string> E(std::string("payload"));
  std::string S = E.take();
  EXPECT_EQ(S, "payload");
}

TEST(Expected, ArrowOperator) {
  Expected<std::string> E(std::string("abc"));
  EXPECT_EQ(E->size(), 3u);
}

TEST(StringUtils, TrimRemovesWhitespace) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtils, SplitDropsEmptyByDefault) {
  auto Pieces = split("a,,b,c", ',');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[2], "c");
}

TEST(StringUtils, SplitKeepsEmptyWhenAsked) {
  auto Pieces = split("a,,b", ',', /*KeepEmpty=*/true);
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[1], "");
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("OPENQASM 3.0", "OPENQASM"));
  EXPECT_FALSE(startsWith("OPEN", "OPENQASM"));
}

TEST(StringUtils, FormatDoubleRoundTrips) {
  double Values[] = {0.0, 1.5, -3.14159265358979, 1e-18, 2.5e17};
  for (double V : Values)
    EXPECT_EQ(std::stod(formatDouble(V)), V) << formatDouble(V);
}

TEST(StringUtils, Formatf) {
  EXPECT_EQ(formatf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatf("%.2f", 1.005), "1.00");
}

TEST(Rng, SplitMix64IsDeterministic) {
  SplitMix64 A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, XoshiroIsDeterministicAndSeedSensitive) {
  Xoshiro256 A(1), B(1), C(2);
  bool Diverged = false;
  for (int I = 0; I < 64; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    if (VA != C.next())
      Diverged = true;
  }
  EXPECT_TRUE(Diverged);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 Rng(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(Rng.nextBelow(Bound), Bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Xoshiro256 Rng(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(Rng.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 Rng(13);
  for (int I = 0; I < 1000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Geometry, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Geometry, VectorArithmetic) {
  Vec2 A{1, 2}, B{3, 5};
  EXPECT_EQ((A + B), (Vec2{4, 7}));
  EXPECT_EQ((B - A), (Vec2{2, 3}));
}

TEST(Table, RendersAlignedColumns) {
  Table T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name    value"), std::string::npos);
  EXPECT_NE(Out.find("longer  22"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table T({"a", "b", "c"});
  T.addRow({"1"});
  EXPECT_NE(T.render().find("1"), std::string::npos);
}
