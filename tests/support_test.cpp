//===- tests/support_test.cpp - support library unit tests ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "support/Geometry.h"
#include "support/Rng.h"
#include "support/Status.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace weaver;

TEST(Status, DefaultIsSuccess) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_FALSE(static_cast<bool>(S));
  EXPECT_TRUE(S.message().empty());
}

TEST(Status, ErrorCarriesMessage) {
  Status S = Status::error("file not found");
  EXPECT_FALSE(S.ok());
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S.message(), "file not found");
}

TEST(Status, SuccessNamedConstructor) {
  EXPECT_TRUE(Status::success().ok());
}

TEST(Expected, HoldsValue) {
  Expected<int> E(42);
  ASSERT_TRUE(E.ok());
  EXPECT_EQ(*E, 42);
}

TEST(Expected, HoldsError) {
  Expected<int> E = Expected<int>::error("bad input");
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.message(), "bad input");
}

TEST(Expected, TakeMovesValue) {
  Expected<std::string> E(std::string("payload"));
  std::string S = E.take();
  EXPECT_EQ(S, "payload");
}

TEST(Expected, ArrowOperator) {
  Expected<std::string> E(std::string("abc"));
  EXPECT_EQ(E->size(), 3u);
}

TEST(StringUtils, TrimRemovesWhitespace) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtils, SplitDropsEmptyByDefault) {
  auto Pieces = split("a,,b,c", ',');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[2], "c");
}

TEST(StringUtils, SplitKeepsEmptyWhenAsked) {
  auto Pieces = split("a,,b", ',', /*KeepEmpty=*/true);
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[1], "");
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("OPENQASM 3.0", "OPENQASM"));
  EXPECT_FALSE(startsWith("OPEN", "OPENQASM"));
}

TEST(StringUtils, FormatDoubleRoundTrips) {
  double Values[] = {0.0, 1.5, -3.14159265358979, 1e-18, 2.5e17};
  for (double V : Values)
    EXPECT_EQ(std::stod(formatDouble(V)), V) << formatDouble(V);
}

TEST(StringUtils, Formatf) {
  EXPECT_EQ(formatf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatf("%.2f", 1.005), "1.00");
}

TEST(Rng, SplitMix64IsDeterministic) {
  SplitMix64 A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, XoshiroIsDeterministicAndSeedSensitive) {
  Xoshiro256 A(1), B(1), C(2);
  bool Diverged = false;
  for (int I = 0; I < 64; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    if (VA != C.next())
      Diverged = true;
  }
  EXPECT_TRUE(Diverged);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 Rng(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(Rng.nextBelow(Bound), Bound);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Xoshiro256 Rng(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(Rng.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 Rng(13);
  for (int I = 0; I < 1000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Geometry, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Geometry, VectorArithmetic) {
  Vec2 A{1, 2}, B{3, 5};
  EXPECT_EQ((A + B), (Vec2{4, 7}));
  EXPECT_EQ((B - A), (Vec2{2, 3}));
}

TEST(Table, RendersAlignedColumns) {
  Table T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name    value"), std::string::npos);
  EXPECT_NE(Out.find("longer  22"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table T({"a", "b", "c"});
  T.addRow({"1"});
  EXPECT_NE(T.render().find("1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// FaultInjection: spec parsing, schedule semantics, determinism
//===----------------------------------------------------------------------===//

TEST(FaultInjection, EmptySpecIsDisabled) {
  auto C = fault::parseConfig("");
  ASSERT_TRUE(C.ok());
  EXPECT_FALSE(C->enabled());
  auto C2 = fault::parseConfig("   ");
  ASSERT_TRUE(C2.ok());
  EXPECT_FALSE(C2->enabled());
}

TEST(FaultInjection, ParsesSeedAndSiteClauses) {
  auto C = fault::parseConfig(
      "seed=42;binio.fsync:after=1,count=2;service.job.hang:p=0.25,"
      "delay_ms=500;net.*");
  ASSERT_TRUE(C.ok());
  EXPECT_EQ(C->Seed, 42u);
  ASSERT_EQ(C->Sites.size(), 3u);
  EXPECT_EQ(C->Sites[0].Pattern, "binio.fsync");
  EXPECT_EQ(C->Sites[0].After, 1u);
  EXPECT_EQ(C->Sites[0].Count, 2u);
  EXPECT_DOUBLE_EQ(C->Sites[1].Probability, 0.25);
  EXPECT_DOUBLE_EQ(C->Sites[1].DelayMs, 500);
  EXPECT_EQ(C->Sites[2].Pattern, "net.*");
}

TEST(FaultInjection, RejectsMalformedSpecs) {
  EXPECT_FALSE(fault::parseConfig("site:p=1.5").ok());       // p out of range
  EXPECT_FALSE(fault::parseConfig("site:p=-0.1").ok());      // p out of range
  EXPECT_FALSE(fault::parseConfig("site:bogus=1").ok());     // unknown key
  EXPECT_FALSE(fault::parseConfig("site:p=0.5,every=2").ok()); // exclusive
  EXPECT_FALSE(fault::parseConfig("seed=nope").ok());        // bad seed
  EXPECT_FALSE(fault::parseConfig("site:after=abc").ok());   // bad number
  EXPECT_FALSE(fault::parseConfig("UPPER.Case").ok());       // bad site name
  EXPECT_FALSE(fault::parseConfig("site:delay_ms=-5").ok()); // negative delay
}

TEST(FaultInjection, BareClauseFiresEveryCall) {
  fault::Engine E(fault::parseConfig("seed=1;always.on").take());
  for (int I = 0; I < 5; ++I)
    EXPECT_TRUE(E.decide("always.on").Fire);
  EXPECT_FALSE(E.decide("other.site").Fire);
}

TEST(FaultInjection, AfterCountEverySchedules) {
  // after=2,count=1: exactly the 3rd call fires.
  fault::Engine E(fault::parseConfig("seed=1;s:after=2,count=1").take());
  std::vector<bool> Fires;
  for (int I = 0; I < 6; ++I)
    Fires.push_back(E.decide("s").Fire);
  EXPECT_EQ(Fires, (std::vector<bool>{false, false, true, false, false,
                                      false}));

  // every=3: calls 3, 6, 9 fire.
  fault::Engine E2(fault::parseConfig("seed=1;s:every=3").take());
  int Fired = 0;
  for (int I = 1; I <= 9; ++I)
    if (E2.decide("s").Fire) {
      ++Fired;
      EXPECT_EQ(I % 3, 0);
    }
  EXPECT_EQ(Fired, 3);
}

TEST(FaultInjection, PrefixWildcardMatchesFamily) {
  fault::Engine E(fault::parseConfig("seed=1;binio.*").take());
  EXPECT_TRUE(E.decide("binio.fsync").Fire);
  EXPECT_TRUE(E.decide("binio.rename").Fire);
  EXPECT_FALSE(E.decide("persist.save.abort").Fire);
}

TEST(FaultInjection, FirstMatchingClauseWins) {
  fault::Engine E(
      fault::parseConfig("seed=1;binio.fsync:count=1;binio.*:every=2")
          .take());
  // binio.fsync binds the exact clause (fires once), not the wildcard.
  EXPECT_TRUE(E.decide("binio.fsync").Fire);
  EXPECT_FALSE(E.decide("binio.fsync").Fire);
}

TEST(FaultInjection, SameSeedSameSchedule) {
  const char *Spec = "seed=7;s:p=0.4";
  fault::Engine A(fault::parseConfig(Spec).take());
  fault::Engine B(fault::parseConfig(Spec).take());
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(A.decide("s").Fire, B.decide("s").Fire);
}

TEST(FaultInjection, SiteStreamsAreIndependent) {
  // Site "a"'s decision sequence must not depend on how often other
  // sites are consulted in between.
  fault::Engine Alone(fault::parseConfig("seed=9;a:p=0.5;b:p=0.5").take());
  std::vector<bool> Expected;
  for (int I = 0; I < 32; ++I)
    Expected.push_back(Alone.decide("a").Fire);

  fault::Engine Mixed(fault::parseConfig("seed=9;a:p=0.5;b:p=0.5").take());
  std::vector<bool> Got;
  for (int I = 0; I < 32; ++I) {
    Mixed.decide("b"); // interleaved traffic on another site
    Mixed.decide("b");
    Got.push_back(Mixed.decide("a").Fire);
  }
  EXPECT_EQ(Got, Expected);
}

TEST(FaultInjection, CountCapKeepsDrawsAligned) {
  // The probabilistic draw happens on every eligible call even once the
  // count cap is reached, so a capped schedule observes the same ordinals
  // firing as an uncapped one (just suppressed past the cap).
  fault::Engine Capped(fault::parseConfig("seed=5;s:p=0.5,count=2").take());
  fault::Engine Free(fault::parseConfig("seed=5;s:p=0.5").take());
  int Fired = 0;
  for (int I = 0; I < 64; ++I) {
    bool F = Free.decide("s").Fire;
    bool C = Capped.decide("s").Fire;
    if (Fired < 2)
      EXPECT_EQ(C, F);
    else
      EXPECT_FALSE(C);
    if (C)
      ++Fired;
  }
  EXPECT_EQ(Fired, 2);
}

TEST(FaultInjection, ClampLenStaysInRange) {
  fault::Engine E(fault::parseConfig("seed=3;s").take());
  for (int I = 0; I < 32; ++I) {
    size_t L = E.clampLen("s", 100, 10);
    EXPECT_GE(L, 10u);
    EXPECT_LT(L, 100u);
  }
  // Degenerate ranges pass through untouched.
  EXPECT_EQ(E.clampLen("s", 1, 1), 1u);
  EXPECT_EQ(E.clampLen("s", 0), 0u);
}

TEST(FaultInjection, CountersAreSortedAndAccurate) {
  fault::Engine E(fault::parseConfig("seed=1;b.site:count=1;a.site").take());
  E.decide("b.site");
  E.decide("b.site");
  E.decide("a.site");
  E.decide("unmatched.site");
  auto C = E.counters();
  ASSERT_EQ(C.size(), 3u);
  EXPECT_EQ(C[0].Site, "a.site");
  EXPECT_EQ(C[0].Calls, 1u);
  EXPECT_EQ(C[0].Fired, 1u);
  EXPECT_EQ(C[1].Site, "b.site");
  EXPECT_EQ(C[1].Calls, 2u);
  EXPECT_EQ(C[1].Fired, 1u);
  EXPECT_EQ(C[2].Site, "unmatched.site");
  EXPECT_EQ(C[2].Fired, 0u);
  EXPECT_EQ(E.totalFired(), 2u);
}

TEST(FaultInjection, DisabledEngineNeverFires) {
  fault::Engine E;
  EXPECT_FALSE(E.enabled());
  EXPECT_FALSE(E.decide("any.site").Fire);
  EXPECT_EQ(E.clampLen("any.site", 50), 50u);
}

TEST(FaultInjection, GlobalConfigureAndReset) {
  ASSERT_FALSE(fault::enabled());
  ASSERT_FALSE(fault::configureGlobal("seed=2;g.test.site"));
  EXPECT_TRUE(fault::enabled());
  EXPECT_TRUE(fault::fire("g.test.site"));
  EXPECT_FALSE(fault::fire("g.other.site"));
  fault::resetGlobal();
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::fire("g.test.site"));
  // A malformed global spec is rejected without enabling anything.
  EXPECT_TRUE(fault::configureGlobal("bad spec here"));
  EXPECT_FALSE(fault::enabled());
}
