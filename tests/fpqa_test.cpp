//===- tests/fpqa_test.cpp - FPQA device model unit tests ------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "fpqa/Analysis.h"
#include "fpqa/Device.h"

#include <gtest/gtest.h>

using namespace weaver;
using namespace weaver::fpqa;
using qasm::Annotation;

namespace {

/// A device with two SLM traps, a 2x1 AOD grid and two bound atoms.
FpqaDevice makeLoadedDevice(const HardwareParams &P = HardwareParams()) {
  FpqaDevice D(P);
  EXPECT_FALSE(D.apply(Annotation::slm({{0, 0}, {6, 0}, {12, 0}})));
  EXPECT_FALSE(D.apply(Annotation::aod({0.0, 6.0}, {2.0})));
  EXPECT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  EXPECT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  return D;
}

} // namespace

// --- Table 1 pre-conditions ------------------------------------------------

TEST(Device, SlmRejectsCrowdedTraps) {
  FpqaDevice D;
  Status S = D.apply(Annotation::slm({{0, 0}, {2, 0}}));
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_NE(S.message().find("separation"), std::string::npos);
}

TEST(Device, SlmRejectsDoubleInit) {
  FpqaDevice D;
  EXPECT_FALSE(D.apply(Annotation::slm({{0, 0}})));
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::slm({{20, 0}}))));
}

TEST(Device, AodRequiresIncreasingCoordinates) {
  FpqaDevice D;
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::aod({3.0, 1.0}, {0.0}))));
  EXPECT_TRUE(
      static_cast<bool>(D.apply(Annotation::aod({0.0, 0.5}, {0.0}))));
  EXPECT_FALSE(D.apply(Annotation::aod({0.0, 2.0}, {0.0, 2.0})));
}

TEST(Device, BindRejectsOccupiedTrap) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::bindSlm(2, 0))));
}

TEST(Device, BindRejectsRebinding) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::bindSlm(0, 2))));
}

TEST(Device, BindAodAndPositions) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_FALSE(D.apply(Annotation::bindAod(2, 1, 0)));
  Vec2 Pos = D.qubitPosition(2);
  EXPECT_DOUBLE_EQ(Pos.X, 6.0);
  EXPECT_DOUBLE_EQ(Pos.Y, 2.0);
}

TEST(Device, TransferMovesAtomBothWays) {
  FpqaDevice D = makeLoadedDevice();
  // SLM trap 0 at (0,0); AOD (0,0) at (0,2): distance 2 <= 3.
  EXPECT_FALSE(D.apply(Annotation::transfer(0, 0, 0)));
  EXPECT_EQ(D.slmOccupant(0), -1);
  EXPECT_EQ(D.location(0).Kind, AtomLocation::Layer::Aod);
  // And back.
  EXPECT_FALSE(D.apply(Annotation::transfer(0, 0, 0)));
  EXPECT_EQ(D.slmOccupant(0), 0);
}

TEST(Device, TransferRejectsDistance) {
  FpqaDevice D = makeLoadedDevice();
  // SLM trap 2 at (12,0) vs AOD col 0 at (0,2): far.
  Status S = D.apply(Annotation::transfer(2, 0, 0));
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_NE(S.message().find("far"), std::string::npos);
}

TEST(Device, TransferRejectsBothEmptyOrBothFull) {
  FpqaDevice D = makeLoadedDevice();
  // Trap 2 empty, AOD (1,0) empty -> both empty (distance ok: (6,2) vs
  // (12,0) is 6.3 > 3, so use trap 1 at (6,0) vs col 1 at (6,2)).
  EXPECT_FALSE(D.apply(Annotation::transfer(1, 1, 0))); // atom 1 up
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::transfer(1, 1, 0)))
                  ? false
                  : true); // back down is fine
  // Now trap 1 occupied; bring atom 0 onto AOD col 0 and move col 0 to 6?
  // Instead check both-empty directly:
  FpqaDevice D2 = makeLoadedDevice();
  Status S = D2.apply(Annotation::transfer(2, 1, 0));
  (void)S; // distance may fail first; both-empty covered below
  FpqaDevice D3 = makeLoadedDevice();
  EXPECT_FALSE(D3.apply(Annotation::transfer(1, 1, 0)));
  // AOD (1,0) now full and SLM 1 empty; transfer again returns it; then
  // doing a transfer between empty trap 1 and empty AOD (1,0) must fail
  // after moving the atom away.
  EXPECT_FALSE(D3.apply(Annotation::transfer(1, 1, 0)));
}

TEST(Device, ShuttleMovesRowAndColumn) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_FALSE(D.apply(Annotation::shuttle(/*Row=*/true, 0, 5.0)));
  EXPECT_DOUBLE_EQ(D.rowY(0), 7.0);
  EXPECT_FALSE(D.apply(Annotation::shuttle(/*Row=*/false, 0, -1.0)));
  EXPECT_DOUBLE_EQ(D.columnX(0), -1.0);
}

TEST(Device, ShuttleRejectsCrossing) {
  FpqaDevice D = makeLoadedDevice();
  // Columns at 0 and 6; moving column 0 by +5.5 leaves gap 0.5 < min.
  Status S = D.apply(Annotation::shuttle(/*Row=*/false, 0, 5.5));
  EXPECT_TRUE(static_cast<bool>(S));
  // Moving column 1 left across column 0 must also fail.
  EXPECT_TRUE(
      static_cast<bool>(D.apply(Annotation::shuttle(/*Row=*/false, 1, -6.0))));
}

TEST(Device, ShuttleRejectsBadIndex) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::shuttle(true, 3, 1.0))));
}

TEST(Device, RamanLocalRequiresBoundQubit) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_FALSE(D.apply(Annotation::ramanLocal(0, 1, 2, 3)));
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::ramanLocal(9, 1, 2, 3))));
}

TEST(Device, RamanGlobalAlwaysValid) {
  FpqaDevice D;
  EXPECT_FALSE(D.apply(Annotation::ramanGlobal(0.1, 0.2, 0.3)));
}

// --- Rydberg clusters ---------------------------------------------------------

TEST(Device, RydbergClustersPairsAndTriples) {
  HardwareParams P;
  FpqaDevice D(P);
  // Two atoms 2um apart, a third atom far away.
  ASSERT_FALSE(D.apply(Annotation::slm({{0, 0}, {30, 0}, {60, 0}})));
  ASSERT_FALSE(D.apply(Annotation::aod({2.0}, {0.0})));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  ASSERT_FALSE(D.apply(Annotation::bindAod(2, 0, 0)));
  auto Clusters = D.rydbergClusters();
  ASSERT_TRUE(Clusters.ok()) << Clusters.message();
  ASSERT_EQ(Clusters->size(), 1u);
  EXPECT_EQ((*Clusters)[0].Qubits, (std::vector<int>{0, 2}));
}

TEST(Device, RydbergEquilateralTripleAccepted) {
  HardwareParams P;
  P.MinSlmSeparation = 1.5; // allow a tight triangle of SLM traps
  FpqaDevice D(P);
  ASSERT_FALSE(D.apply(
      Annotation::slm({{0, 0}, {2, 0}, {1, 1.7320508075688772}})));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(2, 2)));
  auto Clusters = D.rydbergClusters();
  ASSERT_TRUE(Clusters.ok()) << Clusters.message();
  ASSERT_EQ(Clusters->size(), 1u);
  EXPECT_EQ((*Clusters)[0].Qubits.size(), 3u);
}

TEST(Device, RydbergRejectsChainedCluster) {
  // Three atoms in a line 2um apart: ends are 4um apart (> radius) but
  // connected through the middle -> invalid chain.
  HardwareParams P;
  P.MinSlmSeparation = 1.5;
  FpqaDevice D(P);
  ASSERT_FALSE(D.apply(Annotation::slm({{0, 0}, {2, 0}, {4, 0}})));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(2, 2)));
  EXPECT_FALSE(D.rydbergClusters().ok());
}

TEST(Device, RydbergRejectsNonEquidistantTriple) {
  HardwareParams P;
  P.MinSlmSeparation = 1.0;
  FpqaDevice D(P);
  ASSERT_FALSE(D.apply(Annotation::slm({{0, 0}, {2, 0}, {1, 1.0}})));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(2, 2)));
  EXPECT_FALSE(D.rydbergClusters().ok());
}

TEST(Device, RydbergRejectsOversizedCluster) {
  HardwareParams P;
  P.MinSlmSeparation = 1.0;
  FpqaDevice D(P);
  ASSERT_FALSE(D.apply(Annotation::slm({{0, 0}, {2, 0}, {0, 2}, {2, 2}})));
  for (int Q = 0; Q < 4; ++Q)
    ASSERT_FALSE(D.apply(Annotation::bindSlm(Q, Q)));
  EXPECT_FALSE(D.rydbergClusters().ok());
}

// --- Pulse program analysis -----------------------------------------------

TEST(Analysis, CountsAndDurations) {
  HardwareParams P;
  std::vector<Annotation> Program = {
      Annotation::slm({{0, 0}, {6, 0}}),
      Annotation::aod({0.0}, {2.0}),
      Annotation::bindSlm(0, 0),
      Annotation::bindSlm(1, 1),
      Annotation::ramanGlobal(0.5, 0, 0),
      Annotation::ramanLocal(0, 0.5, 0, 0),
      Annotation::transfer(0, 0, 0),
      Annotation::shuttle(false, 0, 4.0), // column to x=4
      Annotation::shuttle(true, 0, -2.0), // row to y=0... crowds? no rows
  };
  auto Stats = analyzePulseProgram(Program, P);
  ASSERT_TRUE(Stats.ok()) << Stats.message();
  EXPECT_EQ(Stats->RamanGlobalPulses, 1u);
  EXPECT_EQ(Stats->RamanLocalPulses, 1u);
  EXPECT_EQ(Stats->TransferInstructions, 1u);
  EXPECT_EQ(Stats->ShuttleInstructions, 2u);
  EXPECT_EQ(Stats->ShuttleBatches, 1u); // column+row merge into one batch
  EXPECT_EQ(Stats->NumAtoms, 2u);
  double Expected = P.RamanGlobalTime + P.RamanLocalTime + P.TransferTime +
                    4.0 / P.ShuttleSpeedUmPerSec;
  EXPECT_NEAR(Stats->Duration, Expected, 1e-12);
}

TEST(Analysis, RepeatedAxisBreaksBatch) {
  HardwareParams P;
  std::vector<Annotation> Program = {
      Annotation::aod({0.0}, {2.0}),
      Annotation::shuttle(false, 0, 1.0),
      Annotation::shuttle(false, 0, 1.0), // same column again: new batch
  };
  auto Stats = analyzePulseProgram(Program, P);
  ASSERT_TRUE(Stats.ok()) << Stats.message();
  EXPECT_EQ(Stats->ShuttleBatches, 2u);
}

TEST(Analysis, EpsAccumulatesGateErrors) {
  HardwareParams P;
  P.T2 = 1e9;              // neutralise decoherence for this test
  P.MinSlmSeparation = 1.5; // traps close enough to interact
  std::vector<Annotation> Program = {
      Annotation::slm({{0, 0}, {2, 0}}),
      Annotation::bindSlm(0, 0),
      Annotation::bindSlm(1, 1),
      Annotation::rydberg(),
  };
  auto Stats = analyzePulseProgram(Program, P);
  ASSERT_TRUE(Stats.ok()) << Stats.message();
  EXPECT_EQ(Stats->CzGates, 1u);
  EXPECT_NEAR(Stats->Eps, P.CzFidelity, 1e-9);
}

TEST(Analysis, RejectsInvalidProgram) {
  std::vector<Annotation> Program = {Annotation::shuttle(true, 0, 1.0)};
  EXPECT_FALSE(analyzePulseProgram(Program, HardwareParams()).ok());
}

TEST(HardwareParams, CompressionProfitability) {
  HardwareParams P;
  EXPECT_TRUE(P.cczCompressionProfitable());
  P.CczFidelity = 0.90; // hopeless CCZ
  EXPECT_FALSE(P.cczCompressionProfitable());
  P.CczFidelity = 0.999; // excellent CCZ
  EXPECT_TRUE(P.cczCompressionProfitable());
}
