//===- tests/fpqa_test.cpp - FPQA device model unit tests ------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "fpqa/Analysis.h"
#include "fpqa/Device.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace weaver;
using namespace weaver::fpqa;
using qasm::Annotation;

namespace {

/// A device with two SLM traps, a 2x1 AOD grid and two bound atoms.
FpqaDevice makeLoadedDevice(const HardwareParams &P = HardwareParams()) {
  FpqaDevice D(P);
  EXPECT_FALSE(D.apply(Annotation::slm({{0, 0}, {6, 0}, {12, 0}})));
  EXPECT_FALSE(D.apply(Annotation::aod({0.0, 6.0}, {2.0})));
  EXPECT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  EXPECT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  return D;
}

} // namespace

// --- Table 1 pre-conditions ------------------------------------------------

TEST(Device, SlmRejectsCrowdedTraps) {
  FpqaDevice D;
  Status S = D.apply(Annotation::slm({{0, 0}, {2, 0}}));
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_NE(S.message().find("separation"), std::string::npos);
}

TEST(Device, SlmRejectsDoubleInit) {
  FpqaDevice D;
  EXPECT_FALSE(D.apply(Annotation::slm({{0, 0}})));
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::slm({{20, 0}}))));
}

TEST(Device, AodRequiresIncreasingCoordinates) {
  FpqaDevice D;
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::aod({3.0, 1.0}, {0.0}))));
  EXPECT_TRUE(
      static_cast<bool>(D.apply(Annotation::aod({0.0, 0.5}, {0.0}))));
  EXPECT_FALSE(D.apply(Annotation::aod({0.0, 2.0}, {0.0, 2.0})));
}

TEST(Device, BindRejectsOccupiedTrap) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::bindSlm(2, 0))));
}

TEST(Device, BindRejectsRebinding) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::bindSlm(0, 2))));
}

TEST(Device, BindAodAndPositions) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_FALSE(D.apply(Annotation::bindAod(2, 1, 0)));
  Vec2 Pos = D.qubitPosition(2);
  EXPECT_DOUBLE_EQ(Pos.X, 6.0);
  EXPECT_DOUBLE_EQ(Pos.Y, 2.0);
}

TEST(Device, TransferMovesAtomBothWays) {
  FpqaDevice D = makeLoadedDevice();
  // SLM trap 0 at (0,0); AOD (0,0) at (0,2): distance 2 <= 3.
  EXPECT_FALSE(D.apply(Annotation::transfer(0, 0, 0)));
  EXPECT_EQ(D.slmOccupant(0), -1);
  EXPECT_EQ(D.location(0).Kind, AtomLocation::Layer::Aod);
  // And back.
  EXPECT_FALSE(D.apply(Annotation::transfer(0, 0, 0)));
  EXPECT_EQ(D.slmOccupant(0), 0);
}

TEST(Device, TransferRejectsDistance) {
  FpqaDevice D = makeLoadedDevice();
  // SLM trap 2 at (12,0) vs AOD col 0 at (0,2): far.
  Status S = D.apply(Annotation::transfer(2, 0, 0));
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_NE(S.message().find("far"), std::string::npos);
}

TEST(Device, TransferRejectsBothEmptyOrBothFull) {
  FpqaDevice D = makeLoadedDevice();
  // Trap 2 empty, AOD (1,0) empty -> both empty (distance ok: (6,2) vs
  // (12,0) is 6.3 > 3, so use trap 1 at (6,0) vs col 1 at (6,2)).
  EXPECT_FALSE(D.apply(Annotation::transfer(1, 1, 0))); // atom 1 up
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::transfer(1, 1, 0)))
                  ? false
                  : true); // back down is fine
  // Now trap 1 occupied; bring atom 0 onto AOD col 0 and move col 0 to 6?
  // Instead check both-empty directly:
  FpqaDevice D2 = makeLoadedDevice();
  Status S = D2.apply(Annotation::transfer(2, 1, 0));
  (void)S; // distance may fail first; both-empty covered below
  FpqaDevice D3 = makeLoadedDevice();
  EXPECT_FALSE(D3.apply(Annotation::transfer(1, 1, 0)));
  // AOD (1,0) now full and SLM 1 empty; transfer again returns it; then
  // doing a transfer between empty trap 1 and empty AOD (1,0) must fail
  // after moving the atom away.
  EXPECT_FALSE(D3.apply(Annotation::transfer(1, 1, 0)));
}

TEST(Device, ShuttleMovesRowAndColumn) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_FALSE(D.apply(Annotation::shuttle(/*Row=*/true, 0, 5.0)));
  EXPECT_DOUBLE_EQ(D.rowY(0), 7.0);
  EXPECT_FALSE(D.apply(Annotation::shuttle(/*Row=*/false, 0, -1.0)));
  EXPECT_DOUBLE_EQ(D.columnX(0), -1.0);
}

TEST(Device, ShuttleRejectsCrossing) {
  FpqaDevice D = makeLoadedDevice();
  // Columns at 0 and 6; moving column 0 by +5.5 leaves gap 0.5 < min.
  Status S = D.apply(Annotation::shuttle(/*Row=*/false, 0, 5.5));
  EXPECT_TRUE(static_cast<bool>(S));
  // Moving column 1 left across column 0 must also fail.
  EXPECT_TRUE(
      static_cast<bool>(D.apply(Annotation::shuttle(/*Row=*/false, 1, -6.0))));
}

TEST(Device, ShuttleRejectsBadIndex) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::shuttle(true, 3, 1.0))));
}

TEST(Device, ParallelShuttleMovesColumnsSimultaneously) {
  FpqaDevice D;
  EXPECT_FALSE(D.apply(Annotation::aod({0.0, 6.0, 12.0}, {2.0})));
  EXPECT_FALSE(
      D.apply(Annotation::shuttleParallel(false, {0, 2}, {4.0, -2.0})));
  EXPECT_DOUBLE_EQ(D.columnX(0), 4.0);
  EXPECT_DOUBLE_EQ(D.columnX(1), 6.0);
  EXPECT_DOUBLE_EQ(D.columnX(2), 10.0);
}

TEST(Device, ParallelShuttleMovesAtomsRidingTheColumns) {
  // An atom on a moved column must land on the new position — the
  // dirty-mark/lazy-sync path has to cover the parallel form too.
  FpqaDevice D = makeLoadedDevice();
  EXPECT_FALSE(D.apply(Annotation::transfer(0, 0, 0))); // atom 0 -> AOD
  EXPECT_FALSE(
      D.apply(Annotation::shuttleParallel(false, {0, 1}, {3.0, 3.0})));
  EXPECT_DOUBLE_EQ(D.qubitPosition(0).X, 3.0);
  auto Clusters = D.rydbergClusters();
  ASSERT_TRUE(Clusters.ok()) << Clusters.message();
}

TEST(Device, ParallelShuttleRejectsOverlappingIndices) {
  FpqaDevice D = makeLoadedDevice();
  Status S =
      D.apply(Annotation::shuttleParallel(false, {0, 0}, {1.0, 2.0}));
  ASSERT_TRUE(static_cast<bool>(S));
  EXPECT_NE(S.message().find("ascending"), std::string::npos);
  // Descending spellings are rejected too: one canonical batch form.
  EXPECT_TRUE(static_cast<bool>(
      D.apply(Annotation::shuttleParallel(false, {1, 0}, {1.0, 1.0}))));
}

TEST(Device, ParallelShuttleRejectsOrderInversion) {
  FpqaDevice D = makeLoadedDevice();
  // Columns at 0 and 6: sending column 0 past column 1 in one step would
  // cross, even though the batch moves both.
  EXPECT_TRUE(static_cast<bool>(
      D.apply(Annotation::shuttleParallel(false, {0, 1}, {8.0, 0.0}))));
  // Unchanged on failure.
  EXPECT_DOUBLE_EQ(D.columnX(0), 0.0);
  EXPECT_DOUBLE_EQ(D.columnX(1), 6.0);
}

TEST(Device, ParallelShuttleRejectsSubMinimumSpacing) {
  HardwareParams P;
  FpqaDevice D = makeLoadedDevice(P);
  // End positions 5.6 and 6.0: gap 0.4 < MinAodSeparation (0.8).
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::shuttleParallel(
      false, {0, 1}, {6.0 - P.MinAodSeparation / 2, 0.0}))));
  // At/above the minimum separation is allowed.
  EXPECT_FALSE(D.apply(Annotation::shuttleParallel(
      false, {0, 1}, {6.0 - P.MinAodSeparation - 0.1, 0.0})));
}

TEST(Device, ParallelShuttleRejectsMalformedBatches) {
  FpqaDevice D = makeLoadedDevice();
  // Empty set, arity mismatch, out-of-range index.
  EXPECT_TRUE(
      static_cast<bool>(D.apply(Annotation::shuttleParallel(false, {}, {}))));
  EXPECT_TRUE(static_cast<bool>(
      D.apply(Annotation::shuttleParallel(false, {0, 1}, {1.0}))));
  EXPECT_TRUE(static_cast<bool>(
      D.apply(Annotation::shuttleParallel(false, {0, 2}, {1.0, 1.0}))));
  EXPECT_TRUE(static_cast<bool>(
      D.apply(Annotation::shuttleParallel(true, {1}, {1.0}))));
}

TEST(Device, RamanLocalRequiresBoundQubit) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_FALSE(D.apply(Annotation::ramanLocal(0, 1, 2, 3)));
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::ramanLocal(9, 1, 2, 3))));
}

TEST(Device, RamanGlobalAlwaysValid) {
  FpqaDevice D;
  EXPECT_FALSE(D.apply(Annotation::ramanGlobal(0.1, 0.2, 0.3)));
}

// --- Rydberg clusters ---------------------------------------------------------

TEST(Device, RydbergClustersPairsAndTriples) {
  HardwareParams P;
  FpqaDevice D(P);
  // Two atoms 2um apart, a third atom far away.
  ASSERT_FALSE(D.apply(Annotation::slm({{0, 0}, {30, 0}, {60, 0}})));
  ASSERT_FALSE(D.apply(Annotation::aod({2.0}, {0.0})));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  ASSERT_FALSE(D.apply(Annotation::bindAod(2, 0, 0)));
  auto Clusters = D.rydbergClusters();
  ASSERT_TRUE(Clusters.ok()) << Clusters.message();
  ASSERT_EQ(Clusters->size(), 1u);
  EXPECT_EQ((*Clusters)[0].Qubits, (std::vector<int>{0, 2}));
}

TEST(Device, RydbergEquilateralTripleAccepted) {
  HardwareParams P;
  P.MinSlmSeparation = 1.5; // allow a tight triangle of SLM traps
  FpqaDevice D(P);
  ASSERT_FALSE(D.apply(
      Annotation::slm({{0, 0}, {2, 0}, {1, 1.7320508075688772}})));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(2, 2)));
  auto Clusters = D.rydbergClusters();
  ASSERT_TRUE(Clusters.ok()) << Clusters.message();
  ASSERT_EQ(Clusters->size(), 1u);
  EXPECT_EQ((*Clusters)[0].Qubits.size(), 3u);
}

TEST(Device, RydbergRejectsChainedCluster) {
  // Three atoms in a line 2um apart: ends are 4um apart (> radius) but
  // connected through the middle -> invalid chain.
  HardwareParams P;
  P.MinSlmSeparation = 1.5;
  FpqaDevice D(P);
  ASSERT_FALSE(D.apply(Annotation::slm({{0, 0}, {2, 0}, {4, 0}})));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(2, 2)));
  EXPECT_FALSE(D.rydbergClusters().ok());
}

TEST(Device, RydbergRejectsNonEquidistantTriple) {
  HardwareParams P;
  P.MinSlmSeparation = 1.0;
  FpqaDevice D(P);
  ASSERT_FALSE(D.apply(Annotation::slm({{0, 0}, {2, 0}, {1, 1.0}})));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(2, 2)));
  EXPECT_FALSE(D.rydbergClusters().ok());
}

TEST(Device, RydbergRejectsOversizedCluster) {
  HardwareParams P;
  P.MinSlmSeparation = 1.0;
  FpqaDevice D(P);
  ASSERT_FALSE(D.apply(Annotation::slm({{0, 0}, {2, 0}, {0, 2}, {2, 2}})));
  for (int Q = 0; Q < 4; ++Q)
    ASSERT_FALSE(D.apply(Annotation::bindSlm(Q, Q)));
  EXPECT_FALSE(D.rydbergClusters().ok());
}

// --- Grid path vs. the retained all-pairs reference ---------------------

namespace {

/// Asserts that the spatial-grid cluster path and the all-pairs reference
/// agree on the current device state: same verdict, same clusters in the
/// same order, and the same diagnostic. NOTE: diagnostic equality only
/// holds for states with at most ONE invalid cluster — with several, the
/// two paths may report a different one first (min-member order vs.
/// union-find-root order); don't call this on multi-failure states.
void expectClustersMatchReference(const FpqaDevice &D) {
  auto Grid = D.rydbergClusters();
  auto Ref = D.rydbergClustersAllPairs();
  ASSERT_EQ(Grid.ok(), Ref.ok()) << "grid: " << Grid.message()
                                 << " reference: " << Ref.message();
  if (!Grid.ok()) {
    EXPECT_EQ(Grid.message(), Ref.message());
    return;
  }
  ASSERT_EQ(Grid->size(), Ref->size());
  for (size_t I = 0; I < Grid->size(); ++I)
    EXPECT_EQ((*Grid)[I].Qubits, (*Ref)[I].Qubits) << "cluster " << I;
  // The copy-free variant sees the same memoised decomposition.
  auto Ptr = D.rydbergClustersRef();
  ASSERT_TRUE(Ptr.ok());
  ASSERT_EQ((*Ptr)->size(), Grid->size());
  for (size_t I = 0; I < Grid->size(); ++I)
    EXPECT_EQ((**Ptr)[I].Qubits, (*Grid)[I].Qubits) << "cluster " << I;
}

} // namespace

TEST(Device, RydbergPairExactlyAtRadiusInteracts) {
  // distance == RydbergRadius is inside the blockade (<=, not <).
  HardwareParams P;
  P.MinSlmSeparation = 2.0;
  FpqaDevice D(P);
  ASSERT_FALSE(
      D.apply(Annotation::slm({{0, 0}, {P.RydbergRadius, 0}, {30, 0}})));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(2, 2)));
  auto Clusters = D.rydbergClusters();
  ASSERT_TRUE(Clusters.ok()) << Clusters.message();
  ASSERT_EQ(Clusters->size(), 1u);
  EXPECT_EQ((*Clusters)[0].Qubits, (std::vector<int>{0, 1}));
  expectClustersMatchReference(D);
}

TEST(Device, RydbergTripleAtEquidistanceToleranceBoundary) {
  // Isoceles triples straddling the tolerance: side difference just
  // inside is accepted, just outside rejected, and the knife-edge case
  // (difference == EquidistanceTolerance) must at least agree with the
  // reference path bit for bit.
  for (double Base : {2.149, 2.15, 2.151}) {
    HardwareParams P;
    P.MinSlmSeparation = 1.0;
    FpqaDevice D(P);
    double ApexX = Base / 2;
    double ApexY = std::sqrt(4.0 - ApexX * ApexX); // equal 2.0-um sides
    ASSERT_FALSE(
        D.apply(Annotation::slm({{0, 0}, {Base, 0}, {ApexX, ApexY}})));
    for (int Q = 0; Q < 3; ++Q)
      ASSERT_FALSE(D.apply(Annotation::bindSlm(Q, Q)));
    if (Base < 2.15) {
      EXPECT_TRUE(D.rydbergClusters().ok()) << Base;
    }
    if (Base > 2.15) {
      EXPECT_FALSE(D.rydbergClusters().ok()) << Base;
    }
    expectClustersMatchReference(D);
  }
}

TEST(Device, RydbergChainSpanningGridCellBorders) {
  // The chain spreads over three grid cells (cell size == RydbergRadius
  // == 2.5): links of 2 um connect, ends at 4 um do not — an invalid
  // chain, and the grid must find it across cell borders.
  HardwareParams P;
  P.MinSlmSeparation = 1.5;
  FpqaDevice D(P);
  ASSERT_FALSE(D.apply(Annotation::slm({{1, 0}, {3, 0}, {5, 0}})));
  for (int Q = 0; Q < 3; ++Q)
    ASSERT_FALSE(D.apply(Annotation::bindSlm(Q, Q)));
  EXPECT_FALSE(D.rydbergClusters().ok());
  expectClustersMatchReference(D);
}

TEST(Device, RydbergPairStraddlingCellBorderInteracts) {
  // 2.4 um apart across the x = 2.5 cell boundary: neighbouring cells,
  // still one pair.
  HardwareParams P;
  P.MinSlmSeparation = 2.0;
  FpqaDevice D(P);
  ASSERT_FALSE(D.apply(Annotation::slm({{2.4, 0}, {4.8, 0}})));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  auto Clusters = D.rydbergClusters();
  ASSERT_TRUE(Clusters.ok()) << Clusters.message();
  ASSERT_EQ(Clusters->size(), 1u);
  expectClustersMatchReference(D);
}

TEST(Device, RydbergClustersTrackIncrementalMovement) {
  // Exercises the incrementally maintained index: atoms are shuttled and
  // transferred across grid-cell borders, and after every step the grid
  // path must agree with the all-pairs reference recomputed from scratch.
  HardwareParams P;
  FpqaDevice D(P);
  ASSERT_FALSE(D.apply(Annotation::slm({{0, 0}, {6, 0}, {12, 0}, {18, 0}})));
  ASSERT_FALSE(D.apply(Annotation::aod({-6.0, -2.0}, {2.0})));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(0, 0)));
  ASSERT_FALSE(D.apply(Annotation::bindSlm(1, 1)));
  ASSERT_FALSE(D.apply(Annotation::bindAod(2, 0, 0)));
  ASSERT_FALSE(D.apply(Annotation::bindAod(3, 1, 0)));
  expectClustersMatchReference(D);

  // Walk the columns right in sub-cell hops; the pair structure changes
  // as they pass over the SLM atoms.
  for (int Step = 0; Step < 14; ++Step) {
    ASSERT_FALSE(D.apply(Annotation::shuttle(/*Row=*/false, 1, 1.3)));
    ASSERT_FALSE(D.apply(Annotation::shuttle(/*Row=*/false, 0, 1.3)));
    expectClustersMatchReference(D);
  }
  // Lift the row away and back across a cell border.
  ASSERT_FALSE(D.apply(Annotation::shuttle(/*Row=*/true, 0, 5.0)));
  expectClustersMatchReference(D);
  ASSERT_FALSE(D.apply(Annotation::shuttle(/*Row=*/true, 0, -5.0)));
  expectClustersMatchReference(D);
  // Transfer an atom between layers: column 0 now sits at x = 12.2, so
  // SLM trap 2 at x = 12 is within transfer range. Compare again.
  ASSERT_FALSE(D.apply(Annotation::transfer(2, 0, 0)));
  expectClustersMatchReference(D);
}

TEST(Device, NumAtomsIsTrackedIncrementally) {
  FpqaDevice D = makeLoadedDevice();
  EXPECT_EQ(D.numAtoms(), 2u);
  // Transfers move atoms between layers without changing the count.
  ASSERT_FALSE(D.apply(Annotation::transfer(0, 0, 0)));
  EXPECT_EQ(D.numAtoms(), 2u);
  ASSERT_FALSE(D.apply(Annotation::transfer(0, 0, 0)));
  EXPECT_EQ(D.numAtoms(), 2u);
  // Binding adds one.
  ASSERT_FALSE(D.apply(Annotation::bindAod(7, 1, 0)));
  EXPECT_EQ(D.numAtoms(), 3u);
  // A rejected bind leaves the count unchanged.
  EXPECT_TRUE(static_cast<bool>(D.apply(Annotation::bindSlm(7, 2))));
  EXPECT_EQ(D.numAtoms(), 3u);
}

// --- Pulse program analysis -----------------------------------------------

TEST(Analysis, CountsAndDurations) {
  HardwareParams P;
  std::vector<Annotation> Program = {
      Annotation::slm({{0, 0}, {6, 0}}),
      Annotation::aod({0.0}, {2.0}),
      Annotation::bindSlm(0, 0),
      Annotation::bindSlm(1, 1),
      Annotation::ramanGlobal(0.5, 0, 0),
      Annotation::ramanLocal(0, 0.5, 0, 0),
      Annotation::transfer(0, 0, 0),
      Annotation::shuttle(false, 0, 4.0), // column to x=4
      Annotation::shuttle(true, 0, -2.0), // row to y=0... crowds? no rows
  };
  auto Stats = analyzePulseProgram(Program, P);
  ASSERT_TRUE(Stats.ok()) << Stats.message();
  EXPECT_EQ(Stats->RamanGlobalPulses, 1u);
  EXPECT_EQ(Stats->RamanLocalPulses, 1u);
  EXPECT_EQ(Stats->TransferInstructions, 1u);
  EXPECT_EQ(Stats->ShuttleInstructions, 2u);
  EXPECT_EQ(Stats->ShuttleBatches, 1u); // column+row merge into one batch
  EXPECT_EQ(Stats->NumAtoms, 2u);
  double Expected = P.RamanGlobalTime + P.RamanLocalTime + P.TransferTime +
                    4.0 / P.ShuttleSpeedUmPerSec;
  EXPECT_NEAR(Stats->Duration, Expected, 1e-12);
}

TEST(Analysis, RepeatedAxisBreaksBatch) {
  HardwareParams P;
  std::vector<Annotation> Program = {
      Annotation::aod({0.0}, {2.0}),
      Annotation::shuttle(false, 0, 1.0),
      Annotation::shuttle(false, 0, 1.0), // same column again: new batch
  };
  auto Stats = analyzePulseProgram(Program, P);
  ASSERT_TRUE(Stats.ok()) << Stats.message();
  EXPECT_EQ(Stats->ShuttleBatches, 2u);
}

TEST(Analysis, ParallelShuttleIsExactlyOneBatch) {
  HardwareParams P;
  std::vector<Annotation> Program = {
      Annotation::aod({0.0, 6.0, 12.0}, {2.0}),
      Annotation::shuttleParallel(false, {0, 1, 2}, {4.0, 2.0, 1.0}),
      // A second parallel set over the same columns is a second AOD step —
      // no merging across annotations.
      Annotation::shuttleParallel(false, {0, 1}, {-1.0, -1.0}),
      // Single-column shuttles after it still batch-reconstruct normally.
      Annotation::shuttle(false, 2, 1.0),
  };
  auto Stats = analyzePulseProgram(Program, P);
  ASSERT_TRUE(Stats.ok()) << Stats.message();
  EXPECT_EQ(Stats->ShuttleInstructions, 6u);
  EXPECT_EQ(Stats->ShuttleAnnotations, 3u);
  EXPECT_EQ(Stats->ShuttleBatches, 3u);
  EXPECT_EQ(Stats->MaxParallelShuttleWidth, 3u);
  // Each parallel batch contributes max|offset| / speed.
  double Expected = (4.0 + 1.0 + 1.0) / P.ShuttleSpeedUmPerSec;
  EXPECT_NEAR(Stats->Duration, Expected, 1e-12);
}

TEST(Analysis, EpsAccumulatesGateErrors) {
  HardwareParams P;
  P.T2 = 1e9;              // neutralise decoherence for this test
  P.MinSlmSeparation = 1.5; // traps close enough to interact
  std::vector<Annotation> Program = {
      Annotation::slm({{0, 0}, {2, 0}}),
      Annotation::bindSlm(0, 0),
      Annotation::bindSlm(1, 1),
      Annotation::rydberg(),
  };
  auto Stats = analyzePulseProgram(Program, P);
  ASSERT_TRUE(Stats.ok()) << Stats.message();
  EXPECT_EQ(Stats->CzGates, 1u);
  EXPECT_NEAR(Stats->Eps, P.CzFidelity, 1e-9);
}

TEST(Analysis, RejectsInvalidProgram) {
  std::vector<Annotation> Program = {Annotation::shuttle(true, 0, 1.0)};
  EXPECT_FALSE(analyzePulseProgram(Program, HardwareParams()).ok());
}

TEST(Analysis, ZeroCopyProgramOverloadMatchesVectorOverload) {
  // The same annotations spread over statements (some without any) plus a
  // trailing block must replay identically through the zero-copy
  // AnnotationView overload and the flat-vector overload.
  HardwareParams P;
  qasm::WqasmProgram Program;
  Program.NumQubits = 2;
  using circuit::Gate;
  using circuit::GateKind;
  Program.Statements.push_back(
      {Gate(GateKind::H, {0}),
       {Annotation::slm({{0, 0}, {6, 0}}), Annotation::aod({0.0}, {2.0}),
        Annotation::bindSlm(0, 0), Annotation::bindSlm(1, 1),
        Annotation::ramanGlobal(0.5, 0, 0)}});
  Program.Statements.push_back({Gate(GateKind::H, {1}), {}});
  Program.Statements.push_back(
      {Gate(GateKind::X, {0}),
       {Annotation::ramanLocal(0, 3.14159, 0, 0),
        Annotation::transfer(0, 0, 0)}});
  Program.TrailingAnnotations = {Annotation::shuttle(false, 0, 4.0),
                                 Annotation::shuttle(true, 0, -2.0)};

  std::vector<Annotation> Flat;
  for (const Annotation &A : qasm::AnnotationView(Program))
    Flat.push_back(A);
  EXPECT_EQ(Flat.size(), Program.numAnnotations());

  auto FromProgram = analyzePulseProgram(Program, P);
  auto FromVector = analyzePulseProgram(Flat, P);
  ASSERT_TRUE(FromProgram.ok()) << FromProgram.message();
  ASSERT_TRUE(FromVector.ok()) << FromVector.message();
  EXPECT_EQ(FromProgram->totalPulses(), FromVector->totalPulses());
  EXPECT_EQ(FromProgram->ShuttleInstructions,
            FromVector->ShuttleInstructions);
  EXPECT_EQ(FromProgram->ShuttleBatches, FromVector->ShuttleBatches);
  EXPECT_EQ(FromProgram->NumAtoms, FromVector->NumAtoms);
  EXPECT_DOUBLE_EQ(FromProgram->Duration, FromVector->Duration);
  EXPECT_DOUBLE_EQ(FromProgram->Eps, FromVector->Eps);
}

TEST(HardwareParams, CompressionProfitability) {
  HardwareParams P;
  EXPECT_TRUE(P.cczCompressionProfitable());
  P.CczFidelity = 0.90; // hopeless CCZ
  EXPECT_FALSE(P.cczCompressionProfitable());
  P.CczFidelity = 0.999; // excellent CCZ
  EXPECT_TRUE(P.cczCompressionProfitable());
}
