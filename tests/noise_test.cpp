//===- tests/noise_test.cpp - noisy simulation + pulse schedule tests -----===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/WeaverCompiler.h"
#include "fpqa/PulseSchedule.h"
#include "qaoa/Builder.h"
#include "sat/Generator.h"
#include "sim/Noise.h"

#include <gtest/gtest.h>

using namespace weaver;
using circuit::Circuit;

// --- Monte-Carlo noise ----------------------------------------------------

TEST(Noise, ZeroNoiseReproducesIdealDistribution) {
  Circuit C(3);
  C.h(0).cx(0, 1).ccz(0, 1, 2).rx(0.4, 2);
  sim::NoiseModel None;
  None.OneQubitError = None.TwoQubitError = None.ThreeQubitError = 0;
  auto R = sim::simulateNoisy(C, None, 10);
  EXPECT_DOUBLE_EQ(R.ErrorFreeFraction, 1.0);
  EXPECT_NEAR(R.HellingerFidelity, 1.0, 1e-9);
}

TEST(Noise, ErrorFreeFractionTracksAnalyticEps) {
  // 40 two-qubit gates at 2% error: analytic no-error probability is
  // 0.98^40 ~ 0.446. Monte Carlo with many shots should agree within a
  // few percentage points.
  Circuit C(2);
  for (int I = 0; I < 40; ++I)
    C.cz(0, 1);
  sim::NoiseModel Noise;
  Noise.TwoQubitError = 0.02;
  Noise.OneQubitError = 0;
  auto R = sim::simulateNoisy(C, Noise, 3000, 7);
  double Analytic = std::pow(0.98, 40);
  EXPECT_NEAR(R.ErrorFreeFraction, Analytic, 0.05);
}

TEST(Noise, HellingerFidelityAtLeastErrorFreeFraction) {
  // Errors can be harmless, so distribution fidelity dominates the
  // no-error probability.
  sat::CnfFormula F = sat::RandomSatGenerator(5).generate(4, 8);
  Circuit C = qaoa::buildQaoaCircuit(F, qaoa::QaoaParams());
  sim::NoiseModel Noise;
  Noise.TwoQubitError = 0.01;
  auto R = sim::simulateNoisy(C, Noise, 400, 11);
  EXPECT_GE(R.HellingerFidelity, R.ErrorFreeFraction - 0.05);
}

TEST(Noise, MoreNoiseLowersFidelity) {
  sat::CnfFormula F = sat::RandomSatGenerator(9).generate(4, 8);
  Circuit C = qaoa::buildQaoaCircuit(F, qaoa::QaoaParams());
  sim::NoiseModel Low, High;
  Low.TwoQubitError = 0.002;
  High.TwoQubitError = 0.05;
  auto RLow = sim::simulateNoisy(C, Low, 400, 3);
  auto RHigh = sim::simulateNoisy(C, High, 400, 3);
  EXPECT_GT(RLow.HellingerFidelity, RHigh.HellingerFidelity);
  EXPECT_GT(RLow.ErrorFreeFraction, RHigh.ErrorFreeFraction);
}

TEST(Noise, DistributionNormalised) {
  Circuit C(3);
  C.h(0).h(1).h(2).ccz(0, 1, 2);
  sim::NoiseModel Noise;
  auto R = sim::simulateNoisy(C, Noise, 50, 21);
  double Sum = 0;
  for (double P : R.Distribution)
    Sum += P;
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

// --- Pulse schedule ----------------------------------------------------------

TEST(PulseSchedule, MakespanMatchesAnalysisDuration) {
  sat::CnfFormula F = sat::RandomSatGenerator(31).generate(8, 20);
  core::WeaverOptions Opt;
  auto R = core::compileWeaver(F, Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  core::CodegenResult CG;
  CG.Program = R->Program;
  auto Stream = CG.pulseStream();
  auto Schedule = fpqa::schedulePulseProgram(Stream, Opt.Hw);
  ASSERT_TRUE(Schedule.ok()) << Schedule.message();
  EXPECT_NEAR(Schedule->Makespan, R->Stats.Duration, 1e-12);
}

TEST(PulseSchedule, EventsAreContiguousAndOrdered) {
  sat::CnfFormula F(6, {sat::Clause{-1, -2, -3}, sat::Clause{4, -5, 6}});
  core::WeaverOptions Opt;
  auto R = core::compileWeaver(F, Opt);
  ASSERT_TRUE(R.ok());
  core::CodegenResult CG;
  CG.Program = R->Program;
  auto Schedule = fpqa::schedulePulseProgram(CG.pulseStream(), Opt.Hw);
  ASSERT_TRUE(Schedule.ok()) << Schedule.message();
  double Clock = 0;
  for (const auto &P : Schedule->Pulses) {
    EXPECT_NEAR(P.StartTime, Clock, 1e-12);
    EXPECT_GE(P.Duration, 0);
    Clock = P.StartTime + P.Duration;
  }
  EXPECT_NEAR(Clock, Schedule->Makespan, 1e-12);
}

TEST(PulseSchedule, RendersTable) {
  sat::CnfFormula F(3, {sat::Clause{-1, -2, -3}});
  core::WeaverOptions Opt;
  auto R = core::compileWeaver(F, Opt);
  ASSERT_TRUE(R.ok());
  core::CodegenResult CG;
  CG.Program = R->Program;
  auto Schedule = fpqa::schedulePulseProgram(CG.pulseStream(), Opt.Hw);
  ASSERT_TRUE(Schedule.ok());
  std::string Text = Schedule->str();
  EXPECT_NE(Text.find("rydberg"), std::string::npos);
  EXPECT_NE(Text.find("makespan"), std::string::npos);
}

TEST(PulseSchedule, RejectsInvalidProgram) {
  std::vector<qasm::Annotation> Bad = {qasm::Annotation::shuttle(true, 0, 1)};
  EXPECT_FALSE(fpqa::schedulePulseProgram(Bad, fpqa::HardwareParams()).ok());
}

// --- Colour shuttling reuse (Algorithm 2) ------------------------------------

TEST(AodReuse, ReuseStillVerifiesEndToEnd) {
  for (uint64_t Seed : {41u, 42u, 43u}) {
    sat::CnfFormula F = sat::RandomSatGenerator(Seed).generate(8, 18);
    core::WeaverOptions Opt;
    Opt.ReuseAodAtoms = true;
    Opt.RunChecker = true;
    auto R = core::compileWeaver(F, Opt);
    ASSERT_TRUE(R.ok()) << R.message();
    EXPECT_TRUE(R->Check->StructuralOk) << R->Check->Diagnostic;
    EXPECT_TRUE(R->Check->UnitaryOk) << R->Check->Diagnostic;
  }
}

TEST(AodReuse, NoReuseStillVerifiesEndToEnd) {
  sat::CnfFormula F = sat::RandomSatGenerator(44).generate(8, 18);
  core::WeaverOptions Opt;
  Opt.ReuseAodAtoms = false;
  Opt.RunChecker = true;
  auto R = core::compileWeaver(F, Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_TRUE(R->Check->passed()) << R->Check->Diagnostic;
}

TEST(AodReuse, ReuseReducesTransfers) {
  sat::CnfFormula F = sat::satlibInstance(20, 1);
  core::WeaverOptions On, Off;
  On.ReuseAodAtoms = true;
  Off.ReuseAodAtoms = false;
  auto ROn = core::compileWeaver(F, On);
  auto ROff = core::compileWeaver(F, Off);
  ASSERT_TRUE(ROn.ok() && ROff.ok());
  EXPECT_LT(ROn->Stats.TransferInstructions,
            ROff->Stats.TransferInstructions);
  EXPECT_LE(ROn->Stats.Duration, ROff->Stats.Duration * 1.05);
}

TEST(AodReuse, LargeInstanceStructurallySound) {
  sat::CnfFormula F = sat::satlibInstance(100, 2);
  core::WeaverOptions Opt;
  Opt.ReuseAodAtoms = true;
  auto R = core::compileWeaver(F, Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  auto Report = core::checkWqasm(R->Program, Opt.Hw);
  EXPECT_TRUE(Report.StructuralOk) << Report.Diagnostic;
}

// --- Retargeting entry point ---------------------------------------------------

#include "baselines/Superconducting.h"
#include "qasm/Parser.h"
#include "qasm/Printer.h"

TEST(Retarget, WqasmFileRetargetsToSuperconducting) {
  // §4.2: a wQASM file with annotations ignored is plain OpenQASM and can
  // be retargeted to another architecture.
  sat::CnfFormula F = sat::RandomSatGenerator(77).generate(10, 25);
  core::WeaverOptions Opt;
  auto W = core::compileWeaver(F, Opt);
  ASSERT_TRUE(W.ok()) << W.message();
  std::string WqasmText = qasm::printWqasm(W->Program);
  auto Parsed = qasm::parseWqasm(WqasmText);
  ASSERT_TRUE(Parsed.ok()) << Parsed.message();
  circuit::Circuit Logical = Parsed->toCircuit();
  auto SC = baselines::compileSuperconductingCircuit(Logical);
  EXPECT_TRUE(SC.usable());
  EXPECT_GT(SC.Pulses, 0u);
  EXPECT_GT(SC.Eps, 0);
}
