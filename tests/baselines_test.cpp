//===- tests/baselines_test.cpp - baseline compiler tests ------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/Atomique.h"
#include "baselines/CouplingMap.h"
#include "baselines/Dpqa.h"
#include "baselines/Geyser.h"
#include "baselines/Sabre.h"
#include "baselines/Superconducting.h"
#include "sat/Generator.h"
#include "sim/StateVector.h"

#include <gtest/gtest.h>

using namespace weaver;
using namespace weaver::baselines;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using sat::Clause;
using sat::CnfFormula;

namespace {

CnfFormula smallFormula() {
  return CnfFormula(6,
                    {Clause{-1, -2, -3}, Clause{4, -5, 6}, Clause{3, 5, -6}});
}

} // namespace

// --- Coupling maps ------------------------------------------------------------

TEST(CouplingMap, GridStructure) {
  CouplingMap G = makeGrid(3, 2);
  EXPECT_EQ(G.numQubits(), 6);
  EXPECT_EQ(G.numEdges(), 7u); // 4 horizontal + 3 vertical
  EXPECT_TRUE(G.areAdjacent(0, 1));
  EXPECT_TRUE(G.areAdjacent(0, 3));
  EXPECT_FALSE(G.areAdjacent(0, 4));
}

TEST(CouplingMap, DistancesAndPaths) {
  CouplingMap G = makeGrid(4, 1);
  auto D = G.distancesFrom(0);
  EXPECT_EQ(D[3], 3);
  auto Path = G.shortestPath(0, 3);
  EXPECT_EQ(Path.size(), 4u);
  EXPECT_EQ(Path.front(), 0);
  EXPECT_EQ(Path.back(), 3);
}

TEST(CouplingMap, HeavyHexIsConnectedAndWashingtonSized) {
  CouplingMap H = makeHeavyHex(127);
  EXPECT_GE(H.numQubits(), 127);
  auto D = H.distancesFrom(0);
  for (int Q = 0; Q < H.numQubits(); ++Q) {
    EXPECT_GE(D[Q], 0) << "heavy-hex graph is disconnected at " << Q;
  }
  // Heavy-hex is sparse: average degree stays below 3.
  EXPECT_LT(2.0 * H.numEdges() / H.numQubits(), 3.0);
}

// --- SABRE routing --------------------------------------------------------------

TEST(Sabre, RespectsConnectivity) {
  Circuit C(4);
  C.cz(0, 3).cz(1, 2).cz(0, 1);
  CouplingMap Line = makeGrid(4, 1);
  auto R = routeSabre(C, Line);
  ASSERT_TRUE(R.ok()) << R.message();
  for (const Gate &G : R->Routed) {
    if (G.numQubits() == 2) {
      EXPECT_TRUE(Line.areAdjacent(G.qubit(0), G.qubit(1))) << G.str();
    }
  }
}

TEST(Sabre, PreservesSemanticsUpToLayout) {
  // Verify on a line: route, then undo the layout permutation by applying
  // the routed circuit to a permuted basis state and comparing marginals.
  Circuit C(3);
  C.h(0).cx(0, 2).rz(0.3, 2).cx(1, 2);
  CouplingMap Line = makeGrid(3, 1);
  auto R = routeSabre(C, Line);
  ASSERT_TRUE(R.ok()) << R.message();
  // Build a reference over physical qubits: apply the initial layout as a
  // relabeling, with SWAP gates accounted for by the router itself.
  Circuit Relabelled(3);
  for (const Gate &G : C) {
    if (G.numQubits() == 1) {
      int P = R->InitialLayout[G.qubit(0)];
      if (G.numParams() == 0)
        Relabelled.append(Gate(G.kind(), {P}));
      else
        Relabelled.append(Gate(G.kind(), {P}, {G.param(0)}));
    } else {
      Relabelled.append(Gate(G.kind(), {R->InitialLayout[G.qubit(0)],
                                        R->InitialLayout[G.qubit(1)]}));
    }
  }
  // The routed circuit equals the relabelled circuit followed by the net
  // permutation of the inserted SWAPs; compare output probabilities after
  // undoing nothing — instead check that measurement statistics of the
  // full state (which SWAPs merely permute) have equal multisets.
  sim::StateVector A(3), B(3);
  A.applyCircuit(Relabelled);
  B.applyCircuit(R->Routed);
  auto PA = A.probabilities();
  auto PB = B.probabilities();
  std::sort(PA.begin(), PA.end());
  std::sort(PB.begin(), PB.end());
  for (size_t I = 0; I < PA.size(); ++I)
    EXPECT_NEAR(PA[I], PB[I], 1e-9);
}

TEST(Sabre, AdjacentGatesNeedNoSwaps) {
  Circuit C(2);
  C.cz(0, 1).cz(0, 1);
  auto R = routeSabre(C, makeGrid(2, 1));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->SwapCount, 0u);
}

TEST(Sabre, RejectsOversizedCircuit) {
  Circuit C(5);
  EXPECT_FALSE(routeSabre(C, makeGrid(2, 2)).ok());
}

TEST(Sabre, KeepsMeasurements) {
  Circuit C(2);
  C.h(0).measure(0).measure(1);
  auto R = routeSabre(C, makeGrid(2, 1));
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R->Routed.count(GateKind::Measure), 2u);
}

// --- Superconducting -------------------------------------------------------------

TEST(Superconducting, CompilesSmallFormula) {
  BaselineResult R = compileSuperconducting(smallFormula());
  EXPECT_TRUE(R.usable());
  EXPECT_GT(R.CompileSeconds, 0);
  EXPECT_GT(R.Pulses, 0u);
  EXPECT_GT(R.ExecutionSeconds, 0);
  EXPECT_GT(R.Eps, 0);
  EXPECT_LT(R.Eps, 1);
}

TEST(Superconducting, RejectsBeyondDeviceSize) {
  CnfFormula F = sat::satlibInstance(150, 1);
  BaselineResult R = compileSuperconducting(F);
  EXPECT_TRUE(R.Unsupported);
}

TEST(Superconducting, BiggerFormulaCostsMore) {
  BaselineResult Small = compileSuperconducting(sat::satlibInstance(20, 1));
  BaselineResult Large = compileSuperconducting(sat::satlibInstance(50, 1));
  ASSERT_TRUE(Small.usable() && Large.usable());
  EXPECT_GT(Large.Pulses, Small.Pulses);
  EXPECT_GT(Large.ExecutionSeconds, Small.ExecutionSeconds);
  EXPECT_LT(Large.Eps, Small.Eps);
}

// --- Atomique --------------------------------------------------------------------

TEST(Atomique, CompilesAndReportsMetrics) {
  BaselineResult R = compileAtomique(smallFormula());
  EXPECT_TRUE(R.usable());
  EXPECT_GT(R.Pulses, 0u);
  EXPECT_GT(R.TwoQubitGates, 0u);
  EXPECT_GT(R.Eps, 0);
}

TEST(Atomique, UsesOnlyTwoQubitGates) {
  BaselineResult R = compileAtomique(smallFormula());
  EXPECT_EQ(R.ThreeQubitGates, 0u);
}

// --- Geyser ----------------------------------------------------------------------

TEST(Geyser, CompilesSmallFormulaWithinDeadline) {
  GeyserParams P;
  P.SynthesisTrials = 20; // keep the unit test fast
  BaselineResult R = compileGeyser(smallFormula(), qaoa::QaoaParams(), P);
  EXPECT_FALSE(R.TimedOut);
  EXPECT_FALSE(R.EpsMeaningful);
  EXPECT_GT(R.Pulses, 0u);
  EXPECT_GT(R.ThreeQubitGates, 0u);
  EXPECT_EQ(R.SwapGates, 0u); // no movement, no routing in this model
}

TEST(Geyser, DeadlineTriggersTimeout) {
  GeyserParams P;
  P.SynthesisTrials = 100000;
  P.DeadlineSeconds = 0.05;
  BaselineResult R = compileGeyser(sat::satlibInstance(20, 1),
                                   qaoa::QaoaParams(), P);
  EXPECT_TRUE(R.TimedOut);
}

// --- DPQA ------------------------------------------------------------------------

TEST(Dpqa, CompilesSmallFormula) {
  BaselineResult R = compileDpqa(smallFormula());
  EXPECT_FALSE(R.TimedOut);
  EXPECT_GT(R.Pulses, 0u);
  EXPECT_GT(R.Eps, 0);
}

TEST(Dpqa, MergingGivesFewerPulsesThanAtomique) {
  CnfFormula F = smallFormula();
  BaselineResult D = compileDpqa(F);
  BaselineResult A = compileAtomique(F);
  ASSERT_TRUE(D.usable() && A.usable());
  EXPECT_LT(D.Pulses, A.Pulses);
}

TEST(Dpqa, DeadlineTriggersTimeout) {
  DpqaParams P;
  P.DeadlineSeconds = 1e-4;
  BaselineResult R = compileDpqa(sat::satlibInstance(20, 1),
                                 qaoa::QaoaParams(), P);
  EXPECT_TRUE(R.TimedOut);
}
