//===- tests/pipeline_test.cpp - Pass pipeline unit + parity tests --------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Parity tests pin the pass-based code generator to the golden wQASM
/// programs captured from the pre-pipeline monolithic generator
/// (tests/data/golden_*.wqasm): the refactor must stay byte-identical.
/// The per-pass tests exercise each stage — and the ablation toggles —
/// through the PassManager directly.
///
//===----------------------------------------------------------------------===//

#include "core/WChecker.h"
#include "core/WeaverCompiler.h"
#include "core/pipeline/ClauseColoringPass.h"
#include "core/pipeline/GateLoweringPass.h"
#include "core/pipeline/PassManager.h"
#include "core/pipeline/PulseEmissionPass.h"
#include "core/pipeline/ShuttleSchedulingPass.h"
#include "core/pipeline/ZonePlanningPass.h"
#include "qasm/Printer.h"
#include "sat/Generator.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;
using sat::Clause;
using sat::CnfFormula;

namespace {

CnfFormula paperExample() {
  return CnfFormula(6, {Clause{-1, -2, -3}, Clause{4, -5, 6},
                        Clause{3, 5, -6}});
}

CnfFormula goldenFormula(uint64_t Seed) {
  return sat::RandomSatGenerator(Seed).generate(12, 36);
}

std::string readGolden(const std::string &Name) {
  std::ifstream In(std::string(WEAVER_TEST_DATA_DIR) + "/" + Name);
  EXPECT_TRUE(In.good()) << "missing golden file " << Name;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Runs the full pipeline over \p Formula with \p Options applied.
Expected<WeaverResult> compileWith(const CnfFormula &Formula,
                                   const WeaverOptions &Options) {
  return compileWeaver(Formula, Options);
}

// --- Parity against the pre-refactor monolith ---------------------------

class GoldenParity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GoldenParity, CompressedOutputIsByteIdentical) {
  auto R = compileWith(goldenFormula(GetParam()), WeaverOptions());
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(qasm::printWqasm(R->Program),
            readGolden("golden_seed" + std::to_string(GetParam()) +
                       ".wqasm"));
}

TEST_P(GoldenParity, LadderOutputIsByteIdentical) {
  WeaverOptions Opt;
  Opt.Compression = WeaverOptions::CompressionMode::Off;
  auto R = compileWith(goldenFormula(GetParam()), Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(qasm::printWqasm(R->Program),
            readGolden("golden_seed" + std::to_string(GetParam()) +
                       "_ladder.wqasm"));
}

TEST_P(GoldenParity, NoReuseOutputIsByteIdentical) {
  WeaverOptions Opt;
  Opt.ReuseAodAtoms = false;
  auto R = compileWith(goldenFormula(GetParam()), Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(qasm::printWqasm(R->Program),
            readGolden("golden_seed" + std::to_string(GetParam()) +
                       "_noreuse.wqasm"));
}

TEST_P(GoldenParity, DirectCodegenMatchesGolden) {
  // The generateFpqaProgram entry point (caller-supplied colouring) must
  // produce the same bytes as the full pipeline and the golden capture.
  CnfFormula F = goldenFormula(GetParam());
  ClauseColoring Coloring = colorClausesDSatur(F);
  fpqa::HardwareParams Hw;
  CodegenOptions Options;
  Options.UseCompression = Hw.cczCompressionProfitable();
  auto R = generateFpqaProgram(F, Coloring, Hw, Options);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(qasm::printWqasm(R->Program),
            readGolden("golden_seed" + std::to_string(GetParam()) +
                       ".wqasm"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenParity,
                         ::testing::Values(7, 21, 42));

TEST(GoldenParity, MixedWidthsTwoLayersMeasured) {
  CnfFormula Mixed(5, {Clause{1}, Clause{-2, 3}, Clause{-3, -4, -5},
                       Clause{2, 4}, Clause{-1, 4, 5}});
  WeaverOptions Opt;
  Opt.Qaoa.Layers = 2;
  Opt.Measure = true;
  auto R = compileWith(Mixed, Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  EXPECT_EQ(qasm::printWqasm(R->Program), readGolden("golden_mixed.wqasm"));
}

// --- PassManager --------------------------------------------------------

TEST(PassManager, RecordsOneTimingPerPassInOrder) {
  CompilationContext Ctx;
  CnfFormula F = paperExample();
  Ctx.Formula = &F;
  ASSERT_TRUE(PassManager::standardFpqaPipeline().run(Ctx).ok());
  ASSERT_EQ(Ctx.Timings.size(), 5u);
  EXPECT_EQ(Ctx.Timings[0].PassName, "clause-coloring");
  EXPECT_EQ(Ctx.Timings[1].PassName, "zone-planning");
  EXPECT_EQ(Ctx.Timings[2].PassName, "shuttle-scheduling");
  EXPECT_EQ(Ctx.Timings[3].PassName, "gate-lowering");
  EXPECT_EQ(Ctx.Timings[4].PassName, "pulse-emission");
  for (const PassTiming &T : Ctx.Timings)
    EXPECT_GE(T.Seconds, 0.0);
}

TEST(PassManager, FailureNamesTheFailingPass) {
  CompilationContext Ctx;
  CnfFormula F(4, {Clause{1, 2, 3, 4}}); // too wide for the zone planner
  Ctx.Formula = &F;
  Status S = PassManager::standardFpqaPipeline().run(Ctx);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.message().find("zone-planning"), std::string::npos)
      << S.message();
  // The manager still recorded the failing pass's timing.
  EXPECT_EQ(Ctx.Timings.back().PassName, "zone-planning");
}

// --- ClauseColoringPass -------------------------------------------------

TEST(ClauseColoringPass, ColoursWithSelectedHeuristic) {
  CnfFormula F = sat::RandomSatGenerator(5).generate(10, 40);
  CompilationContext DSatur, FirstFit;
  DSatur.Formula = FirstFit.Formula = &F;
  FirstFit.UseDSatur = false;
  ClauseColoringPass Pass;
  ASSERT_TRUE(Pass.run(DSatur).ok());
  ASSERT_TRUE(Pass.run(FirstFit).ok());
  EXPECT_TRUE(DSatur.Coloring.isValid(F));
  EXPECT_TRUE(FirstFit.Coloring.isValid(F));
  EXPECT_TRUE(DSatur.HasColoring);
}

TEST(ClauseColoringPass, RejectsInvalidSuppliedColoring) {
  CnfFormula F = paperExample();
  CompilationContext Ctx;
  Ctx.Formula = &F;
  // All three clauses in one colour although clause 2 conflicts.
  Ctx.Coloring.ColorOf = {0, 0, 0};
  Ctx.Coloring.ClausesByColor = {{0, 1, 2}};
  Ctx.HasColoring = true;
  ClauseColoringPass Pass;
  EXPECT_FALSE(Pass.run(Ctx).ok());
}

// --- ZonePlanningPass ---------------------------------------------------

TEST(ZonePlanningPass, PlansSitesTrapsAndColumns) {
  CnfFormula F = paperExample();
  CompilationContext Ctx;
  Ctx.Formula = &F;
  ASSERT_TRUE(ClauseColoringPass().run(Ctx).ok());
  ASSERT_TRUE(ZonePlanningPass().run(Ctx).ok());
  ASSERT_EQ(Ctx.Plans.size(), static_cast<size_t>(Ctx.Coloring.numColors()));
  // One home trap per variable plus one shared zone trap per 3-clause site.
  EXPECT_GE(Ctx.SlmTraps.size(), static_cast<size_t>(F.numVariables()));
  size_t Sites = 0, Slots = 0;
  for (const ColorPlan &Plan : Ctx.Plans) {
    for (const ClausePlan &CP : Plan.Clauses) {
      EXPECT_GE(CP.Width, 1);
      EXPECT_LE(CP.Width, 3);
      if (CP.Width == 3) {
        ++Sites;
        // Zone target traps live after the home traps.
        EXPECT_GE(CP.TargetTrap, F.numVariables());
      }
    }
    Slots = std::max(Slots, Plan.Slots.size());
  }
  EXPECT_EQ(Sites, F.numClauses()); // paper example is all 3-literal
  EXPECT_EQ(Ctx.NumColumns, static_cast<int>(Slots));
}

TEST(ZonePlanningPass, RejectsWideClauses) {
  CnfFormula F(4, {Clause{1, 2, 3, 4}});
  CompilationContext Ctx;
  Ctx.Formula = &F;
  ASSERT_TRUE(ClauseColoringPass().run(Ctx).ok());
  EXPECT_FALSE(ZonePlanningPass().run(Ctx).ok());
}

// --- ShuttleSchedulingPass ----------------------------------------------

/// Runs colouring + planning + scheduling and returns the context.
CompilationContext scheduleFor(const CnfFormula &F, bool Reuse,
                               int Layers = 1) {
  CompilationContext Ctx;
  Ctx.Formula = &F;
  Ctx.Options.ReuseAodAtoms = Reuse;
  Ctx.Options.Qaoa.Layers = Layers;
  EXPECT_TRUE(ClauseColoringPass().run(Ctx).ok());
  EXPECT_TRUE(ZonePlanningPass().run(Ctx).ok());
  EXPECT_TRUE(ShuttleSchedulingPass().run(Ctx).ok());
  return Ctx;
}

size_t totalLoads(const CompilationContext &Ctx) {
  size_t N = 0;
  for (const BoundarySchedule &B : Ctx.Boundaries)
    N += B.ToLoad.size();
  return N;
}

TEST(ShuttleSchedulingPass, CoversTheExecutionOrder) {
  CnfFormula F = sat::RandomSatGenerator(9).generate(10, 30);
  CompilationContext Ctx = scheduleFor(F, /*Reuse=*/true, /*Layers=*/2);
  EXPECT_EQ(Ctx.Boundaries.size(),
            static_cast<size_t>(2 * Ctx.Coloring.numColors()));
  for (const BoundarySchedule &B : Ctx.Boundaries) {
    if (B.Empty)
      continue;
    // Every slot got a distinct in-range column, and targets cover all
    // columns.
    std::vector<bool> Used(Ctx.NumColumns, false);
    for (int C : B.SlotColumn) {
      ASSERT_GE(C, 0);
      ASSERT_LT(C, Ctx.NumColumns);
      EXPECT_FALSE(Used[C]) << "column assigned twice";
      Used[C] = true;
    }
    EXPECT_EQ(B.ColumnTargets.size(), static_cast<size_t>(Ctx.NumColumns));
  }
}

TEST(ShuttleSchedulingPass, NoReuseLoadsEverySlotEveryBoundary) {
  CnfFormula F = sat::RandomSatGenerator(9).generate(10, 30);
  CompilationContext Ctx = scheduleFor(F, /*Reuse=*/false, /*Layers=*/2);
  size_t BoundaryIdx = 0;
  for (int Layer = 0; Layer < 2; ++Layer)
    for (int Color = 0; Color < Ctx.Coloring.numColors(); ++Color) {
      const BoundarySchedule &B = Ctx.Boundaries[BoundaryIdx++];
      if (B.Empty)
        continue;
      EXPECT_EQ(B.ToLoad.size(), Ctx.Plans[Color].Slots.size());
    }
}

TEST(ShuttleSchedulingPass, ReuseNeverLoadsMoreThanNoReuse) {
  for (uint64_t Seed : {3u, 11u, 29u}) {
    CnfFormula F = sat::RandomSatGenerator(Seed).generate(12, 40);
    size_t Reused = totalLoads(scheduleFor(F, true, 2));
    size_t Fresh = totalLoads(scheduleFor(F, false, 2));
    EXPECT_LE(Reused, Fresh) << "seed " << Seed;
    EXPECT_LT(Reused, Fresh)
        << "reuse saved nothing across 2 layers, seed " << Seed;
  }
}

// --- GateLoweringPass ---------------------------------------------------

TEST(GateLoweringPass, RequiresSchedules) {
  CnfFormula F = paperExample();
  CompilationContext Ctx;
  Ctx.Formula = &F;
  ASSERT_TRUE(ClauseColoringPass().run(Ctx).ok());
  ASSERT_TRUE(ZonePlanningPass().run(Ctx).ok());
  EXPECT_FALSE(GateLoweringPass().run(Ctx).ok());
}

TEST(GateLoweringPass, CompressionToggleThroughPassManager) {
  CnfFormula F = paperExample();
  for (bool Compress : {true, false}) {
    CompilationContext Ctx;
    Ctx.Formula = &F;
    Ctx.Options.UseCompression = Compress;
    ASSERT_TRUE(PassManager::standardFpqaPipeline().run(Ctx).ok());
    size_t Cczs = 0;
    for (const auto &S : Ctx.Program.Statements)
      Cczs += S.Gate.kind() == circuit::GateKind::CCZ;
    if (Compress)
      EXPECT_EQ(Cczs, 6u); // 3 clauses x 2 CCZ (Fig. 7)
    else
      EXPECT_EQ(Cczs, 0u);
    // Both lowerings produce structurally valid programs.
    CheckReport Report = checkWqasm(Ctx.Program, Ctx.Hw);
    EXPECT_TRUE(Report.StructuralOk) << Report.Diagnostic;
  }
}

TEST(GateLoweringPass, ReuseToggleThroughPassManager) {
  CnfFormula F = sat::RandomSatGenerator(13).generate(10, 30);
  size_t Transfers[2] = {0, 0};
  for (int Reuse = 0; Reuse < 2; ++Reuse) {
    CompilationContext Ctx;
    Ctx.Formula = &F;
    Ctx.Options.ReuseAodAtoms = Reuse == 1;
    ASSERT_TRUE(PassManager::standardFpqaPipeline().run(Ctx).ok());
    Transfers[Reuse] = Ctx.Stats.TransferInstructions;
    CheckReport Report = checkWqasm(Ctx.Program, Ctx.Hw);
    EXPECT_TRUE(Report.StructuralOk) << Report.Diagnostic;
  }
  EXPECT_LT(Transfers[1], Transfers[0])
      << "colour shuttling reuse should save transfer pulses";
}

// --- PulseEmissionPass --------------------------------------------------

TEST(PulseEmissionPass, FlattensStreamAndDerivesStats) {
  CnfFormula F = paperExample();
  CompilationContext Ctx;
  Ctx.Formula = &F;
  ASSERT_TRUE(PassManager::standardFpqaPipeline().run(Ctx).ok());
  EXPECT_TRUE(Ctx.HasStats);
  EXPECT_EQ(Ctx.PulseStream.size(), Ctx.Program.numAnnotations());
  EXPECT_GT(Ctx.Stats.totalPulses(), 0u);
  EXPECT_GT(Ctx.Stats.RydbergPulses, 0u);
  EXPECT_GT(Ctx.Stats.Duration, 0.0);
  EXPECT_GT(Ctx.Stats.Eps, 0.0);
}

TEST(PulseEmissionPass, StreamIsNonOwningViewIntoProgram) {
  CnfFormula F = paperExample();
  CompilationContext Ctx;
  Ctx.Formula = &F;
  ASSERT_TRUE(PassManager::standardFpqaPipeline().run(Ctx).ok());
  ASSERT_FALSE(Ctx.PulseStream.empty());
  // Every stream element points into the program, in execution order —
  // the annotations are never copied out of it.
  size_t I = 0;
  for (const qasm::Annotation &A : qasm::AnnotationView(Ctx.Program)) {
    ASSERT_LT(I, Ctx.PulseStream.size());
    EXPECT_EQ(Ctx.PulseStream[I], &A) << "stream index " << I;
    ++I;
  }
  EXPECT_EQ(I, Ctx.PulseStream.size());
}

TEST(GateLoweringPass, RejectsNonMonotoneColumnTargets) {
  // The emitter batches each boundary placement as one parallel shuttle
  // under the scheduler's monotone >= BumpGap target invariant; a
  // schedule violating it must be rejected (the former multi-sweep
  // fallback that silently handled it is gone).
  CnfFormula F = sat::RandomSatGenerator(9).generate(10, 30);
  CompilationContext Ctx;
  Ctx.Formula = &F;
  ASSERT_TRUE(ClauseColoringPass().run(Ctx).ok());
  ASSERT_TRUE(ZonePlanningPass().run(Ctx).ok());
  ASSERT_TRUE(ShuttleSchedulingPass().run(Ctx).ok());
  for (BoundarySchedule &B : Ctx.Boundaries)
    if (!B.Empty && B.ColumnTargets.size() >= 2) {
      std::swap(B.ColumnTargets.front(), B.ColumnTargets.back());
      break;
    }
  Status S = GateLoweringPass().run(Ctx);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.message().find("monotone"), std::string::npos) << S.message();
}

TEST(GateLoweringPass, BoundaryShuttleEmissionIsLinearInColumns) {
  // The batched emitter must produce O(columns) @shuttle annotations per
  // colour boundary (Algorithm 2's parallel pickup), not the former
  // O(columns^2) bump-cascade stream. Bound the per-boundary annotation
  // count by the column count itself (coefficient 1) across sizes.
  for (int N : {20, 100}) {
    sat::CnfFormula F = sat::satlibInstance(N, 1);
    auto R = compileWeaver(F, WeaverOptions());
    ASSERT_TRUE(R.ok()) << R.message();
    size_t Columns = 0;
    for (const qasm::Annotation &A : R->Program.Statements[0].Annotations)
      if (A.Kind == qasm::AnnotationKind::Aod)
        Columns = A.AodXs.size();
    ASSERT_GT(Columns, 0u);
    size_t Boundaries = static_cast<size_t>(R->Coloring.numColors());
    EXPECT_LE(R->Stats.ShuttleAnnotations, Columns * Boundaries)
        << "N=" << N << ": shuttle stream is super-linear in columns";
    // Batching is real: parallel sets span many columns and the
    // individual-move count far exceeds the annotation count.
    EXPECT_GE(R->Stats.MaxParallelShuttleWidth, Columns / 2);
    EXPECT_GT(R->Stats.ShuttleInstructions,
              4 * R->Stats.ShuttleAnnotations);
  }
}

TEST(WeaverCompiler, ReportsPerPassTimings) {
  auto R = compileWeaver(paperExample());
  ASSERT_TRUE(R.ok()) << R.message();
  ASSERT_EQ(R->PassTimings.size(), 5u);
  double Sum = 0;
  for (const PassTiming &T : R->PassTimings)
    if (T.PassName != "pulse-emission")
      Sum += T.Seconds;
  EXPECT_DOUBLE_EQ(R->CompileSeconds, Sum);
}

} // namespace
