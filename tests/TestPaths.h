//===- tests/TestPaths.h - Per-test scratch directories --------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scratch-directory helper for tests that write files. CMake gives every
/// test binary its own root (WEAVER_TEST_TMPDIR under the build tree);
/// testTempDir() appends the current gtest case name, so two tests — even
/// the same test running in two parallel `ctest -j` binaries — can never
/// collide on a written path. Use this instead of ad-hoc /tmp paths or
/// files next to the binary.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_TESTS_TESTPATHS_H
#define WEAVER_TESTS_TESTPATHS_H

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#ifndef WEAVER_TEST_TMPDIR
#define WEAVER_TEST_TMPDIR "/tmp/weaver-tests"
#endif

namespace weaver {

/// Returns (creating if needed) a scratch directory unique to the calling
/// test case: <binary tmpdir>/<Suite>.<Test>.
inline std::string testTempDir() {
  const ::testing::TestInfo *Info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string Case = Info ? std::string(Info->test_suite_name()) + "." +
                                Info->name()
                          : std::string("unknown");
  // Parameterised test names contain '/', which would nest directories.
  for (char &C : Case)
    if (C == '/')
      C = '_';
  std::string Dir = std::string(WEAVER_TEST_TMPDIR) + "/" + Case;
  std::filesystem::create_directories(Dir);
  return Dir;
}

} // namespace weaver

#endif // WEAVER_TESTS_TESTPATHS_H
