//===- tests/service_stress_test.cpp - CompileService stress --------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Hammers the CompileService from several producer threads with mixed
/// instance sizes, deliberate duplicates, and random cancellations, then
/// asserts the invariants that matter for a long-running server: no
/// deadlock (bounded waits), every job resolves exactly once (callback
/// count == 1, terminal state), the submitted/completed/cancelled/
/// coalesced counters balance, and the shared PassCache's hit/miss
/// accounting stays consistent under contention.
///
/// The corpus shrinks under WEAVER_STRESS_LIGHT=1 — the ThreadSanitizer
/// CI job sets it so the race detection finishes in minutes while regular
/// CI runs the full corpus.
///
//===----------------------------------------------------------------------===//

#include "core/service/CompileService.h"
#include "sat/Generator.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace weaver;
using namespace weaver::core;

namespace {

constexpr double WaitSeconds = 300.0;

bool lightCorpus() {
  const char *Env = std::getenv("WEAVER_STRESS_LIGHT");
  return Env && std::string(Env) == "1";
}

struct StressConfig {
  int Producers = 4;
  int JobsPerProducer = 24;
  int ServiceThreads = 3;
  size_t QueueCapacity = 16; // small: exercise submit() backpressure
};

StressConfig config() {
  StressConfig C;
  if (lightCorpus()) {
    C.Producers = 3;
    C.JobsPerProducer = 8;
    C.ServiceThreads = 2;
    C.QueueCapacity = 4;
  }
  return C;
}

} // namespace

TEST(ServiceStress, EveryJobResolvesExactlyOnceUnderContention) {
  StressConfig C = config();
  ServiceOptions Opt;
  Opt.NumThreads = C.ServiceThreads;
  Opt.QueueCapacity = C.QueueCapacity;
  CompileService Service(Opt);

  const int TotalJobs = C.Producers * C.JobsPerProducer;
  std::vector<std::atomic<int>> CallbackCount(TotalJobs);
  std::vector<CompileService::JobHandle> Handles(TotalJobs);
  std::atomic<int> CancelsIssued{0};

  auto Producer = [&](int P) {
    // Deterministic per-producer randomness (no std::mt19937: instance
    // identity must be stable across platforms, see support/Rng.h).
    Xoshiro256 Rng(1234 + P);
    for (int J = 0; J < C.JobsPerProducer; ++J) {
      int Slot = P * C.JobsPerProducer + J;
      CompileRequest R;
      // Mixed sizes, and only ~6 distinct instances per size so that
      // concurrent producers regularly submit identical requests (the
      // dedup path) and repeatedly hit the same cache entries.
      int Vars = (Rng.next() % 2) ? 20 : 50;
      R.Formula = sat::satlibInstance(Vars, 1 + Rng.next() % 6);
      R.Priority = static_cast<int>(Rng.next() % 3);
      Handles[Slot] = Service.submit(
          R, [&CallbackCount, Slot](const JobOutcome &) {
            ++CallbackCount[Slot];
          });
      // ~20% of jobs get cancelled right away, racing the queue and the
      // running compile; some land before dequeue, some mid-pipeline,
      // some after completion — all must stay exactly-once.
      if (Rng.next() % 5 == 0) {
        Handles[Slot].cancel();
        ++CancelsIssued;
      }
    }
  };

  std::vector<std::thread> Producers;
  for (int P = 0; P < C.Producers; ++P)
    Producers.emplace_back(Producer, P);
  for (std::thread &T : Producers)
    T.join();

  // Bounded waits: a deadlock fails the test instead of hanging ctest.
  size_t Completed = 0, Cancelled = 0;
  for (int Slot = 0; Slot < TotalJobs; ++Slot) {
    JobOutcome Out;
    ASSERT_TRUE(Handles[Slot].waitFor(WaitSeconds, Out))
        << "job in slot " << Slot << " never resolved";
    ASSERT_TRUE(Out.State == JobState::Completed ||
                Out.State == JobState::Cancelled)
        << "slot " << Slot << ": " << jobStateName(Out.State);
    if (Out.State == JobState::Completed) {
      ++Completed;
      EXPECT_TRUE(Out.Metrics.usable()) << Out.Diagnostic;
      EXPECT_FALSE(Out.Wqasm.empty());
    } else {
      ++Cancelled;
    }
  }
  Service.shutdown(/*Drain=*/true);

  // Exactly-once: every handle's callback fired exactly once, even for
  // coalesced and cancelled jobs.
  for (int Slot = 0; Slot < TotalJobs; ++Slot)
    EXPECT_EQ(CallbackCount[Slot].load(), 1) << "slot " << Slot;

  // Counter balance: every non-coalesced submission resolved exactly
  // once; coalesced submissions share a resolution. A handle's observed
  // state can differ from its job's counted state only for coalesced
  // waiters, so compare through the service's own counters.
  CompileService::ServiceStats S = Service.stats();
  EXPECT_EQ(S.Submitted, static_cast<uint64_t>(TotalJobs));
  EXPECT_EQ(S.Completed + S.Cancelled + S.Failed,
            S.Submitted - S.Coalesced);
  EXPECT_EQ(S.Failed, 0u); // nothing was submitted after shutdown

  // PassCache accounting under contention (all jobs are Weaver jobs):
  // every compile that started consulted the program tier exactly once,
  // and the front tier is consulted exactly on program-tier misses.
  pipeline::PassCache::CacheStats CS = Service.cache()->stats();
  EXPECT_EQ(CS.ProgramHits + CS.ProgramMisses, S.CompilesStarted);
  EXPECT_EQ(CS.FrontHits + CS.FrontMisses, CS.ProgramMisses);
  // Tier hits observed by jobs can't exceed the cache's own hit count
  // (cancelled compiles may have looked up without reporting a tier).
  EXPECT_LE(S.ProgramTierHits, CS.ProgramHits);
  EXPECT_LE(S.FrontTierHits, CS.FrontHits);

  // The workload genuinely exercised the interesting paths.
  EXPECT_GT(Completed, 0u);
  if (CancelsIssued.load() > 0) {
    EXPECT_GT(Cancelled, 0u);
  }
}

TEST(ServiceStress, ShutdownCancelUnderLoadResolvesEverything) {
  StressConfig C = config();
  ServiceOptions Opt;
  Opt.NumThreads = C.ServiceThreads;
  Opt.QueueCapacity = 0; // unbounded: shutdown must cancel a deep queue
  CompileService Service(Opt);

  std::vector<CompileService::JobHandle> Handles;
  for (int I = 0; I < C.Producers * C.JobsPerProducer; ++I) {
    CompileRequest R;
    R.Formula = sat::satlibInstance(I % 2 ? 50 : 20, 1 + I % 6);
    Handles.push_back(Service.submit(std::move(R)));
  }
  Service.shutdown(/*Drain=*/false);

  size_t Cancelled = 0;
  for (CompileService::JobHandle &H : Handles) {
    JobOutcome Out;
    ASSERT_TRUE(H.waitFor(WaitSeconds, Out));
    ASSERT_TRUE(Out.State == JobState::Completed ||
                Out.State == JobState::Cancelled);
    Cancelled += Out.State == JobState::Cancelled;
  }
  // With a deep queue and an immediate cancel-shutdown, at least part of
  // the queue must have been cancelled rather than compiled (how much
  // depends on how far the workers got before shutdown landed).
  EXPECT_GT(Cancelled, 0u);
  CompileService::ServiceStats S = Service.stats();
  EXPECT_EQ(S.Completed + S.Cancelled + S.Failed,
            S.Submitted - S.Coalesced);
}
