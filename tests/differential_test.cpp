//===- tests/differential_test.cpp - Cross-backend differential tests -----===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Differential correctness across the five BackendKinds of the paper's
/// evaluation: on a common formula grid every backend must produce a
/// structurally valid result (sane qubit/gate/pulse counts, fidelity in
/// (0, 1], non-empty program where the backend emits one), and the Weaver
/// path must produce byte-identical wQASM whether it is driven directly,
/// through the BatchCompiler, or through the CompileService — with the
/// PassCache on and off. Mismatching programs are dumped into the
/// per-test scratch directory (tests/TestPaths.h) for diffing.
///
//===----------------------------------------------------------------------===//

#include "TestPaths.h"
#include "core/BatchCompiler.h"
#include "core/WeaverCompiler.h"
#include "core/service/CompileService.h"
#include "oq2/Export.h"
#include "oq2/Frontend.h"
#include "oq2/QaoaRecover.h"
#include "sat/Generator.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace weaver;
using namespace weaver::core;
using baselines::BackendKind;

namespace {

/// Small enough that the exponential/quadratic baselines (Geyser, DPQA)
/// finish in milliseconds; the paper's own evaluation caps them at 20
/// variables.
std::vector<sat::CnfFormula> smallGrid() {
  std::vector<sat::CnfFormula> Grid;
  for (uint64_t Seed : {7u, 21u, 42u})
    Grid.push_back(sat::RandomSatGenerator(Seed).generate(8, 16));
  return Grid;
}

/// The SATLIB sizes the scalable backends (superconducting, Atomique,
/// Weaver) are differentially checked on.
std::vector<sat::CnfFormula> satlibGrid() {
  std::vector<sat::CnfFormula> Grid;
  for (int Vars : {20, 50})
    for (int Index : {1, 2})
      Grid.push_back(sat::satlibInstance(Vars, Index));
  return Grid;
}

void expectStructurallyValid(const baselines::BaselineResult &R,
                             const sat::CnfFormula &F, BackendKind Kind,
                             bool AllowEpsUnderflow = false) {
  SCOPED_TRACE(std::string("backend ") + baselines::backendKindName(Kind) +
               ", " + std::to_string(F.numVariables()) + " vars");
  EXPECT_TRUE(R.usable()) << R.Diagnostic;
  if (!R.usable())
    return;
  EXPECT_EQ(R.Compiler, baselines::backendKindName(Kind));
  EXPECT_GE(R.CompileSeconds, 0.0);
  EXPECT_GT(R.Pulses, 0u);
  // Every QAOA compilation of a non-trivial formula needs entangling
  // structure somewhere.
  EXPECT_GT(R.TwoQubitGates + R.ThreeQubitGates + R.SwapGates, 0u);
  EXPECT_GT(R.ExecutionSeconds, 0.0);
  if (R.EpsMeaningful) {
    // The success probability is a product of thousands of per-gate
    // fidelities; on large instances it legitimately underflows to 0 for
    // the gate-heavy baselines (the paper plots it at 1e-60 and below).
    if (AllowEpsUnderflow) {
      EXPECT_GE(R.Eps, 0.0);
    } else {
      EXPECT_GT(R.Eps, 0.0);
    }
    EXPECT_LE(R.Eps, 1.0);
  }
  if (Kind == BackendKind::Weaver) {
    EXPECT_GT(R.Colors, 0);
  }
}

/// Dumps two mismatching programs for post-mortem diffing; returns the
/// directory used.
std::string dumpMismatch(const std::string &Name, const std::string &Got,
                         const std::string &Want) {
  std::string Dir = testTempDir();
  std::ofstream(Dir + "/" + Name + ".got.wqasm") << Got;
  std::ofstream(Dir + "/" + Name + ".want.wqasm") << Want;
  return Dir;
}

} // namespace

// --- Structural validity across all five backends ------------------------

TEST(Differential, AllBackendsProduceStructurallyValidResults) {
  qaoa::QaoaParams Qaoa;
  for (const sat::CnfFormula &F : smallGrid())
    for (BackendKind Kind : baselines::AllBackendKinds) {
      std::unique_ptr<baselines::Backend> B = baselines::createBackend(Kind);
      ASSERT_NE(B, nullptr);
      baselines::CompileOutput Out = B->compileFull(F, Qaoa);
      expectStructurallyValid(Out.Metrics, F, Kind);
      EXPECT_FALSE(Out.Cancelled);
      // Weaver is the only backend with a pulse-level program format.
      EXPECT_EQ(Out.Wqasm.empty(), Kind != BackendKind::Weaver);
    }
}

TEST(Differential, ScalableBackendsHandleSatlibSizes) {
  qaoa::QaoaParams Qaoa;
  for (const sat::CnfFormula &F : satlibGrid())
    for (BackendKind Kind :
         {BackendKind::Superconducting, BackendKind::Atomique,
          BackendKind::Weaver}) {
      std::unique_ptr<baselines::Backend> B = baselines::createBackend(Kind);
      expectStructurallyValid(B->compile(F, Qaoa), F, Kind,
                              /*AllowEpsUnderflow=*/true);
    }
}

TEST(Differential, WeaverProgramMatchesFormulaRegister) {
  for (const sat::CnfFormula &F : satlibGrid()) {
    auto R = compileWeaver(F, WeaverOptions());
    ASSERT_TRUE(R.ok()) << R.message();
    EXPECT_EQ(R->Program.NumQubits, F.numVariables());
    EXPECT_FALSE(R->Program.Statements.empty());
  }
}

// --- Weaver byte identity: service vs direct, cache on and off -----------

TEST(Differential, ServiceWqasmByteIdenticalToDirectCacheOnAndOff) {
  std::vector<sat::CnfFormula> Grid = satlibGrid();

  // Direct, cache off: the reference programs.
  baselines::WeaverBackend Direct;
  std::vector<std::string> Reference;
  for (const sat::CnfFormula &F : Grid)
    Reference.push_back(
        Direct.compileFull(F, qaoa::QaoaParams()).Wqasm);

  for (bool UseCache : {false, true}) {
    SCOPED_TRACE(UseCache ? "service cache on" : "service cache off");
    ServiceOptions Opt;
    Opt.NumThreads = 2;
    Opt.UseCache = UseCache;
    CompileService Service(Opt);

    // Two rounds so the cached run serves round 2 from the template tier.
    for (int Round = 0; Round < 2; ++Round) {
      std::vector<CompileService::JobHandle> Handles;
      for (const sat::CnfFormula &F : Grid) {
        CompileRequest R;
        R.Formula = F;
        Handles.push_back(Service.submit(R));
      }
      for (size_t I = 0; I < Handles.size(); ++I) {
        JobOutcome Out;
        ASSERT_TRUE(Handles[I].waitFor(120.0, Out));
        ASSERT_EQ(Out.State, JobState::Completed) << Out.Diagnostic;
        if (Out.Wqasm != Reference[I]) {
          std::string Dir = dumpMismatch(
              "grid" + std::to_string(I) + "_round" + std::to_string(Round),
              Out.Wqasm, Reference[I]);
          FAIL() << "service output differs from direct compile for grid "
                 << I << " round " << Round << "; programs dumped to "
                 << Dir;
        }
      }
    }
    if (UseCache) {
      // Round 2 must have come from the cache, proving the byte identity
      // above covered the template-instantiation path.
      EXPECT_GE(Service.stats().ProgramTierHits,
                static_cast<uint64_t>(Grid.size()));
    } else {
      EXPECT_EQ(Service.cache(), nullptr);
    }
  }
}

TEST(Differential, BatchCompilerMatchesServiceMetrics) {
  std::vector<sat::CnfFormula> Grid = satlibGrid();
  baselines::WeaverBackend Backend;
  std::vector<baselines::BaselineResult> Batch =
      BatchCompiler(Backend).compileAll(Grid);

  ServiceOptions Opt;
  Opt.NumThreads = 2;
  CompileService Service(Opt);
  std::vector<CompileService::JobHandle> Handles;
  for (const sat::CnfFormula &F : Grid) {
    CompileRequest R;
    R.Formula = F;
    Handles.push_back(Service.submit(R));
  }
  for (size_t I = 0; I < Grid.size(); ++I) {
    JobOutcome Out;
    ASSERT_TRUE(Handles[I].waitFor(120.0, Out));
    ASSERT_EQ(Out.State, JobState::Completed);
    EXPECT_EQ(Out.Metrics.Pulses, Batch[I].Pulses) << I;
    EXPECT_EQ(Out.Metrics.TwoQubitGates, Batch[I].TwoQubitGates) << I;
    EXPECT_EQ(Out.Metrics.ThreeQubitGates, Batch[I].ThreeQubitGates) << I;
    EXPECT_EQ(Out.Metrics.ExecutionSeconds, Batch[I].ExecutionSeconds) << I;
    EXPECT_EQ(Out.Metrics.Eps, Batch[I].Eps) << I;
    EXPECT_EQ(Out.Metrics.Colors, Batch[I].Colors) << I;
  }
}

// --- OpenQASM 2 ingest differential --------------------------------------

TEST(Differential, Oq2IngestedCircuitCompilesIdenticallyOnEveryBackend) {
  // The arbitrary-circuit front door must be invisible to the compilers:
  // a QAOA instance that detours through OpenQASM 2 text (build ->
  // export -> parse -> lower -> structure recovery) has to compile to
  // the same artefact as the programmatically built formula, on every
  // BackendKind, byte-identically where a program is emitted.
  for (const sat::CnfFormula &F : smallGrid()) {
    for (bool Compressed : {false, true}) {
      SCOPED_TRACE(std::string(Compressed ? "compressed" : "ladder") +
                   ", " + std::to_string(F.numVariables()) + " vars");
      qaoa::QaoaParams Qaoa;
      Qaoa.Layers = 2;
      Qaoa.UseCompressedClauses = Compressed;
      circuit::Circuit Built = qaoa::buildQaoaCircuit(F, Qaoa);
      Expected<circuit::Circuit> Ingested =
          oq2::parseOq2(oq2::printOpenQasm2(Built));
      ASSERT_TRUE(Ingested.ok()) << Ingested.message();
      Expected<oq2::RecoveredQaoa> R = oq2::recoverQaoa(*Ingested);
      ASSERT_TRUE(R.ok()) << R.message();
      for (BackendKind Kind : baselines::AllBackendKinds) {
        SCOPED_TRACE(baselines::backendKindName(Kind));
        std::unique_ptr<baselines::Backend> B =
            baselines::createBackend(Kind);
        baselines::CompileOutput Direct = B->compileFull(F, Qaoa);
        baselines::CompileOutput ViaQasm =
            B->compileFull(R->Formula, R->Params);
        EXPECT_EQ(Direct.Metrics.Pulses, ViaQasm.Metrics.Pulses);
        EXPECT_EQ(Direct.Metrics.TwoQubitGates,
                  ViaQasm.Metrics.TwoQubitGates);
        EXPECT_EQ(Direct.Metrics.ThreeQubitGates,
                  ViaQasm.Metrics.ThreeQubitGates);
        EXPECT_EQ(Direct.Metrics.SwapGates, ViaQasm.Metrics.SwapGates);
        EXPECT_EQ(Direct.Metrics.ExecutionSeconds,
                  ViaQasm.Metrics.ExecutionSeconds);
        EXPECT_EQ(Direct.Metrics.Eps, ViaQasm.Metrics.Eps);
        EXPECT_EQ(Direct.Metrics.Colors, ViaQasm.Metrics.Colors);
        if (Direct.Wqasm != ViaQasm.Wqasm) {
          std::string Dir =
              dumpMismatch("oq2_" + std::string(
                               baselines::backendKindName(Kind)),
                           ViaQasm.Wqasm, Direct.Wqasm);
          FAIL() << "oq2-ingested program differs; dumped to " << Dir;
        }
      }
    }
  }
}
