//===- tests/backend_test.cpp - Backend interface + BatchCompiler ---------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/Backend.h"
#include "core/BatchCompiler.h"
#include "sat/Generator.h"

#include <gtest/gtest.h>

#include <set>

using namespace weaver;
using namespace weaver::baselines;
using sat::Clause;
using sat::CnfFormula;

namespace {

CnfFormula paperExample() {
  return CnfFormula(6, {Clause{-1, -2, -3}, Clause{4, -5, 6},
                        Clause{3, 5, -6}});
}

// --- Factory ------------------------------------------------------------

TEST(Backend, FactoryCoversEveryKindWithUniqueNames) {
  std::set<std::string> Names;
  for (BackendKind Kind : AllBackendKinds) {
    std::unique_ptr<Backend> B = createBackend(Kind);
    ASSERT_NE(B, nullptr);
    EXPECT_EQ(B->name(), backendKindName(Kind));
    Names.insert(B->name());
  }
  EXPECT_EQ(Names.size(), std::size(AllBackendKinds));
}

TEST(Backend, FactoryByName) {
  auto B = createBackend("weaver");
  ASSERT_TRUE(B.ok()) << B.message();
  EXPECT_EQ((*B)->name(), "weaver");
  EXPECT_FALSE(createBackend("qiskit").ok());
}

// --- Retargeting one formula through every backend ----------------------

TEST(Backend, AllFiveBackendsCompileThePaperExample) {
  CnfFormula F = paperExample();
  qaoa::QaoaParams Qaoa;
  for (BackendKind Kind : AllBackendKinds) {
    std::unique_ptr<Backend> B = createBackend(Kind);
    BaselineResult R = B->compile(F, Qaoa);
    EXPECT_EQ(R.Compiler, B->name());
    EXPECT_TRUE(R.usable()) << B->name();
    EXPECT_GT(R.Pulses, 0u) << B->name();
    EXPECT_GE(R.CompileSeconds, 0.0) << B->name();
  }
}

TEST(Backend, WeaverBackendExposesFpqaMetrics) {
  BaselineResult R = WeaverBackend().compile(paperExample(), {});
  EXPECT_EQ(R.Colors, 2);            // Fig. 5 running example
  EXPECT_EQ(R.ThreeQubitGates, 6u);  // 3 clauses x 2 CCZ
  EXPECT_GT(R.Eps, 0.0);
  EXPECT_GT(R.ExecutionSeconds, 0.0);
}

TEST(Backend, WeaverBackendHonoursPerCallQaoaParams) {
  qaoa::QaoaParams OneLayer, TwoLayers;
  TwoLayers.Layers = 2;
  WeaverBackend B;
  BaselineResult R1 = B.compile(paperExample(), OneLayer);
  BaselineResult R2 = B.compile(paperExample(), TwoLayers);
  EXPECT_GT(R2.Pulses, R1.Pulses);
}

TEST(Backend, WeaverBackendReportsWideClausesUnsupported) {
  CnfFormula F(4, {Clause{1, 2, 3, 4}});
  BaselineResult R = WeaverBackend().compile(F, {});
  EXPECT_TRUE(R.Unsupported);
  EXPECT_FALSE(R.usable());
}

// --- BatchCompiler ------------------------------------------------------

std::vector<CnfFormula> smallBatch(size_t N) {
  std::vector<CnfFormula> Batch;
  for (size_t I = 0; I < N; ++I)
    Batch.push_back(
        sat::RandomSatGenerator(100 + I).generate(6 + I % 4, 12 + 2 * I));
  return Batch;
}

TEST(BatchCompiler, EmptyBatch) {
  WeaverBackend B;
  EXPECT_TRUE(core::BatchCompiler(B).compileAll({}).empty());
}

TEST(BatchCompiler, EffectiveThreadsNeverExceedBatchOrDropBelowOne) {
  WeaverBackend B;
  core::BatchOptions Opt;
  Opt.NumThreads = 8;
  core::BatchCompiler C(B, Opt);
  EXPECT_EQ(C.effectiveThreads(3), 3);
  EXPECT_EQ(C.effectiveThreads(100), 8);
  EXPECT_GE(core::BatchCompiler(B).effectiveThreads(1), 1);
}

TEST(BatchCompiler, ResultsMatchSequentialCompilationInOrder) {
  std::vector<CnfFormula> Batch = smallBatch(8);
  WeaverBackend B;

  core::BatchOptions Parallel;
  Parallel.NumThreads = 4;
  std::vector<BaselineResult> Threaded =
      core::BatchCompiler(B, Parallel).compileAll(Batch);

  ASSERT_EQ(Threaded.size(), Batch.size());
  for (size_t I = 0; I < Batch.size(); ++I) {
    BaselineResult Direct = B.compile(Batch[I], {});
    // Deterministic metrics agree element-wise (wall-clock times differ).
    EXPECT_EQ(Threaded[I].Pulses, Direct.Pulses) << I;
    EXPECT_EQ(Threaded[I].Colors, Direct.Colors) << I;
    EXPECT_EQ(Threaded[I].TwoQubitGates, Direct.TwoQubitGates) << I;
    EXPECT_EQ(Threaded[I].ThreeQubitGates, Direct.ThreeQubitGates) << I;
    EXPECT_DOUBLE_EQ(Threaded[I].Eps, Direct.Eps) << I;
    EXPECT_DOUBLE_EQ(Threaded[I].ExecutionSeconds,
                     Direct.ExecutionSeconds)
        << I;
  }
}

TEST(BatchCompiler, ThreadCountDoesNotChangeResults) {
  std::vector<CnfFormula> Batch = smallBatch(6);
  WeaverBackend B;
  core::BatchOptions One, Many;
  One.NumThreads = 1;
  Many.NumThreads = 3;
  std::vector<BaselineResult> Sequential =
      core::BatchCompiler(B, One).compileAll(Batch);
  std::vector<BaselineResult> Threaded =
      core::BatchCompiler(B, Many).compileAll(Batch);
  ASSERT_EQ(Sequential.size(), Threaded.size());
  for (size_t I = 0; I < Batch.size(); ++I) {
    EXPECT_EQ(Sequential[I].Pulses, Threaded[I].Pulses) << I;
    EXPECT_DOUBLE_EQ(Sequential[I].Eps, Threaded[I].Eps) << I;
  }
}

TEST(BatchCompiler, WorksWithBaselineBackends) {
  std::vector<CnfFormula> Batch = smallBatch(3);
  AtomiqueBackend B;
  core::BatchOptions Opt;
  Opt.NumThreads = 2;
  std::vector<BaselineResult> Results =
      core::BatchCompiler(B, Opt).compileAll(Batch);
  ASSERT_EQ(Results.size(), Batch.size());
  for (const BaselineResult &R : Results) {
    EXPECT_EQ(R.Compiler, "atomique");
    EXPECT_TRUE(R.usable());
    EXPECT_GT(R.Pulses, 0u);
  }
}

} // namespace
