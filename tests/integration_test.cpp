//===- tests/integration_test.cpp - cross-module integration tests --------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end flows across modules: SATLIB-style instances through every
/// compiler, wQASM serialisation through the parser and checker, and the
/// qualitative relationships the paper's evaluation rests on.
///
//===----------------------------------------------------------------------===//

#include "baselines/Atomique.h"
#include "baselines/Dpqa.h"
#include "baselines/Superconducting.h"
#include "core/WeaverCompiler.h"
#include "qasm/Parser.h"
#include "qasm/Printer.h"
#include "sat/Dimacs.h"
#include "sat/Generator.h"

#include <gtest/gtest.h>

using namespace weaver;
using sat::CnfFormula;

TEST(Integration, DimacsToWqasmPipeline) {
  // DIMACS text -> formula -> Weaver -> wQASM text -> parse -> check.
  const char *Dimacs = "p cnf 6 3\n-1 -2 -3 0\n4 -5 6 0\n3 5 -6 0\n";
  auto F = sat::parseDimacs(Dimacs);
  ASSERT_TRUE(F.ok()) << F.message();
  core::WeaverOptions Opt;
  auto R = core::compileWeaver(*F, Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  std::string Wqasm = qasm::printWqasm(R->Program);
  EXPECT_NE(Wqasm.find("@slm"), std::string::npos);
  EXPECT_NE(Wqasm.find("@rydberg"), std::string::npos);
  EXPECT_NE(Wqasm.find("@shuttle"), std::string::npos);
  auto Back = qasm::parseWqasm(Wqasm);
  ASSERT_TRUE(Back.ok()) << Back.message();
  core::CheckReport Report = core::checkWqasm(*Back, Opt.Hw);
  EXPECT_TRUE(Report.StructuralOk) << Report.Diagnostic;
}

TEST(Integration, Uf20InstanceAllCompilersProduceMetrics) {
  CnfFormula F = sat::satlibInstance(20, 1);
  core::WeaverOptions Opt;
  auto W = core::compileWeaver(F, Opt);
  ASSERT_TRUE(W.ok()) << W.message();
  baselines::BaselineResult SC = baselines::compileSuperconducting(F);
  baselines::BaselineResult AT = baselines::compileAtomique(F);
  baselines::BaselineResult DP = baselines::compileDpqa(F);
  ASSERT_TRUE(SC.usable());
  ASSERT_TRUE(AT.usable());
  ASSERT_TRUE(DP.usable());
  EXPECT_GT(W->Stats.Eps, 0);
  EXPECT_GT(AT.Eps, 0);
  EXPECT_GT(DP.Eps, 0);
  EXPECT_GT(SC.Eps, 0);
}

TEST(Integration, WeaverBeatsAtomiqueOnEpsAndPulses) {
  // The paper's RQ3 takeaway at 20 variables: Weaver improves EPS over
  // Atomique; Fig. 10b: fewer pulses.
  CnfFormula F = sat::satlibInstance(20, 2);
  core::WeaverOptions Opt;
  auto W = core::compileWeaver(F, Opt);
  ASSERT_TRUE(W.ok()) << W.message();
  baselines::BaselineResult AT = baselines::compileAtomique(F);
  EXPECT_GT(W->Stats.Eps, AT.Eps);
  EXPECT_LT(W->Stats.totalPulses(), AT.Pulses);
}

TEST(Integration, WeaverBeatsSuperconductingOnEps) {
  CnfFormula F = sat::satlibInstance(20, 3);
  core::WeaverOptions Opt;
  auto W = core::compileWeaver(F, Opt);
  ASSERT_TRUE(W.ok()) << W.message();
  baselines::BaselineResult SC = baselines::compileSuperconducting(F);
  EXPECT_GT(W->Stats.Eps, SC.Eps);
}

TEST(Integration, SuperconductingExecutesFasterButLessFaithfully) {
  // §8.3: superconducting has faster gate times, hence shorter execution;
  // §8.4: its fidelity is far worse.
  CnfFormula F = sat::satlibInstance(20, 4);
  core::WeaverOptions Opt;
  auto W = core::compileWeaver(F, Opt);
  ASSERT_TRUE(W.ok()) << W.message();
  baselines::BaselineResult SC = baselines::compileSuperconducting(F);
  EXPECT_LT(SC.ExecutionSeconds, W->Stats.Duration);
  EXPECT_LT(SC.Eps, W->Stats.Eps / 100);
}

TEST(Integration, WeaverCompilesFasterThanDpqa) {
  CnfFormula F = sat::satlibInstance(20, 5);
  core::WeaverOptions Opt;
  auto W = core::compileWeaver(F, Opt);
  ASSERT_TRUE(W.ok()) << W.message();
  baselines::BaselineResult DP = baselines::compileDpqa(F);
  ASSERT_TRUE(DP.usable());
  EXPECT_LT(W->CompileSeconds, DP.CompileSeconds);
}

TEST(Integration, WeaverScalesToLargestPaperSize) {
  CnfFormula F = sat::satlibInstance(250, 1);
  core::WeaverOptions Opt;
  auto R = core::compileWeaver(F, Opt);
  ASSERT_TRUE(R.ok()) << R.message();
  core::CheckReport Report = core::checkWqasm(R->Program, Opt.Hw);
  EXPECT_TRUE(Report.StructuralOk) << Report.Diagnostic;
  EXPECT_LT(R->CompileSeconds, 30.0);
}

TEST(Integration, CompileTimeGrowsSubCubically) {
  // §5.5: wOptimizer is O(N^2); doubling N should grow compile time by
  // far less than the routing-style cubic blow-up. Generous bound to stay
  // robust on shared machines.
  core::WeaverOptions Opt;
  auto T = [&](int N) {
    auto R = core::compileWeaver(sat::satlibInstance(N, 1), Opt);
    EXPECT_TRUE(R.ok());
    return R->CompileSeconds;
  };
  double T50 = T(50);
  double T200 = T(200);
  EXPECT_LT(T200, 64 * std::max(T50, 1e-4))
      << "compile time grew worse than O(N^3)";
}

TEST(Integration, CczFidelitySweepHasCrossover) {
  // Fig. 10c: as CCZ fidelity rises, Weaver's EPS overtakes Atomique's.
  CnfFormula F = sat::satlibInstance(20, 1);
  baselines::BaselineResult AT = baselines::compileAtomique(F);
  double LowCcz, HighCcz;
  {
    core::WeaverOptions Opt;
    Opt.Hw.CczFidelity = 0.95;
    Opt.Compression = core::WeaverOptions::CompressionMode::On;
    auto R = core::compileWeaver(F, Opt);
    ASSERT_TRUE(R.ok());
    LowCcz = R->Stats.Eps;
  }
  {
    core::WeaverOptions Opt;
    Opt.Hw.CczFidelity = 0.999;
    Opt.Compression = core::WeaverOptions::CompressionMode::On;
    auto R = core::compileWeaver(F, Opt);
    ASSERT_TRUE(R.ok());
    HighCcz = R->Stats.Eps;
  }
  EXPECT_LT(LowCcz, AT.Eps);
  EXPECT_GT(HighCcz, AT.Eps);
}

TEST(Integration, AblationDSaturBeatsFirstFitOnColors) {
  // Design-choice ablation (DESIGN.md A2): DSatur should not use more
  // colours than first-fit on the benchmark suite (fewer colours = fewer
  // sequential zones).
  int DSaturWins = 0, Ties = 0, Losses = 0;
  for (int I = 1; I <= 10; ++I) {
    CnfFormula F = sat::satlibInstance(20, I);
    int A = core::colorClausesDSatur(F).numColors();
    int B = core::colorClausesFirstFit(F).numColors();
    DSaturWins += A < B;
    Ties += A == B;
    Losses += A > B;
  }
  EXPECT_GE(DSaturWins + Ties, Losses) << "DSatur regressed vs first-fit";
}
