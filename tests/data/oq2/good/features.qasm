// Exercises the breadth of the supported grammar: user gate definitions
// with parameter arithmetic, qelib gates, multiple registers, broadcast,
// barriers, and measurement.
OPENQASM 2.0;
include "qelib1.inc";

qreg a[2];
qreg b[2];
creg m[2];

gate entangle(theta) x, y {
  h x;
  cx x, y;
  rz(theta / 2) y;
  cx x, y;
}

gate layer(t) x, y {
  entangle(t * 2) x, y;
  barrier x, y;
  u2(0, pi) x;
}

h a;
x b[0];
entangle(pi / 4) a[0], b[0];
layer(-0.25) a[1], b[1];
cu1(pi / 8) a[0], a[1];
sx b[1];
swap a[0], b[0];
barrier a, b;
measure a -> m;
