OPENQASM 2.0;
qreg q[1];
gate loop a { loop a; }
loop q[0];
