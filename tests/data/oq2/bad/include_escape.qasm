OPENQASM 2.0;
include "/etc/passwd";
