OPENQASM 2.0;
qreg q[1000000];
h q[0];
