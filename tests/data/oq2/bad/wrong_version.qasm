OPENQASM 3.0;
qreg q[1];
