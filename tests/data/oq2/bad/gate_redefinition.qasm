OPENQASM 2.0;
qreg q[1];
gate redo(t) a { rz(t) a; }
gate redo a { x a; }
