OPENQASM 2.0;
qreg q[2];
h q[5];
