OPENQASM 2.0;
qreg q[1];
creg c[1];
if (c == 1) x q[0];
