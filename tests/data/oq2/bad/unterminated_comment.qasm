OPENQASM 2.0;
qreg q[1];
/* never closed
h q[0];
