OPENQASM 2.0;
qreg q[2];
mystery q[0], q[1];
