OPENQASM 2.0;
qreg q[1];
gate g0 a { x a; }
gate g1 a { g0 a; g0 a; }
gate g2 a { g1 a; g1 a; }
gate g3 a { g2 a; g2 a; }
gate g4 a { g3 a; g3 a; }
gate g5 a { g4 a; g4 a; }
gate g6 a { g5 a; g5 a; }
gate g7 a { g6 a; g6 a; }
gate g8 a { g7 a; g7 a; }
gate g9 a { g8 a; g8 a; }
gate g10 a { g9 a; g9 a; }
gate g11 a { g10 a; g10 a; }
gate g12 a { g11 a; g11 a; }
gate g13 a { g12 a; g12 a; }
gate g14 a { g13 a; g13 a; }
gate g15 a { g14 a; g14 a; }
gate g16 a { g15 a; g15 a; }
gate g17 a { g16 a; g16 a; }
gate g18 a { g17 a; g17 a; }
gate g19 a { g18 a; g18 a; }
gate g20 a { g19 a; g19 a; }
gate g21 a { g20 a; g20 a; }
gate g22 a { g21 a; g21 a; }
gate g23 a { g22 a; g22 a; }
gate g24 a { g23 a; g23 a; }
gate g25 a { g24 a; g24 a; }
gate g26 a { g25 a; g25 a; }
gate g27 a { g26 a; g26 a; }
gate g28 a { g27 a; g27 a; }
gate g29 a { g28 a; g28 a; }
gate g30 a { g29 a; g29 a; }
gate g31 a { g30 a; g30 a; }
gate g32 a { g31 a; g31 a; }
gate g33 a { g32 a; g32 a; }
gate g34 a { g33 a; g33 a; }
gate g35 a { g34 a; g34 a; }
gate g36 a { g35 a; g35 a; }
gate g37 a { g36 a; g36 a; }
gate g38 a { g37 a; g37 a; }
gate g39 a { g38 a; g38 a; }
g39 q[0];
