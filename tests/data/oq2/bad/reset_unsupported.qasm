OPENQASM 2.0;
qreg q[1];
reset q[0];
