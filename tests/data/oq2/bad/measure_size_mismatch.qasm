OPENQASM 2.0;
qreg q[2];
creg c[3];
measure q -> c;
