OPENQASM 2.0;
qreg q[1];
rz(1/0) q[0];
