OPENQASM 2.0;
qreg q[1];
rz(1e+) q[0];
