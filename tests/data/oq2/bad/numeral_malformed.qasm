OPENQASM 2.0;
qreg q[1];
rz(1.2.3) q[0];
