//===- tests/qasm_test.cpp - QASM front end unit + property tests ---------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "qasm/Lexer.h"
#include "qasm/Parser.h"
#include "qasm/Printer.h"
#include "sim/StateVector.h"

#include <gtest/gtest.h>

using namespace weaver;
using namespace weaver::qasm;
using circuit::Circuit;
using circuit::GateKind;

// --- Lexer ---------------------------------------------------------------

TEST(Lexer, TokenisesBasicProgram) {
  std::string Err;
  auto Tokens = tokenize("h q[0];", Err);
  ASSERT_TRUE(Err.empty()) << Err;
  ASSERT_EQ(Tokens.size(), 7u); // h q [ 0 ] ; EOF
  EXPECT_TRUE(Tokens[0].isIdent("h"));
  EXPECT_TRUE(Tokens[2].isPunct('['));
  EXPECT_EQ(Tokens[3].NumberValue, 0.0);
}

TEST(Lexer, SkipsComments) {
  std::string Err;
  auto Tokens = tokenize("// line\nh q; /* block\nstill */ x q;", Err);
  ASSERT_TRUE(Err.empty());
  EXPECT_TRUE(Tokens[0].isIdent("h"));
}

TEST(Lexer, LexesAnnotations) {
  std::string Err;
  auto Tokens = tokenize("@rydberg", Err);
  ASSERT_TRUE(Err.empty());
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Annotation);
  EXPECT_EQ(Tokens[0].Text, "rydberg");
}

TEST(Lexer, LexesFloatsAndExponents) {
  std::string Err;
  auto Tokens = tokenize("1.5 2e-3 .25", Err);
  ASSERT_TRUE(Err.empty());
  EXPECT_DOUBLE_EQ(Tokens[0].NumberValue, 1.5);
  EXPECT_DOUBLE_EQ(Tokens[1].NumberValue, 2e-3);
  EXPECT_DOUBLE_EQ(Tokens[2].NumberValue, 0.25);
}

TEST(Lexer, RejectsMalformedNumerals) {
  // The scanner accepts number-ish character runs that strtod would
  // silently truncate to a prefix; they must be lexer errors instead.
  for (const char *Bad : {"1.2.3", "1e", "1e+", "2e--3", "1.5e1e1",
                          "3..14", "9e999999999999999999"}) {
    std::string Err;
    tokenize(std::string("rz(") + Bad + ") q;", Err);
    EXPECT_FALSE(Err.empty()) << "accepted hostile numeral: " << Bad;
    EXPECT_NE(Err.find("line 1"), std::string::npos) << Err;
  }
}

TEST(Lexer, RejectsOverflowingNumerals) {
  std::string Err;
  tokenize("1e400", Err); // ERANGE: infinity under strtod
  EXPECT_FALSE(Err.empty());
  Err.clear();
  // Denormal underflow parses to a finite (tiny or zero) value; that is
  // representable and must stay accepted.
  auto Tokens = tokenize("1e-400", Err);
  EXPECT_TRUE(Err.empty()) << Err;
  ASSERT_FALSE(Tokens.empty());
  EXPECT_GE(Tokens[0].NumberValue, 0.0);
}

TEST(Lexer, ReportsUnterminatedString) {
  std::string Err;
  tokenize("include \"abc", Err);
  EXPECT_FALSE(Err.empty());
}

TEST(Lexer, ReportsBareAt) {
  std::string Err;
  tokenize("@ 1", Err);
  EXPECT_FALSE(Err.empty());
}

TEST(Lexer, TracksLineNumbers) {
  std::string Err;
  auto Tokens = tokenize("h q;\nx q;", Err);
  ASSERT_TRUE(Err.empty());
  EXPECT_EQ(Tokens[0].Line, 1);
  EXPECT_EQ(Tokens[3].Line, 2);
}

// --- Parser ----------------------------------------------------------------

TEST(Parser, ParsesQasm3Program) {
  auto C = parseQasmCircuit("OPENQASM 3.0;\n"
                            "qubit[2] q;\n"
                            "bit[2] c;\n"
                            "h q[0];\n"
                            "cz q[0], q[1];\n"
                            "measure q[0];\n");
  ASSERT_TRUE(C.ok()) << C.message();
  EXPECT_EQ(C->numQubits(), 2);
  EXPECT_EQ(C->size(), 3u);
  EXPECT_EQ(C->gate(1).kind(), GateKind::CZ);
}

TEST(Parser, ParsesQasm2Program) {
  auto C = parseQasmCircuit("OPENQASM 2.0;\n"
                            "include \"qelib1.inc\";\n"
                            "qreg q[3];\n"
                            "creg c[3];\n"
                            "ccx q[0], q[1], q[2];\n"
                            "measure q[1] -> c[1];\n");
  ASSERT_TRUE(C.ok()) << C.message();
  EXPECT_EQ(C->gate(0).kind(), GateKind::CCX);
  EXPECT_EQ(C->gate(1).kind(), GateKind::Measure);
}

TEST(Parser, EvaluatesParameterExpressions) {
  auto C = parseQasmCircuit("qubit[1] q;\nrz(pi/2) q[0];\n"
                            "rx(-pi) q[0];\nu3(1+2*3, (2-1)/4, -0.5) q[0];\n");
  ASSERT_TRUE(C.ok()) << C.message();
  EXPECT_NEAR(C->gate(0).param(0), 1.5707963267948966, 1e-12);
  EXPECT_NEAR(C->gate(1).param(0), -3.14159265358979, 1e-10);
  EXPECT_NEAR(C->gate(2).param(0), 7.0, 1e-12);
  EXPECT_NEAR(C->gate(2).param(1), 0.25, 1e-12);
}

TEST(Parser, MultipleRegistersGetFlatOffsets) {
  auto C = parseQasmCircuit("qreg a[2];\nqreg b[2];\ncz a[1], b[0];\n");
  ASSERT_TRUE(C.ok()) << C.message();
  EXPECT_EQ(C->gate(0).qubit(0), 1);
  EXPECT_EQ(C->gate(0).qubit(1), 2);
}

TEST(Parser, RejectsUnknownGate) {
  EXPECT_FALSE(parseQasmCircuit("qubit[1] q;\nfrob q[0];\n").ok());
}

TEST(Parser, RejectsWrongArity) {
  EXPECT_FALSE(parseQasmCircuit("qubit[2] q;\ncz q[0];\n").ok());
}

TEST(Parser, RejectsWrongParamCount) {
  EXPECT_FALSE(parseQasmCircuit("qubit[1] q;\nrz q[0];\n").ok());
  EXPECT_FALSE(parseQasmCircuit("qubit[1] q;\nh(0.5) q[0];\n").ok());
}

TEST(Parser, RejectsOutOfRangeIndex) {
  EXPECT_FALSE(parseQasmCircuit("qubit[2] q;\nh q[2];\n").ok());
}

TEST(Parser, RejectsUnknownRegister) {
  EXPECT_FALSE(parseQasmCircuit("qubit[2] q;\nh r[0];\n").ok());
}

TEST(Parser, RejectsDuplicateOperands) {
  EXPECT_FALSE(parseQasmCircuit("qubit[2] q;\ncz q[0], q[0];\n").ok());
}

TEST(Parser, RejectsRedeclaration) {
  EXPECT_FALSE(parseQasmCircuit("qubit[2] q;\nqubit[2] q;\n").ok());
}

TEST(Parser, ErrorsCarryLineNumbers) {
  auto C = parseQasmCircuit("qubit[1] q;\nh q[0];\nbogus q[0];\n");
  ASSERT_FALSE(C.ok());
  EXPECT_NE(C.message().find("line 3"), std::string::npos) << C.message();
}

TEST(Parser, BarrierVariants) {
  auto C = parseQasmCircuit("qubit[2] q;\nbarrier;\nbarrier q[0], q[1];\n");
  ASSERT_TRUE(C.ok()) << C.message();
  EXPECT_EQ(C->count(GateKind::Barrier), 2u);
}

// --- wQASM annotations -------------------------------------------------------

TEST(Wqasm, ParsesAllAnnotationForms) {
  auto P = parseWqasm("qubit[2] q;\n"
                      "@slm [(0, 0), (5, 0)]\n"
                      "@aod [1, 3] [2]\n"
                      "@bind q[0] slm 0\n"
                      "@bind q[1] aod 0 0\n"
                      "@transfer 1 (1, 0)\n"
                      "@shuttle row 0 2.5\n"
                      "@shuttle column 1 -1.5\n"
                      "@raman global 0 -1.5707963 3.14159265\n"
                      "@raman local q[0] 3.14159265 0 0\n"
                      "@rydberg\n"
                      "x q[0];\n");
  ASSERT_TRUE(P.ok()) << P.message();
  ASSERT_EQ(P->Statements.size(), 1u);
  const auto &Anns = P->Statements[0].Annotations;
  ASSERT_EQ(Anns.size(), 10u);
  EXPECT_EQ(Anns[0].Kind, AnnotationKind::Slm);
  EXPECT_EQ(Anns[0].TrapPositions.size(), 2u);
  EXPECT_EQ(Anns[1].AodXs.size(), 2u);
  EXPECT_TRUE(Anns[2].BindToSlm);
  EXPECT_FALSE(Anns[3].BindToSlm);
  EXPECT_EQ(Anns[4].SlmIndex, 1);
  EXPECT_TRUE(Anns[5].ShuttleRow);
  EXPECT_FALSE(Anns[6].ShuttleRow);
  EXPECT_DOUBLE_EQ(Anns[6].Offset, -1.5);
  EXPECT_EQ(Anns[7].Kind, AnnotationKind::RamanGlobal);
  EXPECT_EQ(Anns[8].Kind, AnnotationKind::RamanLocal);
  EXPECT_EQ(Anns[8].Qubit, 0);
  EXPECT_EQ(Anns[9].Kind, AnnotationKind::Rydberg);
}

TEST(Wqasm, ParsesParallelShuttleForms) {
  auto P = parseWqasm("qubit[1] q;\n"
                      "@shuttle columns [0, 2, 3] [5, -1.5, 2]\n"
                      "@shuttle rows [1] [-4]\n"
                      "x q[0];\n");
  ASSERT_TRUE(P.ok()) << P.message();
  const auto &Anns = P->Statements[0].Annotations;
  ASSERT_EQ(Anns.size(), 2u);
  EXPECT_EQ(Anns[0].Kind, AnnotationKind::ShuttleParallel);
  EXPECT_FALSE(Anns[0].ShuttleRow);
  EXPECT_EQ(Anns[0].ShuttleIndices, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(Anns[0].ShuttleOffsets, (std::vector<double>{5, -1.5, 2}));
  EXPECT_EQ(Anns[1].Kind, AnnotationKind::ShuttleParallel);
  EXPECT_TRUE(Anns[1].ShuttleRow);
  EXPECT_EQ(Anns[1].ShuttleIndices, (std::vector<int>{1}));
  EXPECT_EQ(Anns[1].ShuttleOffsets, (std::vector<double>{-4}));
}

TEST(Wqasm, RejectsParallelShuttleArityMismatch) {
  EXPECT_FALSE(
      parseWqasm("qubit[1] q;\n@shuttle columns [0, 1] [5]\nx q[0];\n")
          .ok());
}

TEST(Wqasm, TrailingAnnotationsPreserved) {
  auto P = parseWqasm("qubit[1] q;\nh q[0];\n@shuttle row 0 1\n");
  ASSERT_TRUE(P.ok()) << P.message();
  EXPECT_EQ(P->TrailingAnnotations.size(), 1u);
}

TEST(Wqasm, RejectsUnknownAnnotation) {
  EXPECT_FALSE(parseWqasm("qubit[1] q;\n@teleport\nh q[0];\n").ok());
}

TEST(Wqasm, RejectsMalformedBind) {
  EXPECT_FALSE(parseWqasm("qubit[1] q;\n@bind q[0] nowhere 1\nh q[0];\n").ok());
}

TEST(Wqasm, AnnotationStrRoundTrips) {
  const char *Lines[] = {
      "@slm [(0, 0), (5.5, -2)]", "@aod [1, 3] [2, 4]",
      "@bind q[3] slm 2",         "@bind q[4] aod 1 0",
      "@transfer 2 (0, 1)",       "@shuttle row 0 7.5",
      "@shuttle column 1 -2.5",   "@raman global 0 1.5 0",
      "@raman local q[3] 0 0 2",  "@rydberg",
      "@shuttle columns [0, 2, 5] [5, -1.5, 2]",
      "@shuttle rows [0, 1] [2, 2]"};
  for (const char *Line : Lines) {
    std::string Source = std::string("qubit[9] q;\n") + Line + "\nh q[0];\n";
    auto P = parseWqasm(Source);
    ASSERT_TRUE(P.ok()) << Line << ": " << P.message();
    ASSERT_EQ(P->Statements[0].Annotations.size(), 1u) << Line;
    EXPECT_EQ(P->Statements[0].Annotations[0].str(), Line);
  }
}

// --- Printer round trips ------------------------------------------------------

TEST(Printer, EmitsParsableOpenQasm) {
  Circuit C(3);
  C.h(0).u3(0.1, -0.2, 0.3, 1).cz(0, 2).ccz(0, 1, 2).rz(0.5, 1).barrier();
  C.measureAll();
  std::string Text = printOpenQasm(C);
  auto Back = parseQasmCircuit(Text);
  ASSERT_TRUE(Back.ok()) << Back.message();
  EXPECT_EQ(Back->size(), C.size());
  EXPECT_EQ(printOpenQasm(*Back), Text) << "print->parse->print not stable";
}

TEST(Printer, PreservesUnitarySemantics) {
  Circuit C(3);
  C.h(0).t(1).cx(1, 2).rzz(0.7, 0, 2).sdg(2).swap(0, 1);
  auto Back = parseQasmCircuit(printOpenQasm(C));
  ASSERT_TRUE(Back.ok()) << Back.message();
  EXPECT_TRUE(sim::circuitsEquivalent(C, *Back));
}

TEST(Printer, WqasmRoundTripStable) {
  WqasmProgram P;
  P.NumQubits = 2;
  circuit::Gate H(GateKind::H, {0});
  GateStatement S{H, {Annotation::ramanLocal(0, 0, -1.5707963267948966,
                                             3.141592653589793)}};
  P.Statements.push_back(S);
  GateStatement S2{circuit::Gate(GateKind::CZ, {0, 1}),
                   {Annotation::shuttle(true, 0, 3.5), Annotation::rydberg()}};
  P.Statements.push_back(S2);
  std::string Text = printWqasm(P);
  auto Back = parseWqasm(Text);
  ASSERT_TRUE(Back.ok()) << Back.message();
  EXPECT_EQ(printWqasm(*Back), Text);
  EXPECT_EQ(Back->numAnnotations(), 3u);
}

TEST(AnnotationView, IteratesInExecutionOrderSkippingEmptyStatements) {
  WqasmProgram P;
  P.NumQubits = 2;
  P.Statements.push_back({circuit::Gate(GateKind::H, {0}), {}});
  P.Statements.push_back(
      {circuit::Gate(GateKind::H, {1}),
       {Annotation::shuttle(true, 0, 1.0), Annotation::rydberg()}});
  P.Statements.push_back({circuit::Gate(GateKind::X, {0}), {}});
  P.Statements.push_back({circuit::Gate(GateKind::X, {1}),
                          {Annotation::ramanGlobal(1, 2, 3)}});
  P.TrailingAnnotations = {Annotation::shuttle(false, 1, -2.0)};

  AnnotationView View(P);
  EXPECT_EQ(View.size(), P.numAnnotations());
  std::vector<const Annotation *> Seen;
  for (const Annotation &A : View)
    Seen.push_back(&A);
  ASSERT_EQ(Seen.size(), 4u);
  // Zero-copy: the iterator yields the program's own annotation objects.
  EXPECT_EQ(Seen[0], &P.Statements[1].Annotations[0]);
  EXPECT_EQ(Seen[1], &P.Statements[1].Annotations[1]);
  EXPECT_EQ(Seen[2], &P.Statements[3].Annotations[0]);
  EXPECT_EQ(Seen[3], &P.TrailingAnnotations[0]);
}

TEST(AnnotationView, EmptyProgramYieldsNothing) {
  WqasmProgram P;
  AnnotationView View(P);
  EXPECT_EQ(View.begin(), View.end());
  EXPECT_EQ(View.size(), 0u);
}
