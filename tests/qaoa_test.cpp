//===- tests/qaoa_test.cpp - QAOA construction unit + property tests ------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "qaoa/Builder.h"
#include "qaoa/IsingPolynomial.h"
#include "qaoa/Optimizer.h"
#include "sat/Evaluator.h"
#include "sat/Generator.h"
#include "sim/StateVector.h"

#include <gtest/gtest.h>

#include <complex>

using namespace weaver;
using namespace weaver::qaoa;
using circuit::Circuit;
using circuit::GateKind;
using sat::Clause;
using sat::CnfFormula;

namespace {

/// Checks that applying only the phase-separation part of the clause
/// fragment imprints phase exp(-i Gamma * unsat(b)) on each basis state b
/// (up to one global phase). This pins the cost-Hamiltonian semantics to
/// the clause-counting objective — the heart of §5's correctness.
void expectPhaseSeparation(const CnfFormula &F, const Circuit &PhaseOnly,
                           double Gamma) {
  int N = F.numVariables();
  ASSERT_LE(N, 10);
  std::complex<double> Anchor(0, 0);
  for (uint64_t Bits = 0; Bits < (uint64_t(1) << N); ++Bits) {
    sim::StateVector SV(N, Bits);
    SV.applyCircuit(PhaseOnly);
    // Diagonal circuit: the basis state maps to itself times a phase.
    std::complex<double> Amp = SV.amplitude(Bits);
    ASSERT_NEAR(std::abs(Amp), 1.0, 1e-9) << "fragment is not diagonal";
    size_t Unsat =
        F.numClauses() - F.countSatisfied(sat::assignmentFromBits(Bits, N));
    std::complex<double> ExpectedRel =
        std::polar(1.0, -Gamma * static_cast<double>(Unsat));
    if (Bits == 0)
      Anchor = Amp / ExpectedRel;
    EXPECT_NEAR(std::abs(Amp / (Anchor * ExpectedRel) - 1.0), 0.0, 1e-8)
        << "wrong phase at basis state " << Bits;
  }
}

Circuit phaseOnlyCircuit(const CnfFormula &F, double Gamma, bool Compressed) {
  Circuit C(F.numVariables());
  for (const Clause &Cl : F.clauses()) {
    if (Compressed && Cl.size() == 3)
      appendClausePhaseCompressed(C, Cl, Gamma);
    else
      appendClausePhaseLadder(C, Cl, Gamma);
  }
  return C;
}

} // namespace

// --- IsingPolynomial ---------------------------------------------------------

TEST(IsingPolynomial, AddAndQueryTerms) {
  IsingPolynomial P;
  P.addTerm({2, 0}, 0.5);
  P.addTerm({0, 2}, 0.25); // same term, unsorted
  EXPECT_DOUBLE_EQ(P.coefficient({0, 2}), 0.75);
  EXPECT_DOUBLE_EQ(P.coefficient({1}), 0.0);
}

TEST(IsingPolynomial, EvaluateSigns) {
  IsingPolynomial P;
  P.addTerm({0}, 1.0);
  EXPECT_DOUBLE_EQ(P.evaluate(0b0), 1.0);  // Z|0> = +1
  EXPECT_DOUBLE_EQ(P.evaluate(0b1), -1.0); // Z|1> = -1
  P.addTerm({0, 1}, 2.0);
  EXPECT_DOUBLE_EQ(P.evaluate(0b11), -1.0 + 2.0);
}

TEST(IsingPolynomial, AllNegativeClauseExpansion) {
  // (!x1 | !x2 | !x3): unsat = x1 x2 x3 =
  // 1/8 (1 - Z1 - Z2 - Z3 + pairs - Z1Z2Z3).
  IsingPolynomial P = IsingPolynomial::clauseUnsat(Clause{-1, -2, -3});
  EXPECT_DOUBLE_EQ(P.coefficient({}), 0.125);
  EXPECT_DOUBLE_EQ(P.coefficient({0}), -0.125);
  EXPECT_DOUBLE_EQ(P.coefficient({0, 1}), 0.125);
  EXPECT_DOUBLE_EQ(P.coefficient({0, 1, 2}), -0.125);
}

TEST(IsingPolynomial, PositiveLiteralFlipsSign) {
  IsingPolynomial P = IsingPolynomial::clauseUnsat(Clause{1, -2, -3});
  EXPECT_DOUBLE_EQ(P.coefficient({0}), 0.125);
  EXPECT_DOUBLE_EQ(P.coefficient({1}), -0.125);
  EXPECT_DOUBLE_EQ(P.coefficient({0, 1, 2}), 0.125);
}

class UnsatPolynomialProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnsatPolynomialProperty, MatchesClauseCounting) {
  CnfFormula F = sat::RandomSatGenerator(GetParam()).generate(7, 20);
  IsingPolynomial P = IsingPolynomial::unsatCount(F);
  for (uint64_t Bits = 0; Bits < (1u << 7); ++Bits) {
    size_t Unsat =
        F.numClauses() - F.countSatisfied(sat::assignmentFromBits(Bits, 7));
    EXPECT_NEAR(P.evaluate(Bits), static_cast<double>(Unsat), 1e-9)
        << "bits " << Bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnsatPolynomialProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- Clause fragments -------------------------------------------------------

TEST(ClauseFragments, LadderImplementsPhase1Lit) {
  CnfFormula F(2, {Clause{1}, Clause{-2}});
  expectPhaseSeparation(F, phaseOnlyCircuit(F, 0.7, false), 0.7);
}

TEST(ClauseFragments, LadderImplementsPhase2Lit) {
  CnfFormula F(3, {Clause{1, -2}, Clause{-2, 3}});
  expectPhaseSeparation(F, phaseOnlyCircuit(F, 0.9, false), 0.9);
}

TEST(ClauseFragments, LadderImplementsPhase3Lit) {
  CnfFormula F(3, {Clause{-1, -2, -3}});
  expectPhaseSeparation(F, phaseOnlyCircuit(F, 0.7, false), 0.7);
}

TEST(ClauseFragments, CompressedImplementsPhase3Lit) {
  CnfFormula F(3, {Clause{-1, -2, -3}});
  expectPhaseSeparation(F, phaseOnlyCircuit(F, 0.7, true), 0.7);
}

class PolaritySweep : public ::testing::TestWithParam<int> {};

TEST_P(PolaritySweep, CompressedMatchesLadderForEveryPolarity) {
  // All eight sign patterns of a 3-literal clause.
  int Mask = GetParam();
  auto Sign = [&](int Bit, int Var) {
    return (Mask >> Bit) & 1 ? Var : -Var;
  };
  Clause Cl{Sign(0, 1), Sign(1, 2), Sign(2, 3)};
  CnfFormula F(3, {Cl});
  double Gamma = 0.6;
  Circuit Ladder = phaseOnlyCircuit(F, Gamma, false);
  Circuit Compressed = phaseOnlyCircuit(F, Gamma, true);
  EXPECT_TRUE(sim::circuitsEquivalent(Ladder, Compressed))
      << "polarity mask " << Mask;
  expectPhaseSeparation(F, Compressed, Gamma);
}

INSTANTIATE_TEST_SUITE_P(AllPolarities, PolaritySweep, ::testing::Range(0, 8));

TEST(ClauseFragments, RandomFormulaPhaseProperty) {
  for (uint64_t Seed : {11u, 22u, 33u}) {
    CnfFormula F = sat::RandomSatGenerator(Seed).generate(6, 12);
    double Gamma = 0.4 + 0.1 * Seed;
    expectPhaseSeparation(F, phaseOnlyCircuit(F, Gamma, false), Gamma);
    expectPhaseSeparation(F, phaseOnlyCircuit(F, Gamma, true), Gamma);
  }
}

TEST(ClauseFragments, CompressedUsesTwoCczAndTwoCz) {
  Circuit C(3);
  appendClausePhaseCompressed(C, Clause{-1, -2, -3}, 0.7);
  EXPECT_EQ(C.count(GateKind::CCZ), 2u);
  EXPECT_EQ(C.count(GateKind::CX), 2u); // the control-pair ladder
}

// --- Full QAOA circuits ------------------------------------------------------

TEST(QaoaBuilder, StructureAndSize) {
  CnfFormula F(4, {Clause{1, 2, 3}, Clause{-2, -3, -4}});
  QaoaParams P;
  P.Layers = 2;
  P.Measure = true;
  Circuit C = buildQaoaCircuit(F, P);
  EXPECT_EQ(C.numQubits(), 4);
  EXPECT_EQ(C.count(GateKind::H), 4u);
  EXPECT_EQ(C.count(GateKind::Measure), 4u);
  // Mixer: 4 RX per layer plus RX inside fragments? Ladder uses none.
  EXPECT_EQ(C.count(GateKind::RX), 8u);
}

TEST(QaoaBuilder, CompressedAndLadderCircuitsEquivalent) {
  CnfFormula F(5, {Clause{1, -2, 3}, Clause{-3, 4, -5}});
  QaoaParams P;
  P.Gamma = 0.8;
  P.Beta = 0.4;
  Circuit Ladder = buildQaoaCircuit(F, P);
  P.UseCompressedClauses = true;
  Circuit Compressed = buildQaoaCircuit(F, P);
  EXPECT_TRUE(sim::circuitsEquivalent(Ladder, Compressed));
}

TEST(QaoaBuilder, QaoaBiasesTowardOptimum) {
  // A tiny satisfiable formula; one QAOA layer should give satisfying
  // assignments more probability mass than the uniform distribution.
  // Seven of the eight sign patterns over three variables: each clause
  // excludes exactly one assignment, so 111 is the unique satisfying
  // assignment (the missing pattern is the one 111 would falsify).
  CnfFormula F(3, {Clause{1, 2, 3}, Clause{-1, 2, 3}, Clause{1, -2, 3},
                   Clause{1, 2, -3}, Clause{-1, -2, 3}, Clause{-1, 2, -3},
                   Clause{1, -2, -3}});
  // The classical outer loop tunes the angles; the optimised state must
  // concentrate far more mass on the unique optimum than the uniform
  // distribution's 1/8.
  OptimizedParams Tuned = optimizeQaoaParams(F);
  EXPECT_GT(Tuned.OptimumMass, 2.0 / 8.0)
      << "QAOA failed to bias toward the satisfying assignment";
  EXPECT_GT(Tuned.ExpectedSatisfied, F.numClauses() * 7.0 / 8.0);
}

TEST(QaoaBuilder, LayersComposeSequentially) {
  CnfFormula F(3, {Clause{-1, -2, -3}});
  QaoaParams P1, P2;
  P2.Layers = 2;
  Circuit C1 = buildQaoaCircuit(F, P1);
  Circuit C2 = buildQaoaCircuit(F, P2);
  EXPECT_GT(C2.size(), C1.size());
  EXPECT_EQ(C2.count(GateKind::RX), 2 * C1.count(GateKind::RX));
}
