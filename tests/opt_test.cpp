//===- tests/opt_test.cpp - peephole / max-cut / QAOA optimiser tests -----===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "circuit/Peephole.h"
#include "qaoa/Builder.h"
#include "qaoa/MaxCut.h"
#include "qaoa/Optimizer.h"
#include "sat/Evaluator.h"
#include "sat/Generator.h"
#include "sim/StateVector.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace weaver;
using circuit::Circuit;
using circuit::GateKind;
using circuit::PeepholeStats;

// --- Peephole ----------------------------------------------------------------

TEST(Peephole, CancelsSelfInversePairs) {
  Circuit C(3);
  C.h(0).h(0).cz(1, 2).cz(2, 1).ccz(0, 1, 2).ccz(1, 0, 2);
  PeepholeStats Stats;
  Circuit Out = circuit::peepholeOptimize(C, &Stats);
  EXPECT_TRUE(Out.empty()) << Out.str();
  EXPECT_EQ(Stats.CancelledPairs, 3u);
}

TEST(Peephole, RespectsInterveningGates) {
  Circuit C(2);
  C.h(0).cz(0, 1).h(0); // CZ touches qubit 0: H's are not adjacent
  Circuit Out = circuit::peepholeOptimize(C);
  EXPECT_EQ(Out.size(), 3u);
}

TEST(Peephole, CancelsAcrossUntouchedQubits) {
  Circuit C(3);
  C.h(0).x(1).h(0); // X on qubit 1 does not block the H pair on qubit 0
  Circuit Out = circuit::peepholeOptimize(C);
  EXPECT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out.gate(0).kind(), GateKind::X);
}

TEST(Peephole, MergesRotations) {
  Circuit C(2);
  C.rz(0.25, 0).rz(0.5, 0).rzz(0.1, 0, 1).rzz(0.2, 1, 0);
  PeepholeStats Stats;
  Circuit Out = circuit::peepholeOptimize(C, &Stats);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_NEAR(Out.gate(0).param(0), 0.75, 1e-12);
  EXPECT_NEAR(Out.gate(1).param(0), 0.3, 1e-12);
  EXPECT_EQ(Stats.MergedRotations, 2u);
}

TEST(Peephole, DropsZeroRotationsAndIdentities) {
  Circuit C(1);
  C.rz(0, 0).id(0).rx(0.4, 0).rx(-0.4, 0);
  Circuit Out = circuit::peepholeOptimize(C);
  EXPECT_TRUE(Out.empty()) << Out.str();
}

TEST(Peephole, KeepsMeasureAndBarrier) {
  Circuit C(1);
  C.h(0).barrier().h(0).measure(0);
  Circuit Out = circuit::peepholeOptimize(C);
  EXPECT_EQ(Out.count(GateKind::Barrier), 1u);
  EXPECT_EQ(Out.count(GateKind::Measure), 1u);
  // Barriers overlap everything, so the H pair must NOT cancel.
  EXPECT_EQ(Out.count(GateKind::H), 2u);
}

TEST(Peephole, PreservesRandomCircuitUnitaries) {
  Xoshiro256 Rng(5150);
  for (int Trial = 0; Trial < 8; ++Trial) {
    Circuit C(4);
    for (int I = 0; I < 60; ++I) {
      int Q = static_cast<int>(Rng.nextBelow(4));
      int R = static_cast<int>((Q + 1 + Rng.nextBelow(3)) % 4);
      switch (Rng.nextBelow(6)) {
      case 0:
        C.h(Q);
        break;
      case 1:
        C.x(Q);
        break;
      case 2:
        C.rz(Rng.nextDouble() < 0.3 ? 0.0 : 0.7, Q);
        break;
      case 3:
        C.cz(Q, R);
        break;
      case 4:
        C.cx(Q, R);
        break;
      default:
        C.rzz(0.4, Q, R);
        break;
      }
    }
    Circuit Out = circuit::peepholeOptimize(C);
    EXPECT_LE(Out.size(), C.size());
    EXPECT_TRUE(sim::circuitsEquivalent(C, Out)) << "trial " << Trial;
  }
}

TEST(Peephole, ShrinksQaoaDoubleLayer) {
  // Two identical QAOA phase layers back to back contain cancelling CX
  // ladders at the seam.
  sat::CnfFormula F = sat::RandomSatGenerator(3).generate(5, 10);
  Circuit C = qaoa::buildQaoaCircuit(F, qaoa::QaoaParams());
  Circuit DoubleSeam(5);
  DoubleSeam.appendCircuit(C);
  DoubleSeam.appendCircuit(C);
  Circuit Out = circuit::peepholeOptimize(DoubleSeam);
  EXPECT_LT(Out.size(), DoubleSeam.size());
  EXPECT_TRUE(sim::circuitsEquivalent(DoubleSeam, Out));
}

// --- Max-cut front end ----------------------------------------------------------

TEST(MaxCut, CutSizeCountsCrossingEdges) {
  qaoa::MaxCutGraph G;
  G.NumVertices = 3;
  G.Edges = {{0, 1}, {1, 2}, {0, 2}};
  EXPECT_EQ(G.cutSize(0b000), 0u);
  EXPECT_EQ(G.cutSize(0b001), 2u);
  EXPECT_EQ(G.cutSize(0b011), 2u);
}

TEST(MaxCut, TriangleOptimumIsTwo) {
  qaoa::MaxCutGraph G;
  G.NumVertices = 3;
  G.Edges = {{0, 1}, {1, 2}, {0, 2}};
  EXPECT_EQ(G.maxCutBruteForce(), 2u);
}

TEST(MaxCut, FormulaEncodesCut) {
  qaoa::MaxCutGraph G = qaoa::paperFigure1Graph();
  sat::CnfFormula F = qaoa::maxCutToFormula(G);
  EXPECT_EQ(F.numClauses(), 2 * G.Edges.size());
  // satisfied(b) = |E| + cut(b) for every assignment.
  for (uint64_t Bits = 0; Bits < (1u << G.NumVertices); ++Bits) {
    size_t Sat =
        F.countSatisfied(sat::assignmentFromBits(Bits, G.NumVertices));
    EXPECT_EQ(Sat, G.Edges.size() + G.cutSize(Bits)) << "bits " << Bits;
  }
}

TEST(MaxCut, PaperGraphOptimum) {
  qaoa::MaxCutGraph G = qaoa::paperFigure1Graph();
  // Fig. 1d: partition {a,b,e} vs {c,d,f} (bits 010011... vertex ids
  // 0,1,4 on one side) achieves the optimum.
  uint64_t PaperBits = (1u << 2) | (1u << 3) | (1u << 5);
  EXPECT_EQ(G.cutSize(PaperBits), G.maxCutBruteForce());
}

// --- QAOA parameter optimisation ---------------------------------------------

TEST(QaoaOptimizer, ExpectationMatchesUniformAtZeroAngles) {
  sat::CnfFormula F = sat::RandomSatGenerator(8).generate(5, 12);
  qaoa::QaoaParams P;
  P.Gamma = 0;
  P.Beta = 0;
  // gamma = 0 leaves the uniform superposition: expectation = average
  // satisfied count = 7/8 per clause.
  double Expected = qaoa::expectedSatisfiedClauses(F, P);
  EXPECT_NEAR(Expected, F.numClauses() * 7.0 / 8.0, 1e-6);
}

TEST(QaoaOptimizer, SearchBeatsUniformBaseline) {
  sat::CnfFormula F = sat::RandomSatGenerator(12).generate(6, 14);
  qaoa::OptimizerOptions Opt;
  Opt.GridPoints = 5;
  Opt.RefineIterations = 6;
  qaoa::OptimizedParams R = qaoa::optimizeQaoaParams(F, Opt);
  EXPECT_GT(R.ExpectedSatisfied, F.numClauses() * 7.0 / 8.0);
  EXPECT_GT(R.OptimumMass, 0);
  EXPECT_GT(R.Evaluations, 25);
}

TEST(QaoaOptimizer, TwoLayersAtLeastAsGoodAsOne) {
  sat::CnfFormula F = sat::RandomSatGenerator(21).generate(5, 10);
  qaoa::OptimizerOptions One, Two;
  One.Layers = 1;
  Two.Layers = 2;
  One.GridPoints = Two.GridPoints = 4;
  One.RefineIterations = Two.RefineIterations = 5;
  double V1 = qaoa::optimizeQaoaParams(F, One).ExpectedSatisfied;
  double V2 = qaoa::optimizeQaoaParams(F, Two).ExpectedSatisfied;
  EXPECT_GE(V2, V1 - 0.05);
}
