//===- tools/qasm_compile.cpp - Compile an OpenQASM 2 file ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front door for arbitrary-circuit workloads: parses an
/// OpenQASM 2 file through src/oq2/, recovers the QAOA structure when the
/// circuit is builder-shaped, and compiles it on any BackendKind. When
/// recovery fails, the circuit still compiles on the superconducting
/// backend, which accepts arbitrary circuits; the FPQA-style backends
/// need the (formula, params) form and report why recovery failed.
///
//===----------------------------------------------------------------------===//

#include "baselines/Backend.h"
#include "core/WeaverCompiler.h"
#include "oq2/Frontend.h"
#include "oq2/QaoaRecover.h"
#include "qasm/Printer.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <string>

using namespace weaver;

namespace {

const char *Usage =
    "usage: qasm_compile <file.qasm> [--backend NAME] [--check] [--emit]\n"
    "  --backend NAME  superconducting | atomique | weaver | dpqa | geyser\n"
    "                  (default: weaver)\n"
    "  --check         run the wChecker on the emitted program (weaver)\n"
    "  --emit          print the emitted wQASM program (weaver)\n";

void printResult(const baselines::BaselineResult &R) {
  if (!R.usable()) {
    std::printf("status: %s%s%s\n", R.TimedOut ? "timed out" : "unsupported",
                R.Diagnostic.empty() ? "" : ": ",
                R.Diagnostic.c_str());
    return;
  }
  std::printf("compiler: %s\n", R.Compiler.c_str());
  std::printf("compile seconds: %s\n", formatDouble(R.CompileSeconds).c_str());
  std::printf("pulses: %zu\n", R.Pulses);
  std::printf("two-qubit gates: %zu\n", R.TwoQubitGates);
  std::printf("three-qubit gates: %zu\n", R.ThreeQubitGates);
  std::printf("execution seconds: %s\n",
              formatDouble(R.ExecutionSeconds).c_str());
  if (R.EpsMeaningful)
    std::printf("eps: %s\n", formatDouble(R.Eps).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path;
  std::string BackendName = "weaver";
  bool Check = false, Emit = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--backend")
      BackendName = Next();
    else if (Arg == "--check")
      Check = true;
    else if (Arg == "--emit")
      Emit = true;
    else if (Arg == "--help") {
      std::fprintf(stderr, "%s", Usage);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n%s", Arg.c_str(),
                   Usage);
      return 1;
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      std::fprintf(stderr, "error: more than one input file\n%s", Usage);
      return 1;
    }
  }
  if (Path.empty()) {
    std::fprintf(stderr, "%s", Usage);
    return 1;
  }
  Expected<baselines::BackendKind> Kind =
      baselines::backendKindFromName(BackendName);
  if (!Kind) {
    std::fprintf(stderr, "error: %s\n%s", Kind.message().c_str(), Usage);
    return 1;
  }

  Expected<circuit::Circuit> C = oq2::parseOq2File(Path);
  if (!C) {
    std::fprintf(stderr, "error: %s\n", C.message().c_str());
    return 1;
  }
  circuit::CircuitStats Stats = C->stats();
  std::printf("parsed: %d qubits, %zu gates, depth %zu\n", C->numQubits(),
              Stats.TotalGates, Stats.Depth);

  Expected<oq2::RecoveredQaoa> R = oq2::recoverQaoa(*C);
  if (!R) {
    // Arbitrary circuit: only the superconducting path takes one.
    if (*Kind != baselines::BackendKind::Superconducting) {
      std::fprintf(stderr,
                   "error: backend '%s' compiles QAOA instances only, and "
                   "%s\n       (compile arbitrary circuits with "
                   "--backend superconducting)\n",
                   BackendName.c_str(), R.message().c_str());
      return 1;
    }
    printResult(baselines::compileSuperconductingCircuit(*C));
    return 0;
  }
  std::printf("recovered: %d variables, %zu clauses, %d layer(s)%s\n",
              R->Formula.numVariables(), R->Formula.numClauses(),
              R->Params.Layers,
              R->Params.UseCompressedClauses ? ", compressed" : "");

  if (*Kind == baselines::BackendKind::Weaver && (Check || Emit)) {
    core::WeaverOptions Options;
    Options.Qaoa = R->Params;
    Options.RunChecker = Check;
    Expected<core::WeaverResult> W = core::compileWeaver(R->Formula, Options);
    if (!W) {
      std::fprintf(stderr, "error: %s\n", W.message().c_str());
      return 1;
    }
    baselines::BaselineResult Metrics = baselines::toBaselineResult(*W);
    printResult(Metrics);
    if (Check) {
      if (!W->Check) {
        std::printf("wchecker: not run\n");
      } else {
        std::printf("wchecker: %s (structural %s, unitary %s)\n",
                    W->Check->passed() ? "passed" : "FAILED",
                    W->Check->StructuralOk ? "ok" : "failed",
                    W->Check->UnitaryChecked
                        ? (W->Check->UnitaryOk ? "ok" : "failed")
                        : "skipped");
        if (!W->Check->passed()) {
          std::fprintf(stderr, "error: %s\n", W->Check->Diagnostic.c_str());
          return 1;
        }
      }
    }
    if (Emit)
      std::fputs(qasm::printWqasm(W->Program).c_str(), stdout);
    return 0;
  }

  std::unique_ptr<baselines::Backend> Backend =
      baselines::createBackend(*Kind);
  printResult(Backend->compile(R->Formula, R->Params));
  return 0;
}
