//===- tools/compile_server.cpp - CompileService demo driver --------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Demo main for the async CompileService, in two modes:
///
///  * Batch mode (default): pushes a SATLIB batch (mixed uf20..uf100
///    sizes, 100 formulas by default) through the service queue, then
///    recompiles the same batch directly (no service, no cache) and
///    verifies the wQASM of every job is byte-identical — the
///    service-vs-direct equivalence the tests pin, demonstrated at batch
///    scale. Prints the per-job rows and the aggregate stats table.
///
///      compile_server [--jobs N] [--threads N] [--queue N]
///                     [--backend NAME] [--cancel-every K] [--no-dedup]
///                     [--cache-file PATH]
///
///  * Line-protocol mode (--serve): a minimal interactive server on
///    stdin/stdout. One command per line:
///      compile <backend> <nvars> <index> [gamma beta [priority [deadline_ms]]]
///      file <path> [backend]         (DIMACS instance)
///      cancel <jobid>
///      stats
///      quit                          (EOF also shuts down)
///    Completions are reported asynchronously as "done <jobid> ..." lines
///    from worker callbacks. Lines are parsed by net::parseServeCommand —
///    the same bounded validation the socket frame codec uses — so
///    overflowing integers, NUL bytes, missing fields, and oversized
///    lines are reported errors, never silently defaulted requests.
///
/// With --cache-file PATH, both modes warm-start the service's PassCache
/// from the snapshot at PATH (if present and valid) and flush it back on
/// clean exit. SIGTERM/SIGINT trigger the same drain + flush in BOTH
/// modes (batch mode cancels the jobs still queued, waits for the rest,
/// and flushes) instead of killing the process mid-write.
///
//===----------------------------------------------------------------------===//

#include "core/service/CompileService.h"
#include "net/Protocol.h"
#include "sat/Dimacs.h"
#include "sat/Generator.h"
#include "support/StringUtils.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

using namespace weaver;
using namespace weaver::core;

namespace {

struct DemoConfig {
  int Jobs = 100;
  int Threads = 0; // hardware concurrency
  size_t Queue = 64;
  std::string Backend = "weaver";
  int CancelEvery = 0; // cancel every Kth job right after submit
  bool Dedup = true;
  bool Serve = false;
  std::string CacheFile; // persistent PassCache snapshot (optional)
};

/// SIGTERM/SIGINT request an orderly drain of the line-protocol server:
/// the handler only flips this flag; the blocked getline fails with EINTR
/// (the handler is installed without SA_RESTART), the command loop exits,
/// and the normal shutdown path drains the queue and flushes the cache
/// file.
volatile std::sig_atomic_t TerminateRequested = 0;

void onTerminate(int) { TerminateRequested = 1; }

/// Installs the drain-on-signal handlers. No SA_RESTART: a read blocked
/// in getline fails with EINTR instead of resuming, so serve mode's
/// command loop observes the flag promptly.
void installSignalHandlers() {
  struct sigaction Sa = {};
  Sa.sa_handler = onTerminate;
  sigemptyset(&Sa.sa_mask);
  Sa.sa_flags = 0;
  sigaction(SIGTERM, &Sa, nullptr);
  sigaction(SIGINT, &Sa, nullptr);
}

/// The one shutdown path both modes funnel through, signalled or not:
/// drain the queue (every job resolves), flush the cache file if one is
/// configured (inside the draining shutdown), and print final stats.
/// Before this existed, a SIGTERM during batch mode took a non-flush
/// exit path and the snapshot never hit disk.
int drainAndExit(CompileService &Service, const DemoConfig &Config,
                 int ExitCode) {
  if (TerminateRequested)
    std::fprintf(stderr, "termination signal: draining %s\n",
                 Config.CacheFile.empty() ? "queue"
                                          : "queue and flushing cache file");
  Service.shutdown(/*Drain=*/true);
  std::printf("%s", Service.statsTable().render().c_str());
  std::fflush(stdout);
  return ExitCode;
}

/// The mixed sizes of the batched demo — small enough that 100 formulas
/// finish in seconds, mixed enough that the queue sees uneven job costs.
constexpr int DemoSizes[] = {20, 50, 75, 100};

int runBatchDemo(const DemoConfig &Config) {
  Expected<baselines::BackendKind> KindOr =
      baselines::backendKindFromName(Config.Backend);
  if (!KindOr) {
    std::fprintf(stderr, "error: %s\n", KindOr.message().c_str());
    return 1;
  }
  baselines::BackendKind Kind = *KindOr;

  ServiceOptions Opt;
  Opt.NumThreads = Config.Threads;
  Opt.QueueCapacity = Config.Queue;
  Opt.Deduplicate = Config.Dedup;
  Opt.CacheFile = Config.CacheFile;
  CompileService Service(Opt);
  installSignalHandlers();

  // Build the batch: cycle the sizes, fresh instance index per size.
  std::vector<CompileRequest> Batch;
  std::map<int, int> NextIndex;
  for (int I = 0; I < Config.Jobs; ++I) {
    CompileRequest R;
    int N = DemoSizes[I % std::size(DemoSizes)];
    R.Formula = sat::satlibInstance(N, ++NextIndex[N]);
    R.Kind = Kind;
    R.Priority = 0;
    Batch.push_back(std::move(R));
  }

  auto Start = std::chrono::steady_clock::now();
  std::vector<CompileService::JobHandle> Handles;
  Handles.reserve(Batch.size());
  for (size_t I = 0; I < Batch.size(); ++I) {
    if (TerminateRequested)
      break; // drainAndExit resolves what was already queued
    Handles.push_back(Service.submit(Batch[I]));
    if (Config.CancelEvery > 0 &&
        (I + 1) % static_cast<size_t>(Config.CancelEvery) == 0)
      Handles.back().cancel();
  }
  // Signal-aware waits: a SIGTERM mid-batch cancels the jobs still
  // pending (each resolves promptly as cancelled) instead of riding out
  // the whole batch — and still reaches the flush path below.
  std::vector<JobOutcome> Outcomes;
  Outcomes.reserve(Handles.size());
  bool CancelledRest = false;
  for (CompileService::JobHandle &H : Handles) {
    JobOutcome Out;
    while (!H.waitFor(0.2, Out)) {
      if (TerminateRequested && !CancelledRest) {
        for (CompileService::JobHandle &Pending : Handles)
          Pending.cancel();
        CancelledRest = true;
      }
    }
    Outcomes.push_back(std::move(Out));
  }
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  // Per-job rows (first 8 + last); the aggregate table prints from the
  // shared shutdown path.
  std::vector<JobOutcome> Shown(
      Outcomes.begin(),
      Outcomes.begin() + std::min<size_t>(8, Outcomes.size()));
  if (Outcomes.size() > 8)
    Shown.push_back(Outcomes.back());
  std::printf("%s...\n", CompileService::outcomeTable(Shown).render().c_str());

  size_t Completed = 0, Cancelled = 0;
  for (const JobOutcome &O : Outcomes) {
    Completed += O.State == JobState::Completed;
    Cancelled += O.State == JobState::Cancelled;
  }
  std::printf("%zu jobs in %.2f s (%.0f jobs/s) on %d threads: "
              "%zu completed, %zu cancelled\n",
              Outcomes.size(), Wall, Outcomes.size() / Wall,
              Service.numThreads(), Completed, Cancelled);

  // Byte-identity against direct compiles: every completed service job
  // must produce exactly the wQASM a standalone compile produces.
  if (Kind == baselines::BackendKind::Weaver) {
    std::unique_ptr<baselines::Backend> Direct = baselines::createBackend(Kind);
    size_t Checked = 0, Identical = 0;
    for (size_t I = 0; I < Outcomes.size(); ++I) {
      if (Outcomes[I].State != JobState::Completed)
        continue;
      baselines::CompileOutput Ref =
          Direct->compileFull(Batch[I].Formula, Batch[I].Qaoa);
      ++Checked;
      Identical += Ref.Wqasm == Outcomes[I].Wqasm;
    }
    std::printf("wQASM byte-identical to direct compiles: %zu/%zu%s\n",
                Identical, Checked,
                Identical == Checked ? "" : "  [MISMATCH]");
    if (Identical != Checked)
      return drainAndExit(Service, Config, 1);
  }
  return drainAndExit(Service, Config, 0);
}

int runServer(const DemoConfig &Config) {
  ServiceOptions Opt;
  Opt.NumThreads = Config.Threads;
  Opt.QueueCapacity = Config.Queue;
  Opt.Deduplicate = Config.Dedup;
  Opt.CacheFile = Config.CacheFile;
  CompileService Service(Opt);
  installSignalHandlers();

  std::mutex OutMutex; // callbacks print from worker threads
  auto Report = [&OutMutex](const JobOutcome &O) {
    std::lock_guard<std::mutex> Lock(OutMutex);
    std::printf("done %llu state=%s queue_ms=%.2f compile_ms=%.2f "
                "cache=%s pulses=%zu\n",
                static_cast<unsigned long long>(O.JobId),
                jobStateName(O.State), O.QueueSeconds * 1e3,
                O.CompileSeconds * 1e3, cacheTierName(O.Tier),
                O.Metrics.Pulses);
    std::fflush(stdout);
  };

  // All handles attached to a job id: a coalesced submit adds a second
  // handle (and a second cancellation vote), so "cancel <id>" must vote
  // with every one of them to actually cancel the job.
  std::map<uint64_t, std::vector<CompileService::JobHandle>> Handles;
  std::string Line;
  while (!TerminateRequested && std::getline(std::cin, Line)) {
    if (trim(Line).empty())
      continue;
    // Shared validation with the socket frame codec: overflowing ints,
    // NUL bytes, oversized lines, and missing fields are all rejected
    // here with a diagnostic, never turned into a defaulted request.
    Expected<net::ServeCommand> CmdOr = net::parseServeCommand(Line);
    if (!CmdOr) {
      std::lock_guard<std::mutex> Lock(OutMutex);
      std::printf("error: %s\n", CmdOr.message().c_str());
      std::fflush(stdout);
      continue;
    }
    net::ServeCommand Cmd = CmdOr.take();
    if (Cmd.Act == net::ServeCommand::Action::Quit)
      break;
    if (Cmd.Act == net::ServeCommand::Action::Stats) {
      std::lock_guard<std::mutex> Lock(OutMutex);
      std::printf("%s", Service.statsTable().render().c_str());
      std::fflush(stdout);
      continue;
    }
    if (Cmd.Act == net::ServeCommand::Action::Cancel) {
      auto It = Handles.find(Cmd.CancelId);
      std::lock_guard<std::mutex> Lock(OutMutex);
      if (It == Handles.end()) {
        std::printf("error: unknown job %llu\n",
                    static_cast<unsigned long long>(Cmd.CancelId));
      } else {
        for (CompileService::JobHandle &H : It->second)
          H.cancel();
        std::printf("cancel requested for job %llu\n",
                    static_cast<unsigned long long>(Cmd.CancelId));
      }
      std::fflush(stdout);
      continue;
    }

    CompileRequest R;
    if (Cmd.Act == net::ServeCommand::Action::Compile) {
      R.Kind = Cmd.Compile.Kind;
      R.Formula = sat::satlibInstance(Cmd.Compile.NumVars, Cmd.Compile.Index);
      R.Qaoa.Gamma = Cmd.Compile.Gamma;
      R.Qaoa.Beta = Cmd.Compile.Beta;
      R.Priority = Cmd.Compile.Priority;
      R.DeadlineSeconds = Cmd.Compile.DeadlineMs / 1000.0;
    } else { // Action::File
      auto F = sat::parseDimacsFile(Cmd.Path);
      if (!F) {
        std::lock_guard<std::mutex> Lock(OutMutex);
        std::printf("error: %s\n", F.message().c_str());
        std::fflush(stdout);
        continue;
      }
      R.Kind = Cmd.FileKind;
      R.Formula = F.take();
    }
    CompileService::JobHandle H = Service.submit(std::move(R), Report);
    Handles[H.id()].push_back(H);
    std::lock_guard<std::mutex> Lock(OutMutex);
    std::printf("queued %llu%s\n",
                static_cast<unsigned long long>(H.id()),
                H.coalesced() ? " (coalesced)" : "");
    std::fflush(stdout);
  }
  return drainAndExit(Service, Config, 0);
}

const char *Usage =
    "usage: compile_server [--jobs N] [--threads N] "
    "[--queue N] [--backend NAME] [--cancel-every K] "
    "[--no-dedup] [--serve] [--cache-file PATH]\n";

/// Parses an argv flag value as a range-checked integer; a malformed or
/// out-of-range value (negative thread counts, overflow, garbage) is a
/// hard usage error, never a silent zero.
long long argInt(const std::string &Flag, const char *Text, long long Min,
                 long long Max) {
  Expected<long long> V = parseInt(Text, Min, Max);
  if (!V) {
    std::fprintf(stderr, "error: %s: %s\n%s", Flag.c_str(),
                 V.message().c_str(), Usage);
    std::exit(1);
  }
  return *V;
}

} // namespace

int main(int Argc, char **Argv) {
  DemoConfig Config;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--jobs")
      Config.Jobs = static_cast<int>(argInt(Arg, Next(), 1, 10000000));
    else if (Arg == "--threads")
      // 0 selects hardware concurrency (the ServiceOptions default).
      Config.Threads = static_cast<int>(argInt(Arg, Next(), 0, 512));
    else if (Arg == "--queue")
      Config.Queue = static_cast<size_t>(argInt(Arg, Next(), 1, 1048576));
    else if (Arg == "--backend")
      Config.Backend = Next();
    else if (Arg == "--cancel-every")
      // 0 disables the demo's periodic cancellation.
      Config.CancelEvery =
          static_cast<int>(argInt(Arg, Next(), 0, 10000000));
    else if (Arg == "--no-dedup")
      Config.Dedup = false;
    else if (Arg == "--serve")
      Config.Serve = true;
    else if (Arg == "--cache-file")
      Config.CacheFile = Next();
    else {
      std::fprintf(stderr, "%s", Usage);
      return Arg == "--help" ? 0 : 1;
    }
  }
  return Config.Serve ? runServer(Config) : runBatchDemo(Config);
}
