//===- tools/regen_goldens.cpp - Rewrite the golden wQASM programs --------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates every tests/data/*.wqasm golden from the current compiler.
/// The goldens pin the emitted byte stream (tests/pipeline_test.cpp), so
/// any PR that intentionally changes output — like the batched parallel
/// shuttle emission — reruns this tool, eyeballs the diff, and commits the
/// new files. Each program is structurally validated through the wChecker
/// before it is written: the tool refuses to pin an invalid stream.
///
/// Usage: regen_goldens [output-dir]   (default: the source tests/data)
///
//===----------------------------------------------------------------------===//

#include "core/WChecker.h"
#include "core/WeaverCompiler.h"
#include "qasm/Printer.h"
#include "sat/Generator.h"

#include <cstdio>
#include <fstream>
#include <string>

using namespace weaver;
using sat::Clause;
using sat::CnfFormula;

namespace {

#ifndef WEAVER_GOLDEN_DIR
#define WEAVER_GOLDEN_DIR "tests/data"
#endif

/// The formula behind golden_seed<seed>*.wqasm (tests/pipeline_test.cpp).
CnfFormula goldenFormula(uint64_t Seed) {
  return sat::RandomSatGenerator(Seed).generate(12, 36);
}

/// The formula behind golden_mixed.wqasm: mixed clause widths, two QAOA
/// layers, measured.
CnfFormula mixedFormula() {
  return CnfFormula(5, {Clause{1}, Clause{-2, 3}, Clause{-3, -4, -5},
                        Clause{2, 4}, Clause{-1, 4, 5}});
}

bool writeGolden(const std::string &Dir, const std::string &Name,
                 const CnfFormula &Formula,
                 const core::WeaverOptions &Options) {
  auto R = core::compileWeaver(Formula, Options);
  if (!R.ok()) {
    std::fprintf(stderr, "%s: compile failed: %s\n", Name.c_str(),
                 R.message().c_str());
    return false;
  }
  core::CheckReport Report = core::checkWqasm(R->Program, Options.Hw);
  if (!Report.StructuralOk) {
    std::fprintf(stderr, "%s: wChecker rejected the program: %s\n",
                 Name.c_str(), Report.Diagnostic.c_str());
    return false;
  }
  std::string Path = Dir + "/" + Name;
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out.good()) {
    std::fprintf(stderr, "%s: cannot open for writing\n", Path.c_str());
    return false;
  }
  std::string Text = qasm::printWqasm(R->Program);
  Out << Text;
  std::printf("wrote %s (%zu bytes, %zu shuttle annotations)\n",
              Path.c_str(), Text.size(), R->Stats.ShuttleAnnotations);
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string Dir = argc > 1 ? argv[1] : WEAVER_GOLDEN_DIR;
  bool Ok = true;
  for (uint64_t Seed : {7u, 21u, 42u}) {
    std::string Base = "golden_seed" + std::to_string(Seed);
    core::WeaverOptions Default;
    Ok &= writeGolden(Dir, Base + ".wqasm", goldenFormula(Seed), Default);
    core::WeaverOptions Ladder;
    Ladder.Compression = core::WeaverOptions::CompressionMode::Off;
    Ok &= writeGolden(Dir, Base + "_ladder.wqasm", goldenFormula(Seed),
                      Ladder);
    core::WeaverOptions NoReuse;
    NoReuse.ReuseAodAtoms = false;
    Ok &= writeGolden(Dir, Base + "_noreuse.wqasm", goldenFormula(Seed),
                      NoReuse);
  }
  core::WeaverOptions Mixed;
  Mixed.Qaoa.Layers = 2;
  Mixed.Measure = true;
  Ok &= writeGolden(Dir, "golden_mixed.wqasm", mixedFormula(), Mixed);
  if (!Ok) {
    std::fprintf(stderr, "golden regeneration FAILED\n");
    return 1;
  }
  return 0;
}
