//===- tools/chaos_sweep.cpp - Seeded chaos harness -----------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Randomized-but-reproducible fault campaigns over the whole stack. One
/// seed deterministically picks a fault family and a schedule, runs a
/// fixed SATLIB workload under injection, and asserts the global
/// robustness invariants the rest of the repo promises piecemeal:
///
///   * the process never crashes, hangs, or leaks a wedged worker;
///   * every submitted job resolves exactly once and the service
///     accounting balances (completed + cancelled + failed == submitted);
///   * snapshots on disk either load clean or degrade to cold misses —
///     a failed save never corrupts the previous snapshot;
///   * once the faults are lifted, outputs are byte-identical to a
///     fault-free baseline.
///
/// Families (seed % 4, or --family): disk (BinaryIO + persistence
/// faults around snapshot save/load/merge), crash (injected worker
/// crashes in the CompileService), hang (injected stuck compiles
/// rescued by the per-job watchdog), net (socket transport faults
/// through a real in-process server).
///
/// The stdout report is a pure function of the seed — same seed, same
/// schedule, same bytes — so CI can diff two runs; timings and other
/// nondeterministic chatter go to stderr. `--verify` is accepted for
/// symmetry with the other drivers; verification is always on.
///
//===----------------------------------------------------------------------===//

#include "baselines/Backend.h"
#include "core/WeaverCompiler.h"
#include "core/pipeline/PassCache.h"
#include "core/service/CompileService.h"
#include "net/Client.h"
#include "net/Server.h"
#include "sat/Generator.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace weaver;

namespace {

/// One workload point: a SATLIB instance at one (gamma, beta) angle.
struct Point {
  int Vars = 20;
  int Index = 1;
  double Gamma = 0.3;
  double Beta = 0.2;
};

/// Fixed workload: small enough that a full chaos run stays in seconds,
/// varied enough that cache tiers, dedup, and angle patching all engage.
std::vector<Point> workload() {
  std::vector<Point> W;
  for (int Index = 1; Index <= 3; ++Index)
    for (int P = 0; P < 2; ++P)
      W.push_back(Point{20, Index, 0.30 + 0.10 * P, 0.20 + 0.05 * P});
  return W;
}

qaoa::QaoaParams qaoaFor(const Point &P) {
  qaoa::QaoaParams Q;
  Q.Gamma = P.Gamma;
  Q.Beta = P.Beta;
  return Q;
}

core::CompileRequest requestFor(const Point &P) {
  core::CompileRequest R;
  R.Formula = sat::satlibInstance(P.Vars, P.Index);
  R.Qaoa = qaoaFor(P);
  return R;
}

/// Fault-free reference wQASM for every workload point (direct compile,
/// no service, no cache — the strictest identity baseline).
std::vector<std::string> baselineWqasm(const std::vector<Point> &W) {
  baselines::WeaverBackend Direct;
  std::vector<std::string> Out;
  for (const Point &P : W)
    Out.push_back(
        Direct.compileFull(sat::satlibInstance(P.Vars, P.Index), qaoaFor(P))
            .Wqasm);
  return Out;
}

bool readFileBytes(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  return static_cast<bool>(Out);
}

/// Deterministic uniform stream for schedule derivation.
struct Uniform {
  explicit Uniform(uint64_t Seed) : SM(Seed) {}
  double operator()() {
    return static_cast<double>(SM.next() >> 11) * 0x1.0p-53;
  }
  SplitMix64 SM;
};

int Failures = 0;

void check(bool Ok, const std::string &What) {
  if (!Ok) {
    ++Failures;
    std::printf("INVARIANT VIOLATED: %s\n", What.c_str());
  }
}

void installSpec(uint64_t Seed, const std::string &Sites) {
  std::string Spec = "seed=" + std::to_string(Seed) + ";" + Sites;
  std::printf("schedule: %s\n", Spec.c_str());
  if (Status S = fault::configureGlobal(Spec)) {
    std::fprintf(stderr, "internal error: bad schedule: %s\n",
                 S.message().c_str());
    std::exit(2);
  }
}

// --- disk family ----------------------------------------------------------
//
// Snapshot save/load/merge cycles under injected I/O failure. The file
// under attack starts as a valid snapshot of the full workload; every
// iteration loads it (maybe rejected -> cold), recompiles whatever is
// missing, and tries to save it back (maybe failing at any of the seven
// injected I/O steps). Invariant: with faults lifted, the file is ALWAYS
// a loadable snapshot of exactly the workload entries, byte-identical to
// the reference — a failed save must have left the previous bytes.

int runDisk(uint64_t Seed, const std::vector<Point> &W,
            const std::string &Dir) {
  std::string Target = Dir + "/chaos-disk-" + std::to_string(Seed) + ".bin";
  std::string Scratch = Target + ".scratch";

  // Reference snapshot: the workload compiled cold, saved fault-free.
  core::pipeline::PassCache Ref;
  {
    core::WeaverOptions WOpt;
    WOpt.Cache = &Ref;
    baselines::WeaverBackend B(WOpt);
    for (const Point &P : W)
      B.compileFull(sat::satlibInstance(P.Vars, P.Index), qaoaFor(P));
    Status S = Ref.saveSnapshot(Target);
    if (S) {
      std::fprintf(stderr, "error: reference save failed: %s\n",
                   S.message().c_str());
      return 1;
    }
  }
  std::string RefBytes;
  if (!readFileBytes(Target, RefBytes)) {
    std::fprintf(stderr, "error: cannot read %s\n", Target.c_str());
    return 1;
  }
  size_t RefEntries = Ref.size();

  Uniform U(Seed);
  auto P = [&U]() { return formatf("p=%.3f", 0.15 + 0.25 * U()); };
  installSpec(Seed, "binio.open:" + P() + ";binio.write.short:" + P() +
                        ";binio.write.enospc:" + P() + ";binio.fsync:" +
                        P() + ";binio.rename:" + P() + ";binio.dirfsync:" +
                        P() + ";binio.mmap.truncate:" + P() +
                        ";persist.save.abort:" + P() +
                        ";persist.load.reject:" + P());

  const int Cycles = 8;
  int SaveFailures = 0, ColdLoads = 0;
  for (int I = 0; I < Cycles; ++I) {
    core::pipeline::PassCache Cache;
    Status LS = Cache.loadSnapshot(Target);
    if (LS || Cache.size() != RefEntries)
      ++ColdLoads; // rejected or truncated: must degrade, not explode
    // Recompile: hits where the load survived, cold misses elsewhere.
    // Either way the cache ends up holding exactly the workload entries.
    core::WeaverOptions WOpt;
    WOpt.Cache = &Cache;
    baselines::WeaverBackend B(WOpt);
    for (const Point &Pt : W)
      B.compileFull(sat::satlibInstance(Pt.Vars, Pt.Index), qaoaFor(Pt));
    check(Cache.size() == RefEntries,
          "cycle cache holds the full workload entry set");
    if (Cache.saveSnapshot(Target))
      ++SaveFailures;
  }

  // The previous-snapshot-intact invariant, checked fault-free: whatever
  // mix of failed and successful saves ran, the file is a valid snapshot
  // with the reference bytes (every successful save wrote the same entry
  // set; every failed one left its predecessor).
  fault::resetGlobal();
  std::string After;
  check(readFileBytes(Target, After), "snapshot file exists after campaign");
  check(After == RefBytes, "snapshot bytes identical to fault-free run");
  core::pipeline::PassCache Fresh;
  Status FS = Fresh.loadSnapshot(Target);
  check(!FS, "snapshot loads clean once faults are lifted");
  check(Fresh.size() == RefEntries, "snapshot holds the full entry set");

  // Tolerant segment merge: one good segment + one corrupt one. The
  // merge must skip the corrupt input, report it, and still produce the
  // reference bytes from the good one.
  std::string Corrupt = RefBytes;
  Corrupt[Corrupt.size() / 2] ^= 0x40;
  check(writeFileBytes(Scratch, Corrupt), "corrupt segment written");
  std::vector<std::string> Skipped;
  std::string MergeOut = Target + ".merged";
  Status MS = core::pipeline::PassCache::mergeSnapshots(
      {Target, Scratch}, MergeOut, &Skipped);
  check(!MS, "tolerant merge succeeds past a corrupt segment");
  check(Skipped.size() == 1, "exactly the corrupt segment was skipped");
  std::string MergedBytes;
  check(readFileBytes(MergeOut, MergedBytes) && MergedBytes == RefBytes,
        "merged snapshot byte-identical to reference");

  std::printf("disk: %d cycles, %d save failures, %d degraded loads, "
              "%zu entries stable\n",
              Cycles, SaveFailures, ColdLoads, RefEntries);
  std::remove(Target.c_str());
  std::remove(Scratch.c_str());
  std::remove(MergeOut.c_str());
  return 0;
}

// --- crash family ---------------------------------------------------------
//
// Injected worker crashes inside the service. Jobs either complete
// byte-identical to baseline or fail with the injected-crash diagnostic;
// the accounting balances; a fault-free retry of every crashed job
// completes byte-identically — the worker pool survived.

int runCrash(uint64_t Seed, const std::vector<Point> &W,
             const std::vector<std::string> &Baseline) {
  Uniform U(Seed);
  installSpec(Seed, formatf("service.job.crash:p=%.3f", 0.25 + 0.35 * U()));

  core::ServiceOptions SOpt;
  SOpt.NumThreads = 1; // single worker: deterministic site-call order
  core::CompileService Service(SOpt);

  int Crashed = 0;
  std::vector<size_t> Retry;
  for (size_t I = 0; I < W.size(); ++I) {
    core::JobOutcome Out = Service.submit(requestFor(W[I])).wait();
    if (Out.State == core::JobState::Completed) {
      check(Out.Wqasm == Baseline[I],
            "completed job byte-identical under crash injection");
    } else {
      check(Out.State == core::JobState::Failed &&
                Out.Diagnostic == "worker crashed (injected fault)",
            "non-completed job carries the injected-crash diagnostic");
      ++Crashed;
      Retry.push_back(I);
    }
  }

  fault::resetGlobal();
  for (size_t I : Retry) {
    core::JobOutcome Out = Service.submit(requestFor(W[I])).wait();
    check(Out.State == core::JobState::Completed &&
              Out.Wqasm == Baseline[I],
          "crashed job retries to a byte-identical completion");
  }

  core::CompileService::ServiceStats S = Service.stats();
  check(S.Submitted == S.Completed + S.Cancelled + S.Failed,
        "accounting balances: every submission resolved exactly once");
  check(S.Failed == static_cast<uint64_t>(Crashed),
        "failed count equals injected crashes");
  std::printf("crash: %zu jobs, %d crashed, %zu retried, accounting "
              "%llu == %llu+%llu+%llu\n",
              W.size(), Crashed, Retry.size(),
              static_cast<unsigned long long>(S.Submitted),
              static_cast<unsigned long long>(S.Completed),
              static_cast<unsigned long long>(S.Cancelled),
              static_cast<unsigned long long>(S.Failed));
  return 0;
}

// --- hang family ----------------------------------------------------------
//
// Injected stuck compiles (in the service and between pipeline passes),
// rescued by the per-job watchdog: a hung job resolves Failed exactly
// once with the watchdog diagnostic, the worker survives to take the
// next job, and fault-free retries are byte-identical.

int runHang(uint64_t Seed, const std::vector<Point> &W,
            const std::vector<std::string> &Baseline) {
  Uniform U(Seed);
  int Every = 2 + static_cast<int>(U() * 2.0);     // hang every 2nd..3rd job
  int PipeAfter = static_cast<int>(U() * 6.0);     // one mid-pipeline hang
  installSpec(Seed,
              formatf("service.job.hang:every=%d,delay_ms=10000;"
                      "pipeline.hang:after=%d,count=1,delay_ms=10000",
                      Every, PipeAfter));

  core::ServiceOptions SOpt;
  SOpt.NumThreads = 1;
  SOpt.WatchdogSeconds = 0.15; // rescue budget well under the 10 s stall
  core::CompileService Service(SOpt);

  int TimedOut = 0;
  std::vector<size_t> Retry;
  for (size_t I = 0; I < W.size(); ++I) {
    core::JobOutcome Out = Service.submit(requestFor(W[I])).wait();
    if (Out.State == core::JobState::Completed) {
      check(Out.Wqasm == Baseline[I],
            "completed job byte-identical under hang injection");
    } else {
      check(Out.State == core::JobState::Failed && Out.WatchdogTimedOut &&
                startsWith(Out.Diagnostic, "watchdog:"),
            "hung job resolved Failed by the watchdog");
      ++TimedOut;
      Retry.push_back(I);
    }
  }

  // The worker survived every rescue: with faults lifted, the same
  // service completes every previously hung job byte-identically.
  fault::resetGlobal();
  for (size_t I : Retry) {
    core::JobOutcome Out = Service.submit(requestFor(W[I])).wait();
    check(Out.State == core::JobState::Completed &&
              Out.Wqasm == Baseline[I],
          "hung job retries to a byte-identical completion");
  }

  core::CompileService::ServiceStats S = Service.stats();
  check(S.Submitted == S.Completed + S.Cancelled + S.Failed,
        "accounting balances: every submission resolved exactly once");
  check(S.WatchdogTimeouts == static_cast<uint64_t>(TimedOut),
        "watchdog timeout counter matches observed rescues");
  std::printf("hang: %zu jobs, %d rescued by watchdog, %zu retried, "
              "accounting %llu == %llu+%llu+%llu\n",
              W.size(), TimedOut, Retry.size(),
              static_cast<unsigned long long>(S.Submitted),
              static_cast<unsigned long long>(S.Completed),
              static_cast<unsigned long long>(S.Cancelled),
              static_cast<unsigned long long>(S.Failed));
  return 0;
}

// --- net family -----------------------------------------------------------
//
// Transport faults through a real in-process server: partial writes,
// delayed and truncated reads, the occasional injected kill. The client
// reconnects and retries; every verified response must be byte-identical
// to the direct compile. Fault decisions interleave with real socket
// timing, so the report prints only the (deterministic) verification
// verdict, not fault counters.

int runNet(uint64_t Seed, const std::vector<Point> &W,
           const std::vector<std::string> &Baseline) {
  Uniform U(Seed);
  net::ServerOptions SrvOpt;
  SrvOpt.Faults.Seed = Seed;
  SrvOpt.Faults.PartialWriteProb = 0.30 + 0.30 * U();
  SrvOpt.Faults.DelayReadProb = 0.20 + 0.20 * U();
  SrvOpt.Faults.KillProb = 0.02 * U();
  SrvOpt.Service.NumThreads = 1;
  std::printf("schedule: seed=%llu;net.write.partial:p=%.3f;"
              "net.read.delay:p=%.3f;net.kill:p=%.3f\n",
              static_cast<unsigned long long>(Seed),
              SrvOpt.Faults.PartialWriteProb, SrvOpt.Faults.DelayReadProb,
              SrvOpt.Faults.KillProb);

  net::Server Server(SrvOpt);
  if (Status S = Server.start()) {
    std::fprintf(stderr, "error: server start: %s\n", S.message().c_str());
    return 1;
  }
  Status RunStatus;
  std::thread Loop([&]() { RunStatus = Server.run(); });

  net::ClientOptions COpt;
  COpt.Port = Server.port();
  COpt.Seed = Seed;
  net::Client Client(COpt);

  size_t Verified = 0;
  for (size_t I = 0; I < W.size(); ++I) {
    net::CompileFrame F;
    F.RequestId = I + 1;
    F.NumVars = W[I].Vars;
    F.Index = W[I].Index;
    F.Gamma = W[I].Gamma;
    F.Beta = W[I].Beta;
    // An injected kill drops the connection mid-request; reconnect and
    // resubmit (the request is idempotent) a bounded number of times.
    bool Done = false;
    for (int Attempt = 0; Attempt < 10 && !Done; ++Attempt) {
      if (!Client.connected() && Client.connect())
        continue;
      Expected<net::ResultFrame> R = Client.compileSync(F);
      if (!R)
        continue; // transport fault: reconnect on the next attempt
      check(R->Code == net::ResponseCode::Ok,
            "response is Ok for a feasible request");
      if (R->Code == net::ResponseCode::Ok) {
        check(R->Wqasm == Baseline[I],
              "served wQASM byte-identical to direct compile");
        if (R->Wqasm == Baseline[I])
          ++Verified;
      }
      Done = true;
    }
    check(Done, "request eventually served despite transport faults");
  }

  Server.requestStop();
  Loop.join();
  check(!RunStatus, "server drained cleanly");
  std::printf("net: %zu/%zu responses verified byte-identical\n", Verified,
              W.size());
  return 0;
}

const char *Usage =
    "usage: chaos_sweep --seed S [--family disk|crash|hang|net] "
    "[--dir PATH] [--verify]\n";

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Seed = 1;
  std::string Family;
  std::string Dir = ".";
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--seed") {
      Expected<long long> V = parseInt(Next(), 0, (1LL << 62));
      if (!V) {
        std::fprintf(stderr, "error: --seed: %s\n%s", V.message().c_str(),
                     Usage);
        return 1;
      }
      Seed = static_cast<uint64_t>(*V);
    } else if (Arg == "--family")
      Family = Next();
    else if (Arg == "--dir")
      Dir = Next();
    else if (Arg == "--verify")
      ; // verification is always on; accepted for driver symmetry
    else {
      std::fprintf(stderr, "%s", Usage);
      return Arg == "--help" ? 0 : 1;
    }
  }

  static const char *const Families[] = {"disk", "crash", "hang", "net"};
  if (Family.empty())
    Family = Families[Seed % 4];

  std::vector<Point> W = workload();
  std::printf("chaos seed=%llu family=%s jobs=%zu\n",
              static_cast<unsigned long long>(Seed), Family.c_str(),
              W.size());
  std::vector<std::string> Baseline = baselineWqasm(W);

  fault::resetGlobal(); // chaos schedules only; ignore ambient WEAVER_FAULTS
  int Rc;
  if (Family == "disk")
    Rc = runDisk(Seed, W, Dir);
  else if (Family == "crash")
    Rc = runCrash(Seed, W, Baseline);
  else if (Family == "hang")
    Rc = runHang(Seed, W, Baseline);
  else if (Family == "net")
    Rc = runNet(Seed, W, Baseline);
  else {
    std::fprintf(stderr, "error: unknown family '%s'\n%s", Family.c_str(),
                 Usage);
    return 1;
  }
  fault::resetGlobal();
  if (Rc != 0)
    return Rc;
  if (Failures) {
    std::printf("CHAOS FAIL seed %llu: %d invariant violation(s)\n",
                static_cast<unsigned long long>(Seed), Failures);
    return 1;
  }
  std::printf("CHAOS OK seed %llu\n", static_cast<unsigned long long>(Seed));
  return 0;
}
