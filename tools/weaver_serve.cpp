//===- tools/weaver_serve.cpp - Networked compile service daemon ----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Long-running TCP daemon for the compile service: binds net::Server on
/// a port (0 picks an ephemeral one), prints
///
///     listening on <address>:<port>
///
/// once ready (tools/load_gen and the subprocess tests parse this line),
/// and serves the frame protocol until SIGTERM/SIGINT. Termination runs
/// the graceful drain: stop accepting, GOING_AWAY to clients, finish or
/// deadline-cancel in-flight jobs inside --drain-budget seconds, flush
/// every pending result, and persist the --cache-file snapshot.
///
///     weaver_serve [--port N] [--bind ADDR] [--threads N] [--queue N]
///                  [--cache-file PATH] [--drain-budget SECONDS]
///                  [--max-connections N] [--max-inflight N]
///                  [--faults SPEC]
///
/// --faults (or the WEAVER_FAULTS environment variable) enables the
/// seeded fault injector, e.g. "seed=7,kill=0.02,partial=0.3,delay=0.2".
///
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace weaver;

namespace {

volatile std::sig_atomic_t StopFlag = 0;
void onSignal(int) { StopFlag = 1; }

} // namespace

int main(int Argc, char **Argv) {
  net::ServerOptions Options;
  Options.StopFlag = &StopFlag;
  std::string FaultSpec;
  if (const char *Env = std::getenv("WEAVER_FAULTS"))
    FaultSpec = Env;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--port")
      Options.Port = static_cast<uint16_t>(std::atoi(Next()));
    else if (Arg == "--bind")
      Options.BindAddress = Next();
    else if (Arg == "--threads")
      Options.Service.NumThreads = std::atoi(Next());
    else if (Arg == "--queue")
      Options.Service.QueueCapacity =
          static_cast<size_t>(std::atoll(Next()));
    else if (Arg == "--cache-file")
      Options.Service.CacheFile = Next();
    else if (Arg == "--drain-budget")
      Options.DrainBudgetSeconds = std::atof(Next());
    else if (Arg == "--max-connections")
      Options.MaxConnections = static_cast<size_t>(std::atoll(Next()));
    else if (Arg == "--max-inflight")
      Options.MaxInFlightPerConnection =
          static_cast<size_t>(std::atoll(Next()));
    else if (Arg == "--faults")
      FaultSpec = Next();
    else {
      std::fprintf(
          stderr,
          "usage: weaver_serve [--port N] [--bind ADDR] [--threads N] "
          "[--queue N] [--cache-file PATH] [--drain-budget SECONDS] "
          "[--max-connections N] [--max-inflight N] [--faults SPEC]\n");
      return Arg == "--help" ? 0 : 1;
    }
  }

  if (!FaultSpec.empty()) {
    auto Config = net::parseFaultConfig(FaultSpec);
    if (!Config) {
      std::fprintf(stderr, "error: %s\n", Config.message().c_str());
      return 1;
    }
    Options.Faults = *Config;
    if (Options.Faults.enabled())
      std::fprintf(stderr, "fault injection enabled: %s\n",
                   FaultSpec.c_str());
  }

  struct sigaction Sa = {};
  Sa.sa_handler = onSignal;
  sigemptyset(&Sa.sa_mask);
  Sa.sa_flags = 0; // no SA_RESTART: poll returns EINTR and sees the flag
  sigaction(SIGTERM, &Sa, nullptr);
  sigaction(SIGINT, &Sa, nullptr);

  net::Server Server(Options);
  if (Status S = Server.start()) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", Options.BindAddress.c_str(),
              static_cast<unsigned>(Server.port()));
  std::fflush(stdout);

  Status RunStatus = Server.run();

  net::TransportStats T = Server.transportStats();
  std::printf("drained: accepted=%llu frames_in=%llu results=%llu "
              "shed=%llu malformed=%llu slow_drops=%llu "
              "injected_kills=%llu\n",
              static_cast<unsigned long long>(T.Accepted),
              static_cast<unsigned long long>(T.FramesIn),
              static_cast<unsigned long long>(T.ResultsSent),
              static_cast<unsigned long long>(T.Shed),
              static_cast<unsigned long long>(T.MalformedFrames),
              static_cast<unsigned long long>(T.SlowClientDrops),
              static_cast<unsigned long long>(T.InjectedKills));
  std::printf("%s", Server.service().statsTable().render().c_str());
  std::fflush(stdout);
  if (RunStatus) {
    std::fprintf(stderr, "error: %s\n", RunStatus.message().c_str());
    return 1;
  }
  return 0;
}
