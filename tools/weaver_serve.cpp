//===- tools/weaver_serve.cpp - Networked compile service daemon ----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Long-running TCP daemon for the compile service: binds net::Server on
/// a port (0 picks an ephemeral one), prints
///
///     listening on <address>:<port>
///
/// once ready (tools/load_gen and the subprocess tests parse this line),
/// and serves the frame protocol until SIGTERM/SIGINT. Termination runs
/// the graceful drain: stop accepting, GOING_AWAY to clients, finish or
/// deadline-cancel in-flight jobs inside --drain-budget seconds, flush
/// every pending result, and persist the --cache-file snapshot.
///
///     weaver_serve [--port N] [--bind ADDR] [--threads N] [--queue N]
///                  [--cache-file PATH] [--drain-budget SECONDS]
///                  [--max-connections N] [--max-inflight N]
///                  [--faults SPEC]
///
/// --faults (or the WEAVER_FAULTS environment variable) enables the
/// seeded fault injector, e.g. "seed=7,kill=0.02,partial=0.3,delay=0.2".
///
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "support/StringUtils.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace weaver;

namespace {

volatile std::sig_atomic_t StopFlag = 0;
void onSignal(int) { StopFlag = 1; }

const char *Usage =
    "usage: weaver_serve [--port N] [--bind ADDR] [--threads N] "
    "[--queue N] [--cache-file PATH] [--drain-budget SECONDS] "
    "[--max-connections N] [--max-inflight N] [--faults SPEC]\n";

/// Parses an argv flag value as a range-checked integer; a malformed or
/// out-of-range value is a hard usage error, never a silent zero.
long long argInt(const std::string &Flag, const char *Text, long long Min,
                 long long Max) {
  Expected<long long> V = parseInt(Text, Min, Max);
  if (!V) {
    std::fprintf(stderr, "error: %s: %s\n%s", Flag.c_str(),
                 V.message().c_str(), Usage);
    std::exit(1);
  }
  return *V;
}

/// The double-typed sibling of argInt, for --drain-budget.
double argDouble(const std::string &Flag, const char *Text, double Min,
                 double Max) {
  Expected<double> V = parseDouble(Text, Min, Max);
  if (!V) {
    std::fprintf(stderr, "error: %s: %s\n%s", Flag.c_str(),
                 V.message().c_str(), Usage);
    std::exit(1);
  }
  return *V;
}

} // namespace

int main(int Argc, char **Argv) {
  net::ServerOptions Options;
  Options.StopFlag = &StopFlag;
  std::string FaultSpec;
  if (const char *Env = std::getenv("WEAVER_FAULTS"))
    FaultSpec = Env;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--port")
      // 0 binds an ephemeral port (the subprocess tests rely on it).
      Options.Port = static_cast<uint16_t>(argInt(Arg, Next(), 0, 65535));
    else if (Arg == "--bind")
      Options.BindAddress = Next();
    else if (Arg == "--threads")
      // 0 selects hardware concurrency (the ServiceOptions default).
      Options.Service.NumThreads =
          static_cast<int>(argInt(Arg, Next(), 0, 512));
    else if (Arg == "--queue")
      Options.Service.QueueCapacity =
          static_cast<size_t>(argInt(Arg, Next(), 1, 1048576));
    else if (Arg == "--cache-file")
      Options.Service.CacheFile = Next();
    else if (Arg == "--drain-budget")
      Options.DrainBudgetSeconds = argDouble(Arg, Next(), 0.0, 3600.0);
    else if (Arg == "--max-connections")
      Options.MaxConnections =
          static_cast<size_t>(argInt(Arg, Next(), 1, 65536));
    else if (Arg == "--max-inflight")
      Options.MaxInFlightPerConnection =
          static_cast<size_t>(argInt(Arg, Next(), 1, 65536));
    else if (Arg == "--faults")
      FaultSpec = Next();
    else {
      std::fprintf(stderr, "%s", Usage);
      return Arg == "--help" ? 0 : 1;
    }
  }

  if (!FaultSpec.empty()) {
    auto Config = net::parseFaultConfig(FaultSpec);
    if (!Config) {
      std::fprintf(stderr, "error: %s\n", Config.message().c_str());
      return 1;
    }
    Options.Faults = *Config;
    if (Options.Faults.enabled())
      std::fprintf(stderr, "fault injection enabled: %s\n",
                   FaultSpec.c_str());
  }

  struct sigaction Sa = {};
  Sa.sa_handler = onSignal;
  sigemptyset(&Sa.sa_mask);
  Sa.sa_flags = 0; // no SA_RESTART: poll returns EINTR and sees the flag
  sigaction(SIGTERM, &Sa, nullptr);
  sigaction(SIGINT, &Sa, nullptr);

  net::Server Server(Options);
  if (Status S = Server.start()) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", Options.BindAddress.c_str(),
              static_cast<unsigned>(Server.port()));
  std::fflush(stdout);

  Status RunStatus = Server.run();

  net::TransportStats T = Server.transportStats();
  std::printf("drained: accepted=%llu frames_in=%llu results=%llu "
              "shed=%llu malformed=%llu slow_drops=%llu "
              "injected_kills=%llu\n",
              static_cast<unsigned long long>(T.Accepted),
              static_cast<unsigned long long>(T.FramesIn),
              static_cast<unsigned long long>(T.ResultsSent),
              static_cast<unsigned long long>(T.Shed),
              static_cast<unsigned long long>(T.MalformedFrames),
              static_cast<unsigned long long>(T.SlowClientDrops),
              static_cast<unsigned long long>(T.InjectedKills));
  std::printf("%s", Server.service().statsTable().render().c_str());
  std::fflush(stdout);
  if (RunStatus) {
    std::fprintf(stderr, "error: %s\n", RunStatus.message().c_str());
    return 1;
  }
  return 0;
}
