//===- tools/oq2_fuzz.cpp - OpenQASM 2 front-end fuzz smoke ---------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fuzz smoke for the oq2 front end, runnable in CI under
/// the sanitizers: every corpus file must behave as its directory
/// promises (good/ parses, bad/ rejects with a diagnostic), and N seeded
/// random byte-mutations of each good file must never crash the
/// parse -> lower -> recover pipeline — rejecting is fine, dying is not.
/// Exit status 0 means the contract held.
///
//===----------------------------------------------------------------------===//

#include "oq2/Frontend.h"
#include "oq2/QaoaRecover.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

using namespace weaver;

namespace {

const char *Usage =
    "usage: oq2_fuzz [--corpus DIR] [--mutations N] [--seed S]\n"
    "  --corpus DIR   corpus root with good/ and bad/ (default: the\n"
    "                 checked-in tests/data/oq2)\n"
    "  --mutations N  random byte-mutations per good file (default 200)\n"
    "  --seed S       PRNG seed (default 1)\n";

long long argInt(const std::string &Flag, const char *Text, long long Min,
                 long long Max) {
  Expected<long long> V = parseInt(Text, Min, Max);
  if (!V) {
    std::fprintf(stderr, "error: %s: %s\n%s", Flag.c_str(),
                 V.message().c_str(), Usage);
    std::exit(1);
  }
  return *V;
}

std::vector<std::string> listFiles(const std::string &Dir) {
  std::vector<std::string> Files;
  std::error_code Ec;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir, Ec))
    if (Entry.is_regular_file())
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

/// Runs the whole front end on one input; the return value only says
/// whether it was accepted — any outcome other than a crash is in
/// contract for mutated inputs.
bool pipelineAccepts(const std::string &Source) {
  Expected<circuit::Circuit> C = oq2::parseOq2(Source, "fuzz");
  if (!C)
    return false;
  // Recovery and export must also hold up on whatever parsed.
  (void)oq2::recoverQaoa(*C);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Corpus = std::string(WEAVER_GOLDEN_DIR) + "/oq2";
  long long Mutations = 200;
  unsigned long long Seed = 1;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--corpus")
      Corpus = Next();
    else if (Arg == "--mutations")
      Mutations = argInt(Arg, Next(), 0, 1000000);
    else if (Arg == "--seed")
      Seed = static_cast<unsigned long long>(
          argInt(Arg, Next(), 0, (1LL << 62)));
    else {
      std::fprintf(stderr, "%s", Usage);
      return Arg == "--help" ? 0 : 1;
    }
  }

  int Failures = 0;
  size_t GoodCount = 0, BadCount = 0, Mutants = 0, MutantsAccepted = 0;

  for (const std::string &Path : listFiles(Corpus + "/bad")) {
    Expected<circuit::Circuit> C = oq2::parseOq2File(Path);
    if (C.ok() || C.message().empty()) {
      std::fprintf(stderr, "FAIL: hostile file accepted: %s\n", Path.c_str());
      ++Failures;
    }
    ++BadCount;
  }

  std::mt19937_64 Rng(Seed);
  for (const std::string &Path : listFiles(Corpus + "/good")) {
    std::ifstream In(Path, std::ios::binary);
    std::string Source((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
    if (!pipelineAccepts(Source)) {
      Expected<circuit::Circuit> C = oq2::parseOq2(Source, Path);
      std::fprintf(stderr, "FAIL: good file rejected: %s: %s\n", Path.c_str(),
                   C.message().c_str());
      ++Failures;
    }
    ++GoodCount;
    if (Source.empty())
      continue;
    for (long long M = 0; M < Mutations; ++M) {
      std::string Mutant = Source;
      // 1-4 byte flips: close enough to valid that the mutant reaches
      // deep into parsing and lowering, unlike pure random bytes.
      int Flips = 1 + static_cast<int>(Rng() % 4);
      for (int F = 0; F < Flips; ++F)
        Mutant[Rng() % Mutant.size()] = static_cast<char>(Rng() & 0xff);
      MutantsAccepted += pipelineAccepts(Mutant) ? 1 : 0;
      ++Mutants;
    }
  }

  std::printf("oq2_fuzz: %zu bad, %zu good, %zu mutants (%zu still valid), "
              "%d failure(s)\n",
              BadCount, GoodCount, Mutants, MutantsAccepted, Failures);
  if (GoodCount == 0 || BadCount == 0) {
    std::fprintf(stderr, "error: corpus at '%s' is missing good/ or bad/\n",
                 Corpus.c_str());
    return 1;
  }
  return Failures == 0 ? 0 : 1;
}
