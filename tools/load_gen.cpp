//===- tools/load_gen.cpp - Concurrent load generator for weaver_serve ----===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Drives a weaver_serve instance with many concurrent pipelined compile
/// requests and reports latency percentiles, throughput, and response-
/// code counts. With --verify, every OK response's wQASM is compared
/// byte-for-byte against a direct in-process compile of the same request
/// — the transport must never change compiler output, fault injection or
/// not.
///
///     load_gen --port N [--host ADDR] [--connections N] [--inflight N]
///              [--requests N] [--mix 20,50,75] [--deadline-ms N]
///              [--seed N] [--verify] [--expect-drain] [--json PATH]
///
/// Concurrency = connections * inflight requests pipelined per
/// connection; the default 16 x 64 sustains ~1000 in flight. Responses
/// shed with RETRYING_LATER are resubmitted after the server's suggested
/// backoff. A lost connection (e.g. the server's fault injector killed
/// it) is reconnected with backoff and its pending requests resubmitted,
/// so a fault-injection run still completes every request. With
/// --expect-drain the server is allowed to go away mid-test (SIGTERM
/// drain): the tool reports what resolved and exits 0. The process exits
/// non-zero on an unexpected transport error or any byte-identity
/// violation.
///
//===----------------------------------------------------------------------===//

#include "baselines/Backend.h"
#include "net/Client.h"
#include "sat/Generator.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <poll.h>
#include <string>
#include <vector>

using namespace weaver;

namespace {

using Clock = std::chrono::steady_clock;

struct GenConfig {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  size_t Connections = 16;
  size_t InFlightPerConnection = 64;
  size_t TotalRequests = 2000;
  std::vector<int> Mix = {20, 50, 75};
  uint32_t DeadlineMs = 0;
  uint64_t Seed = 1;
  bool Verify = false;
  /// The server may drain away mid-test; partial completion is success.
  bool ExpectDrain = false;
  std::string JsonPath;
};

/// One request cycling through the SATLIB mix. Small index range so the
/// server's PassCache sees realistic template reuse.
net::CompileFrame makeRequest(const GenConfig &Config, uint64_t Sequence,
                              uint64_t RequestId) {
  net::CompileFrame F;
  F.RequestId = RequestId;
  F.NumVars = Config.Mix[Sequence % Config.Mix.size()];
  F.Index = 1 + static_cast<int32_t>((Sequence / Config.Mix.size()) % 20);
  F.DeadlineMs = Config.DeadlineMs;
  return F;
}

struct PendingRequest {
  uint64_t Sequence = 0;
  Clock::time_point SentAt;
};

struct ConnState {
  std::unique_ptr<net::Client> Client;
  std::map<uint64_t, PendingRequest> Pending; ///< request id -> send info
  uint64_t NextRequestId = 1;
};

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * (Sorted.size() - 1));
  return Sorted[Idx];
}

const char *Usage =
    "usage: load_gen --port N [--host ADDR] "
    "[--connections N] [--inflight N] [--requests N] "
    "[--mix 20,50,75] [--deadline-ms N] [--seed N] "
    "[--verify] [--expect-drain] [--json PATH]\n";

/// Parses an argv flag value as a range-checked integer; a malformed or
/// out-of-range value is a hard usage error, never a silent zero.
long long argInt(const std::string &Flag, const char *Text, long long Min,
                 long long Max) {
  Expected<long long> V = parseInt(Text, Min, Max);
  if (!V) {
    std::fprintf(stderr, "error: %s: %s\n%s", Flag.c_str(),
                 V.message().c_str(), Usage);
    std::exit(1);
  }
  return *V;
}

} // namespace

int main(int Argc, char **Argv) {
  GenConfig Config;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--port")
      Config.Port = static_cast<uint16_t>(argInt(Arg, Next(), 1, 65535));
    else if (Arg == "--host")
      Config.Host = Next();
    else if (Arg == "--connections")
      Config.Connections =
          static_cast<size_t>(argInt(Arg, Next(), 1, 4096));
    else if (Arg == "--inflight")
      Config.InFlightPerConnection =
          static_cast<size_t>(argInt(Arg, Next(), 1, 65536));
    else if (Arg == "--requests")
      Config.TotalRequests =
          static_cast<size_t>(argInt(Arg, Next(), 1, 100000000));
    else if (Arg == "--mix") {
      // A typo'd mix must fail loudly: a silently-zero entry would skew
      // every latency number the tool exists to measure.
      Config.Mix.clear();
      std::string MixSpec = Next();
      for (std::string_view Tok : split(MixSpec, ',', /*KeepEmpty=*/true))
        Config.Mix.push_back(
            static_cast<int>(argInt("--mix entry", std::string(Tok).c_str(),
                                    1, 1000)));
      if (Config.Mix.empty()) {
        std::fprintf(stderr, "error: --mix: empty size list\n%s", Usage);
        return 1;
      }
    } else if (Arg == "--deadline-ms")
      Config.DeadlineMs =
          static_cast<uint32_t>(argInt(Arg, Next(), 0, 3600000));
    else if (Arg == "--seed")
      Config.Seed =
          static_cast<uint64_t>(argInt(Arg, Next(), 0, (1LL << 62)));
    else if (Arg == "--verify")
      Config.Verify = true;
    else if (Arg == "--expect-drain")
      Config.ExpectDrain = true;
    else if (Arg == "--json")
      Config.JsonPath = Next();
    else {
      std::fprintf(stderr, "%s", Usage);
      return Arg == "--help" ? 0 : 1;
    }
  }
  if (Config.Port == 0) {
    std::fprintf(stderr, "error: --port is required\n");
    return 1;
  }

  // Direct-compile references for --verify, computed lazily per distinct
  // (nvars, index) since the QAOA parameters never vary here.
  std::unique_ptr<baselines::Backend> Direct =
      baselines::createBackend(baselines::BackendKind::Weaver);
  std::map<std::pair<int, int>, std::string> References;
  auto referenceFor = [&](const net::CompileFrame &F) -> const std::string & {
    auto Key = std::make_pair(F.NumVars, F.Index);
    auto It = References.find(Key);
    if (It == References.end()) {
      qaoa::QaoaParams Qaoa;
      Qaoa.Gamma = F.Gamma;
      Qaoa.Beta = F.Beta;
      Qaoa.Layers = F.Layers;
      baselines::CompileOutput Ref = Direct->compileFull(
          sat::satlibInstance(F.NumVars, F.Index), Qaoa);
      It = References.emplace(Key, std::move(Ref.Wqasm)).first;
    }
    return It->second;
  };

  // -- Connect -------------------------------------------------------------
  std::vector<ConnState> Conns(Config.Connections);
  for (size_t I = 0; I < Conns.size(); ++I) {
    net::ClientOptions CO;
    CO.Host = Config.Host;
    CO.Port = Config.Port;
    CO.Seed = Config.Seed * 1000003 + I;
    Conns[I].Client = std::make_unique<net::Client>(CO);
    if (Status S = Conns[I].Client->connect()) {
      std::fprintf(stderr, "error: connection %zu: %s\n", I,
                   S.message().c_str());
      return 1;
    }
  }

  // -- Drive ---------------------------------------------------------------
  uint64_t NextSequence = 0;
  std::vector<uint64_t> Resubmit; ///< sequences shed with RETRYING_LATER
  size_t Outstanding = 0, Done = 0;
  size_t OkCount = 0, FailedCount = 0, CancelledCount = 0, DeadlineCount = 0,
         ShedCount = 0, GoingAwayCount = 0, VerifyChecked = 0,
         VerifyMismatches = 0, ConnectionLosses = 0;
  uint64_t PeakInFlight = 0;
  std::vector<double> LatenciesMs;
  LatenciesMs.reserve(Config.TotalRequests);
  Xoshiro256 Rng(Config.Seed);
  Clock::time_point Start = Clock::now();

  auto issuedAll = [&]() {
    return NextSequence >= Config.TotalRequests && Resubmit.empty();
  };

  // A lost connection returns its pending work to the resubmit queue and
  // reconnects (jittered backoff inside Client::connect). During an
  // expected drain the reconnect is skipped: the server is leaving.
  // Returns false when the loss is fatal to the whole run.
  auto recoverConnection = [&](ConnState &Conn) {
    ++ConnectionLosses;
    for (auto &Entry : Conn.Pending) {
      Resubmit.push_back(Entry.second.Sequence);
      --Outstanding;
    }
    Conn.Pending.clear();
    Conn.Client->close();
    if (Config.ExpectDrain)
      return true; // stay down; the drain check below ends the run
    if (Status S = Conn.Client->connect()) {
      std::fprintf(stderr, "error: reconnect failed: %s\n",
                   S.message().c_str());
      return false;
    }
    return true;
  };
  bool DrainedAway = false;

  while (Done < Config.TotalRequests) {
    // Top every connection up to its pipelined in-flight target.
    for (ConnState &Conn : Conns) {
      while (Conn.Client->connected() &&
             Conn.Pending.size() < Config.InFlightPerConnection &&
             !issuedAll()) {
        uint64_t Sequence;
        if (!Resubmit.empty()) {
          Sequence = Resubmit.back();
          Resubmit.pop_back();
        } else if (NextSequence < Config.TotalRequests) {
          Sequence = NextSequence++;
        } else {
          break;
        }
        uint64_t RequestId = Conn.NextRequestId++;
        net::CompileFrame F = makeRequest(Config, Sequence, RequestId);
        if (Status S = Conn.Client->sendBytes(net::encodeCompile(F))) {
          Resubmit.push_back(Sequence);
          if (!recoverConnection(Conn))
            return 1;
          break;
        }
        Conn.Pending[RequestId] = {Sequence, Clock::now()};
        ++Outstanding;
      }
    }
    PeakInFlight = std::max(PeakInFlight, static_cast<uint64_t>(Outstanding));

    // Wait for any socket to become readable.
    std::vector<pollfd> Fds;
    for (ConnState &Conn : Conns)
      if (Conn.Client->connected())
        Fds.push_back({Conn.Client->fd(), POLLIN, 0});
    if (Fds.empty()) {
      if (Config.ExpectDrain) {
        DrainedAway = true;
        break; // the server went away, as the caller said it would
      }
      std::fprintf(stderr, "error: all connections lost with %zu/%zu done\n",
                   Done, Config.TotalRequests);
      return 1;
    }
    ::poll(Fds.data(), static_cast<nfds_t>(Fds.size()), 200);

    // Drain every complete frame from every connection.
    for (ConnState &Conn : Conns) {
      if (!Conn.Client->connected())
        continue;
      net::Frame F;
      while (Conn.Client->tryReadFrame(F)) {
        if (F.Type != net::FrameType::Result)
          continue; // pongs / going-away notices
        auto R = net::decodeResult(F.Payload);
        if (!R) {
          std::fprintf(stderr, "error: bad result frame: %s\n",
                       R.message().c_str());
          return 1;
        }
        auto It = Conn.Pending.find(R->RequestId);
        if (It == Conn.Pending.end())
          continue;
        PendingRequest Sent = It->second;
        Conn.Pending.erase(It);
        --Outstanding;
        if (R->Code == net::ResponseCode::RetryLater) {
          ++ShedCount;
          Resubmit.push_back(Sent.Sequence);
          continue;
        }
        double Ms = std::chrono::duration<double>(Clock::now() - Sent.SentAt)
                        .count() *
                    1e3;
        LatenciesMs.push_back(Ms);
        ++Done;
        switch (R->Code) {
        case net::ResponseCode::Ok: {
          ++OkCount;
          if (Config.Verify) {
            net::CompileFrame Req = makeRequest(Config, Sent.Sequence, 0);
            ++VerifyChecked;
            if (R->Wqasm != referenceFor(Req)) {
              ++VerifyMismatches;
              std::fprintf(stderr,
                           "error: wQASM mismatch for uf%d-%d (seq %llu)\n",
                           Req.NumVars, Req.Index,
                           static_cast<unsigned long long>(Sent.Sequence));
            }
          }
          break;
        }
        case net::ResponseCode::DeadlineExceeded:
          ++DeadlineCount;
          break;
        case net::ResponseCode::Cancelled:
          ++CancelledCount;
          break;
        case net::ResponseCode::GoingAway:
          ++GoingAwayCount;
          break;
        default:
          ++FailedCount;
          std::fprintf(stderr, "request failed: %s\n",
                       R->Diagnostic.c_str());
          break;
        }
      }
      // tryReadFrame closes the client on EOF/error; recover it.
      if (!Conn.Client->connected() && !recoverConnection(Conn))
        return 1;
    }
  }
  double WallSeconds =
      std::chrono::duration<double>(Clock::now() - Start).count();

  // -- Report --------------------------------------------------------------
  std::sort(LatenciesMs.begin(), LatenciesMs.end());
  double P50 = percentile(LatenciesMs, 0.50);
  double P95 = percentile(LatenciesMs, 0.95);
  double P99 = percentile(LatenciesMs, 0.99);
  std::printf("%zu requests in %.2f s (%.0f req/s), peak in-flight %llu\n",
              Done, WallSeconds, Done / WallSeconds,
              static_cast<unsigned long long>(PeakInFlight));
  std::printf("latency ms: p50=%.2f p95=%.2f p99=%.2f max=%.2f\n", P50, P95,
              P99, LatenciesMs.empty() ? 0 : LatenciesMs.back());
  std::printf("codes: ok=%zu deadline=%zu cancelled=%zu going_away=%zu "
              "failed=%zu shed_retries=%zu conn_losses=%zu\n",
              OkCount, DeadlineCount, CancelledCount, GoingAwayCount,
              FailedCount, ShedCount, ConnectionLosses);
  if (DrainedAway)
    std::printf("server drained away with %zu/%zu requests resolved\n", Done,
                Config.TotalRequests);
  if (Config.Verify)
    std::printf("byte-identity: %zu/%zu identical%s\n",
                VerifyChecked - VerifyMismatches, VerifyChecked,
                VerifyMismatches ? "  [MISMATCH]" : "");

  if (!Config.JsonPath.empty()) {
    std::ofstream Out(Config.JsonPath);
    Out << "{\n"
        << "  \"requests\": " << Done << ",\n"
        << "  \"wall_seconds\": " << WallSeconds << ",\n"
        << "  \"requests_per_second\": " << (Done / WallSeconds) << ",\n"
        << "  \"peak_in_flight\": " << PeakInFlight << ",\n"
        << "  \"p50_ms\": " << P50 << ",\n"
        << "  \"p95_ms\": " << P95 << ",\n"
        << "  \"p99_ms\": " << P99 << ",\n"
        << "  \"ok\": " << OkCount << ",\n"
        << "  \"shed_retries\": " << ShedCount << ",\n"
        << "  \"verify_checked\": " << VerifyChecked << ",\n"
        << "  \"verify_mismatches\": " << VerifyMismatches << "\n"
        << "}\n";
  }

  if (VerifyMismatches > 0 || FailedCount > 0)
    return 1;
  return 0;
}
