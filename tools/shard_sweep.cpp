//===- tools/shard_sweep.cpp - Multi-process sharded SATLIB sweep ---------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Shards the SATLIB-style sweep suite across worker *processes* that
/// share one persisted PassCache — the multi-process half of the
/// persistent-cache design (see pipeline/PassCache.h).
///
/// Modes:
///
///  * Single process (default): sweeps every suite size, prints the
///    per-size table. With --cache-file PATH it warm-starts from the
///    snapshot and flushes the populated cache back.
///
///  * Driver (--shards N): forks N workers via /proc/self/exe, each
///    compiling the sizes with index % N == K. Workers write their table
///    rows as TSV and (with --cache-file) save a per-shard segment
///    `PATH.shard<K>`; the driver supervises them — reaping in completion
///    order (waitpid(-1)), reporting which shard failed and why, and
///    respawning a crashed worker on its shard (partial row/segment
///    output discarded first) up to a --retries budget — then reassembles
///    the rows in suite order — byte-identical to the 1-process table,
///    which is possible because the table carries only deterministic
///    columns — and compacts the segments into PATH with the tolerant
///    PassCache::mergeSnapshots (an unreadable segment is skipped with a
///    warning; its entries recompute as cold misses later). Timing goes
///    to stderr so stdout stays deterministic.
///
///  * Worker (--shards N --shard K): internal; spawned by the driver.
///
/// Flags:
///   --check        driver recomputes the table in-process with a fresh
///                  in-memory cache and fails unless the merged table is
///                  byte-identical.
///   --expect-warm  fail unless the sweep ran entirely from cache
///                  (0 program-tier misses, >0 hits) — CI uses this to
///                  pin the disk warm-start after a restart.
///   --instances N / --points P  suite weight per size (defaults 2 / 3).
///   --retries N    respawn budget per shard (default 2).
///   --faults SPEC  support::FaultInjection spec installed in every
///                  worker (and in single/worker mode, this process).
///   --crash-shard K  supervision self-test: worker K's first attempt is
///                  spawned with a one-shot `shard.worker.crash` schedule
///                  that SIGKILLs it mid-sweep; the respawn completes the
///                  shard and the run must still pass --check.
///
//===----------------------------------------------------------------------===//

#include "baselines/Backend.h"
#include "core/BatchCompiler.h"
#include "core/WeaverCompiler.h"
#include "core/pipeline/PassCache.h"
#include "sat/Generator.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace weaver;

namespace {

struct Config {
  int Shards = 0;   ///< 0: single-process; >0: sharded
  int Shard = -1;   ///< >=0: this process is worker K
  int Instances = 2;
  int Points = 3;
  int Retries = 2;     ///< respawn budget per shard
  int CrashShard = -1; ///< inject a one-shot worker crash into shard K
  std::string RowsOut;   ///< worker: TSV row sink (driver-supplied)
  std::string CacheFile; ///< persisted PassCache snapshot ("" = off)
  std::string FaultSpec; ///< fault::parseConfig spec for the workers
  bool Check = false;
  bool ExpectWarm = false;
};

/// Deterministic per-size table columns. No wall-clock column: timings
/// would differ run to run and break the byte-identity contract between
/// the sharded and the 1-process table.
const char *const Columns[] = {"size",       "clauses", "colours",
                               "pulses",     "exec [ms]", "EPS"};

/// One finished table row: suite position + rendered cells.
struct Row {
  size_t SizeIndex = 0;
  std::vector<std::string> Cells;
};

/// Sweeps the suite sizes whose index is in \p SizeIdx through the Weaver
/// pipeline at every (gamma, beta) point, all compiles sharing \p Cache
/// (may be null for a cold, cache-less run). Returns one row per size.
/// The aggregation mirrors examples/satlib_sweep so the numbers line up
/// across the demos.
bool computeRows(const Config &C, const std::vector<size_t> &SizeIdx,
                 core::pipeline::PassCache *Cache, std::vector<Row> &Rows) {
  core::WeaverOptions WOpt;
  WOpt.Cache = Cache;
  baselines::WeaverBackend Backend(WOpt);

  for (size_t S : SizeIdx) {
    int N = sat::SatlibSizes[S];
    // Simulated worker crash: die the way a real OOM-kill or segfault
    // would — no exit handlers, no partial-output cleanup. The driver's
    // supervisor must respawn the shard and discard whatever this
    // process managed to write.
    if (fault::fire("shard.worker.crash")) {
      std::fprintf(stderr, "injected crash before size N=%d\n", N);
      ::raise(SIGKILL);
    }
    std::vector<sat::CnfFormula> Batch;
    for (int I = 1; I <= C.Instances; ++I)
      Batch.push_back(sat::satlibInstance(N, I));

    std::vector<baselines::BaselineResult> Last;
    for (int P = 0; P < C.Points; ++P) {
      core::BatchOptions BOpt;
      BOpt.Qaoa.Gamma = 0.30 + 0.10 * P;
      BOpt.Qaoa.Beta = 0.20 + 0.05 * P;
      Last = core::BatchCompiler(Backend, BOpt).compileAll(Batch);
    }

    double Exec = 0, EpsLog = 0;
    size_t Pulses = 0;
    int Colors = 0;
    for (int I = 0; I < C.Instances; ++I) {
      const baselines::BaselineResult &R = Last[I];
      if (!R.usable()) {
        std::fprintf(stderr, "error at N=%d: %s\n", N,
                     R.Diagnostic.empty() ? "instance unsupported"
                                          : R.Diagnostic.c_str());
        return false;
      }
      Exec += R.ExecutionSeconds / C.Instances;
      EpsLog += std::log10(R.Eps) / C.Instances;
      Pulses += R.Pulses / C.Instances;
      Colors = std::max(Colors, R.Colors);
    }
    Row R;
    R.SizeIndex = S;
    R.Cells = {std::to_string(N), std::to_string(Batch[0].numClauses()),
               std::to_string(Colors), std::to_string(Pulses),
               formatf("%.2f", Exec * 1e3), formatf("1e%.1f", EpsLog)};
    Rows.push_back(std::move(R));
  }
  return true;
}

Table tableFromRows(std::vector<Row> Rows) {
  std::sort(Rows.begin(), Rows.end(),
            [](const Row &A, const Row &B) { return A.SizeIndex < B.SizeIndex; });
  Table T({Columns[0], Columns[1], Columns[2], Columns[3], Columns[4],
           Columns[5]});
  for (Row &R : Rows)
    T.addRow(std::move(R.Cells));
  return T;
}

std::vector<size_t> shardSizes(int Shards, int Shard) {
  std::vector<size_t> Idx;
  for (size_t S = 0; S < std::size(sat::SatlibSizes); ++S)
    if (Shards <= 1 || static_cast<int>(S % Shards) == Shard)
      Idx.push_back(S);
  return Idx;
}

std::string segmentPath(const std::string &CacheFile, int Shard) {
  return CacheFile + ".shard" + std::to_string(Shard);
}

/// Fails only on misses: an --expect-warm sweep must be served entirely
/// from the (disk-loaded) cache.
bool checkWarm(const core::pipeline::PassCache &Cache) {
  core::pipeline::PassCache::CacheStats CS = Cache.stats();
  if (CS.ProgramMisses == 0 && CS.ProgramHits > 0)
    return true;
  std::fprintf(stderr,
               "--expect-warm failed: program tier hits=%llu misses=%llu "
               "(expected all hits)\n",
               static_cast<unsigned long long>(CS.ProgramHits),
               static_cast<unsigned long long>(CS.ProgramMisses));
  return false;
}

// --- Worker ---------------------------------------------------------------

int runWorker(const Config &C) {
  core::pipeline::PassCache Cache;
  if (!C.CacheFile.empty())
    Cache.loadSnapshot(C.CacheFile); // missing/stale file = cold start

  std::vector<Row> Rows;
  if (!computeRows(C, shardSizes(C.Shards, C.Shard), &Cache, Rows))
    return 1;

  // Rows as TSV, one line per size: "<suite index>\t<cells...>".
  std::ofstream Out(C.RowsOut, std::ios::trunc);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", C.RowsOut.c_str());
    return 1;
  }
  for (const Row &R : Rows) {
    Out << R.SizeIndex;
    for (const std::string &Cell : R.Cells)
      Out << '\t' << Cell;
    Out << '\n';
  }
  Out.close();
  if (!Out) {
    std::fprintf(stderr, "error: short write to %s\n", C.RowsOut.c_str());
    return 1;
  }

  // The segment is the worker's whole cache (base snapshot + everything
  // this shard compiled), so a merge over segments alone already covers
  // the base file.
  if (!C.CacheFile.empty()) {
    Status S = Cache.saveSnapshot(segmentPath(C.CacheFile, C.Shard));
    if (S) {
      std::fprintf(stderr, "error: segment save failed: %s\n",
                   S.message().c_str());
      return 1;
    }
  }
  return 0;
}

// --- Driver ---------------------------------------------------------------

/// Human-readable cause of a worker's death, from its waitpid status.
std::string describeExit(int WStatus) {
  if (WIFEXITED(WStatus))
    return "exited with status " + std::to_string(WEXITSTATUS(WStatus));
  if (WIFSIGNALED(WStatus)) {
    int Sig = WTERMSIG(WStatus);
    const char *Name = strsignal(Sig);
    return "killed by signal " + std::to_string(Sig) +
           (Name ? std::string(" (") + Name + ")" : std::string());
  }
  return "stopped unexpectedly";
}

/// One supervised shard: which worker process currently owns it and how
/// many times it has been (re)spawned.
struct WorkerSlot {
  int Shard = 0;
  pid_t Pid = -1;
  int Attempts = 0;
  bool Done = false;
};

int runDriver(const Config &C, const char *Self) {
  auto Start = std::chrono::steady_clock::now();

  std::string RowsBase =
      C.RowsOut.empty()
          ? "shard_sweep_rows." + std::to_string(static_cast<long>(getpid()))
          : C.RowsOut;
  auto RowsPath = [&RowsBase](int Shard) {
    return RowsBase + "." + std::to_string(Shard);
  };

  // A crashed worker leaves partial output behind; everything a shard
  // wrote is discarded before its respawn (and stale leftovers from
  // previous runs before the first spawn) so only a worker that ran to
  // completion contributes rows or a segment.
  auto DiscardOutputs = [&](int Shard) {
    std::remove(RowsPath(Shard).c_str());
    if (!C.CacheFile.empty())
      std::remove(segmentPath(C.CacheFile, Shard).c_str());
  };

  // Spawns (or respawns) a worker on Slot's shard. The --crash-shard
  // self-test arms a one-shot SIGKILL schedule on the first attempt
  // only, so the respawn can prove the recovery path end to end.
  auto Spawn = [&](WorkerSlot &Slot) -> bool {
    DiscardOutputs(Slot.Shard);
    std::string Faults = C.FaultSpec;
    if (Slot.Shard == C.CrashShard && Slot.Attempts == 0)
      Faults += std::string(Faults.empty() ? "" : ";") +
                "shard.worker.crash:after=1,count=1";
    std::vector<std::string> Args = {
        Self,
        "--shards", std::to_string(C.Shards),
        "--shard", std::to_string(Slot.Shard),
        "--rows-out", RowsPath(Slot.Shard),
        "--instances", std::to_string(C.Instances),
        "--points", std::to_string(C.Points)};
    if (!C.CacheFile.empty()) {
      Args.push_back("--cache-file");
      Args.push_back(C.CacheFile);
    }
    if (!Faults.empty()) {
      Args.push_back("--faults");
      Args.push_back(Faults);
    }
    std::vector<char *> Argv;
    for (std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);

    pid_t Pid = fork();
    if (Pid < 0) {
      std::fprintf(stderr, "error: fork failed: %s\n", std::strerror(errno));
      return false;
    }
    if (Pid == 0) {
      execv(Self, Argv.data());
      std::fprintf(stderr, "error: exec failed: %s\n", std::strerror(errno));
      _exit(127);
    }
    Slot.Pid = Pid;
    ++Slot.Attempts;
    return true;
  };

  std::vector<WorkerSlot> Slots(C.Shards);
  for (int K = 0; K < C.Shards; ++K) {
    Slots[K].Shard = K;
    if (!Spawn(Slots[K]))
      return 1;
  }

  // Reap in completion order: waitpid(-1) returns whichever worker died
  // first, so a crashed shard 3 is respawned while shard 0 is still
  // compiling — no head-of-line blocking on the lowest pid.
  auto ReapAll = [&Slots]() {
    for (WorkerSlot &Slot : Slots)
      if (!Slot.Done && Slot.Pid > 0) {
        kill(Slot.Pid, SIGKILL);
        waitpid(Slot.Pid, nullptr, 0);
      }
  };
  int Remaining = C.Shards;
  while (Remaining > 0) {
    int WStatus = 0;
    pid_t Pid = waitpid(-1, &WStatus, 0);
    if (Pid < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "error: waitpid failed: %s\n",
                   std::strerror(errno));
      ReapAll();
      return 1;
    }
    auto It = std::find_if(Slots.begin(), Slots.end(), [Pid](
                               const WorkerSlot &S) { return S.Pid == Pid; });
    if (It == Slots.end())
      continue; // not ours (can't happen: the driver spawns nothing else)
    WorkerSlot &Slot = *It;
    Slot.Pid = -1;
    if (WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == 0) {
      Slot.Done = true;
      --Remaining;
      continue;
    }
    std::string Why = describeExit(WStatus);
    if (Slot.Attempts > C.Retries) {
      std::fprintf(stderr,
                   "error: shard %d %s; retry budget exhausted after %d "
                   "attempt(s)\n",
                   Slot.Shard, Why.c_str(), Slot.Attempts);
      ReapAll();
      return 1;
    }
    std::fprintf(stderr,
                 "warning: shard %d (pid %ld) %s; respawning (attempt "
                 "%d/%d)\n",
                 Slot.Shard, static_cast<long>(Pid), Why.c_str(),
                 Slot.Attempts + 1, C.Retries + 1);
    if (!Spawn(Slot)) {
      ReapAll();
      return 1;
    }
  }

  // Reassemble the rows in suite order.
  std::vector<Row> Rows;
  for (int K = 0; K < C.Shards; ++K) {
    std::string Path = RowsBase + "." + std::to_string(K);
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: missing worker rows %s\n", Path.c_str());
      return 1;
    }
    std::string Line;
    while (std::getline(In, Line)) {
      std::istringstream LS(Line);
      std::string Cell;
      Row R;
      if (!std::getline(LS, Cell, '\t'))
        continue;
      R.SizeIndex = static_cast<size_t>(std::stoull(Cell));
      while (std::getline(LS, Cell, '\t'))
        R.Cells.push_back(Cell);
      if (R.Cells.size() != std::size(Columns)) {
        std::fprintf(stderr, "error: malformed row in %s\n", Path.c_str());
        return 1;
      }
      Rows.push_back(std::move(R));
    }
    In.close();
    std::remove(Path.c_str());
  }
  Table Merged = tableFromRows(std::move(Rows));
  std::string Rendered = Merged.render();

  // Compact the per-shard segments into the shared snapshot. Every
  // segment already contains the base entries (workers load the base
  // first), so merging the segments alone is complete; first-input-wins
  // keeps the result deterministic. The tolerant merge skips a segment
  // that is missing or unreadable (a crash window the atomic save cannot
  // close: the worker died after its rows landed but before its segment)
  // — the skipped shard's entries just recompute as cold misses on the
  // next warm start, and the table (built from the TSV rows, not the
  // cache) is unaffected.
  if (!C.CacheFile.empty()) {
    std::vector<std::string> Segments;
    for (int K = 0; K < C.Shards; ++K)
      Segments.push_back(segmentPath(C.CacheFile, K));
    std::vector<std::string> Skipped;
    Status S = core::pipeline::PassCache::mergeSnapshots(
        Segments, C.CacheFile, &Skipped);
    for (const std::string &Skip : Skipped)
      std::fprintf(stderr, "warning: segment skipped: %s\n", Skip.c_str());
    if (S) {
      std::fprintf(stderr, "error: segment merge failed: %s\n",
                   S.message().c_str());
      return 1;
    }
    for (const std::string &Seg : Segments)
      std::remove(Seg.c_str());
  }

  if (C.Check) {
    // The reference: same suite, one process, fresh in-memory cache.
    std::vector<Row> RefRows;
    core::pipeline::PassCache RefCache;
    if (!computeRows(C, shardSizes(1, 0), &RefCache, RefRows))
      return 1;
    std::string Reference = tableFromRows(std::move(RefRows)).render();
    if (Reference != Rendered) {
      std::fprintf(stderr,
                   "--check failed: %d-shard table differs from the "
                   "1-process table\n--- sharded ---\n%s--- reference "
                   "---\n%s",
                   C.Shards, Rendered.c_str(), Reference.c_str());
      return 1;
    }
    std::fprintf(stderr, "--check passed: %d-shard table byte-identical "
                 "to the 1-process run\n", C.Shards);
  }

  std::printf("%s", Rendered.c_str());
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  std::fprintf(stderr, "sharded sweep: %d workers, wall %.2f s%s\n",
               C.Shards, Wall,
               C.CacheFile.empty() ? "" : ", segments compacted");
  return 0;
}

// --- Single process -------------------------------------------------------

int runSingle(const Config &C) {
  auto Start = std::chrono::steady_clock::now();
  core::pipeline::PassCache Cache;
  size_t Loaded = 0;
  if (!C.CacheFile.empty())
    if (!Cache.loadSnapshot(C.CacheFile))
      Loaded = Cache.size();

  std::vector<Row> Rows;
  if (!computeRows(C, shardSizes(1, 0), &Cache, Rows))
    return 1;
  std::printf("%s", tableFromRows(std::move(Rows)).render().c_str());

  if (C.ExpectWarm && !checkWarm(Cache))
    return 1;

  if (!C.CacheFile.empty()) {
    Status S = Cache.saveSnapshot(C.CacheFile);
    if (S) {
      std::fprintf(stderr, "warning: cache flush failed: %s\n",
                   S.message().c_str());
    }
  }
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  core::pipeline::PassCache::CacheStats CS = Cache.stats();
  std::fprintf(stderr,
               "sweep: wall %.2f s; %zu entries loaded; program tier "
               "hits/misses %llu/%llu\n",
               Wall, Loaded, static_cast<unsigned long long>(CS.ProgramHits),
               static_cast<unsigned long long>(CS.ProgramMisses));
  return 0;
}

const char *Usage =
    "usage: shard_sweep [--shards N [--shard K]] "
    "[--cache-file PATH] [--instances N] [--points P] "
    "[--check] [--expect-warm] [--retries N] [--faults SPEC] "
    "[--crash-shard K]\n";

/// Parses an argv flag value as a range-checked integer; a malformed or
/// out-of-range value (negative shard counts, overflow, garbage) is a
/// hard usage error, never a silent zero.
long long argInt(const std::string &Flag, const char *Text, long long Min,
                 long long Max) {
  Expected<long long> V = parseInt(Text, Min, Max);
  if (!V) {
    std::fprintf(stderr, "error: %s: %s\n%s", Flag.c_str(),
                 V.message().c_str(), Usage);
    std::exit(1);
  }
  return *V;
}

} // namespace

int main(int Argc, char **Argv) {
  Config C;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--shards")
      C.Shards = static_cast<int>(argInt(Arg, Next(), 1, 256));
    else if (Arg == "--shard")
      C.Shard = static_cast<int>(argInt(Arg, Next(), 0, 255));
    else if (Arg == "--rows-out")
      C.RowsOut = Next();
    else if (Arg == "--cache-file")
      C.CacheFile = Next();
    else if (Arg == "--instances")
      C.Instances = static_cast<int>(argInt(Arg, Next(), 1, 10000));
    else if (Arg == "--points")
      C.Points = static_cast<int>(argInt(Arg, Next(), 1, 10000));
    else if (Arg == "--retries")
      C.Retries = static_cast<int>(argInt(Arg, Next(), 0, 100));
    else if (Arg == "--crash-shard")
      C.CrashShard = static_cast<int>(argInt(Arg, Next(), 0, 255));
    else if (Arg == "--faults")
      C.FaultSpec = Next();
    else if (Arg == "--check")
      C.Check = true;
    else if (Arg == "--expect-warm")
      C.ExpectWarm = true;
    else {
      std::fprintf(stderr, "%s", Usage);
      return Arg == "--help" ? 0 : 1;
    }
  }
  // Worker and single-process modes inject faults in this process; the
  // driver only forwards the spec (its own compiles — the --check
  // reference — must stay fault-free). Validate it up front either way
  // so a typo fails before any worker is forked.
  if (!C.FaultSpec.empty()) {
    Expected<fault::Config> FC = fault::parseConfig(C.FaultSpec);
    if (!FC) {
      std::fprintf(stderr, "error: --faults: %s\n", FC.message().c_str());
      return 1;
    }
    if (C.Shards <= 0 || C.Shard >= 0)
      fault::configureGlobal(FC.take());
  }
  if (C.Shard >= 0) {
    if (C.Shards < 1 || C.Shard >= C.Shards || C.RowsOut.empty()) {
      std::fprintf(stderr, "error: worker mode needs --shards N, "
                   "--shard K < N, and --rows-out\n");
      return 1;
    }
    return runWorker(C);
  }
  if (C.Shards > 0) {
    // /proc/self/exe survives argv[0] games and PATH lookups; fall back
    // to argv[0] on non-proc systems.
    char Self[4096];
    ssize_t Len = readlink("/proc/self/exe", Self, sizeof(Self) - 1);
    if (Len > 0)
      Self[Len] = '\0';
    return runDriver(C, Len > 0 ? Self : Argv[0]);
  }
  return runSingle(C);
}
