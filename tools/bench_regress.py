#!/usr/bin/env python3
"""Diff two directories of google-benchmark JSON counters.

Compares every benchmark (matched by file name + benchmark name) between a
current bench-smoke directory and a baseline (the previous CI run's
artifact, or the committed bench/baselines seed) and emits a GitHub
warning annotation for:

- every per-benchmark real-time slowdown beyond the threshold, and
- every deterministic user counter (pulse counts, emitted-annotation
  counts, wQASM bytes, ...) that grew beyond the threshold. Those
  counters are exact outputs of the compiler, so a counter regression is
  a real output-size regression, not timing noise. Timing-derived
  counters (latency percentiles like p99_ms, scheduling-dependent
  ratios) are excluded from the check — they are as noisy as real_time.

Exit code is always 0: smoke timings on shared CI runners are noisy, so
regressions warn-annotate rather than fail the build.

Usage:
  tools/bench_regress.py --current build/bench-smoke \
      --baseline prev-bench [--threshold 0.20]
"""

import argparse
import json
import os
import sys

# Keys of a google-benchmark JSON entry that are not user counters.
STANDARD_KEYS = {
    "name", "run_name", "run_type", "family_index", "per_family_instance_index",
    "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "aggregate_name", "aggregate_unit",
    "big_o", "rms", "label", "error_occurred", "error_message",
}

# Counters derived from wall-clock measurements or scheduling order
# (bench_service latency percentiles and throughput, coalescing ratios):
# run-over-run comparison of these is timing noise, so the growth check
# skips them. Deterministic byte/count counters (snapshot_bytes and
# materialized from bench_persist, pulse counts, wQASM bytes) stay
# checked: growth there is a real output regression.
NOISY_COUNTER_SUFFIXES = ("_ms", "_us", "_ns", "_sec")
NOISY_COUNTERS = {"coalesced", "items_per_second"}


def is_noisy_counter(name):
    return name in NOISY_COUNTERS or name.endswith(NOISY_COUNTER_SUFFIXES)


def load_benchmarks(path):
    """Returns {benchmark name: {metric: value}} for one JSON file.

    Every entry carries "real_time" plus one key per user counter.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"bench-regress: skipping unreadable {path}: {err}")
        return {}
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate/BigO rows; compare raw iterations only.
        if bench.get("run_type") and bench["run_type"] != "iteration":
            continue
        name = bench.get("name")
        if name is None:
            continue
        metrics = {}
        real = bench.get("real_time")
        if isinstance(real, (int, float)):
            metrics["real_time"] = float(real)
        for key, value in bench.items():
            if key not in STANDARD_KEYS and isinstance(value, (int, float)):
                metrics[key] = float(value)
        if metrics:
            out[name] = metrics
    return out


def collect(directory):
    """Returns {file name: {benchmark name: {metric: value}}}.

    Walks recursively: each bench-smoke test writes into its own
    subdirectory (so parallel ctest runs cannot collide on files), and
    downloaded artifacts may preserve that layout. File names stay unique
    across subdirectories (BENCH_<binary>.json), so the flat map is safe.
    """
    result = {}
    if not os.path.isdir(directory):
        return result
    for root, _dirs, files in os.walk(directory):
        for entry in sorted(files):
            if entry.startswith("BENCH_") and entry.endswith(".json"):
                result[entry] = load_benchmarks(os.path.join(root, entry))
    return result


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="directory with this run's BENCH_*.json")
    parser.add_argument("--baseline", required=True,
                        help="directory with the reference BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative slowdown/growth that triggers a "
                             "warning (default 0.20 = 20%%)")
    args = parser.parse_args()

    current = collect(args.current)
    baseline = collect(args.baseline)
    if not current:
        print(f"bench-regress: no BENCH_*.json under {args.current}; "
              "nothing to compare")
        return 0
    if not baseline:
        print(f"bench-regress: no baseline under {args.baseline}; "
              "skipping comparison")
        return 0

    # Benchmarks match primarily within the same-named file; a merged
    # name->metrics map covers baselines stored under a different file name
    # (e.g. the committed seeds under bench/baselines/).
    merged = {}
    for benches in baseline.values():
        merged.update(benches)

    compared = 0
    regressions = []
    for fname, benches in sorted(current.items()):
        base = baseline.get(fname, {})
        for name, metrics in sorted(benches.items()):
            ref_metrics = base.get(name)
            if ref_metrics is None:  # e.g. a benchmark added since the baseline
                ref_metrics = merged.get(name)
            if ref_metrics is None:
                print(f"bench-regress: no baseline for {name}; skipping")
                continue
            for metric, value in sorted(metrics.items()):
                if metric != "real_time" and is_noisy_counter(metric):
                    continue
                ref = ref_metrics.get(metric)
                if ref is None or ref <= 0:
                    continue
                compared += 1
                ratio = value / ref
                if ratio > 1.0 + args.threshold:
                    regressions.append((fname, name, metric, ref, value,
                                        ratio))

    for fname, name, metric, ref, value, ratio in regressions:
        # GitHub Actions warning annotation; plain text elsewhere.
        if metric == "real_time":
            print(f"::warning file={fname}::{name} slowed {ratio:.2f}x "
                  f"({ref / 1e6:.3f} ms -> {value / 1e6:.3f} ms)")
        else:
            print(f"::warning file={fname}::{name} counter '{metric}' grew "
                  f"{ratio:.2f}x ({ref:.0f} -> {value:.0f})")
    print(f"bench-regress: compared {compared} metrics, "
          f"{len(regressions)} beyond the {args.threshold:.0%} threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
