#!/usr/bin/env python3
"""Diff two directories of google-benchmark JSON counters.

Compares every benchmark (matched by file name + benchmark name) between a
current bench-smoke directory and a baseline (the previous CI run's
artifact, or the committed bench/baselines seed) and emits a GitHub
warning annotation for every per-benchmark slowdown beyond the threshold.

Exit code is always 0: smoke timings on shared CI runners are noisy, so
regressions warn-annotate rather than fail the build.

Usage:
  tools/bench_regress.py --current build/bench-smoke \
      --baseline prev-bench [--threshold 0.20]
"""

import argparse
import json
import os
import sys


def load_benchmarks(path):
    """Returns {benchmark name: real_time in ns} for one JSON file."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"bench-regress: skipping unreadable {path}: {err}")
        return {}
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate/BigO rows; compare raw iterations only.
        if bench.get("run_type") and bench["run_type"] != "iteration":
            continue
        name = bench.get("name")
        real = bench.get("real_time")
        if name is not None and isinstance(real, (int, float)):
            out[name] = float(real)
    return out


def collect(directory):
    """Returns {file name: {benchmark name: real_time}} for BENCH_*.json.

    Walks recursively: each bench-smoke test writes into its own
    subdirectory (so parallel ctest runs cannot collide on files), and
    downloaded artifacts may preserve that layout. File names stay unique
    across subdirectories (BENCH_<binary>.json), so the flat map is safe.
    """
    result = {}
    if not os.path.isdir(directory):
        return result
    for root, _dirs, files in os.walk(directory):
        for entry in sorted(files):
            if entry.startswith("BENCH_") and entry.endswith(".json"):
                result[entry] = load_benchmarks(os.path.join(root, entry))
    return result


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="directory with this run's BENCH_*.json")
    parser.add_argument("--baseline", required=True,
                        help="directory with the reference BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative slowdown that triggers a warning "
                             "(default 0.20 = 20%%)")
    args = parser.parse_args()

    current = collect(args.current)
    baseline = collect(args.baseline)
    if not current:
        print(f"bench-regress: no BENCH_*.json under {args.current}; "
              "nothing to compare")
        return 0
    if not baseline:
        print(f"bench-regress: no baseline under {args.baseline}; "
              "skipping comparison")
        return 0

    # Benchmarks match primarily within the same-named file; a merged
    # name->time map covers baselines stored under a different file name
    # (e.g. the committed BENCH_backhalf.json seed).
    merged = {}
    for benches in baseline.values():
        merged.update(benches)

    compared = 0
    slowdowns = []
    for fname, benches in sorted(current.items()):
        base = baseline.get(fname, {})
        for name, real in sorted(benches.items()):
            ref = base.get(name)
            if ref is None:  # e.g. a benchmark added since the baseline run
                ref = merged.get(name)
            if ref is None or ref <= 0:
                print(f"bench-regress: no baseline for {name}; skipping")
                continue
            compared += 1
            ratio = real / ref
            if ratio > 1.0 + args.threshold:
                slowdowns.append((fname, name, ref, real, ratio))

    for fname, name, ref, real, ratio in slowdowns:
        # GitHub Actions warning annotation; plain text elsewhere.
        print(f"::warning file={fname}::{name} slowed {ratio:.2f}x "
              f"({ref / 1e6:.3f} ms -> {real / 1e6:.3f} ms)")
    print(f"bench-regress: compared {compared} benchmarks, "
          f"{len(slowdowns)} beyond the {args.threshold:.0%} threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
