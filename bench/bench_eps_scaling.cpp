//===- bench/bench_eps_scaling.cpp - Fig. 12b: EPS vs. size ---------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 12b: EPS against the number of variables. All EPS
/// values decay exponentially with size; the separation between Weaver
/// and Atomique/superconducting widens by orders of magnitude at 150-250
/// variables (the paper's 1e8x claim at 150 variables).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace weaver;
using namespace weaver::bench;

namespace {

void printTable() {
  SuiteConfig Config;
  Config.RunGeyser = false;
  Table T({"variables", "superconducting", "atomique", "weaver", "dpqa",
           "weaver/atomique"});
  for (int N : sat::SatlibSizes) {
    std::vector<std::vector<double>> Vals(NumCompilers);
    bool Timeout[NumCompilers] = {};
    bool Unsupported[NumCompilers] = {};
    for (int I = 1; I <= 5; ++I) {
      InstanceResults R = runSuite(sat::satlibInstance(N, I), Config);
      for (int C = 0; C < NumCompilers; ++C) {
        Timeout[C] |= R.get(C).TimedOut;
        Unsupported[C] |= R.get(C).Unsupported;
        if (R.get(C).usable() && R.get(C).Eps > 0)
          Vals[C].push_back(R.get(C).Eps);
      }
    }
    auto Cell = [&](int C) {
      if (Timeout[C])
        return std::string("X");
      if (Unsupported[C])
        return std::string("-");
      return formatf("%.3g", geoMean(Vals[C]));
    };
    std::string Ratio = Vals[1].empty() || Vals[2].empty()
                            ? "-"
                            : formatf("%.3g", geoMean(Vals[2]) /
                                                  geoMean(Vals[1]));
    T.addRow({std::to_string(N), Cell(0), Cell(1), Cell(2), Cell(3), Ratio});
  }
  std::printf("== Fig. 12b: estimated probability of success vs. number of "
              "variables (mean of 5 instances) ==\n%s\n",
              T.render().c_str());
}

void BM_EpsAt150(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(150, 1);
  for (auto _ : State) {
    core::WeaverOptions Opt;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R->Stats.Eps);
  }
}
BENCHMARK(BM_EpsAt150);

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
