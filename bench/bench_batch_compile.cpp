//===- bench/bench_batch_compile.cpp - BatchCompiler throughput -----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Measures the BatchCompiler's multi-threaded speedup on a 16-formula
/// SATLIB-style batch (the production-scale direction of the ROADMAP:
/// batched compilation across a thread pool). Prints a wall-clock scaling
/// table, then runs the google-benchmark registrations.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/BatchCompiler.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

using namespace weaver;

namespace {

constexpr int BatchSize = 16;
constexpr int BatchVariables = 75;

std::vector<sat::CnfFormula> makeBatch() {
  std::vector<sat::CnfFormula> Batch;
  for (int I = 1; I <= BatchSize; ++I)
    Batch.push_back(sat::satlibInstance(BatchVariables, I));
  return Batch;
}

double timeBatch(const std::vector<sat::CnfFormula> &Batch, int Threads) {
  baselines::WeaverBackend Backend;
  core::BatchOptions Opt;
  Opt.NumThreads = Threads;
  core::BatchCompiler Compiler(Backend, Opt);
  auto Start = std::chrono::steady_clock::now();
  auto Results = Compiler.compileAll(Batch);
  benchmark::DoNotOptimize(Results);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

void printTable() {
  std::vector<sat::CnfFormula> Batch = makeBatch();
  unsigned MaxThreads =
      std::max(1u, std::thread::hardware_concurrency());
  double Baseline = timeBatch(Batch, 1);
  Table T({"threads", "wall [s]", "speedup"});
  for (unsigned N = 1; N <= MaxThreads; N *= 2) {
    double Wall = N == 1 ? Baseline : timeBatch(Batch, static_cast<int>(N));
    T.addRow({std::to_string(N), formatf("%.3f", Wall),
              formatf("%.2fx", Baseline / Wall)});
  }
  std::printf("== BatchCompiler: %d x uf%d instances, weaver backend ==\n%s\n",
              BatchSize, BatchVariables, T.render().c_str());
}

void BM_BatchCompile(benchmark::State &State) {
  std::vector<sat::CnfFormula> Batch = makeBatch();
  baselines::WeaverBackend Backend;
  core::BatchOptions Opt;
  Opt.NumThreads = static_cast<int>(State.range(0));
  core::BatchCompiler Compiler(Backend, Opt);
  for (auto _ : State) {
    auto Results = Compiler.compileAll(Batch);
    benchmark::DoNotOptimize(Results);
  }
  State.SetItemsProcessed(State.iterations() * BatchSize);
}
BENCHMARK(BM_BatchCompile)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
