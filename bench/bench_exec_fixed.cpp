//===- bench/bench_exec_fixed.cpp - Fig. 11a: execution time, uf20 --------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 11a: execution time (sum of pulse and shuttle
/// durations / scheduled duration) of every compiled program on the ten
/// 20-variable instances. Expected shape: superconducting is fastest (ns
/// gates), Geyser is the fastest FPQA result (no movement), Weaver beats
/// Atomique and DPQA by integer factors.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace weaver;
using namespace weaver::bench;

namespace {

void printTable() {
  SuiteConfig Config;
  Table T({"instance", "superconducting", "atomique", "weaver", "dpqa",
           "geyser"});
  std::vector<std::vector<double>> PerCompiler(NumCompilers);
  for (int I = 1; I <= 10; ++I) {
    sat::CnfFormula F = sat::satlibInstance(20, I);
    InstanceResults R = runSuite(F, Config);
    std::vector<std::string> Row{F.name()};
    for (int C = 0; C < NumCompilers; ++C) {
      const auto &B = R.get(C);
      Row.push_back(cell(B, B.ExecutionSeconds));
      if (B.usable())
        PerCompiler[C].push_back(B.ExecutionSeconds);
    }
    T.addRow(Row);
  }
  std::vector<std::string> Mean{"mean"};
  for (int C = 0; C < NumCompilers; ++C)
    Mean.push_back(PerCompiler[C].empty()
                       ? "X"
                       : formatf("%.4g", geoMean(PerCompiler[C])));
  T.addRow(Mean);
  std::printf("== Fig. 11a: execution time [seconds], fixed 20-variable "
              "suite ==\n%s\n",
              T.render().c_str());
  double WeaverMean = geoMean(PerCompiler[2]);
  for (int C : {1, 3})
    if (!PerCompiler[C].empty())
      std::printf("weaver execution speedup vs %s: %.1fx\n", compilerName(C),
                  geoMean(PerCompiler[C]) / WeaverMean);
  std::printf("\n");
}

void BM_WeaverEndToEndUf20(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(20, 1);
  for (auto _ : State) {
    core::WeaverOptions Opt;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_WeaverEndToEndUf20);

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
