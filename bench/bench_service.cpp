//===- bench/bench_service.cpp - CompileService throughput/latency --------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Measures the async CompileService end to end: job throughput and tail
/// latency (p50/p95/p99 from submit to resolution) across thread counts
/// and queue depths, plus the dedup fast path (identical in-flight
/// requests coalescing onto one compile). Prints a wall-clock table, then
/// runs the google-benchmark registrations (counters land in the
/// bench-smoke JSON for the CI regression diff).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/service/CompileService.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

using namespace weaver;
using namespace weaver::core;

namespace {

constexpr int JobsPerRound = 32;
constexpr int JobVariables = 20;

/// A round of distinct uf20 jobs (distinct so dedup cannot short-circuit
/// the throughput measurement).
std::vector<CompileRequest> makeRound() {
  std::vector<CompileRequest> Round;
  for (int I = 1; I <= JobsPerRound; ++I) {
    CompileRequest R;
    R.Formula = sat::satlibInstance(JobVariables, I);
    Round.push_back(std::move(R));
  }
  return Round;
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Index = static_cast<size_t>(P * (Sorted.size() - 1));
  return Sorted[Index];
}

/// Submits one round and returns the client-observed per-job latencies
/// (submit to resolution) in seconds. Completion is tracked through the
/// callbacks themselves (not handle waits): callbacks may fire after a
/// wait() returns, so the latch must be on the last callback.
std::vector<double> runRound(CompileService &Service,
                             const std::vector<CompileRequest> &Round) {
  std::mutex M;
  std::condition_variable AllDone;
  size_t Done = 0;
  std::vector<double> Latencies(Round.size(), 0);
  for (size_t I = 0; I < Round.size(); ++I) {
    auto Submitted = std::chrono::steady_clock::now();
    Service.submit(Round[I], [&, I, Submitted](const JobOutcome &) {
      double Latency = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - Submitted)
                           .count();
      std::lock_guard<std::mutex> Lock(M);
      Latencies[I] = Latency;
      if (++Done == Latencies.size())
        AllDone.notify_all();
    });
  }
  std::unique_lock<std::mutex> Lock(M);
  AllDone.wait(Lock, [&]() { return Done == Latencies.size(); });
  std::sort(Latencies.begin(), Latencies.end());
  return Latencies;
}

void BM_ServiceThroughput(benchmark::State &State) {
  ServiceOptions Opt;
  Opt.NumThreads = static_cast<int>(State.range(0));
  Opt.QueueCapacity = static_cast<size_t>(State.range(1));
  CompileService Service(Opt);
  // The PassCache has no effect across distinct formulas at one parameter
  // point beyond the first iteration's warm-up; leave it on, as a real
  // deployment would.
  std::vector<CompileRequest> Round = makeRound();
  std::vector<double> Last;
  for (auto _ : State)
    Last = runRound(Service, Round);
  State.SetItemsProcessed(State.iterations() * JobsPerRound);
  State.counters["p50_ms"] = percentile(Last, 0.50) * 1e3;
  State.counters["p95_ms"] = percentile(Last, 0.95) * 1e3;
  State.counters["p99_ms"] = percentile(Last, 0.99) * 1e3;
}
BENCHMARK(BM_ServiceThroughput)
    ->Args({1, 8})
    ->Args({1, 64})
    ->Args({2, 8})
    ->Args({2, 64})
    ->Args({4, 64})
    ->UseRealTime();

void BM_ServiceDedup(benchmark::State &State) {
  // All submissions in a wave are identical: one compiles, the rest
  // coalesce onto it — the service-side analogue of a cache hit.
  ServiceOptions Opt;
  Opt.NumThreads = 2;
  CompileService Service(Opt);
  CompileRequest R;
  R.Formula = sat::satlibInstance(JobVariables, 1);
  for (auto _ : State) {
    std::vector<CompileService::JobHandle> Handles;
    for (int I = 0; I < JobsPerRound; ++I)
      Handles.push_back(Service.submit(R));
    for (CompileService::JobHandle &H : Handles)
      H.wait();
  }
  State.SetItemsProcessed(State.iterations() * JobsPerRound);
  CompileService::ServiceStats S = Service.stats();
  State.counters["coalesced"] =
      static_cast<double>(S.Coalesced) / std::max<uint64_t>(1, S.Submitted);
}
BENCHMARK(BM_ServiceDedup)->UseRealTime();

void printTable() {
  std::vector<CompileRequest> Round = makeRound();
  Table T({"threads", "queue", "wall [s]", "jobs/s", "p50 [ms]", "p95 [ms]",
           "p99 [ms]"});
  for (int Threads : {1, 2, 4}) {
    for (size_t Depth : {size_t{8}, size_t{64}}) {
      ServiceOptions Opt;
      Opt.NumThreads = Threads;
      Opt.QueueCapacity = Depth;
      CompileService Service(Opt);
      runRound(Service, Round); // warm-up: populate the cache
      auto Start = std::chrono::steady_clock::now();
      std::vector<double> Latencies = runRound(Service, Round);
      double Wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Start)
                        .count();
      T.addRow({std::to_string(Threads), std::to_string(Depth),
                formatf("%.3f", Wall), formatf("%.0f", JobsPerRound / Wall),
                formatf("%.2f", percentile(Latencies, 0.50) * 1e3),
                formatf("%.2f", percentile(Latencies, 0.95) * 1e3),
                formatf("%.2f", percentile(Latencies, 0.99) * 1e3)});
    }
  }
  std::printf("== CompileService: %d x uf%d jobs per round ==\n%s\n",
              JobsPerRound, JobVariables, T.render().c_str());
}

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
