//===- bench/bench_ccz_threshold.cpp - Fig. 10c: CCZ fidelity sweep -------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 10c: Weaver's EPS on a 20-variable benchmark as the
/// CCZ gate fidelity sweeps upward, against the (CCZ-independent) EPS of
/// Atomique, DPQA and superconducting. The crossover column reports the
/// threshold at which Weaver's CCZ-based compression overtakes every
/// baseline — the paper finds ~0.99, a ~1% improvement over today's 0.98.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace weaver;
using namespace weaver::bench;

namespace {

void printTable() {
  sat::CnfFormula F = sat::satlibInstance(20, 1);
  SuiteConfig Config;
  Config.RunGeyser = false; // Fig. 10c omits Geyser (no EPS)
  Config.RunWeaver = false;
  InstanceResults Base = runSuite(F, Config);
  double BestBaseline = std::max(
      {Base.Atomique.Eps, Base.Dpqa.usable() ? Base.Dpqa.Eps : 0.0,
       Base.Superconducting.Eps});

  Table T({"ccz fidelity", "weaver eps", "atomique eps", "dpqa eps",
           "superconducting eps", "weaver beats all"});
  double Threshold = -1;
  for (double Fid = 0.980; Fid <= 0.9976; Fid += 0.0025) {
    core::WeaverOptions Opt;
    Opt.Hw.CczFidelity = Fid;
    Opt.Compression = core::WeaverOptions::CompressionMode::On;
    auto W = core::compileWeaver(F, Opt);
    double Eps = W ? W->Stats.Eps : 0;
    bool Wins = Eps > BestBaseline;
    if (Wins && Threshold < 0)
      Threshold = Fid;
    T.addRow({formatf("%.4f", Fid), formatf("%.4g", Eps),
              formatf("%.4g", Base.Atomique.Eps),
              cell(Base.Dpqa, Base.Dpqa.Eps),
              formatf("%.4g", Base.Superconducting.Eps),
              Wins ? "yes" : "no"});
  }
  std::printf("== Fig. 10c: CCZ fidelity threshold (20-variable benchmark) "
              "==\n%s\n",
              T.render().c_str());
  if (Threshold > 0)
    std::printf("threshold: Weaver surpasses all baselines at CCZ fidelity "
                "~%.4f\n\n",
                Threshold);
  else
    std::printf("threshold above the swept range\n\n");
}

void BM_WeaverEpsEstimate(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(20, 1);
  for (auto _ : State) {
    core::WeaverOptions Opt;
    Opt.Hw.CczFidelity = 0.99;
    auto W = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(W);
  }
}
BENCHMARK(BM_WeaverEpsEstimate);

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
