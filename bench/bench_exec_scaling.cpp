//===- bench/bench_exec_scaling.cpp - Fig. 11b: execution time vs. size ---===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 11b: execution time against the number of variables.
/// Geyser and DPQA time out above 20 variables; superconducting is capped
/// at 100 variables by the 127-qubit device.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace weaver;
using namespace weaver::bench;

namespace {

void printTable() {
  SuiteConfig Config;
  Table T({"variables", "superconducting", "atomique", "weaver", "dpqa",
           "geyser"});
  for (int N : sat::SatlibSizes) {
    std::vector<std::vector<double>> Vals(NumCompilers);
    bool Timeout[NumCompilers] = {};
    bool Unsupported[NumCompilers] = {};
    for (int I = 1; I <= 5; ++I) {
      InstanceResults R = runSuite(sat::satlibInstance(N, I), Config);
      for (int C = 0; C < NumCompilers; ++C) {
        Timeout[C] |= R.get(C).TimedOut;
        Unsupported[C] |= R.get(C).Unsupported;
        if (R.get(C).usable())
          Vals[C].push_back(R.get(C).ExecutionSeconds);
      }
    }
    std::vector<std::string> Row{std::to_string(N)};
    for (int C = 0; C < NumCompilers; ++C)
      Row.push_back(Timeout[C]       ? "X"
                    : Unsupported[C] ? "-"
                                     : formatf("%.4g", geoMean(Vals[C])));
    T.addRow(Row);
  }
  std::printf("== Fig. 11b: execution time [seconds] vs. number of "
              "variables (mean of 5 instances) ==\n%s\n",
              T.render().c_str());
}

void BM_WeaverExecutionEstimate(benchmark::State &State) {
  sat::CnfFormula F =
      sat::satlibInstance(static_cast<int>(State.range(0)), 1);
  for (auto _ : State) {
    core::WeaverOptions Opt;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_WeaverExecutionEstimate)->Arg(20)->Arg(100);

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
