//===- bench/bench_net.cpp - Socket transport throughput/latency ----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Measures the net::Server transport end to end over real loopback
/// sockets: an in-process server, N client connections each keeping M
/// requests pipelined, client-observed p50/p95/p99 latency and request
/// throughput. The saturation point (16 connections x 64 in flight =
/// 1024 concurrent requests) pins the ISSUE's >= 1000 concurrent
/// in-flight acceptance number; peak_in_flight lands in the bench-smoke
/// JSON so a regression shows up in CI's bench_regress diff.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "net/Client.h"
#include "net/Server.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

using namespace weaver;
using namespace weaver::net;

namespace {

double percentile(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Index = static_cast<size_t>(P * (Sorted.size() - 1));
  return Sorted[Index];
}

struct LoadResult {
  std::vector<double> Latencies; ///< sorted, seconds
  size_t PeakInFlight = 0;
  double WallSeconds = 0;
  size_t Completed = 0;
};

/// Drives \p Connections client threads against the server on \p Port,
/// each keeping up to \p PerConnection requests pipelined until it has
/// completed \p RequestsPerConnection. Requests cycle uf20 SATLIB
/// instances. Shed requests (RETRYING_LATER) are resubmitted under the
/// original start time, so latencies stay honest under overload.
LoadResult runLoad(uint16_t Port, int Connections, int PerConnection,
                   int RequestsPerConnection) {
  using Clock = std::chrono::steady_clock;
  std::atomic<int> InFlight{0};
  std::atomic<int> Peak{0};
  std::mutex M;
  LoadResult Result;

  auto Start = Clock::now();
  std::vector<std::thread> Threads;
  for (int T = 0; T < Connections; ++T) {
    Threads.emplace_back([&, T]() {
      ClientOptions Opt;
      Opt.Port = Port;
      Opt.Seed = static_cast<uint64_t>(T) + 1;
      Client C(Opt);
      if (C.connect())
        return;

      std::map<uint64_t, Clock::time_point> Pending;
      uint64_t NextId = 1;
      int Sent = 0;
      std::vector<double> Local;

      auto sendOne = [&]() {
        CompileFrame F;
        F.RequestId = NextId;
        F.NumVars = 20;
        F.Index = 1 + static_cast<int32_t>(NextId % 20);
        if (C.sendCompile(F))
          return false;
        Pending.emplace(NextId, Clock::now());
        ++NextId;
        ++Sent;
        int Cur = ++InFlight;
        int Seen = Peak.load();
        while (Cur > Seen && !Peak.compare_exchange_weak(Seen, Cur))
          ;
        return true;
      };

      while (Sent < RequestsPerConnection &&
             static_cast<int>(Pending.size()) < PerConnection)
        if (!sendOne())
          return;

      while (!Pending.empty()) {
        auto F = C.readFrame(120.0);
        if (!F.ok())
          break;
        if (F->Type != FrameType::Result)
          continue;
        auto R = decodeResult(F->Payload);
        if (!R.ok())
          break;
        auto It = Pending.find(R->RequestId);
        if (It == Pending.end())
          continue;
        if (R->Code == ResponseCode::RetryLater) {
          // Resubmit immediately, keeping the original start time: the
          // shed round trip is part of this request's latency.
          CompileFrame Again;
          Again.RequestId = R->RequestId;
          Again.NumVars = 20;
          Again.Index = 1 + static_cast<int32_t>(R->RequestId % 20);
          if (C.sendCompile(Again))
            break;
          continue;
        }
        Local.push_back(
            std::chrono::duration<double>(Clock::now() - It->second).count());
        Pending.erase(It);
        --InFlight;
        if (Sent < RequestsPerConnection)
          sendOne();
      }
      std::lock_guard<std::mutex> Lock(M);
      Result.Latencies.insert(Result.Latencies.end(), Local.begin(),
                              Local.end());
    });
  }
  for (std::thread &T : Threads)
    T.join();

  Result.WallSeconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  Result.PeakInFlight = static_cast<size_t>(Peak.load());
  Result.Completed = Result.Latencies.size();
  std::sort(Result.Latencies.begin(), Result.Latencies.end());
  return Result;
}

/// An in-process server sized so admission control never sheds at the
/// bench's own load points: the bench measures transport latency, not
/// the shedding policy (net_test covers that).
class BenchServer {
public:
  BenchServer() {
    ServerOptions Options;
    Options.Port = 0;
    Options.Service.QueueCapacity = 4096;
    Options.MaxInFlightPerConnection = 256;
    Server.emplace(Options);
    if (Server->start())
      return;
    Loop = std::thread([this]() { (void)Server->run(); });
  }
  ~BenchServer() {
    if (!Loop.joinable())
      return;
    Server->requestStop();
    Loop.join();
  }
  uint16_t port() const { return Server->port(); }

private:
  std::optional<net::Server> Server;
  std::thread Loop;
};

void BM_NetPipeline(benchmark::State &State) {
  int Connections = static_cast<int>(State.range(0));
  int PerConnection = static_cast<int>(State.range(1));
  int RequestsPerConnection = PerConnection * 2;
  BenchServer Server;
  // Warm the PassCache so iterations measure the steady transport, not
  // first-compile costs.
  runLoad(Server.port(), 1, 8, 32);

  LoadResult Last;
  for (auto _ : State)
    Last = runLoad(Server.port(), Connections, PerConnection,
                   RequestsPerConnection);
  State.SetItemsProcessed(State.iterations() * Connections *
                          RequestsPerConnection);
  State.counters["p50_ms"] = percentile(Last.Latencies, 0.50) * 1e3;
  State.counters["p95_ms"] = percentile(Last.Latencies, 0.95) * 1e3;
  State.counters["p99_ms"] = percentile(Last.Latencies, 0.99) * 1e3;
  State.counters["peak_in_flight"] = static_cast<double>(Last.PeakInFlight);
  State.counters["completed"] = static_cast<double>(Last.Completed);
}
BENCHMARK(BM_NetPipeline)
    ->Args({4, 8})    // light pipelining
    ->Args({8, 32})   // moderate concurrency
    ->Args({16, 64})  // saturation: >= 1000 concurrent in flight
    ->UseRealTime();

void printTable() {
  BenchServer Server;
  runLoad(Server.port(), 1, 8, 32); // cache warm-up
  Table T({"conns", "inflight/conn", "requests", "peak", "wall [s]", "req/s",
           "p50 [ms]", "p95 [ms]", "p99 [ms]"});
  struct Point {
    int Conns, PerConn;
  };
  for (Point P : {Point{4, 8}, Point{8, 32}, Point{16, 64}}) {
    LoadResult R = runLoad(Server.port(), P.Conns, P.PerConn, P.PerConn * 2);
    size_t Total = static_cast<size_t>(P.Conns) * P.PerConn * 2;
    T.addRow({std::to_string(P.Conns), std::to_string(P.PerConn),
              std::to_string(Total), std::to_string(R.PeakInFlight),
              formatf("%.3f", R.WallSeconds),
              formatf("%.0f", R.Completed / R.WallSeconds),
              formatf("%.2f", percentile(R.Latencies, 0.50) * 1e3),
              formatf("%.2f", percentile(R.Latencies, 0.95) * 1e3),
              formatf("%.2f", percentile(R.Latencies, 0.99) * 1e3)});
  }
  std::printf("== net::Server loopback, uf20 mix, pipelined clients ==\n%s\n",
              T.render().c_str());
}

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
