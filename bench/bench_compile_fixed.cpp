//===- bench/bench_compile_fixed.cpp - Fig. 8a: compile time, uf20 --------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 8a: end-to-end compilation time of all five
/// compilers on the ten fixed-size 20-variable MAX-3SAT instances
/// (uf20-01..uf20-10), plus the mean column. Expected shape: Weaver and
/// the SC/Atomique pair compile in fractions of a second while Geyser and
/// DPQA are orders of magnitude slower (the paper's 5.7e3x headline).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace weaver;
using namespace weaver::bench;

namespace {

void printTable() {
  SuiteConfig Config;
  Table T({"instance", "superconducting", "atomique", "weaver", "dpqa",
           "geyser"});
  std::vector<std::vector<double>> PerCompiler(NumCompilers);
  for (int I = 1; I <= 10; ++I) {
    sat::CnfFormula F = sat::satlibInstance(20, I);
    InstanceResults R = runSuite(F, Config);
    std::vector<std::string> Row{F.name()};
    for (int C = 0; C < NumCompilers; ++C) {
      const auto &B = R.get(C);
      Row.push_back(cell(B, B.CompileSeconds));
      if (B.usable())
        PerCompiler[C].push_back(B.CompileSeconds);
    }
    T.addRow(Row);
  }
  std::vector<std::string> Mean{"mean"};
  for (int C = 0; C < NumCompilers; ++C)
    Mean.push_back(PerCompiler[C].empty()
                       ? "X"
                       : formatf("%.4g", geoMean(PerCompiler[C])));
  T.addRow(Mean);
  std::printf("== Fig. 8a: compilation time [seconds], fixed 20-variable "
              "suite ==\n%s\n",
              T.render().c_str());
  double WeaverMean = geoMean(PerCompiler[2]);
  for (int C : {0, 1, 3, 4})
    if (!PerCompiler[C].empty())
      std::printf("weaver speedup vs %s: %.1fx\n", compilerName(C),
                  geoMean(PerCompiler[C]) / WeaverMean);
  std::printf("\n");
}

void BM_WeaverCompileUf20(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(20, 1);
  for (auto _ : State) {
    core::WeaverOptions Opt;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_WeaverCompileUf20);

void BM_SuperconductingCompileUf20(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(20, 1);
  for (auto _ : State) {
    auto R = baselines::compileSuperconducting(F);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SuperconductingCompileUf20);

void BM_AtomiqueCompileUf20(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(20, 1);
  for (auto _ : State) {
    auto R = baselines::compileAtomique(F);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_AtomiqueCompileUf20);

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
