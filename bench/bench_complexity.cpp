//===- bench/bench_complexity.cpp - Table 2 / Fig. 10a: complexity --------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table 2 and Figure 10a: the asymptotic compilation
/// complexity of each compiler rendered as step counts over the benchmark
/// sizes. As in the paper these curves are analytic (Qiskit/Atomique:
/// O(N^3) from SABRE; Geyser: O(K^2) over K operations; DPQA: O(2^K);
/// Weaver: O(N^2)), with K derived from the actual ladder circuit sizes.
/// A measured-compile-time column for Weaver corroborates the quadratic
/// model empirically, split into the colouring and the back half
/// (lowering + replay). BM_WeaverBackHalf additionally fits the back
/// half against the emitted pulse count up to 2k clauses: with the
/// spatial-grid device index it is O((pulses + atoms) log), i.e. the
/// compiler's time per emitted pulse is flat instead of growing with the
/// atom count.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "circuit/Decompose.h"
#include "qaoa/Builder.h"

#include <benchmark/benchmark.h>

#include <cmath>

using namespace weaver;
using namespace weaver::bench;

namespace {

void printTable() {
  std::printf("== Table 2: computational complexity ==\n");
  Table T2({"compiler", "complexity"});
  T2.addRow({"qiskit (superconducting)", "O(N^3)"});
  T2.addRow({"atomique", "O(N^3)"});
  T2.addRow({"geyser", "O(K^2)"});
  T2.addRow({"dpqa", "O(2^K)"});
  T2.addRow({"weaver", "O(N^2)"});
  std::printf("%s  (N = variables, K = circuit operations, K >> N)\n\n",
              T2.render().c_str());

  std::printf("== Fig. 10a: complexity in steps vs. number of variables "
              "==\n");
  Table T({"variables", "K (ops)", "superconducting", "atomique", "weaver",
           "dpqa [log10]", "geyser", "weaver measured [s]",
           "coloring [s]", "back half [s]"});
  for (int N : {20, 50, 100, 150, 200, 250}) {
    sat::CnfFormula F = sat::satlibInstance(N, 1);
    circuit::Circuit Ladder = circuit::translateToBasis(
        qaoa::buildQaoaCircuit(F, qaoa::QaoaParams()));
    double K = static_cast<double>(Ladder.stats().TotalGates);
    core::WeaverOptions Opt;
    auto W = core::compileWeaver(F, Opt);
    double Measured = W ? W->CompileSeconds : 0;
    // Per-pass attribution of the measured column: the colouring (the
    // paper's O(N^2) bound, sub-quadratic here) vs. everything after it.
    double Coloring = 0;
    if (W)
      for (const core::pipeline::PassTiming &P : W->PassTimings)
        if (P.PassName == "clause-coloring")
          Coloring += P.Seconds;
    T.addRow({std::to_string(N), formatf("%.0f", K),
              formatf("%.3g", std::pow(N, 3)), formatf("%.3g", std::pow(N, 3)),
              formatf("%.3g", std::pow(N, 2)),
              formatf("%.1f", K * std::log10(2.0)),
              formatf("%.3g", K * K), formatf("%.4g", Measured),
              formatf("%.4g", Coloring),
              formatf("%.4g", Measured - Coloring)});
  }
  std::printf("%s\n", T.render().c_str());
}

void BM_ClauseColoring(benchmark::State &State) {
  sat::CnfFormula F =
      sat::satlibInstance(static_cast<int>(State.range(0)), 1);
  for (auto _ : State) {
    auto C = core::colorClausesDSatur(F);
    benchmark::DoNotOptimize(C);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ClauseColoring)->Arg(20)->Arg(50)->Arg(100)->Arg(200)->Arg(250)
    ->Complexity(benchmark::oNSquared);

/// Measured back half (gate lowering + pulse-emission replay) at a fixed
/// clause/variable ratio, up to 2k clauses. Complexity is fitted against
/// the number of emitted pulse annotations: since the spatial-grid device
/// index the back half is O((pulses + atoms) log) — proportional to the
/// stream it emits and replays — where it used to pay an all-pairs
/// O(atoms^2) proximity scan per Rydberg pulse plus tree-map occupancy
/// updates per instruction. (The stream itself grows quadratically with
/// the column count per boundary; its length is pinned byte-for-byte by
/// the goldens, so the win is time-per-pulse, not fewer pulses.)
void BM_WeaverBackHalf(benchmark::State &State) {
  size_t Clauses = static_cast<size_t>(State.range(0));
  int Vars =
      static_cast<int>(static_cast<double>(Clauses) / sat::SatlibClauseRatio);
  sat::CnfFormula F = sat::RandomSatGenerator(99).generate(Vars, Clauses);
  int64_t Pulses = 0;
  for (auto _ : State) {
    auto R = core::compileWeaver(F, core::WeaverOptions());
    double BackHalf = 0;
    if (R) {
      for (const core::pipeline::PassTiming &T : R->PassTimings)
        if (T.PassName == "gate-lowering" || T.PassName == "pulse-emission")
          BackHalf += T.Seconds;
      Pulses = static_cast<int64_t>(R->Program.numAnnotations());
    }
    State.SetIterationTime(BackHalf);
    benchmark::DoNotOptimize(R);
  }
  State.counters["clauses"] = static_cast<double>(Clauses);
  State.counters["pulses"] = static_cast<double>(Pulses);
  State.SetComplexityN(Pulses);
}
BENCHMARK(BM_WeaverBackHalf)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->UseManualTime()
    ->Complexity(benchmark::oNLogN);

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
