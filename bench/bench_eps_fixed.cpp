//===- bench/bench_eps_fixed.cpp - Fig. 12a: EPS, uf20 --------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 12a: estimated probability of success on the ten
/// 20-variable instances for the FPQA compilers (Geyser is excluded, as
/// in the paper, because its block approximation makes EPS incomparable).
/// Expected shape: Weaver above Atomique (the paper's ~10% headline);
/// DPQA competitive or slightly better at this size.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace weaver;
using namespace weaver::bench;

namespace {

void printTable() {
  SuiteConfig Config;
  Config.RunGeyser = false; // excluded from Fig. 12 (block approximation)
  Table T({"instance", "atomique", "weaver", "dpqa"});
  std::vector<std::vector<double>> PerCompiler(NumCompilers);
  for (int I = 1; I <= 10; ++I) {
    sat::CnfFormula F = sat::satlibInstance(20, I);
    InstanceResults R = runSuite(F, Config);
    T.addRow({F.name(), cell(R.Atomique, R.Atomique.Eps),
              cell(R.Weaver, R.Weaver.Eps), cell(R.Dpqa, R.Dpqa.Eps)});
    for (int C : {1, 2, 3})
      if (R.get(C).usable())
        PerCompiler[C].push_back(R.get(C).Eps);
  }
  T.addRow({"mean", formatf("%.4g", geoMean(PerCompiler[1])),
            formatf("%.4g", geoMean(PerCompiler[2])),
            PerCompiler[3].empty() ? "X"
                                   : formatf("%.4g", geoMean(PerCompiler[3]))});
  std::printf("== Fig. 12a: estimated probability of success, fixed "
              "20-variable suite ==\n%s\n",
              T.render().c_str());
  std::printf("weaver EPS improvement vs atomique: %.0f%%\n\n",
              (geoMean(PerCompiler[2]) / geoMean(PerCompiler[1]) - 1) * 100);
}

void BM_EpsPipelineUf20(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(20, 1);
  for (auto _ : State) {
    core::WeaverOptions Opt;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R->Stats.Eps);
  }
}
BENCHMARK(BM_EpsPipelineUf20);

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
