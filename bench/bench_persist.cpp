//===- bench/bench_persist.cpp - Persistent cache warm-start cost ---------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Measures what the persistent PassCache buys and what it costs:
///
///  * BM_SweepCold / BM_SweepWarmMemory / BM_SweepWarmDisk: one full
///    gamma/beta sweep per iteration — from nothing, from an already-warm
///    in-process cache, and from a fresh cache warm-started off a
///    snapshot file. The disk-warm case is the restart scenario; the
///    design target is disk-warm within ~1.2x of memory-warm, because a
///    load deserializes only the key index and sections materialize
///    lazily on first hit.
///
///  * BM_SnapshotSave / BM_SnapshotLoad: the file operations themselves.
///    Load is index-only, so its time stays flat in payload size;
///    snapshot_bytes (a deterministic counter) tracks the format's
///    footprint per suite size.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/pipeline/PassCache.h"
#include "support/BinaryIO.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

using namespace weaver;
using namespace weaver::bench;

namespace {

constexpr int SweepPoints = 10;

/// The benches run with a per-binary working directory (see the
/// bench-smoke setup in CMakeLists), so relative snapshot paths cannot
/// collide across binaries.
std::string snapshotPath(int N) {
  return "bench_persist_cache_" + std::to_string(N) + ".bin";
}

double sweepSeconds(const sat::CnfFormula &F,
                    core::pipeline::PassCache *Cache) {
  auto Start = std::chrono::steady_clock::now();
  for (int I = 0; I < SweepPoints; ++I) {
    core::WeaverOptions Opt;
    Opt.Qaoa.Gamma = 0.30 + 0.05 * I;
    Opt.Qaoa.Beta = 0.20 + 0.03 * I;
    Opt.Cache = Cache;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R);
    if (!R)
      std::fprintf(stderr, "sweep compile failed: %s\n",
                   R.message().c_str());
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Builds the snapshot file for suite size \p N (once per size) and
/// returns its byte count.
size_t ensureSnapshot(const sat::CnfFormula &F, int N) {
  core::pipeline::PassCache Cache;
  sweepSeconds(F, &Cache);
  Status S = Cache.saveSnapshot(snapshotPath(N));
  if (S) {
    std::fprintf(stderr, "snapshot save failed: %s\n", S.message().c_str());
    return 0;
  }
  auto Mapped = MappedFile::open(snapshotPath(N));
  return Mapped ? Mapped->size() : 0;
}

void BM_SweepCold(benchmark::State &State) {
  sat::CnfFormula F =
      sat::satlibInstance(static_cast<int>(State.range(0)), 1);
  for (auto _ : State) {
    core::pipeline::PassCache Cache;
    benchmark::DoNotOptimize(sweepSeconds(F, &Cache));
  }
}
BENCHMARK(BM_SweepCold)->Arg(50)->Arg(100)->Arg(250);

void BM_SweepWarmMemory(benchmark::State &State) {
  sat::CnfFormula F =
      sat::satlibInstance(static_cast<int>(State.range(0)), 1);
  core::pipeline::PassCache Cache;
  sweepSeconds(F, &Cache); // warm the template before timing
  for (auto _ : State)
    benchmark::DoNotOptimize(sweepSeconds(F, &Cache));
}
BENCHMARK(BM_SweepWarmMemory)->Arg(50)->Arg(100)->Arg(250);

void BM_SweepWarmDisk(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  sat::CnfFormula F = sat::satlibInstance(N, 1);
  size_t Bytes = ensureSnapshot(F, N);
  uint64_t Materialized = 0;
  for (auto _ : State) {
    // The restart: a brand-new cache object, warm-started from disk.
    core::pipeline::PassCache Cache;
    if (Cache.loadSnapshot(snapshotPath(N)))
      State.SkipWithError("snapshot load failed");
    benchmark::DoNotOptimize(sweepSeconds(F, &Cache));
    Materialized = Cache.stats().Materializations;
  }
  State.counters["snapshot_bytes"] = static_cast<double>(Bytes);
  State.counters["materialized"] = static_cast<double>(Materialized);
  std::remove(snapshotPath(N).c_str());
}
BENCHMARK(BM_SweepWarmDisk)->Arg(50)->Arg(100)->Arg(250);

void BM_SnapshotSave(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  sat::CnfFormula F = sat::satlibInstance(N, 1);
  core::pipeline::PassCache Cache;
  sweepSeconds(F, &Cache);
  for (auto _ : State) {
    Status S = Cache.saveSnapshot(snapshotPath(N));
    benchmark::DoNotOptimize(S);
  }
  std::remove(snapshotPath(N).c_str());
}
BENCHMARK(BM_SnapshotSave)->Arg(50)->Arg(250);

void BM_SnapshotLoad(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  sat::CnfFormula F = sat::satlibInstance(N, 1);
  size_t Bytes = ensureSnapshot(F, N);
  for (auto _ : State) {
    // Index-only deserialization: no section payload is parsed here.
    core::pipeline::PassCache Cache;
    if (Cache.loadSnapshot(snapshotPath(N)))
      State.SkipWithError("snapshot load failed");
    benchmark::DoNotOptimize(Cache.size());
  }
  State.counters["snapshot_bytes"] = static_cast<double>(Bytes);
  std::remove(snapshotPath(N).c_str());
}
BENCHMARK(BM_SnapshotLoad)->Arg(50)->Arg(250);

void printTable() {
  Table T({"variables", "cold [s]", "warm mem [s]", "warm disk [s]",
           "disk/mem", "snapshot [KiB]"});
  for (int N : {50, 100, 250}) {
    sat::CnfFormula F = sat::satlibInstance(N, 1);

    core::pipeline::PassCache ColdCache;
    double Cold = sweepSeconds(F, &ColdCache);
    double WarmMem = sweepSeconds(F, &ColdCache);

    size_t Bytes = ensureSnapshot(F, N);
    core::pipeline::PassCache DiskCache;
    double WarmDisk = 0;
    if (!DiskCache.loadSnapshot(snapshotPath(N)))
      WarmDisk = sweepSeconds(F, &DiskCache);
    std::remove(snapshotPath(N).c_str());

    T.addRow({std::to_string(N), formatf("%.3f", Cold),
              formatf("%.3f", WarmMem), formatf("%.3f", WarmDisk),
              formatf("%.2fx", WarmMem > 0 ? WarmDisk / WarmMem : 0.0),
              formatf("%.1f", Bytes / 1024.0)});
  }
  std::printf("== %d-point sweep: cold vs in-process warm vs disk "
              "warm-start ==\n%s\n",
              SweepPoints, T.render().c_str());
}

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
