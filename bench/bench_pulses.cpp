//===- bench/bench_pulses.cpp - Fig. 10b: number of pulses ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 10b: mean number of laser pulses in each FPQA
/// compiler's output against the number of variables. Expected shape:
/// DPQA emits the fewest pulses (heavy movement), Weaver sits well below
/// Atomique and Geyser thanks to clause compression and global pulses;
/// Geyser/DPQA show "X" above 20 variables.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "qasm/Printer.h"

#include <benchmark/benchmark.h>

using namespace weaver;
using namespace weaver::bench;

namespace {

void printTable() {
  SuiteConfig Config;
  Config.RunSuperconducting = false; // Fig. 10b compares FPQA compilers
  Table T({"variables", "atomique", "weaver", "dpqa", "geyser"});
  for (int N : sat::SatlibSizes) {
    std::vector<std::vector<double>> Vals(NumCompilers);
    bool Timeout[NumCompilers] = {};
    for (int I = 1; I <= 5; ++I) {
      InstanceResults R = runSuite(sat::satlibInstance(N, I), Config);
      for (int C = 1; C < NumCompilers; ++C) {
        Timeout[C] |= R.get(C).TimedOut;
        if (R.get(C).usable())
          Vals[C].push_back(static_cast<double>(R.get(C).Pulses));
      }
    }
    T.addRow({std::to_string(N),
              Timeout[1] ? "X" : formatf("%.0f", geoMean(Vals[1])),
              Timeout[2] ? "X" : formatf("%.0f", geoMean(Vals[2])),
              Timeout[3] ? "X" : formatf("%.0f", geoMean(Vals[3])),
              Timeout[4] ? "X" : formatf("%.0f", geoMean(Vals[4]))});
  }
  std::printf("== Fig. 10b: number of pulses vs. number of variables "
              "(mean of 5 instances) ==\n%s\n",
              T.render().c_str());
}

/// Replays the emitted program through the zero-copy AnnotationView
/// overload — no flattened annotation copy is materialised.
void BM_WeaverPulseAnalysis(benchmark::State &State) {
  sat::CnfFormula F =
      sat::satlibInstance(static_cast<int>(State.range(0)), 1);
  core::WeaverOptions Opt;
  auto W = core::compileWeaver(F, Opt);
  for (auto _ : State) {
    auto Stats = fpqa::analyzePulseProgram(W->Program, Opt.Hw);
    benchmark::DoNotOptimize(Stats);
  }
  State.SetComplexityN(
      static_cast<int64_t>(W->Program.numAnnotations()));
}
BENCHMARK(BM_WeaverPulseAnalysis)->Arg(20)->Arg(100)->Arg(250)
    ->Complexity(benchmark::oN);

/// Fits the emitted @shuttle annotation stream per colour boundary against
/// the AOD column count. The batched Algorithm-2 emitter moves each
/// boundary's columns in whole parallel sets, so the per-boundary
/// annotation count is O(columns); the pre-batching cascade emitter was
/// O(columns^2). The "time" under the fit is the per-boundary annotation
/// count itself (manual time), so the reported BigO is the emission
/// complexity in columns, not a wall-clock figure; the counters feed
/// tools/bench_regress.py's pulse-count regression check.
void BM_WeaverShuttleEmission(benchmark::State &State) {
  sat::CnfFormula F =
      sat::satlibInstance(static_cast<int>(State.range(0)), 1);
  int64_t Columns = 0;
  double PerBoundary = 0;
  size_t Annotations = 0, Pulses = 0, Bytes = 0;
  for (auto _ : State) {
    auto R = core::compileWeaver(F, core::WeaverOptions());
    if (R) {
      for (const qasm::Annotation &A : R->Program.Statements[0].Annotations)
        if (A.Kind == qasm::AnnotationKind::Aod)
          Columns = static_cast<int64_t>(A.AodXs.size());
      Annotations = R->Stats.ShuttleAnnotations;
      Pulses = R->Stats.totalPulses();
      PerBoundary =
          static_cast<double>(Annotations) / R->Coloring.numColors();
      Bytes = qasm::printWqasm(R->Program).size();
    }
    State.SetIterationTime(PerBoundary);
    benchmark::DoNotOptimize(R);
  }
  State.counters["aod_columns"] = static_cast<double>(Columns);
  State.counters["shuttle_annotations"] = static_cast<double>(Annotations);
  State.counters["shuttles_per_boundary"] = PerBoundary;
  State.counters["total_pulses"] = static_cast<double>(Pulses);
  State.counters["wqasm_bytes"] = static_cast<double>(Bytes);
  State.SetComplexityN(Columns);
}
BENCHMARK(BM_WeaverShuttleEmission)
    ->Arg(20)
    ->Arg(50)
    ->Arg(100)
    ->Arg(250)
    ->UseManualTime()
    ->Complexity(benchmark::oN);

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
