//===- bench/bench_ablation_compression.cpp - §5.4 ablation ---------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Design-choice ablation (DESIGN.md A1): Weaver with and without 3-qubit
/// gate compression across the benchmark sizes. Compression should cut
/// Rydberg pulse counts and execution time while the EPS comparison
/// depends on the CCZ-vs-CZ fidelity gap — exactly the trade the §5.4
/// profitability test arbitrates.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace weaver;
using namespace weaver::bench;

namespace {

void printTable() {
  Table T({"variables", "pulses on", "pulses off", "exec on [s]",
           "exec off [s]", "eps on", "eps off"});
  for (int N : {20, 50, 100}) {
    sat::CnfFormula F = sat::satlibInstance(N, 1);
    core::WeaverOptions On, Off;
    On.Compression = core::WeaverOptions::CompressionMode::On;
    Off.Compression = core::WeaverOptions::CompressionMode::Off;
    auto ROn = core::compileWeaver(F, On);
    auto ROff = core::compileWeaver(F, Off);
    if (!ROn || !ROff) {
      std::fprintf(stderr, "compile failed at N=%d\n", N);
      return;
    }
    T.addRow({std::to_string(N), std::to_string(ROn->Stats.totalPulses()),
              std::to_string(ROff->Stats.totalPulses()),
              formatf("%.4g", ROn->Stats.Duration),
              formatf("%.4g", ROff->Stats.Duration),
              formatf("%.3g", ROn->Stats.Eps),
              formatf("%.3g", ROff->Stats.Eps)});
  }
  std::printf("== Ablation A1: 3-qubit gate compression on/off ==\n%s\n",
              T.render().c_str());

  // The profitability frontier: at which CCZ fidelity does the §5.4 test
  // flip?
  fpqa::HardwareParams Hw;
  double Flip = -1;
  for (double Fid = 0.95; Fid <= 0.999; Fid += 0.0005) {
    Hw.CczFidelity = Fid;
    if (Hw.cczCompressionProfitable()) {
      Flip = Fid;
      break;
    }
  }
  std::printf("compression becomes profitable at CCZ fidelity ~%.4f "
              "(current hardware: 0.98)\n\n",
              Flip);
}

void BM_CompressionOn(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(50, 1);
  for (auto _ : State) {
    core::WeaverOptions Opt;
    Opt.Compression = core::WeaverOptions::CompressionMode::On;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_CompressionOn);

void BM_CompressionOff(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(50, 1);
  for (auto _ : State) {
    core::WeaverOptions Opt;
    Opt.Compression = core::WeaverOptions::CompressionMode::Off;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_CompressionOff);

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
