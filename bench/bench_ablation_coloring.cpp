//===- bench/bench_ablation_coloring.cpp - §5.2 ablation ------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Design-choice ablation (DESIGN.md A2): DSatur versus naive first-fit
/// clause colouring. Fewer colours mean fewer sequential zone executions,
/// so the colour count translates directly into execution time.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace weaver;
using namespace weaver::bench;

namespace {

void printTable() {
  Table T({"variables", "colors dsatur", "colors first-fit", "exec dsatur [s]",
           "exec first-fit [s]"});
  for (int N : {20, 50, 100, 250}) {
    double ColorsA = 0, ColorsB = 0, ExecA = 0, ExecB = 0;
    const int Instances = 5;
    for (int I = 1; I <= Instances; ++I) {
      sat::CnfFormula F = sat::satlibInstance(N, I);
      core::WeaverOptions A, B;
      B.UseDSatur = false;
      auto RA = core::compileWeaver(F, A);
      auto RB = core::compileWeaver(F, B);
      if (!RA || !RB)
        continue;
      ColorsA += RA->Coloring.numColors() / double(Instances);
      ColorsB += RB->Coloring.numColors() / double(Instances);
      ExecA += RA->Stats.Duration / Instances;
      ExecB += RB->Stats.Duration / Instances;
    }
    T.addRow({std::to_string(N), formatf("%.1f", ColorsA),
              formatf("%.1f", ColorsB), formatf("%.4g", ExecA),
              formatf("%.4g", ExecB)});
  }
  std::printf("== Ablation A2: DSatur vs. first-fit clause colouring ==\n%s\n",
              T.render().c_str());
}

void BM_DSatur(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(250, 1);
  for (auto _ : State) {
    auto C = core::colorClausesDSatur(F);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_DSatur);

void BM_FirstFit(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(250, 1);
  for (auto _ : State) {
    auto C = core::colorClausesFirstFit(F);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_FirstFit);

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
