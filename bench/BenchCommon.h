//===- bench/BenchCommon.h - Shared benchmark harness ----------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-figure benchmark binaries: runs every
/// compiler (Weaver + the four baselines) on a formula and renders the
/// paper-style rows. Timeout cells render as "X" exactly like the paper's
/// plots; "-" marks backends that cannot fit the instance (superconducting
/// above 127 qubits).
///
/// Budgeted reproduction note: the paper gave Geyser and DPQA a 20-hour
/// timeout and reports that both time out above 20 variables. We keep
/// their exponential/quadratic search cores but give them seconds-scale
/// deadlines so the whole suite runs in minutes; above 20 variables they
/// are reported as timed out without being launched, matching the paper's
/// observed outcome (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_BENCH_BENCHCOMMON_H
#define WEAVER_BENCH_BENCHCOMMON_H

#include "baselines/Backend.h"
#include "core/WeaverCompiler.h"
#include "sat/Generator.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace weaver {
namespace bench {

/// Paper-style tables print by default; WEAVER_BENCH_TABLES=0 skips them
/// so smoke runs (the bench-smoke ctest label) exercise only the
/// registered google-benchmark counters and finish in seconds.
inline bool tablesEnabled() {
  const char *Env = std::getenv("WEAVER_BENCH_TABLES");
  return !Env || std::string(Env) != "0";
}

/// Which compilers a bench run includes.
struct SuiteConfig {
  bool RunSuperconducting = true;
  bool RunAtomique = true;
  bool RunWeaver = true;
  bool RunDpqa = true;
  bool RunGeyser = true;
  /// Above this size Geyser/DPQA are marked timed out without running.
  int SlowCompilerSizeCap = 20;
  /// Seconds-scale stand-ins for the paper's 20-hour timeout.
  double GeyserDeadline = 60.0;
  double DpqaDeadline = 30.0;
  int GeyserTrials = 40;
  qaoa::QaoaParams Qaoa;
};

/// The five per-compiler results for one instance, in the paper's plot
/// order: Superconducting, Atomique, Weaver, DPQA, Geyser.
struct InstanceResults {
  baselines::BaselineResult Superconducting, Atomique, Weaver, Dpqa, Geyser;

  const baselines::BaselineResult &get(int I) const {
    switch (I) {
    case 0:
      return Superconducting;
    case 1:
      return Atomique;
    case 2:
      return Weaver;
    case 3:
      return Dpqa;
    default:
      return Geyser;
    }
  }
};

inline const char *compilerName(int I) {
  return baselines::backendKindName(baselines::AllBackendKinds[I]);
}
inline constexpr int NumCompilers =
    static_cast<int>(std::size(baselines::AllBackendKinds));

/// Runs the configured compilers on \p Formula through the common
/// Backend interface.
inline InstanceResults runSuite(const sat::CnfFormula &Formula,
                                const SuiteConfig &Config) {
  InstanceResults R;
  bool SkipSlow = Formula.numVariables() > Config.SlowCompilerSizeCap;
  if (Config.RunSuperconducting)
    R.Superconducting =
        baselines::SuperconductingBackend().compile(Formula, Config.Qaoa);
  R.Superconducting.Compiler = "superconducting";
  if (Config.RunAtomique)
    R.Atomique = baselines::AtomiqueBackend().compile(Formula, Config.Qaoa);
  R.Atomique.Compiler = "atomique";
  if (Config.RunWeaver)
    R.Weaver = baselines::WeaverBackend().compile(Formula, Config.Qaoa);
  R.Weaver.Compiler = "weaver";
  if (Config.RunDpqa) {
    if (SkipSlow) {
      R.Dpqa.TimedOut = true;
    } else {
      baselines::DpqaParams P;
      P.DeadlineSeconds = Config.DpqaDeadline;
      R.Dpqa = baselines::DpqaBackend(P).compile(Formula, Config.Qaoa);
    }
  }
  R.Dpqa.Compiler = "dpqa";
  if (Config.RunGeyser) {
    if (SkipSlow) {
      R.Geyser.TimedOut = true;
    } else {
      baselines::GeyserParams P;
      P.DeadlineSeconds = Config.GeyserDeadline;
      P.SynthesisTrials = Config.GeyserTrials;
      R.Geyser = baselines::GeyserBackend(P).compile(Formula, Config.Qaoa);
    }
  }
  R.Geyser.Compiler = "geyser";
  return R;
}

/// Formats a metric cell: "X" when timed out, "-" when unsupported.
inline std::string cell(const baselines::BaselineResult &R, double Value,
                        const char *Fmt = "%.4g") {
  if (R.TimedOut)
    return "X";
  if (R.Unsupported)
    return "-";
  return formatf(Fmt, Value);
}

/// Geometric mean over positive values (the paper reports means of
/// log-scaled quantities).
inline double geoMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / Values.size());
}

} // namespace bench
} // namespace weaver

#endif // WEAVER_BENCH_BENCHCOMMON_H
