//===- bench/bench_compile_scaling.cpp - Fig. 8b: compile time vs. size ---===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 8b: compilation time against the number of
/// variables (20..250). Expected shape: Geyser and DPQA time out ("X")
/// above 20 variables; superconducting stops at 100 variables (127-qubit
/// device, "-"); Weaver stays fastest and scales ~quadratically.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace weaver;
using namespace weaver::bench;

namespace {

constexpr int InstancesPerSize = 5;

void printTable() {
  SuiteConfig Config;
  Table T({"variables", "superconducting", "atomique", "weaver", "dpqa",
           "geyser"});
  for (int N : sat::SatlibSizes) {
    std::vector<std::vector<double>> Vals(NumCompilers);
    bool Timeout[NumCompilers] = {};
    bool Unsupported[NumCompilers] = {};
    for (int I = 1; I <= InstancesPerSize; ++I) {
      InstanceResults R = runSuite(sat::satlibInstance(N, I), Config);
      for (int C = 0; C < NumCompilers; ++C) {
        const auto &B = R.get(C);
        Timeout[C] |= B.TimedOut;
        Unsupported[C] |= B.Unsupported;
        if (B.usable())
          Vals[C].push_back(B.CompileSeconds);
      }
    }
    std::vector<std::string> Row{std::to_string(N)};
    for (int C = 0; C < NumCompilers; ++C)
      Row.push_back(Timeout[C]       ? "X"
                    : Unsupported[C] ? "-"
                                     : formatf("%.4g", geoMean(Vals[C])));
    T.addRow(Row);
  }
  std::printf("== Fig. 8b: compilation time [seconds] vs. number of "
              "variables (mean of %d instances) ==\n%s\n",
              InstancesPerSize, T.render().c_str());
}

void BM_WeaverCompile(benchmark::State &State) {
  sat::CnfFormula F =
      sat::satlibInstance(static_cast<int>(State.range(0)), 1);
  for (auto _ : State) {
    core::WeaverOptions Opt;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_WeaverCompile)->Arg(20)->Arg(50)->Arg(100)->Arg(250)
    ->Complexity();

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
