//===- bench/bench_compile_scaling.cpp - Fig. 8b: compile time vs. size ---===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 8b: compilation time against the number of
/// variables (20..250). Expected shape: Geyser and DPQA time out ("X")
/// above 20 variables; superconducting stops at 100 variables (127-qubit
/// device, "-"); Weaver stays fastest and scales ~quadratically.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace weaver;
using namespace weaver::bench;

namespace {

constexpr int InstancesPerSize = 5;

void printTable() {
  SuiteConfig Config;
  Table T({"variables", "superconducting", "atomique", "weaver", "dpqa",
           "geyser"});
  for (int N : sat::SatlibSizes) {
    std::vector<std::vector<double>> Vals(NumCompilers);
    bool Timeout[NumCompilers] = {};
    bool Unsupported[NumCompilers] = {};
    for (int I = 1; I <= InstancesPerSize; ++I) {
      InstanceResults R = runSuite(sat::satlibInstance(N, I), Config);
      for (int C = 0; C < NumCompilers; ++C) {
        const auto &B = R.get(C);
        Timeout[C] |= B.TimedOut;
        Unsupported[C] |= B.Unsupported;
        if (B.usable())
          Vals[C].push_back(B.CompileSeconds);
      }
    }
    std::vector<std::string> Row{std::to_string(N)};
    for (int C = 0; C < NumCompilers; ++C)
      Row.push_back(Timeout[C]       ? "X"
                    : Unsupported[C] ? "-"
                                     : formatf("%.4g", geoMean(Vals[C])));
    T.addRow(Row);
  }
  std::printf("== Fig. 8b: compilation time [seconds] vs. number of "
              "variables (mean of %d instances) ==\n%s\n",
              InstancesPerSize, T.render().c_str());
}

/// Attributes Weaver's compile-time growth to the pipeline stages
/// (ROADMAP "Pass-level diagnostics"): per size, the mean wall-clock
/// share of each pass. The pulse-emission replay is listed separately
/// because it derives metrics and does not count as compile time. Since
/// the spatial-grid device index, both gate lowering and the replay run
/// in time proportional to the emitted pulse stream (no per-pulse
/// O(atoms^2) proximity scans); see BM_WeaverBackHalf in
/// bench_complexity for the fitted back-half complexity.
void printPassBreakdown() {
  Table T({"variables", "coloring [ms]", "zone-plan [ms]", "shuttle [ms]",
           "lowering [ms]", "replay [ms]"});
  for (int N : sat::SatlibSizes) {
    std::map<std::string, double> Sum;
    int Usable = 0;
    for (int I = 1; I <= InstancesPerSize; ++I) {
      auto R = core::compileWeaver(sat::satlibInstance(N, I));
      if (!R)
        continue;
      ++Usable;
      for (const core::pipeline::PassTiming &P : R->PassTimings)
        Sum[P.PassName] += P.Seconds * 1e3;
    }
    std::map<std::string, double> Mean;
    for (const auto &[Pass, Total] : Sum)
      Mean[Pass] = Total / std::max(Usable, 1);
    T.addRow({std::to_string(N), formatf("%.3f", Mean["clause-coloring"]),
              formatf("%.3f", Mean["zone-planning"]),
              formatf("%.3f", Mean["shuttle-scheduling"]),
              formatf("%.3f", Mean["gate-lowering"]),
              formatf("%.3f", Mean["pulse-emission"])});
  }
  std::printf("== Weaver per-pass compile-time breakdown (mean of %d "
              "instances) ==\n%s\n",
              InstancesPerSize, T.render().c_str());
}

void BM_WeaverCompile(benchmark::State &State) {
  sat::CnfFormula F =
      sat::satlibInstance(static_cast<int>(State.range(0)), 1);
  for (auto _ : State) {
    core::WeaverOptions Opt;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R);
  }
  State.SetComplexityN(State.range(0));
}
// 470 variables ~ 2k clauses at the SATLIB ratio: one point past the
// paper's largest size to expose the back-half scaling trend.
BENCHMARK(BM_WeaverCompile)->Arg(20)->Arg(50)->Arg(100)->Arg(250)->Arg(470)
    ->Complexity();

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled()) {
    printTable();
    printPassBreakdown();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
