//===- bench/bench_ablation_reuse.cpp - §5.3 ablation ---------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Design-choice ablation (DESIGN.md A3): Algorithm 2's atom reuse —
/// keeping atoms needed by the next colour in the AOD instead of
/// returning them to their home traps — versus the naive
/// return-everything policy. Reuse cuts transfer counts (each transfer
/// costs 15 us and survival fidelity) and shortens the schedule.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <benchmark/benchmark.h>

using namespace weaver;
using namespace weaver::bench;

namespace {

void printTable() {
  Table T({"variables", "transfers reuse", "transfers naive",
           "exec reuse [s]", "exec naive [s]", "eps reuse", "eps naive"});
  for (int N : {20, 50, 100, 250}) {
    sat::CnfFormula F = sat::satlibInstance(N, 1);
    core::WeaverOptions On, Off;
    On.ReuseAodAtoms = true;
    Off.ReuseAodAtoms = false;
    auto ROn = core::compileWeaver(F, On);
    auto ROff = core::compileWeaver(F, Off);
    if (!ROn || !ROff) {
      std::fprintf(stderr, "compile failed at N=%d\n", N);
      return;
    }
    T.addRow({std::to_string(N),
              std::to_string(ROn->Stats.TransferInstructions),
              std::to_string(ROff->Stats.TransferInstructions),
              formatf("%.4g", ROn->Stats.Duration),
              formatf("%.4g", ROff->Stats.Duration),
              formatf("%.3g", ROn->Stats.Eps),
              formatf("%.3g", ROff->Stats.Eps)});
  }
  std::printf("== Ablation A3: colour-shuttling atom reuse (Algorithm 2) "
              "==\n%s\n",
              T.render().c_str());
}

void BM_ReuseOn(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(50, 1);
  for (auto _ : State) {
    core::WeaverOptions Opt;
    Opt.ReuseAodAtoms = true;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ReuseOn);

void BM_ReuseOff(benchmark::State &State) {
  sat::CnfFormula F = sat::satlibInstance(50, 1);
  for (auto _ : State) {
    core::WeaverOptions Opt;
    Opt.ReuseAodAtoms = false;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ReuseOff);

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
