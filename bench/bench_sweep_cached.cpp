//===- bench/bench_sweep_cached.cpp - Memoised parameter sweeps -----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Measures the two front-half optimisations of the compile path:
///
///  * PassCache: a 10-point gamma/beta sweep over SATLIB-style instances,
///    end to end, with the cache enabled vs. disabled. The first point
///    builds the colouring/zone-plan entry and the program template; the
///    remaining nine restore and angle-patch instead of recompiling.
///    Output is byte-identical either way (tests/pass_cache_test.cpp).
///
///  * DSatur: selection cost growth of the bucketed rewrite on generated
///    instances up to ~2k clauses — clearly sub-quadratic, against the
///    paper's O(N^2) bound (§5.5).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/pipeline/PassCache.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace weaver;
using namespace weaver::bench;

namespace {

constexpr int SweepPoints = 10;

/// Compiles the full gamma/beta sweep over \p F; returns the wall seconds.
double sweepSeconds(const sat::CnfFormula &F,
                    core::pipeline::PassCache *Cache) {
  auto Start = std::chrono::steady_clock::now();
  for (int I = 0; I < SweepPoints; ++I) {
    core::WeaverOptions Opt;
    Opt.Qaoa.Gamma = 0.30 + 0.05 * I;
    Opt.Qaoa.Beta = 0.20 + 0.03 * I;
    Opt.Cache = Cache;
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R);
    if (!R)
      std::fprintf(stderr, "sweep compile failed: %s\n",
                   R.message().c_str());
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

void printTable() {
  Table T({"variables", "clauses", "uncached [s]", "cached [s]", "speedup",
           "template hits"});
  for (int N : sat::SatlibSizes) {
    sat::CnfFormula F = sat::satlibInstance(N, 1);
    double Off = sweepSeconds(F, nullptr);
    core::pipeline::PassCache Cache;
    double On = sweepSeconds(F, &Cache);
    T.addRow({std::to_string(N), std::to_string(F.numClauses()),
              formatf("%.3f", Off), formatf("%.3f", On),
              formatf("%.2fx", Off / On),
              std::to_string(Cache.stats().ProgramHits)});
  }
  std::printf("== %d-point gamma/beta sweep, end to end: PassCache on vs. "
              "off ==\n%s\n",
              SweepPoints, T.render().c_str());
}

void BM_SweepUncached(benchmark::State &State) {
  sat::CnfFormula F =
      sat::satlibInstance(static_cast<int>(State.range(0)), 1);
  for (auto _ : State)
    benchmark::DoNotOptimize(sweepSeconds(F, nullptr));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SweepUncached)->Arg(50)->Arg(100)->Arg(250)->Complexity();

void BM_SweepCached(benchmark::State &State) {
  sat::CnfFormula F =
      sat::satlibInstance(static_cast<int>(State.range(0)), 1);
  for (auto _ : State) {
    // A fresh cache per iteration: the measured sweep always pays one
    // template build plus nine restores, like a real sweep would.
    core::pipeline::PassCache Cache;
    benchmark::DoNotOptimize(sweepSeconds(F, &Cache));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SweepCached)->Arg(50)->Arg(100)->Arg(250)->Complexity();

/// Single compile on a warm program-template cache: copy + angle-patch
/// the template and re-index the pulse stream. The stream index is now a
/// vector of non-owning pointers into the program, so a hit pays one
/// annotation copy (the template instantiation), not two.
void BM_CachedInstantiation(benchmark::State &State) {
  sat::CnfFormula F =
      sat::satlibInstance(static_cast<int>(State.range(0)), 1);
  core::pipeline::PassCache Cache;
  core::WeaverOptions Opt;
  Opt.Cache = &Cache;
  auto Warm = core::compileWeaver(F, Opt); // builds the template entry
  benchmark::DoNotOptimize(Warm);
  Opt.Qaoa.Gamma = 0.9;
  Opt.Qaoa.Beta = 0.35;
  for (auto _ : State) {
    auto R = core::compileWeaver(F, Opt);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_CachedInstantiation)->Arg(100)->Arg(250);

/// DSatur cost against clause count at the SATLIB clause/variable ratio.
/// The O(N^2) reference would grow 64x from 250 to 2000 clauses; the
/// bucketed implementation's fitted exponent stays well below 2.
void BM_DSaturColoring(benchmark::State &State) {
  size_t Clauses = static_cast<size_t>(State.range(0));
  int Vars = static_cast<int>(Clauses / sat::SatlibClauseRatio);
  sat::CnfFormula F = sat::RandomSatGenerator(7).generate(Vars, Clauses);
  for (auto _ : State) {
    auto C = core::colorClausesDSatur(F);
    benchmark::DoNotOptimize(C);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_DSaturColoring)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Complexity();

} // namespace

int main(int argc, char **argv) {
  if (weaver::bench::tablesEnabled())
    printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
