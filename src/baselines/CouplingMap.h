//===- baselines/CouplingMap.h - QPU connectivity graphs -------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Undirected qubit connectivity graphs and the heavy-hex generator used to
/// model the paper's superconducting backend (IBM Washington, 127 qubits).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_BASELINES_COUPLINGMAP_H
#define WEAVER_BASELINES_COUPLINGMAP_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace weaver {
namespace baselines {

/// An undirected connectivity graph over physical qubits.
class CouplingMap {
public:
  explicit CouplingMap(int NumQubits) : Adj(NumQubits) {}

  int numQubits() const { return static_cast<int>(Adj.size()); }

  void addEdge(int A, int B) {
    assert(A != B && A >= 0 && B >= 0 && A < numQubits() && B < numQubits() &&
           "invalid coupling edge");
    if (!areAdjacent(A, B)) {
      Adj[A].push_back(B);
      Adj[B].push_back(A);
    }
  }

  bool areAdjacent(int A, int B) const {
    for (int N : Adj[A])
      if (N == B)
        return true;
    return false;
  }

  const std::vector<int> &neighbours(int Q) const { return Adj[Q]; }

  size_t numEdges() const {
    size_t Total = 0;
    for (const auto &N : Adj)
      Total += N.size();
    return Total / 2;
  }

  /// BFS distances from \p Source to every qubit (-1 if unreachable).
  std::vector<int> distancesFrom(int Source) const;

  /// All-pairs distance matrix (BFS per vertex).
  std::vector<std::vector<int>> allPairsDistances() const;

  /// Shortest path between \p A and \p B (inclusive endpoints).
  std::vector<int> shortestPath(int A, int B) const;

private:
  std::vector<std::vector<int>> Adj;
};

/// Builds an IBM-heavy-hex-style lattice with approximately
/// \p MinQubits qubits (always >= MinQubits); 127 reproduces Washington.
CouplingMap makeHeavyHex(int MinQubits);

/// Builds a simple RowLength x Rows grid (used by the Atomique baseline's
/// fixed atom array).
CouplingMap makeGrid(int RowLength, int Rows);

} // namespace baselines
} // namespace weaver

#endif // WEAVER_BASELINES_COUPLINGMAP_H
