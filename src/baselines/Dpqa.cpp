//===- baselines/Dpqa.cpp - DPQA-style exhaustive scheduler ---------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/Dpqa.h"

#include "circuit/Decompose.h"
#include "sim/Optimize.h"

#include <algorithm>
#include <chrono>
#include <cmath>

using namespace weaver;
using namespace weaver::baselines;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

using Clock = std::chrono::steady_clock;

/// Joint window scheduler: assigns every gate of the window to a Rydberg
/// stage, minimising the number of stages, by exhaustive branch-and-bound
/// — the stand-in for DPQA's SMT encoding, whose cost grows exponentially
/// with the window (Table 2's O(2^K)). A stage must be qubit-disjoint and
/// non-crossing: sorting its pairs by static endpoint, the moving
/// endpoints must be sorted too (AOD rows/columns cannot cross).
struct JointScheduler {
  const std::vector<std::pair<int, int>> &Window;
  Clock::time_point Deadline;
  bool TimedOut = false;

  std::vector<std::vector<int>> Stages = {}; ///< current partial assignment
  std::vector<std::vector<int>> BestStages = {};
  size_t BestCount = SIZE_MAX;
  long NodeBudgetCheck = 0;

  bool compatible(int Gate, const std::vector<int> &Stage) const {
    auto [A, B] = Window[Gate];
    for (int Other : Stage) {
      auto [CA, CB] = Window[Other];
      if (A == CA || A == CB || B == CA || B == CB)
        return false;
      bool LowOrder = std::min(A, B) < std::min(CA, CB);
      bool HighOrder = std::max(A, B) < std::max(CA, CB);
      if (LowOrder != HighOrder)
        return false; // crossing movement
    }
    return true;
  }

  void search(size_t Gate) {
    if (TimedOut)
      return;
    if ((++NodeBudgetCheck & 0x3ff) == 0 && Clock::now() > Deadline) {
      TimedOut = true;
      return;
    }
    if (Stages.size() >= BestCount)
      return; // bound: already as many stages as the incumbent
    if (Gate == Window.size()) {
      BestCount = Stages.size();
      BestStages = Stages;
      return;
    }
    // Index-based access: the new-stage branch below reallocates Stages,
    // which would invalidate references held by outer frames.
    for (size_t SI = 0, SE = Stages.size(); SI < SE; ++SI) {
      if (!compatible(static_cast<int>(Gate), Stages[SI]))
        continue;
      Stages[SI].push_back(static_cast<int>(Gate));
      search(Gate + 1);
      Stages[SI].pop_back();
      if (TimedOut)
        return;
    }
    if (Stages.size() + 1 >= BestCount)
      return; // opening another stage cannot beat the incumbent
    Stages.push_back({static_cast<int>(Gate)});
    search(Gate + 1);
    Stages.pop_back();
  }
};

} // namespace

BaselineResult baselines::compileDpqa(const sat::CnfFormula &Formula,
                                      const qaoa::QaoaParams &Qaoa,
                                      const DpqaParams &Params) {
  BaselineResult R;
  R.Compiler = "dpqa";
  auto Start = Clock::now();
  auto Deadline =
      Start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(Params.DeadlineSeconds));

  qaoa::QaoaParams P = Qaoa;
  P.UseCompressedClauses = false;
  Circuit Logical = qaoa::buildQaoaCircuit(Formula, P);
  circuit::BasisOptions Basis;
  Basis.KeepCcz = false;
  Circuit Native = circuit::translateToBasis(Logical, Basis);
  // DPQA merges adjacent single-qubit runs aggressively.
  Circuit Merged = sim::mergeSingleQubitRuns(Native);

  size_t OneQubitGates = 0;
  std::vector<std::pair<int, int>> CzGates;
  for (const Gate &G : Merged) {
    if (G.kind() == GateKind::CZ)
      CzGates.push_back({G.qubit(0), G.qubit(1)});
    else if (G.numQubits() == 1 && G.kind() != GateKind::Measure)
      ++OneQubitGates;
  }

  // Window-by-window joint scheduling. The QAOA phase-separation CZ
  // network is diagonal, so all its gates commute and the scheduler may
  // re-order freely within a window. The window size (like the SMT
  // formula's variable count) grows with the register, which is what
  // makes larger instances blow past the deadline.
  int N = Merged.numQubits();
  size_t WindowSize = std::min<size_t>(std::max(8, N + 1),
                                       static_cast<size_t>(Params.MaxFrontier));
  std::vector<double> StageMoveDistance;
  std::vector<size_t> StageSizes;
  for (size_t Begin = 0; Begin < CzGates.size(); Begin += WindowSize) {
    size_t End = std::min(Begin + WindowSize, CzGates.size());
    std::vector<std::pair<int, int>> Window(CzGates.begin() + Begin,
                                            CzGates.begin() + End);
    JointScheduler Scheduler{Window, Deadline};
    Scheduler.search(0);
    if (Scheduler.TimedOut) {
      R.TimedOut = true;
      R.CompileSeconds =
          std::chrono::duration<double>(Clock::now() - Start).count();
      return R;
    }
    assert(Scheduler.BestCount != SIZE_MAX && "scheduler found no solution");
    for (const std::vector<int> &Stage : Scheduler.BestStages) {
      double MaxDist = 0;
      for (int GI : Stage) {
        auto [A, B] = Window[GI];
        MaxDist = std::max(MaxDist, std::abs(A - B) * Params.AtomSpacing);
      }
      StageMoveDistance.push_back(MaxDist);
      StageSizes.push_back(Stage.size());
    }
  }

  R.CompileSeconds =
      std::chrono::duration<double>(Clock::now() - Start).count();

  const fpqa::HardwareParams &Hw = Params.Hw;
  size_t Stages = StageSizes.size();
  // Pulses: merged Raman rotations + per stage one shuttle batch and one
  // Rydberg pulse (atoms live in the AOD; no transfer churn).
  R.Pulses = OneQubitGates + Stages * 2;
  R.TwoQubitGates = CzGates.size();

  double MoveTime = 0;
  for (double D : StageMoveDistance)
    MoveTime += D / Hw.ShuttleSpeedUmPerSec;
  R.ExecutionSeconds =
      OneQubitGates * Hw.RamanLocalTime + Stages * Hw.RydbergTime + MoveTime;

  double EpsLog = 0;
  EpsLog += static_cast<double>(CzGates.size()) * std::log(Hw.CzFidelity);
  EpsLog += static_cast<double>(OneQubitGates) * std::log(Hw.RamanFidelity);
  EpsLog -= N * R.ExecutionSeconds / Hw.T2;
  R.Eps = std::exp(EpsLog);
  return R;
}
