//===- baselines/Sabre.h - SABRE-style mapping and routing -----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Qubit layout + SWAP routing in the style of SABRE [Li, Ding, Xie,
/// ASPLOS'19] — the algorithm behind both the Qiskit superconducting path
/// and Atomique's mapping stage (paper Table 2 attributes their O(N^3)
/// complexity to SABRE).
///
/// The router processes the gate list in order; a 2-qubit gate between
/// non-adjacent physical qubits triggers greedy SWAP insertion along a BFS
/// shortest path. Several routing trials with rotated initial layouts are
/// run and the cheapest result kept, mirroring Qiskit's stochastic trials.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_BASELINES_SABRE_H
#define WEAVER_BASELINES_SABRE_H

#include "baselines/CouplingMap.h"
#include "circuit/Circuit.h"
#include "support/Status.h"

namespace weaver {
namespace baselines {

/// Routing configuration.
struct SabreOptions {
  int Trials = 4; ///< independent layout trials; best (fewest SWAPs) wins
  uint64_t Seed = 1;
};

/// Routing outcome: the physical circuit plus overhead counters.
struct SabreResult {
  circuit::Circuit Routed; ///< over physical qubits; SWAPs inserted
  size_t SwapCount = 0;
  std::vector<int> InitialLayout; ///< logical -> physical
};

/// Routes \p Logical onto \p Map. Fails when the circuit needs more qubits
/// than the device offers.
Expected<SabreResult> routeSabre(const circuit::Circuit &Logical,
                                 const CouplingMap &Map,
                                 const SabreOptions &Options = {});

} // namespace baselines
} // namespace weaver

#endif // WEAVER_BASELINES_SABRE_H
