//===- baselines/CouplingMap.cpp - QPU connectivity graphs ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/CouplingMap.h"

#include <algorithm>
#include <deque>

using namespace weaver;
using namespace weaver::baselines;

std::vector<int> CouplingMap::distancesFrom(int Source) const {
  std::vector<int> Dist(numQubits(), -1);
  std::deque<int> Queue{Source};
  Dist[Source] = 0;
  while (!Queue.empty()) {
    int Q = Queue.front();
    Queue.pop_front();
    for (int N : Adj[Q])
      if (Dist[N] == -1) {
        Dist[N] = Dist[Q] + 1;
        Queue.push_back(N);
      }
  }
  return Dist;
}

std::vector<std::vector<int>> CouplingMap::allPairsDistances() const {
  std::vector<std::vector<int>> All;
  All.reserve(numQubits());
  for (int Q = 0; Q < numQubits(); ++Q)
    All.push_back(distancesFrom(Q));
  return All;
}

std::vector<int> CouplingMap::shortestPath(int A, int B) const {
  std::vector<int> Parent(numQubits(), -1);
  std::vector<bool> Seen(numQubits(), false);
  std::deque<int> Queue{A};
  Seen[A] = true;
  while (!Queue.empty()) {
    int Q = Queue.front();
    Queue.pop_front();
    if (Q == B)
      break;
    for (int N : Adj[Q])
      if (!Seen[N]) {
        Seen[N] = true;
        Parent[N] = Q;
        Queue.push_back(N);
      }
  }
  std::vector<int> Path;
  for (int Q = B; Q != -1; Q = Parent[Q]) {
    Path.push_back(Q);
    if (Q == A)
      break;
  }
  std::reverse(Path.begin(), Path.end());
  assert(!Path.empty() && Path.front() == A && "qubits are disconnected");
  return Path;
}

CouplingMap baselines::makeHeavyHex(int MinQubits) {
  // A heavy-hex lattice alternates long rows of qubits connected in a line
  // with sparse bridge rows; IBM Washington uses RowLength = 15 with
  // bridges every 4 sites, giving 127 qubits over 7 long rows.
  constexpr int RowLength = 15;
  constexpr int BridgeStride = 4;
  std::vector<std::vector<int>> LongRows;
  std::vector<int> RowStart;
  int Next = 0;
  CouplingMap Map(0);

  // First pass: count qubits until we reach MinQubits.
  std::vector<std::pair<int, int>> Edges;
  std::vector<int> PrevRow;
  while (Next < MinQubits) {
    std::vector<int> Row(RowLength);
    for (int I = 0; I < RowLength; ++I)
      Row[I] = Next++;
    for (int I = 0; I + 1 < RowLength; ++I)
      Edges.push_back({Row[I], Row[I + 1]});
    if (!PrevRow.empty()) {
      // Bridge qubits connect the rows every BridgeStride sites, offset
      // alternately (heavy-hex brick pattern).
      int Offset = (LongRows.size() % 2) ? 2 : 0;
      for (int I = Offset; I < RowLength; I += BridgeStride) {
        int Bridge = Next++;
        Edges.push_back({PrevRow[I], Bridge});
        Edges.push_back({Bridge, Row[I]});
      }
    }
    LongRows.push_back(Row);
    PrevRow = Row;
  }
  CouplingMap Result(Next);
  for (auto [A, B] : Edges)
    Result.addEdge(A, B);
  return Result;
}

CouplingMap baselines::makeGrid(int RowLength, int Rows) {
  CouplingMap Map(RowLength * Rows);
  for (int R = 0; R < Rows; ++R)
    for (int C = 0; C < RowLength; ++C) {
      int Q = R * RowLength + C;
      if (C + 1 < RowLength)
        Map.addEdge(Q, Q + 1);
      if (R + 1 < Rows)
        Map.addEdge(Q, Q + RowLength);
    }
  return Map;
}
