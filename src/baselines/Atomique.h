//===- baselines/Atomique.h - Atomique-style FPQA compiler -----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-implementation of the cost structure of Atomique [Wang et al. 2024]:
/// a movement-based FPQA compiler restricted to 2-qubit gates. The
/// pipeline is (1) qubit-array mapping — a SABRE-flavoured O(N^3)
/// hill-climbing refinement of the 1-D atom order that minimises total
/// movement, the stage the paper's Table 2 attributes Atomique's cubic
/// complexity to — and (2) ASAP layering of CZ gates, where each layer
/// executes with one parallel AOD move plus one global Rydberg pulse.
/// Single-qubit gates remain individual Raman pulses (Atomique does not
/// compress clause fragments, hence its higher pulse counts in Fig. 10b).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_BASELINES_ATOMIQUE_H
#define WEAVER_BASELINES_ATOMIQUE_H

#include "baselines/Result.h"
#include "fpqa/HardwareParams.h"
#include "qaoa/Builder.h"
#include "sat/Cnf.h"

namespace weaver {
namespace baselines {

/// Atomique knobs.
struct AtomiqueParams {
  fpqa::HardwareParams Hw;
  /// Atom pitch of the fixed array (micrometers).
  double AtomSpacing = 6.0;
  /// Hill-climbing sweeps over all O(N^2) adjacent-order swaps.
  int MappingSweeps = 6;
};

/// Compiles the QAOA program for \p Formula in the Atomique style.
BaselineResult compileAtomique(
    const sat::CnfFormula &Formula,
    const qaoa::QaoaParams &Qaoa = qaoa::QaoaParams(),
    const AtomiqueParams &Params = AtomiqueParams());

} // namespace baselines
} // namespace weaver

#endif // WEAVER_BASELINES_ATOMIQUE_H
