//===- baselines/Superconducting.cpp - Qiskit-style SC compiler -----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/Superconducting.h"

#include "circuit/Decompose.h"
#include "circuit/Schedule.h"

#include <chrono>
#include <cmath>

using namespace weaver;
using namespace weaver::baselines;
using circuit::Circuit;
using circuit::GateKind;

BaselineResult baselines::compileSuperconductingCircuit(
    const Circuit &Logical, const SuperconductingParams &Params) {
  BaselineResult R;
  R.Compiler = "superconducting";
  if (Logical.numQubits() > Params.NumQubits) {
    R.Unsupported = true;
    return R;
  }
  auto Start = std::chrono::steady_clock::now();

  // CCZ fully decomposed — superconducting has no 3-qubit gates.
  circuit::BasisOptions Basis;
  Basis.KeepCcz = false;
  Circuit Native = circuit::translateToBasis(Logical, Basis);

  // Layout + routing on the heavy-hex device.
  CouplingMap Map = makeHeavyHex(Params.NumQubits);
  auto Routed = routeSabre(Native, Map, Params.Sabre);
  if (!Routed) {
    R.Unsupported = true;
    return R;
  }
  // SWAPs introduced by routing lower to 3 CX = 3 (H CZ H) each.
  Circuit Physical = circuit::translateToBasis(Routed->Routed, Basis);

  R.CompileSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  R.SwapGates = Routed->SwapCount;

  circuit::CircuitStats Stats = Physical.stats();
  R.TwoQubitGates = Stats.TwoQubitGates;
  R.Pulses = Stats.TotalGates;

  circuit::GateDurations Durations;
  Durations.OneQubit = Params.OneQubitTime;
  Durations.TwoQubit = Params.TwoQubitTime;
  Durations.Measure = Params.MeasureTime;
  R.ExecutionSeconds = circuit::scheduleAsap(Physical, Durations).TotalDuration;

  // EPS: accumulate per-gate error plus T2 decoherence over the schedule.
  double EpsLog = 0;
  EpsLog += Stats.OneQubitGates * std::log(Params.OneQubitFidelity);
  EpsLog += Stats.TwoQubitGates * std::log(Params.TwoQubitFidelity);
  EpsLog += Logical.numQubits() * std::log(Params.MeasureFidelity);
  EpsLog -= Logical.numQubits() * R.ExecutionSeconds / Params.T2;
  R.Eps = std::exp(EpsLog);
  return R;
}

BaselineResult
baselines::compileSuperconducting(const sat::CnfFormula &Formula,
                                  const qaoa::QaoaParams &Qaoa,
                                  const SuperconductingParams &Params) {
  if (Formula.numVariables() > Params.NumQubits) {
    BaselineResult R;
    R.Compiler = "superconducting";
    R.Unsupported = true;
    return R;
  }
  // Hardware-agnostic stage: the ladder QAOA circuit.
  qaoa::QaoaParams P = Qaoa;
  P.UseCompressedClauses = false;
  return compileSuperconductingCircuit(qaoa::buildQaoaCircuit(Formula, P),
                                       Params);
}
