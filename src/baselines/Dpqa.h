//===- baselines/Dpqa.h - DPQA-style exhaustive scheduler ------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-implementation of the cost structure of DPQA [Tan et al., Quantum
/// 2024]: an (SMT-style) exhaustive scheduler for dynamically
/// field-programmable atom arrays. Executable 2-qubit gates are batched
/// into parallel Rydberg stages; each stage must be a *non-crossing*
/// matching (AOD rows/columns cannot cross while moving, so the moving
/// partners must preserve the static partners' order). The scheduler
/// searches the subsets of the ready frontier exhaustively with
/// branch-and-bound — the O(2^K) behaviour of the paper's Table 2 — under
/// a wall-clock deadline, which reproduces DPQA's timeouts above 20
/// variables. Single-qubit runs are merged first (DPQA's aggressive
/// optimisation), which is why it emits the fewest pulses (Fig. 10b)
/// while paying long movement times (Fig. 11).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_BASELINES_DPQA_H
#define WEAVER_BASELINES_DPQA_H

#include "baselines/Result.h"
#include "fpqa/HardwareParams.h"
#include "qaoa/Builder.h"
#include "sat/Cnf.h"

namespace weaver {
namespace baselines {

/// DPQA knobs.
struct DpqaParams {
  fpqa::HardwareParams Hw;
  double AtomSpacing = 6.0; ///< fixed-layer pitch (micrometers)
  /// Wall-clock deadline; exceeding it marks the result TimedOut.
  double DeadlineSeconds = 60.0;
  /// Hard cap on the scheduling window enumerated exhaustively per stage
  /// (the effective window is min(max(8, qubits), MaxFrontier)).
  int MaxFrontier = 30;
};

/// Compiles the QAOA program for \p Formula in the DPQA style.
BaselineResult compileDpqa(const sat::CnfFormula &Formula,
                           const qaoa::QaoaParams &Qaoa = qaoa::QaoaParams(),
                           const DpqaParams &Params = DpqaParams());

} // namespace baselines
} // namespace weaver

#endif // WEAVER_BASELINES_DPQA_H
