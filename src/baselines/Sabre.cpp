//===- baselines/Sabre.cpp - SABRE-style mapping and routing --------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/Sabre.h"

#include "support/Rng.h"

#include <algorithm>
#include <numeric>

using namespace weaver;
using namespace weaver::baselines;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

/// One routing trial over a fixed initial layout. Returns the routed
/// circuit and SWAP count.
SabreResult routeOnce(const Circuit &Logical, const CouplingMap &Map,
                      std::vector<int> Layout,
                      const std::vector<std::vector<int>> &Dist) {
  int NumPhysical = Map.numQubits();
  // Physical -> logical inverse mapping (-1 for unused qubits).
  std::vector<int> Inverse(NumPhysical, -1);
  for (int L = 0; L < static_cast<int>(Layout.size()); ++L)
    Inverse[Layout[L]] = L;

  SabreResult Result;
  Result.InitialLayout = Layout;
  Result.Routed = Circuit(NumPhysical, Logical.name() + "-routed");

  auto ApplySwap = [&](int PA, int PB) {
    Result.Routed.swap(PA, PB);
    Result.SwapCount++;
    int LA = Inverse[PA], LB = Inverse[PB];
    std::swap(Inverse[PA], Inverse[PB]);
    if (LA != -1)
      Layout[LA] = PB;
    if (LB != -1)
      Layout[LB] = PA;
  };

  for (const Gate &G : Logical) {
    if (G.kind() == GateKind::Barrier) {
      Result.Routed.append(G);
      continue;
    }
    if (G.numQubits() <= 1) {
      if (G.kind() == GateKind::Measure)
        Result.Routed.measure(Layout[G.qubit(0)]);
      else if (G.numParams() == 0)
        Result.Routed.append(Gate(G.kind(), {Layout[G.qubit(0)]}));
      else if (G.numParams() == 1)
        Result.Routed.append(Gate(G.kind(), {Layout[G.qubit(0)]},
                                  {G.param(0)}));
      else
        Result.Routed.append(Gate(G.kind(), {Layout[G.qubit(0)]},
                                  {G.param(0), G.param(1), G.param(2)}));
      continue;
    }
    assert(G.numQubits() == 2 &&
           "route multi-qubit gates after 2-qubit decomposition");
    int PA = Layout[G.qubit(0)], PB = Layout[G.qubit(1)];
    if (!Map.areAdjacent(PA, PB)) {
      // Walk PA toward PB along a shortest path, swapping as we go; the
      // last hop leaves the pair adjacent. Re-query positions each step
      // so the distance matrix guides a SABRE-like lookahead-free walk.
      std::vector<int> Path = Map.shortestPath(PA, PB);
      for (size_t Step = 0; Step + 2 < Path.size(); ++Step)
        ApplySwap(Path[Step], Path[Step + 1]);
      PA = Layout[G.qubit(0)];
      PB = Layout[G.qubit(1)];
      assert(Map.areAdjacent(PA, PB) && "routing failed to connect qubits");
    }
    if (G.numParams() == 1)
      Result.Routed.append(Gate(G.kind(), {PA, PB}, {G.param(0)}));
    else
      Result.Routed.append(Gate(G.kind(), {PA, PB}));
  }
  (void)Dist;
  return Result;
}

/// Degree-descending greedy initial placement: busiest logical qubits land
/// on the physically best-connected sites, seeded and perturbed per trial.
std::vector<int> makeLayout(const Circuit &Logical, const CouplingMap &Map,
                            uint64_t Seed) {
  int NumLogical = Logical.numQubits();
  std::vector<size_t> Use(NumLogical, 0);
  for (const Gate &G : Logical)
    if (G.numQubits() == 2) {
      Use[G.qubit(0)]++;
      Use[G.qubit(1)]++;
    }
  std::vector<int> LogicalOrder(NumLogical);
  std::iota(LogicalOrder.begin(), LogicalOrder.end(), 0);
  std::stable_sort(LogicalOrder.begin(), LogicalOrder.end(),
                   [&](int A, int B) { return Use[A] > Use[B]; });

  std::vector<int> PhysicalOrder(Map.numQubits());
  std::iota(PhysicalOrder.begin(), PhysicalOrder.end(), 0);
  std::stable_sort(PhysicalOrder.begin(), PhysicalOrder.end(),
                   [&](int A, int B) {
                     return Map.neighbours(A).size() >
                            Map.neighbours(B).size();
                   });
  // Trial perturbation: Fisher-Yates over the physical prefix.
  Xoshiro256 Rng(Seed);
  int Prefix = std::min<int>(Map.numQubits(), NumLogical * 2);
  for (int I = Prefix - 1; I > 0; --I) {
    int J = static_cast<int>(Rng.nextBelow(I + 1));
    std::swap(PhysicalOrder[I], PhysicalOrder[J]);
  }
  std::vector<int> Layout(NumLogical);
  for (int I = 0; I < NumLogical; ++I)
    Layout[LogicalOrder[I]] = PhysicalOrder[I];
  return Layout;
}

} // namespace

Expected<SabreResult> baselines::routeSabre(const Circuit &Logical,
                                            const CouplingMap &Map,
                                            const SabreOptions &Options) {
  if (Logical.numQubits() > Map.numQubits())
    return Expected<SabreResult>::error(
        "circuit needs " + std::to_string(Logical.numQubits()) +
        " qubits but the device has " + std::to_string(Map.numQubits()));
  // The O(N^2)-per-query distance structure dominates the O(N^3) budget
  // the paper attributes to SABRE-style routing.
  std::vector<std::vector<int>> Dist = Map.allPairsDistances();
  SabreResult Best;
  bool HaveBest = false;
  for (int Trial = 0; Trial < Options.Trials; ++Trial) {
    std::vector<int> Layout =
        makeLayout(Logical, Map, Options.Seed + Trial * 7919);
    SabreResult R = routeOnce(Logical, Map, std::move(Layout), Dist);
    if (!HaveBest || R.SwapCount < Best.SwapCount) {
      Best = std::move(R);
      HaveBest = true;
    }
  }
  return Best;
}
