//===- baselines/Atomique.cpp - Atomique-style FPQA compiler --------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/Atomique.h"

#include "circuit/Decompose.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

using namespace weaver;
using namespace weaver::baselines;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

BaselineResult baselines::compileAtomique(const sat::CnfFormula &Formula,
                                          const qaoa::QaoaParams &Qaoa,
                                          const AtomiqueParams &Params) {
  BaselineResult R;
  R.Compiler = "atomique";
  auto Start = std::chrono::steady_clock::now();

  qaoa::QaoaParams P = Qaoa;
  P.UseCompressedClauses = false;
  Circuit Logical = qaoa::buildQaoaCircuit(Formula, P);
  circuit::BasisOptions Basis;
  Basis.KeepCcz = false;
  Circuit Native = circuit::translateToBasis(Logical, Basis);

  int N = Native.numQubits();
  std::vector<std::pair<int, int>> CzGates;
  size_t OneQubitGates = 0;
  for (const Gate &G : Native) {
    if (G.kind() == GateKind::CZ)
      CzGates.push_back({G.qubit(0), G.qubit(1)});
    else if (G.numQubits() == 1 && G.kind() != GateKind::Measure)
      ++OneQubitGates;
  }

  // Stage 1: qubit-array mapping. Hill-climb the 1-D atom order over all
  // adjacent and non-adjacent position swaps (O(sweeps * N^2 * gates/N)).
  std::vector<int> PositionOf(N);
  std::iota(PositionOf.begin(), PositionOf.end(), 0);
  std::vector<std::vector<size_t>> GatesOf(N);
  for (size_t I = 0; I < CzGates.size(); ++I) {
    GatesOf[CzGates[I].first].push_back(I);
    GatesOf[CzGates[I].second].push_back(I);
  }
  auto DeltaForSwap = [&](int QA, int QB) {
    double Before = 0, After = 0;
    auto Probe = [&](int Q) {
      for (size_t GI : GatesOf[Q]) {
        auto [A, B] = CzGates[GI];
        Before += std::abs(PositionOf[A] - PositionOf[B]);
        int PA = A == QA ? PositionOf[QB] : (A == QB ? PositionOf[QA]
                                                     : PositionOf[A]);
        int PB = B == QA ? PositionOf[QB] : (B == QB ? PositionOf[QA]
                                                     : PositionOf[B]);
        After += std::abs(PA - PB);
      }
    };
    Probe(QA);
    Probe(QB);
    return After - Before;
  };
  for (int Sweep = 0; Sweep < Params.MappingSweeps; ++Sweep) {
    bool Improved = false;
    for (int QA = 0; QA < N; ++QA)
      for (int QB = QA + 1; QB < N; ++QB)
        if (DeltaForSwap(QA, QB) < -1e-12) {
          std::swap(PositionOf[QA], PositionOf[QB]);
          Improved = true;
        }
    if (!Improved)
      break;
  }

  // Stage 2: ASAP layering of CZ gates; one AOD move + one Rydberg pulse
  // per layer.
  std::vector<size_t> QubitLayer(N, 0);
  std::vector<double> LayerMoveDistance;
  std::vector<size_t> LayerSize;
  for (auto [A, B] : CzGates) {
    size_t Layer = std::max(QubitLayer[A], QubitLayer[B]);
    QubitLayer[A] = QubitLayer[B] = Layer + 1;
    if (Layer >= LayerMoveDistance.size()) {
      LayerMoveDistance.resize(Layer + 1, 0);
      LayerSize.resize(Layer + 1, 0);
    }
    double Dist =
        std::abs(PositionOf[A] - PositionOf[B]) * Params.AtomSpacing;
    LayerMoveDistance[Layer] = std::max(LayerMoveDistance[Layer], Dist);
    LayerSize[Layer]++;
  }
  size_t Layers = LayerMoveDistance.size();

  R.CompileSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  const fpqa::HardwareParams &Hw = Params.Hw;
  // Pulses: one Raman per 1-qubit gate, and per layer one shuttle batch,
  // one pick-up/put-down transfer pair and one Rydberg pulse.
  R.Pulses = OneQubitGates + Layers * 4;
  R.TwoQubitGates = CzGates.size();

  double MoveTime = 0;
  for (double D : LayerMoveDistance)
    MoveTime += D / Hw.ShuttleSpeedUmPerSec;
  R.ExecutionSeconds = OneQubitGates * Hw.RamanLocalTime +
                       Layers * (2 * Hw.TransferTime + Hw.RydbergTime) +
                       MoveTime;

  double EpsLog = 0;
  EpsLog += static_cast<double>(CzGates.size()) * std::log(Hw.CzFidelity);
  EpsLog += static_cast<double>(OneQubitGates) * std::log(Hw.RamanFidelity);
  EpsLog += static_cast<double>(2 * Layers) * std::log(Hw.TransferFidelity);
  EpsLog -= N * R.ExecutionSeconds / Hw.T2;
  R.Eps = std::exp(EpsLog);
  return R;
}
