//===- baselines/Geyser.cpp - Geyser-style block compiler -----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/Geyser.h"

#include "circuit/Decompose.h"
#include "sim/GateMatrices.h"
#include "sim/StateVector.h"
#include "support/Rng.h"

#include <algorithm>
#include <chrono>
#include <cmath>

using namespace weaver;
using namespace weaver::baselines;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

/// A contiguous run of gates acting on at most three qubits.
struct Block {
  std::vector<int> Qubits; ///< up to 3 distinct qubits
  Circuit Sub{3};          ///< gates re-indexed into [0, Qubits.size())
};

/// Greedy blocking: a gate joins the open block when the qubit union stays
/// within three; otherwise the block closes.
std::vector<Block> blockCircuit(const Circuit &C) {
  std::vector<Block> Blocks;
  Block Current;
  auto Flush = [&]() {
    if (!Current.Sub.empty())
      Blocks.push_back(std::move(Current));
    Current = Block();
  };
  for (const Gate &G : C) {
    if (G.kind() == GateKind::Barrier || G.kind() == GateKind::Measure)
      continue;
    std::vector<int> Union = Current.Qubits;
    for (unsigned I = 0, E = G.numQubits(); I < E; ++I) {
      int Q = G.qubit(I);
      if (std::find(Union.begin(), Union.end(), Q) == Union.end())
        Union.push_back(Q);
    }
    if (Union.size() > 3) {
      Flush();
      Union.clear();
      for (unsigned I = 0, E = G.numQubits(); I < E; ++I)
        Union.push_back(G.qubit(I));
    }
    Current.Qubits = Union;
    // Re-index operands into the block-local register.
    auto LocalIndex = [&](int Q) {
      return static_cast<int>(std::find(Current.Qubits.begin(),
                                        Current.Qubits.end(), Q) -
                              Current.Qubits.begin());
    };
    switch (G.numQubits()) {
    case 1:
      if (G.numParams() == 3)
        Current.Sub.u3(G.param(0), G.param(1), G.param(2),
                       LocalIndex(G.qubit(0)));
      else if (G.numParams() == 1)
        Current.Sub.append(Gate(G.kind(), {LocalIndex(G.qubit(0))},
                                {G.param(0)}));
      else
        Current.Sub.append(Gate(G.kind(), {LocalIndex(G.qubit(0))}));
      break;
    case 2:
      if (G.numParams() == 1)
        Current.Sub.append(Gate(G.kind(),
                                {LocalIndex(G.qubit(0)),
                                 LocalIndex(G.qubit(1))},
                                {G.param(0)}));
      else
        Current.Sub.append(Gate(
            G.kind(), {LocalIndex(G.qubit(0)), LocalIndex(G.qubit(1))}));
      break;
    default:
      Current.Sub.append(Gate(G.kind(),
                              {LocalIndex(G.qubit(0)), LocalIndex(G.qubit(1)),
                               LocalIndex(G.qubit(2))}));
      break;
    }
  }
  Flush();
  return Blocks;
}

/// Numeric re-synthesis stand-in: random template search minimising the
/// max-norm distance between the block unitary and a (3 pulse layers x 3
/// Raman rotations) template. This is where Geyser burns its compile time.
double synthesiseBlock(const Block &B, int Trials, Xoshiro256 &Rng) {
  sim::Matrix Target = sim::circuitUnitary(B.Sub);
  double Best = 1e300;
  constexpr double TwoPi = 6.28318530717958647692;
  for (int T = 0; T < Trials; ++T) {
    Circuit Template(3);
    for (int Layer = 0; Layer < 3; ++Layer) {
      for (int Q = 0; Q < 3; ++Q)
        Template.u3(Rng.nextDouble() * TwoPi, Rng.nextDouble() * TwoPi,
                    Rng.nextDouble() * TwoPi, Q);
      Template.ccz(0, 1, 2);
    }
    for (int Q = 0; Q < 3; ++Q)
      Template.u3(Rng.nextDouble() * TwoPi, Rng.nextDouble() * TwoPi,
                  Rng.nextDouble() * TwoPi, Q);
    Best = std::min(Best, Target.maxAbsDiff(sim::circuitUnitary(Template)));
  }
  return Best;
}

} // namespace

BaselineResult baselines::compileGeyser(const sat::CnfFormula &Formula,
                                        const qaoa::QaoaParams &Qaoa,
                                        const GeyserParams &Params) {
  BaselineResult R;
  R.Compiler = "geyser";
  R.EpsMeaningful = false; // block approximation (paper §8.4)
  auto Start = std::chrono::steady_clock::now();
  auto Deadline = Start + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(
                                  Params.DeadlineSeconds));

  qaoa::QaoaParams P = Qaoa;
  P.UseCompressedClauses = false;
  Circuit Logical = qaoa::buildQaoaCircuit(Formula, P);
  circuit::BasisOptions Basis;
  Basis.KeepCcz = false;
  Circuit Native = circuit::translateToBasis(Logical, Basis);

  std::vector<Block> Blocks = blockCircuit(Native);
  Xoshiro256 Rng(0xfe15e5);
  for (const Block &B : Blocks) {
    synthesiseBlock(B, Params.SynthesisTrials, Rng);
    if (std::chrono::steady_clock::now() > Deadline) {
      R.TimedOut = true;
      R.CompileSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - Start)
                             .count();
      return R;
    }
  }

  R.CompileSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  const fpqa::HardwareParams &Hw = Params.Hw;
  // Template output per block: three pulse layers, each a composite
  // 3-qubit pulse framed by per-qubit rotation triplets (3 x 9), plus the
  // closing rotation layer — the pulse-heavy signature Fig. 10b shows for
  // Geyser.
  size_t RamanPulses = Blocks.size() * 36;
  size_t CompositePulses = Blocks.size() * 3;
  R.Pulses = RamanPulses + CompositePulses;
  R.ThreeQubitGates = CompositePulses;
  // No atom movement: blocks execute back to back.
  R.ExecutionSeconds =
      RamanPulses * Hw.RamanLocalTime + CompositePulses * Hw.RydbergTime;
  R.Eps = 0;
  return R;
}
