//===- baselines/Backend.h - Common compiler backend interface -*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retargeting interface of Fig. 3: every compiler in the repository —
/// the Weaver FPQA path and the four baselines (superconducting/SABRE,
/// Atomique, DPQA, Geyser) — is invocable through one \c Backend API that
/// takes a MAX-3SAT formula plus QAOA parameters and returns the uniform
/// \c BaselineResult metric record. Drivers (benches, examples, the batch
/// compiler) retarget by swapping the backend object, not the call site.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_BASELINES_BACKEND_H
#define WEAVER_BASELINES_BACKEND_H

#include "baselines/Atomique.h"
#include "baselines/Dpqa.h"
#include "baselines/Geyser.h"
#include "baselines/Result.h"
#include "baselines/Superconducting.h"
#include "core/WeaverCompiler.h"
#include "qaoa/Builder.h"
#include "sat/Cnf.h"
#include "support/CancelToken.h"
#include "support/Status.h"

#include <memory>
#include <string>
#include <vector>

namespace weaver {
namespace baselines {

/// The full artefact of one compile, as served by the CompileService:
/// uniform metrics, the emitted wQASM text for backends that produce one
/// (only Weaver today), and the cache/cancellation disposition.
struct CompileOutput {
  BaselineResult Metrics;
  /// Printed wQASM program; empty for backends without a pulse-level
  /// output format.
  std::string Wqasm;
  /// The compile observed its CancelToken and aborted between passes.
  bool Cancelled = false;
  /// PassCache tier diagnostics (Weaver only; see WeaverResult).
  bool FrontHalfFromCache = false;
  bool ProgramFromCache = false;
};

/// A compiler backend: formula + QAOA parameters in, uniform metrics out.
/// Implementations must be safe to call concurrently from multiple
/// threads on distinct formulas (the BatchCompiler relies on it).
class Backend {
public:
  virtual ~Backend() = default;

  /// Stable lower-case backend name ("weaver", "superconducting", ...).
  virtual std::string name() const = 0;

  /// Compiles the QAOA program for \p Formula. Infeasible instances are
  /// reported through the result's TimedOut/Unsupported flags, never by
  /// crashing.
  virtual BaselineResult compile(const sat::CnfFormula &Formula,
                                 const qaoa::QaoaParams &Qaoa) const = 0;

  /// Compiles and additionally returns the printed program plus the
  /// cancellation/cache disposition — the entry point the CompileService
  /// uses. The default forwards to compile() and supports cancellation
  /// only before the compile starts; WeaverBackend overrides it to thread
  /// \p Cancel through the pass pipeline (aborting between passes) and to
  /// print the emitted wQASM.
  virtual CompileOutput compileFull(const sat::CnfFormula &Formula,
                                    const qaoa::QaoaParams &Qaoa,
                                    const CancelToken *Cancel = nullptr) const;
};

/// The five compilers of the paper's evaluation, in its plot order.
enum class BackendKind { Superconducting, Atomique, Weaver, Dpqa, Geyser };

inline constexpr BackendKind AllBackendKinds[] = {
    BackendKind::Superconducting, BackendKind::Atomique, BackendKind::Weaver,
    BackendKind::Dpqa, BackendKind::Geyser};

/// Returns the stable name of \p Kind ("superconducting", ...).
const char *backendKindName(BackendKind Kind);

/// Resolves a stable name back to its kind; fails on unknown names.
Expected<BackendKind> backendKindFromName(const std::string &Name);

/// Constructs the backend for \p Kind with default parameters.
std::unique_ptr<Backend> createBackend(BackendKind Kind);

/// Constructs a backend by its stable name; fails on unknown names.
Expected<std::unique_ptr<Backend>> createBackend(const std::string &Name);

/// Adapts a WeaverResult into the shared metric record.
BaselineResult toBaselineResult(const core::WeaverResult &W);

// --- Concrete backends (constructible with custom knobs) ----------------

class SuperconductingBackend : public Backend {
public:
  explicit SuperconductingBackend(SuperconductingParams Params = {})
      : Params(Params) {}
  std::string name() const override { return "superconducting"; }
  BaselineResult compile(const sat::CnfFormula &Formula,
                         const qaoa::QaoaParams &Qaoa) const override;

private:
  SuperconductingParams Params;
};

class AtomiqueBackend : public Backend {
public:
  explicit AtomiqueBackend(AtomiqueParams Params = {}) : Params(Params) {}
  std::string name() const override { return "atomique"; }
  BaselineResult compile(const sat::CnfFormula &Formula,
                         const qaoa::QaoaParams &Qaoa) const override;

private:
  AtomiqueParams Params;
};

/// The Weaver FPQA path behind the common interface. The per-call QAOA
/// parameters override the ones embedded in the options.
class WeaverBackend : public Backend {
public:
  explicit WeaverBackend(core::WeaverOptions Options = {})
      : Options(std::move(Options)) {}
  std::string name() const override { return "weaver"; }
  BaselineResult compile(const sat::CnfFormula &Formula,
                         const qaoa::QaoaParams &Qaoa) const override;
  CompileOutput compileFull(const sat::CnfFormula &Formula,
                            const qaoa::QaoaParams &Qaoa,
                            const CancelToken *Cancel = nullptr) const override;

private:
  core::WeaverOptions Options;
};

class DpqaBackend : public Backend {
public:
  explicit DpqaBackend(DpqaParams Params = {}) : Params(Params) {}
  std::string name() const override { return "dpqa"; }
  BaselineResult compile(const sat::CnfFormula &Formula,
                         const qaoa::QaoaParams &Qaoa) const override;

private:
  DpqaParams Params;
};

class GeyserBackend : public Backend {
public:
  explicit GeyserBackend(GeyserParams Params = {}) : Params(Params) {}
  std::string name() const override { return "geyser"; }
  BaselineResult compile(const sat::CnfFormula &Formula,
                         const qaoa::QaoaParams &Qaoa) const override;

private:
  GeyserParams Params;
};

} // namespace baselines
} // namespace weaver

#endif // WEAVER_BASELINES_BACKEND_H
