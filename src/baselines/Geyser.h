//===- baselines/Geyser.h - Geyser-style block compiler --------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-implementation of the cost structure of Geyser [Patel et al.,
/// ISCA'22]: the circuit is partitioned into 3-qubit blocks, and each
/// block's 8x8 unitary is re-synthesised against a pulse template by
/// numeric search. The per-block numeric synthesis is what makes Geyser's
/// compile time scale with the number of operations, O(K^2) in the
/// paper's Table 2, and time out above 20 variables. Geyser uses a fixed
/// atom grid (no shuttling), which is why it attains the lowest execution
/// times but many pulses (Fig. 10b/11a); its EPS is excluded in the
/// paper's Fig. 12 because of the block approximation and we mark it
/// not-meaningful likewise.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_BASELINES_GEYSER_H
#define WEAVER_BASELINES_GEYSER_H

#include "baselines/Result.h"
#include "fpqa/HardwareParams.h"
#include "qaoa/Builder.h"
#include "sat/Cnf.h"

namespace weaver {
namespace baselines {

/// Geyser knobs.
struct GeyserParams {
  fpqa::HardwareParams Hw;
  /// Random template trials per block (the numeric synthesis budget).
  int SynthesisTrials = 600;
  /// Wall-clock deadline; exceeding it marks the result TimedOut.
  double DeadlineSeconds = 120.0;
};

/// Compiles the QAOA program for \p Formula in the Geyser style.
BaselineResult compileGeyser(
    const sat::CnfFormula &Formula,
    const qaoa::QaoaParams &Qaoa = qaoa::QaoaParams(),
    const GeyserParams &Params = GeyserParams());

} // namespace baselines
} // namespace weaver

#endif // WEAVER_BASELINES_GEYSER_H
