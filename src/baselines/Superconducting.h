//===- baselines/Superconducting.h - Qiskit-style SC compiler --*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The superconducting path of Fig. 3: the hardware-agnostic circuit is
/// routed onto an IBM-Washington-like 127-qubit heavy-hex device with
/// SABRE, decomposed to the {U3, CZ} basis (SWAP = 3 CX, §5.3), scheduled
/// with superconducting gate durations, and scored with the per-gate error
/// model the paper's evaluation uses. Stands in for the Qiskit transpiler
/// (DESIGN.md substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_BASELINES_SUPERCONDUCTING_H
#define WEAVER_BASELINES_SUPERCONDUCTING_H

#include "baselines/Result.h"
#include "baselines/Sabre.h"
#include "sat/Cnf.h"
#include "qaoa/Builder.h"

namespace weaver {
namespace baselines {

/// IBM-Washington-like calibration constants.
struct SuperconductingParams {
  int NumQubits = 127;
  double OneQubitTime = 35e-9;
  double TwoQubitTime = 300e-9;
  double MeasureTime = 800e-9;
  double OneQubitFidelity = 0.99975;
  double TwoQubitFidelity = 0.988; ///< median CX on Washington
  double MeasureFidelity = 0.99;
  double T2 = 100e-6;
  SabreOptions Sabre;
};

/// Compiles an arbitrary hardware-agnostic circuit onto the
/// superconducting backend — the retargeting path of §4.2 (a wQASM file
/// with its annotations ignored is a plain OpenQASM circuit that this
/// function maps onto the heavy-hex device). Marks Unsupported when the
/// circuit is wider than the device.
BaselineResult compileSuperconductingCircuit(
    const circuit::Circuit &Logical,
    const SuperconductingParams &Params = SuperconductingParams());

/// Compiles the QAOA program for \p Formula onto the superconducting
/// backend. Marks Unsupported when the formula needs more variables than
/// the device has qubits (the paper caps SC at 100 variables).
BaselineResult compileSuperconducting(
    const sat::CnfFormula &Formula,
    const qaoa::QaoaParams &Qaoa = qaoa::QaoaParams(),
    const SuperconductingParams &Params = SuperconductingParams());

} // namespace baselines
} // namespace weaver

#endif // WEAVER_BASELINES_SUPERCONDUCTING_H
