//===- baselines/Backend.cpp - Common compiler backend interface ----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "baselines/Backend.h"

#include "qasm/Printer.h"

using namespace weaver;
using namespace weaver::baselines;

CompileOutput Backend::compileFull(const sat::CnfFormula &Formula,
                                   const qaoa::QaoaParams &Qaoa,
                                   const CancelToken *Cancel) const {
  CompileOutput Out;
  // Baselines have no between-pass checkpoints; honour the token at the
  // only safe point — before the compile starts.
  if (Cancel && Cancel->checkpoint()) {
    Out.Cancelled = true;
    Out.Metrics.Compiler = name();
    Out.Metrics.Unsupported = true;
    Out.Metrics.Diagnostic = CancelledDiagnostic;
    return Out;
  }
  Out.Metrics = compile(Formula, Qaoa);
  return Out;
}

CompileOutput WeaverBackend::compileFull(const sat::CnfFormula &Formula,
                                         const qaoa::QaoaParams &Qaoa,
                                         const CancelToken *Cancel) const {
  core::WeaverOptions Opt = Options;
  Opt.Qaoa = Qaoa;
  Opt.Cancel = Cancel;
  CompileOutput Out;
  auto W = core::compileWeaver(Formula, Opt);
  if (!W) {
    Out.Metrics.Compiler = name();
    if (isCancelledStatus(W.status())) {
      Out.Cancelled = true;
      Out.Metrics.Diagnostic = CancelledDiagnostic;
    } else {
      Out.Metrics.Unsupported = true;
      Out.Metrics.Diagnostic = W.message();
    }
    return Out;
  }
  Out.Metrics = toBaselineResult(*W);
  Out.Wqasm = qasm::printWqasm(W->Program);
  Out.FrontHalfFromCache = W->FrontHalfFromCache;
  Out.ProgramFromCache = W->ProgramFromCache;
  return Out;
}

const char *baselines::backendKindName(BackendKind Kind) {
  switch (Kind) {
  case BackendKind::Superconducting:
    return "superconducting";
  case BackendKind::Atomique:
    return "atomique";
  case BackendKind::Weaver:
    return "weaver";
  case BackendKind::Dpqa:
    return "dpqa";
  case BackendKind::Geyser:
    return "geyser";
  }
  return "unknown";
}

std::unique_ptr<Backend> baselines::createBackend(BackendKind Kind) {
  switch (Kind) {
  case BackendKind::Superconducting:
    return std::make_unique<SuperconductingBackend>();
  case BackendKind::Atomique:
    return std::make_unique<AtomiqueBackend>();
  case BackendKind::Weaver:
    return std::make_unique<WeaverBackend>();
  case BackendKind::Dpqa:
    return std::make_unique<DpqaBackend>();
  case BackendKind::Geyser:
    return std::make_unique<GeyserBackend>();
  }
  return nullptr;
}

Expected<BackendKind> baselines::backendKindFromName(const std::string &Name) {
  for (BackendKind Kind : AllBackendKinds)
    if (Name == backendKindName(Kind))
      return Kind;
  return Expected<BackendKind>::error("unknown backend '" + Name + "'");
}

Expected<std::unique_ptr<Backend>>
baselines::createBackend(const std::string &Name) {
  Expected<BackendKind> Kind = backendKindFromName(Name);
  if (!Kind)
    return Expected<std::unique_ptr<Backend>>(Kind.status());
  return createBackend(*Kind);
}

BaselineResult baselines::toBaselineResult(const core::WeaverResult &W) {
  BaselineResult R;
  R.Compiler = "weaver";
  R.CompileSeconds = W.CompileSeconds;
  R.Pulses = W.Stats.totalPulses();
  R.TwoQubitGates = W.Stats.CzGates;
  R.ThreeQubitGates = W.Stats.CczGates;
  R.ExecutionSeconds = W.Stats.Duration;
  R.Eps = W.Stats.Eps;
  R.Colors = W.Coloring.numColors();
  return R;
}

BaselineResult
SuperconductingBackend::compile(const sat::CnfFormula &Formula,
                                const qaoa::QaoaParams &Qaoa) const {
  BaselineResult R = compileSuperconducting(Formula, Qaoa, Params);
  R.Compiler = name();
  return R;
}

BaselineResult AtomiqueBackend::compile(const sat::CnfFormula &Formula,
                                        const qaoa::QaoaParams &Qaoa) const {
  BaselineResult R = compileAtomique(Formula, Qaoa, Params);
  R.Compiler = name();
  return R;
}

BaselineResult WeaverBackend::compile(const sat::CnfFormula &Formula,
                                      const qaoa::QaoaParams &Qaoa) const {
  core::WeaverOptions Opt = Options;
  Opt.Qaoa = Qaoa;
  auto W = core::compileWeaver(Formula, Opt);
  if (!W) {
    // Malformed formulas (clause wider than three literals) and pipeline
    // failures both land here; keep the message so drivers can tell a bad
    // input from a compiler bug.
    BaselineResult R;
    R.Compiler = name();
    R.Unsupported = true;
    R.Diagnostic = W.message();
    return R;
  }
  return toBaselineResult(*W);
}

BaselineResult DpqaBackend::compile(const sat::CnfFormula &Formula,
                                    const qaoa::QaoaParams &Qaoa) const {
  BaselineResult R = compileDpqa(Formula, Qaoa, Params);
  R.Compiler = name();
  return R;
}

BaselineResult GeyserBackend::compile(const sat::CnfFormula &Formula,
                                      const qaoa::QaoaParams &Qaoa) const {
  BaselineResult R = compileGeyser(Formula, Qaoa, Params);
  R.Compiler = name();
  return R;
}
