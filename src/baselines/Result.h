//===- baselines/Result.h - Common baseline metrics ------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metric record every compiler (Weaver and the four baselines)
/// produces for the evaluation harness: compile time (Fig. 8), pulse count
/// (Fig. 10b), execution time (Fig. 11) and EPS (Fig. 12).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_BASELINES_RESULT_H
#define WEAVER_BASELINES_RESULT_H

#include <cstddef>
#include <string>

namespace weaver {
namespace baselines {

/// Per-compilation metrics, uniform across compilers.
struct BaselineResult {
  std::string Compiler;
  bool TimedOut = false;      ///< compiler hit its deadline (rendered "X")
  bool Unsupported = false;   ///< instance exceeds the backend (SC > 127q)
  double CompileSeconds = 0;
  size_t Pulses = 0;          ///< laser pulses / gate operations issued
  size_t TwoQubitGates = 0;
  size_t ThreeQubitGates = 0;
  size_t SwapGates = 0;       ///< routing overhead (superconducting)
  double ExecutionSeconds = 0;
  double Eps = 0;             ///< estimated probability of success
  bool EpsMeaningful = true;  ///< Geyser's block approximation excludes EPS
  int Colors = 0;             ///< clause colours used (FPQA/Weaver only)
  std::string Diagnostic;     ///< failure detail when !usable()

  bool usable() const { return !TimedOut && !Unsupported; }
};

} // namespace baselines
} // namespace weaver

#endif // WEAVER_BASELINES_RESULT_H
