//===- support/BinaryIO.cpp - Generic binary serialization ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/BinaryIO.h"

#include <atomic>
#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace weaver;

uint64_t weaver::fnv1a64(const void *Data, size_t Size, uint64_t Seed) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Size; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

void BinaryWriter::patchU64(size_t Offset, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Buf[Offset + I] = static_cast<uint8_t>(V >> (8 * I));
}

std::string BinaryReader::readString() {
  size_t Len = readLength(1);
  if (!ok())
    return {};
  std::string S(reinterpret_cast<const char *>(P + Pos), Len);
  Pos += Len;
  return S;
}

// --- MappedFile ----------------------------------------------------------

Expected<MappedFile> MappedFile::open(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Expected<MappedFile>::error("cannot open " + Path + ": " +
                                       std::strerror(errno));
  struct stat St;
  if (fstat(Fd, &St) != 0) {
    int E = errno;
    ::close(Fd);
    return Expected<MappedFile>::error("cannot stat " + Path + ": " +
                                       std::strerror(E));
  }
  if (St.st_size <= 0) {
    ::close(Fd);
    return Expected<MappedFile>::error("empty file " + Path);
  }
  size_t Size = static_cast<size_t>(St.st_size);
  void *Data = mmap(nullptr, Size, PROT_READ, MAP_PRIVATE, Fd, 0);
  ::close(Fd); // the mapping keeps its own reference
  if (Data == MAP_FAILED)
    return Expected<MappedFile>::error("cannot mmap " + Path + ": " +
                                       std::strerror(errno));
  return MappedFile(Data, Size);
}

MappedFile &MappedFile::operator=(MappedFile &&O) noexcept {
  if (this != &O) {
    if (Data)
      munmap(Data, Size_);
    Data = O.Data;
    Size_ = O.Size_;
    O.Data = nullptr;
    O.Size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (Data)
    munmap(Data, Size_);
}

// --- Atomic write --------------------------------------------------------

Status weaver::writeFileAtomic(const std::string &Path, const void *Data,
                               size_t Size) {
  // Pid alone is not unique enough: two threads of one process saving to
  // the same Path would share (and clobber) one temp file. The counter
  // keeps every in-flight write on its own temp name.
  static std::atomic<uint64_t> Seq{0};
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(Seq.fetch_add(1));
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return Status::error("cannot create " + Tmp + ": " +
                         std::strerror(errno));
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  size_t Written = 0;
  while (Written < Size) {
    ssize_t N = ::write(Fd, P + Written, Size - Written);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      int E = errno;
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return Status::error("cannot write " + Tmp + ": " + std::strerror(E));
    }
    Written += static_cast<size_t>(N);
  }
  // Flush file contents before the rename makes them visible under Path;
  // a crash between the two leaves either the old file or the new one.
  if (fsync(Fd) != 0) {
    int E = errno;
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return Status::error("cannot fsync " + Tmp + ": " + std::strerror(E));
  }
  ::close(Fd);
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    int E = errno;
    ::unlink(Tmp.c_str());
    return Status::error("cannot rename " + Tmp + " to " + Path + ": " +
                         std::strerror(E));
  }
  return Status::success();
}
