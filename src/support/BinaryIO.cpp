//===- support/BinaryIO.cpp - Generic binary serialization ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/BinaryIO.h"

#include "support/FaultInjection.h"

#include <atomic>
#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace weaver;

uint64_t weaver::fnv1a64(const void *Data, size_t Size, uint64_t Seed) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Size; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

void BinaryWriter::patchU64(size_t Offset, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Buf[Offset + I] = static_cast<uint8_t>(V >> (8 * I));
}

std::string BinaryReader::readString() {
  size_t Len = readLength(1);
  if (!ok())
    return {};
  std::string S(reinterpret_cast<const char *>(P + Pos), Len);
  Pos += Len;
  return S;
}

// --- MappedFile ----------------------------------------------------------

Expected<MappedFile> MappedFile::open(const std::string &Path) {
  if (fault::fire("binio.mmap.open"))
    return Expected<MappedFile>::error("cannot open " + Path +
                                       ": injected fault");
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Expected<MappedFile>::error("cannot open " + Path + ": " +
                                       std::strerror(errno));
  struct stat St;
  if (fstat(Fd, &St) != 0) {
    int E = errno;
    ::close(Fd);
    return Expected<MappedFile>::error("cannot stat " + Path + ": " +
                                       std::strerror(E));
  }
  if (St.st_size <= 0) {
    ::close(Fd);
    return Expected<MappedFile>::error("empty file " + Path);
  }
  size_t Size = static_cast<size_t>(St.st_size);
  // Injected truncation: map only a prefix, so readers observe exactly
  // what a file cut short by a crashed writer would give them.
  Size = fault::clampLen("binio.mmap.truncate", Size, 1);
  void *Data = mmap(nullptr, Size, PROT_READ, MAP_PRIVATE, Fd, 0);
  ::close(Fd); // the mapping keeps its own reference
  if (Data == MAP_FAILED)
    return Expected<MappedFile>::error("cannot mmap " + Path + ": " +
                                       std::strerror(errno));
  return MappedFile(Data, Size);
}

MappedFile &MappedFile::operator=(MappedFile &&O) noexcept {
  if (this != &O) {
    if (Data)
      munmap(Data, Size_);
    Data = O.Data;
    Size_ = O.Size_;
    O.Data = nullptr;
    O.Size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (Data)
    munmap(Data, Size_);
}

// --- Atomic write --------------------------------------------------------

namespace {

/// Flushes the directory entry for \p Path: after rename, the new name
/// is only durable once its parent directory's metadata reaches disk.
Status fsyncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir =
      Slash == std::string::npos
          ? std::string(".")
          : (Slash == 0 ? std::string("/") : Path.substr(0, Slash));
  if (fault::fire("binio.dirfsync"))
    return Status::error("cannot fsync directory " + Dir +
                         ": injected fault");
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return Status::error("cannot open directory " + Dir + ": " +
                         std::strerror(errno));
  int Rc = fsync(Fd);
  int E = errno;
  ::close(Fd);
  if (Rc != 0)
    return Status::error("cannot fsync directory " + Dir + ": " +
                         std::strerror(E));
  return Status::success();
}

} // namespace

Status weaver::writeFileAtomic(const std::string &Path, const void *Data,
                               size_t Size) {
  // Pid alone is not unique enough: two threads of one process saving to
  // the same Path would share (and clobber) one temp file. The counter
  // keeps every in-flight write on its own temp name.
  static std::atomic<uint64_t> Seq{0};
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(Seq.fetch_add(1));
  if (fault::fire("binio.open"))
    return Status::error("cannot create " + Tmp + ": injected fault");
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return Status::error("cannot create " + Tmp + ": " +
                         std::strerror(errno));
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  // Injected short write: a prefix lands on disk and the temp file is
  // abandoned in place — the on-disk state a writer killed mid-write
  // leaves behind. Callers and sweeps must tolerate the stray temp.
  size_t Limit = fault::clampLen("binio.write.short", Size);
  size_t Written = 0;
  while (Written < Size) {
    if (Written >= Limit) {
      ::close(Fd);
      return Status::error("cannot write " + Tmp +
                           ": injected short write after " +
                           std::to_string(Written) + " bytes");
    }
    ssize_t N = ::write(Fd, P + Written, Limit - Written);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      int E = errno;
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return Status::error("cannot write " + Tmp + ": " + std::strerror(E));
    }
    Written += static_cast<size_t>(N);
  }
  if (fault::fire("binio.write.enospc")) {
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return Status::error("cannot write " + Tmp +
                         ": no space left on device (injected)");
  }
  if (fault::fire("binio.fsync")) {
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return Status::error("cannot fsync " + Tmp + ": injected fault");
  }
  // Flush file contents before the rename makes them visible under Path;
  // a crash between the two leaves either the old file or the new one.
  if (fsync(Fd) != 0) {
    int E = errno;
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return Status::error("cannot fsync " + Tmp + ": " + std::strerror(E));
  }
  // A failed close can report a deferred write error; treating it as
  // success would rename a possibly-incomplete file into place.
  if (::close(Fd) != 0) {
    int E = errno;
    ::unlink(Tmp.c_str());
    return Status::error("cannot close " + Tmp + ": " + std::strerror(E));
  }
  if (fault::fire("binio.rename")) {
    ::unlink(Tmp.c_str());
    return Status::error("cannot rename " + Tmp + " to " + Path +
                         ": injected fault");
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    int E = errno;
    ::unlink(Tmp.c_str());
    return Status::error("cannot rename " + Tmp + " to " + Path + ": " +
                         std::strerror(E));
  }
  // The rename itself is atomic, but only the parent directory's fsync
  // makes the new name durable — without it a power cut right after a
  // "successful" save can resurrect the old snapshot (or nothing).
  return fsyncParentDir(Path);
}
