//===- support/StringUtils.h - Small string helpers -----------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String splitting/trimming/formatting helpers shared by the QASM front end
/// and the benchmark table printers.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SUPPORT_STRINGUTILS_H
#define WEAVER_SUPPORT_STRINGUTILS_H

#include "support/Status.h"

#include <string>
#include <string_view>
#include <vector>

namespace weaver {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, dropping empty pieces when \p KeepEmpty is false.
std::vector<std::string_view> split(std::string_view S, char Sep,
                                    bool KeepEmpty = false);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Formats a double compactly (shortest representation that round-trips the
/// displayed precision), e.g. for QASM angle emission.
std::string formatDouble(double Value);

/// printf-style formatting into a std::string.
std::string formatf(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses \p Tok as a decimal integer and validates [\p Min, \p Max].
/// Rejects empty tokens, trailing garbage, and overflow — a hostile
/// "99999999999999999999" is an error, never a silently clamped or
/// wrapped value. Shared by the net frame codec and the compile_server
/// line parser so both reject hostile numerics identically.
Expected<long long> parseBoundedInt(std::string_view Tok, long long Min,
                                    long long Max);

/// Parses \p Tok as a finite double (no NaN/Inf, no trailing garbage).
Expected<double> parseFiniteDouble(std::string_view Tok);

/// Full-token, range-validated integer parse for untrusted input (argv,
/// config tokens). Identical contract to parseBoundedInt; the short name
/// is the one tools are expected to reach for.
inline Expected<long long> parseInt(std::string_view Tok, long long Min,
                                    long long Max) {
  return parseBoundedInt(Tok, Min, Max);
}

/// Full-token finite-double parse validated against [\p Min, \p Max].
/// Rejects NaN/Inf, trailing garbage, and out-of-range values — the
/// double-typed sibling of parseInt for untrusted input.
Expected<double> parseDouble(std::string_view Tok, double Min, double Max);

} // namespace weaver

#endif // WEAVER_SUPPORT_STRINGUTILS_H
