//===- support/StringUtils.h - Small string helpers -----------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String splitting/trimming/formatting helpers shared by the QASM front end
/// and the benchmark table printers.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SUPPORT_STRINGUTILS_H
#define WEAVER_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace weaver {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, dropping empty pieces when \p KeepEmpty is false.
std::vector<std::string_view> split(std::string_view S, char Sep,
                                    bool KeepEmpty = false);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Formats a double compactly (shortest representation that round-trips the
/// displayed precision), e.g. for QASM angle emission.
std::string formatDouble(double Value);

/// printf-style formatting into a std::string.
std::string formatf(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace weaver

#endif // WEAVER_SUPPORT_STRINGUTILS_H
