//===- support/Status.h - Lightweight error handling ----------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver: A Retargetable Compiler
// Framework for FPQA Quantum Architectures" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exception-free error handling primitives used across all weaver libraries.
///
/// Library code in this project follows the LLVM convention of not using
/// exceptions. Fallible operations return either a \c Status (for operations
/// with no payload) or an \c Expected<T> (for operations that produce a
/// value). Both carry a human-readable error message on failure.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SUPPORT_STATUS_H
#define WEAVER_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace weaver {

/// Result of a fallible operation that produces no value.
///
/// A default-constructed Status is a success value. Failures carry an error
/// message following the LLVM diagnostic style (lowercase first word, no
/// trailing period).
class Status {
public:
  /// Creates a success value.
  Status() = default;

  /// Creates a failure carrying \p Message.
  static Status error(std::string Message) {
    Status S;
    S.Message = std::move(Message);
    S.Failed = true;
    return S;
  }

  /// Creates a success value (named constructor for symmetry).
  static Status success() { return Status(); }

  /// Returns true if this is a success value.
  bool ok() const { return !Failed; }

  /// Returns true if this is a failure; enables `if (auto S = f())`.
  explicit operator bool() const { return Failed; }

  /// Returns the error message; only meaningful when !ok().
  const std::string &message() const { return Message; }

private:
  std::string Message;
  bool Failed = false;
};

/// Result of a fallible operation that produces a \p T on success.
///
/// Mirrors llvm::Expected without the checked-flag machinery: the caller
/// tests with `if (!E)` and reads either `*E` or `E.error()`.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure from a failed Status.
  Expected(Status S) : Err(std::move(S)) {
    assert(!Err.ok() && "Expected constructed from a success Status");
  }

  /// Creates a failure carrying \p Message.
  static Expected<T> error(std::string Message) {
    return Expected<T>(Status::error(std::move(Message)));
  }

  /// Returns true if this holds a value.
  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Accesses the contained value; asserts on failure values.
  T &operator*() {
    assert(ok() && "dereferencing an error Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(ok() && "dereferencing an error Expected");
    return *Value;
  }
  T *operator->() {
    assert(ok() && "dereferencing an error Expected");
    return &*Value;
  }
  const T *operator->() const {
    assert(ok() && "dereferencing an error Expected");
    return &*Value;
  }

  /// Moves the contained value out.
  T take() {
    assert(ok() && "taking from an error Expected");
    return std::move(*Value);
  }

  /// Returns the failure Status; only meaningful when !ok().
  const Status &status() const { return Err; }

  /// Returns the error message; only meaningful when !ok().
  const std::string &message() const { return Err.message(); }

private:
  std::optional<T> Value;
  Status Err;
};

} // namespace weaver

#endif // WEAVER_SUPPORT_STATUS_H
