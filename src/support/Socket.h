//===- support/Socket.h - Socket RAII and poll-loop helpers ----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin POSIX socket layer under src/net/: an owning file-descriptor
/// handle, TCP listen/connect helpers, non-blocking I/O that folds the
/// EINTR/EAGAIN noise into three outcomes (progress, would-block, error),
/// and a self-pipe wakeup so worker threads can rouse a poll loop. All of
/// it is exception-free and returns Status/Expected like the rest of the
/// support layer; nothing here knows about frames or the compile service.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SUPPORT_SOCKET_H
#define WEAVER_SUPPORT_SOCKET_H

#include "support/Status.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace weaver {

/// Owning file descriptor; closes on destruction. Move-only.
class FdHandle {
public:
  FdHandle() = default;
  explicit FdHandle(int Fd) : Fd(Fd) {}
  FdHandle(FdHandle &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  FdHandle &operator=(FdHandle &&O) noexcept;
  FdHandle(const FdHandle &) = delete;
  FdHandle &operator=(const FdHandle &) = delete;
  ~FdHandle() { reset(); }

  bool valid() const { return Fd >= 0; }
  int get() const { return Fd; }
  /// Closes the held descriptor (if any) and adopts \p NewFd.
  void reset(int NewFd = -1);
  /// Releases ownership without closing.
  int release() {
    int F = Fd;
    Fd = -1;
    return F;
  }

private:
  int Fd = -1;
};

/// Outcome of one non-blocking I/O attempt.
enum class IoResult {
  Ok,         ///< made progress (bytes transferred, possibly fewer than asked)
  WouldBlock, ///< EAGAIN/EWOULDBLOCK — retry after the next poll
  Closed,     ///< orderly EOF (reads only)
  Error,      ///< connection reset or another hard error
};

/// Marks \p Fd non-blocking (O_NONBLOCK).
Status setNonBlocking(int Fd);

/// Disables Nagle's algorithm; request/response frames should not wait
/// for a coalescing timer.
Status setNoDelay(int Fd);

/// Creates a non-blocking TCP listen socket bound to \p BindAddress:\p Port
/// (SO_REUSEADDR set). Port 0 binds an ephemeral port; \p BoundPort
/// receives the actual port either way.
Expected<FdHandle> tcpListen(const std::string &BindAddress, uint16_t Port,
                             int Backlog, uint16_t &BoundPort);

/// Accepts one pending connection from \p ListenFd; the returned socket is
/// non-blocking. Returns an invalid handle (no error) when nothing is
/// pending.
Expected<FdHandle> tcpAccept(int ListenFd);

/// Connects to \p Host:\p Port (blocking connect, then the socket is
/// switched to non-blocking). One attempt; retry policy belongs to the
/// caller (see net::Client backoff).
Expected<FdHandle> tcpConnect(const std::string &Host, uint16_t Port);

/// One non-blocking read. On Ok, \p NumRead holds the byte count (> 0).
IoResult readSome(int Fd, void *Buf, size_t Len, size_t &NumRead);

/// One non-blocking write (SIGPIPE suppressed via MSG_NOSIGNAL). On Ok,
/// \p NumWritten holds the byte count (possibly short).
IoResult writeSome(int Fd, const void *Buf, size_t Len, size_t &NumWritten);

/// poll(2) on a single fd. \p WantWrite adds POLLOUT to the POLLIN
/// interest set. Returns <0 on error, 0 on timeout, >0 when ready.
int pollOne(int Fd, bool WantWrite, int TimeoutMs);

/// Self-pipe wakeup for a poll loop: any thread calls notify(), the poll
/// loop includes fd() in its read set and calls drain() when it fires.
/// notify() is async-signal-safe (a single write(2)).
class WakePipe {
public:
  /// Creates the pipe; both ends non-blocking and CLOEXEC.
  static Expected<WakePipe> create();

  WakePipe(WakePipe &&) = default;
  WakePipe &operator=(WakePipe &&) = default;

  int fd() const { return ReadEnd.get(); }
  /// Wakes the poll loop; coalesces with pending notifications.
  void notify() const;
  /// Empties the pipe after the poll loop observed the wakeup.
  void drain() const;

private:
  WakePipe(FdHandle R, FdHandle W)
      : ReadEnd(std::move(R)), WriteEnd(std::move(W)) {}
  FdHandle ReadEnd, WriteEnd;
};

} // namespace weaver

#endif // WEAVER_SUPPORT_SOCKET_H
