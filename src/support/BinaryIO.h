//===- support/BinaryIO.h - Generic binary serialization ------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small generic binary I/O layer used by the persistent PassCache (and
/// any future on-disk format): an append-only little-endian writer, a
/// bounds-checked reader that can safely parse hostile bytes, a read-only
/// mmap file view, an atomic whole-file writer (temp + rename, so
/// concurrent readers never observe a partially written file), and the
/// FNV-1a checksum the formats use.
///
/// The reader never throws and never reads out of bounds: the first
/// failed read latches an error flag, every subsequent read returns a
/// zero value, and length-prefixed containers are validated against the
/// remaining byte count before anything is allocated — a crafted length
/// field cannot trigger a huge allocation or an overrun.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SUPPORT_BINARYIO_H
#define WEAVER_SUPPORT_BINARYIO_H

#include "support/Status.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace weaver {

/// FNV-1a over \p Size bytes, optionally chaining from a previous hash.
uint64_t fnv1a64(const void *Data, size_t Size,
                 uint64_t Seed = 1469598103934665603ull);

/// Append-only little-endian byte-buffer writer.
class BinaryWriter {
public:
  void writeU8(uint8_t V) { Buf.push_back(V); }
  void writeU32(uint32_t V) { writeLE(V, 4); }
  void writeU64(uint64_t V) { writeLE(V, 8); }
  void writeI64(int64_t V) { writeU64(static_cast<uint64_t>(V)); }
  void writeF64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    writeU64(Bits);
  }
  void writeString(const std::string &S) {
    writeU64(S.size());
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
  void writeBytes(const void *Data, size_t Size) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    Buf.insert(Buf.end(), P, P + Size);
  }

  const std::vector<uint8_t> &bytes() const { return Buf; }
  size_t size() const { return Buf.size(); }
  /// Overwrites 8 previously written bytes at \p Offset (header patching).
  void patchU64(size_t Offset, uint64_t V);

private:
  void writeLE(uint64_t V, int NumBytes) {
    for (int I = 0; I < NumBytes; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian reader over a non-owned byte span. See
/// the file comment for the hostile-input guarantees.
class BinaryReader {
public:
  BinaryReader(const void *Data, size_t Size)
      : P(static_cast<const uint8_t *>(Data)), N(Size) {}

  bool ok() const { return !Err; }
  /// Marks the stream failed (e.g. a semantic validation failed).
  void fail() { Err = true; }
  size_t remaining() const { return N - Pos; }
  size_t position() const { return Pos; }

  uint8_t readU8() { return static_cast<uint8_t>(readLE(1)); }
  uint32_t readU32() { return static_cast<uint32_t>(readLE(4)); }
  uint64_t readU64() { return readLE(8); }
  int64_t readI64() { return static_cast<int64_t>(readU64()); }
  double readF64() {
    uint64_t Bits = readU64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string readString();
  /// Advances past \p Size bytes; fails if fewer remain.
  void skip(size_t Size) {
    if (Size > remaining()) {
      Err = true;
      return;
    }
    Pos += Size;
  }

  /// Reads a container length and validates that \p MinElemBytes per
  /// element still fit in the remaining input; returns 0 and fails the
  /// stream otherwise. Every length-prefixed loop must go through this.
  size_t readLength(size_t MinElemBytes) {
    uint64_t Len = readU64();
    if (Err || (MinElemBytes && Len > remaining() / MinElemBytes)) {
      Err = true;
      return 0;
    }
    return static_cast<size_t>(Len);
  }

private:
  uint64_t readLE(int NumBytes) {
    if (Err || static_cast<size_t>(NumBytes) > remaining()) {
      Err = true;
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I < NumBytes; ++I)
      V |= static_cast<uint64_t>(P[Pos + I]) << (8 * I);
    Pos += NumBytes;
    return V;
  }

  const uint8_t *P;
  size_t N;
  size_t Pos = 0;
  bool Err = false;
};

/// Read-only memory-mapped view of a file. Move-only; unmaps on
/// destruction. Multiple processes may map the same file concurrently.
class MappedFile {
public:
  /// Maps \p Path read-only; fails on open/stat/map errors and on empty
  /// files (an empty cache file is never valid).
  static Expected<MappedFile> open(const std::string &Path);

  MappedFile(MappedFile &&O) noexcept : Data(O.Data), Size_(O.Size_) {
    O.Data = nullptr;
    O.Size_ = 0;
  }
  MappedFile &operator=(MappedFile &&O) noexcept;
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;
  ~MappedFile();

  const uint8_t *data() const { return static_cast<const uint8_t *>(Data); }
  size_t size() const { return Size_; }

private:
  MappedFile(void *Data, size_t Size) : Data(Data), Size_(Size) {}
  void *Data = nullptr;
  size_t Size_ = 0;
};

/// Writes \p Size bytes to \p Path atomically: the data lands in a
/// pid-unique temp file first and is renamed into place, so a reader (or
/// a concurrent writer of the same path) either sees the old complete
/// file or the new complete file, never a prefix.
Status writeFileAtomic(const std::string &Path, const void *Data,
                       size_t Size);

} // namespace weaver

#endif // WEAVER_SUPPORT_BINARYIO_H
