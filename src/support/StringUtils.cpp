//===- support/StringUtils.cpp - Small string helpers --------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace weaver;

std::string_view weaver::trim(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  size_t End = S.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string_view> weaver::split(std::string_view S, char Sep,
                                            bool KeepEmpty) {
  std::vector<std::string_view> Pieces;
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string_view::npos)
      Pos = S.size();
    std::string_view Piece = S.substr(Start, Pos - Start);
    if (KeepEmpty || !Piece.empty())
      Pieces.push_back(Piece);
    Start = Pos + 1;
    if (Pos == S.size())
      break;
  }
  return Pieces;
}

bool weaver::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

std::string weaver::formatDouble(double Value) {
  // 17 significant digits round-trip any double; strip trailing zeros for
  // readable QASM output.
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  return std::string(Buf);
}

Expected<long long> weaver::parseBoundedInt(std::string_view Tok,
                                            long long Min, long long Max) {
  if (Tok.empty())
    return Expected<long long>::error("empty integer token");
  long long V = 0;
  auto R = std::from_chars(Tok.data(), Tok.data() + Tok.size(), V);
  if (R.ec == std::errc::result_out_of_range)
    return Expected<long long>::error("integer overflows: '" +
                                      std::string(Tok) + "'");
  if (R.ec != std::errc() || R.ptr != Tok.data() + Tok.size())
    return Expected<long long>::error("invalid integer token: '" +
                                      std::string(Tok) + "'");
  if (V < Min || V > Max)
    return Expected<long long>::error(
        "integer " + std::to_string(V) + " outside [" + std::to_string(Min) +
        ", " + std::to_string(Max) + "]");
  return V;
}

Expected<double> weaver::parseFiniteDouble(std::string_view Tok) {
  // strtod instead of from_chars<double>: the latter is missing from older
  // libstdc++. A bounded copy gives strtod its NUL terminator and caps the
  // work a hostile token can cause.
  if (Tok.empty() || Tok.size() > 64)
    return Expected<double>::error("invalid double token");
  std::string Buf(Tok);
  if (Buf.find('\0') != std::string::npos)
    return Expected<double>::error("NUL byte in double token");
  char *End = nullptr;
  errno = 0;
  double V = std::strtod(Buf.c_str(), &End);
  // ERANGE covers both directions; only overflow (to ±HUGE_VAL, caught by
  // the finiteness test) is hostile. Underflow lands on a representable
  // denormal or zero and stays accepted.
  if (End != Buf.c_str() + Buf.size() || !std::isfinite(V))
    return Expected<double>::error("invalid double token: '" + Buf + "'");
  return V;
}

Expected<double> weaver::parseDouble(std::string_view Tok, double Min,
                                     double Max) {
  Expected<double> V = parseFiniteDouble(Tok);
  if (!V)
    return V;
  if (*V < Min || *V > Max)
    return Expected<double>::error("value " + formatDouble(*V) +
                                   " outside [" + formatDouble(Min) + ", " +
                                   formatDouble(Max) + "]");
  return V;
}

std::string weaver::formatf(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result(Size > 0 ? static_cast<size_t>(Size) : 0, '\0');
  if (Size > 0)
    std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}
