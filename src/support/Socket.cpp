//===- support/Socket.cpp - Socket RAII and poll-loop helpers -------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace weaver;

FdHandle &FdHandle::operator=(FdHandle &&O) noexcept {
  if (this != &O) {
    reset(O.Fd);
    O.Fd = -1;
  }
  return *this;
}

void FdHandle::reset(int NewFd) {
  if (Fd >= 0)
    ::close(Fd);
  Fd = NewFd;
}

Status weaver::setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0 || ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) < 0)
    return Status::error(std::string("fcntl(O_NONBLOCK): ") +
                         std::strerror(errno));
  return Status::success();
}

Status weaver::setNoDelay(int Fd) {
  int One = 1;
  if (::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One)) < 0)
    return Status::error(std::string("setsockopt(TCP_NODELAY): ") +
                         std::strerror(errno));
  return Status::success();
}

static Expected<sockaddr_in> makeAddress(const std::string &Host,
                                         uint16_t Port) {
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1)
    return Expected<sockaddr_in>::error("invalid IPv4 address: " + Host);
  return Addr;
}

Expected<FdHandle> weaver::tcpListen(const std::string &BindAddress,
                                     uint16_t Port, int Backlog,
                                     uint16_t &BoundPort) {
  Expected<sockaddr_in> Addr = makeAddress(BindAddress, Port);
  if (!Addr)
    return Addr.status();
  FdHandle Fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Fd.valid())
    return Expected<FdHandle>::error(std::string("socket: ") +
                                     std::strerror(errno));
  int One = 1;
  ::setsockopt(Fd.get(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd.get(), reinterpret_cast<const sockaddr *>(&*Addr),
             sizeof(*Addr)) < 0)
    return Expected<FdHandle>::error(std::string("bind: ") +
                                     std::strerror(errno));
  if (::listen(Fd.get(), Backlog) < 0)
    return Expected<FdHandle>::error(std::string("listen: ") +
                                     std::strerror(errno));
  sockaddr_in Bound = {};
  socklen_t Len = sizeof(Bound);
  if (::getsockname(Fd.get(), reinterpret_cast<sockaddr *>(&Bound), &Len) < 0)
    return Expected<FdHandle>::error(std::string("getsockname: ") +
                                     std::strerror(errno));
  BoundPort = ntohs(Bound.sin_port);
  if (Status S = setNonBlocking(Fd.get()))
    return S;
  return Fd;
}

Expected<FdHandle> weaver::tcpAccept(int ListenFd) {
  int Fd = ::accept4(ListenFd, nullptr, nullptr, SOCK_CLOEXEC);
  if (Fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED)
      return FdHandle(); // nothing (usable) pending
    return Expected<FdHandle>::error(std::string("accept: ") +
                                     std::strerror(errno));
  }
  FdHandle H(Fd);
  if (Status S = setNonBlocking(H.get()))
    return S;
  setNoDelay(H.get()); // best-effort
  return H;
}

Expected<FdHandle> weaver::tcpConnect(const std::string &Host, uint16_t Port) {
  Expected<sockaddr_in> Addr = makeAddress(Host, Port);
  if (!Addr)
    return Addr.status();
  FdHandle Fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Fd.valid())
    return Expected<FdHandle>::error(std::string("socket: ") +
                                     std::strerror(errno));
  int Rc;
  do {
    Rc = ::connect(Fd.get(), reinterpret_cast<const sockaddr *>(&*Addr),
                   sizeof(*Addr));
  } while (Rc < 0 && errno == EINTR);
  if (Rc < 0)
    return Expected<FdHandle>::error(std::string("connect: ") +
                                     std::strerror(errno));
  if (Status S = setNonBlocking(Fd.get()))
    return S;
  setNoDelay(Fd.get()); // best-effort
  return Fd;
}

IoResult weaver::readSome(int Fd, void *Buf, size_t Len, size_t &NumRead) {
  NumRead = 0;
  ssize_t N;
  do {
    N = ::recv(Fd, Buf, Len, 0);
  } while (N < 0 && errno == EINTR);
  if (N > 0) {
    NumRead = static_cast<size_t>(N);
    return IoResult::Ok;
  }
  if (N == 0)
    return IoResult::Closed;
  return (errno == EAGAIN || errno == EWOULDBLOCK) ? IoResult::WouldBlock
                                                   : IoResult::Error;
}

IoResult weaver::writeSome(int Fd, const void *Buf, size_t Len,
                           size_t &NumWritten) {
  NumWritten = 0;
  ssize_t N;
  do {
    N = ::send(Fd, Buf, Len, MSG_NOSIGNAL);
  } while (N < 0 && errno == EINTR);
  if (N >= 0) {
    NumWritten = static_cast<size_t>(N);
    return IoResult::Ok;
  }
  return (errno == EAGAIN || errno == EWOULDBLOCK) ? IoResult::WouldBlock
                                                   : IoResult::Error;
}

int weaver::pollOne(int Fd, bool WantWrite, int TimeoutMs) {
  pollfd P = {};
  P.fd = Fd;
  P.events = POLLIN | (WantWrite ? POLLOUT : 0);
  int Rc;
  do {
    Rc = ::poll(&P, 1, TimeoutMs);
  } while (Rc < 0 && errno == EINTR);
  return Rc;
}

Expected<WakePipe> WakePipe::create() {
  int Fds[2];
  if (::pipe2(Fds, O_NONBLOCK | O_CLOEXEC) < 0)
    return Expected<WakePipe>::error(std::string("pipe2: ") +
                                     std::strerror(errno));
  return WakePipe(FdHandle(Fds[0]), FdHandle(Fds[1]));
}

void WakePipe::notify() const {
  // A full pipe already guarantees a pending wakeup; the dropped write is
  // intentional coalescing, not a lost notification.
  char B = 1;
  ssize_t Rc = ::write(WriteEnd.get(), &B, 1);
  (void)Rc;
}

void WakePipe::drain() const {
  char Buf[256];
  while (::read(ReadEnd.get(), Buf, sizeof(Buf)) > 0)
    ;
}
