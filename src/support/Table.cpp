//===- support/Table.cpp - Fixed-width table printer ---------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>

using namespace weaver;

Table::Table(std::vector<std::string> Headers) : Headers(std::move(Headers)) {}

void Table::addRow(std::vector<std::string> Cells) {
  Cells.resize(Headers.size());
  Rows.push_back(std::move(Cells));
}

std::string Table::render() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0; I < Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t I = 0; I < Cells.size(); ++I) {
      Line += Cells[I];
      Line += std::string(Widths[I] - Cells[I].size(), ' ');
      if (I + 1 != Cells.size())
        Line += "  ";
    }
    // Trim trailing spaces from padded last column.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Headers);
  size_t Total = 0;
  for (size_t I = 0; I < Widths.size(); ++I)
    Total += Widths[I] + (I + 1 != Widths.size() ? 2 : 0);
  Out += std::string(Total, '-') + '\n';
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}
