//===- support/Table.h - Fixed-width table printer ------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-width table printer used by the benchmark harnesses to emit
/// the paper-style rows (Figures 8, 10, 11, 12).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SUPPORT_TABLE_H
#define WEAVER_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace weaver {

/// Accumulates rows of string cells and prints them column-aligned.
class Table {
public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> Headers);

  /// Appends one row; pads/truncates to the header width.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table, including a separator under the header.
  std::string render() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace weaver

#endif // WEAVER_SUPPORT_TABLE_H
