//===- support/Geometry.h - 2-D geometry primitives ------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 2-D points and distances for FPQA trap layouts (positions are in
/// micrometers throughout the project).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SUPPORT_GEOMETRY_H
#define WEAVER_SUPPORT_GEOMETRY_H

#include <cmath>

namespace weaver {

/// A 2-D point/vector in micrometers.
struct Vec2 {
  double X = 0;
  double Y = 0;

  friend Vec2 operator+(Vec2 A, Vec2 B) { return {A.X + B.X, A.Y + B.Y}; }
  friend Vec2 operator-(Vec2 A, Vec2 B) { return {A.X - B.X, A.Y - B.Y}; }
  friend bool operator==(Vec2 A, Vec2 B) { return A.X == B.X && A.Y == B.Y; }

  /// Euclidean length.
  double length() const { return std::hypot(X, Y); }
};

/// Euclidean distance between two points.
inline double distance(Vec2 A, Vec2 B) { return (A - B).length(); }

} // namespace weaver

#endif // WEAVER_SUPPORT_GEOMETRY_H
