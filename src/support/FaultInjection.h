//===- support/FaultInjection.h - Seeded fault-point framework -*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded, site-registry fault-injection framework — the
/// shared substrate behind every injectable failure in the stack: disk
/// I/O (support/BinaryIO), snapshot persistence (PassCachePersist),
/// compile jobs (CompileService crash/hang simulation), the pass
/// pipeline (between-pass hangs), the socket transport (net::
/// FaultInjector), and the sharded sweep workers (tools/shard_sweep).
///
/// Model: code declares *named fault sites* by calling `fault::fire("x")`
/// (or decide/clampLen) at the point where a real failure could occur.
/// A configuration — parsed from a spec string, typically the
/// WEAVER_FAULTS environment variable or a --faults flag — attaches a
/// schedule to each site it names:
///
///   "seed=42;binio.fsync:after=1,count=1;service.job.hang:p=0.2,delay_ms=5000"
///
/// Spec grammar: `seed=S` plus `;`-separated site clauses
/// `name[:key=val[,key=val...]]`. A name may end in `*` to match a whole
/// family by prefix. Keys:
///
///   p=F         fire with probability F per eligible call (seeded draw)
///   after=N     the first N calls at the site never fire
///   count=N     fire at most N times, then the site goes quiet (0 = no cap)
///   every=K     fire on every K-th eligible call (deterministic)
///   delay_ms=F  injected sleep (or hang cap, site-specific) when firing
///
/// A clause with neither `p` nor `every` fires on every eligible call —
/// `site:after=2,count=1` means "exactly the 3rd call fails", the
/// deterministic schedule chaos tests are built from.
///
/// Determinism: every site draws from its own Xoshiro256 stream seeded
/// from (config seed, FNV-1a of the site name), so one site's schedule
/// never depends on how often *other* sites were consulted. Within a
/// site, decisions depend only on the call ordinal — deterministic
/// whenever the site is reached in a deterministic order (true for all
/// single-threaded fault surfaces, and for the service with one worker).
///
/// Zero-cost when disabled: `fire`/`decide`/`clampLen` on the global
/// engine are an inline relaxed atomic load and a branch; nothing else
/// runs until a configuration is installed. Production builds with no
/// WEAVER_FAULTS pay one predictable branch per site.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SUPPORT_FAULTINJECTION_H
#define WEAVER_SUPPORT_FAULTINJECTION_H

#include "support/Rng.h"
#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace weaver {

class CancelToken;

namespace fault {

/// Schedule attached to every site matching Pattern. See file comment
/// for the spec grammar these fields mirror.
struct SiteSpec {
  std::string Pattern;      ///< exact site name, or a prefix ending in '*'
  double Probability = -1;  ///< p= ; negative means "not probabilistic"
  uint64_t After = 0;       ///< skip the first N calls at the site
  uint64_t Count = 0;       ///< fire at most N times (0 = unlimited)
  uint64_t Every = 0;       ///< fire on every K-th eligible call
  double DelayMs = 0;       ///< injected sleep / hang cap when firing
};

/// A full fault configuration: one seed plus the site schedules.
struct Config {
  uint64_t Seed = 0;
  std::vector<SiteSpec> Sites;
  bool enabled() const { return !Sites.empty(); }
};

/// Parses the spec grammar in the file comment. Unknown keys, malformed
/// numbers, probabilities outside [0, 1], and negative delays are errors
/// — the injector exists to harden failure paths; it must not itself
/// accept garbage. An empty/whitespace spec is a valid disabled config.
Expected<Config> parseConfig(std::string_view Spec);

/// Outcome of consulting one site: whether to inject, and the schedule's
/// delay parameter (0 when none was configured).
struct Decision {
  bool Fire = false;
  double DelayMs = 0;
};

/// Per-site observation counters (returned sorted by site name, so
/// reports are deterministic).
struct SiteCount {
  std::string Site;
  uint64_t Calls = 0;
  uint64_t Fired = 0;
};

/// A seeded fault engine. The process-global instance (below) serves the
/// WEAVER_FAULTS surface; components that need an independently seeded
/// stream (net::FaultInjector) own a private Engine.
class Engine {
public:
  Engine() = default;
  explicit Engine(Config C) { configure(std::move(C)); }

  /// Installs \p C, discarding all prior site state and counters.
  void configure(Config C);
  /// Back to the disabled state (equivalent to configure({})).
  void reset() { configure(Config()); }

  bool enabled() const { return On.load(std::memory_order_relaxed); }

  /// Consults \p Site's schedule without sleeping. Call sites that honour
  /// DelayMs themselves (hang loops) use this.
  Decision decide(std::string_view Site);

  /// decide() plus an unconditional sleep of the schedule's DelayMs when
  /// firing. The common "should this operation fail now?" entry point.
  bool fire(std::string_view Site);

  /// Length-clamping helper for short reads/writes: when \p Site fires,
  /// returns a seeded value in [\p Lo, \p Len); otherwise \p Len
  /// unchanged. Requires Lo < Len to fire (degenerate lengths pass
  /// through untouched, so progress guarantees hold).
  size_t clampLen(std::string_view Site, size_t Len, size_t Lo = 0);

  /// Counters for every site consulted since configure(), name-sorted.
  std::vector<SiteCount> counters() const;
  /// Total injections across all sites.
  uint64_t totalFired() const;

private:
  struct SiteState {
    const SiteSpec *Spec = nullptr; ///< into Cfg.Sites; null = unmatched
    Xoshiro256 Rng{0};
    uint64_t Calls = 0;
    uint64_t Fired = 0;
  };

  /// Returns the state for \p Site, creating (and spec-matching) it on
  /// first consultation. Caller holds M.
  SiteState &stateFor(std::string_view Site);
  Decision decideLocked(SiteState &S);

  mutable std::mutex M;
  Config Cfg;
  std::atomic<bool> On{false};
  /// Ordered map so counters() reports deterministically; transparent
  /// comparator so lookups take string_view without allocating.
  std::map<std::string, SiteState, std::less<>> States;
};

namespace detail {
/// Fast-path flag for the global engine; flipped only by configureGlobal
/// and resetGlobal.
extern std::atomic<bool> GlobalOn;
bool fireGlobal(std::string_view Site);
Decision decideGlobal(std::string_view Site);
size_t clampLenGlobal(std::string_view Site, size_t Len, size_t Lo);
} // namespace detail

/// The process-global engine. First access installs the WEAVER_FAULTS
/// environment spec if present (a malformed env spec is reported to
/// stderr once and ignored — use initGlobalFromEnv() in tools that want
/// a hard failure).
Engine &globalEngine();

/// True once a global fault configuration is installed. Inline single
/// relaxed load: the whole framework costs this branch when idle.
inline bool enabled() {
  return detail::GlobalOn.load(std::memory_order_relaxed);
}

/// Global-engine convenience wrappers; no-ops (false / Len) when the
/// global engine is unconfigured.
inline bool fire(std::string_view Site) {
  return enabled() && detail::fireGlobal(Site);
}
inline Decision decide(std::string_view Site) {
  return enabled() ? detail::decideGlobal(Site) : Decision{};
}
inline size_t clampLen(std::string_view Site, size_t Len, size_t Lo = 0) {
  return enabled() ? detail::clampLenGlobal(Site, Len, Lo) : Len;
}

/// Parses \p Spec and installs it on the global engine. An empty spec
/// disables injection (same as resetGlobal).
Status configureGlobal(std::string_view Spec);
/// Installs an already-parsed config on the global engine.
void configureGlobal(Config C);
/// Disables the global engine and clears its state. Tests that configure
/// faults must reset in teardown — the engine is process-global.
void resetGlobal();

/// Parses WEAVER_FAULTS (if set) into the global engine, returning the
/// parse error instead of swallowing it. Tools call this from main().
Status initGlobalFromEnv();

/// Simulated hang: sleeps in small slices until \p CapMs elapses or
/// \p Token (may be null) is cancelled — so a watchdog that cancels the
/// token converts the hang into a prompt cooperative abort. A CapMs <= 0
/// hangs for the default cap (60 s), never forever: an unattended hang
/// must eventually release its thread even with no watchdog armed.
void hangUntilCancelled(double CapMs, const CancelToken *Token);

} // namespace fault
} // namespace weaver

#endif // WEAVER_SUPPORT_FAULTINJECTION_H
