//===- support/CancelToken.h - Cooperative cancellation --------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation primitive shared by the compile service and
/// the pass pipeline. A producer (service client, shutdown path) requests
/// cancellation; the compilation observes the token at well-defined
/// checkpoints — the PassManager checks between passes — and aborts with a
/// recognisable Status instead of crashing or blocking. Purely atomic, so
/// a token may be observed from any thread without locking.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SUPPORT_CANCELTOKEN_H
#define WEAVER_SUPPORT_CANCELTOKEN_H

#include "support/Status.h"

#include <atomic>

namespace weaver {

/// A sticky cancellation flag: once requested, it stays cancelled.
class CancelToken {
public:
  /// Requests cancellation; the compile aborts at its next checkpoint.
  void requestCancel() { Cancelled.store(true, std::memory_order_release); }

  bool isCancelled() const {
    return Cancelled.load(std::memory_order_acquire);
  }

  /// Testing aid: arms the token to self-cancel at the Nth checkpoint
  /// (N == 1 cancels at the very first one). This is how tests hit the
  /// "cancelled mid-pipeline, between two specific passes" window
  /// deterministically instead of racing a timer against the compile.
  void cancelAtCheckpoint(int N) {
    Countdown.store(N, std::memory_order_relaxed);
  }

  /// A cooperative cancellation point; returns whether the work should
  /// abort. Const because observers hold `const CancelToken *`: the
  /// countdown bookkeeping is logically observation, not mutation.
  bool checkpoint() const {
    int C = Countdown.load(std::memory_order_relaxed);
    if (C > 0 && Countdown.fetch_sub(1, std::memory_order_acq_rel) == 1)
      Cancelled.store(true, std::memory_order_release);
    return isCancelled();
  }

private:
  mutable std::atomic<bool> Cancelled{false};
  mutable std::atomic<int> Countdown{0};
};

/// Diagnostic prefix of every Status produced by a cancelled compile.
inline constexpr const char CancelledDiagnostic[] = "compilation cancelled";

/// True when \p S reports a cooperative cancellation (vs a real failure).
inline bool isCancelledStatus(const Status &S) {
  const std::string &M = S.message();
  return !S.ok() &&
         M.compare(0, sizeof(CancelledDiagnostic) - 1, CancelledDiagnostic) ==
             0;
}

} // namespace weaver

#endif // WEAVER_SUPPORT_CANCELTOKEN_H
