//===- support/CancelToken.h - Cooperative cancellation --------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation primitive shared by the compile service and
/// the pass pipeline. A producer (service client, shutdown path) requests
/// cancellation; the compilation observes the token at well-defined
/// checkpoints — the PassManager checks between passes — and aborts with a
/// recognisable Status instead of crashing or blocking. Purely atomic, so
/// a token may be observed from any thread without locking.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SUPPORT_CANCELTOKEN_H
#define WEAVER_SUPPORT_CANCELTOKEN_H

#include "support/Status.h"

#include <atomic>
#include <chrono>

namespace weaver {

/// A sticky cancellation flag: once requested, it stays cancelled.
class CancelToken {
public:
  /// Requests cancellation; the compile aborts at its next checkpoint.
  void requestCancel() { Cancelled.store(true, std::memory_order_release); }

  bool isCancelled() const {
    return Cancelled.load(std::memory_order_acquire);
  }

  /// Arms (or tightens) a wall-clock deadline: checkpoints at or after
  /// \p Deadline cancel the work and record the cause as a deadline hit.
  /// Multiple callers race benignly — the earliest deadline wins, which
  /// is what both per-request deadlines and the drain budget want.
  void setDeadline(std::chrono::steady_clock::time_point Deadline) {
    int64_t T = Deadline.time_since_epoch().count();
    int64_t Cur = DeadlineTicks.load(std::memory_order_relaxed);
    while ((Cur == 0 || T < Cur) &&
           !DeadlineTicks.compare_exchange_weak(Cur, T,
                                                std::memory_order_relaxed))
      ;
  }

  bool hasDeadline() const {
    return DeadlineTicks.load(std::memory_order_relaxed) != 0;
  }

  /// True once the armed deadline lies in the past (false when unarmed).
  bool deadlinePassed() const {
    int64_t T = DeadlineTicks.load(std::memory_order_relaxed);
    return T != 0 &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= T;
  }

  /// Latches cancellation if the deadline has passed; returns whether the
  /// token is now cancelled for any reason. Used by the service to expire
  /// jobs that sat in the queue past their deadline without consuming a
  /// cancelAtCheckpoint tick.
  bool expireIfPastDeadline() const {
    if (!isCancelled() && deadlinePassed()) {
      DeadlineHit.store(true, std::memory_order_relaxed);
      Cancelled.store(true, std::memory_order_release);
    }
    return isCancelled();
  }

  /// True when the cancellation was caused by the deadline (vs an explicit
  /// requestCancel); meaningful only once isCancelled().
  bool wasDeadline() const {
    return DeadlineHit.load(std::memory_order_relaxed);
  }

  /// Testing aid: arms the token to self-cancel at the Nth checkpoint
  /// (N == 1 cancels at the very first one). This is how tests hit the
  /// "cancelled mid-pipeline, between two specific passes" window
  /// deterministically instead of racing a timer against the compile.
  void cancelAtCheckpoint(int N) {
    Countdown.store(N, std::memory_order_relaxed);
  }

  /// A cooperative cancellation point; returns whether the work should
  /// abort. Const because observers hold `const CancelToken *`: the
  /// countdown bookkeeping is logically observation, not mutation.
  bool checkpoint() const {
    int C = Countdown.load(std::memory_order_relaxed);
    if (C > 0 && Countdown.fetch_sub(1, std::memory_order_acq_rel) == 1)
      Cancelled.store(true, std::memory_order_release);
    expireIfPastDeadline();
    return isCancelled();
  }

private:
  mutable std::atomic<bool> Cancelled{false};
  mutable std::atomic<bool> DeadlineHit{false};
  mutable std::atomic<int> Countdown{0};
  mutable std::atomic<int64_t> DeadlineTicks{0}; ///< steady_clock ticks; 0 = none
};

/// Diagnostic prefix of every Status produced by a cancelled compile.
inline constexpr const char CancelledDiagnostic[] = "compilation cancelled";

/// Diagnostic of a compile cancelled by its deadline. Starts with
/// CancelledDiagnostic so isCancelledStatus() keeps matching.
inline constexpr const char DeadlineDiagnostic[] =
    "compilation cancelled: deadline exceeded";

/// True when \p S reports a cooperative cancellation (vs a real failure).
inline bool isCancelledStatus(const Status &S) {
  const std::string &M = S.message();
  return !S.ok() &&
         M.compare(0, sizeof(CancelledDiagnostic) - 1, CancelledDiagnostic) ==
             0;
}

} // namespace weaver

#endif // WEAVER_SUPPORT_CANCELTOKEN_H
