//===- support/Rng.h - Deterministic random number generation -*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable PRNGs used by workload generators and baselines.
///
/// We avoid std::mt19937 so that generated SATLIB-style instances are stable
/// across standard-library implementations: uf20-01 is the same formula on
/// every platform, which makes benchmark rows reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SUPPORT_RNG_H
#define WEAVER_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace weaver {

/// SplitMix64 generator; used to seed Xoshiro and for cheap hashing.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// xoshiro256** 1.0 (Blackman & Vigna), a small, fast, high-quality PRNG.
class Xoshiro256 {
public:
  /// Seeds the full 256-bit state from \p Seed via SplitMix64.
  explicit Xoshiro256(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (uint64_t &Word : S)
      Word = SM.next();
  }

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    uint64_t Result = rotl(S[1] * 5, 7) * 9;
    uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Returns a uniform integer in [0, Bound) using Lemire rejection.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Rejection sampling over the top bits avoids modulo bias.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t S[4];
};

} // namespace weaver

#endif // WEAVER_SUPPORT_RNG_H
