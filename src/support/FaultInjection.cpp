//===- support/FaultInjection.cpp - Seeded fault-point framework ---------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/CancelToken.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace weaver {
namespace fault {

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

namespace {

/// FNV-1a over the site name; mixed with the config seed so every site
/// gets an independent, name-stable RNG stream.
uint64_t fnv1a64(std::string_view S) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// True when \p Site matches \p Pattern (exact, or prefix when the
/// pattern ends in '*').
bool matches(std::string_view Pattern, std::string_view Site) {
  if (!Pattern.empty() && Pattern.back() == '*')
    return startsWith(Site, Pattern.substr(0, Pattern.size() - 1));
  return Pattern == Site;
}

/// Valid site/pattern names: dotted lower-case identifiers, optional
/// trailing '*'. Rejecting everything else catches typos in specs that
/// would otherwise silently match nothing.
bool validPattern(std::string_view P) {
  if (P.empty())
    return false;
  bool Wildcard = P.back() == '*';
  if (Wildcard)
    P.remove_suffix(1);
  // A family wildcard naturally ends at a dot ("binio.*"); a plain site
  // name must not.
  if (P.empty() || P.front() == '.' || (!Wildcard && P.back() == '.'))
    return false;
  for (char C : P)
    if (!(C >= 'a' && C <= 'z') && !(C >= '0' && C <= '9') && C != '.' &&
        C != '_' && C != '-')
      return false;
  return true;
}

Status parseSiteClause(std::string_view Clause, SiteSpec &Out) {
  size_t Colon = Clause.find(':');
  std::string_view Name = trim(Clause.substr(0, Colon));
  if (!validPattern(Name))
    return Status::error("fault spec: bad site name '" + std::string(Name) +
                         "'");
  Out.Pattern = std::string(Name);
  if (Colon == std::string_view::npos)
    return Status::success();
  for (std::string_view KV : split(Clause.substr(Colon + 1), ',')) {
    size_t Eq = KV.find('=');
    if (Eq == std::string_view::npos)
      return Status::error("fault spec: expected key=value in '" +
                           std::string(KV) + "'");
    std::string_view Key = trim(KV.substr(0, Eq));
    std::string_view Val = trim(KV.substr(Eq + 1));
    if (Key == "p") {
      Expected<double> P = parseDouble(Val, 0.0, 1.0);
      if (!P)
        return Status::error("fault spec: p: " + P.message());
      Out.Probability = *P;
    } else if (Key == "after") {
      Expected<long long> N = parseInt(Val, 0, 1LL << 40);
      if (!N)
        return Status::error("fault spec: after: " + N.message());
      Out.After = static_cast<uint64_t>(*N);
    } else if (Key == "count") {
      Expected<long long> N = parseInt(Val, 0, 1LL << 40);
      if (!N)
        return Status::error("fault spec: count: " + N.message());
      Out.Count = static_cast<uint64_t>(*N);
    } else if (Key == "every") {
      Expected<long long> N = parseInt(Val, 1, 1LL << 40);
      if (!N)
        return Status::error("fault spec: every: " + N.message());
      Out.Every = static_cast<uint64_t>(*N);
    } else if (Key == "delay_ms") {
      Expected<double> D = parseDouble(Val, 0.0, 600000.0);
      if (!D)
        return Status::error("fault spec: delay_ms: " + D.message());
      Out.DelayMs = *D;
    } else {
      return Status::error("fault spec: unknown key '" + std::string(Key) +
                           "'");
    }
  }
  if (Out.Probability >= 0 && Out.Every > 0)
    return Status::error("fault spec: '" + Out.Pattern +
                         "' sets both p= and every=");
  return Status::success();
}

} // namespace

Expected<Config> parseConfig(std::string_view Spec) {
  Config C;
  for (std::string_view Clause : split(Spec, ';')) {
    Clause = trim(Clause);
    if (Clause.empty())
      continue;
    if (startsWith(Clause, "seed=")) {
      Expected<long long> S = parseInt(Clause.substr(5), 0, (1LL << 62));
      if (!S)
        return Expected<Config>::error("fault spec: seed: " + S.message());
      C.Seed = static_cast<uint64_t>(*S);
      continue;
    }
    SiteSpec Site;
    if (Status E = parseSiteClause(Clause, Site))
      return Expected<Config>(E);
    C.Sites.push_back(std::move(Site));
  }
  return C;
}

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

void Engine::configure(Config C) {
  std::lock_guard<std::mutex> Lock(M);
  Cfg = std::move(C);
  States.clear();
  On.store(Cfg.enabled(), std::memory_order_relaxed);
}

Engine::SiteState &Engine::stateFor(std::string_view Site) {
  auto It = States.find(Site);
  if (It != States.end())
    return It->second;
  SiteState S;
  // First-match-wins lets a later wildcard act as a family default
  // without overriding an earlier exact schedule.
  for (const SiteSpec &Spec : Cfg.Sites)
    if (matches(Spec.Pattern, Site)) {
      S.Spec = &Spec;
      break;
    }
  S.Rng = Xoshiro256(SplitMix64(Cfg.Seed ^ fnv1a64(Site)).next());
  return States.emplace(std::string(Site), std::move(S)).first->second;
}

Decision Engine::decideLocked(SiteState &S) {
  if (!S.Spec)
    return Decision{};
  const SiteSpec &Spec = *S.Spec;
  uint64_t Ordinal = ++S.Calls;
  // The probabilistic draw happens on every eligible call, fired or
  // suppressed, so the site's schedule is a pure function of its own
  // call ordinal — count caps must not shift later draws.
  if (Ordinal <= Spec.After)
    return Decision{};
  bool Fire;
  if (Spec.Probability >= 0)
    Fire = S.Rng.nextDouble() < Spec.Probability;
  else if (Spec.Every > 0)
    Fire = (Ordinal - Spec.After) % Spec.Every == 0;
  else
    Fire = true;
  if (Fire && Spec.Count > 0 && S.Fired >= Spec.Count)
    Fire = false;
  if (!Fire)
    return Decision{};
  ++S.Fired;
  return Decision{true, Spec.DelayMs};
}

Decision Engine::decide(std::string_view Site) {
  if (!enabled())
    return Decision{};
  std::lock_guard<std::mutex> Lock(M);
  return decideLocked(stateFor(Site));
}

bool Engine::fire(std::string_view Site) {
  Decision D = decide(Site);
  if (D.Fire && D.DelayMs > 0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(D.DelayMs));
  return D.Fire;
}

size_t Engine::clampLen(std::string_view Site, size_t Len, size_t Lo) {
  if (!enabled() || Lo >= Len)
    return Len;
  std::lock_guard<std::mutex> Lock(M);
  SiteState &S = stateFor(Site);
  if (!decideLocked(S).Fire)
    return Len;
  return Lo + static_cast<size_t>(S.Rng.nextBelow(Len - Lo));
}

std::vector<SiteCount> Engine::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<SiteCount> Out;
  Out.reserve(States.size());
  for (const auto &[Name, S] : States)
    Out.push_back(SiteCount{Name, S.Calls, S.Fired});
  return Out;
}

uint64_t Engine::totalFired() const {
  std::lock_guard<std::mutex> Lock(M);
  uint64_t Total = 0;
  for (const auto &[Name, S] : States)
    Total += S.Fired;
  return Total;
}

//===----------------------------------------------------------------------===//
// Global engine
//===----------------------------------------------------------------------===//

namespace detail {
std::atomic<bool> GlobalOn{false};

bool fireGlobal(std::string_view Site) { return globalEngine().fire(Site); }
Decision decideGlobal(std::string_view Site) {
  return globalEngine().decide(Site);
}
size_t clampLenGlobal(std::string_view Site, size_t Len, size_t Lo) {
  return globalEngine().clampLen(Site, Len, Lo);
}
} // namespace detail

namespace {
std::once_flag EnvInitFlag;

/// The engine object itself, with no env-init hook attached — internal
/// helpers that may run *inside* the EnvInitFlag execution must use this
/// (re-entering std::call_once on the active flag would deadlock).
Engine &rawGlobalEngine() {
  static Engine *E = new Engine(); // leaked: usable during static teardown
  return *E;
}

void installGlobal(Config C) {
  bool Enabled = C.enabled();
  rawGlobalEngine().configure(std::move(C));
  detail::GlobalOn.store(Enabled, std::memory_order_relaxed);
}

void initFromEnvBestEffort() {
  const char *Spec = std::getenv("WEAVER_FAULTS");
  if (!Spec || !*Spec)
    return;
  Expected<Config> C = parseConfig(Spec);
  if (!C) {
    std::fprintf(stderr, "warning: ignoring WEAVER_FAULTS: %s\n",
                 C.message().c_str());
    return;
  }
  installGlobal(C.take());
}

/// Eagerly resolves WEAVER_FAULTS at program startup. Lazy-only init
/// would never run: the inline fast path reads GlobalOn and
/// short-circuits before ever touching globalEngine(), so with the flag
/// still false no call site would trigger the env parse.
struct EnvInitAtStartup {
  EnvInitAtStartup() { std::call_once(EnvInitFlag, initFromEnvBestEffort); }
} RunEnvInitAtStartup;
} // namespace

Engine &globalEngine() {
  std::call_once(EnvInitFlag, initFromEnvBestEffort);
  return rawGlobalEngine();
}

void configureGlobal(Config C) {
  // Resolve the env var first so a later first call to globalEngine()
  // cannot clobber an explicitly installed config.
  std::call_once(EnvInitFlag, [] {});
  installGlobal(std::move(C));
}

Status configureGlobal(std::string_view Spec) {
  Expected<Config> C = parseConfig(Spec);
  if (!C)
    return C.status();
  configureGlobal(C.take());
  return Status::success();
}

void resetGlobal() { configureGlobal(Config()); }

Status initGlobalFromEnv() {
  const char *Spec = std::getenv("WEAVER_FAULTS");
  // Claim the lazy-init slot either way, so globalEngine() won't re-read
  // the env after an explicit init.
  std::call_once(EnvInitFlag, [] {});
  if (!Spec || !*Spec)
    return Status::success();
  Expected<Config> C = parseConfig(Spec);
  if (!C)
    return Status::error("WEAVER_FAULTS: " + C.message());
  configureGlobal(C.take());
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Simulated hang
//===----------------------------------------------------------------------===//

void hangUntilCancelled(double CapMs, const CancelToken *Token) {
  if (CapMs <= 0)
    CapMs = 60000;
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(CapMs));
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Token && Token->isCancelled())
      return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

} // namespace fault
} // namespace weaver
