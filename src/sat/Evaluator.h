//===- sat/Evaluator.h - MAX-SAT assignment evaluation ---------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Brute-force MAX-SAT optimum and assignment scoring. Used by tests to
/// validate that the QAOA cost-Hamiltonian encoding (qaoa::IsingPolynomial)
/// reproduces the clause-counting objective, and by examples to interpret
/// measured bitstrings (paper Fig. 1d).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SAT_EVALUATOR_H
#define WEAVER_SAT_EVALUATOR_H

#include "sat/Cnf.h"

#include <cstdint>
#include <vector>

namespace weaver {
namespace sat {

/// Result of a brute-force MAX-SAT search.
struct MaxSatOptimum {
  /// Maximum number of simultaneously satisfiable clauses.
  size_t BestSatisfied = 0;
  /// One optimal assignment (bit i = variable i+1).
  std::vector<bool> BestAssignment;
};

/// Converts bitmask \p Bits (bit i = variable i+1) into an assignment vector.
std::vector<bool> assignmentFromBits(uint64_t Bits, int NumVariables);

/// Exhaustively searches all 2^N assignments; requires N <= 24.
MaxSatOptimum bruteForceMaxSat(const CnfFormula &Formula);

} // namespace sat
} // namespace weaver

#endif // WEAVER_SAT_EVALUATOR_H
