//===- sat/Dimacs.h - DIMACS CNF reader and writer -------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser and printer for the DIMACS CNF format used by the SATLIB benchmark
/// suite the paper evaluates on (uf20-01 .. uf250-10). Real SATLIB files can
/// be parsed with \c parseDimacs and fed to any compiler in this repo.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SAT_DIMACS_H
#define WEAVER_SAT_DIMACS_H

#include "sat/Cnf.h"
#include "support/Status.h"

#include <string>
#include <string_view>

namespace weaver {
namespace sat {

/// Parses DIMACS CNF text ("c" comments, "p cnf V C" header, 0-terminated
/// clauses). Returns an error for malformed headers, literals out of range,
/// or missing clause terminators.
Expected<CnfFormula> parseDimacs(std::string_view Text);

/// Reads and parses a DIMACS file from disk.
Expected<CnfFormula> parseDimacsFile(const std::string &Path);

/// Prints \p Formula in DIMACS CNF format.
std::string printDimacs(const CnfFormula &Formula);

} // namespace sat
} // namespace weaver

#endif // WEAVER_SAT_DIMACS_H
