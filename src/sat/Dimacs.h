//===- sat/Dimacs.h - DIMACS CNF reader and writer -------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser and printer for the DIMACS CNF format used by the SATLIB benchmark
/// suite the paper evaluates on (uf20-01 .. uf250-10). Real SATLIB files can
/// be parsed with \c parseDimacs and fed to any compiler in this repo.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SAT_DIMACS_H
#define WEAVER_SAT_DIMACS_H

#include "sat/Cnf.h"
#include "support/Status.h"

#include <string>
#include <string_view>

namespace weaver {
namespace sat {

/// Resource bounds applied while parsing untrusted DIMACS bytes (the
/// networked file-style compile requests feed this parser attacker-
/// controlled input). Every limit rejects with a parse error before the
/// offending allocation happens: a "p cnf 2000000000 3" header must not
/// size anything by its declared counts.
struct DimacsLimits {
  /// Maximum declared/used variable count. Per-variable occurrence lists
  /// downstream make this the allocation-amplification knob: a formula
  /// with V variables costs O(V) memory even with one clause.
  int MaxVariables = 1000000;
  /// Maximum clause count (declared or actually parsed).
  size_t MaxClauses = 10000000;
  /// Maximum literals in one clause. DIMACS clauses here are 1..3-literal
  /// MAX-3SAT clauses; 1024 leaves generous room without letting one
  /// unterminated clause swallow the whole input.
  size_t MaxClauseLiterals = 1024;
};

/// Parses DIMACS CNF text ("c" comments, "p cnf V C" header, 0-terminated
/// clauses). Returns an error for malformed headers, literals out of range,
/// missing clause terminators, or input exceeding \p Limits.
Expected<CnfFormula> parseDimacs(std::string_view Text,
                                 const DimacsLimits &Limits = DimacsLimits());

/// Reads and parses a DIMACS file from disk.
Expected<CnfFormula> parseDimacsFile(const std::string &Path,
                                     const DimacsLimits &Limits =
                                         DimacsLimits());

/// Prints \p Formula in DIMACS CNF format.
std::string printDimacs(const CnfFormula &Formula);

} // namespace sat
} // namespace weaver

#endif // WEAVER_SAT_DIMACS_H
