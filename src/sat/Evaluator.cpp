//===- sat/Evaluator.cpp - MAX-SAT assignment evaluation -----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "sat/Evaluator.h"

using namespace weaver;
using namespace weaver::sat;

std::vector<bool> sat::assignmentFromBits(uint64_t Bits, int NumVariables) {
  std::vector<bool> Assignment(NumVariables);
  for (int I = 0; I < NumVariables; ++I)
    Assignment[I] = (Bits >> I) & 1;
  return Assignment;
}

MaxSatOptimum sat::bruteForceMaxSat(const CnfFormula &Formula) {
  assert(Formula.numVariables() <= 24 &&
         "brute-force MAX-SAT limited to 24 variables");
  MaxSatOptimum Best;
  uint64_t Count = 1ULL << Formula.numVariables();
  for (uint64_t Bits = 0; Bits < Count; ++Bits) {
    std::vector<bool> A = assignmentFromBits(Bits, Formula.numVariables());
    size_t Sat = Formula.countSatisfied(A);
    if (Sat > Best.BestSatisfied || Bits == 0) {
      Best.BestSatisfied = Sat;
      Best.BestAssignment = std::move(A);
    }
    if (Best.BestSatisfied == Formula.numClauses())
      break;
  }
  return Best;
}
