//===- sat/Generator.cpp - SATLIB-style random 3-SAT generator -----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "sat/Generator.h"

#include "support/Rng.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace weaver;
using namespace weaver::sat;

CnfFormula RandomSatGenerator::generate(int NumVariables, size_t NumClauses,
                                        size_t K) const {
  assert(K >= 1 && static_cast<int>(K) <= NumVariables &&
         "clause width must fit the variable range");
  Xoshiro256 Rng(Seed);
  std::set<std::vector<int>> Seen;
  std::vector<Clause> Clauses;
  Clauses.reserve(NumClauses);

  while (Clauses.size() < NumClauses) {
    // Draw K distinct variables, then independent polarities.
    std::vector<int> Vars;
    while (Vars.size() < K) {
      int V = static_cast<int>(Rng.nextBelow(NumVariables)) + 1;
      if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
        Vars.push_back(V);
    }
    std::vector<int> Lits;
    Lits.reserve(K);
    for (int V : Vars)
      Lits.push_back(Rng.next() & 1 ? V : -V);
    // Reject duplicate clauses (order-insensitive), as SATLIB does.
    std::vector<int> Key = Lits;
    std::sort(Key.begin(), Key.end());
    if (!Seen.insert(Key).second)
      continue;
    std::vector<Literal> ClauseLits;
    for (int L : Lits)
      ClauseLits.push_back(Literal(L));
    Clauses.push_back(Clause(std::move(ClauseLits)));
  }
  return CnfFormula(NumVariables, std::move(Clauses));
}

CnfFormula sat::satlibInstance(int NumVariables, int Index) {
  assert(Index >= 1 && "SATLIB instance indices are 1-based");
  // uf20 historically has 91 clauses (ratio 4.55); larger suites use 4.26.
  size_t NumClauses =
      NumVariables == 20
          ? 91
          : static_cast<size_t>(std::lround(NumVariables * SatlibClauseRatio));
  // Seed derived from (size, index) so instances are stable forever.
  uint64_t Seed = 0x5a71b000ULL + static_cast<uint64_t>(NumVariables) * 131 +
                  static_cast<uint64_t>(Index);
  CnfFormula F = RandomSatGenerator(Seed).generate(NumVariables, NumClauses);
  char Name[32];
  std::snprintf(Name, sizeof(Name), "uf%d-%02d", NumVariables, Index);
  F.setName(Name);
  return F;
}

std::vector<CnfFormula> sat::satlibSuite(int NumVariables) {
  std::vector<CnfFormula> Suite;
  Suite.reserve(10);
  for (int I = 1; I <= 10; ++I)
    Suite.push_back(satlibInstance(NumVariables, I));
  return Suite;
}
