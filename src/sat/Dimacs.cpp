//===- sat/Dimacs.cpp - DIMACS CNF reader and writer ---------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "sat/Dimacs.h"

#include "support/StringUtils.h"

#include <charconv>
#include <fstream>
#include <sstream>

using namespace weaver;
using namespace weaver::sat;

Expected<CnfFormula> sat::parseDimacs(std::string_view Text,
                                      const DimacsLimits &Limits) {
  int NumVars = -1;
  size_t NumClausesDeclared = 0;
  std::vector<Clause> Clauses;
  std::vector<Literal> Current;

  for (std::string_view RawLine : split(Text, '\n', /*KeepEmpty=*/true)) {
    std::string_view Line = trim(RawLine);
    if (Line.empty() || Line[0] == 'c' || Line[0] == '%')
      continue;
    // SATLIB files end with a lone "0" after a "%" marker; tolerate it.
    if (NumVars >= 0 && Line == "0")
      continue;
    if (Line[0] == 'p') {
      auto Fields = split(Line, ' ');
      if (Fields.size() != 4 || Fields[1] != "cnf")
        return Expected<CnfFormula>::error("malformed DIMACS problem line: '" +
                                           std::string(Line) + "'");
      int DeclaredClauses = 0;
      auto R1 = std::from_chars(Fields[2].data(),
                                Fields[2].data() + Fields[2].size(), NumVars);
      auto R2 = std::from_chars(Fields[3].data(),
                                Fields[3].data() + Fields[3].size(),
                                DeclaredClauses);
      if (R1.ec != std::errc() || R2.ec != std::errc() ||
          R1.ptr != Fields[2].data() + Fields[2].size() ||
          R2.ptr != Fields[3].data() + Fields[3].size() || NumVars < 0 ||
          DeclaredClauses < 0)
        return Expected<CnfFormula>::error(
            "invalid counts in DIMACS problem line");
      if (NumVars > Limits.MaxVariables)
        return Expected<CnfFormula>::error(
            "declared variable count " + std::to_string(NumVars) +
            " exceeds limit " + std::to_string(Limits.MaxVariables));
      if (static_cast<size_t>(DeclaredClauses) > Limits.MaxClauses)
        return Expected<CnfFormula>::error(
            "declared clause count " + std::to_string(DeclaredClauses) +
            " exceeds limit " + std::to_string(Limits.MaxClauses));
      NumClausesDeclared = static_cast<size_t>(DeclaredClauses);
      continue;
    }
    if (NumVars < 0)
      return Expected<CnfFormula>::error(
          "clause data before DIMACS problem line");
    for (std::string_view Tok : split(Line, ' ')) {
      int Lit = 0;
      auto R = std::from_chars(Tok.data(), Tok.data() + Tok.size(), Lit);
      // Whole-token match: "12x", embedded NUL bytes, and overflowing
      // values are all hostile input, not literal 12.
      if (R.ec != std::errc() || R.ptr != Tok.data() + Tok.size())
        return Expected<CnfFormula>::error("invalid literal token: '" +
                                           std::string(Tok) + "'");
      if (Lit == 0) {
        if (Clauses.size() >= Limits.MaxClauses)
          return Expected<CnfFormula>::error(
              "clause count exceeds limit " +
              std::to_string(Limits.MaxClauses));
        Clauses.push_back(Clause(Current));
        Current.clear();
        continue;
      }
      if (std::abs(Lit) > NumVars)
        return Expected<CnfFormula>::error(
            "literal " + std::to_string(Lit) +
            " out of declared variable range " + std::to_string(NumVars));
      if (Current.size() >= Limits.MaxClauseLiterals)
        return Expected<CnfFormula>::error(
            "clause literal count exceeds limit " +
            std::to_string(Limits.MaxClauseLiterals));
      Current.push_back(Literal(Lit));
    }
  }
  if (!Current.empty())
    return Expected<CnfFormula>::error(
        "unterminated clause at end of DIMACS input");
  if (NumVars < 0)
    return Expected<CnfFormula>::error("missing DIMACS problem line");
  if (NumClausesDeclared != 0 && Clauses.size() != NumClausesDeclared)
    return Expected<CnfFormula>::error(
        "clause count mismatch: declared " +
        std::to_string(NumClausesDeclared) + ", found " +
        std::to_string(Clauses.size()));
  return CnfFormula(NumVars, std::move(Clauses));
}

Expected<CnfFormula> sat::parseDimacsFile(const std::string &Path,
                                          const DimacsLimits &Limits) {
  std::ifstream In(Path);
  if (!In)
    return Expected<CnfFormula>::error("cannot open DIMACS file: " + Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  auto Result = parseDimacs(Buf.str(), Limits);
  if (Result)
    Result->setName(Path);
  return Result;
}

std::string sat::printDimacs(const CnfFormula &Formula) {
  std::string Out;
  if (!Formula.name().empty())
    Out += "c " + Formula.name() + "\n";
  Out += "p cnf " + std::to_string(Formula.numVariables()) + " " +
         std::to_string(Formula.numClauses()) + "\n";
  for (const Clause &C : Formula.clauses()) {
    for (Literal L : C)
      Out += std::to_string(L.dimacs()) + " ";
    Out += "0\n";
  }
  return Out;
}
