//===- sat/Cnf.h - CNF / MAX-3SAT formula representation -------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CNF formula model used throughout the compiler. Weaver's wOptimizer
/// (paper §5) consumes MAX-3SAT formulas; clauses carry DIMACS-style signed
/// literals, e.g. the paper's running example [[-1,-2,-3],[4,-5,6],[3,5,-6]].
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SAT_CNF_H
#define WEAVER_SAT_CNF_H

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace weaver {
namespace sat {

/// A signed literal in DIMACS convention: +v means variable v, -v means the
/// negation of variable v. Variables are 1-based; 0 is invalid.
class Literal {
public:
  Literal() = default;
  explicit Literal(int Dimacs) : Value(Dimacs) {
    assert(Dimacs != 0 && "literal 0 is the DIMACS clause terminator");
  }

  /// Returns the 1-based variable index.
  int variable() const { return std::abs(Value); }

  /// Returns true for a negated literal (-v).
  bool isNegated() const { return Value < 0; }

  /// Returns the raw DIMACS encoding.
  int dimacs() const { return Value; }

  /// Returns the literal over the same variable with the opposite sign.
  Literal negated() const { return Literal(-Value); }

  /// Evaluates the literal under a 0/1 assignment of its variable.
  bool evaluate(bool VariableValue) const {
    return isNegated() ? !VariableValue : VariableValue;
  }

  friend bool operator==(Literal A, Literal B) { return A.Value == B.Value; }
  friend bool operator<(Literal A, Literal B) { return A.Value < B.Value; }

private:
  int Value = 0;
};

/// A disjunction of literals. MAX-3SAT clauses have exactly three, but the
/// container supports 1..3 so unit/binary clauses from DIMACS files work.
class Clause {
public:
  Clause() = default;
  Clause(std::initializer_list<int> DimacsLits) {
    for (int L : DimacsLits)
      Lits.push_back(Literal(L));
  }
  explicit Clause(std::vector<Literal> Lits) : Lits(std::move(Lits)) {}

  size_t size() const { return Lits.size(); }
  const Literal &operator[](size_t I) const {
    assert(I < Lits.size() && "clause literal index out of range");
    return Lits[I];
  }
  const std::vector<Literal> &literals() const { return Lits; }

  /// Returns true if the clause mentions variable \p Var (either polarity).
  bool mentions(int Var) const {
    for (Literal L : Lits)
      if (L.variable() == Var)
        return true;
    return false;
  }

  /// Returns true if this clause shares at least one variable with \p Other.
  /// This is the conflict predicate of the clause-colouring pass (paper
  /// Algorithm 1: an edge exists when C_i ∩ C_j ≠ ∅ over variables).
  bool sharesVariableWith(const Clause &Other) const {
    for (Literal L : Lits)
      if (Other.mentions(L.variable()))
        return true;
    return false;
  }

  /// Evaluates the clause under a full assignment (Assignment[v-1] is the
  /// value of variable v).
  bool evaluate(const std::vector<bool> &Assignment) const {
    for (Literal L : Lits) {
      assert(L.variable() <= static_cast<int>(Assignment.size()) &&
             "assignment too short for clause");
      if (L.evaluate(Assignment[L.variable() - 1]))
        return true;
    }
    return false;
  }

  auto begin() const { return Lits.begin(); }
  auto end() const { return Lits.end(); }

private:
  std::vector<Literal> Lits;
};

/// A CNF formula: a conjunction of clauses over variables 1..numVariables().
class CnfFormula {
public:
  CnfFormula() = default;
  CnfFormula(int NumVariables, std::vector<Clause> Clauses)
      : NumVariables(NumVariables), Clauses(std::move(Clauses)) {
    assert(NumVariables >= 0 && "negative variable count");
  }

  int numVariables() const { return NumVariables; }
  size_t numClauses() const { return Clauses.size(); }
  const std::vector<Clause> &clauses() const { return Clauses; }
  const Clause &clause(size_t I) const {
    assert(I < Clauses.size() && "clause index out of range");
    return Clauses[I];
  }

  /// Appends \p C, growing the variable count if the clause mentions a
  /// variable beyond the current range.
  void addClause(Clause C) {
    for (Literal L : C)
      if (L.variable() > NumVariables)
        NumVariables = L.variable();
    Clauses.push_back(std::move(C));
  }

  /// Returns the number of satisfied clauses under \p Assignment.
  size_t countSatisfied(const std::vector<bool> &Assignment) const {
    size_t Count = 0;
    for (const Clause &C : Clauses)
      if (C.evaluate(Assignment))
        ++Count;
    return Count;
  }

  /// Returns true when every clause has exactly \p K literals.
  bool isExactlyKSat(size_t K) const {
    for (const Clause &C : Clauses)
      if (C.size() != K)
        return false;
    return true;
  }

  /// An optional human-readable instance name (e.g. "uf20-01").
  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

private:
  int NumVariables = 0;
  std::vector<Clause> Clauses;
  std::string Name;
};

} // namespace sat
} // namespace weaver

#endif // WEAVER_SAT_CNF_H
