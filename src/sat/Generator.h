//===- sat/Generator.h - SATLIB-style random 3-SAT generator ---*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic uniform random k-SAT instance generator, the substitute for
/// the SATLIB uf-* benchmark files (see DESIGN.md §1). SATLIB's uf suites
/// are uniform random 3-SAT at the satisfiability phase transition
/// (clauses/variables ≈ 4.26); \c satlibSuite reproduces the same sizes and
/// ratios with fixed seeds so every benchmark row is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SAT_GENERATOR_H
#define WEAVER_SAT_GENERATOR_H

#include "sat/Cnf.h"

#include <cstdint>
#include <vector>

namespace weaver {
namespace sat {

/// Uniform random k-SAT generator. Clauses draw k distinct variables and
/// independent polarities; duplicate clauses are rejected, matching the
/// SATLIB "uf" generation procedure.
class RandomSatGenerator {
public:
  explicit RandomSatGenerator(uint64_t Seed) : Seed(Seed) {}

  /// Generates a formula with \p NumVariables variables and \p NumClauses
  /// clauses of exactly \p K distinct literals each.
  CnfFormula generate(int NumVariables, size_t NumClauses, size_t K = 3) const;

private:
  uint64_t Seed;
};

/// The clause/variable ratio of the SATLIB uf suites (phase transition).
inline constexpr double SatlibClauseRatio = 4.26;

/// Returns the SATLIB-style instance "uf<N>-<Index>" (Index is 1-based),
/// with round(N * 4.26) clauses; uf20 uses the original 91 clauses.
CnfFormula satlibInstance(int NumVariables, int Index);

/// Returns the 10-instance suite for a given size (uf<N>-01 .. uf<N>-10).
std::vector<CnfFormula> satlibSuite(int NumVariables);

/// The variable counts evaluated in the paper (Figures 8b, 10b, 11b, 12b).
inline constexpr int SatlibSizes[] = {20, 50, 75, 100, 150, 250};

} // namespace sat
} // namespace weaver

#endif // WEAVER_SAT_GENERATOR_H
