//===- qaoa/MaxCut.cpp - Max-cut front end ---------------------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "qaoa/MaxCut.h"

#include <algorithm>
#include <cassert>

using namespace weaver;
using namespace weaver::qaoa;

size_t MaxCutGraph::cutSize(uint64_t Bits) const {
  size_t Cut = 0;
  for (auto [U, V] : Edges)
    Cut += ((Bits >> U) & 1) != ((Bits >> V) & 1);
  return Cut;
}

size_t MaxCutGraph::maxCutBruteForce() const {
  assert(NumVertices <= 24 && "brute-force max-cut limited to 24 vertices");
  size_t Best = 0;
  for (uint64_t Bits = 0; Bits < (uint64_t(1) << NumVertices); ++Bits)
    Best = std::max(Best, cutSize(Bits));
  return Best;
}

sat::CnfFormula qaoa::maxCutToFormula(const MaxCutGraph &Graph) {
  sat::CnfFormula F(Graph.NumVertices, {});
  for (auto [U, V] : Graph.Edges) {
    assert(U != V && U >= 0 && V >= 0 && U < Graph.NumVertices &&
           V < Graph.NumVertices && "invalid edge");
    F.addClause(sat::Clause{U + 1, V + 1});
    F.addClause(sat::Clause{-(U + 1), -(V + 1)});
  }
  return F;
}

MaxCutGraph qaoa::paperFigure1Graph() {
  // Fig. 1a is schematic; this six-vertex graph realises its outcome: the
  // unique maximum cut (7 of 8 edges) separates {a, b, e} = {0, 1, 4}
  // from {c, d, f} = {2, 3, 5}, matching the 110010 solution of Fig. 1d.
  MaxCutGraph G;
  G.NumVertices = 6;
  G.Edges = {{0, 1}, {0, 2}, {0, 5}, {1, 2}, {1, 3}, {4, 2}, {4, 3}, {4, 5}};
  return G;
}
