//===- qaoa/Optimizer.h - Classical QAOA parameter search ------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classical half of the hybrid loop of §2.1: "a quantum computer runs
/// a parameterized quantum circuit while a classical computer optimizes
/// the parameters". Evaluates the expected number of satisfied clauses of
/// the (ideal, simulated) QAOA state and searches (gamma, beta) by grid
/// seeding plus coordinate descent. Limited to formulas that fit the
/// state-vector simulator (<= ~16 variables).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_QAOA_OPTIMIZER_H
#define WEAVER_QAOA_OPTIMIZER_H

#include "qaoa/Builder.h"
#include "sat/Cnf.h"

namespace weaver {
namespace qaoa {

/// Search configuration.
struct OptimizerOptions {
  int GridPoints = 7;      ///< per-axis seeding grid
  int RefineIterations = 12;
  double InitialStep = 0.2; ///< coordinate-descent step (halved on failure)
  int Layers = 1;
};

/// Search outcome.
struct OptimizedParams {
  QaoaParams Params;
  /// Expected number of satisfied clauses of the optimised state.
  double ExpectedSatisfied = 0;
  /// Probability mass on assignments achieving the MAX-SAT optimum.
  double OptimumMass = 0;
  int Evaluations = 0;
};

/// Expected satisfied-clause count of the QAOA state for \p Params.
double expectedSatisfiedClauses(const sat::CnfFormula &Formula,
                                const QaoaParams &Params);

/// Runs the grid + coordinate-descent search.
OptimizedParams optimizeQaoaParams(const sat::CnfFormula &Formula,
                                   const OptimizerOptions &Options = {});

} // namespace qaoa
} // namespace weaver

#endif // WEAVER_QAOA_OPTIMIZER_H
