//===- qaoa/IsingPolynomial.cpp - Z-basis cost polynomials ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "qaoa/IsingPolynomial.h"

#include <algorithm>
#include <cassert>

using namespace weaver;
using namespace weaver::qaoa;

void IsingPolynomial::addTerm(std::vector<int> Qubits, double Coefficient) {
  std::sort(Qubits.begin(), Qubits.end());
  assert(std::adjacent_find(Qubits.begin(), Qubits.end()) == Qubits.end() &&
         "duplicate qubit in Ising term");
  double &Slot = Terms[std::move(Qubits)];
  Slot += Coefficient;
}

double IsingPolynomial::coefficient(std::vector<int> Qubits) const {
  std::sort(Qubits.begin(), Qubits.end());
  auto It = Terms.find(Qubits);
  return It == Terms.end() ? 0.0 : It->second;
}

double IsingPolynomial::evaluate(uint64_t Bits) const {
  double Sum = 0;
  for (const auto &[Qubits, Coeff] : Terms) {
    double Prod = Coeff;
    for (int Q : Qubits)
      if ((Bits >> Q) & 1)
        Prod = -Prod;
    Sum += Prod;
  }
  return Sum;
}

IsingPolynomial IsingPolynomial::clauseUnsat(const sat::Clause &Clause) {
  // unsat = prod_i u_i with u = (1 - Z)/2 for a NEGATIVE literal (x, true
  // when the variable is 1) and u = (1 + Z)/2 for a POSITIVE literal
  // (1 - x). Expand the product over all subsets of the clause.
  IsingPolynomial P;
  size_t K = Clause.size();
  assert(K <= 3 && "MAX-3SAT clauses have at most three literals");
  for (uint32_t Subset = 0; Subset < (1u << K); ++Subset) {
    double Coeff = 1.0;
    std::vector<int> Qubits;
    for (size_t I = 0; I < K; ++I) {
      sat::Literal L = Clause[I];
      Coeff *= 0.5;
      if ((Subset >> I) & 1) {
        // Z factor: sign depends on literal polarity.
        Coeff *= L.isNegated() ? -1.0 : 1.0;
        Qubits.push_back(L.variable() - 1);
      }
    }
    P.addTerm(std::move(Qubits), Coeff);
  }
  return P;
}

IsingPolynomial IsingPolynomial::unsatCount(const sat::CnfFormula &Formula) {
  IsingPolynomial P;
  for (const sat::Clause &C : Formula.clauses()) {
    IsingPolynomial ClauseP = clauseUnsat(C);
    for (const auto &[Qubits, Coeff] : ClauseP.terms())
      P.addTerm(Qubits, Coeff);
  }
  return P;
}
