//===- qaoa/Optimizer.cpp - Classical QAOA parameter search ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "qaoa/Optimizer.h"

#include "sat/Evaluator.h"
#include "sim/StateVector.h"

#include <cassert>

using namespace weaver;
using namespace weaver::qaoa;
using sat::CnfFormula;

namespace {

constexpr double Pi = 3.14159265358979323846;

/// Per-assignment satisfied-clause counts, computed once per search.
std::vector<double> satisfiedTable(const CnfFormula &Formula) {
  int N = Formula.numVariables();
  std::vector<double> Table(size_t(1) << N);
  for (uint64_t Bits = 0; Bits < Table.size(); ++Bits)
    Table[Bits] = static_cast<double>(
        Formula.countSatisfied(sat::assignmentFromBits(Bits, N)));
  return Table;
}

double evaluate(const CnfFormula &Formula, const std::vector<double> &Table,
                const QaoaParams &Params) {
  sim::StateVector SV(Formula.numVariables());
  SV.applyCircuit(buildQaoaCircuit(Formula, Params));
  std::vector<double> Probs = SV.probabilities();
  double Expectation = 0;
  for (size_t Bits = 0; Bits < Probs.size(); ++Bits)
    Expectation += Probs[Bits] * Table[Bits];
  return Expectation;
}

} // namespace

double qaoa::expectedSatisfiedClauses(const CnfFormula &Formula,
                                      const QaoaParams &Params) {
  assert(Formula.numVariables() <= 16 &&
         "parameter optimisation needs a simulable register");
  return evaluate(Formula, satisfiedTable(Formula), Params);
}

OptimizedParams qaoa::optimizeQaoaParams(const CnfFormula &Formula,
                                         const OptimizerOptions &Options) {
  assert(Formula.numVariables() <= 16 &&
         "parameter optimisation needs a simulable register");
  std::vector<double> Table = satisfiedTable(Formula);
  OptimizedParams Result;
  Result.Params.Layers = Options.Layers;

  // Grid seeding over one period of each angle.
  double BestValue = -1;
  for (int GI = 1; GI <= Options.GridPoints; ++GI)
    for (int BI = 1; BI <= Options.GridPoints; ++BI) {
      QaoaParams P;
      P.Layers = Options.Layers;
      P.Gamma = Pi * GI / (Options.GridPoints + 1);
      P.Beta = (Pi / 2) * BI / (Options.GridPoints + 1);
      double Value = evaluate(Formula, Table, P);
      ++Result.Evaluations;
      if (Value > BestValue) {
        BestValue = Value;
        Result.Params = P;
      }
    }

  // Coordinate descent refinement.
  double Step = Options.InitialStep;
  for (int Iter = 0; Iter < Options.RefineIterations; ++Iter) {
    bool Improved = false;
    for (int Axis = 0; Axis < 2; ++Axis)
      for (double Dir : {+1.0, -1.0}) {
        QaoaParams P = Result.Params;
        (Axis == 0 ? P.Gamma : P.Beta) += Dir * Step;
        double Value = evaluate(Formula, Table, P);
        ++Result.Evaluations;
        if (Value > BestValue) {
          BestValue = Value;
          Result.Params = P;
          Improved = true;
        }
      }
    if (!Improved)
      Step /= 2;
  }

  Result.ExpectedSatisfied = BestValue;

  // Mass on optimal assignments.
  sat::MaxSatOptimum Opt = sat::bruteForceMaxSat(Formula);
  sim::StateVector SV(Formula.numVariables());
  SV.applyCircuit(buildQaoaCircuit(Formula, Result.Params));
  std::vector<double> Probs = SV.probabilities();
  for (size_t Bits = 0; Bits < Probs.size(); ++Bits)
    if (Table[Bits] == static_cast<double>(Opt.BestSatisfied))
      Result.OptimumMass += Probs[Bits];
  return Result;
}
