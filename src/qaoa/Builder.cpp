//===- qaoa/Builder.cpp - QAOA circuit construction -----------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Angle derivation for the canonical all-negative clause (¬a ∨ ¬b ∨ ¬c),
/// whose unsat indicator is x_a x_b x_c with
///   x_a x_b x_c = 1/8 (1 - Za - Zb - Zc + ZaZb + ZaZc + ZbZc - ZaZbZc).
/// exp(-i g * unsat) therefore needs the exponent coefficients
///   singles: -g/8 each, pairs: +g/8 each, cubic: -g/8
/// (exp(-i c Z...) with RZ(t) = exp(-i t/2 Z), i.e. t = 2c).
///
/// The compressed form uses the identity
///   CCX(a,b;c) RZ_c(t) CCX(a,b;c) = exp(-i t/4 (Zc + ZaZc + ZbZc - ZaZbZc))
/// so t = g/2 supplies the cubic and both target-pair terms; the remaining
/// control-pair term is an RZZ(g/4) ladder and the single-qubit residues are
/// RZ(-g/4) on the controls and RZ(-g/2) on the target. Mixed-polarity
/// clauses are X-conjugated into the canonical form first.
///
//===----------------------------------------------------------------------===//

#include "qaoa/Builder.h"

using namespace weaver;
using namespace weaver::qaoa;
using circuit::Circuit;
using sat::Clause;
using sat::CnfFormula;
using sat::Literal;

namespace {

/// Applies X to every positive-literal qubit, mapping the clause's unsat
/// indicator onto the canonical monomial x_a x_b x_c.
void appendPolarityConjugation(Circuit &C, const Clause &Clause) {
  for (Literal L : Clause)
    if (!L.isNegated())
      C.x(L.variable() - 1);
}

/// Appends exp(-i (Theta/2) Z⊗Z) on (A, B) via the CX ladder.
void appendRzzLadder(Circuit &C, double Theta, int A, int B) {
  C.cx(A, B);
  C.rz(Theta, B);
  C.cx(A, B);
}

/// Appends exp(-i (Theta/2) Z⊗Z⊗Z) on (A, B, T) via the CX ladder.
void appendRzzzLadder(Circuit &C, double Theta, int A, int B, int T) {
  C.cx(A, B);
  C.cx(B, T);
  C.rz(Theta, T);
  C.cx(B, T);
  C.cx(A, B);
}

} // namespace

void qaoa::appendClausePhaseLadder(Circuit &C, const Clause &Clause,
                                   double Gamma) {
  size_t K = Clause.size();
  assert(K >= 1 && K <= 3 && "clause width must be 1..3");
  appendPolarityConjugation(C, Clause);
  int Q[3];
  for (size_t I = 0; I < K; ++I)
    Q[I] = Clause[I].variable() - 1;
  switch (K) {
  case 1:
    // unsat = x_a = (1 - Za)/2: coefficient -g/2 -> RZ(-g).
    C.rz(-Gamma, Q[0]);
    break;
  case 2:
    // unsat = x_a x_b: singles -g/4 -> RZ(-g/2); pair +g/4 -> RZZ(g/2).
    C.rz(-Gamma / 2, Q[0]);
    C.rz(-Gamma / 2, Q[1]);
    appendRzzLadder(C, Gamma / 2, Q[0], Q[1]);
    break;
  case 3:
    // See file comment for the coefficient table.
    C.rz(-Gamma / 4, Q[0]);
    C.rz(-Gamma / 4, Q[1]);
    C.rz(-Gamma / 4, Q[2]);
    appendRzzLadder(C, Gamma / 4, Q[0], Q[1]);
    appendRzzLadder(C, Gamma / 4, Q[0], Q[2]);
    appendRzzLadder(C, Gamma / 4, Q[1], Q[2]);
    appendRzzzLadder(C, -Gamma / 4, Q[0], Q[1], Q[2]);
    break;
  }
  appendPolarityConjugation(C, Clause);
}

void qaoa::appendClausePhaseCompressed(Circuit &C, const Clause &Clause,
                                       double Gamma) {
  assert(Clause.size() == 3 &&
         "compressed fragments require 3-literal clauses");
  int A = Clause[0].variable() - 1;
  int B = Clause[1].variable() - 1;
  int T = Clause[2].variable() - 1;
  appendPolarityConjugation(C, Clause);
  // CCZ sandwich: H(t) CCZ RX(g/2, t) CCZ H(t) == CCX RZ_t(g/2) CCX.
  C.h(T);
  C.ccz(A, B, T);
  C.rx(Gamma / 2, T);
  C.ccz(A, B, T);
  C.h(T);
  // Control-pair term and single-qubit residues.
  appendRzzLadder(C, Gamma / 4, A, B);
  C.rz(-Gamma / 4, A);
  C.rz(-Gamma / 4, B);
  C.rz(-Gamma / 2, T);
  appendPolarityConjugation(C, Clause);
}

Circuit qaoa::buildQaoaCircuit(const CnfFormula &Formula,
                               const QaoaParams &Params) {
  Circuit C(Formula.numVariables(),
            Formula.name().empty() ? "qaoa" : "qaoa-" + Formula.name());
  for (int Q = 0; Q < Formula.numVariables(); ++Q)
    C.h(Q);
  for (int Layer = 0; Layer < Params.Layers; ++Layer) {
    for (const Clause &Cl : Formula.clauses()) {
      if (Params.UseCompressedClauses && Cl.size() == 3)
        appendClausePhaseCompressed(C, Cl, Params.Gamma);
      else
        appendClausePhaseLadder(C, Cl, Params.Gamma);
    }
    for (int Q = 0; Q < Formula.numVariables(); ++Q)
      C.rx(2 * Params.Beta, Q);
  }
  if (Params.Measure)
    C.measureAll();
  return C;
}
