//===- qaoa/Builder.h - QAOA circuit construction --------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds QAOA circuits for MAX-3SAT formulas (paper §2.1, §5): an H layer
/// initialises the mixer ground state, each layer applies the cost
/// Hamiltonian phase separation exp(-i gamma C) clause by clause followed
/// by the RX mixer, and measurements produce the distribution of Fig. 1c.
///
/// Two clause-fragment implementations are provided:
///  * the CNOT-ladder form (Fig. 6) used as the hardware-agnostic
///    reference, and
///  * the compressed CCZ form (Fig. 7, §5.4): 2 CCZ + 2 CZ-ladder gates
///    instead of the 8-CNOT network.
/// Mixed-polarity clauses are normalised by conjugating positive-literal
/// qubits with X ("setting control bits to zero with single-qubit
/// rotations", §5.4), after which every clause is the canonical monomial
/// x_a x_b x_c.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_QAOA_BUILDER_H
#define WEAVER_QAOA_BUILDER_H

#include "circuit/Circuit.h"
#include "sat/Cnf.h"

namespace weaver {
namespace qaoa {

/// QAOA hyper-parameters.
struct QaoaParams {
  double Gamma = 0.7; ///< cost-Hamiltonian angle per layer
  double Beta = 0.3;  ///< mixer angle per layer
  int Layers = 1;     ///< p
  bool Measure = false;
  bool UseCompressedClauses = false; ///< Fig. 7 CCZ fragments
};

/// Appends exp(-i Gamma * unsat(Clause)) using the CNOT-ladder form
/// (Fig. 6). Handles clauses of 1-3 literals.
void appendClausePhaseLadder(circuit::Circuit &C, const sat::Clause &Clause,
                             double Gamma);

/// Appends exp(-i Gamma * unsat(Clause)) using the compressed CCZ form
/// (Fig. 7). Requires a 3-literal clause.
void appendClausePhaseCompressed(circuit::Circuit &C,
                                 const sat::Clause &Clause, double Gamma);

/// Builds the full QAOA circuit over numVariables() qubits.
circuit::Circuit buildQaoaCircuit(const sat::CnfFormula &Formula,
                                  const QaoaParams &Params = QaoaParams());

} // namespace qaoa
} // namespace weaver

#endif // WEAVER_QAOA_BUILDER_H
