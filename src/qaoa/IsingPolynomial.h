//===- qaoa/IsingPolynomial.h - Z-basis cost polynomials -------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multilinear polynomials over Z operators representing MAX-3SAT cost
/// Hamiltonians (paper §5: clause objective functions aggregate into a
/// Boolean polynomial with terms of at most cubic degree).
///
/// The cost minimised by QAOA is C(b) = number of UNsatisfied clauses of
/// bitstring b. Each clause contributes the monomial u_1 u_2 u_3 where
/// u_i = x for a negative literal and (1-x) for a positive one; under
/// x = (1 - Z)/2 this expands into Z-terms of degree <= 3.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_QAOA_ISINGPOLYNOMIAL_H
#define WEAVER_QAOA_ISINGPOLYNOMIAL_H

#include "sat/Cnf.h"

#include <cstdint>
#include <map>
#include <vector>

namespace weaver {
namespace qaoa {

/// A real multilinear polynomial over Z_0 .. Z_{n-1}. Keys are sorted
/// 0-based qubit-index subsets; the empty key holds the constant term.
class IsingPolynomial {
public:
  /// Adds \p Coefficient * prod_{q in Qubits} Z_q (Qubits need not be
  /// sorted; duplicates are invalid).
  void addTerm(std::vector<int> Qubits, double Coefficient);

  /// Returns the coefficient of the given term (0 when absent).
  double coefficient(std::vector<int> Qubits) const;

  const std::map<std::vector<int>, double> &terms() const { return Terms; }

  /// Evaluates the polynomial at the computational basis state \p Bits
  /// (bit q of \p Bits is qubit q; Z eigenvalue is +1 for 0, -1 for 1).
  double evaluate(uint64_t Bits) const;

  /// Builds the unsatisfied-clause-count polynomial of \p Formula over
  /// qubits 0..numVariables()-1 (variable v maps to qubit v-1).
  static IsingPolynomial unsatCount(const sat::CnfFormula &Formula);

  /// Builds the polynomial of a single clause's unsat indicator.
  static IsingPolynomial clauseUnsat(const sat::Clause &Clause);

private:
  std::map<std::vector<int>, double> Terms;
};

} // namespace qaoa
} // namespace weaver

#endif // WEAVER_QAOA_ISINGPOLYNOMIAL_H
