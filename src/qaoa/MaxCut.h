//===- qaoa/MaxCut.h - Max-cut front end -----------------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The max-cut workload of the paper's walk-through (Fig. 1): a graph is
/// encoded as a MAX-SAT formula — edge (u, v) contributes clauses
/// (u | v) and (!u | !v), both satisfied exactly when the edge is cut —
/// so maximising satisfied clauses maximises |E| + cut(b). Measured
/// bitstrings are decoded back into vertex partitions.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_QAOA_MAXCUT_H
#define WEAVER_QAOA_MAXCUT_H

#include "sat/Cnf.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace weaver {
namespace qaoa {

/// An undirected graph for max-cut.
struct MaxCutGraph {
  int NumVertices = 0;
  std::vector<std::pair<int, int>> Edges; ///< 0-based vertex pairs

  /// Number of edges crossing the partition encoded by \p Bits (bit v = 1
  /// places vertex v in the second part).
  size_t cutSize(uint64_t Bits) const;

  /// Exhaustive optimum (NumVertices <= 24).
  size_t maxCutBruteForce() const;
};

/// Encodes \p Graph as the 2-clause-per-edge MAX-SAT formula described in
/// the file comment.
sat::CnfFormula maxCutToFormula(const MaxCutGraph &Graph);

/// The example graph of the paper's Fig. 1: six vertices whose best cut
/// separates {a, b, e} from {c, d, f}.
MaxCutGraph paperFigure1Graph();

} // namespace qaoa
} // namespace weaver

#endif // WEAVER_QAOA_MAXCUT_H
