//===- oq2/Parser.cpp - OpenQASM 2 recursive-descent parser ---------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "oq2/Parser.h"

#include "circuit/Gate.h"
#include "oq2/Lexer.h"
#include "oq2/Qelib.h"

#include <map>

using namespace weaver;
using namespace weaver::oq2;

bool oq2::isNativeGateName(std::string_view Name) {
  // The OpenQASM 2 primitives spell themselves in upper case.
  if (Name == "U" || Name == "CX")
    return true;
  circuit::GateKind Kind;
  return circuit::parseGateName(Name, Kind);
}

namespace {

bool isUnaryFunc(std::string_view Name) {
  return Name == "sin" || Name == "cos" || Name == "tan" || Name == "exp" ||
         Name == "ln" || Name == "sqrt";
}

/// Recursive-descent parser over a token stream. All parse methods
/// return false after recording the first positioned error; callers
/// propagate immediately, so parsing stops at the first diagnostic.
class ParserImpl {
public:
  ParserImpl(const std::vector<Token> &Toks, const Oq2Limits &Limits,
             Program &Prog, std::map<std::string, size_t> &GateIndex,
             bool GateDefsOnly)
      : Toks(Toks), Limits(Limits), Prog(Prog), GateIndex(GateIndex),
        GateDefsOnly(GateDefsOnly) {}

  bool run() {
    if (!GateDefsOnly && !parseHeader())
      return false;
    while (!peek().is(TokenKind::EndOfFile))
      if (!parseStatement())
        return false;
    return true;
  }

  const Status &error() const { return Err; }

private:
  const std::vector<Token> &Toks;
  const Oq2Limits &Limits;
  Program &Prog;
  std::map<std::string, size_t> &GateIndex;
  bool GateDefsOnly;
  size_t Pos = 0;
  Status Err;

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  const Token &get() {
    const Token &T = peek();
    if (Pos + 1 < Toks.size())
      ++Pos;
    return T;
  }

  bool fail(const Token &At, const std::string &Msg) {
    Err = Status::error("line " + std::to_string(At.Line) + ", col " +
                        std::to_string(At.Col) + ": " + Msg);
    return false;
  }

  bool expectPunct(std::string_view P, const char *Context) {
    const Token &T = peek();
    if (!T.isPunct(P))
      return fail(T, "expected '" + std::string(P) + "' " + Context +
                         ", got '" + T.Text + "'");
    get();
    return true;
  }

  bool expectIdent(std::string &Out, const char *Context) {
    const Token &T = peek();
    if (!T.is(TokenKind::Identifier))
      return fail(T, std::string("expected identifier ") + Context +
                         ", got '" + T.Text + "'");
    Out = get().Text;
    return true;
  }

  // --- header and statement dispatch ------------------------------------

  bool parseHeader() {
    const Token &Kw = peek();
    if (!Kw.isIdent("OPENQASM"))
      return fail(Kw, "expected 'OPENQASM 2.0;' header");
    get();
    const Token &V = peek();
    bool VersionOk =
        (V.is(TokenKind::Real) && V.Text == "2.0") ||
        (V.is(TokenKind::Integer) && V.IntValue == 2);
    if (!VersionOk)
      return fail(V, "unsupported OpenQASM version '" + V.Text +
                         "' (only 2.0)");
    get();
    return expectPunct(";", "after version");
  }

  bool parseStatement() {
    if (Prog.Body.size() > Limits.MaxStatements)
      return fail(peek(), "program exceeds " +
                              std::to_string(Limits.MaxStatements) +
                              " statements");
    const Token &T = peek();
    if (!T.is(TokenKind::Identifier))
      return fail(T, "expected statement, got '" + T.Text + "'");
    if (GateDefsOnly && T.Text != "gate")
      return fail(T, "only gate definitions are allowed here");
    if (T.Text == "include")
      return parseInclude();
    if (T.Text == "qreg" || T.Text == "creg")
      return parseRegDecl(T.Text == "qreg");
    if (T.Text == "gate")
      return parseGateDef(/*Opaque=*/false);
    if (T.Text == "opaque")
      return parseGateDef(/*Opaque=*/true);
    if (T.Text == "measure")
      return parseMeasure();
    if (T.Text == "barrier")
      return parseBarrier();
    if (T.Text == "reset")
      return fail(T, "'reset' is not supported (no reset in the circuit IR)");
    if (T.Text == "if")
      return fail(T, "classically-controlled 'if' statements are not "
                     "supported");
    return parseTopLevelCall();
  }

  bool parseInclude() {
    const Token &Kw = get(); // include
    const Token &Path = peek();
    if (!Path.is(TokenKind::String))
      return fail(Path, "expected include path string");
    get();
    if (!expectPunct(";", "after include"))
      return false;
    if (Path.Text != "qelib1.inc")
      return fail(Path, "cannot include '" + Path.Text +
                            "': only the built-in \"qelib1.inc\" is "
                            "available (no filesystem access)");
    if (Prog.IncludedQelib)
      return true; // idempotent
    Prog.IncludedQelib = true;
    Expected<std::vector<Token>> QelibToks = tokenizeOq2(qelibSource());
    if (!QelibToks)
      return fail(Kw, "internal qelib1.inc lex error: " +
                          QelibToks.message());
    ParserImpl Qelib(*QelibToks, Limits, Prog, GateIndex,
                     /*GateDefsOnly=*/true);
    if (!Qelib.run()) {
      Err = Status::error("internal qelib1.inc parse error: " +
                          Qelib.error().message());
      return false;
    }
    return true;
  }

  // --- declarations ------------------------------------------------------

  bool parseRegDecl(bool IsQreg) {
    const Token &Kw = get(); // qreg / creg
    RegDecl Decl;
    Decl.Line = Kw.Line;
    Decl.Col = Kw.Col;
    if (!expectIdent(Decl.Name, IsQreg ? "after qreg" : "after creg"))
      return false;
    if (findReg(Prog.Qregs, Decl.Name) || findReg(Prog.Cregs, Decl.Name))
      return fail(Kw, "register '" + Decl.Name + "' redeclared");
    if (!expectPunct("[", "in register declaration"))
      return false;
    const Token &SizeTok = peek();
    if (!SizeTok.is(TokenKind::Integer))
      return fail(SizeTok, "expected register size, got '" + SizeTok.Text +
                               "'");
    get();
    Decl.Size = SizeTok.IntValue;
    if (Decl.Size < 1)
      return fail(SizeTok, "register size must be at least 1");
    long long Budget = IsQreg ? Limits.MaxQubits : Limits.MaxCregBits;
    long long Used = 0;
    for (const RegDecl &R : IsQreg ? Prog.Qregs : Prog.Cregs)
      Used += R.Size;
    if (Decl.Size > Budget - Used)
      return fail(SizeTok,
                  (IsQreg ? std::string("qubit") : std::string("creg bit")) +
                      " budget exceeded: " + std::to_string(Used) + " + " +
                      std::to_string(Decl.Size) + " > " +
                      std::to_string(Budget));
    if (!expectPunct("]", "in register declaration") ||
        !expectPunct(";", "after register declaration"))
      return false;
    (IsQreg ? Prog.Qregs : Prog.Cregs).push_back(std::move(Decl));
    return true;
  }

  static bool findReg(const std::vector<RegDecl> &Regs,
                      const std::string &Name) {
    for (const RegDecl &R : Regs)
      if (R.Name == Name)
        return true;
    return false;
  }

  // --- gate definitions ---------------------------------------------------

  bool parseGateDef(bool Opaque) {
    const Token &Kw = get(); // gate / opaque
    GateDef Def;
    Def.Opaque = Opaque;
    Def.Line = Kw.Line;
    Def.Col = Kw.Col;
    if (Prog.Gates.size() >= Limits.MaxGateDefs)
      return fail(Kw, "too many gate definitions (limit " +
                          std::to_string(Limits.MaxGateDefs) + ")");
    if (!expectIdent(Def.Name, "after 'gate'"))
      return false;
    if (isNativeGateName(Def.Name))
      return fail(Kw, "gate '" + Def.Name + "' redefines a built-in gate");
    if (GateIndex.count(Def.Name))
      return fail(Kw, "gate '" + Def.Name + "' redefined");
    if (peek().isPunct("(")) {
      get();
      if (!peek().isPunct(")")) {
        do {
          std::string P;
          if (!expectIdent(P, "in gate parameter list"))
            return false;
          for (const std::string &Prev : Def.Params)
            if (Prev == P)
              return fail(peek(), "duplicate gate parameter '" + P + "'");
          Def.Params.push_back(std::move(P));
          if (Def.Params.size() > Limits.MaxGateParams)
            return fail(Kw, "too many gate parameters");
        } while (peek().isPunct(",") && (get(), true));
      }
      if (!expectPunct(")", "after gate parameters"))
        return false;
    }
    do {
      std::string Q;
      if (!expectIdent(Q, "in gate qubit list"))
        return false;
      for (const std::string &Prev : Def.Qubits)
        if (Prev == Q)
          return fail(peek(), "duplicate gate qubit '" + Q + "'");
      Def.Qubits.push_back(std::move(Q));
      if (Def.Qubits.size() > Limits.MaxGateFormals)
        return fail(Kw, "too many gate qubits");
    } while (peek().isPunct(",") && (get(), true));
    if (Opaque) {
      if (!expectPunct(";", "after opaque declaration"))
        return false;
    } else {
      if (!expectPunct("{", "before gate body"))
        return false;
      while (!peek().isPunct("}")) {
        if (peek().is(TokenKind::EndOfFile))
          return fail(peek(), "unterminated gate body of '" + Def.Name +
                                  "'");
        if (Def.Body.size() >= Limits.MaxGateBodyOps)
          return fail(peek(), "gate body of '" + Def.Name +
                                  "' exceeds " +
                                  std::to_string(Limits.MaxGateBodyOps) +
                                  " operations");
        GateCall Op;
        if (!parseBodyOp(Def, Op))
          return false;
        Def.Body.push_back(std::move(Op));
      }
      get(); // }
    }
    GateIndex[Def.Name] = Prog.Gates.size();
    Prog.Gates.push_back(std::move(Def));
    return true;
  }

  /// One operation inside a gate body: a call over formal qubits, or a
  /// barrier. Callees must be native or already defined — a gate can
  /// never reference itself or a later definition, so recursion is
  /// structurally impossible.
  bool parseBodyOp(const GateDef &Def, GateCall &Op) {
    const Token &T = peek();
    Op.Line = T.Line;
    Op.Col = T.Col;
    if (!T.is(TokenKind::Identifier))
      return fail(T, "expected gate call, got '" + T.Text + "'");
    if (T.Text == "barrier") {
      get();
      Op.IsBarrier = true;
    } else {
      Op.Name = get().Text;
      if (!isNativeGateName(Op.Name) && !GateIndex.count(Op.Name))
        return fail(T, "undefined gate '" + Op.Name +
                           "' (gates must be defined before use)");
      if (peek().isPunct("(")) {
        get();
        if (!parseExprList(Op.Params, &Def))
          return false;
        if (!expectPunct(")", "after gate call parameters"))
          return false;
      }
    }
    do {
      std::string Q;
      const Token &ArgTok = peek();
      if (!expectIdent(Q, "in gate body operand list"))
        return false;
      bool Known = false;
      for (const std::string &F : Def.Qubits)
        Known |= (F == Q);
      if (!Known)
        return fail(ArgTok, "unknown qubit '" + Q + "' in body of '" +
                                Def.Name + "'");
      for (const Argument &Prev : Op.Args)
        if (Prev.Reg == Q)
          return fail(ArgTok, "duplicate operand '" + Q + "'");
      Argument A;
      A.Reg = std::move(Q);
      A.Line = ArgTok.Line;
      A.Col = ArgTok.Col;
      Op.Args.push_back(std::move(A));
    } while (peek().isPunct(",") && (get(), true));
    return expectPunct(";", "after gate body operation");
  }

  // --- top-level operations ----------------------------------------------

  bool parseArgument(Argument &A, const char *Context) {
    const Token &T = peek();
    A.Line = T.Line;
    A.Col = T.Col;
    if (!expectIdent(A.Reg, Context))
      return false;
    if (peek().isPunct("[")) {
      get();
      const Token &Idx = peek();
      if (!Idx.is(TokenKind::Integer))
        return fail(Idx, "expected register index, got '" + Idx.Text + "'");
      get();
      A.Index = Idx.IntValue;
      if (!expectPunct("]", "after register index"))
        return false;
    }
    return true;
  }

  bool parseTopLevelCall() {
    Stmt S;
    const Token &T = peek();
    S.Line = T.Line;
    S.Col = T.Col;
    S.StmtKind = Stmt::Kind::Call;
    S.Call.Name = get().Text;
    S.Call.Line = T.Line;
    S.Call.Col = T.Col;
    if (!isNativeGateName(S.Call.Name) && !GateIndex.count(S.Call.Name))
      return fail(T, "unknown gate '" + S.Call.Name + "'");
    if (peek().isPunct("(")) {
      get();
      if (!parseExprList(S.Call.Params, nullptr))
        return false;
      if (!expectPunct(")", "after gate parameters"))
        return false;
    }
    do {
      Argument A;
      if (!parseArgument(A, "in gate operand list"))
        return false;
      S.Call.Args.push_back(std::move(A));
      if (S.Call.Args.size() > Limits.MaxGateFormals)
        return fail(T, "too many gate operands");
    } while (peek().isPunct(",") && (get(), true));
    if (!expectPunct(";", "after gate call"))
      return false;
    Prog.Body.push_back(std::move(S));
    return true;
  }

  bool parseMeasure() {
    Stmt S;
    const Token &Kw = get(); // measure
    S.Line = Kw.Line;
    S.Col = Kw.Col;
    S.StmtKind = Stmt::Kind::Measure;
    if (!parseArgument(S.MeasureSrc, "after 'measure'"))
      return false;
    if (!expectPunct("->", "in measure statement"))
      return false;
    if (!parseArgument(S.MeasureDst, "after '->'"))
      return false;
    if (!expectPunct(";", "after measure statement"))
      return false;
    Prog.Body.push_back(std::move(S));
    return true;
  }

  bool parseBarrier() {
    Stmt S;
    const Token &Kw = get(); // barrier
    S.Line = Kw.Line;
    S.Col = Kw.Col;
    S.StmtKind = Stmt::Kind::Barrier;
    S.Call.IsBarrier = true;
    do {
      Argument A;
      if (!parseArgument(A, "in barrier operand list"))
        return false;
      S.Call.Args.push_back(std::move(A));
    } while (peek().isPunct(",") && (get(), true));
    if (!expectPunct(";", "after barrier"))
      return false;
    Prog.Body.push_back(std::move(S));
    return true;
  }

  // --- parameter expressions ---------------------------------------------

  bool parseExprList(std::vector<ExprPtr> &Out, const GateDef *Def) {
    if (peek().isPunct(")"))
      return true; // empty list: "()" is accepted like the reference parser
    do {
      ExprPtr E;
      if (!parseExpr(E, Def, 0))
        return false;
      Out.push_back(std::move(E));
      if (Out.size() > Limits.MaxGateParams)
        return fail(peek(), "too many parameters in gate call");
    } while (peek().isPunct(",") && (get(), true));
    return true;
  }

  bool parseExpr(ExprPtr &Out, const GateDef *Def, int Depth) {
    if (Depth > Limits.MaxExprDepth)
      return fail(peek(), "parameter expression too deeply nested");
    if (!parseMul(Out, Def, Depth + 1))
      return false;
    while (peek().isPunct("+") || peek().isPunct("-")) {
      std::string Op = get().Text;
      ExprPtr Rhs;
      if (!parseMul(Rhs, Def, Depth + 1))
        return false;
      Out = makeBinary(Op, std::move(Out), std::move(Rhs));
    }
    return true;
  }

  bool parseMul(ExprPtr &Out, const GateDef *Def, int Depth) {
    if (Depth > Limits.MaxExprDepth)
      return fail(peek(), "parameter expression too deeply nested");
    if (!parseUnary(Out, Def, Depth + 1))
      return false;
    while (peek().isPunct("*") || peek().isPunct("/")) {
      std::string Op = get().Text;
      ExprPtr Rhs;
      if (!parseUnary(Rhs, Def, Depth + 1))
        return false;
      Out = makeBinary(Op, std::move(Out), std::move(Rhs));
    }
    return true;
  }

  bool parseUnary(ExprPtr &Out, const GateDef *Def, int Depth) {
    if (Depth > Limits.MaxExprDepth)
      return fail(peek(), "parameter expression too deeply nested");
    if (peek().isPunct("-")) {
      const Token &Minus = get();
      ExprPtr Inner;
      if (!parseUnary(Inner, Def, Depth + 1))
        return false;
      auto E = std::make_unique<Expr>();
      E->NodeKind = Expr::Kind::Unary;
      E->Name = "-";
      E->Lhs = std::move(Inner);
      E->Line = Minus.Line;
      E->Col = Minus.Col;
      Out = std::move(E);
      return true;
    }
    return parsePower(Out, Def, Depth + 1);
  }

  bool parsePower(ExprPtr &Out, const GateDef *Def, int Depth) {
    if (Depth > Limits.MaxExprDepth)
      return fail(peek(), "parameter expression too deeply nested");
    if (!parsePrimary(Out, Def, Depth + 1))
      return false;
    if (peek().isPunct("^")) {
      get();
      ExprPtr Rhs;
      if (!parseUnary(Rhs, Def, Depth + 1)) // right-associative
        return false;
      Out = makeBinary("^", std::move(Out), std::move(Rhs));
    }
    return true;
  }

  bool parsePrimary(ExprPtr &Out, const GateDef *Def, int Depth) {
    const Token &T = peek();
    if (T.is(TokenKind::Real) || T.is(TokenKind::Integer)) {
      get();
      auto E = std::make_unique<Expr>();
      E->NodeKind = Expr::Kind::Number;
      E->Value = T.RealValue;
      E->Line = T.Line;
      E->Col = T.Col;
      Out = std::move(E);
      return true;
    }
    if (T.isPunct("(")) {
      get();
      if (!parseExpr(Out, Def, Depth + 1))
        return false;
      return expectPunct(")", "in parameter expression");
    }
    if (T.is(TokenKind::Identifier)) {
      get();
      if (T.Text == "pi") {
        auto E = std::make_unique<Expr>();
        E->NodeKind = Expr::Kind::Pi;
        E->Line = T.Line;
        E->Col = T.Col;
        Out = std::move(E);
        return true;
      }
      if (isUnaryFunc(T.Text)) {
        if (!expectPunct("(", "after function name"))
          return false;
        ExprPtr Inner;
        if (!parseExpr(Inner, Def, Depth + 1))
          return false;
        if (!expectPunct(")", "after function argument"))
          return false;
        auto E = std::make_unique<Expr>();
        E->NodeKind = Expr::Kind::Unary;
        E->Name = T.Text;
        E->Lhs = std::move(Inner);
        E->Line = T.Line;
        E->Col = T.Col;
        Out = std::move(E);
        return true;
      }
      bool KnownParam = false;
      if (Def)
        for (const std::string &P : Def->Params)
          KnownParam |= (P == T.Text);
      if (!KnownParam)
        return fail(T, Def ? "unknown parameter '" + T.Text + "'"
                           : "identifier '" + T.Text +
                                 "' is not a constant (only 'pi' and "
                                 "numeric parameters are allowed here)");
      auto E = std::make_unique<Expr>();
      E->NodeKind = Expr::Kind::Param;
      E->Name = T.Text;
      E->Line = T.Line;
      E->Col = T.Col;
      Out = std::move(E);
      return true;
    }
    return fail(T, "expected parameter expression, got '" + T.Text + "'");
  }

  static ExprPtr makeBinary(std::string Op, ExprPtr Lhs, ExprPtr Rhs) {
    auto E = std::make_unique<Expr>();
    E->NodeKind = Expr::Kind::Binary;
    E->Name = std::move(Op);
    E->Line = Lhs->Line;
    E->Col = Lhs->Col;
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    return E;
  }
};

} // namespace

Expected<Program> oq2::parseOq2Program(std::string_view Source,
                                       const Oq2Limits &Limits) {
  if (Source.size() > Limits.MaxSourceBytes)
    return Expected<Program>::error(
        "input exceeds " + std::to_string(Limits.MaxSourceBytes) +
        " bytes (" + std::to_string(Source.size()) + ")");
  Expected<std::vector<Token>> Toks = tokenizeOq2(Source);
  if (!Toks)
    return Expected<Program>::error(Toks.message());
  Program Prog;
  std::map<std::string, size_t> GateIndex;
  ParserImpl P(*Toks, Limits, Prog, GateIndex, /*GateDefsOnly=*/false);
  if (!P.run())
    return Expected<Program>(P.error());
  return Prog;
}
