//===- oq2/QaoaRecover.cpp - QAOA structure recovery ----------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "oq2/QaoaRecover.h"

using namespace weaver;
using namespace weaver::oq2;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

bool sameGate(const Gate &A, const Gate &B) {
  if (A.kind() != B.kind())
    return false;
  for (unsigned I = 0, E = A.numQubits(); I < E; ++I)
    if (A.qubit(I) != B.qubit(I))
      return false;
  for (unsigned I = 0, E = A.numParams(); I < E; ++I)
    if (A.param(I) != B.param(I))
      return false;
  return true;
}

/// Returns true if the gates of \p Fragment appear verbatim in \p C
/// starting at \p Pos.
bool matchAt(const Circuit &C, size_t Pos, const Circuit &Fragment) {
  if (Pos + Fragment.size() > C.size())
    return false;
  for (size_t I = 0; I < Fragment.size(); ++I)
    if (!sameGate(C.gate(Pos + I), Fragment.gate(I)))
      return false;
  return true;
}

class Recovery {
public:
  explicit Recovery(const Circuit &C) : C(C), N(C.numQubits()) {}

  Expected<RecoveredQaoa> run() {
    // H prefix over all qubits in order.
    if (C.size() < static_cast<size_t>(N))
      return fail("shorter than its Hadamard prefix");
    for (int Q = 0; Q < N; ++Q) {
      const Gate &G = C.gate(Q);
      if (G.kind() != GateKind::H || G.qubit(0) != Q)
        return fail("gate " + std::to_string(Q) +
                    " is not the expected prefix h q[" + std::to_string(Q) +
                    "]");
    }
    size_t Pos = N;
    if (!parseFirstLayer(Pos))
      return Err;
    size_t LayerLen = Pos - N;
    RecoveredQaoa R;
    R.Params.Layers = 1;
    R.Params.Gamma = GammaSet ? Gamma : R.Params.Gamma;
    R.Params.Beta = Beta;
    if (CompressedSeen && Ladder3Seen)
      return fail("mixes compressed and ladder 3-clause fragments");
    R.Params.UseCompressedClauses = CompressedSeen;
    // Further layers repeat the first layer's gate sequence verbatim
    // (same formula, same angles every layer).
    while (LayerLen > 0 && Pos + LayerLen <= C.size()) {
      bool Repeat = true;
      for (size_t I = 0; I < LayerLen && Repeat; ++I)
        Repeat = sameGate(C.gate(Pos + I), C.gate(N + I));
      if (!Repeat)
        break;
      ++R.Params.Layers;
      Pos += LayerLen;
    }
    // Optional trailing measureAll.
    if (Pos < C.size()) {
      for (int Q = 0; Q < N; ++Q, ++Pos) {
        if (Pos >= C.size() || C.gate(Pos).kind() != GateKind::Measure ||
            C.gate(Pos).qubit(0) != Q)
          return fail("trailing gates are not a measure-all");
      }
      R.Params.Measure = true;
    }
    if (Pos != C.size())
      return fail("trailing gates after the final layer");
    R.Formula = sat::CnfFormula(N, std::move(Clauses));
    // Authoritative check: the recovered instance must rebuild the input
    // exactly. Any greedy slip above is caught here.
    Circuit Rebuilt = qaoa::buildQaoaCircuit(R.Formula, R.Params);
    if (Rebuilt.size() != C.size() || !matchAt(C, 0, Rebuilt))
      return fail("rebuilt circuit differs from input");
    return R;
  }

private:
  const Circuit &C;
  int N;
  std::vector<sat::Clause> Clauses;
  double Gamma = 0;
  bool GammaSet = false;
  double Beta = 0;
  bool CompressedSeen = false;
  bool Ladder3Seen = false;
  Status Err;

  Expected<RecoveredQaoa> fail(const std::string &Msg) {
    return Expected<RecoveredQaoa>::error("not a builder-shaped QAOA "
                                          "circuit: " +
                                          Msg);
  }
  bool failParse(const std::string &Msg) {
    Err = Status::error("not a builder-shaped QAOA circuit: " + Msg);
    return false;
  }

  /// Matches the mixer rx(2*beta) sweep over all qubits at \p Pos.
  bool tryMixer(size_t &Pos) {
    if (Pos + N > C.size())
      return false;
    double Theta = 0;
    for (int Q = 0; Q < N; ++Q) {
      const Gate &G = C.gate(Pos + Q);
      if (G.kind() != GateKind::RX || G.qubit(0) != Q)
        return false;
      if (Q == 0)
        Theta = G.param(0);
      else if (G.param(0) != Theta)
        return false;
    }
    Beta = Theta / 2;
    Pos += N;
    return true;
  }

  bool acceptFragment(size_t &Pos, const sat::Clause &Clause, double G,
                      bool Compressed) {
    Circuit Tmp(N);
    if (Compressed)
      qaoa::appendClausePhaseCompressed(Tmp, Clause, G);
    else
      qaoa::appendClausePhaseLadder(Tmp, Clause, G);
    if (!matchAt(C, Pos, Tmp))
      return false;
    if (GammaSet && G != Gamma)
      return false;
    Gamma = G;
    GammaSet = true;
    Clauses.push_back(Clause);
    if (Compressed)
      CompressedSeen = true;
    else if (Clause.size() == 3)
      Ladder3Seen = true;
    Pos += Tmp.size();
    return true;
  }

  static sat::Clause makeClause(const std::vector<int> &Qubits,
                                const std::vector<int> &PositiveOrder) {
    std::vector<sat::Literal> Lits;
    for (int Q : Qubits) {
      bool Positive = false;
      for (int P : PositiveOrder)
        Positive |= (P == Q);
      Lits.push_back(sat::Literal(Positive ? Q + 1 : -(Q + 1)));
    }
    return sat::Clause(std::move(Lits));
  }

  bool parseFragment(size_t &Pos) {
    // Leading polarity conjugation: X on each positive-literal qubit, in
    // clause literal order. At most 3 for a width-3 clause.
    std::vector<int> Xs;
    size_t Q = Pos;
    while (Q < C.size() && C.gate(Q).kind() == GateKind::X && Xs.size() < 3)
      Xs.push_back(C.gate(Q++).qubit(0));
    if (Q >= C.size())
      return failParse("fragment truncated after polarity conjugation");
    const Gate &Head = C.gate(Q);
    if (Head.kind() == GateKind::RZ) {
      // CNOT-ladder form: a run of up to K equal-angle RZ gates leads.
      double Theta = Head.param(0);
      std::vector<int> Run{Head.qubit(0)};
      for (size_t R = Q + 1; R < C.size() && Run.size() < 3; ++R) {
        const Gate &G = C.gate(R);
        if (G.kind() != GateKind::RZ || G.param(0) != Theta)
          break;
        Run.push_back(G.qubit(0));
      }
      // Largest hypothesis first; reconstruct-and-compare arbitrates
      // (e.g. two adjacent unit clauses masquerading as one K=2 run).
      for (size_t K = Run.size(); K >= 1; --K) {
        std::vector<int> Qubits(Run.begin(), Run.begin() + K);
        if (hasDuplicate(Qubits))
          continue;
        double G = K == 1 ? -Theta : K == 2 ? -2 * Theta : -4 * Theta;
        if (acceptFragment(Pos, makeClause(Qubits, Xs), G,
                           /*Compressed=*/false))
          return true;
      }
      return failParse("RZ-led fragment at gate " + std::to_string(Pos) +
                       " matches no clause hypothesis");
    }
    if (Head.kind() == GateKind::H && Q + 2 < C.size() &&
        C.gate(Q + 1).kind() == GateKind::CCZ &&
        C.gate(Q + 2).kind() == GateKind::RX) {
      // Compressed form: h(T); ccz(A,B,T); rx(gamma/2, T); ...
      const Gate &Ccz = C.gate(Q + 1);
      std::vector<int> Qubits{Ccz.qubit(0), Ccz.qubit(1), Ccz.qubit(2)};
      double G = 2 * C.gate(Q + 2).param(0);
      if (!hasDuplicate(Qubits) &&
          acceptFragment(Pos, makeClause(Qubits, Xs), G,
                         /*Compressed=*/true))
        return true;
      return failParse("CCZ-led fragment at gate " + std::to_string(Pos) +
                       " matches no clause hypothesis");
    }
    return failParse("unrecognised fragment head at gate " +
                     std::to_string(Pos));
  }

  static bool hasDuplicate(const std::vector<int> &Qubits) {
    for (size_t I = 0; I < Qubits.size(); ++I)
      for (size_t J = I + 1; J < Qubits.size(); ++J)
        if (Qubits[I] == Qubits[J])
          return true;
    return false;
  }

  bool parseFirstLayer(size_t &Pos) {
    while (true) {
      if (tryMixer(Pos))
        return true;
      if (!parseFragment(Pos))
        return false;
    }
  }
};

} // namespace

Expected<RecoveredQaoa> oq2::recoverQaoa(const Circuit &C) {
  Recovery R(C);
  return R.run();
}
