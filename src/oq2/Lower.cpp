//===- oq2/Lower.cpp - AST to circuit::Circuit lowering -------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "oq2/Lower.h"

#include <cmath>
#include <map>

using namespace weaver;
using namespace weaver::oq2;

namespace {

struct RegInfo {
  long long Offset = 0;
  long long Size = 0;
};

class Lowering {
public:
  Lowering(const Program &Prog, const Oq2Limits &Limits)
      : Prog(Prog), Limits(Limits) {}

  Expected<circuit::Circuit> run(std::string Name) {
    long long TotalQubits = 0;
    for (const RegDecl &R : Prog.Qregs) {
      Qregs[R.Name] = {TotalQubits, R.Size};
      TotalQubits += R.Size;
    }
    for (const RegDecl &R : Prog.Cregs)
      Cregs[R.Name] = {0, R.Size};
    for (const GateDef &D : Prog.Gates)
      Defs[D.Name] = &D;
    Out = circuit::Circuit(static_cast<int>(TotalQubits), std::move(Name));
    for (const Stmt &S : Prog.Body)
      if (!lowerStmt(S))
        return Err;
    return std::move(Out);
  }

private:
  const Program &Prog;
  const Oq2Limits &Limits;
  std::map<std::string, RegInfo> Qregs, Cregs;
  std::map<std::string, const GateDef *> Defs;
  circuit::Circuit Out{0};
  Status Err;

  bool fail(int Line, int Col, const std::string &Msg) {
    Err = Status::error("line " + std::to_string(Line) + ", col " +
                        std::to_string(Col) + ": " + Msg);
    return false;
  }

  bool emit(const circuit::Gate &G, int Line, int Col) {
    if (Out.size() >= Limits.MaxLoweredGates)
      return fail(Line, Col,
                  "lowered circuit exceeds " +
                      std::to_string(Limits.MaxLoweredGates) +
                      " gates (gate-definition expansion bomb?)");
    Out.append(G);
    return true;
  }

  /// Resolves a quantum argument. Whole-register arguments (Index == -1)
  /// return the register; indexed ones are range-checked.
  bool resolveQarg(const Argument &A, RegInfo &Info) {
    auto It = Qregs.find(A.Reg);
    if (It == Qregs.end())
      return fail(A.Line, A.Col,
                  "unknown quantum register '" + A.Reg + "'");
    Info = It->second;
    if (A.Index >= 0) {
      if (A.Index >= Info.Size)
        return fail(A.Line, A.Col,
                    "index " + std::to_string(A.Index) +
                        " out of range for '" + A.Reg + "[" +
                        std::to_string(Info.Size) + "]'");
      Info.Offset += A.Index;
      Info.Size = -1; // marks "single qubit"
    }
    return true;
  }

  // --- parameter expression evaluation -----------------------------------

  bool evalExpr(const Expr &E, const std::map<std::string, double> &Env,
                double &Out) {
    switch (E.NodeKind) {
    case Expr::Kind::Number:
      Out = E.Value;
      return true;
    case Expr::Kind::Pi:
      Out = M_PI;
      return true;
    case Expr::Kind::Param: {
      auto It = Env.find(E.Name);
      if (It == Env.end())
        return fail(E.Line, E.Col, "unknown parameter '" + E.Name + "'");
      Out = It->second;
      return true;
    }
    case Expr::Kind::Unary: {
      double V;
      if (!evalExpr(*E.Lhs, Env, V))
        return false;
      if (E.Name == "-")
        Out = -V;
      else if (E.Name == "sin")
        Out = std::sin(V);
      else if (E.Name == "cos")
        Out = std::cos(V);
      else if (E.Name == "tan")
        Out = std::tan(V);
      else if (E.Name == "exp")
        Out = std::exp(V);
      else if (E.Name == "ln")
        Out = std::log(V);
      else if (E.Name == "sqrt")
        Out = std::sqrt(V);
      else
        return fail(E.Line, E.Col, "unknown function '" + E.Name + "'");
      break;
    }
    case Expr::Kind::Binary: {
      double L, R;
      if (!evalExpr(*E.Lhs, Env, L) || !evalExpr(*E.Rhs, Env, R))
        return false;
      if (E.Name == "+")
        Out = L + R;
      else if (E.Name == "-")
        Out = L - R;
      else if (E.Name == "*")
        Out = L * R;
      else if (E.Name == "/")
        Out = L / R;
      else if (E.Name == "^")
        Out = std::pow(L, R);
      else
        return fail(E.Line, E.Col, "unknown operator '" + E.Name + "'");
      break;
    }
    }
    if (!std::isfinite(Out))
      return fail(E.Line, E.Col,
                  "parameter expression does not evaluate to a finite "
                  "number");
    return true;
  }

  // --- gate application ---------------------------------------------------

  /// Emits one application of gate \p Name on resolved global qubit
  /// indices with evaluated parameter values. Expands user definitions.
  bool apply(const std::string &Name, const std::vector<double> &Params,
             const std::vector<long long> &Qubits, int Line, int Col,
             int Depth) {
    if (Depth > Limits.MaxExpansionDepth)
      return fail(Line, Col, "gate expansion nested deeper than " +
                                 std::to_string(Limits.MaxExpansionDepth));
    for (size_t I = 0; I < Qubits.size(); ++I)
      for (size_t J = I + 1; J < Qubits.size(); ++J)
        if (Qubits[I] == Qubits[J])
          return fail(Line, Col,
                      "duplicate qubit operand q[" +
                          std::to_string(Qubits[I]) + "] in call to '" +
                          Name + "'");
    circuit::GateKind Kind;
    if (nativeKind(Name, Kind)) {
      if (Kind == circuit::GateKind::Measure ||
          Kind == circuit::GateKind::Barrier)
        return fail(Line, Col,
                    "'" + Name + "' cannot be called as a gate");
      if (Params.size() != circuit::gateNumParams(Kind))
        return fail(Line, Col,
                    "gate '" + Name + "' takes " +
                        std::to_string(circuit::gateNumParams(Kind)) +
                        " parameter(s), got " +
                        std::to_string(Params.size()));
      if (Qubits.size() != circuit::gateArity(Kind))
        return fail(Line, Col,
                    "gate '" + Name + "' takes " +
                        std::to_string(circuit::gateArity(Kind)) +
                        " qubit(s), got " + std::to_string(Qubits.size()));
      std::array<int, 3> Q = {0, 0, 0};
      std::array<double, 3> P = {0.0, 0.0, 0.0};
      for (size_t I = 0; I < Qubits.size(); ++I)
        Q[I] = static_cast<int>(Qubits[I]);
      for (size_t I = 0; I < Params.size(); ++I)
        P[I] = Params[I];
      return emit(circuit::Gate::fromStorage(Kind, Q, P), Line, Col);
    }
    auto It = Defs.find(Name);
    if (It == Defs.end())
      return fail(Line, Col, "unknown gate '" + Name + "'");
    const GateDef &Def = *It->second;
    if (Def.Opaque)
      return fail(Line, Col, "cannot lower call to opaque gate '" + Name +
                                 "' (no definition body)");
    if (Params.size() != Def.Params.size())
      return fail(Line, Col,
                  "gate '" + Name + "' takes " +
                      std::to_string(Def.Params.size()) +
                      " parameter(s), got " + std::to_string(Params.size()));
    if (Qubits.size() != Def.Qubits.size())
      return fail(Line, Col,
                  "gate '" + Name + "' takes " +
                      std::to_string(Def.Qubits.size()) + " qubit(s), got " +
                      std::to_string(Qubits.size()));
    std::map<std::string, double> Env;
    for (size_t I = 0; I < Def.Params.size(); ++I)
      Env[Def.Params[I]] = Params[I];
    std::map<std::string, long long> QubitEnv;
    for (size_t I = 0; I < Def.Qubits.size(); ++I)
      QubitEnv[Def.Qubits[I]] = Qubits[I];
    for (const GateCall &Op : Def.Body) {
      if (Op.IsBarrier)
        continue; // barriers inside definitions are scheduling hints only
      std::vector<double> OpParams;
      OpParams.reserve(Op.Params.size());
      for (const ExprPtr &E : Op.Params) {
        double V;
        if (!evalExpr(*E, Env, V))
          return false;
        OpParams.push_back(V);
      }
      std::vector<long long> OpQubits;
      OpQubits.reserve(Op.Args.size());
      for (const Argument &A : Op.Args) {
        auto QIt = QubitEnv.find(A.Reg);
        if (QIt == QubitEnv.end())
          return fail(A.Line, A.Col,
                      "unknown qubit '" + A.Reg + "' in body of '" + Name +
                          "'");
        OpQubits.push_back(QIt->second);
      }
      if (!apply(Op.Name, OpParams, OpQubits, Op.Line, Op.Col, Depth + 1))
        return false;
    }
    return true;
  }

  /// Maps a call-site gate name to a native GateKind, honoring the
  /// OpenQASM 2 primitives U and CX.
  static bool nativeKind(const std::string &Name, circuit::GateKind &Kind) {
    if (Name == "U") {
      Kind = circuit::GateKind::U3;
      return true;
    }
    if (Name == "CX") {
      Kind = circuit::GateKind::CX;
      return true;
    }
    return circuit::parseGateName(Name, Kind);
  }

  // --- statements ---------------------------------------------------------

  bool lowerStmt(const Stmt &S) {
    switch (S.StmtKind) {
    case Stmt::Kind::Barrier: {
      // Validate operands, then emit the IR's global barrier.
      for (const Argument &A : S.Call.Args) {
        RegInfo Info;
        if (!resolveQarg(A, Info))
          return false;
      }
      return emit(circuit::Gate(circuit::GateKind::Barrier, {}), S.Line,
                  S.Col);
    }
    case Stmt::Kind::Measure:
      return lowerMeasure(S);
    case Stmt::Kind::Call:
      return lowerCall(S.Call);
    }
    return fail(S.Line, S.Col, "unhandled statement kind");
  }

  bool lowerMeasure(const Stmt &S) {
    RegInfo Src;
    if (!resolveQarg(S.MeasureSrc, Src))
      return false;
    auto CIt = Cregs.find(S.MeasureDst.Reg);
    if (CIt == Cregs.end())
      return fail(S.MeasureDst.Line, S.MeasureDst.Col,
                  "unknown classical register '" + S.MeasureDst.Reg + "'");
    long long CregSize = CIt->second.Size;
    bool SrcWhole = Src.Size >= 0;
    bool DstWhole = S.MeasureDst.Index < 0;
    if (!DstWhole && S.MeasureDst.Index >= CregSize)
      return fail(S.MeasureDst.Line, S.MeasureDst.Col,
                  "index " + std::to_string(S.MeasureDst.Index) +
                      " out of range for '" + S.MeasureDst.Reg + "[" +
                      std::to_string(CregSize) + "]'");
    if (SrcWhole != DstWhole)
      return fail(S.Line, S.Col,
                  "measure operands must both be registers or both be "
                  "single bits");
    if (SrcWhole && Src.Size != CregSize)
      return fail(S.Line, S.Col,
                  "measure register sizes differ (" +
                      std::to_string(Src.Size) + " vs " +
                      std::to_string(CregSize) + ")");
    long long N = SrcWhole ? Src.Size : 1;
    // The circuit IR keeps no classical wires; the creg operand is
    // validated above and then dropped.
    for (long long I = 0; I < N; ++I) {
      circuit::Gate G(circuit::GateKind::Measure,
                      {static_cast<int>(Src.Offset + I)});
      if (!emit(G, S.Line, S.Col))
        return false;
    }
    return true;
  }

  bool lowerCall(const GateCall &Call) {
    std::vector<double> Params;
    Params.reserve(Call.Params.size());
    std::map<std::string, double> EmptyEnv;
    for (const ExprPtr &E : Call.Params) {
      double V;
      if (!evalExpr(*E, EmptyEnv, V))
        return false;
      Params.push_back(V);
    }
    std::vector<RegInfo> Args;
    Args.reserve(Call.Args.size());
    long long Broadcast = -1;
    for (const Argument &A : Call.Args) {
      RegInfo Info;
      if (!resolveQarg(A, Info))
        return false;
      if (Info.Size >= 0) { // whole register
        if (Broadcast >= 0 && Broadcast != Info.Size)
          return fail(A.Line, A.Col,
                      "register size mismatch in broadcast call (" +
                          std::to_string(Broadcast) + " vs " +
                          std::to_string(Info.Size) + ")");
        Broadcast = Info.Size;
      }
      Args.push_back(Info);
    }
    long long N = Broadcast >= 0 ? Broadcast : 1;
    for (long long I = 0; I < N; ++I) {
      std::vector<long long> Qubits;
      Qubits.reserve(Args.size());
      for (const RegInfo &Info : Args)
        Qubits.push_back(Info.Size >= 0 ? Info.Offset + I : Info.Offset);
      if (!apply(Call.Name, Params, Qubits, Call.Line, Call.Col,
                 /*Depth=*/0))
        return false;
    }
    return true;
  }
};

} // namespace

Expected<circuit::Circuit> oq2::lowerProgram(const Program &Prog,
                                             const Oq2Limits &Limits,
                                             std::string Name) {
  Lowering L(Prog, Limits);
  return L.run(std::move(Name));
}
