//===- oq2/Lexer.h - OpenQASM 2 tokenizer ----------------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the OpenQASM 2 front end (src/oq2/). Unlike the wQASM
/// lexer (src/qasm/), this one faces fully untrusted input — benchmark
/// files uploaded to the networked compile service — so every token
/// carries a line:column position for diagnostics, numeric literals are
/// parsed through the bounds-checked support routines (overflow and
/// trailing-garbage shapes are lexer errors, never silently-truncated
/// values), and NUL bytes or over-long tokens reject immediately.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_OQ2_LEXER_H
#define WEAVER_OQ2_LEXER_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace weaver {
namespace oq2 {

/// Token categories of the OpenQASM 2 grammar subset.
enum class TokenKind {
  Identifier, ///< gate / register / parameter names, keywords
  Integer,    ///< non-negative integer literal (register sizes, indices)
  Real,       ///< floating literal (angles)
  String,     ///< double-quoted include path
  Punct,      ///< one of ; , ( ) [ ] { } + - * / ^ and the digraphs -> ==
  EndOfFile,
};

/// One token with its 1-based source position.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;
  double RealValue = 0;      ///< meaningful for Real and Integer
  long long IntValue = 0;    ///< meaningful for Integer
  int Line = 1;
  int Col = 1;

  bool is(TokenKind K) const { return Kind == K; }
  bool isPunct(std::string_view P) const {
    return Kind == TokenKind::Punct && Text == P;
  }
  bool isIdent(std::string_view S) const {
    return Kind == TokenKind::Identifier && Text == S;
  }
};

/// Tokenizes \p Source. On failure returns a Status whose message is
/// positioned ("line L, col C: ..."); the caller prepends the file name.
/// Hostile shapes — NUL bytes, unterminated strings/comments, malformed
/// or overflowing numerals, tokens longer than 256 bytes — are errors.
Expected<std::vector<Token>> tokenizeOq2(std::string_view Source);

} // namespace oq2
} // namespace weaver

#endif // WEAVER_OQ2_LEXER_H
