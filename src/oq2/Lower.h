//===- oq2/Lower.h - AST to circuit::Circuit lowering ----------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed OpenQASM 2 program to the flat circuit IR. Quantum
/// registers are laid out contiguously in declaration order; whole-register
/// operands broadcast elementwise (all whole registers in one statement
/// must agree in size); user gate definitions are expanded recursively
/// down to native GateKinds with call-site parameter values substituted
/// into the body expressions. Expansion is bounded by
/// Oq2Limits::MaxLoweredGates and MaxExpansionDepth so a hostile chain of
/// definitions cannot blow up memory. Every rejection carries the source
/// position of the offending statement.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_OQ2_LOWER_H
#define WEAVER_OQ2_LOWER_H

#include "circuit/Circuit.h"
#include "oq2/Parser.h"

namespace weaver {
namespace oq2 {

/// Lowers \p Prog into a circuit named \p Name. Fails with a positioned
/// diagnostic on semantic errors (unknown registers, out-of-range
/// indices, operand/parameter arity mismatches, duplicate operands,
/// non-finite parameter values, opaque-gate calls, expansion blowup).
Expected<circuit::Circuit> lowerProgram(const Program &Prog,
                                        const Oq2Limits &Limits = Oq2Limits(),
                                        std::string Name = "");

} // namespace oq2
} // namespace weaver

#endif // WEAVER_OQ2_LOWER_H
