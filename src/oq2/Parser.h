//===- oq2/Parser.h - OpenQASM 2 recursive-descent parser ------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser from the oq2 token stream to the small AST of
/// Ast.h. The parser enforces the resource limits of \c Oq2Limits while
/// reading: register sizes, statement counts, definition counts, and
/// expression nesting are all bounded up front, so a hostile file can
/// never make the front end allocate unbounded memory before semantic
/// checks run. Gate bodies may only reference native gates or gates
/// defined earlier in the file, which rules out recursive definitions
/// structurally. All diagnostics carry line:column positions.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_OQ2_PARSER_H
#define WEAVER_OQ2_PARSER_H

#include "oq2/Ast.h"
#include "support/Status.h"

#include <string_view>

namespace weaver {
namespace oq2 {

/// Hard ceilings the front end enforces on untrusted input. The defaults
/// accommodate every published benchmark suite with wide margin while
/// keeping the worst-case allocation of a hostile file in the tens of
/// megabytes.
struct Oq2Limits {
  size_t MaxSourceBytes = 8u << 20;   ///< input file size
  long long MaxQubits = 4096;         ///< total across all qregs
  long long MaxCregBits = 1 << 20;    ///< total classical bits
  size_t MaxStatements = 1u << 20;    ///< top-level statements
  size_t MaxGateDefs = 4096;          ///< gate definitions
  size_t MaxGateBodyOps = 1u << 16;   ///< ops per definition body
  size_t MaxGateFormals = 64;         ///< formal qubits per definition
  size_t MaxGateParams = 16;          ///< formal parameters per definition
  int MaxExprDepth = 64;              ///< parameter expression nesting
  size_t MaxLoweredGates = 4u << 20;  ///< expansion bomb guard (lowering)
  int MaxExpansionDepth = 128;        ///< nested definition expansion
};

/// Parses \p Source into a Program. `include "qelib1.inc";` splices in
/// the built-in gate library (oq2/Qelib.h); any other include path is an
/// error. Failure messages are positioned ("line L, col C: ...").
Expected<Program> parseOq2Program(std::string_view Source,
                                  const Oq2Limits &Limits = Oq2Limits());

/// Returns true if \p Name resolves to a native circuit::GateKind the
/// lowering emits directly (including the OpenQASM 2 primitives "U" and
/// "CX"), without consulting gate definitions.
bool isNativeGateName(std::string_view Name);

} // namespace oq2
} // namespace weaver

#endif // WEAVER_OQ2_PARSER_H
