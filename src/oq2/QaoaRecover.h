//===- oq2/QaoaRecover.h - QAOA structure recovery -------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recovers the MAX-3SAT formula and QAOA hyper-parameters from a flat
/// circuit that was produced by qaoa::buildQaoaCircuit — including one
/// that took a detour through OpenQASM 2 text. The Backend registry
/// compiles (CnfFormula, QaoaParams), not circuits, so this is the bridge
/// that lets an ingested .qasm file reach every backend unchanged.
///
/// The recovery is reconstruct-and-compare: clause fragments are
/// hypothesised from the gate stream (polarity X-conjugation, the
/// equal-angle RZ run of the CNOT-ladder form, or the H/CCZ head of the
/// compressed form), each hypothesis is re-emitted through the builder
/// and compared gate-for-gate, and the final (Formula, Params) must
/// rebuild the input circuit exactly. Bit-exact angle recovery works
/// because builder fragment angles are power-of-two multiples of gamma
/// (-g/4, -g/2, g/2, ...) — exponent shifts are exact in IEEE doubles,
/// the same property the PassCache angle patching relies on.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_OQ2_QAOARECOVER_H
#define WEAVER_OQ2_QAOARECOVER_H

#include "circuit/Circuit.h"
#include "qaoa/Builder.h"
#include "sat/Cnf.h"
#include "support/Status.h"

namespace weaver {
namespace oq2 {

/// A recovered QAOA instance: buildQaoaCircuit(Formula, Params)
/// reproduces the input circuit gate-for-gate.
struct RecoveredQaoa {
  sat::CnfFormula Formula;
  qaoa::QaoaParams Params;
};

/// Attempts the recovery. Failure is the normal outcome for circuits that
/// are not builder-shaped QAOA; the message says where the match broke
/// so callers can decide between the formula path and the
/// arbitrary-circuit (superconducting) fallback.
Expected<RecoveredQaoa> recoverQaoa(const circuit::Circuit &C);

} // namespace oq2
} // namespace weaver

#endif // WEAVER_OQ2_QAOARECOVER_H
