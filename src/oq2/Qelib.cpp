//===- oq2/Qelib.cpp - Built-in qelib1.inc gate library -------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "oq2/Qelib.h"

using namespace weaver;

namespace {

/// Definition bodies follow the standard qelib1.inc decompositions; u1 is
/// phase-exact U(0,0,lambda), not rz, so controlled constructions built
/// on it (cu1, crz, cu3) keep their textbook unitaries.
constexpr std::string_view QelibText = R"qelib(
// weaver-embedded qelib1.inc (native-first subset)
gate u2(phi,lambda) q { u3(pi/2,phi,lambda) q; }
gate u1(lambda) q { u3(0,0,lambda) q; }
gate u0(gamma) q { id q; }
gate sx a { sdg a; h a; sdg a; }
gate sxdg a { s a; h a; s a; }
gate cy a,b { sdg b; cx a,b; s b; }
gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b; t b; h b; s b; x b; s a; }
gate crz(lambda) a,b { u1(lambda/2) b; cx a,b; u1(-lambda/2) b; cx a,b; }
gate cu1(lambda) a,b { u1(lambda/2) a; cx a,b; u1(-lambda/2) b; cx a,b; u1(lambda/2) b; }
gate cu3(theta,phi,lambda) c,t { u1((lambda+phi)/2) c; u1((lambda-phi)/2) t; cx c,t; u3(-theta/2,0,-(phi+lambda)/2) t; cx c,t; u3(theta/2,phi,0) t; }
gate cswap a,b,c { cx c,b; ccx a,b,c; cx c,b; }
gate rxx(theta) a,b { u3(pi/2,theta,0) a; h b; cx a,b; u1(-theta) b; cx a,b; h b; u2(-pi,pi-theta) a; }
)qelib";

} // namespace

std::string_view oq2::qelibSource() { return QelibText; }
