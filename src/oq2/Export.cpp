//===- oq2/Export.cpp - Circuit to OpenQASM 2 text export -----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "oq2/Export.h"

#include "support/StringUtils.h"

using namespace weaver;
using namespace weaver::circuit;

std::string oq2::printOpenQasm2(const Circuit &C) {
  std::string Out;
  Out += "OPENQASM 2.0;\n";
  Out += "include \"qelib1.inc\";\n";
  Out += "qreg q[" + std::to_string(C.numQubits()) + "];\n";
  if (C.count(GateKind::Measure) > 0)
    Out += "creg c[" + std::to_string(C.numQubits()) + "];\n";
  for (const Gate &G : C) {
    if (G.kind() == GateKind::Barrier) {
      Out += "barrier q;\n";
      continue;
    }
    if (G.kind() == GateKind::Measure) {
      std::string Q = std::to_string(G.qubit(0));
      Out += "measure q[" + Q + "] -> c[" + Q + "];\n";
      continue;
    }
    Out += gateName(G.kind());
    if (G.numParams() > 0) {
      Out += "(";
      for (unsigned I = 0, E = G.numParams(); I < E; ++I) {
        if (I)
          Out += ",";
        Out += formatDouble(G.param(I));
      }
      Out += ")";
    }
    for (unsigned I = 0, E = G.numQubits(); I < E; ++I) {
      Out += I ? "," : " ";
      Out += "q[" + std::to_string(G.qubit(I)) + "]";
    }
    Out += ";\n";
  }
  return Out;
}
