//===- oq2/Lexer.cpp - OpenQASM 2 tokenizer -------------------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "oq2/Lexer.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace weaver;
using namespace weaver::oq2;

namespace {

/// Longest token the lexer will materialize. Identifiers and numerals in
/// real programs are tens of bytes; a longer run is hostile input and
/// bounding it caps per-token allocation.
constexpr size_t MaxTokenBytes = 256;

std::string posMsg(int Line, int Col, const std::string &Msg) {
  return "line " + std::to_string(Line) + ", col " + std::to_string(Col) +
         ": " + Msg;
}

} // namespace

Expected<std::vector<Token>>
oq2::tokenizeOq2(std::string_view Source) {
  using Result = Expected<std::vector<Token>>;
  std::vector<Token> Tokens;
  int Line = 1, Col = 1;
  size_t I = 0, N = Source.size();

  auto Advance = [&](size_t Count = 1) {
    for (size_t K = 0; K < Count && I < N; ++K, ++I) {
      if (Source[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
  };
  auto Push = [&](TokenKind Kind, std::string Text, int TokLine, int TokCol) {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Line = TokLine;
    T.Col = TokCol;
    Tokens.push_back(std::move(T));
  };

  while (I < N) {
    char C = Source[I];
    int TokLine = Line, TokCol = Col;
    if (C == '\0')
      return Result::error(posMsg(Line, Col, "NUL byte in input"));
    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance();
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        Advance();
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '*') {
      Advance(2);
      bool Closed = false;
      while (I < N) {
        if (Source[I] == '\0')
          return Result::error(posMsg(Line, Col, "NUL byte in input"));
        if (Source[I] == '*' && I + 1 < N && Source[I + 1] == '/') {
          Advance(2);
          Closed = true;
          break;
        }
        Advance();
      }
      if (!Closed)
        return Result::error(
            posMsg(TokLine, TokCol, "unterminated block comment"));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        Advance();
      if (I - Start > MaxTokenBytes)
        return Result::error(posMsg(TokLine, TokCol, "identifier too long"));
      Push(TokenKind::Identifier,
           std::string(Source.substr(Start, I - Start)), TokLine, TokCol);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && I + 1 < N &&
         std::isdigit(static_cast<unsigned char>(Source[I + 1])))) {
      // Scan the longest number-ish run, then validate it with the
      // bounds-checked parsers: "1.2.3", "1e+", and overflow shapes are
      // lexer errors, never prefix-truncated values.
      size_t Start = I;
      while (I < N && (std::isdigit(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '.' || Source[I] == 'e' ||
                       Source[I] == 'E' ||
                       ((Source[I] == '+' || Source[I] == '-') && I > Start &&
                        (Source[I - 1] == 'e' || Source[I - 1] == 'E'))))
        Advance();
      std::string Text(Source.substr(Start, I - Start));
      if (Text.size() > MaxTokenBytes)
        return Result::error(
            posMsg(TokLine, TokCol, "numeric literal too long"));
      bool IsInteger =
          Text.find_first_not_of("0123456789") == std::string::npos;
      Token T;
      T.Text = Text;
      T.Line = TokLine;
      T.Col = TokCol;
      if (IsInteger) {
        Expected<long long> V = parseInt(Text, 0, (1LL << 62));
        if (!V)
          return Result::error(posMsg(
              TokLine, TokCol, "invalid integer literal '" + Text + "'"));
        T.Kind = TokenKind::Integer;
        T.IntValue = *V;
        T.RealValue = static_cast<double>(*V);
      } else {
        Expected<double> V = parseFiniteDouble(Text);
        if (!V)
          return Result::error(posMsg(
              TokLine, TokCol, "invalid numeric literal '" + Text + "'"));
        T.Kind = TokenKind::Real;
        T.RealValue = *V;
      }
      Tokens.push_back(std::move(T));
      continue;
    }
    if (C == '"') {
      Advance();
      size_t Start = I;
      while (I < N && Source[I] != '"' && Source[I] != '\n' &&
             Source[I] != '\0')
        Advance();
      if (I >= N || Source[I] != '"')
        return Result::error(posMsg(TokLine, TokCol, "unterminated string"));
      if (I - Start > MaxTokenBytes)
        return Result::error(posMsg(TokLine, TokCol, "string too long"));
      Push(TokenKind::String, std::string(Source.substr(Start, I - Start)),
           TokLine, TokCol);
      Advance();
      continue;
    }
    if (C == '-' && I + 1 < N && Source[I + 1] == '>') {
      Push(TokenKind::Punct, "->", TokLine, TokCol);
      Advance(2);
      continue;
    }
    if (C == '=' && I + 1 < N && Source[I + 1] == '=') {
      Push(TokenKind::Punct, "==", TokLine, TokCol);
      Advance(2);
      continue;
    }
    if (std::string_view(";,()[]{}+-*/^").find(C) != std::string_view::npos) {
      Push(TokenKind::Punct, std::string(1, C), TokLine, TokCol);
      Advance();
      continue;
    }
    return Result::error(posMsg(
        Line, Col,
        std::isprint(static_cast<unsigned char>(C))
            ? "unexpected character '" + std::string(1, C) + "'"
            : "unexpected byte 0x" +
                  formatf("%02x", static_cast<unsigned char>(C))));
  }
  Token Eof;
  Eof.Line = Line;
  Eof.Col = Col;
  Tokens.push_back(std::move(Eof));
  return Tokens;
}
