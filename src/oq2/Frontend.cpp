//===- oq2/Frontend.cpp - OpenQASM 2 front-end entry points ---------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "oq2/Frontend.h"

#include <fstream>

using namespace weaver;
using namespace weaver::oq2;

Expected<circuit::Circuit> oq2::parseOq2(std::string_view Source,
                                         std::string Name,
                                         const Oq2Limits &Limits) {
  Expected<Program> Prog = parseOq2Program(Source, Limits);
  if (!Prog)
    return Expected<circuit::Circuit>(Prog.status());
  return lowerProgram(*Prog, Limits, std::move(Name));
}

Expected<circuit::Circuit> oq2::parseOq2File(const std::string &Path,
                                             const Oq2Limits &Limits) {
  using Result = Expected<circuit::Circuit>;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Result::error(Path + ": cannot open file");
  std::string Source;
  // Read at most one byte past the cap so oversize files reject without
  // ever being fully materialized.
  Source.resize(Limits.MaxSourceBytes + 1);
  In.read(Source.data(), static_cast<std::streamsize>(Source.size()));
  Source.resize(static_cast<size_t>(In.gcount()));
  if (In.bad())
    return Result::error(Path + ": read error");
  if (Source.size() > Limits.MaxSourceBytes)
    return Result::error(Path + ": file exceeds " +
                         std::to_string(Limits.MaxSourceBytes) + " bytes");
  std::string Name = Path;
  size_t Slash = Name.find_last_of('/');
  if (Slash != std::string::npos)
    Name.erase(0, Slash + 1);
  Expected<circuit::Circuit> C = parseOq2(Source, std::move(Name), Limits);
  if (!C)
    return Result::error(Path + ": " + C.message());
  return C;
}
