//===- oq2/Export.h - Circuit to OpenQASM 2 text export --------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints a \c circuit::Circuit as an OpenQASM 2 program the src/oq2
/// front end re-ingests losslessly: parameters are rendered with 17
/// significant digits (exact double round-trip), every gate kind maps to
/// its native mnemonic, and measurements target a creg declared only
/// when needed. `parseOq2(printOpenQasm2(C))` reproduces C gate-for-gate
/// — the property the differential tests pin.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_OQ2_EXPORT_H
#define WEAVER_OQ2_EXPORT_H

#include "circuit/Circuit.h"

#include <string>

namespace weaver {
namespace oq2 {

/// Renders \p C as a complete OpenQASM 2 program over one qreg `q` (and
/// one creg `c` sized like the register when the circuit measures).
std::string printOpenQasm2(const circuit::Circuit &C);

} // namespace oq2
} // namespace weaver

#endif // WEAVER_OQ2_EXPORT_H
