//===- oq2/Qelib.h - Built-in qelib1.inc gate library ----------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The embedded `qelib1.inc` the parser splices in when a program writes
/// `include "qelib1.inc";` — no filesystem access is ever performed for
/// includes, so an untrusted file cannot read paths. The library is
/// native-first: gate names the circuit IR models directly (h, x, rz,
/// cx, cz, ccx, ccz, swap, rzz, u3, ...) are NOT defined here — the
/// lowering emits them as native GateKinds, which keeps oq2-ingested
/// circuits gate-for-gate identical to programmatically built ones. Only
/// the qelib gates outside the native set (u1, u2, cy, ch, crz, cu1,
/// cu3, sx, cswap, rxx, ...) carry definition bodies, written over the
/// native set following the standard qelib1.inc decompositions.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_OQ2_QELIB_H
#define WEAVER_OQ2_QELIB_H

#include <string_view>

namespace weaver {
namespace oq2 {

/// Returns the embedded qelib1.inc source text (parsed by the oq2 parser
/// itself when included).
std::string_view qelibSource();

} // namespace oq2
} // namespace weaver

#endif // WEAVER_OQ2_QELIB_H
