//===- oq2/Ast.h - OpenQASM 2 abstract syntax tree -------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small AST the OpenQASM 2 parser produces: register declarations,
/// gate definitions (parameterized macro bodies), and a flat statement
/// list of gate calls / measurements / barriers. Parameter expressions
/// are kept as trees and evaluated numerically at lowering time, when
/// formal gate parameters are bound to call-site values.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_OQ2_AST_H
#define WEAVER_OQ2_AST_H

#include <memory>
#include <string>
#include <vector>

namespace weaver {
namespace oq2 {

/// A parameter expression node. Binary/unary arithmetic over literals,
/// pi, formal gate parameters, and the unary functions of the OpenQASM 2
/// spec (sin, cos, tan, exp, ln, sqrt).
struct Expr {
  enum class Kind {
    Number, ///< literal; Value holds it
    Pi,     ///< the constant pi
    Param,  ///< formal gate parameter; Name holds it
    Unary,  ///< -x, or Func(x) with Name in {sin,cos,tan,exp,ln,sqrt}
    Binary, ///< Lhs Op Rhs with Op in + - * / ^
  };
  Kind NodeKind = Kind::Number;
  double Value = 0;
  std::string Name; ///< Param name, unary function name, or binary op
  std::unique_ptr<Expr> Lhs, Rhs;
  int Line = 0, Col = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/// A quantum or classical argument: a whole register ("q") or one
/// element ("q[3]", Index >= 0).
struct Argument {
  std::string Reg;
  long long Index = -1; ///< -1: the whole register
  int Line = 0, Col = 0;
};

/// One gate application inside the main body or a gate definition body.
/// Inside definition bodies the arguments are formal qubit names
/// (Index == -1) and parameter expressions may reference formal params.
struct GateCall {
  std::string Name;
  std::vector<ExprPtr> Params;
  std::vector<Argument> Args;
  bool IsBarrier = false; ///< "barrier" inside a gate body / main body
  int Line = 0, Col = 0;
};

/// A register declaration (qreg / creg).
struct RegDecl {
  std::string Name;
  long long Size = 0;
  int Line = 0, Col = 0;
};

/// A user (or qelib) gate definition: gate Name(Params) Qubits { Body }.
/// Bodies may only call natively-known gates or previously-defined ones,
/// which rules out recursion structurally.
struct GateDef {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<std::string> Qubits;
  std::vector<GateCall> Body;
  bool Opaque = false; ///< declared opaque — callable but not expandable
  int Line = 0, Col = 0;
};

/// One top-level statement.
struct Stmt {
  enum class Kind { Call, Measure, Barrier };
  Kind StmtKind = Kind::Call;
  GateCall Call;                ///< Call and Barrier
  Argument MeasureSrc, MeasureDst; ///< Measure
  int Line = 0, Col = 0;
};

/// A parsed OpenQASM 2 program.
struct Program {
  std::vector<RegDecl> Qregs, Cregs;
  std::vector<GateDef> Gates; ///< in definition order
  std::vector<Stmt> Body;
  bool IncludedQelib = false;
};

} // namespace oq2
} // namespace weaver

#endif // WEAVER_OQ2_AST_H
