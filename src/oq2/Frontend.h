//===- oq2/Frontend.h - OpenQASM 2 front-end entry points ------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-call surface of the OpenQASM 2 front end: source text (or a
/// file) in, a lowered \c circuit::Circuit out. Everything in between —
/// tokenizing, parsing, the built-in qelib1.inc, gate-definition
/// expansion — is internal to src/oq2/. All failures are positioned
/// diagnostics; the file variant prefixes them with the path.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_OQ2_FRONTEND_H
#define WEAVER_OQ2_FRONTEND_H

#include "oq2/Lower.h"

#include <string>

namespace weaver {
namespace oq2 {

/// Parses and lowers OpenQASM 2 source text. \p Name becomes the circuit
/// name (defaults to "oq2").
Expected<circuit::Circuit> parseOq2(std::string_view Source,
                                    std::string Name = "oq2",
                                    const Oq2Limits &Limits = Oq2Limits());

/// Reads \p Path (bounded by Limits.MaxSourceBytes — larger files are
/// rejected without being slurped) and parses it. Diagnostics are
/// prefixed "<path>: "; the circuit is named after the file.
Expected<circuit::Circuit> parseOq2File(const std::string &Path,
                                        const Oq2Limits &Limits = Oq2Limits());

} // namespace oq2
} // namespace weaver

#endif // WEAVER_OQ2_FRONTEND_H
