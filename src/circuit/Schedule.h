//===- circuit/Schedule.h - ASAP circuit scheduling ------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// As-soon-as-possible scheduling with per-gate-class durations. The paper
/// computes execution time by summing the durations of pulses and shuttles
/// (§8.3); for gate-model backends (superconducting) the analogue is the
/// scheduled critical-path duration produced here.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CIRCUIT_SCHEDULE_H
#define WEAVER_CIRCUIT_SCHEDULE_H

#include "circuit/Circuit.h"

#include <vector>

namespace weaver {
namespace circuit {

/// Durations in seconds per gate class.
struct GateDurations {
  double OneQubit = 0;
  double TwoQubit = 0;
  double ThreeQubit = 0;
  double Measure = 0;
};

/// Result of scheduling: one start time per gate and the total duration.
struct Schedule {
  std::vector<double> StartTimes;
  double TotalDuration = 0;
};

/// Returns the duration \p D assigns to gate \p G (0 for barriers).
double gateDuration(const Gate &G, const GateDurations &D);

/// ASAP-schedules \p C: each gate starts when all of its qubits are free;
/// barriers synchronise all qubits.
Schedule scheduleAsap(const Circuit &C, const GateDurations &D);

} // namespace circuit
} // namespace weaver

#endif // WEAVER_CIRCUIT_SCHEDULE_H
