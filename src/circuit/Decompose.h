//===- circuit/Decompose.h - Gate decomposition & basis synthesis -*- C++ -*-//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textbook gate decompositions and the native-gate-synthesis pass of the
/// paper's hardware-agnostic stage (§3/§7): every circuit is lowered to the
/// basis B = {U3, CZ}, optionally keeping CCZ native for the FPQA path
/// (Rydberg pulses implement CZ and CCZ directly; §2.3, §5.4).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CIRCUIT_DECOMPOSE_H
#define WEAVER_CIRCUIT_DECOMPOSE_H

#include "circuit/Circuit.h"

namespace weaver {
namespace circuit {

/// Options for \c translateToBasis.
struct BasisOptions {
  /// Keep CCZ as a native 3-qubit gate (FPQA path). When false, CCZ/CCX are
  /// decomposed into the standard 6-CX network (superconducting path).
  bool KeepCcz = false;
  /// Drop identity gates instead of emitting U3(0,0,0).
  bool DropIdentities = true;
};

/// Lowers every gate of \p C to the native set {U3, CZ} (plus CCZ when
/// \p Options.KeepCcz). Barriers and measurements pass through unchanged.
Circuit translateToBasis(const Circuit &C, const BasisOptions &Options = {});

/// Returns the U3 parameters (theta, phi, lambda) equivalent (up to global
/// phase) to the 1-qubit gate \p G. \p G must be a 1-qubit non-measure gate.
void u3ParamsFor(const Gate &G, double &Theta, double &Phi, double &Lambda);

/// Appends the standard 6-CX + T-layer decomposition of CCZ(a, b, c) to
/// \p Out (Nielsen & Chuang Fig. 4.9 with the outer Hadamards folded away).
void appendCczAsTwoQubit(Circuit &Out, int A, int B, int C);

/// Appends CX(control, target) as H(target) CZ H(target).
void appendCxAsCz(Circuit &Out, int Control, int Target);

/// Appends SWAP(a, b) as the 3-CX network the paper cites for
/// superconducting routing overhead (§5.3).
void appendSwapAsCx(Circuit &Out, int A, int B);

} // namespace circuit
} // namespace weaver

#endif // WEAVER_CIRCUIT_DECOMPOSE_H
