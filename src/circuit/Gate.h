//===- circuit/Gate.h - Quantum gate representation ------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gate kinds and the fixed-size \c Gate record that circuits are made of.
///
/// The gate set covers the paper's needs: the hardware-agnostic basis the
/// QAOA builder emits (RX, RZ, X, Y, Z, H, ID, CZ — §A.4.1), the native set
/// B = {U3, CZ} used for native gate synthesis (§7), the FPQA-native
/// multi-qubit gates (CZ, CCZ via Rydberg pulses), and the CX/CCX forms used
/// by the textbook decompositions.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CIRCUIT_GATE_H
#define WEAVER_CIRCUIT_GATE_H

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>

namespace weaver {
namespace circuit {

/// Enumerates every gate the IR can hold.
enum class GateKind : uint8_t {
  I,       ///< identity
  X,       ///< Pauli-X
  Y,       ///< Pauli-Y
  Z,       ///< Pauli-Z
  H,       ///< Hadamard
  S,       ///< sqrt(Z)
  Sdg,     ///< S dagger
  T,       ///< fourth root of Z
  Tdg,     ///< T dagger
  RX,      ///< exp(-i θ X / 2)
  RY,      ///< exp(-i θ Y / 2)
  RZ,      ///< exp(-i θ Z / 2)
  U3,      ///< generic 1-qubit rotation U3(θ, φ, λ) in Qiskit convention
  CX,      ///< controlled-X
  CZ,      ///< controlled-Z (FPQA-native via Rydberg pulse)
  SWAP,    ///< swap
  RZZ,     ///< exp(-i θ Z⊗Z / 2)
  CCX,     ///< Toffoli
  CCZ,     ///< doubly-controlled Z (FPQA-native via 3-atom Rydberg pulse)
  Barrier, ///< scheduling barrier over all qubits
  Measure, ///< computational-basis measurement
};

/// Number of distinct GateKind values (for histogram arrays).
inline constexpr unsigned NumGateKinds =
    static_cast<unsigned>(GateKind::Measure) + 1;

/// Returns the number of qubit operands of \p Kind (0 for Barrier).
unsigned gateArity(GateKind Kind);

/// Returns the number of angle parameters of \p Kind.
unsigned gateNumParams(GateKind Kind);

/// Returns the lowercase OpenQASM mnemonic (e.g. "cz", "u3", "ccz").
std::string_view gateName(GateKind Kind);

/// Parses an OpenQASM mnemonic; returns false if unknown. "u" parses as U3
/// and "id" as I, matching OpenQASM 3 aliases.
bool parseGateName(std::string_view Name, GateKind &Kind);

/// One gate application: a kind, up to three qubit operands, and up to three
/// angle parameters. Kept trivially copyable; circuits are flat vectors of
/// these.
class Gate {
public:
  Gate() = default;

  /// Builds a gate and asserts the operand/parameter counts match the kind.
  Gate(GateKind Kind, std::initializer_list<int> Qubits,
       std::initializer_list<double> Params = {})
      : Kind(Kind) {
    assert(Qubits.size() == gateArity(Kind) && "wrong qubit operand count");
    assert(Params.size() == gateNumParams(Kind) && "wrong parameter count");
    unsigned I = 0;
    for (int Q : Qubits)
      QubitStorage[I++] = Q;
    I = 0;
    for (double P : Params)
      ParamStorage[I++] = P;
  }

  /// Rebuilds a gate from its raw storage arrays (binary deserialization;
  /// see support/BinaryIO.h). Slots beyond the kind's arity/parameter
  /// count must hold the default 0 so the result is indistinguishable
  /// from a normally constructed gate.
  static Gate fromStorage(GateKind Kind, const std::array<int, 3> &Qubits,
                          const std::array<double, 3> &Params) {
    Gate G;
    G.Kind = Kind;
    G.QubitStorage = Qubits;
    G.ParamStorage = Params;
    return G;
  }

  GateKind kind() const { return Kind; }
  unsigned numQubits() const { return gateArity(Kind); }
  unsigned numParams() const { return gateNumParams(Kind); }

  /// Returns the \p I-th qubit operand.
  int qubit(unsigned I) const {
    assert(I < numQubits() && "qubit operand index out of range");
    return QubitStorage[I];
  }

  /// Returns the \p I-th angle parameter.
  double param(unsigned I) const {
    assert(I < numParams() && "parameter index out of range");
    return ParamStorage[I];
  }

  /// Overwrites the \p I-th angle parameter (program-template angle
  /// substitution; see core::pipeline::AngleSlot).
  void setParam(unsigned I, double Value) {
    assert(I < numParams() && "parameter index out of range");
    ParamStorage[I] = Value;
  }

  /// Returns true if the gate acts on qubit \p Q.
  bool actsOn(int Q) const {
    for (unsigned I = 0, E = numQubits(); I < E; ++I)
      if (QubitStorage[I] == Q)
        return true;
    return false;
  }

  /// Returns true if this gate and \p Other touch a common qubit (Barrier
  /// overlaps everything).
  bool overlaps(const Gate &Other) const {
    if (Kind == GateKind::Barrier || Other.Kind == GateKind::Barrier)
      return true;
    for (unsigned I = 0, E = numQubits(); I < E; ++I)
      if (Other.actsOn(QubitStorage[I]))
        return true;
    return false;
  }

  /// Renders "cz q[0], q[1]"-style text for diagnostics.
  std::string str() const;

private:
  GateKind Kind = GateKind::I;
  std::array<int, 3> QubitStorage = {0, 0, 0};
  std::array<double, 3> ParamStorage = {0.0, 0.0, 0.0};
};

} // namespace circuit
} // namespace weaver

#endif // WEAVER_CIRCUIT_GATE_H
