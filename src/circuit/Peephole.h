//===- circuit/Peephole.h - Local circuit simplification -------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cheap structural peephole rules applied before backend lowering:
///   * adjacent self-inverse pairs cancel (H-H, X-X, CZ-CZ, CX-CX, ...),
///   * adjacent rotations about the same axis merge (RZ+RZ, RX+RX, ...),
///   * zero-angle rotations and identities are dropped.
/// "Adjacent" means no intervening gate touches any shared qubit. Every
/// rule preserves the circuit unitary exactly (tested property).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CIRCUIT_PEEPHOLE_H
#define WEAVER_CIRCUIT_PEEPHOLE_H

#include "circuit/Circuit.h"

namespace weaver {
namespace circuit {

/// Statistics of one peephole run.
struct PeepholeStats {
  size_t CancelledPairs = 0;
  size_t MergedRotations = 0;
  size_t DroppedIdentities = 0;
};

/// Applies the rules to a fixed point (bounded number of passes).
/// \p OutStats receives counters when non-null.
Circuit peepholeOptimize(const Circuit &C, PeepholeStats *OutStats = nullptr);

} // namespace circuit
} // namespace weaver

#endif // WEAVER_CIRCUIT_PEEPHOLE_H
