//===- circuit/Peephole.cpp - Local circuit simplification -----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "circuit/Peephole.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

using namespace weaver;
using namespace weaver::circuit;

namespace {

bool isSelfInverse(GateKind Kind) {
  switch (Kind) {
  case GateKind::X:
  case GateKind::Y:
  case GateKind::Z:
  case GateKind::H:
  case GateKind::CX:
  case GateKind::CZ:
  case GateKind::SWAP:
  case GateKind::CCX:
  case GateKind::CCZ:
    return true;
  default:
    return false;
  }
}

bool isAxisRotation(GateKind Kind) {
  return Kind == GateKind::RX || Kind == GateKind::RY ||
         Kind == GateKind::RZ || Kind == GateKind::RZZ;
}

/// Same kind and identical operand lists (order matters except for the
/// symmetric CZ/CCZ/SWAP/RZZ, where sorted comparison applies).
bool sameOperands(const Gate &A, const Gate &B) {
  if (A.kind() != B.kind() || A.numQubits() != B.numQubits())
    return false;
  bool Symmetric = A.kind() == GateKind::CZ || A.kind() == GateKind::CCZ ||
                   A.kind() == GateKind::SWAP || A.kind() == GateKind::RZZ;
  if (!Symmetric) {
    for (unsigned I = 0, E = A.numQubits(); I < E; ++I)
      if (A.qubit(I) != B.qubit(I))
        return false;
    return true;
  }
  std::vector<int> QA, QB;
  for (unsigned I = 0, E = A.numQubits(); I < E; ++I) {
    QA.push_back(A.qubit(I));
    QB.push_back(B.qubit(I));
  }
  std::sort(QA.begin(), QA.end());
  std::sort(QB.begin(), QB.end());
  return QA == QB;
}

/// Index of the next live gate after \p From that shares a qubit with
/// \p G, or -1. Used to find the "adjacent" partner.
int nextTouching(const std::vector<std::optional<Gate>> &Gates, size_t From,
                 const Gate &G) {
  for (size_t J = From; J < Gates.size(); ++J) {
    if (!Gates[J])
      continue;
    if (Gates[J]->overlaps(G))
      return static_cast<int>(J);
  }
  return -1;
}

} // namespace

Circuit circuit::peepholeOptimize(const Circuit &C, PeepholeStats *OutStats) {
  PeepholeStats Stats;
  std::vector<std::optional<Gate>> Gates(C.gates().begin(), C.gates().end());

  bool Changed = true;
  for (int Pass = 0; Pass < 16 && Changed; ++Pass) {
    Changed = false;
    for (size_t I = 0; I < Gates.size(); ++I) {
      if (!Gates[I])
        continue;
      Gate &G = *Gates[I];
      if (G.kind() == GateKind::Barrier || G.kind() == GateKind::Measure)
        continue;
      // Drop identities / zero rotations.
      if (G.kind() == GateKind::I ||
          (isAxisRotation(G.kind()) && std::abs(G.param(0)) < 1e-14) ||
          (G.kind() == GateKind::U3 && std::abs(G.param(0)) < 1e-14 &&
           std::abs(G.param(1) + G.param(2)) < 1e-14)) {
        Gates[I].reset();
        Stats.DroppedIdentities++;
        Changed = true;
        continue;
      }
      int J = nextTouching(Gates, I + 1, G);
      if (J < 0)
        continue;
      const Gate &Next = *Gates[J];
      // Cancellation of adjacent self-inverse pairs.
      if (isSelfInverse(G.kind()) && sameOperands(G, Next)) {
        Gates[I].reset();
        Gates[J].reset();
        Stats.CancelledPairs++;
        Changed = true;
        continue;
      }
      // Merge adjacent same-axis rotations on identical operands.
      if (isAxisRotation(G.kind()) && sameOperands(G, Next)) {
        double Sum = G.param(0) + Next.param(0);
        Gates[J].reset();
        if (G.numQubits() == 1)
          G = Gate(G.kind(), {G.qubit(0)}, {Sum});
        else
          G = Gate(G.kind(), {G.qubit(0), G.qubit(1)}, {Sum});
        Stats.MergedRotations++;
        Changed = true;
        continue;
      }
    }
  }

  Circuit Out(C.numQubits(), C.name());
  for (const auto &G : Gates)
    if (G)
      Out.append(*G);
  if (OutStats)
    *OutStats = Stats;
  return Out;
}
