//===- circuit/Gate.cpp - Quantum gate representation --------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "circuit/Gate.h"

#include "support/StringUtils.h"

using namespace weaver;
using namespace weaver::circuit;

unsigned circuit::gateArity(GateKind Kind) {
  switch (Kind) {
  case GateKind::I:
  case GateKind::X:
  case GateKind::Y:
  case GateKind::Z:
  case GateKind::H:
  case GateKind::S:
  case GateKind::Sdg:
  case GateKind::T:
  case GateKind::Tdg:
  case GateKind::RX:
  case GateKind::RY:
  case GateKind::RZ:
  case GateKind::U3:
  case GateKind::Measure:
    return 1;
  case GateKind::CX:
  case GateKind::CZ:
  case GateKind::SWAP:
  case GateKind::RZZ:
    return 2;
  case GateKind::CCX:
  case GateKind::CCZ:
    return 3;
  case GateKind::Barrier:
    return 0;
  }
  assert(false && "unknown gate kind");
  return 0;
}

unsigned circuit::gateNumParams(GateKind Kind) {
  switch (Kind) {
  case GateKind::RX:
  case GateKind::RY:
  case GateKind::RZ:
  case GateKind::RZZ:
    return 1;
  case GateKind::U3:
    return 3;
  default:
    return 0;
  }
}

std::string_view circuit::gateName(GateKind Kind) {
  switch (Kind) {
  case GateKind::I:
    return "id";
  case GateKind::X:
    return "x";
  case GateKind::Y:
    return "y";
  case GateKind::Z:
    return "z";
  case GateKind::H:
    return "h";
  case GateKind::S:
    return "s";
  case GateKind::Sdg:
    return "sdg";
  case GateKind::T:
    return "t";
  case GateKind::Tdg:
    return "tdg";
  case GateKind::RX:
    return "rx";
  case GateKind::RY:
    return "ry";
  case GateKind::RZ:
    return "rz";
  case GateKind::U3:
    return "u3";
  case GateKind::CX:
    return "cx";
  case GateKind::CZ:
    return "cz";
  case GateKind::SWAP:
    return "swap";
  case GateKind::RZZ:
    return "rzz";
  case GateKind::CCX:
    return "ccx";
  case GateKind::CCZ:
    return "ccz";
  case GateKind::Barrier:
    return "barrier";
  case GateKind::Measure:
    return "measure";
  }
  assert(false && "unknown gate kind");
  return "";
}

bool circuit::parseGateName(std::string_view Name, GateKind &Kind) {
  for (unsigned I = 0; I < NumGateKinds; ++I) {
    GateKind K = static_cast<GateKind>(I);
    if (gateName(K) == Name) {
      Kind = K;
      return true;
    }
  }
  // OpenQASM 3 aliases.
  if (Name == "u") {
    Kind = GateKind::U3;
    return true;
  }
  if (Name == "cnot") {
    Kind = GateKind::CX;
    return true;
  }
  if (Name == "ccnot" || Name == "toffoli") {
    Kind = GateKind::CCX;
    return true;
  }
  return false;
}

std::string Gate::str() const {
  std::string Out(gateName(Kind));
  if (numParams() > 0) {
    Out += "(";
    for (unsigned I = 0, E = numParams(); I < E; ++I) {
      if (I)
        Out += ", ";
      Out += formatDouble(ParamStorage[I]);
    }
    Out += ")";
  }
  for (unsigned I = 0, E = numQubits(); I < E; ++I) {
    Out += I ? ", " : " ";
    Out += "q[" + std::to_string(QubitStorage[I]) + "]";
  }
  return Out;
}
