//===- circuit/Schedule.cpp - ASAP circuit scheduling --------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "circuit/Schedule.h"

#include <algorithm>

using namespace weaver;
using namespace weaver::circuit;

double circuit::gateDuration(const Gate &G, const GateDurations &D) {
  switch (G.kind()) {
  case GateKind::Barrier:
    return 0;
  case GateKind::Measure:
    return D.Measure;
  default:
    switch (G.numQubits()) {
    case 1:
      return D.OneQubit;
    case 2:
      return D.TwoQubit;
    case 3:
      return D.ThreeQubit;
    default:
      return 0;
    }
  }
}

Schedule circuit::scheduleAsap(const Circuit &C, const GateDurations &D) {
  Schedule S;
  S.StartTimes.reserve(C.size());
  std::vector<double> QubitFree(C.numQubits(), 0.0);
  double BarrierFloor = 0.0;
  for (const Gate &G : C) {
    if (G.kind() == GateKind::Barrier) {
      for (double T : QubitFree)
        BarrierFloor = std::max(BarrierFloor, T);
      S.StartTimes.push_back(BarrierFloor);
      continue;
    }
    double Start = BarrierFloor;
    for (unsigned I = 0, E = G.numQubits(); I < E; ++I)
      Start = std::max(Start, QubitFree[G.qubit(I)]);
    double End = Start + gateDuration(G, D);
    for (unsigned I = 0, E = G.numQubits(); I < E; ++I)
      QubitFree[G.qubit(I)] = End;
    S.StartTimes.push_back(Start);
    S.TotalDuration = std::max(S.TotalDuration, End);
  }
  return S;
}
