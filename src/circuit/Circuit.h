//===- circuit/Circuit.h - Quantum circuit container -----------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat quantum circuit container plus builder conveniences and the
/// statistics (gate histograms, depth) the evaluation reports.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CIRCUIT_CIRCUIT_H
#define WEAVER_CIRCUIT_CIRCUIT_H

#include "circuit/Gate.h"

#include <array>
#include <string>
#include <vector>

namespace weaver {
namespace circuit {

/// Gate histogram and derived counts for a circuit.
struct CircuitStats {
  std::array<size_t, NumGateKinds> CountByKind = {};
  size_t OneQubitGates = 0;
  size_t TwoQubitGates = 0;
  size_t ThreeQubitGates = 0;
  size_t TotalGates = 0; ///< excludes barriers and measurements
  size_t Depth = 0;      ///< circuit depth over non-barrier gates
};

/// An ordered list of gates over a fixed qubit register.
///
/// Qubit indices are dense [0, numQubits()). The class offers builder-style
/// helpers (h(), cz(), ...) so construction sites read like QASM.
class Circuit {
public:
  Circuit() = default;
  explicit Circuit(int NumQubits, std::string Name = "")
      : QubitCount(NumQubits), Name(std::move(Name)) {
    assert(NumQubits >= 0 && "negative qubit count");
  }

  int numQubits() const { return QubitCount; }
  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  size_t size() const { return Gates.size(); }
  bool empty() const { return Gates.empty(); }
  const Gate &gate(size_t I) const {
    assert(I < Gates.size() && "gate index out of range");
    return Gates[I];
  }
  const std::vector<Gate> &gates() const { return Gates; }
  auto begin() const { return Gates.begin(); }
  auto end() const { return Gates.end(); }

  /// Appends \p G after checking its operands are in range and distinct.
  void append(const Gate &G);

  /// Appends every gate of \p Other (qubit counts must match).
  void appendCircuit(const Circuit &Other);

  // Builder conveniences; each returns *this for chaining.
  Circuit &id(int Q) { return add(GateKind::I, {Q}); }
  Circuit &x(int Q) { return add(GateKind::X, {Q}); }
  Circuit &y(int Q) { return add(GateKind::Y, {Q}); }
  Circuit &z(int Q) { return add(GateKind::Z, {Q}); }
  Circuit &h(int Q) { return add(GateKind::H, {Q}); }
  Circuit &s(int Q) { return add(GateKind::S, {Q}); }
  Circuit &sdg(int Q) { return add(GateKind::Sdg, {Q}); }
  Circuit &t(int Q) { return add(GateKind::T, {Q}); }
  Circuit &tdg(int Q) { return add(GateKind::Tdg, {Q}); }
  Circuit &rx(double Theta, int Q) { return add(GateKind::RX, {Q}, {Theta}); }
  Circuit &ry(double Theta, int Q) { return add(GateKind::RY, {Q}, {Theta}); }
  Circuit &rz(double Theta, int Q) { return add(GateKind::RZ, {Q}, {Theta}); }
  Circuit &u3(double Theta, double Phi, double Lambda, int Q) {
    return add(GateKind::U3, {Q}, {Theta, Phi, Lambda});
  }
  Circuit &cx(int Control, int Target) {
    return add(GateKind::CX, {Control, Target});
  }
  Circuit &cz(int A, int B) { return add(GateKind::CZ, {A, B}); }
  Circuit &swap(int A, int B) { return add(GateKind::SWAP, {A, B}); }
  Circuit &rzz(double Theta, int A, int B) {
    return add(GateKind::RZZ, {A, B}, {Theta});
  }
  Circuit &ccx(int C1, int C2, int Target) {
    return add(GateKind::CCX, {C1, C2, Target});
  }
  Circuit &ccz(int A, int B, int C) { return add(GateKind::CCZ, {A, B, C}); }
  Circuit &barrier() { return add(GateKind::Barrier, {}); }
  Circuit &measure(int Q) { return add(GateKind::Measure, {Q}); }
  Circuit &measureAll() {
    for (int Q = 0; Q < QubitCount; ++Q)
      measure(Q);
    return *this;
  }

  /// Computes the gate histogram and depth.
  CircuitStats stats() const;

  /// Circuit depth counting only non-barrier, non-measure gates.
  size_t depth() const { return stats().Depth; }

  /// Returns the number of gates of kind \p Kind.
  size_t count(GateKind Kind) const;

  /// Returns a copy with measurements and barriers removed (for unitary
  /// equivalence checking).
  Circuit withoutNonUnitary() const;

  /// Renders one gate per line, for diagnostics and golden tests.
  std::string str() const;

private:
  Circuit &add(GateKind Kind, std::initializer_list<int> Qubits,
               std::initializer_list<double> Params = {}) {
    append(Gate(Kind, Qubits, Params));
    return *this;
  }

  int QubitCount = 0;
  std::vector<Gate> Gates;
  std::string Name;
};

} // namespace circuit
} // namespace weaver

#endif // WEAVER_CIRCUIT_CIRCUIT_H
