//===- circuit/Circuit.cpp - Quantum circuit container -------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "circuit/Circuit.h"

using namespace weaver;
using namespace weaver::circuit;

void Circuit::append(const Gate &G) {
  for (unsigned I = 0, E = G.numQubits(); I < E; ++I) {
    assert(G.qubit(I) >= 0 && G.qubit(I) < QubitCount &&
           "gate operand outside the qubit register");
    for (unsigned J = I + 1; J < E; ++J)
      assert(G.qubit(I) != G.qubit(J) && "duplicate qubit operand");
  }
  Gates.push_back(G);
}

void Circuit::appendCircuit(const Circuit &Other) {
  assert(Other.QubitCount <= QubitCount &&
         "appended circuit uses more qubits than the register holds");
  for (const Gate &G : Other.Gates)
    append(G);
}

CircuitStats Circuit::stats() const {
  CircuitStats S;
  std::vector<size_t> QubitDepth(QubitCount, 0);
  size_t BarrierFloor = 0;
  for (const Gate &G : Gates) {
    S.CountByKind[static_cast<unsigned>(G.kind())]++;
    if (G.kind() == GateKind::Barrier) {
      // A barrier raises the floor for every qubit to the current maximum.
      for (size_t D : QubitDepth)
        BarrierFloor = std::max(BarrierFloor, D);
      continue;
    }
    if (G.kind() == GateKind::Measure)
      continue;
    switch (G.numQubits()) {
    case 1:
      S.OneQubitGates++;
      break;
    case 2:
      S.TwoQubitGates++;
      break;
    case 3:
      S.ThreeQubitGates++;
      break;
    default:
      break;
    }
    S.TotalGates++;
    size_t Level = BarrierFloor;
    for (unsigned I = 0, E = G.numQubits(); I < E; ++I)
      Level = std::max(Level, QubitDepth[G.qubit(I)]);
    ++Level;
    for (unsigned I = 0, E = G.numQubits(); I < E; ++I)
      QubitDepth[G.qubit(I)] = Level;
    S.Depth = std::max(S.Depth, Level);
  }
  return S;
}

size_t Circuit::count(GateKind Kind) const {
  size_t N = 0;
  for (const Gate &G : Gates)
    if (G.kind() == Kind)
      ++N;
  return N;
}

Circuit Circuit::withoutNonUnitary() const {
  Circuit Out(QubitCount, Name);
  for (const Gate &G : Gates)
    if (G.kind() != GateKind::Barrier && G.kind() != GateKind::Measure)
      Out.append(G);
  return Out;
}

std::string Circuit::str() const {
  std::string Out;
  for (const Gate &G : Gates) {
    Out += G.str();
    Out += '\n';
  }
  return Out;
}
