//===- circuit/Decompose.cpp - Gate decomposition & basis synthesis ------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "circuit/Decompose.h"

#include <cmath>

using namespace weaver;
using namespace weaver::circuit;

namespace {
constexpr double Pi = 3.14159265358979323846;
} // namespace

void circuit::u3ParamsFor(const Gate &G, double &Theta, double &Phi,
                          double &Lambda) {
  switch (G.kind()) {
  case GateKind::I:
    Theta = Phi = Lambda = 0;
    return;
  case GateKind::X:
    Theta = Pi, Phi = 0, Lambda = Pi;
    return;
  case GateKind::Y:
    Theta = Pi, Phi = Pi / 2, Lambda = Pi / 2;
    return;
  case GateKind::Z:
    Theta = 0, Phi = 0, Lambda = Pi;
    return;
  case GateKind::H:
    Theta = Pi / 2, Phi = 0, Lambda = Pi;
    return;
  case GateKind::S:
    Theta = 0, Phi = 0, Lambda = Pi / 2;
    return;
  case GateKind::Sdg:
    Theta = 0, Phi = 0, Lambda = -Pi / 2;
    return;
  case GateKind::T:
    Theta = 0, Phi = 0, Lambda = Pi / 4;
    return;
  case GateKind::Tdg:
    Theta = 0, Phi = 0, Lambda = -Pi / 4;
    return;
  case GateKind::RX:
    Theta = G.param(0), Phi = -Pi / 2, Lambda = Pi / 2;
    return;
  case GateKind::RY:
    Theta = G.param(0), Phi = 0, Lambda = 0;
    return;
  case GateKind::RZ:
    Theta = 0, Phi = 0, Lambda = G.param(0);
    return;
  case GateKind::U3:
    Theta = G.param(0), Phi = G.param(1), Lambda = G.param(2);
    return;
  default:
    assert(false && "u3ParamsFor requires a 1-qubit unitary gate");
  }
}

void circuit::appendCxAsCz(Circuit &Out, int Control, int Target) {
  Out.u3(Pi / 2, 0, Pi, Target);
  Out.cz(Control, Target);
  Out.u3(Pi / 2, 0, Pi, Target);
}

void circuit::appendSwapAsCx(Circuit &Out, int A, int B) {
  Out.cx(A, B);
  Out.cx(B, A);
  Out.cx(A, B);
}

void circuit::appendCczAsTwoQubit(Circuit &Out, int A, int B, int C) {
  // CCX = H(c) · [this network] · H(c); folding the Hadamards away yields
  // the CCZ form directly (Nielsen & Chuang, 6 CX + 7 T-layer gates).
  Out.cx(B, C);
  Out.tdg(C);
  Out.cx(A, C);
  Out.t(C);
  Out.cx(B, C);
  Out.tdg(C);
  Out.cx(A, C);
  Out.t(B);
  Out.t(C);
  Out.cx(A, B);
  Out.t(A);
  Out.tdg(B);
  Out.cx(A, B);
}

Circuit circuit::translateToBasis(const Circuit &C,
                                  const BasisOptions &Options) {
  Circuit Mid(C.numQubits(), C.name());
  // Phase 1: reduce multi-qubit gates to {CZ, CCZ?, CX} + 1q gates.
  for (const Gate &G : C) {
    switch (G.kind()) {
    case GateKind::CX:
      Mid.cx(G.qubit(0), G.qubit(1));
      break;
    case GateKind::SWAP:
      appendSwapAsCx(Mid, G.qubit(0), G.qubit(1));
      break;
    case GateKind::RZZ:
      Mid.cx(G.qubit(0), G.qubit(1));
      Mid.rz(G.param(0), G.qubit(1));
      Mid.cx(G.qubit(0), G.qubit(1));
      break;
    case GateKind::CCX:
      Mid.h(G.qubit(2));
      if (Options.KeepCcz)
        Mid.ccz(G.qubit(0), G.qubit(1), G.qubit(2));
      else
        appendCczAsTwoQubit(Mid, G.qubit(0), G.qubit(1), G.qubit(2));
      Mid.h(G.qubit(2));
      break;
    case GateKind::CCZ:
      if (Options.KeepCcz)
        Mid.ccz(G.qubit(0), G.qubit(1), G.qubit(2));
      else
        appendCczAsTwoQubit(Mid, G.qubit(0), G.qubit(1), G.qubit(2));
      break;
    default:
      Mid.append(G);
      break;
    }
  }
  // Phase 2: map every 1-qubit gate to U3 and every CX to H·CZ·H.
  Circuit Out(C.numQubits(), C.name());
  for (const Gate &G : Mid) {
    switch (G.kind()) {
    case GateKind::Barrier:
    case GateKind::Measure:
    case GateKind::CZ:
    case GateKind::CCZ:
      Out.append(G);
      break;
    case GateKind::CX:
      appendCxAsCz(Out, G.qubit(0), G.qubit(1));
      break;
    case GateKind::I:
      if (!Options.DropIdentities)
        Out.u3(0, 0, 0, G.qubit(0));
      break;
    default: {
      assert(G.numQubits() == 1 && "unexpected multi-qubit gate in phase 2");
      double Theta, Phi, Lambda;
      u3ParamsFor(G, Theta, Phi, Lambda);
      Out.u3(Theta, Phi, Lambda, G.qubit(0));
      break;
    }
    }
  }
  return Out;
}
