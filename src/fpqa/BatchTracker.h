//===- fpqa/BatchTracker.h - Shuttle/transfer batch tracking ---*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared state machine for grouping consecutive shuttle/transfer
/// instructions into parallel batches (Algorithm 2's parallel shuttle
/// sets): a batch extends while instructions of the same kind touch
/// pairwise-distinct rows/columns. Axis membership uses epoch-stamped
/// per-axis arrays — O(1) per instruction, no per-batch tree set. Both
/// the metrics replay (fpqa::analyzePulseProgram) and the time-stamped
/// scheduler (fpqa::schedulePulseProgram) batch through this tracker so
/// their timelines cannot drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_FPQA_BATCHTRACKER_H
#define WEAVER_FPQA_BATCHTRACKER_H

#include <cstdint>
#include <vector>

namespace weaver {
namespace fpqa {

struct BatchTracker {
  enum class Kind { None, Shuttle, Transfer };

  Kind Batch = Kind::None;
  double MaxDistance = 0; ///< max |offset| inside the open shuttle batch

  /// True when the axis already shuttled inside the open batch (which
  /// then has to close first).
  bool axisSeen(bool Row, int Index) { return stamps(Row, Index) == Epoch; }

  void markAxis(bool Row, int Index) { stamps(Row, Index) = Epoch; }

  /// Closes the open batch (the caller accounts for it first).
  void reset() {
    Batch = Kind::None;
    ++Epoch;
    MaxDistance = 0;
  }

private:
  /// Self-sizing per-axis stamp access — no call-order contract between
  /// axisSeen and markAxis.
  uint64_t &stamps(bool Row, int Index) {
    std::vector<uint64_t> &Stamps = Row ? RowStamps : ColStamps;
    if (static_cast<size_t>(Index) >= Stamps.size())
      Stamps.resize(Index + 1, 0);
    return Stamps[Index];
  }

  uint64_t Epoch = 1; ///< stamps start at 0, so 1 = "not in this batch"
  std::vector<uint64_t> RowStamps, ColStamps;
};

} // namespace fpqa
} // namespace weaver

#endif // WEAVER_FPQA_BATCHTRACKER_H
