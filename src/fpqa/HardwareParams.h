//===- fpqa/HardwareParams.h - FPQA hardware parameters --------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adjustable FPQA hardware parameters (paper §7: "wOptimizer ... represents
/// the FPQA device as a class with adjustable hardware parameters").
/// Defaults follow the sources the paper cites for Rubidium-atom machines:
/// Evered et al., Nature 2023 (gate fidelities) and Schmid et al., QST 2024
/// (geometry, movement and timing); the CCZ fidelity default of 0.98 is the
/// value the paper's Fig. 10c threshold study starts from.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_FPQA_HARDWAREPARAMS_H
#define WEAVER_FPQA_HARDWAREPARAMS_H

namespace weaver {
namespace fpqa {

/// All tunable constants of the modelled FPQA. Distances in micrometers,
/// durations in seconds, fidelities as success probabilities per operation.
struct HardwareParams {
  // --- Geometry ---------------------------------------------------------
  /// Minimum separation between SLM traps (paper Table 1: 5-10 um).
  double MinSlmSeparation = 5.0;
  /// Minimum separation between adjacent AOD rows/columns. Must stay below
  /// the 1 um slot gap of the triangle layout (core::Layout).
  double MinAodSeparation = 0.8;
  /// Maximum SLM<->AOD distance for an atom transfer.
  double MaxTransferDistance = 3.0;
  /// Rydberg blockade radius: atoms closer than this entangle under a
  /// global Rydberg pulse (paper §4.1).
  double RydbergRadius = 2.5;
  /// Tolerance when checking that the atoms of a 3-cluster are equidistant
  /// (the paper's "digital computation" assumption, §7).
  double EquidistanceTolerance = 0.15;

  // --- Timing -----------------------------------------------------------
  /// AOD movement speed (Schmid et al.: ~0.55 um/us).
  double ShuttleSpeedUmPerSec = 0.55e6;
  /// Duration of one atom transfer between layers.
  double TransferTime = 15e-6;
  /// Duration of a local (single-atom) Raman pulse.
  double RamanLocalTime = 2e-6;
  /// Duration of a global Raman pulse.
  double RamanGlobalTime = 2e-6;
  /// Duration of a global Rydberg pulse.
  double RydbergTime = 0.27e-6;

  // --- Fidelities -------------------------------------------------------
  /// Single-qubit Raman rotation fidelity.
  double RamanFidelity = 0.9997;
  /// Two-atom CZ fidelity under a Rydberg pulse (Evered et al. 2023).
  double CzFidelity = 0.995;
  /// Three-atom CCZ fidelity under a Rydberg pulse (paper §8.4: 0.98).
  double CczFidelity = 0.98;
  /// Per-transfer atom survival/coherence.
  double TransferFidelity = 0.999;
  /// Coherence time (neutral atoms: ~1.5 s).
  double T2 = 1.5;

  /// Returns true when the CCZ-based compressed clause fragment beats the
  /// pure 2-qubit ladder — the gate compression profitability test of
  /// §5.4. Per 3-literal clause the compressed form costs 2 CCZ + 2 CZ +
  /// 11 Raman rotations, while the CZ-only ladder costs 10 CZ + 27 Raman
  /// rotations (three RZZ ladders plus the cubic CX ladder).
  bool cczCompressionProfitable() const {
    auto Pow = [](double Base, int N) {
      double P = 1;
      for (int I = 0; I < N; ++I)
        P *= Base;
      return P;
    };
    double Compressed =
        Pow(CczFidelity, 2) * Pow(CzFidelity, 2) * Pow(RamanFidelity, 11);
    double Ladder = Pow(CzFidelity, 10) * Pow(RamanFidelity, 27);
    return Compressed >= Ladder;
  }
};

} // namespace fpqa
} // namespace weaver

#endif // WEAVER_FPQA_HARDWAREPARAMS_H
