//===- fpqa/Device.cpp - Checked FPQA device state machine ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "fpqa/Device.h"

#include <algorithm>
#include <cmath>

using namespace weaver;
using namespace weaver::fpqa;
using qasm::Annotation;
using qasm::AnnotationKind;

Status FpqaDevice::apply(const Annotation &A) {
  switch (A.Kind) {
  case AnnotationKind::Slm:
    return applySlm(A);
  case AnnotationKind::Aod:
    return applyAod(A);
  case AnnotationKind::Bind:
    return applyBind(A);
  case AnnotationKind::Transfer:
    return applyTransfer(A);
  case AnnotationKind::Shuttle:
    return applyShuttle(A);
  case AnnotationKind::RamanGlobal:
  case AnnotationKind::RamanLocal:
    return applyRaman(A);
  case AnnotationKind::Rydberg:
    // Validity of the entangling pattern is checked via rydbergClusters().
    return rydbergClusters() ? Status::success()
                             : rydbergClusters().status();
  }
  return Status::error("unknown annotation kind");
}

Status FpqaDevice::applyAll(const std::vector<Annotation> &Annotations) {
  for (const Annotation &A : Annotations)
    if (Status S = apply(A))
      return S;
  return Status::success();
}

Status FpqaDevice::applySlm(const Annotation &A) {
  for (size_t I = 0; I < A.TrapPositions.size(); ++I)
    for (size_t J = I + 1; J < A.TrapPositions.size(); ++J)
      if (distance(A.TrapPositions[I], A.TrapPositions[J]) <
          Params.MinSlmSeparation)
        return Status::error(
            "@slm traps " + std::to_string(I) + " and " + std::to_string(J) +
            " closer than the minimum separation");
  if (!SlmTraps.empty())
    return Status::error("@slm layer already initialised");
  SlmTraps = A.TrapPositions;
  SlmOccupants.assign(SlmTraps.size(), -1);
  return Status::success();
}

Status FpqaDevice::applyAod(const Annotation &A) {
  auto CheckOrdered = [&](const std::vector<double> &Vals, const char *What) {
    for (size_t I = 0; I + 1 < Vals.size(); ++I)
      if (Vals[I + 1] - Vals[I] < Params.MinAodSeparation)
        return Status::error(std::string("@aod ") + What +
                             " coordinates must increase by at least the "
                             "minimum AOD separation");
    return Status::success();
  };
  if (Status S = CheckOrdered(A.AodXs, "column"))
    return S;
  if (Status S = CheckOrdered(A.AodYs, "row"))
    return S;
  if (!ColumnX.empty() || !RowY.empty())
    return Status::error("@aod layer already initialised");
  ColumnX = A.AodXs;
  RowY = A.AodYs;
  return Status::success();
}

Status FpqaDevice::applyBind(const Annotation &A) {
  if (A.Qubit < 0)
    return Status::error("@bind requires a non-negative qubit id");
  if (static_cast<size_t>(A.Qubit) >= Locations.size())
    Locations.resize(A.Qubit + 1);
  if (Locations[A.Qubit].Kind != AtomLocation::Layer::Unbound)
    return Status::error("@bind: qubit " + std::to_string(A.Qubit) +
                         " is already bound");
  if (A.BindToSlm) {
    if (A.SlmIndex < 0 || static_cast<size_t>(A.SlmIndex) >= SlmTraps.size())
      return Status::error("@bind: SLM index out of range");
    if (SlmOccupants[A.SlmIndex] != -1)
      return Status::error("@bind: SLM trap " + std::to_string(A.SlmIndex) +
                           " already holds an atom");
    SlmOccupants[A.SlmIndex] = A.Qubit;
    Locations[A.Qubit] = {AtomLocation::Layer::Slm, A.SlmIndex, -1, -1};
    return Status::success();
  }
  if (A.AodCol < 0 || static_cast<size_t>(A.AodCol) >= ColumnX.size() ||
      A.AodRow < 0 || static_cast<size_t>(A.AodRow) >= RowY.size())
    return Status::error("@bind: AOD trap index out of range");
  if (aodOccupant(A.AodCol, A.AodRow) != -1)
    return Status::error("@bind: AOD trap already holds an atom");
  setAodOccupant(A.AodCol, A.AodRow, A.Qubit);
  Locations[A.Qubit] = {AtomLocation::Layer::Aod, -1, A.AodCol, A.AodRow};
  return Status::success();
}

Status FpqaDevice::applyTransfer(const Annotation &A) {
  if (A.SlmIndex < 0 || static_cast<size_t>(A.SlmIndex) >= SlmTraps.size())
    return Status::error("@transfer: SLM index out of range");
  if (A.AodCol < 0 || static_cast<size_t>(A.AodCol) >= ColumnX.size() ||
      A.AodRow < 0 || static_cast<size_t>(A.AodRow) >= RowY.size())
    return Status::error("@transfer: AOD trap index out of range");
  Vec2 SlmPos = SlmTraps[A.SlmIndex];
  Vec2 AodPos{ColumnX[A.AodCol], RowY[A.AodRow]};
  if (distance(SlmPos, AodPos) > Params.MaxTransferDistance)
    return Status::error("@transfer: traps are too far apart (" +
                         std::to_string(distance(SlmPos, AodPos)) + " um)");
  int SlmAtom = SlmOccupants[A.SlmIndex];
  int AodAtom = aodOccupant(A.AodCol, A.AodRow);
  if (SlmAtom != -1 && AodAtom != -1)
    return Status::error("@transfer: both traps are occupied");
  if (SlmAtom == -1 && AodAtom == -1)
    return Status::error("@transfer: both traps are empty");
  if (SlmAtom != -1) {
    // SLM -> AOD.
    SlmOccupants[A.SlmIndex] = -1;
    setAodOccupant(A.AodCol, A.AodRow, SlmAtom);
    Locations[SlmAtom] = {AtomLocation::Layer::Aod, -1, A.AodCol, A.AodRow};
  } else {
    // AOD -> SLM.
    AodOccupants.erase({A.AodCol, A.AodRow});
    SlmOccupants[A.SlmIndex] = AodAtom;
    Locations[AodAtom] = {AtomLocation::Layer::Slm, A.SlmIndex, -1, -1};
  }
  return Status::success();
}

Status FpqaDevice::applyShuttle(const Annotation &A) {
  std::vector<double> &Coords = A.ShuttleRow ? RowY : ColumnX;
  const char *What = A.ShuttleRow ? "row" : "column";
  if (A.ShuttleIndex < 0 ||
      static_cast<size_t>(A.ShuttleIndex) >= Coords.size())
    return Status::error(std::string("@shuttle: ") + What +
                         " index out of range");
  double NewPos = Coords[A.ShuttleIndex] + A.Offset;
  // The moved row/column must not cross (or crowd) its neighbours
  // (Table 1 pre-condition: no move over another row/column).
  if (A.ShuttleIndex > 0 &&
      NewPos - Coords[A.ShuttleIndex - 1] < Params.MinAodSeparation)
    return Status::error(std::string("@shuttle: ") + What +
                         " would cross or crowd its left/lower neighbour");
  if (static_cast<size_t>(A.ShuttleIndex) + 1 < Coords.size() &&
      Coords[A.ShuttleIndex + 1] - NewPos < Params.MinAodSeparation)
    return Status::error(std::string("@shuttle: ") + What +
                         " would cross or crowd its right/upper neighbour");
  Coords[A.ShuttleIndex] = NewPos;
  return Status::success();
}

Status FpqaDevice::applyRaman(const Annotation &A) {
  if (A.Kind == AnnotationKind::RamanGlobal)
    return Status::success();
  if (A.Qubit < 0 || static_cast<size_t>(A.Qubit) >= Locations.size() ||
      Locations[A.Qubit].Kind == AtomLocation::Layer::Unbound)
    return Status::error("@raman local: qubit " + std::to_string(A.Qubit) +
                         " is not bound to an atom");
  return Status::success();
}

int FpqaDevice::aodOccupant(int Col, int Row) const {
  auto It = AodOccupants.find({Col, Row});
  return It == AodOccupants.end() ? -1 : It->second;
}

void FpqaDevice::setAodOccupant(int Col, int Row, int Qubit) {
  AodOccupants[{Col, Row}] = Qubit;
}

Vec2 FpqaDevice::qubitPosition(int Qubit) const {
  const AtomLocation &Loc = location(Qubit);
  assert(Loc.Kind != AtomLocation::Layer::Unbound &&
         "querying position of an unbound qubit");
  if (Loc.Kind == AtomLocation::Layer::Slm)
    return SlmTraps[Loc.SlmIndex];
  return Vec2{ColumnX[Loc.AodCol], RowY[Loc.AodRow]};
}

bool FpqaDevice::isBound(int Qubit) const {
  return Qubit >= 0 && static_cast<size_t>(Qubit) < Locations.size() &&
         Locations[Qubit].Kind != AtomLocation::Layer::Unbound;
}

size_t FpqaDevice::numAtoms() const {
  size_t N = 0;
  for (const AtomLocation &L : Locations)
    if (L.Kind != AtomLocation::Layer::Unbound)
      ++N;
  return N;
}

const AtomLocation &FpqaDevice::location(int Qubit) const {
  assert(Qubit >= 0 && static_cast<size_t>(Qubit) < Locations.size() &&
         "qubit id out of range");
  return Locations[Qubit];
}

Expected<std::vector<RydbergCluster>> FpqaDevice::rydbergClusters() const {
  // Gather placed atoms and their positions.
  std::vector<int> Qubits;
  std::vector<Vec2> Positions;
  for (size_t Q = 0; Q < Locations.size(); ++Q) {
    if (Locations[Q].Kind == AtomLocation::Layer::Unbound)
      continue;
    Qubits.push_back(static_cast<int>(Q));
    Positions.push_back(qubitPosition(static_cast<int>(Q)));
  }
  size_t N = Qubits.size();
  // Union-find over the proximity graph.
  std::vector<size_t> Parent(N);
  for (size_t I = 0; I < N; ++I)
    Parent[I] = I;
  auto Find = [&](size_t X) {
    while (Parent[X] != X)
      X = Parent[X] = Parent[Parent[X]];
    return X;
  };
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      if (distance(Positions[I], Positions[J]) <= Params.RydbergRadius)
        Parent[Find(I)] = Find(J);

  std::map<size_t, std::vector<size_t>> Groups;
  for (size_t I = 0; I < N; ++I)
    Groups[Find(I)].push_back(I);

  auto DescribeCluster = [&](const std::vector<size_t> &Members) {
    std::string Out;
    for (size_t M : Members) {
      Out += " q[" + std::to_string(Qubits[M]) + "]@(" +
             std::to_string(Positions[M].X) + "," +
             std::to_string(Positions[M].Y) + ")";
    }
    return Out;
  };

  std::vector<RydbergCluster> Clusters;
  for (auto &[Root, Members] : Groups) {
    if (Members.size() < 2)
      continue;
    if (Members.size() > 3)
      return Expected<std::vector<RydbergCluster>>::error(
          "@rydberg: interaction cluster with more than three atoms:" +
          DescribeCluster(Members));
    // Every pair in the cluster must interact directly (no chains), and
    // 3-atom clusters must be equidistant for the CCZ interpretation.
    double MinD = 1e300, MaxD = 0;
    for (size_t I = 0; I < Members.size(); ++I)
      for (size_t J = I + 1; J < Members.size(); ++J) {
        double D = distance(Positions[Members[I]], Positions[Members[J]]);
        MinD = std::min(MinD, D);
        MaxD = std::max(MaxD, D);
      }
    if (MaxD > Params.RydbergRadius)
      return Expected<std::vector<RydbergCluster>>::error(
          "@rydberg: chained interaction cluster (atoms not mutually "
          "within the Rydberg radius):" +
          DescribeCluster(Members));
    if (Members.size() == 3 && MaxD - MinD > Params.EquidistanceTolerance)
      return Expected<std::vector<RydbergCluster>>::error(
          "@rydberg: 3-atom cluster is not equidistant:" +
          DescribeCluster(Members));
    RydbergCluster C;
    for (size_t M : Members)
      C.Qubits.push_back(Qubits[M]);
    std::sort(C.Qubits.begin(), C.Qubits.end());
    Clusters.push_back(std::move(C));
  }
  // Deterministic order for consumers.
  std::sort(Clusters.begin(), Clusters.end(),
            [](const RydbergCluster &A, const RydbergCluster &B) {
              return A.Qubits < B.Qubits;
            });
  return Clusters;
}
