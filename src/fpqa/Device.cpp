//===- fpqa/Device.cpp - Checked FPQA device state machine ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "fpqa/Device.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace weaver;
using namespace weaver::fpqa;
using qasm::Annotation;
using qasm::AnnotationKind;

namespace {

/// Packs signed cell coordinates into one hash key. Wrap-around at 2^32
/// cells can only merge far-apart cells, which the exact distance check
/// filters out again — never a correctness issue.
uint64_t packCell(int64_t CellX, int64_t CellY) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(CellX)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(CellY));
}

} // namespace

Status FpqaDevice::apply(const Annotation &A) {
  switch (A.Kind) {
  case AnnotationKind::Slm:
    return applySlm(A);
  case AnnotationKind::Aod:
    return applyAod(A);
  case AnnotationKind::Bind:
    return applyBind(A);
  case AnnotationKind::Transfer:
    return applyTransfer(A);
  case AnnotationKind::Shuttle:
    return applyShuttle(A);
  case AnnotationKind::ShuttleParallel:
    return applyShuttleParallel(A);
  case AnnotationKind::RamanGlobal:
  case AnnotationKind::RamanLocal:
    return applyRaman(A);
  case AnnotationKind::Rydberg:
    // Validity of the entangling pattern is checked by clustering; the
    // memoised decomposition is reused by the caller's follow-up query
    // without another copy.
    return ClustersValid ? Status::success() : computeClusters();
  }
  return Status::error("unknown annotation kind");
}

Status FpqaDevice::applyAll(const std::vector<Annotation> &Annotations) {
  for (const Annotation &A : Annotations)
    if (Status S = apply(A))
      return S;
  return Status::success();
}

Status FpqaDevice::applySlm(const Annotation &A) {
  for (size_t I = 0; I < A.TrapPositions.size(); ++I)
    for (size_t J = I + 1; J < A.TrapPositions.size(); ++J)
      if (distance(A.TrapPositions[I], A.TrapPositions[J]) <
          Params.MinSlmSeparation)
        return Status::error(
            "@slm traps " + std::to_string(I) + " and " + std::to_string(J) +
            " closer than the minimum separation");
  if (!SlmTraps.empty())
    return Status::error("@slm layer already initialised");
  SlmTraps = A.TrapPositions;
  SlmOccupants.assign(SlmTraps.size(), -1);
  return Status::success();
}

Status FpqaDevice::applyAod(const Annotation &A) {
  auto CheckOrdered = [&](const std::vector<double> &Vals, const char *What) {
    for (size_t I = 0; I + 1 < Vals.size(); ++I)
      if (Vals[I + 1] - Vals[I] < Params.MinAodSeparation)
        return Status::error(std::string("@aod ") + What +
                             " coordinates must increase by at least the "
                             "minimum AOD separation");
    return Status::success();
  };
  if (Status S = CheckOrdered(A.AodXs, "column"))
    return S;
  if (Status S = CheckOrdered(A.AodYs, "row"))
    return S;
  if (!ColumnX.empty() || !RowY.empty())
    return Status::error("@aod layer already initialised");
  ColumnX = A.AodXs;
  RowY = A.AodYs;
  ColumnAtoms.assign(ColumnX.size(), {});
  RowAtoms.assign(RowY.size(), {});
  return Status::success();
}

Status FpqaDevice::applyBind(const Annotation &A) {
  if (A.Qubit < 0)
    return Status::error("@bind requires a non-negative qubit id");
  if (static_cast<size_t>(A.Qubit) >= Locations.size()) {
    Locations.resize(A.Qubit + 1);
    LastIndexedPos.resize(A.Qubit + 1);
    MovedSinceSync.resize(A.Qubit + 1, 0);
    RowSlot.resize(A.Qubit + 1, -1);
  }
  if (Locations[A.Qubit].Kind != AtomLocation::Layer::Unbound)
    return Status::error("@bind: qubit " + std::to_string(A.Qubit) +
                         " is already bound");
  if (A.BindToSlm) {
    if (A.SlmIndex < 0 || static_cast<size_t>(A.SlmIndex) >= SlmTraps.size())
      return Status::error("@bind: SLM index out of range");
    if (SlmOccupants[A.SlmIndex] != -1)
      return Status::error("@bind: SLM trap " + std::to_string(A.SlmIndex) +
                           " already holds an atom");
    SlmOccupants[A.SlmIndex] = A.Qubit;
    Locations[A.Qubit] = {AtomLocation::Layer::Slm, A.SlmIndex, -1, -1};
    gridInsert(A.Qubit, SlmTraps[A.SlmIndex]);
    ClustersValid = false;
    ++BoundAtoms;
    return Status::success();
  }
  if (A.AodCol < 0 || static_cast<size_t>(A.AodCol) >= ColumnX.size() ||
      A.AodRow < 0 || static_cast<size_t>(A.AodRow) >= RowY.size())
    return Status::error("@bind: AOD trap index out of range");
  if (aodOccupant(A.AodCol, A.AodRow) != -1)
    return Status::error("@bind: AOD trap already holds an atom");
  setAodOccupant(A.AodCol, A.AodRow, A.Qubit);
  Locations[A.Qubit] = {AtomLocation::Layer::Aod, -1, A.AodCol, A.AodRow};
  gridInsert(A.Qubit, Vec2{ColumnX[A.AodCol], RowY[A.AodRow]});
  ClustersValid = false;
  ++BoundAtoms;
  return Status::success();
}

Status FpqaDevice::applyTransfer(const Annotation &A) {
  if (A.SlmIndex < 0 || static_cast<size_t>(A.SlmIndex) >= SlmTraps.size())
    return Status::error("@transfer: SLM index out of range");
  if (A.AodCol < 0 || static_cast<size_t>(A.AodCol) >= ColumnX.size() ||
      A.AodRow < 0 || static_cast<size_t>(A.AodRow) >= RowY.size())
    return Status::error("@transfer: AOD trap index out of range");
  Vec2 SlmPos = SlmTraps[A.SlmIndex];
  Vec2 AodPos{ColumnX[A.AodCol], RowY[A.AodRow]};
  if (distance(SlmPos, AodPos) > Params.MaxTransferDistance)
    return Status::error("@transfer: traps are too far apart (" +
                         std::to_string(distance(SlmPos, AodPos)) + " um)");
  int SlmAtom = SlmOccupants[A.SlmIndex];
  int AodAtom = aodOccupant(A.AodCol, A.AodRow);
  if (SlmAtom != -1 && AodAtom != -1)
    return Status::error("@transfer: both traps are occupied");
  if (SlmAtom == -1 && AodAtom == -1)
    return Status::error("@transfer: both traps are empty");
  if (SlmAtom != -1) {
    // SLM -> AOD.
    SlmOccupants[A.SlmIndex] = -1;
    setAodOccupant(A.AodCol, A.AodRow, SlmAtom);
    Locations[SlmAtom] = {AtomLocation::Layer::Aod, -1, A.AodCol, A.AodRow};
    markMoved(SlmAtom);
  } else {
    // AOD -> SLM.
    eraseAodOccupant(A.AodCol, A.AodRow);
    SlmOccupants[A.SlmIndex] = AodAtom;
    Locations[AodAtom] = {AtomLocation::Layer::Slm, A.SlmIndex, -1, -1};
    markMoved(AodAtom);
  }
  return Status::success();
}

Status FpqaDevice::applyShuttle(const Annotation &A) {
  std::vector<double> &Coords = A.ShuttleRow ? RowY : ColumnX;
  const char *What = A.ShuttleRow ? "row" : "column";
  if (A.ShuttleIndex < 0 ||
      static_cast<size_t>(A.ShuttleIndex) >= Coords.size())
    return Status::error(std::string("@shuttle: ") + What +
                         " index out of range");
  double NewPos = Coords[A.ShuttleIndex] + A.Offset;
  // The moved row/column must not cross (or crowd) its neighbours
  // (Table 1 pre-condition: no move over another row/column).
  if (A.ShuttleIndex > 0 &&
      NewPos - Coords[A.ShuttleIndex - 1] < Params.MinAodSeparation)
    return Status::error(std::string("@shuttle: ") + What +
                         " would cross or crowd its left/lower neighbour");
  if (static_cast<size_t>(A.ShuttleIndex) + 1 < Coords.size() &&
      Coords[A.ShuttleIndex + 1] - NewPos < Params.MinAodSeparation)
    return Status::error(std::string("@shuttle: ") + What +
                         " would cross or crowd its right/upper neighbour");
  // Only the atoms riding the moved column/row change position; a dirty
  // mark per atom (O(1), no hashing) defers their grid re-index to the
  // next cluster query. Shuttles of empty columns/rows touch nothing.
  for (const auto &[Cross, Q] : A.ShuttleRow ? RowAtoms[A.ShuttleIndex]
                                             : ColumnAtoms[A.ShuttleIndex]) {
    (void)Cross;
    markMoved(Q);
  }
  Coords[A.ShuttleIndex] = NewPos;
  return Status::success();
}

Status FpqaDevice::applyShuttleParallel(const Annotation &A) {
  std::vector<double> &Coords = A.ShuttleRow ? RowY : ColumnX;
  const char *What = A.ShuttleRow ? "row" : "column";
  const std::vector<int> &Indices = A.ShuttleIndices;
  if (Indices.empty())
    return Status::error("@shuttle parallel form moves no rows/columns");
  if (Indices.size() != A.ShuttleOffsets.size())
    return Status::error("@shuttle parallel form needs one offset per "
                         "index");
  // The moved set must be pairwise distinct; requiring strictly ascending
  // indices makes overlap an O(1)-per-element check and fixes a canonical
  // spelling for the batch.
  for (size_t I = 0; I < Indices.size(); ++I) {
    if (Indices[I] < 0 || static_cast<size_t>(Indices[I]) >= Coords.size())
      return Status::error(std::string("@shuttle: ") + What +
                           " index out of range");
    if (I > 0 && Indices[I] <= Indices[I - 1])
      return Status::error(std::string("@shuttle: parallel ") + What +
                           " indices must be strictly ascending (distinct "
                           "traps per AOD step)");
  }
  // Simultaneously moving traps may not cross or crowd: with both the
  // start and end configurations ascending, the linear interpolation in
  // between stays ordered, so validating the post-move coordinate array
  // suffices (Table 1 pre-condition, batched form). Only neighbours of a
  // moved index can newly violate spacing.
  auto PosAfter = [&](int Index, size_t &Cursor) {
    // Indices ascend and the callers below query ascending neighbours, so
    // a monotone cursor over the moved set keeps this O(1) amortised.
    while (Cursor < Indices.size() && Indices[Cursor] < Index)
      ++Cursor;
    if (Cursor < Indices.size() && Indices[Cursor] == Index)
      return Coords[Index] + A.ShuttleOffsets[Cursor];
    return Coords[Index];
  };
  size_t LeftCursor = 0, RightCursor = 0;
  for (size_t I = 0; I < Indices.size(); ++I) {
    int Index = Indices[I];
    double NewPos = Coords[Index] + A.ShuttleOffsets[I];
    if (Index > 0 &&
        NewPos - PosAfter(Index - 1, LeftCursor) < Params.MinAodSeparation)
      return Status::error(std::string("@shuttle: parallel ") + What +
                           " move would cross or crowd a left/lower "
                           "neighbour");
    if (static_cast<size_t>(Index) + 1 < Coords.size() &&
        PosAfter(Index + 1, RightCursor) - NewPos < Params.MinAodSeparation)
      return Status::error(std::string("@shuttle: parallel ") + What +
                           " move would cross or crowd a right/upper "
                           "neighbour");
  }
  // Commit: update coordinates and dirty-mark exactly the atoms riding the
  // moved rows/columns (same lazy grid contract as the single form).
  for (size_t I = 0; I < Indices.size(); ++I) {
    int Index = Indices[I];
    for (const auto &[Cross, Q] :
         A.ShuttleRow ? RowAtoms[Index] : ColumnAtoms[Index]) {
      (void)Cross;
      markMoved(Q);
    }
    Coords[Index] += A.ShuttleOffsets[I];
  }
  return Status::success();
}

Status FpqaDevice::applyRaman(const Annotation &A) {
  if (A.Kind == AnnotationKind::RamanGlobal)
    return Status::success();
  if (A.Qubit < 0 || static_cast<size_t>(A.Qubit) >= Locations.size() ||
      Locations[A.Qubit].Kind == AtomLocation::Layer::Unbound)
    return Status::error("@raman local: qubit " + std::to_string(A.Qubit) +
                         " is not bound to an atom");
  return Status::success();
}

int FpqaDevice::aodOccupant(int Col, int Row) const {
  for (const auto &[R, Q] : ColumnAtoms[Col])
    if (R == Row)
      return Q;
  return -1;
}

void FpqaDevice::setAodOccupant(int Col, int Row, int Qubit) {
  ColumnAtoms[Col].push_back({Row, Qubit});
  RowSlot[Qubit] = static_cast<int>(RowAtoms[Row].size());
  RowAtoms[Row].push_back({Col, Qubit});
}

void FpqaDevice::eraseAodOccupant(int Col, int Row) {
  // Column side: at most one entry per AOD row of this column.
  std::vector<std::pair<int, int>> &ColList = ColumnAtoms[Col];
  int Qubit = -1;
  for (auto It = ColList.begin(); It != ColList.end(); ++It)
    if (It->first == Row) {
      Qubit = It->second;
      *It = ColList.back();
      ColList.pop_back();
      break;
    }
  assert(Qubit != -1 && "occupant missing from its column list");
  if (Qubit < 0)
    return;
  // Row side: the row list holds every occupied column (all AOD atoms in
  // the single-row geometry), so swap-pop through the atom's remembered
  // slot index instead of scanning.
  std::vector<std::pair<int, int>> &RowList = RowAtoms[Row];
  int Slot = RowSlot[Qubit];
  assert(Slot >= 0 && static_cast<size_t>(Slot) < RowList.size() &&
         RowList[Slot].second == Qubit &&
         "row-slot index out of sync with the row occupant list");
  RowList[Slot] = RowList.back();
  RowSlot[RowList[Slot].second] = Slot;
  RowList.pop_back();
  RowSlot[Qubit] = -1;
}

uint64_t FpqaDevice::cellKey(Vec2 P) const {
  return packCell(static_cast<int64_t>(std::floor(P.X / GridCellSize)),
                  static_cast<int64_t>(std::floor(P.Y / GridCellSize)));
}

void FpqaDevice::gridInsert(int Qubit, Vec2 P) const {
  Grid[cellKey(P)].push_back(Qubit);
  LastIndexedPos[Qubit] = P;
}

void FpqaDevice::gridErase(int Qubit, Vec2 P) const {
  auto It = Grid.find(cellKey(P));
  assert(It != Grid.end() && "atom missing from its grid cell");
  std::vector<int> &Cell = It->second;
  auto Pos = std::find(Cell.begin(), Cell.end(), Qubit);
  assert(Pos != Cell.end() && "atom missing from its grid cell");
  *Pos = Cell.back();
  Cell.pop_back();
  if (Cell.empty())
    Grid.erase(It);
}

void FpqaDevice::markMoved(int Qubit) {
  ClustersValid = false;
  if (!MovedSinceSync[Qubit]) {
    MovedSinceSync[Qubit] = 1;
    MovedList.push_back(Qubit);
  }
}

void FpqaDevice::syncGrid() const {
  for (int Q : MovedList) {
    gridErase(Q, LastIndexedPos[Q]);
    gridInsert(Q, qubitPosition(Q));
    MovedSinceSync[Q] = 0;
  }
  MovedList.clear();
}

Vec2 FpqaDevice::qubitPosition(int Qubit) const {
  const AtomLocation &Loc = location(Qubit);
  assert(Loc.Kind != AtomLocation::Layer::Unbound &&
         "querying position of an unbound qubit");
  if (Loc.Kind == AtomLocation::Layer::Slm)
    return SlmTraps[Loc.SlmIndex];
  return Vec2{ColumnX[Loc.AodCol], RowY[Loc.AodRow]};
}

bool FpqaDevice::isBound(int Qubit) const {
  return Qubit >= 0 && static_cast<size_t>(Qubit) < Locations.size() &&
         Locations[Qubit].Kind != AtomLocation::Layer::Unbound;
}

size_t FpqaDevice::countAtomsSlow() const {
  size_t N = 0;
  for (const AtomLocation &L : Locations)
    if (L.Kind != AtomLocation::Layer::Unbound)
      ++N;
  return N;
}

size_t FpqaDevice::numAtoms() const {
  assert(BoundAtoms == countAtomsSlow() && "bound-atom counter out of sync");
  return BoundAtoms;
}

const AtomLocation &FpqaDevice::location(int Qubit) const {
  assert(Qubit >= 0 && static_cast<size_t>(Qubit) < Locations.size() &&
         "qubit id out of range");
  return Locations[Qubit];
}

Status FpqaDevice::validateCluster(const std::vector<int> &Members) const {
  auto Describe = [&]() {
    std::string Out;
    for (int Q : Members) {
      Vec2 P = qubitPosition(Q);
      Out += " q[" + std::to_string(Q) + "]@(" + std::to_string(P.X) + "," +
             std::to_string(P.Y) + ")";
    }
    return Out;
  };
  if (Members.size() > 3)
    return Status::error(
        "@rydberg: interaction cluster with more than three atoms:" +
        Describe());
  // Every pair in the cluster must interact directly (no chains), and
  // 3-atom clusters must be equidistant for the CCZ interpretation.
  double MinD = 1e300, MaxD = 0;
  for (size_t I = 0; I < Members.size(); ++I)
    for (size_t J = I + 1; J < Members.size(); ++J) {
      double D =
          distance(qubitPosition(Members[I]), qubitPosition(Members[J]));
      MinD = std::min(MinD, D);
      MaxD = std::max(MaxD, D);
    }
  if (MaxD > Params.RydbergRadius)
    return Status::error("@rydberg: chained interaction cluster (atoms not "
                         "mutually within the Rydberg radius):" +
                         Describe());
  if (Members.size() == 3 && MaxD - MinD > Params.EquidistanceTolerance)
    return Status::error("@rydberg: 3-atom cluster is not equidistant:" +
                         Describe());
  return Status::success();
}

Expected<std::vector<RydbergCluster>> FpqaDevice::rydbergClusters() const {
  if (!ClustersValid)
    if (Status S = computeClusters())
      return Expected<std::vector<RydbergCluster>>(S);
  return ClusterCache;
}

Expected<const std::vector<RydbergCluster> *>
FpqaDevice::rydbergClustersRef() const {
  if (!ClustersValid)
    if (Status S = computeClusters())
      return Expected<const std::vector<RydbergCluster> *>(S);
  return &ClusterCache;
}

Status FpqaDevice::computeClusters() const {
  syncGrid();
  // Dense index over the bound atoms, in ascending qubit order.
  std::vector<int> Qubits;
  Qubits.reserve(BoundAtoms);
  std::vector<int> DenseOf(Locations.size(), -1);
  for (size_t Q = 0; Q < Locations.size(); ++Q) {
    if (Locations[Q].Kind == AtomLocation::Layer::Unbound)
      continue;
    DenseOf[Q] = static_cast<int>(Qubits.size());
    Qubits.push_back(static_cast<int>(Q));
  }
  size_t N = Qubits.size();
  // Union-find over the proximity graph; edges come from the 3x3 cell
  // neighbourhood (cell size == RydbergRadius, so no in-range pair can
  // sit further apart than one cell).
  std::vector<size_t> Parent(N);
  for (size_t I = 0; I < N; ++I)
    Parent[I] = I;
  auto Find = [&](size_t X) {
    while (Parent[X] != X)
      X = Parent[X] = Parent[Parent[X]];
    return X;
  };
  for (size_t I = 0; I < N; ++I) {
    Vec2 P = qubitPosition(Qubits[I]);
    int64_t CellX = static_cast<int64_t>(std::floor(P.X / GridCellSize));
    int64_t CellY = static_cast<int64_t>(std::floor(P.Y / GridCellSize));
    for (int64_t DX = -1; DX <= 1; ++DX)
      for (int64_t DY = -1; DY <= 1; ++DY) {
        auto It = Grid.find(packCell(CellX + DX, CellY + DY));
        if (It == Grid.end())
          continue;
        for (int Other : It->second) {
          if (Other <= Qubits[I]) // consider each pair once
            continue;
          if (distance(P, qubitPosition(Other)) <= Params.RydbergRadius)
            Parent[Find(I)] = Find(DenseOf[Other]);
        }
      }
  }

  // Group members in ascending qubit order; groups form in order of their
  // smallest member, which (clusters being disjoint) equals the reference
  // implementation's final lexicographic cluster order.
  std::vector<std::vector<int>> Groups;
  std::vector<int> GroupOf(N, -1);
  for (size_t I = 0; I < N; ++I) {
    size_t Root = Find(I);
    if (GroupOf[Root] == -1) {
      GroupOf[Root] = static_cast<int>(Groups.size());
      Groups.emplace_back();
    }
    Groups[GroupOf[Root]].push_back(Qubits[I]);
  }

  std::vector<RydbergCluster> Clusters;
  for (const std::vector<int> &Members : Groups) {
    if (Members.size() < 2)
      continue;
    if (Status S = validateCluster(Members))
      return S;
    RydbergCluster C;
    C.Qubits = Members;
    Clusters.push_back(std::move(C));
  }
  ClusterCache = std::move(Clusters);
  ClustersValid = true;
  return Status::success();
}

Expected<std::vector<RydbergCluster>>
FpqaDevice::rydbergClustersAllPairs() const {
  // The pre-grid all-pairs implementation, kept verbatim as the reference
  // the tests pin the grid path against.
  std::vector<int> Qubits;
  std::vector<Vec2> Positions;
  for (size_t Q = 0; Q < Locations.size(); ++Q) {
    if (Locations[Q].Kind == AtomLocation::Layer::Unbound)
      continue;
    Qubits.push_back(static_cast<int>(Q));
    Positions.push_back(qubitPosition(static_cast<int>(Q)));
  }
  size_t N = Qubits.size();
  // Union-find over the proximity graph.
  std::vector<size_t> Parent(N);
  for (size_t I = 0; I < N; ++I)
    Parent[I] = I;
  auto Find = [&](size_t X) {
    while (Parent[X] != X)
      X = Parent[X] = Parent[Parent[X]];
    return X;
  };
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      if (distance(Positions[I], Positions[J]) <= Params.RydbergRadius)
        Parent[Find(I)] = Find(J);

  std::map<size_t, std::vector<size_t>> Groups;
  for (size_t I = 0; I < N; ++I)
    Groups[Find(I)].push_back(I);

  auto DescribeCluster = [&](const std::vector<size_t> &Members) {
    std::string Out;
    for (size_t M : Members) {
      Out += " q[" + std::to_string(Qubits[M]) + "]@(" +
             std::to_string(Positions[M].X) + "," +
             std::to_string(Positions[M].Y) + ")";
    }
    return Out;
  };

  std::vector<RydbergCluster> Clusters;
  for (auto &[Root, Members] : Groups) {
    (void)Root;
    if (Members.size() < 2)
      continue;
    if (Members.size() > 3)
      return Expected<std::vector<RydbergCluster>>::error(
          "@rydberg: interaction cluster with more than three atoms:" +
          DescribeCluster(Members));
    // Every pair in the cluster must interact directly (no chains), and
    // 3-atom clusters must be equidistant for the CCZ interpretation.
    double MinD = 1e300, MaxD = 0;
    for (size_t I = 0; I < Members.size(); ++I)
      for (size_t J = I + 1; J < Members.size(); ++J) {
        double D = distance(Positions[Members[I]], Positions[Members[J]]);
        MinD = std::min(MinD, D);
        MaxD = std::max(MaxD, D);
      }
    if (MaxD > Params.RydbergRadius)
      return Expected<std::vector<RydbergCluster>>::error(
          "@rydberg: chained interaction cluster (atoms not mutually "
          "within the Rydberg radius):" +
          DescribeCluster(Members));
    if (Members.size() == 3 && MaxD - MinD > Params.EquidistanceTolerance)
      return Expected<std::vector<RydbergCluster>>::error(
          "@rydberg: 3-atom cluster is not equidistant:" +
          DescribeCluster(Members));
    RydbergCluster C;
    for (size_t M : Members)
      C.Qubits.push_back(Qubits[M]);
    std::sort(C.Qubits.begin(), C.Qubits.end());
    Clusters.push_back(std::move(C));
  }
  // Deterministic order for consumers.
  std::sort(Clusters.begin(), Clusters.end(),
            [](const RydbergCluster &A, const RydbergCluster &B) {
              return A.Qubits < B.Qubits;
            });
  return Clusters;
}
