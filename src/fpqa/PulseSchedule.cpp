//===- fpqa/PulseSchedule.cpp - Time-stamped pulse schedules ---------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "fpqa/PulseSchedule.h"

#include "fpqa/BatchTracker.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace weaver;
using namespace weaver::fpqa;
using qasm::Annotation;
using qasm::AnnotationKind;

std::string PulseSchedule::str() const {
  std::string Out = formatf("%-12s %-10s %s\n", "start[us]", "dur[us]",
                            "instruction");
  for (const ScheduledPulse &P : Pulses)
    Out += formatf("%-12.3f %-10.3f %s\n", P.StartTime * 1e6,
                   P.Duration * 1e6, P.Description.c_str());
  Out += formatf("makespan: %.3f us\n", Makespan * 1e6);
  return Out;
}

Expected<PulseSchedule>
fpqa::schedulePulseProgram(const std::vector<Annotation> &Program,
                           const HardwareParams &Params) {
  FpqaDevice Device(Params);
  PulseSchedule Schedule;
  double Clock = 0;

  // Open batch state: the shared BatchTracker (the same machine
  // fpqa::analyzePulseProgram batches with) plus the schedule-only
  // source/count bookkeeping.
  BatchTracker Batches;
  size_t BatchCount = 0;
  std::vector<size_t> BatchSources;

  auto CloseBatch = [&]() {
    if (Batches.Batch == BatchTracker::Kind::None) {
      Batches.reset();
      return;
    }
    ScheduledPulse P;
    P.StartTime = Clock;
    P.SourceIndices = BatchSources;
    if (Batches.Batch == BatchTracker::Kind::Shuttle) {
      P.Duration = Batches.MaxDistance / Params.ShuttleSpeedUmPerSec;
      P.Description = BatchCount > 1
                          ? formatf("shuttle x%zu (parallel)", BatchCount)
                          : "shuttle";
    } else {
      P.Duration = Params.TransferTime;
      P.Description = BatchCount > 1
                          ? formatf("transfer x%zu (parallel)", BatchCount)
                          : "transfer";
    }
    Clock += P.Duration;
    Schedule.Pulses.push_back(std::move(P));
    Batches.reset();
    BatchCount = 0;
    BatchSources.clear();
  };

  auto Emit = [&](double Duration, std::string Description, size_t Index) {
    CloseBatch();
    ScheduledPulse P;
    P.StartTime = Clock;
    P.Duration = Duration;
    P.Description = std::move(Description);
    P.SourceIndices = {Index};
    Clock += Duration;
    Schedule.Pulses.push_back(std::move(P));
  };

  for (size_t I = 0; I < Program.size(); ++I) {
    const Annotation &A = Program[I];
    if (Status S = Device.apply(A))
      return Expected<PulseSchedule>(S);
    switch (A.Kind) {
    case AnnotationKind::Slm:
    case AnnotationKind::Aod:
    case AnnotationKind::Bind:
      CloseBatch();
      break;
    case AnnotationKind::Shuttle: {
      if (Batches.Batch != BatchTracker::Kind::Shuttle ||
          Batches.axisSeen(A.ShuttleRow, A.ShuttleIndex))
        CloseBatch();
      Batches.Batch = BatchTracker::Kind::Shuttle;
      Batches.markAxis(A.ShuttleRow, A.ShuttleIndex);
      Batches.MaxDistance = std::max(Batches.MaxDistance, std::abs(A.Offset));
      BatchCount++;
      BatchSources.push_back(I);
      break;
    }
    case AnnotationKind::ShuttleParallel: {
      // One annotation is one AOD step, scheduled directly (Emit closes
      // any open reconstructed batch first).
      double MaxOffset = 0;
      for (double Offset : A.ShuttleOffsets)
        MaxOffset = std::max(MaxOffset, std::abs(Offset));
      Emit(MaxOffset / Params.ShuttleSpeedUmPerSec,
           formatf("shuttle x%zu (parallel)", A.ShuttleIndices.size()), I);
      break;
    }
    case AnnotationKind::Transfer:
      if (Batches.Batch != BatchTracker::Kind::Transfer)
        CloseBatch();
      Batches.Batch = BatchTracker::Kind::Transfer;
      BatchCount++;
      BatchSources.push_back(I);
      break;
    case AnnotationKind::RamanLocal:
      Emit(Params.RamanLocalTime,
           formatf("raman local q[%d]", A.Qubit), I);
      break;
    case AnnotationKind::RamanGlobal:
      Emit(Params.RamanGlobalTime, "raman global", I);
      break;
    case AnnotationKind::Rydberg: {
      auto Clusters = Device.rydbergClustersRef();
      if (!Clusters)
        return Expected<PulseSchedule>(Clusters.status());
      Emit(Params.RydbergTime,
           formatf("rydberg (%zu clusters)", (*Clusters)->size()), I);
      break;
    }
    }
  }
  CloseBatch();
  Schedule.Makespan = Clock;
  return Schedule;
}
