//===- fpqa/Analysis.h - Pulse program timing and EPS ----------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a pulse program (a wQASM annotation stream) on the device model
/// and derives the paper's evaluation metrics: number of pulses (Fig. 10b),
/// execution time as the sum of pulse and shuttle durations (§8.3), and
/// EPS by accumulating per-pulse error plus decoherence (§8.4).
///
/// Consecutive shuttles over distinct rows/columns are merged into one
/// parallel shuttle batch (Algorithm 2's parallel shuttle sets); the batch
/// contributes max(|offset|) / speed to the execution time.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_FPQA_ANALYSIS_H
#define WEAVER_FPQA_ANALYSIS_H

#include "fpqa/Device.h"
#include "qasm/Program.h"

#include <vector>

namespace weaver {
namespace fpqa {

/// Metrics accumulated over one pulse program.
struct PulseStats {
  size_t RamanLocalPulses = 0;
  size_t RamanGlobalPulses = 0;
  size_t RydbergPulses = 0;
  size_t ShuttleInstructions = 0; ///< individual row/column moves
  /// Parallel groups (Algorithm 2). A multi-row/column @shuttle annotation
  /// is one batch by construction; consecutive single-axis @shuttle lines
  /// over distinct axes are merged into one reconstructed batch.
  size_t ShuttleBatches = 0;
  /// Emitted @shuttle annotation lines: a parallel set counts once, so
  /// this tracks the stream size the emitter actually produced (the
  /// per-boundary linearity metric of bench_pulses).
  size_t ShuttleAnnotations = 0;
  /// Widest parallel @shuttle set seen (0 when none was emitted).
  size_t MaxParallelShuttleWidth = 0;
  size_t TransferInstructions = 0;
  size_t TransferBatches = 0;
  size_t CzGates = 0;  ///< 2-atom clusters summed over Rydberg pulses
  size_t CczGates = 0; ///< 3-atom clusters summed over Rydberg pulses
  size_t NumAtoms = 0;

  /// Laser pulses as counted in Fig. 10b: Raman + Rydberg pulses plus one
  /// per shuttle/transfer batch.
  size_t totalPulses() const {
    return RamanLocalPulses + RamanGlobalPulses + RydbergPulses +
           ShuttleBatches + TransferBatches;
  }

  double Duration = 0; ///< seconds (sum of pulse/shuttle durations, §8.3)
  double Eps = 1.0;    ///< estimated probability of success (§8.4)
};

/// Replays \p Program on a fresh device with \p Params; fails when any
/// instruction violates its pre-conditions.
Expected<PulseStats>
analyzePulseProgram(const std::vector<qasm::Annotation> &Program,
                    const HardwareParams &Params);

/// Zero-copy overload: replays the program's annotations in execution
/// order through a qasm::AnnotationView without materialising a flattened
/// stream.
Expected<PulseStats> analyzePulseProgram(const qasm::WqasmProgram &Program,
                                         const HardwareParams &Params);

} // namespace fpqa
} // namespace weaver

#endif // WEAVER_FPQA_ANALYSIS_H
