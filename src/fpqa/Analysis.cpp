//===- fpqa/Analysis.cpp - Pulse program timing and EPS -------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "fpqa/Analysis.h"

#include <cmath>
#include <set>

using namespace weaver;
using namespace weaver::fpqa;
using qasm::Annotation;
using qasm::AnnotationKind;

Expected<PulseStats>
fpqa::analyzePulseProgram(const std::vector<Annotation> &Program,
                          const HardwareParams &Params) {
  FpqaDevice Device(Params);
  PulseStats Stats;
  double EpsLog = 0; // accumulate log-fidelity for numerical stability

  // Shuttle/transfer batching state: a batch extends while consecutive
  // instructions of the same kind touch pairwise-distinct rows/columns.
  enum class BatchKind { None, Shuttle, Transfer };
  BatchKind Batch = BatchKind::None;
  std::set<std::pair<bool, int>> BatchAxes; // (isRow, index) for shuttles
  double BatchMaxDistance = 0;

  auto CloseBatch = [&]() {
    if (Batch == BatchKind::Shuttle) {
      Stats.ShuttleBatches++;
      Stats.Duration += BatchMaxDistance / Params.ShuttleSpeedUmPerSec;
    } else if (Batch == BatchKind::Transfer) {
      Stats.TransferBatches++;
      Stats.Duration += Params.TransferTime;
    }
    Batch = BatchKind::None;
    BatchAxes.clear();
    BatchMaxDistance = 0;
  };

  for (const Annotation &A : Program) {
    if (Status S = Device.apply(A))
      return Expected<PulseStats>(S);
    switch (A.Kind) {
    case AnnotationKind::Slm:
    case AnnotationKind::Aod:
    case AnnotationKind::Bind:
      CloseBatch();
      break; // setup: no pulse, no time
    case AnnotationKind::Shuttle: {
      Stats.ShuttleInstructions++;
      std::pair<bool, int> Axis{A.ShuttleRow, A.ShuttleIndex};
      if (Batch != BatchKind::Shuttle || BatchAxes.count(Axis)) {
        CloseBatch();
        Batch = BatchKind::Shuttle;
      }
      BatchAxes.insert(Axis);
      BatchMaxDistance = std::max(BatchMaxDistance, std::abs(A.Offset));
      break;
    }
    case AnnotationKind::Transfer: {
      Stats.TransferInstructions++;
      if (Batch != BatchKind::Transfer) {
        CloseBatch();
        Batch = BatchKind::Transfer;
      }
      EpsLog += std::log(Params.TransferFidelity);
      break;
    }
    case AnnotationKind::RamanLocal:
      CloseBatch();
      Stats.RamanLocalPulses++;
      Stats.Duration += Params.RamanLocalTime;
      EpsLog += std::log(Params.RamanFidelity);
      break;
    case AnnotationKind::RamanGlobal:
      CloseBatch();
      Stats.RamanGlobalPulses++;
      Stats.Duration += Params.RamanGlobalTime;
      EpsLog += static_cast<double>(Device.numAtoms()) *
                std::log(Params.RamanFidelity);
      break;
    case AnnotationKind::Rydberg: {
      CloseBatch();
      Stats.RydbergPulses++;
      Stats.Duration += Params.RydbergTime;
      auto Clusters = Device.rydbergClusters();
      if (!Clusters)
        return Expected<PulseStats>(Clusters.status());
      for (const RydbergCluster &C : *Clusters) {
        if (C.Qubits.size() == 2) {
          Stats.CzGates++;
          EpsLog += std::log(Params.CzFidelity);
        } else {
          Stats.CczGates++;
          EpsLog += std::log(Params.CczFidelity);
        }
      }
      break;
    }
    }
  }
  CloseBatch();
  Stats.NumAtoms = Device.numAtoms();
  // Decoherence: every atom idles for the program duration (§8.3: longer
  // circuit duration -> higher chance of decoherence errors).
  EpsLog -= static_cast<double>(Stats.NumAtoms) * Stats.Duration / Params.T2;
  Stats.Eps = std::exp(EpsLog);
  return Stats;
}
