//===- fpqa/Analysis.cpp - Pulse program timing and EPS -------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "fpqa/Analysis.h"

#include "fpqa/BatchTracker.h"

#include <cmath>

using namespace weaver;
using namespace weaver::fpqa;
using qasm::Annotation;
using qasm::AnnotationKind;

namespace {

/// Streaming replay accumulator: feed annotations in execution order via
/// step(), then read the totals with finish(). Works over any range —
/// the zero-copy qasm::AnnotationView or a materialised vector.
class PulseReplayer {
public:
  explicit PulseReplayer(const HardwareParams &Params)
      : Params(Params), Device(Params) {}

  Status step(const Annotation &A) {
    if (Status S = Device.apply(A))
      return S;
    switch (A.Kind) {
    case AnnotationKind::Slm:
    case AnnotationKind::Aod:
    case AnnotationKind::Bind:
      closeBatch();
      break; // setup: no pulse, no time
    case AnnotationKind::Shuttle: {
      Stats.ShuttleInstructions++;
      Stats.ShuttleAnnotations++;
      if (Batches.Batch != BatchTracker::Kind::Shuttle ||
          Batches.axisSeen(A.ShuttleRow, A.ShuttleIndex)) {
        closeBatch();
        Batches.Batch = BatchTracker::Kind::Shuttle;
      }
      Batches.markAxis(A.ShuttleRow, A.ShuttleIndex);
      Batches.MaxDistance = std::max(Batches.MaxDistance, std::abs(A.Offset));
      break;
    }
    case AnnotationKind::ShuttleParallel: {
      // One annotation == one AOD step == exactly one batch; no
      // reconstruction needed and no merging with neighbouring shuttles.
      closeBatch();
      Stats.ShuttleAnnotations++;
      Stats.ShuttleInstructions += A.ShuttleIndices.size();
      Stats.MaxParallelShuttleWidth =
          std::max(Stats.MaxParallelShuttleWidth, A.ShuttleIndices.size());
      Stats.ShuttleBatches++;
      double MaxOffset = 0;
      for (double Offset : A.ShuttleOffsets)
        MaxOffset = std::max(MaxOffset, std::abs(Offset));
      Stats.Duration += MaxOffset / Params.ShuttleSpeedUmPerSec;
      break;
    }
    case AnnotationKind::Transfer: {
      Stats.TransferInstructions++;
      if (Batches.Batch != BatchTracker::Kind::Transfer) {
        closeBatch();
        Batches.Batch = BatchTracker::Kind::Transfer;
      }
      EpsLog += std::log(Params.TransferFidelity);
      break;
    }
    case AnnotationKind::RamanLocal:
      closeBatch();
      Stats.RamanLocalPulses++;
      Stats.Duration += Params.RamanLocalTime;
      EpsLog += std::log(Params.RamanFidelity);
      break;
    case AnnotationKind::RamanGlobal:
      closeBatch();
      Stats.RamanGlobalPulses++;
      Stats.Duration += Params.RamanGlobalTime;
      EpsLog += static_cast<double>(Device.numAtoms()) *
                std::log(Params.RamanFidelity);
      break;
    case AnnotationKind::Rydberg: {
      closeBatch();
      Stats.RydbergPulses++;
      Stats.Duration += Params.RydbergTime;
      // The device memoised the cluster decomposition while validating
      // the pulse in apply(), so this query is a copy-free cache hit.
      auto Clusters = Device.rydbergClustersRef();
      if (!Clusters)
        return Clusters.status();
      for (const RydbergCluster &C : **Clusters) {
        if (C.Qubits.size() == 2) {
          Stats.CzGates++;
          EpsLog += std::log(Params.CzFidelity);
        } else {
          Stats.CczGates++;
          EpsLog += std::log(Params.CczFidelity);
        }
      }
      break;
    }
    }
    return Status::success();
  }

  PulseStats finish() {
    closeBatch();
    Stats.NumAtoms = Device.numAtoms();
    // Decoherence: every atom idles for the program duration (§8.3: longer
    // circuit duration -> higher chance of decoherence errors).
    EpsLog -= static_cast<double>(Stats.NumAtoms) * Stats.Duration / Params.T2;
    Stats.Eps = std::exp(EpsLog);
    return Stats;
  }

private:
  void closeBatch() {
    if (Batches.Batch == BatchTracker::Kind::Shuttle) {
      Stats.ShuttleBatches++;
      Stats.Duration += Batches.MaxDistance / Params.ShuttleSpeedUmPerSec;
    } else if (Batches.Batch == BatchTracker::Kind::Transfer) {
      Stats.TransferBatches++;
      Stats.Duration += Params.TransferTime;
    }
    Batches.reset();
  }

  const HardwareParams &Params;
  FpqaDevice Device;
  PulseStats Stats;
  double EpsLog = 0; // accumulate log-fidelity for numerical stability
  BatchTracker Batches;
};

template <typename Range>
Expected<PulseStats> analyzeRange(const Range &Program,
                                  const HardwareParams &Params) {
  PulseReplayer Replay(Params);
  for (const Annotation &A : Program)
    if (Status S = Replay.step(A))
      return Expected<PulseStats>(S);
  return Replay.finish();
}

} // namespace

Expected<PulseStats>
fpqa::analyzePulseProgram(const std::vector<Annotation> &Program,
                          const HardwareParams &Params) {
  return analyzeRange(Program, Params);
}

Expected<PulseStats>
fpqa::analyzePulseProgram(const qasm::WqasmProgram &Program,
                          const HardwareParams &Params) {
  return analyzeRange(qasm::AnnotationView(Program), Params);
}
