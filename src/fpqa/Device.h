//===- fpqa/Device.h - Checked FPQA device state machine -------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable model of an FPQA: a fixed SLM trap layer, a reconfigurable
/// AOD row/column grid, and atoms bound to qubit ids. Every wQASM
/// annotation (Table 1) is applied through \c apply(), which validates the
/// instruction's pre-conditions (minimum trap spacing, AOD ordering, atom
/// occupancy, transfer distance) and performs its post-condition. This is
/// the same state machine the wChecker re-simulates to translate Rydberg
/// pulses back into logical gates (paper §6, Fig. 9).
///
/// Proximity queries run against a uniform spatial hash grid bucketed at
/// \c RydbergRadius that is maintained incrementally: a bind indexes the
/// atom directly, and a transfer/shuttle dirty-marks exactly the atoms it
/// moved (O(1) each), which the next query lazily re-indexes — positions
/// are never regathered from scratch per pulse, and an atom moved many
/// times between two pulses pays one grid update. \c rydbergClusters()
/// therefore only inspects neighbouring cells (O(atoms) with bounded
/// occupancy instead of the all-pairs O(atoms^2) scan), and its result is
/// memoised until the next position change.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_FPQA_DEVICE_H
#define WEAVER_FPQA_DEVICE_H

#include "fpqa/HardwareParams.h"
#include "qasm/Annotation.h"
#include "support/Geometry.h"
#include "support/Status.h"

#include <unordered_map>
#include <vector>

namespace weaver {
namespace fpqa {

/// Where an atom (identified by its bound qubit id) currently sits.
struct AtomLocation {
  enum class Layer { Unbound, Slm, Aod };
  Layer Kind = Layer::Unbound;
  int SlmIndex = -1; ///< valid when Kind == Slm
  int AodCol = -1;   ///< valid when Kind == Aod
  int AodRow = -1;   ///< valid when Kind == Aod
};

/// A set of mutually interacting atoms under one Rydberg pulse.
struct RydbergCluster {
  std::vector<int> Qubits; ///< 2 or 3 qubit ids
};

/// The FPQA state machine. See file comment.
class FpqaDevice {
public:
  explicit FpqaDevice(const HardwareParams &Params = HardwareParams())
      : Params(Params),
        GridCellSize(Params.RydbergRadius > 0 ? Params.RydbergRadius : 1.0) {}

  const HardwareParams &params() const { return Params; }

  /// Applies one wQASM annotation; returns an error (state unchanged) when
  /// a pre-condition of Table 1 is violated.
  Status apply(const qasm::Annotation &A);

  /// Applies a sequence, stopping at the first error.
  Status applyAll(const std::vector<qasm::Annotation> &Annotations);

  /// Current position of the atom bound to \p Qubit. Requires the qubit to
  /// be bound and placed.
  Vec2 qubitPosition(int Qubit) const;

  /// Returns true if \p Qubit is bound to a trap.
  bool isBound(int Qubit) const;

  /// Number of bound atoms. O(1): a counter maintained by bind, checked
  /// against the full scan in debug builds.
  size_t numAtoms() const;

  /// Computes the interaction clusters a global Rydberg pulse would act on:
  /// connected components of the "closer than RydbergRadius" graph with at
  /// least two atoms. Fails when a cluster exceeds three atoms or a 3-atom
  /// cluster is not (approximately) equidistant — the digital-computation
  /// validity conditions of §6/§7. Queries the spatial grid and memoises
  /// the (successful) result until an atom moves.
  Expected<std::vector<RydbergCluster>> rydbergClusters() const;

  /// Copy-free variant for per-pulse hot paths: validates like
  /// \c rydbergClusters() but returns a pointer to the memoised
  /// decomposition, valid until the next position change.
  Expected<const std::vector<RydbergCluster> *> rydbergClustersRef() const;

  /// Reference implementation of \c rydbergClusters over the all-pairs
  /// proximity graph (the pre-grid quadratic scan, kept verbatim). Tests
  /// pin the grid path against it; production code should never call it.
  Expected<std::vector<RydbergCluster>> rydbergClustersAllPairs() const;

  // --- Introspection used by codegen and tests -------------------------
  size_t numSlmTraps() const { return SlmTraps.size(); }
  Vec2 slmTrap(int Index) const { return SlmTraps[Index]; }
  int slmOccupant(int Index) const { return SlmOccupants[Index]; }
  size_t numAodColumns() const { return ColumnX.size(); }
  size_t numAodRows() const { return RowY.size(); }
  double columnX(int Col) const { return ColumnX[Col]; }
  double rowY(int Row) const { return RowY[Row]; }
  const AtomLocation &location(int Qubit) const;

private:
  Status applySlm(const qasm::Annotation &A);
  Status applyAod(const qasm::Annotation &A);
  Status applyBind(const qasm::Annotation &A);
  Status applyTransfer(const qasm::Annotation &A);
  Status applyShuttle(const qasm::Annotation &A);
  Status applyShuttleParallel(const qasm::Annotation &A);
  Status applyRaman(const qasm::Annotation &A);

  int aodOccupant(int Col, int Row) const;
  void setAodOccupant(int Col, int Row, int Qubit);
  void eraseAodOccupant(int Col, int Row);

  // --- Spatial hash grid (see file comment) ----------------------------
  /// Key of the grid cell containing \p P (cells are GridCellSize-sized
  /// squares; two atoms within RydbergRadius always land in the same or
  /// an 8-neighbouring cell).
  uint64_t cellKey(Vec2 P) const;
  void gridInsert(int Qubit, Vec2 P) const;
  void gridErase(int Qubit, Vec2 P) const;
  /// Marks \p Qubit's indexed position stale. A long shuttle cascade can
  /// move the same atom many times between two Rydberg pulses; the dirty
  /// mark defers the (hashing) grid update to the next cluster query, so
  /// each moved atom re-indexes once per query instead of once per move.
  void markMoved(int Qubit);
  /// Re-indexes every dirty atom (erase at the last indexed position,
  /// insert at the current one).
  void syncGrid() const;

  /// Validates one candidate cluster (shared by the grid and all-pairs
  /// paths): 2..3 members, mutually within the radius, 3-atom clusters
  /// equidistant. \p Members hold qubit ids in ascending order.
  Status validateCluster(const std::vector<int> &Members) const;

  /// Syncs the grid, recomputes the cluster decomposition into
  /// ClusterCache and sets ClustersValid; the error status (if any) is
  /// returned without materialising a result copy.
  Status computeClusters() const;

  size_t countAtomsSlow() const;

  HardwareParams Params;
  std::vector<Vec2> SlmTraps;
  std::vector<int> SlmOccupants; ///< qubit id or -1
  std::vector<double> ColumnX;
  std::vector<double> RowY;
  /// Dense per-column / per-row occupant lists ((row, qubit) and
  /// (col, qubit) pairs), sized at @aod initialisation. A shuttle touches
  /// only the atoms riding the moved column/row. Column lists hold at
  /// most one entry per row (a single row in the production geometry);
  /// row lists hold one entry per occupied column, so row-side removal
  /// goes through RowSlot (each AOD atom's index into its row list) for
  /// an O(1) swap-pop — no tree maps or linear scans on the
  /// per-instruction path.
  std::vector<std::vector<std::pair<int, int>>> ColumnAtoms;
  std::vector<std::vector<std::pair<int, int>>> RowAtoms;
  std::vector<int> RowSlot; ///< per qubit, valid while the atom is on AOD
  std::vector<AtomLocation> Locations; ///< indexed by qubit id
  size_t BoundAtoms = 0;

  double GridCellSize;
  /// cell -> qubits. Mutable with its bookkeeping because the lazy sync
  /// and memoisation run inside const queries.
  mutable std::unordered_map<uint64_t, std::vector<int>> Grid;
  mutable std::vector<Vec2> LastIndexedPos; ///< per qubit, while in Grid
  mutable std::vector<char> MovedSinceSync; ///< per qubit dirty flag
  mutable std::vector<int> MovedList;       ///< dirty qubits, no duplicates
  mutable std::vector<RydbergCluster> ClusterCache;
  mutable bool ClustersValid = false;
};

} // namespace fpqa
} // namespace weaver

#endif // WEAVER_FPQA_DEVICE_H
