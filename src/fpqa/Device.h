//===- fpqa/Device.h - Checked FPQA device state machine -------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable model of an FPQA: a fixed SLM trap layer, a reconfigurable
/// AOD row/column grid, and atoms bound to qubit ids. Every wQASM
/// annotation (Table 1) is applied through \c apply(), which validates the
/// instruction's pre-conditions (minimum trap spacing, AOD ordering, atom
/// occupancy, transfer distance) and performs its post-condition. This is
/// the same state machine the wChecker re-simulates to translate Rydberg
/// pulses back into logical gates (paper §6, Fig. 9).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_FPQA_DEVICE_H
#define WEAVER_FPQA_DEVICE_H

#include "fpqa/HardwareParams.h"
#include "qasm/Annotation.h"
#include "support/Geometry.h"
#include "support/Status.h"

#include <map>
#include <vector>

namespace weaver {
namespace fpqa {

/// Where an atom (identified by its bound qubit id) currently sits.
struct AtomLocation {
  enum class Layer { Unbound, Slm, Aod };
  Layer Kind = Layer::Unbound;
  int SlmIndex = -1; ///< valid when Kind == Slm
  int AodCol = -1;   ///< valid when Kind == Aod
  int AodRow = -1;   ///< valid when Kind == Aod
};

/// A set of mutually interacting atoms under one Rydberg pulse.
struct RydbergCluster {
  std::vector<int> Qubits; ///< 2 or 3 qubit ids
};

/// The FPQA state machine. See file comment.
class FpqaDevice {
public:
  explicit FpqaDevice(const HardwareParams &Params = HardwareParams())
      : Params(Params) {}

  const HardwareParams &params() const { return Params; }

  /// Applies one wQASM annotation; returns an error (state unchanged) when
  /// a pre-condition of Table 1 is violated.
  Status apply(const qasm::Annotation &A);

  /// Applies a sequence, stopping at the first error.
  Status applyAll(const std::vector<qasm::Annotation> &Annotations);

  /// Current position of the atom bound to \p Qubit. Requires the qubit to
  /// be bound and placed.
  Vec2 qubitPosition(int Qubit) const;

  /// Returns true if \p Qubit is bound to a trap.
  bool isBound(int Qubit) const;

  /// Number of bound atoms.
  size_t numAtoms() const;

  /// Computes the interaction clusters a global Rydberg pulse would act on:
  /// connected components of the "closer than RydbergRadius" graph with at
  /// least two atoms. Fails when a cluster exceeds three atoms or a 3-atom
  /// cluster is not (approximately) equidistant — the digital-computation
  /// validity conditions of §6/§7.
  Expected<std::vector<RydbergCluster>> rydbergClusters() const;

  // --- Introspection used by codegen and tests -------------------------
  size_t numSlmTraps() const { return SlmTraps.size(); }
  Vec2 slmTrap(int Index) const { return SlmTraps[Index]; }
  int slmOccupant(int Index) const { return SlmOccupants[Index]; }
  size_t numAodColumns() const { return ColumnX.size(); }
  size_t numAodRows() const { return RowY.size(); }
  double columnX(int Col) const { return ColumnX[Col]; }
  double rowY(int Row) const { return RowY[Row]; }
  const AtomLocation &location(int Qubit) const;

private:
  Status applySlm(const qasm::Annotation &A);
  Status applyAod(const qasm::Annotation &A);
  Status applyBind(const qasm::Annotation &A);
  Status applyTransfer(const qasm::Annotation &A);
  Status applyShuttle(const qasm::Annotation &A);
  Status applyRaman(const qasm::Annotation &A);

  int aodOccupant(int Col, int Row) const;
  void setAodOccupant(int Col, int Row, int Qubit);

  HardwareParams Params;
  std::vector<Vec2> SlmTraps;
  std::vector<int> SlmOccupants; ///< qubit id or -1
  std::vector<double> ColumnX;
  std::vector<double> RowY;
  std::map<std::pair<int, int>, int> AodOccupants; ///< (col,row) -> qubit
  std::vector<AtomLocation> Locations;             ///< indexed by qubit id
};

} // namespace fpqa
} // namespace weaver

#endif // WEAVER_FPQA_DEVICE_H
