//===- fpqa/PulseSchedule.h - Time-stamped pulse schedules -----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts a validated pulse program into a time-stamped schedule — the
/// "FPQA low-level instructions ... ready to be submitted to FPQA hardware
/// controllers" of the paper's Fig. 3. Uses the same parallel-batch model
/// as the execution-time analysis so scheduled makespan == analyzed
/// duration.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_FPQA_PULSESCHEDULE_H
#define WEAVER_FPQA_PULSESCHEDULE_H

#include "fpqa/Analysis.h"

#include <string>
#include <vector>

namespace weaver {
namespace fpqa {

/// One scheduled hardware event (possibly a parallel batch).
struct ScheduledPulse {
  double StartTime = 0; ///< seconds from program start
  double Duration = 0;
  /// Rendered instruction(s), e.g. "rydberg" or "shuttle x3 (parallel)".
  std::string Description;
  /// Indices into the source annotation stream covered by this event.
  std::vector<size_t> SourceIndices;
};

/// A full schedule plus its makespan.
struct PulseSchedule {
  std::vector<ScheduledPulse> Pulses;
  double Makespan = 0;

  /// Renders a fixed-width timing table ("start[us] dur[us] instruction").
  std::string str() const;
};

/// Schedules \p Program (validating it on the device model). The makespan
/// equals \c analyzePulseProgram's Duration for the same program.
Expected<PulseSchedule>
schedulePulseProgram(const std::vector<qasm::Annotation> &Program,
                     const HardwareParams &Params);

} // namespace fpqa
} // namespace weaver

#endif // WEAVER_FPQA_PULSESCHEDULE_H
