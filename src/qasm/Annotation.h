//===- qasm/Annotation.h - wQASM FPQA annotations --------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wQASM annotation extension of OpenQASM (paper §4, Fig. 4, Table 1).
/// Annotations prefix an OpenQASM statement and describe the FPQA-specific
/// steps (trap setup, atom motion, pulses) executed before that statement.
///
/// Concrete syntax accepted/emitted by this project:
/// \code
///   @slm [(0, 0), (5, 0), (10, 0)]
///   @aod [0, 5] [0, 5]
///   @bind q[3] slm 2
///   @bind q[4] aod 0 1
///   @transfer 2 (0, 1)
///   @shuttle row 0 7.5
///   @shuttle column 1 -2.5
///   @shuttle columns [0, 2, 3] [5, -1.5, 2]
///   @shuttle rows [0, 1] [2, 2]
///   @raman global 0 1.5707963 0
///   @raman local q[3] 0 1.5707963 0
///   @rydberg
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_QASM_ANNOTATION_H
#define WEAVER_QASM_ANNOTATION_H

#include "support/Geometry.h"

#include <string>
#include <vector>

namespace weaver {
namespace qasm {

/// Discriminates the wQASM annotation forms of Table 1.
enum class AnnotationKind {
  Slm,         ///< @slm — initialise the fixed trap layer
  Aod,         ///< @aod — initialise the reconfigurable trap grid
  Bind,        ///< @bind — tie a trap to a qubit id
  Transfer,    ///< @transfer — move an atom between SLM and AOD layers
  Shuttle,     ///< @shuttle — move an AOD row/column by an offset
  /// @shuttle rows/columns — move a set of pairwise-distinct AOD
  /// rows/columns simultaneously in one AOD step (Algorithm 2's parallel
  /// shuttle sets). Order along the axis must be preserved: simultaneous
  /// traps cannot cross, so the post-move coordinates have to remain
  /// ascending with the minimum AOD separation.
  ShuttleParallel,
  RamanGlobal, ///< @raman global — rotate every qubit
  RamanLocal,  ///< @raman local — rotate one qubit
  Rydberg,     ///< @rydberg — global entangling pulse (CZ / CCZ)
};

/// Returns the annotation keyword without '@' (e.g. "shuttle").
const char *annotationKindName(AnnotationKind Kind);

/// One parsed/constructed wQASM annotation. A single struct carries the
/// union of the argument fields; which fields are meaningful depends on
/// \c Kind (see each field's comment).
struct Annotation {
  AnnotationKind Kind = AnnotationKind::Rydberg;

  /// @slm: trap coordinates.
  std::vector<Vec2> TrapPositions;

  /// @aod: column x-coordinates and row y-coordinates.
  std::vector<double> AodXs;
  std::vector<double> AodYs;

  /// @bind / @raman local: flat qubit index (printer renders q[Qubit]).
  int Qubit = -1;

  /// @bind: true when binding to an SLM trap, false for an AOD trap.
  bool BindToSlm = true;

  /// @bind (slm) / @transfer: SLM trap index.
  int SlmIndex = -1;

  /// @bind (aod) / @transfer: AOD column and row indices.
  int AodCol = -1;
  int AodRow = -1;

  /// @shuttle: true to move a row (set), false for a column (set).
  bool ShuttleRow = true;

  /// @shuttle: row/column index.
  int ShuttleIndex = -1;

  /// @shuttle: displacement in micrometers.
  double Offset = 0;

  /// @shuttle rows/columns: moved indices (strictly ascending) and the
  /// matching per-index displacements in micrometers.
  std::vector<int> ShuttleIndices;
  std::vector<double> ShuttleOffsets;

  /// @raman: rotation angles around the x, y and z axes (radians).
  double AngleX = 0;
  double AngleY = 0;
  double AngleZ = 0;

  /// Renders the annotation in the concrete syntax above.
  std::string str() const;

  // --- Named constructors for each form -------------------------------

  static Annotation slm(std::vector<Vec2> Traps);
  static Annotation aod(std::vector<double> Xs, std::vector<double> Ys);
  static Annotation bindSlm(int Qubit, int SlmIndex);
  static Annotation bindAod(int Qubit, int Col, int Row);
  static Annotation transfer(int SlmIndex, int Col, int Row);
  static Annotation shuttle(bool Row, int Index, double Offset);
  static Annotation shuttleParallel(bool Rows, std::vector<int> Indices,
                                    std::vector<double> Offsets);
  static Annotation ramanGlobal(double X, double Y, double Z);
  static Annotation ramanLocal(int Qubit, double X, double Y, double Z);
  static Annotation rydberg();
};

} // namespace qasm
} // namespace weaver

#endif // WEAVER_QASM_ANNOTATION_H
