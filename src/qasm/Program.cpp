//===- qasm/Program.cpp - Parsed wQASM program representation ------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "qasm/Program.h"

using namespace weaver;
using namespace weaver::qasm;

circuit::Circuit WqasmProgram::toCircuit() const {
  circuit::Circuit C(NumQubits);
  for (const GateStatement &S : Statements)
    C.append(S.Gate);
  return C;
}

WqasmProgram WqasmProgram::fromCircuit(const circuit::Circuit &C) {
  WqasmProgram P;
  P.NumQubits = C.numQubits();
  P.NumBits = static_cast<int>(C.count(circuit::GateKind::Measure));
  for (const circuit::Gate &G : C)
    P.Statements.push_back(GateStatement{G, {}});
  return P;
}

size_t WqasmProgram::numAnnotations() const {
  size_t N = TrailingAnnotations.size();
  for (const GateStatement &S : Statements)
    N += S.Annotations.size();
  return N;
}
