//===- qasm/Parser.h - OpenQASM / wQASM parser -----------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the OpenQASM 2/3 subset used by the paper's
/// pipeline plus the wQASM annotation grammar of Fig. 4.
///
/// Supported statements: the OPENQASM version header, `include` (ignored),
/// `qreg`/`qubit` and `creg`/`bit` declarations, gate calls with constant
/// parameter expressions (numbers, `pi`, + - * / and parentheses),
/// `measure` (both QASM2 arrow and bare forms), `barrier`, and every wQASM
/// annotation of Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_QASM_PARSER_H
#define WEAVER_QASM_PARSER_H

#include "qasm/Program.h"
#include "support/Status.h"

#include <string_view>

namespace weaver {
namespace qasm {

/// Parses (w)QASM text into a program. Returns a descriptive error with a
/// line number on malformed input.
Expected<WqasmProgram> parseWqasm(std::string_view Source);

/// Convenience: parse and immediately lower to a circuit, dropping
/// annotations.
Expected<circuit::Circuit> parseQasmCircuit(std::string_view Source);

} // namespace qasm
} // namespace weaver

#endif // WEAVER_QASM_PARSER_H
