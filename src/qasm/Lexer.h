//===- qasm/Lexer.h - OpenQASM / wQASM lexer -------------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled tokenizer for the OpenQASM subset (plus wQASM '@'
/// annotations) that the paper's pipeline consumes and emits.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_QASM_LEXER_H
#define WEAVER_QASM_LEXER_H

#include <string>
#include <string_view>
#include <vector>

namespace weaver {
namespace qasm {

/// Token categories produced by the lexer.
enum class TokenKind {
  Identifier, ///< gate names, register names, keywords
  Number,     ///< integer or floating literal
  String,     ///< double-quoted string (include paths)
  Annotation, ///< '@' followed by a keyword, e.g. @shuttle
  Punct,      ///< one of ; , ( ) [ ] { } + - * / =
  EndOfFile,
};

/// One token with its source line (1-based) for diagnostics.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;
  double NumberValue = 0;
  int Line = 0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isPunct(char C) const {
    return Kind == TokenKind::Punct && Text.size() == 1 && Text[0] == C;
  }
  bool isIdent(std::string_view S) const {
    return Kind == TokenKind::Identifier && Text == S;
  }
};

/// Tokenizes \p Source. Unknown characters are reported via \p ErrorOut
/// (first error wins) and lexing stops. '//' and 'c'-style '#' line
/// comments are skipped.
std::vector<Token> tokenize(std::string_view Source, std::string &ErrorOut);

} // namespace qasm
} // namespace weaver

#endif // WEAVER_QASM_LEXER_H
