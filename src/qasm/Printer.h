//===- qasm/Printer.h - OpenQASM / wQASM emission --------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual emission of circuits as OpenQASM 3 and of annotated programs as
/// wQASM. The printers produce the concrete syntax the parser accepts, so
/// print -> parse -> print is a fixed point (tested).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_QASM_PRINTER_H
#define WEAVER_QASM_PRINTER_H

#include "circuit/Circuit.h"
#include "qasm/Program.h"

#include <string>

namespace weaver {
namespace qasm {

/// Prints a plain OpenQASM 3 program ("OPENQASM 3.0;", one qubit register
/// "q", a bit register "c" when the circuit measures).
std::string printOpenQasm(const circuit::Circuit &C);

/// Prints a wQASM program: each statement is preceded by its FPQA
/// annotation lines (paper Fig. 4 concrete syntax).
std::string printWqasm(const WqasmProgram &Program);

} // namespace qasm
} // namespace weaver

#endif // WEAVER_QASM_PRINTER_H
