//===- qasm/Program.h - Parsed wQASM program representation ----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory form of a (w)QASM file: a flat qubit register, a statement
/// list, and the FPQA annotations attached to each statement (paper §4.2:
/// annotations specify the FPQA steps executed before the following
/// OpenQASM statement). Ignoring the annotations yields a plain OpenQASM
/// program that can be retargeted to other architectures.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_QASM_PROGRAM_H
#define WEAVER_QASM_PROGRAM_H

#include "circuit/Circuit.h"
#include "qasm/Annotation.h"

#include <string>
#include <vector>

namespace weaver {
namespace qasm {

/// One OpenQASM statement (a gate, measurement or barrier) plus the wQASM
/// annotations that precede it.
struct GateStatement {
  circuit::Gate Gate;
  std::vector<Annotation> Annotations;
};

/// A parsed wQASM (or plain OpenQASM) program over one flat qubit register.
struct WqasmProgram {
  std::string Version = "3.0";
  int NumQubits = 0;
  int NumBits = 0;
  std::vector<GateStatement> Statements;
  /// Annotations appearing after the last statement (rare; kept for
  /// round-trip fidelity).
  std::vector<Annotation> TrailingAnnotations;

  /// Drops the annotations and returns the logical circuit — the
  /// "treat wQASM like regular OpenQASM" path of §4.2.
  circuit::Circuit toCircuit() const;

  /// Wraps a circuit into an annotation-free program.
  static WqasmProgram fromCircuit(const circuit::Circuit &C);

  /// Total number of annotations across all statements.
  size_t numAnnotations() const;
};

/// Zero-copy forward range over every annotation of a program in execution
/// order — each statement's annotations, then the trailing ones. This is
/// the order the device executes the pulse stream in (§4.2); replay-style
/// consumers iterate it directly instead of materialising a flattened
/// copy of the stream.
class AnnotationView {
public:
  explicit AnnotationView(const WqasmProgram &Program) : Program(&Program) {}

  class Iterator {
  public:
    Iterator(const WqasmProgram *Program, size_t Segment, size_t Index)
        : Program(Program), Segment(Segment), Index(Index) {
      skipExhausted();
    }

    const Annotation &operator*() const { return segment(Segment)[Index]; }
    const Annotation *operator->() const { return &**this; }

    Iterator &operator++() {
      ++Index;
      skipExhausted();
      return *this;
    }

    friend bool operator==(const Iterator &A, const Iterator &B) {
      return A.Segment == B.Segment && A.Index == B.Index;
    }
    friend bool operator!=(const Iterator &A, const Iterator &B) {
      return !(A == B);
    }

  private:
    /// Segment \p S is statement S's annotation list; the one-past-last
    /// segment is the trailing list.
    const std::vector<Annotation> &segment(size_t S) const {
      return S < Program->Statements.size()
                 ? Program->Statements[S].Annotations
                 : Program->TrailingAnnotations;
    }
    void skipExhausted() {
      while (Segment <= Program->Statements.size() &&
             Index >= segment(Segment).size()) {
        ++Segment;
        Index = 0;
      }
    }

    const WqasmProgram *Program;
    size_t Segment;
    size_t Index;
  };

  Iterator begin() const { return Iterator(Program, 0, 0); }
  Iterator end() const {
    return Iterator(Program, Program->Statements.size() + 1, 0);
  }
  size_t size() const { return Program->numAnnotations(); }

private:
  const WqasmProgram *Program;
};

} // namespace qasm
} // namespace weaver

#endif // WEAVER_QASM_PROGRAM_H
