//===- qasm/Program.h - Parsed wQASM program representation ----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory form of a (w)QASM file: a flat qubit register, a statement
/// list, and the FPQA annotations attached to each statement (paper §4.2:
/// annotations specify the FPQA steps executed before the following
/// OpenQASM statement). Ignoring the annotations yields a plain OpenQASM
/// program that can be retargeted to other architectures.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_QASM_PROGRAM_H
#define WEAVER_QASM_PROGRAM_H

#include "circuit/Circuit.h"
#include "qasm/Annotation.h"

#include <string>
#include <vector>

namespace weaver {
namespace qasm {

/// One OpenQASM statement (a gate, measurement or barrier) plus the wQASM
/// annotations that precede it.
struct GateStatement {
  circuit::Gate Gate;
  std::vector<Annotation> Annotations;
};

/// A parsed wQASM (or plain OpenQASM) program over one flat qubit register.
struct WqasmProgram {
  std::string Version = "3.0";
  int NumQubits = 0;
  int NumBits = 0;
  std::vector<GateStatement> Statements;
  /// Annotations appearing after the last statement (rare; kept for
  /// round-trip fidelity).
  std::vector<Annotation> TrailingAnnotations;

  /// Drops the annotations and returns the logical circuit — the
  /// "treat wQASM like regular OpenQASM" path of §4.2.
  circuit::Circuit toCircuit() const;

  /// Wraps a circuit into an annotation-free program.
  static WqasmProgram fromCircuit(const circuit::Circuit &C);

  /// Total number of annotations across all statements.
  size_t numAnnotations() const;
};

} // namespace qasm
} // namespace weaver

#endif // WEAVER_QASM_PROGRAM_H
