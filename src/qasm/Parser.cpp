//===- qasm/Parser.cpp - OpenQASM / wQASM parser ---------------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "qasm/Parser.h"

#include "qasm/Lexer.h"

#include <map>

using namespace weaver;
using namespace weaver::qasm;
using circuit::Gate;
using circuit::GateKind;

namespace {

constexpr double Pi = 3.14159265358979323846;

/// Recursive-descent parser over the token stream. All parse* methods
/// return false after recording an error in ErrorMessage.
class Parser {
public:
  explicit Parser(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  Expected<WqasmProgram> run();

private:
  const Token &peek() const { return Tokens[Pos]; }
  const Token &advance() { return Tokens[Pos++]; }

  bool fail(const std::string &Message) {
    if (ErrorMessage.empty())
      ErrorMessage =
          "line " + std::to_string(peek().Line) + ": " + Message;
    return false;
  }

  bool expectPunct(char C) {
    if (!peek().isPunct(C))
      return fail(std::string("expected '") + C + "', found '" + peek().Text +
                  "'");
    advance();
    return true;
  }

  bool parseStatement();
  bool parseVersion();
  bool parseInclude();
  bool parseRegisterDecl(bool Quantum, bool Qasm3Style);
  bool parseGateCall(const std::string &Name);
  bool parseMeasure();
  bool parseBarrier();
  bool parseAnnotation();

  bool parseInt(int &Out);
  bool parseSignedNumber(double &Out);
  bool parseIntList(std::vector<int> &Out);
  bool parseNumberList(std::vector<double> &Out);
  bool parseQubitRef(int &FlatIndex);
  bool parseQubitRefOrIndex(int &FlatIndex);
  bool parseBitRef(int &FlatIndex);
  bool parseParamExpr(double &Out);
  bool parseParamTerm(double &Out);
  bool parseParamFactor(double &Out);

  /// Registers: name -> (flat offset, size). Quantum and classical live in
  /// separate maps.
  std::map<std::string, std::pair<int, int>> QuantumRegs;
  std::map<std::string, std::pair<int, int>> ClassicalRegs;

  std::vector<Token> Tokens;
  size_t Pos = 0;
  WqasmProgram Program;
  std::vector<Annotation> PendingAnnotations;
  std::string ErrorMessage;
};

Expected<WqasmProgram> Parser::run() {
  while (!peek().is(TokenKind::EndOfFile))
    if (!parseStatement())
      return Expected<WqasmProgram>::error(ErrorMessage);
  Program.TrailingAnnotations = std::move(PendingAnnotations);
  return std::move(Program);
}

bool Parser::parseStatement() {
  const Token &T = peek();
  if (T.is(TokenKind::Annotation))
    return parseAnnotation();
  if (!T.is(TokenKind::Identifier))
    return fail("expected statement, found '" + T.Text + "'");
  if (T.Text == "OPENQASM" || T.Text == "OpenQASM")
    return parseVersion();
  if (T.Text == "include")
    return parseInclude();
  if (T.Text == "qreg")
    return parseRegisterDecl(/*Quantum=*/true, /*Qasm3Style=*/false);
  if (T.Text == "creg")
    return parseRegisterDecl(/*Quantum=*/false, /*Qasm3Style=*/false);
  if (T.Text == "qubit")
    return parseRegisterDecl(/*Quantum=*/true, /*Qasm3Style=*/true);
  if (T.Text == "bit")
    return parseRegisterDecl(/*Quantum=*/false, /*Qasm3Style=*/true);
  if (T.Text == "measure")
    return parseMeasure();
  if (T.Text == "barrier")
    return parseBarrier();
  std::string Name = advance().Text;
  return parseGateCall(Name);
}

bool Parser::parseVersion() {
  advance(); // OPENQASM
  if (!peek().is(TokenKind::Number))
    return fail("expected version number after OPENQASM");
  Program.Version = advance().Text;
  return expectPunct(';');
}

bool Parser::parseInclude() {
  advance(); // include
  if (!peek().is(TokenKind::String))
    return fail("expected string after include");
  advance();
  return expectPunct(';');
}

bool Parser::parseRegisterDecl(bool Quantum, bool Qasm3Style) {
  advance(); // keyword
  std::string Name;
  int Size = 1;
  if (Qasm3Style) {
    // qubit[5] q;
    if (peek().isPunct('[')) {
      advance();
      if (!parseInt(Size))
        return false;
      if (!expectPunct(']'))
        return false;
    }
    if (!peek().is(TokenKind::Identifier))
      return fail("expected register name");
    Name = advance().Text;
  } else {
    // qreg q[5];
    if (!peek().is(TokenKind::Identifier))
      return fail("expected register name");
    Name = advance().Text;
    if (peek().isPunct('[')) {
      advance();
      if (!parseInt(Size))
        return false;
      if (!expectPunct(']'))
        return false;
    }
  }
  if (Size <= 0)
    return fail("register size must be positive");
  auto &Map = Quantum ? QuantumRegs : ClassicalRegs;
  int &Total = Quantum ? Program.NumQubits : Program.NumBits;
  if (!Map.emplace(Name, std::make_pair(Total, Size)).second)
    return fail("redeclaration of register '" + Name + "'");
  Total += Size;
  return expectPunct(';');
}

bool Parser::parseInt(int &Out) {
  if (!peek().is(TokenKind::Number))
    return fail("expected integer, found '" + peek().Text + "'");
  Out = static_cast<int>(advance().NumberValue);
  return true;
}

bool Parser::parseSignedNumber(double &Out) {
  double Sign = 1;
  while (peek().isPunct('-') || peek().isPunct('+')) {
    if (advance().Text == "-")
      Sign = -Sign;
  }
  if (!peek().is(TokenKind::Number))
    return fail("expected number, found '" + peek().Text + "'");
  Out = Sign * advance().NumberValue;
  return true;
}

// '[' v (',' v)* ']' with optional commas, shared by every bracketed
// annotation list.
bool Parser::parseIntList(std::vector<int> &Out) {
  if (!expectPunct('['))
    return false;
  while (!peek().isPunct(']')) {
    int V;
    if (!parseInt(V))
      return false;
    Out.push_back(V);
    if (peek().isPunct(','))
      advance();
  }
  advance(); // ']'
  return true;
}

bool Parser::parseNumberList(std::vector<double> &Out) {
  if (!expectPunct('['))
    return false;
  while (!peek().isPunct(']')) {
    double V;
    if (!parseSignedNumber(V))
      return false;
    Out.push_back(V);
    if (peek().isPunct(','))
      advance();
  }
  advance(); // ']'
  return true;
}

bool Parser::parseQubitRef(int &FlatIndex) {
  if (!peek().is(TokenKind::Identifier))
    return fail("expected qubit reference");
  std::string Name = advance().Text;
  auto It = QuantumRegs.find(Name);
  if (It == QuantumRegs.end())
    return fail("unknown quantum register '" + Name + "'");
  int Offset = It->second.first, Size = It->second.second;
  if (peek().isPunct('[')) {
    advance();
    int Index;
    if (!parseInt(Index))
      return false;
    if (!expectPunct(']'))
      return false;
    if (Index < 0 || Index >= Size)
      return fail("qubit index out of range for register '" + Name + "'");
    FlatIndex = Offset + Index;
    return true;
  }
  if (Size != 1)
    return fail("unindexed reference to multi-qubit register '" + Name + "'");
  FlatIndex = Offset;
  return true;
}

bool Parser::parseBitRef(int &FlatIndex) {
  if (!peek().is(TokenKind::Identifier))
    return fail("expected bit reference");
  std::string Name = advance().Text;
  auto It = ClassicalRegs.find(Name);
  if (It == ClassicalRegs.end())
    return fail("unknown classical register '" + Name + "'");
  int Offset = It->second.first, Size = It->second.second;
  if (peek().isPunct('[')) {
    advance();
    int Index;
    if (!parseInt(Index))
      return false;
    if (!expectPunct(']'))
      return false;
    if (Index < 0 || Index >= Size)
      return fail("bit index out of range for register '" + Name + "'");
    FlatIndex = Offset + Index;
    return true;
  }
  if (Size != 1)
    return fail("unindexed reference to multi-bit register '" + Name + "'");
  FlatIndex = Offset;
  return true;
}

// expr := term (('+'|'-') term)*
bool Parser::parseParamExpr(double &Out) {
  if (!parseParamTerm(Out))
    return false;
  while (peek().isPunct('+') || peek().isPunct('-')) {
    bool Add = advance().Text == "+";
    double Rhs;
    if (!parseParamTerm(Rhs))
      return false;
    Out = Add ? Out + Rhs : Out - Rhs;
  }
  return true;
}

// term := factor (('*'|'/') factor)*
bool Parser::parseParamTerm(double &Out) {
  if (!parseParamFactor(Out))
    return false;
  while (peek().isPunct('*') || peek().isPunct('/')) {
    bool Mul = advance().Text == "*";
    double Rhs;
    if (!parseParamFactor(Rhs))
      return false;
    if (!Mul && Rhs == 0)
      return fail("division by zero in parameter expression");
    Out = Mul ? Out * Rhs : Out / Rhs;
  }
  return true;
}

// factor := ('-'|'+') factor | number | 'pi' | '(' expr ')'
bool Parser::parseParamFactor(double &Out) {
  if (peek().isPunct('-') || peek().isPunct('+')) {
    bool Negate = advance().Text == "-";
    if (!parseParamFactor(Out))
      return false;
    if (Negate)
      Out = -Out;
    return true;
  }
  if (peek().is(TokenKind::Number)) {
    Out = advance().NumberValue;
    return true;
  }
  if (peek().isIdent("pi")) {
    advance();
    Out = Pi;
    return true;
  }
  if (peek().isPunct('(')) {
    advance();
    if (!parseParamExpr(Out))
      return false;
    return expectPunct(')');
  }
  return fail("expected parameter expression, found '" + peek().Text + "'");
}

bool Parser::parseGateCall(const std::string &Name) {
  GateKind Kind;
  if (!circuit::parseGateName(Name, Kind))
    return fail("unknown gate '" + Name + "'");

  std::vector<double> Params;
  if (peek().isPunct('(')) {
    advance();
    if (!peek().isPunct(')')) {
      for (;;) {
        double Value;
        if (!parseParamExpr(Value))
          return false;
        Params.push_back(Value);
        if (!peek().isPunct(','))
          break;
        advance();
      }
    }
    if (!expectPunct(')'))
      return false;
  }
  if (Params.size() != circuit::gateNumParams(Kind))
    return fail("gate '" + Name + "' expects " +
                std::to_string(circuit::gateNumParams(Kind)) +
                " parameter(s), got " + std::to_string(Params.size()));

  std::vector<int> Qubits;
  for (;;) {
    int Q;
    if (!parseQubitRef(Q))
      return false;
    Qubits.push_back(Q);
    if (!peek().isPunct(','))
      break;
    advance();
  }
  if (!expectPunct(';'))
    return false;
  if (Qubits.size() != circuit::gateArity(Kind))
    return fail("gate '" + Name + "' expects " +
                std::to_string(circuit::gateArity(Kind)) + " qubit(s), got " +
                std::to_string(Qubits.size()));
  for (size_t I = 0; I < Qubits.size(); ++I)
    for (size_t J = I + 1; J < Qubits.size(); ++J)
      if (Qubits[I] == Qubits[J])
        return fail("duplicate qubit operand in gate '" + Name + "'");

  GateStatement Stmt;
  switch (Qubits.size()) {
  case 1:
    Stmt.Gate = Params.empty() ? Gate(Kind, {Qubits[0]})
                : Params.size() == 1
                    ? Gate(Kind, {Qubits[0]}, {Params[0]})
                    : Gate(Kind, {Qubits[0]}, {Params[0], Params[1], Params[2]});
    break;
  case 2:
    Stmt.Gate = Params.empty() ? Gate(Kind, {Qubits[0], Qubits[1]})
                               : Gate(Kind, {Qubits[0], Qubits[1]}, {Params[0]});
    break;
  case 3:
    Stmt.Gate = Gate(Kind, {Qubits[0], Qubits[1], Qubits[2]});
    break;
  default:
    return fail("unsupported operand count");
  }
  Stmt.Annotations = std::move(PendingAnnotations);
  PendingAnnotations.clear();
  Program.Statements.push_back(std::move(Stmt));
  return true;
}

bool Parser::parseMeasure() {
  advance(); // measure
  int Qubit;
  if (!parseQubitRef(Qubit))
    return false;
  if (peek().isPunct('-')) { // QASM2 arrow: measure q[0] -> c[0];
    advance();
    if (!expectPunct('>'))
      return false;
    int Bit;
    if (!parseBitRef(Bit))
      return false;
  }
  if (!expectPunct(';'))
    return false;
  GateStatement Stmt;
  Stmt.Gate = Gate(GateKind::Measure, {Qubit});
  Stmt.Annotations = std::move(PendingAnnotations);
  PendingAnnotations.clear();
  Program.Statements.push_back(std::move(Stmt));
  return true;
}

bool Parser::parseBarrier() {
  advance(); // barrier
  // Operand lists are accepted but the IR barrier spans all qubits.
  while (!peek().isPunct(';')) {
    int Q;
    if (!parseQubitRef(Q))
      return false;
    if (peek().isPunct(','))
      advance();
  }
  advance(); // ';'
  GateStatement Stmt;
  Stmt.Gate = Gate(GateKind::Barrier, {});
  Stmt.Annotations = std::move(PendingAnnotations);
  PendingAnnotations.clear();
  Program.Statements.push_back(std::move(Stmt));
  return true;
}

bool Parser::parseAnnotation() {
  std::string Keyword = advance().Text;
  Annotation A;
  if (Keyword == "slm") {
    if (!expectPunct('['))
      return false;
    std::vector<Vec2> Traps;
    while (!peek().isPunct(']')) {
      if (!expectPunct('('))
        return false;
      double X, Y;
      if (!parseSignedNumber(X))
        return false;
      if (!expectPunct(','))
        return false;
      if (!parseSignedNumber(Y))
        return false;
      if (!expectPunct(')'))
        return false;
      Traps.push_back(Vec2{X, Y});
      if (peek().isPunct(','))
        advance();
    }
    advance(); // ']'
    A = Annotation::slm(std::move(Traps));
  } else if (Keyword == "aod") {
    std::vector<double> Xs, Ys;
    if (!parseNumberList(Xs) || !parseNumberList(Ys))
      return false;
    A = Annotation::aod(std::move(Xs), std::move(Ys));
  } else if (Keyword == "bind") {
    int Qubit;
    if (!parseQubitRefOrIndex(Qubit))
      return false;
    if (peek().isIdent("slm")) {
      advance();
      int Index;
      if (!parseInt(Index))
        return false;
      A = Annotation::bindSlm(Qubit, Index);
    } else if (peek().isIdent("aod")) {
      advance();
      int Col, Row;
      if (!parseInt(Col) || !parseInt(Row))
        return false;
      A = Annotation::bindAod(Qubit, Col, Row);
    } else {
      return fail("expected 'slm' or 'aod' in @bind");
    }
  } else if (Keyword == "transfer") {
    int SlmIndex, Col, Row;
    if (!parseInt(SlmIndex))
      return false;
    if (!expectPunct('('))
      return false;
    if (!parseInt(Col))
      return false;
    if (!expectPunct(','))
      return false;
    if (!parseInt(Row))
      return false;
    if (!expectPunct(')'))
      return false;
    A = Annotation::transfer(SlmIndex, Col, Row);
  } else if (Keyword == "shuttle") {
    bool Row, Parallel;
    if (peek().isIdent("row"))
      Row = true, Parallel = false;
    else if (peek().isIdent("column"))
      Row = false, Parallel = false;
    else if (peek().isIdent("rows"))
      Row = true, Parallel = true;
    else if (peek().isIdent("columns"))
      Row = false, Parallel = true;
    else
      return fail("expected 'row', 'column', 'rows' or 'columns' in "
                  "@shuttle");
    advance();
    if (Parallel) {
      // @shuttle rows|columns [i0, i1, ...] [off0, off1, ...]
      std::vector<int> Indices;
      std::vector<double> Offsets;
      if (!parseIntList(Indices) || !parseNumberList(Offsets))
        return false;
      if (Indices.size() != Offsets.size())
        return fail("@shuttle parallel form needs one offset per index");
      A = Annotation::shuttleParallel(Row, std::move(Indices),
                                      std::move(Offsets));
    } else {
      int Index;
      double Offset;
      if (!parseInt(Index) || !parseSignedNumber(Offset))
        return false;
      A = Annotation::shuttle(Row, Index, Offset);
    }
  } else if (Keyword == "raman") {
    bool Global;
    if (peek().isIdent("global"))
      Global = true;
    else if (peek().isIdent("local"))
      Global = false;
    else
      return fail("expected 'global' or 'local' in @raman");
    advance();
    int Qubit = -1;
    if (!Global && !parseQubitRefOrIndex(Qubit))
      return false;
    double X, Y, Z;
    if (!parseSignedNumber(X) || !parseSignedNumber(Y) ||
        !parseSignedNumber(Z))
      return false;
    A = Global ? Annotation::ramanGlobal(X, Y, Z)
               : Annotation::ramanLocal(Qubit, X, Y, Z);
  } else if (Keyword == "rydberg") {
    A = Annotation::rydberg();
  } else {
    return fail("unknown annotation '@" + Keyword + "'");
  }
  PendingAnnotations.push_back(std::move(A));
  return true;
}

bool Parser::parseQubitRefOrIndex(int &FlatIndex) {
  if (peek().is(TokenKind::Number)) {
    FlatIndex = static_cast<int>(advance().NumberValue);
    return true;
  }
  return parseQubitRef(FlatIndex);
}

} // namespace

Expected<WqasmProgram> qasm::parseWqasm(std::string_view Source) {
  std::string LexError;
  std::vector<Token> Tokens = tokenize(Source, LexError);
  if (!LexError.empty())
    return Expected<WqasmProgram>::error(LexError);
  return Parser(std::move(Tokens)).run();
}

Expected<circuit::Circuit> qasm::parseQasmCircuit(std::string_view Source) {
  auto Program = parseWqasm(Source);
  if (!Program)
    return Expected<circuit::Circuit>::error(Program.message());
  return Program->toCircuit();
}
