//===- qasm/Annotation.cpp - wQASM FPQA annotations ------------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "qasm/Annotation.h"

#include "support/StringUtils.h"

using namespace weaver;
using namespace weaver::qasm;

const char *qasm::annotationKindName(AnnotationKind Kind) {
  switch (Kind) {
  case AnnotationKind::Slm:
    return "slm";
  case AnnotationKind::Aod:
    return "aod";
  case AnnotationKind::Bind:
    return "bind";
  case AnnotationKind::Transfer:
    return "transfer";
  case AnnotationKind::Shuttle:
  case AnnotationKind::ShuttleParallel:
    return "shuttle";
  case AnnotationKind::RamanGlobal:
  case AnnotationKind::RamanLocal:
    return "raman";
  case AnnotationKind::Rydberg:
    return "rydberg";
  }
  return "";
}

std::string Annotation::str() const {
  std::string Out = "@";
  Out += annotationKindName(Kind);
  switch (Kind) {
  case AnnotationKind::Slm: {
    Out += " [";
    for (size_t I = 0; I < TrapPositions.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "(" + formatDouble(TrapPositions[I].X) + ", " +
             formatDouble(TrapPositions[I].Y) + ")";
    }
    Out += "]";
    break;
  }
  case AnnotationKind::Aod: {
    auto RenderList = [](const std::vector<double> &Vals) {
      std::string S = "[";
      for (size_t I = 0; I < Vals.size(); ++I) {
        if (I)
          S += ", ";
        S += formatDouble(Vals[I]);
      }
      return S + "]";
    };
    Out += " " + RenderList(AodXs) + " " + RenderList(AodYs);
    break;
  }
  case AnnotationKind::Bind:
    Out += " q[" + std::to_string(Qubit) + "]";
    if (BindToSlm)
      Out += " slm " + std::to_string(SlmIndex);
    else
      Out += " aod " + std::to_string(AodCol) + " " + std::to_string(AodRow);
    break;
  case AnnotationKind::Transfer:
    Out += " " + std::to_string(SlmIndex) + " (" + std::to_string(AodCol) +
           ", " + std::to_string(AodRow) + ")";
    break;
  case AnnotationKind::Shuttle:
    Out += std::string(" ") + (ShuttleRow ? "row" : "column") + " " +
           std::to_string(ShuttleIndex) + " " + formatDouble(Offset);
    break;
  case AnnotationKind::ShuttleParallel: {
    Out += std::string(" ") + (ShuttleRow ? "rows" : "columns") + " [";
    for (size_t I = 0; I < ShuttleIndices.size(); ++I) {
      if (I)
        Out += ", ";
      Out += std::to_string(ShuttleIndices[I]);
    }
    Out += "] [";
    for (size_t I = 0; I < ShuttleOffsets.size(); ++I) {
      if (I)
        Out += ", ";
      Out += formatDouble(ShuttleOffsets[I]);
    }
    Out += "]";
    break;
  }
  case AnnotationKind::RamanGlobal:
    Out += " global " + formatDouble(AngleX) + " " + formatDouble(AngleY) +
           " " + formatDouble(AngleZ);
    break;
  case AnnotationKind::RamanLocal:
    Out += " local q[" + std::to_string(Qubit) + "] " + formatDouble(AngleX) +
           " " + formatDouble(AngleY) + " " + formatDouble(AngleZ);
    break;
  case AnnotationKind::Rydberg:
    break;
  }
  return Out;
}

Annotation Annotation::slm(std::vector<Vec2> Traps) {
  Annotation A;
  A.Kind = AnnotationKind::Slm;
  A.TrapPositions = std::move(Traps);
  return A;
}

Annotation Annotation::aod(std::vector<double> Xs, std::vector<double> Ys) {
  Annotation A;
  A.Kind = AnnotationKind::Aod;
  A.AodXs = std::move(Xs);
  A.AodYs = std::move(Ys);
  return A;
}

Annotation Annotation::bindSlm(int Qubit, int SlmIndex) {
  Annotation A;
  A.Kind = AnnotationKind::Bind;
  A.Qubit = Qubit;
  A.BindToSlm = true;
  A.SlmIndex = SlmIndex;
  return A;
}

Annotation Annotation::bindAod(int Qubit, int Col, int Row) {
  Annotation A;
  A.Kind = AnnotationKind::Bind;
  A.Qubit = Qubit;
  A.BindToSlm = false;
  A.AodCol = Col;
  A.AodRow = Row;
  return A;
}

Annotation Annotation::transfer(int SlmIndex, int Col, int Row) {
  Annotation A;
  A.Kind = AnnotationKind::Transfer;
  A.SlmIndex = SlmIndex;
  A.AodCol = Col;
  A.AodRow = Row;
  return A;
}

Annotation Annotation::shuttle(bool Row, int Index, double Offset) {
  Annotation A;
  A.Kind = AnnotationKind::Shuttle;
  A.ShuttleRow = Row;
  A.ShuttleIndex = Index;
  A.Offset = Offset;
  return A;
}

Annotation Annotation::shuttleParallel(bool Rows, std::vector<int> Indices,
                                       std::vector<double> Offsets) {
  Annotation A;
  A.Kind = AnnotationKind::ShuttleParallel;
  A.ShuttleRow = Rows;
  A.ShuttleIndices = std::move(Indices);
  A.ShuttleOffsets = std::move(Offsets);
  return A;
}

Annotation Annotation::ramanGlobal(double X, double Y, double Z) {
  Annotation A;
  A.Kind = AnnotationKind::RamanGlobal;
  A.AngleX = X;
  A.AngleY = Y;
  A.AngleZ = Z;
  return A;
}

Annotation Annotation::ramanLocal(int Qubit, double X, double Y, double Z) {
  Annotation A;
  A.Kind = AnnotationKind::RamanLocal;
  A.Qubit = Qubit;
  A.AngleX = X;
  A.AngleY = Y;
  A.AngleZ = Z;
  return A;
}

Annotation Annotation::rydberg() {
  Annotation A;
  A.Kind = AnnotationKind::Rydberg;
  return A;
}
