//===- qasm/Printer.cpp - OpenQASM / wQASM emission -----------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "qasm/Printer.h"

#include "support/StringUtils.h"

using namespace weaver;
using namespace weaver::qasm;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

void printStatementLine(std::string &Out, const Gate &G) {
  if (G.kind() == GateKind::Barrier) {
    Out += "barrier;\n";
    return;
  }
  if (G.kind() == GateKind::Measure) {
    Out += "measure q[" + std::to_string(G.qubit(0)) + "];\n";
    return;
  }
  Out += std::string(circuit::gateName(G.kind()));
  if (G.numParams() > 0) {
    Out += "(";
    for (unsigned I = 0, E = G.numParams(); I < E; ++I) {
      if (I)
        Out += ", ";
      Out += formatDouble(G.param(I));
    }
    Out += ")";
  }
  for (unsigned I = 0, E = G.numQubits(); I < E; ++I) {
    Out += I ? ", " : " ";
    Out += "q[" + std::to_string(G.qubit(I)) + "]";
  }
  Out += ";\n";
}

void printHeader(std::string &Out, const std::string &Version, int NumQubits,
                 int NumBits) {
  Out += "OPENQASM " + Version + ";\n";
  if (NumQubits > 0)
    Out += "qubit[" + std::to_string(NumQubits) + "] q;\n";
  if (NumBits > 0)
    Out += "bit[" + std::to_string(NumBits) + "] c;\n";
}

} // namespace

std::string qasm::printOpenQasm(const Circuit &C) {
  std::string Out;
  printHeader(Out, "3.0", C.numQubits(),
              static_cast<int>(C.count(GateKind::Measure)));
  for (const Gate &G : C)
    printStatementLine(Out, G);
  return Out;
}

std::string qasm::printWqasm(const WqasmProgram &Program) {
  std::string Out;
  printHeader(Out, Program.Version, Program.NumQubits, Program.NumBits);
  for (const GateStatement &S : Program.Statements) {
    for (const Annotation &A : S.Annotations)
      Out += A.str() + "\n";
    printStatementLine(Out, S.Gate);
  }
  for (const Annotation &A : Program.TrailingAnnotations)
    Out += A.str() + "\n";
  return Out;
}
