//===- qasm/Lexer.cpp - OpenQASM / wQASM lexer ----------------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "qasm/Lexer.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace weaver;
using namespace weaver::qasm;

std::vector<Token> qasm::tokenize(std::string_view Source,
                                  std::string &ErrorOut) {
  std::vector<Token> Tokens;
  ErrorOut.clear();
  int Line = 1;
  size_t I = 0, N = Source.size();

  auto Push = [&](TokenKind Kind, std::string Text, double Value = 0) {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.NumberValue = Value;
    T.Line = Line;
    Tokens.push_back(std::move(T));
  };

  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '*') {
      I += 2;
      while (I + 1 < N && !(Source[I] == '*' && Source[I + 1] == '/')) {
        if (Source[I] == '\n')
          ++Line;
        ++I;
      }
      I = I + 2 <= N ? I + 2 : N;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      Push(TokenKind::Identifier, std::string(Source.substr(Start, I - Start)));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && I + 1 < N &&
         std::isdigit(static_cast<unsigned char>(Source[I + 1])))) {
      size_t Start = I;
      while (I < N && (std::isdigit(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '.' || Source[I] == 'e' ||
                       Source[I] == 'E' ||
                       ((Source[I] == '+' || Source[I] == '-') && I > Start &&
                        (Source[I - 1] == 'e' || Source[I - 1] == 'E'))))
        ++I;
      std::string Text(Source.substr(Start, I - Start));
      // Bounds-checked, locale-independent parse: the scan above accepts
      // shapes like "1.2.3" or "1e+" that strtod would silently truncate
      // to a prefix; they must be lexer errors, as must ERANGE overflow.
      Expected<double> Value = parseFiniteDouble(Text);
      if (!Value) {
        ErrorOut = "line " + std::to_string(Line) +
                   ": invalid numeric literal '" + Text + "'";
        return Tokens;
      }
      Push(TokenKind::Number, Text, *Value);
      continue;
    }
    if (C == '"') {
      size_t Start = ++I;
      while (I < N && Source[I] != '"')
        ++I;
      if (I == N) {
        ErrorOut = "line " + std::to_string(Line) + ": unterminated string";
        return Tokens;
      }
      Push(TokenKind::String, std::string(Source.substr(Start, I - Start)));
      ++I;
      continue;
    }
    if (C == '@') {
      size_t Start = ++I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      if (I == Start) {
        ErrorOut = "line " + std::to_string(Line) + ": '@' without keyword";
        return Tokens;
      }
      Push(TokenKind::Annotation, std::string(Source.substr(Start, I - Start)));
      continue;
    }
    if (std::string_view(";,()[]{}+-*/=<>").find(C) !=
        std::string_view::npos) {
      Push(TokenKind::Punct, std::string(1, C));
      ++I;
      continue;
    }
    ErrorOut = "line " + std::to_string(Line) + ": unexpected character '" +
               std::string(1, C) + "'";
    return Tokens;
  }
  Push(TokenKind::EndOfFile, "");
  return Tokens;
}
