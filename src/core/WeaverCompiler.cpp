//===- core/WeaverCompiler.cpp - End-to-end Weaver pipeline ---------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/WeaverCompiler.h"

#include "core/pipeline/PassManager.h"
#include "qaoa/Builder.h"

using namespace weaver;
using namespace weaver::core;

Expected<WeaverResult> core::compileWeaver(const sat::CnfFormula &Formula,
                                           const WeaverOptions &Options) {
  WeaverResult Result;

  // Gate-compression decision (§5.4): is CCZ compression profitable on
  // this hardware?
  switch (Options.Compression) {
  case WeaverOptions::CompressionMode::Auto:
    Result.CompressionUsed = Options.Hw.cczCompressionProfitable();
    break;
  case WeaverOptions::CompressionMode::On:
    Result.CompressionUsed = true;
    break;
  case WeaverOptions::CompressionMode::Off:
    Result.CompressionUsed = false;
    break;
  }

  pipeline::CompilationContext Ctx;
  Ctx.Formula = &Formula;
  Ctx.Hw = Options.Hw;
  Ctx.UseDSatur = Options.UseDSatur;
  Ctx.Cache = Options.Cache;
  Ctx.Cancel = Options.Cancel;
  Ctx.Options.Geometry = Options.Geometry;
  Ctx.Options.Qaoa = Options.Qaoa;
  Ctx.Options.UseCompression = Result.CompressionUsed;
  Ctx.Options.ReuseAodAtoms = Options.ReuseAodAtoms;
  Ctx.Options.Measure = Options.Measure;

  // Fig. 3 pipeline: colouring -> zone planning -> colour shuttling ->
  // gate lowering -> pulse emission (the replayed metrics of §8).
  if (Status S = pipeline::PassManager::standardFpqaPipeline().run(Ctx))
    return Expected<WeaverResult>(S);

  Result.Coloring = std::move(Ctx.Coloring);
  Result.Program = std::move(Ctx.Program);
  Result.Stats = Ctx.Stats;
  // The pulse-emission replay derives metrics; like the pre-pipeline
  // implementation, it does not count as compile time.
  Result.CompileSeconds = Ctx.elapsedSeconds("pulse-emission");
  Result.PassTimings = std::move(Ctx.Timings);
  Result.FrontHalfFromCache = Ctx.FrontHalfFromCache;
  Result.ProgramFromCache = Ctx.ProgramFromCache;

  if (Options.RunChecker) {
    // Reference: the hardware-agnostic (uncompressed ladder) circuit.
    qaoa::QaoaParams RefParams = Options.Qaoa;
    RefParams.Measure = false;
    RefParams.UseCompressedClauses = false;
    circuit::Circuit Reference = qaoa::buildQaoaCircuit(Formula, RefParams);
    Result.Check =
        checkWqasm(Result.Program, Options.Hw, &Reference, Options.Checker);
  }
  return Result;
}
