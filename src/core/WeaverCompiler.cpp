//===- core/WeaverCompiler.cpp - End-to-end Weaver pipeline ---------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/WeaverCompiler.h"

#include "qaoa/Builder.h"

#include <chrono>

using namespace weaver;
using namespace weaver::core;

Expected<WeaverResult> core::compileWeaver(const sat::CnfFormula &Formula,
                                           const WeaverOptions &Options) {
  auto Start = std::chrono::steady_clock::now();
  WeaverResult Result;

  // Pass 1: clause colouring (§5.2).
  Result.Coloring = Options.UseDSatur ? colorClausesDSatur(Formula)
                                      : colorClausesFirstFit(Formula);

  // Pass 3 decision: is CCZ compression profitable on this hardware (§5.4)?
  switch (Options.Compression) {
  case WeaverOptions::CompressionMode::Auto:
    Result.CompressionUsed = Options.Hw.cczCompressionProfitable();
    break;
  case WeaverOptions::CompressionMode::On:
    Result.CompressionUsed = true;
    break;
  case WeaverOptions::CompressionMode::Off:
    Result.CompressionUsed = false;
    break;
  }

  // Pass 2 + codegen: colour shuttling and pulse emission.
  CodegenOptions CG;
  CG.Geometry = Options.Geometry;
  CG.Qaoa = Options.Qaoa;
  CG.UseCompression = Result.CompressionUsed;
  CG.ReuseAodAtoms = Options.ReuseAodAtoms;
  CG.Measure = Options.Measure;
  auto Generated =
      generateFpqaProgram(Formula, Result.Coloring, Options.Hw, CG);
  if (!Generated)
    return Expected<WeaverResult>(Generated.status());
  Result.Program = std::move(Generated->Program);

  Result.CompileSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  // Metrics: replay the pulse stream (not part of compile time).
  CodegenResult ForStream;
  ForStream.Program = Result.Program;
  auto Stats =
      fpqa::analyzePulseProgram(ForStream.pulseStream(), Options.Hw);
  if (!Stats)
    return Expected<WeaverResult>(Stats.status());
  Result.Stats = *Stats;

  if (Options.RunChecker) {
    // Reference: the hardware-agnostic (uncompressed ladder) circuit.
    qaoa::QaoaParams RefParams = Options.Qaoa;
    RefParams.Measure = false;
    RefParams.UseCompressedClauses = false;
    circuit::Circuit Reference = qaoa::buildQaoaCircuit(Formula, RefParams);
    Result.Check =
        checkWqasm(Result.Program, Options.Hw, &Reference, Options.Checker);
  }
  return Result;
}
