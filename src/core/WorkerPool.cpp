//===- core/WorkerPool.cpp - Persistent priority worker pool --------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/WorkerPool.h"

#include <algorithm>

using namespace weaver;
using namespace weaver::core;

WorkerPool::WorkerPool(PoolOptions Options) : Capacity(Options.QueueCapacity) {
  int Threads = Options.NumThreads > 0
                    ? Options.NumThreads
                    : static_cast<int>(std::thread::hardware_concurrency());
  Threads = std::max(1, Threads);
  NumWorkers = Threads;
  Workers.reserve(Threads);
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([this]() { workerLoop(); });
}

WorkerPool::~WorkerPool() { shutdown(/*Drain=*/true); }

bool WorkerPool::post(std::function<void()> Task, int Priority) {
  std::unique_lock<std::mutex> Lock(Mutex);
  NotFull.wait(Lock, [this]() {
    return Stopping || Capacity == 0 || Queue.size() < Capacity;
  });
  if (Stopping)
    return false;
  Queue.push(Item{Priority, NextSeq++, std::move(Task)});
  NotEmpty.notify_one();
  return true;
}

WorkerPool::PostResult WorkerPool::tryPost(std::function<void()> Task,
                                           int Priority) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Stopping)
    return PostResult::Stopped;
  if (Capacity != 0 && Queue.size() >= Capacity)
    return PostResult::Full;
  Queue.push(Item{Priority, NextSeq++, std::move(Task)});
  NotEmpty.notify_one();
  return PostResult::Posted;
}

void WorkerPool::shutdown(bool Drain) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping && Workers.empty())
      return;
    Stopping = true;
    if (!Drain)
      Discarding = true;
    NotEmpty.notify_all();
    NotFull.notify_all();
  }
  std::vector<std::thread> ToJoin;
  {
    // Swap out under the lock so concurrent shutdown() calls never join
    // the same thread twice.
    std::lock_guard<std::mutex> Lock(Mutex);
    ToJoin.swap(Workers);
  }
  for (std::thread &T : ToJoin)
    T.join();
  if (!Drain) {
    std::lock_guard<std::mutex> Lock(Mutex);
    while (!Queue.empty())
      Queue.pop();
  }
}

size_t WorkerPool::queueDepth() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Queue.size();
}

void WorkerPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      NotEmpty.wait(Lock, [this]() { return Stopping || !Queue.empty(); });
      if (Discarding || (Stopping && Queue.empty()))
        return;
      // priority_queue::top is const; moving the task out right before
      // pop() is safe because nothing else can observe the element.
      Task = std::move(const_cast<Item &>(Queue.top()).Task);
      Queue.pop();
      NotFull.notify_one();
    }
    Task();
  }
}
