//===- core/WorkerPool.h - Persistent priority worker pool -----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent fixed-size worker pool draining one bounded MPMC priority
/// queue — the execution substrate shared by the CompileService (one task
/// per compile job) and the BatchCompiler (one task per batch slot when a
/// pool is injected). Higher priorities run first; equal priorities run in
/// submission order, so a FIFO workload stays a FIFO. The queue bound
/// applies backpressure: post() blocks while the queue is full instead of
/// letting producers grow it without limit.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_WORKERPOOL_H
#define WEAVER_CORE_WORKERPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace weaver {
namespace core {

/// WorkerPool configuration.
struct PoolOptions {
  /// Worker threads; 0 selects std::thread::hardware_concurrency()
  /// (minimum 1).
  int NumThreads = 0;
  /// Maximum queued (not yet running) tasks; post() blocks at the bound.
  /// 0 means unbounded.
  size_t QueueCapacity = 0;
};

/// Fixed-size thread pool over a bounded priority queue.
class WorkerPool {
public:
  explicit WorkerPool(PoolOptions Options = {});
  /// Drains the queue and joins the workers (shutdown(/*Drain=*/true)).
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Enqueues \p Task; blocks while the queue is at capacity. Returns
  /// false (dropping the task) once shutdown has begun. Must not be
  /// called from a worker of this pool when the queue is bounded: a full
  /// queue would then deadlock against the blocked worker.
  bool post(std::function<void()> Task, int Priority = 0);

  /// Outcome of a non-blocking tryPost.
  enum class PostResult { Posted, Full, Stopped };

  /// Non-blocking post: never waits on the queue bound. Returns Full
  /// (dropping the task) when the queue is at capacity — the admission
  /// layer turns that into load shedding instead of a blocked accept
  /// loop — and Stopped once shutdown has begun.
  PostResult tryPost(std::function<void()> Task, int Priority = 0);

  /// Stops the pool and joins all workers. Drain=true runs every queued
  /// task first; Drain=false discards the queue (running tasks always
  /// finish). Idempotent; post() fails afterwards.
  void shutdown(bool Drain = true);

  /// Immutable after construction (shutdown empties Workers, but the
  /// configured width stays meaningful for diagnostics).
  int numThreads() const { return NumWorkers; }
  /// Tasks currently waiting in the queue (diagnostic snapshot).
  size_t queueDepth() const;

private:
  struct Item {
    int Priority = 0;
    uint64_t Seq = 0;
    std::function<void()> Task;
    /// Max-heap on priority; ties resolve to the oldest submission.
    bool operator<(const Item &Other) const {
      if (Priority != Other.Priority)
        return Priority < Other.Priority;
      return Seq > Other.Seq;
    }
  };

  void workerLoop();

  mutable std::mutex Mutex;
  std::condition_variable NotEmpty; ///< signalled on enqueue/shutdown
  std::condition_variable NotFull;  ///< signalled on dequeue/shutdown
  std::priority_queue<Item> Queue;
  size_t Capacity;
  int NumWorkers = 0;
  uint64_t NextSeq = 0;
  bool Stopping = false;  ///< no further posts accepted
  bool Discarding = false; ///< workers must not pop the remaining queue
  std::vector<std::thread> Workers;
};

} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_WORKERPOOL_H
