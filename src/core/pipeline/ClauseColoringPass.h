//===- core/pipeline/ClauseColoringPass.h - Colouring pass -----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline stage 1 (paper §5.2, Algorithm 1): partitions the formula's
/// clause conflict graph into variable-disjoint colour groups with DSatur
/// (or the first-fit ablation). When the driver supplied a colouring
/// (Ctx.HasColoring) the pass validates it instead of recolouring.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_CLAUSECOLORINGPASS_H
#define WEAVER_CORE_PIPELINE_CLAUSECOLORINGPASS_H

#include "core/pipeline/Pass.h"

namespace weaver {
namespace core {
namespace pipeline {

class ClauseColoringPass : public Pass {
public:
  const char *name() const override { return "clause-coloring"; }
  Status run(CompilationContext &Ctx) override;

  /// The colouring depends only on the front-half key (formula, colouring
  /// options); it is cached and restored without re-validation.
  void saveSections(const CompilationContext &Ctx,
                    PassCacheEntryBuilder &Builder) const override;
  bool restoreSections(const PassCacheEntry &Entry,
                       CompilationContext &Ctx) const override;
};

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_CLAUSECOLORINGPASS_H
