//===- core/pipeline/PassManager.h - Pass sequencing -----------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs an ordered list of passes over one CompilationContext, recording a
/// wall-clock timing entry per pass and stopping at the first failure with
/// the failing pass named in the diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_PASSMANAGER_H
#define WEAVER_CORE_PIPELINE_PASSMANAGER_H

#include "core/pipeline/Pass.h"

#include <memory>
#include <vector>

namespace weaver {
namespace core {
namespace pipeline {

/// Sequences passes over a compilation context.
class PassManager {
public:
  /// Appends \p P to the pipeline; returns *this for chaining.
  PassManager &addPass(std::unique_ptr<Pass> P);

  /// Convenience: constructs and appends a pass in place.
  template <typename PassT, typename... ArgTs>
  PassManager &add(ArgTs &&...Args) {
    return addPass(std::make_unique<PassT>(std::forward<ArgTs>(Args)...));
  }

  /// Number of registered passes.
  size_t size() const { return Passes.size(); }

  /// Runs every pass in order. Each pass appends a PassTiming to
  /// Ctx.Timings (also for the failing pass). The first failure aborts the
  /// pipeline with the pass name prefixed to the diagnostic.
  Status run(CompilationContext &Ctx) const;

  /// Builds the standard FPQA pipeline of the paper's Fig. 3:
  /// ClauseColoring -> ZonePlanning -> ShuttleScheduling -> GateLowering
  /// -> PulseEmission.
  static PassManager standardFpqaPipeline();

  /// Builds the codegen-only tail used by generateFpqaProgram: the caller
  /// supplies the colouring and no pulse replay is wanted.
  static PassManager codegenPipeline();

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_PASSMANAGER_H
