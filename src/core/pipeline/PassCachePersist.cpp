//===- core/pipeline/PassCachePersist.cpp - On-disk PassCache -------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable half of the PassCache: serialization of both cache tiers
/// to the versioned, checksummed snapshot format described in
/// PassCache.h, mmap-backed loading with a lazily materialized section
/// index, and the shard-segment merge step.
///
/// Payload layout (after the 40-byte header):
///
///   u64 pool count
///     per pool slot: u64 byte length + FrontHalfSections payload
///   u64 front-tier entry count
///     per entry: key (u64 word count + words) + u64 pool index
///   u64 program-tier entry count
///     per entry: key + u64 pool index (the linked front sections)
///                + u64 byte length + ProgramSections payload
///
/// The pool deduplicates front sections shared between a front-tier
/// entry and the program templates built on it. Entries are sorted by
/// key payload, so saving the same cache twice produces identical bytes.
///
/// Every parse runs through the bounds-checked BinaryReader and
/// validates enum ranges and angle-slot indices, so even a crafted
/// checksum-valid payload can only ever produce a cache miss — never an
/// out-of-bounds access at instantiation time.
///
//===----------------------------------------------------------------------===//

#include "core/pipeline/PassCache.h"

#include "support/BinaryIO.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <unordered_map>

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;

#ifndef WEAVER_GIT_HASH
#define WEAVER_GIT_HASH "unknown"
#endif

uint64_t pipeline::compilerFingerprint() {
  const char Hash[] = WEAVER_GIT_HASH;
  uint64_t H = fnv1a64(Hash, sizeof(Hash) - 1);
  // Option-schema identity: the sizes the key serializers enumerate by
  // hand (their static_asserts force a review here too) plus the enum
  // cardinalities the section payloads depend on.
  const uint64_t Schema[] = {
      SnapshotFormatVersion,
      sizeof(core::Layout),
      sizeof(fpqa::HardwareParams),
      sizeof(AngleSlot),
      circuit::NumGateKinds,
      static_cast<uint64_t>(qasm::AnnotationKind::Rydberg) + 1,
  };
  return fnv1a64(Schema, sizeof(Schema), H);
}

// --- Section serializers -------------------------------------------------

namespace {

/// Exact-payload lookup over one hash bucket (same helper as the
/// in-memory store in PassCache.cpp).
template <typename T, typename MapT>
const T *findExact(MapT &Map, const PassCacheKey &Key) {
  auto It = Map.find(Key.hash());
  if (It == Map.end())
    return nullptr;
  for (const std::pair<PassCacheKey, T> &Entry : It->second)
    if (Entry.first == Key)
      return &Entry.second;
  return nullptr;
}

void writeAnnotation(const qasm::Annotation &A, BinaryWriter &W) {
  W.writeU8(static_cast<uint8_t>(A.Kind));
  W.writeU64(A.TrapPositions.size());
  for (const Vec2 &P : A.TrapPositions) {
    W.writeF64(P.X);
    W.writeF64(P.Y);
  }
  W.writeU64(A.AodXs.size());
  for (double X : A.AodXs)
    W.writeF64(X);
  W.writeU64(A.AodYs.size());
  for (double Y : A.AodYs)
    W.writeF64(Y);
  W.writeI64(A.Qubit);
  W.writeU8(A.BindToSlm);
  W.writeI64(A.SlmIndex);
  W.writeI64(A.AodCol);
  W.writeI64(A.AodRow);
  W.writeU8(A.ShuttleRow);
  W.writeI64(A.ShuttleIndex);
  W.writeF64(A.Offset);
  W.writeU64(A.ShuttleIndices.size());
  for (int I : A.ShuttleIndices)
    W.writeI64(I);
  W.writeU64(A.ShuttleOffsets.size());
  for (double O : A.ShuttleOffsets)
    W.writeF64(O);
  W.writeF64(A.AngleX);
  W.writeF64(A.AngleY);
  W.writeF64(A.AngleZ);
}

bool readAnnotation(BinaryReader &R, qasm::Annotation &A) {
  uint8_t Kind = R.readU8();
  if (Kind > static_cast<uint8_t>(qasm::AnnotationKind::Rydberg)) {
    R.fail();
    return false;
  }
  A.Kind = static_cast<qasm::AnnotationKind>(Kind);
  size_t N = R.readLength(16);
  A.TrapPositions.resize(N);
  for (Vec2 &P : A.TrapPositions) {
    P.X = R.readF64();
    P.Y = R.readF64();
  }
  N = R.readLength(8);
  A.AodXs.resize(N);
  for (double &X : A.AodXs)
    X = R.readF64();
  N = R.readLength(8);
  A.AodYs.resize(N);
  for (double &Y : A.AodYs)
    Y = R.readF64();
  A.Qubit = static_cast<int>(R.readI64());
  A.BindToSlm = R.readU8() != 0;
  A.SlmIndex = static_cast<int>(R.readI64());
  A.AodCol = static_cast<int>(R.readI64());
  A.AodRow = static_cast<int>(R.readI64());
  A.ShuttleRow = R.readU8() != 0;
  A.ShuttleIndex = static_cast<int>(R.readI64());
  A.Offset = R.readF64();
  N = R.readLength(8);
  A.ShuttleIndices.resize(N);
  for (int &I : A.ShuttleIndices)
    I = static_cast<int>(R.readI64());
  N = R.readLength(8);
  A.ShuttleOffsets.resize(N);
  for (double &O : A.ShuttleOffsets)
    O = R.readF64();
  A.AngleX = R.readF64();
  A.AngleY = R.readF64();
  A.AngleZ = R.readF64();
  return R.ok();
}

void writeAnnotationList(const std::vector<qasm::Annotation> &List,
                         BinaryWriter &W) {
  W.writeU64(List.size());
  for (const qasm::Annotation &A : List)
    writeAnnotation(A, W);
}

bool readAnnotationList(BinaryReader &R, std::vector<qasm::Annotation> &List) {
  // Minimum encoded annotation: kind + 5 empty vectors + the fixed
  // integer/double fields = 1 + 5*8 + 4*8 + 2 + 5*8 = 115 bytes.
  size_t N = R.readLength(115);
  List.resize(N);
  for (qasm::Annotation &A : List)
    if (!readAnnotation(R, A))
      return false;
  return R.ok();
}

void serializeFront(const FrontHalfSections &S, BinaryWriter &W) {
  W.writeU64(S.Coloring.ColorOf.size());
  for (int C : S.Coloring.ColorOf)
    W.writeI64(C);
  W.writeU64(S.Coloring.ClausesByColor.size());
  for (const std::vector<size_t> &Group : S.Coloring.ClausesByColor) {
    W.writeU64(Group.size());
    for (size_t I : Group)
      W.writeU64(I);
  }
  W.writeU64(S.Plans.size());
  for (const ColorPlan &P : S.Plans) {
    W.writeU64(P.Clauses.size());
    for (const ClausePlan &C : P.Clauses) {
      W.writeU64(C.ClauseIndex);
      W.writeI64(C.Width);
      W.writeI64(C.Site);
      W.writeF64(C.SiteX);
      W.writeI64(C.Left);
      W.writeI64(C.Target);
      W.writeI64(C.Right);
      W.writeI64(C.ColLeft);
      W.writeI64(C.ColTarget);
      W.writeI64(C.ColRight);
      W.writeI64(C.TargetTrap);
    }
    W.writeU64(P.Slots.size());
    for (const Slot &S2 : P.Slots) {
      W.writeI64(S2.Qubit);
      W.writeI64(S2.Column);
      W.writeF64(S2.RestX);
    }
  }
  W.writeU64(S.SlmTraps.size());
  for (const Vec2 &T : S.SlmTraps) {
    W.writeF64(T.X);
    W.writeF64(T.Y);
  }
  W.writeU64(S.ZoneSiteTrap.size());
  for (const auto &Entry : S.ZoneSiteTrap) {
    W.writeI64(Entry.first.first);
    W.writeI64(Entry.first.second);
    W.writeI64(Entry.second);
  }
  W.writeI64(S.NumColumns);
}

bool parseFront(BinaryReader &R, FrontHalfSections &S) {
  size_t N = R.readLength(8);
  S.Coloring.ColorOf.resize(N);
  for (int &C : S.Coloring.ColorOf)
    C = static_cast<int>(R.readI64());
  N = R.readLength(8);
  S.Coloring.ClausesByColor.resize(N);
  for (std::vector<size_t> &Group : S.Coloring.ClausesByColor) {
    size_t M = R.readLength(8);
    Group.resize(M);
    for (size_t &I : Group)
      I = static_cast<size_t>(R.readU64());
  }
  N = R.readLength(16);
  S.Plans.resize(N);
  for (ColorPlan &P : S.Plans) {
    size_t M = R.readLength(88);
    P.Clauses.resize(M);
    for (ClausePlan &C : P.Clauses) {
      C.ClauseIndex = static_cast<size_t>(R.readU64());
      C.Width = static_cast<int>(R.readI64());
      C.Site = static_cast<int>(R.readI64());
      C.SiteX = R.readF64();
      C.Left = static_cast<int>(R.readI64());
      C.Target = static_cast<int>(R.readI64());
      C.Right = static_cast<int>(R.readI64());
      C.ColLeft = static_cast<int>(R.readI64());
      C.ColTarget = static_cast<int>(R.readI64());
      C.ColRight = static_cast<int>(R.readI64());
      C.TargetTrap = static_cast<int>(R.readI64());
    }
    M = R.readLength(24);
    P.Slots.resize(M);
    for (Slot &S2 : P.Slots) {
      S2.Qubit = static_cast<int>(R.readI64());
      S2.Column = static_cast<int>(R.readI64());
      S2.RestX = R.readF64();
    }
  }
  N = R.readLength(16);
  S.SlmTraps.resize(N);
  for (Vec2 &T : S.SlmTraps) {
    T.X = R.readF64();
    T.Y = R.readF64();
  }
  N = R.readLength(24);
  for (size_t I = 0; I < N && R.ok(); ++I) {
    int Zone = static_cast<int>(R.readI64());
    int Site = static_cast<int>(R.readI64());
    int Trap = static_cast<int>(R.readI64());
    S.ZoneSiteTrap[{Zone, Site}] = Trap;
  }
  S.NumColumns = static_cast<int>(R.readI64());
  return R.ok();
}

void serializeProgram(const ProgramSections &S, BinaryWriter &W) {
  const qasm::WqasmProgram &P = S.Program;
  W.writeString(P.Version);
  W.writeI64(P.NumQubits);
  W.writeI64(P.NumBits);
  W.writeU64(P.Statements.size());
  for (const qasm::GateStatement &St : P.Statements) {
    W.writeU8(static_cast<uint8_t>(St.Gate.kind()));
    for (unsigned I = 0; I < 3; ++I)
      W.writeI64(I < St.Gate.numQubits() ? St.Gate.qubit(I) : 0);
    for (unsigned I = 0; I < 3; ++I)
      W.writeF64(I < St.Gate.numParams() ? St.Gate.param(I) : 0.0);
    writeAnnotationList(St.Annotations, W);
  }
  writeAnnotationList(P.TrailingAnnotations, W);
  W.writeU64(S.AngleSlots.size());
  for (const AngleSlot &A : S.AngleSlots) {
    W.writeU32(A.Statement);
    W.writeU32(A.Annotation);
    W.writeU8(static_cast<uint8_t>(A.Where));
    W.writeU8(static_cast<uint8_t>(A.Dep));
    W.writeF64(A.Coeff);
  }
  const fpqa::PulseStats &T = S.Stats;
  W.writeU64(T.RamanLocalPulses);
  W.writeU64(T.RamanGlobalPulses);
  W.writeU64(T.RydbergPulses);
  W.writeU64(T.ShuttleInstructions);
  W.writeU64(T.ShuttleBatches);
  W.writeU64(T.ShuttleAnnotations);
  W.writeU64(T.MaxParallelShuttleWidth);
  W.writeU64(T.TransferInstructions);
  W.writeU64(T.TransferBatches);
  W.writeU64(T.CzGates);
  W.writeU64(T.CczGates);
  W.writeU64(T.NumAtoms);
  W.writeF64(T.Duration);
  W.writeF64(T.Eps);
}

bool parseProgram(BinaryReader &R, ProgramSections &S) {
  qasm::WqasmProgram &P = S.Program;
  P.Version = R.readString();
  P.NumQubits = static_cast<int>(R.readI64());
  P.NumBits = static_cast<int>(R.readI64());
  // Minimum encoded statement: gate (49) + empty annotation list (8).
  size_t N = R.readLength(57);
  P.Statements.resize(N);
  for (qasm::GateStatement &St : P.Statements) {
    uint8_t Kind = R.readU8();
    if (Kind >= circuit::NumGateKinds) {
      R.fail();
      return false;
    }
    std::array<int, 3> Qubits;
    std::array<double, 3> Params;
    for (int &Q : Qubits)
      Q = static_cast<int>(R.readI64());
    for (double &V : Params)
      V = R.readF64();
    St.Gate = circuit::Gate::fromStorage(static_cast<circuit::GateKind>(Kind),
                                         Qubits, Params);
    if (!readAnnotationList(R, St.Annotations))
      return false;
  }
  if (!readAnnotationList(R, P.TrailingAnnotations))
    return false;
  N = R.readLength(18);
  S.AngleSlots.resize(N);
  for (AngleSlot &A : S.AngleSlots) {
    A.Statement = R.readU32();
    A.Annotation = R.readU32();
    uint8_t Where = R.readU8();
    uint8_t Dep = R.readU8();
    A.Coeff = R.readF64();
    // Validate against the program just parsed: patchProgramAngles
    // indexes statements and annotations unchecked, so a slot that does
    // not point into the template must fail the whole payload.
    if (Where > static_cast<uint8_t>(AngleSlot::Field::AnnotationZ) ||
        Dep > static_cast<uint8_t>(AngleSlot::Param::Beta) ||
        A.Statement >= P.Statements.size()) {
      R.fail();
      return false;
    }
    A.Where = static_cast<AngleSlot::Field>(Where);
    A.Dep = static_cast<AngleSlot::Param>(Dep);
    const qasm::GateStatement &St = P.Statements[A.Statement];
    bool Valid = A.Where == AngleSlot::Field::GateParam0
                     ? St.Gate.numParams() >= 1
                     : A.Annotation < St.Annotations.size();
    if (!Valid) {
      R.fail();
      return false;
    }
  }
  fpqa::PulseStats &T = S.Stats;
  T.RamanLocalPulses = static_cast<size_t>(R.readU64());
  T.RamanGlobalPulses = static_cast<size_t>(R.readU64());
  T.RydbergPulses = static_cast<size_t>(R.readU64());
  T.ShuttleInstructions = static_cast<size_t>(R.readU64());
  T.ShuttleBatches = static_cast<size_t>(R.readU64());
  T.ShuttleAnnotations = static_cast<size_t>(R.readU64());
  T.MaxParallelShuttleWidth = static_cast<size_t>(R.readU64());
  T.TransferInstructions = static_cast<size_t>(R.readU64());
  T.TransferBatches = static_cast<size_t>(R.readU64());
  T.CzGates = static_cast<size_t>(R.readU64());
  T.CczGates = static_cast<size_t>(R.readU64());
  T.NumAtoms = static_cast<size_t>(R.readU64());
  T.Duration = R.readF64();
  T.Eps = R.readF64();
  return R.ok();
}

void writeKey(const PassCacheKey &Key, BinaryWriter &W) {
  W.writeU64(Key.words().size());
  for (uint64_t Word : Key.words())
    W.writeU64(Word);
}

bool readKey(BinaryReader &R, PassCacheKey &Key) {
  size_t N = R.readLength(8);
  std::vector<uint64_t> Words(N);
  for (uint64_t &W : Words)
    W = R.readU64();
  if (!R.ok())
    return false;
  Key = PassCacheKey::fromWords(std::move(Words));
  return true;
}

/// Orders persisted entries deterministically: by key payload, so saving
/// the same cache twice (or the same merged set in any insertion order)
/// produces identical snapshot bytes.
bool keyLess(const PassCacheKey &A, const PassCacheKey &B) {
  return A.words() < B.words();
}

} // namespace

// --- Lazy materialization ------------------------------------------------

bool PassCache::materializeFrontLocked(FrontCell &Cell) {
  if (Cell.Value)
    return true;
  if (!Cell.Blob.File)
    return false;
  BinaryReader R(Cell.Blob.File->data() + Cell.Blob.Offset, Cell.Blob.Len);
  auto S = std::make_shared<FrontHalfSections>();
  if (!parseFront(R, *S) || R.remaining() != 0) {
    // Checksum-valid but malformed (format bug or crafted file): drop the
    // blob so this slot behaves as a plain miss and can be refilled.
    Cell.Blob.File = nullptr;
    return false;
  }
  Cell.Value = std::move(S);
  ++Counts.Materializations;
  return true;
}

bool PassCache::materializeProgramLocked(ProgramCell &Cell) {
  if (!Cell.Front || !materializeFrontLocked(*Cell.Front))
    return false;
  if (Cell.Value)
    return true;
  if (!Cell.Blob.File)
    return false;
  BinaryReader R(Cell.Blob.File->data() + Cell.Blob.Offset, Cell.Blob.Len);
  auto S = std::make_shared<ProgramSections>();
  if (!parseProgram(R, *S) || R.remaining() != 0) {
    Cell.Blob.File = nullptr;
    return false;
  }
  Cell.Value = std::move(S);
  ++Counts.Materializations;
  return true;
}

// --- Snapshot save -------------------------------------------------------

Status PassCache::saveSnapshot(const std::string &Path) const {
  return saveSnapshot(Path, compilerFingerprint());
}

Status PassCache::saveSnapshot(const std::string &Path,
                               uint64_t Fingerprint) const {
  // Simulated crash before any serialization work: the save "fails"
  // leaving whatever snapshot was previously at Path untouched.
  if (fault::fire("persist.save.abort"))
    return Status::error("cannot save " + Path +
                         ": snapshot save aborted (injected fault)");
  std::lock_guard<std::mutex> Lock(Mutex);

  // Deterministic entry order: sort both tiers by key payload.
  std::vector<const std::pair<PassCacheKey, std::shared_ptr<FrontCell>> *>
      FrontEntries;
  for (const auto &Bucket : FrontMap)
    for (const auto &Entry : Bucket.second)
      FrontEntries.push_back(&Entry);
  std::sort(FrontEntries.begin(), FrontEntries.end(),
            [](const auto *A, const auto *B) {
              return keyLess(A->first, B->first);
            });
  std::vector<const std::pair<PassCacheKey, std::shared_ptr<ProgramCell>> *>
      ProgramEntries;
  for (const auto &Bucket : ProgramMap)
    for (const auto &Entry : Bucket.second)
      ProgramEntries.push_back(&Entry);
  std::sort(ProgramEntries.begin(), ProgramEntries.end(),
            [](const auto *A, const auto *B) {
              return keyLess(A->first, B->first);
            });

  // Front-section pool: unique cells, in first-reference order.
  std::unordered_map<const FrontCell *, uint64_t> PoolIndex;
  std::vector<const FrontCell *> Pool;
  auto poolOf = [&](const FrontCell *Cell) {
    auto It = PoolIndex.find(Cell);
    if (It != PoolIndex.end())
      return It->second;
    uint64_t Idx = Pool.size();
    PoolIndex.emplace(Cell, Idx);
    Pool.push_back(Cell);
    return Idx;
  };
  for (const auto *Entry : FrontEntries)
    poolOf(Entry->second.get());
  for (const auto *Entry : ProgramEntries)
    if (Entry->second->Front)
      poolOf(Entry->second->Front.get());

  BinaryWriter W;
  W.writeU64(SnapshotMagic);
  W.writeU32(SnapshotFormatVersion);
  W.writeU32(0);
  W.writeU64(Fingerprint);
  W.writeU64(0); // payload bytes, patched below
  W.writeU64(0); // payload checksum, patched below

  // A cell that was loaded from a snapshot and never materialized is
  // copied verbatim — the payload encoding is position-independent.
  auto writeBlob = [&W](const LazyBlob &Blob) {
    W.writeU64(Blob.Len);
    if (Blob.File)
      W.writeBytes(Blob.File->data() + Blob.Offset, Blob.Len);
  };

  W.writeU64(Pool.size());
  for (const FrontCell *Cell : Pool) {
    if (Cell->Value) {
      BinaryWriter Section;
      serializeFront(*Cell->Value, Section);
      W.writeU64(Section.size());
      W.writeBytes(Section.bytes().data(), Section.size());
    } else {
      writeBlob(Cell->Blob); // empty (len 0) for a dropped bad blob
    }
  }

  W.writeU64(FrontEntries.size());
  for (const auto *Entry : FrontEntries) {
    writeKey(Entry->first, W);
    W.writeU64(PoolIndex.at(Entry->second.get()));
  }

  W.writeU64(ProgramEntries.size());
  for (const auto *Entry : ProgramEntries) {
    writeKey(Entry->first, W);
    const ProgramCell &Cell = *Entry->second;
    W.writeU64(Cell.Front ? PoolIndex.at(Cell.Front.get()) : ~uint64_t{0});
    if (Cell.Value) {
      BinaryWriter Section;
      serializeProgram(*Cell.Value, Section);
      W.writeU64(Section.size());
      W.writeBytes(Section.bytes().data(), Section.size());
    } else {
      writeBlob(Cell.Blob);
    }
  }

  size_t PayloadBytes = W.size() - SnapshotHeaderBytes;
  W.patchU64(24, PayloadBytes);
  W.patchU64(32,
             fnv1a64(W.bytes().data() + SnapshotHeaderBytes, PayloadBytes));
  return writeFileAtomic(Path, W.bytes().data(), W.size());
}

// --- Snapshot load -------------------------------------------------------

Status PassCache::loadSnapshot(const std::string &Path) {
  return loadSnapshot(Path, compilerFingerprint());
}

Status PassCache::loadSnapshot(const std::string &Path,
                               uint64_t ExpectFingerprint) {
  // Simulated unreadable snapshot: same contract as every real reject —
  // nothing inserted, the caller degrades to cold compiles.
  if (fault::fire("persist.load.reject"))
    return Status::error("cache file " + Path +
                         ": rejected (injected fault)");
  Expected<MappedFile> FileOr = MappedFile::open(Path);
  if (!FileOr)
    return FileOr.status();
  auto File = std::make_shared<MappedFile>(FileOr.take());
  if (File->size() < SnapshotHeaderBytes)
    return Status::error("cache file " + Path + ": truncated header");
  BinaryReader Header(File->data(), SnapshotHeaderBytes);
  if (Header.readU64() != SnapshotMagic)
    return Status::error("cache file " + Path + ": not a PassCache snapshot");
  uint32_t Version = Header.readU32();
  Header.readU32(); // reserved
  if (Version != SnapshotFormatVersion)
    return Status::error("cache file " + Path + ": format version " +
                         std::to_string(Version) + " != " +
                         std::to_string(SnapshotFormatVersion));
  uint64_t Fingerprint = Header.readU64();
  if (Fingerprint != ExpectFingerprint)
    return Status::error("cache file " + Path +
                         ": compiler fingerprint mismatch (stale cache "
                         "from another build)");
  uint64_t PayloadBytes = Header.readU64();
  uint64_t Checksum = Header.readU64();
  if (PayloadBytes != File->size() - SnapshotHeaderBytes)
    return Status::error("cache file " + Path + ": truncated payload");
  if (fnv1a64(File->data() + SnapshotHeaderBytes, PayloadBytes) != Checksum)
    return Status::error("cache file " + Path + ": payload checksum mismatch");

  // Parse the full index (keys + blob ranges) before touching the maps,
  // so a malformed payload inserts nothing.
  BinaryReader R(File->data() + SnapshotHeaderBytes, PayloadBytes);
  auto blobRange = [&](LazyBlob &Blob) {
    uint64_t Len = R.readU64();
    if (Len > R.remaining()) {
      R.fail();
      return;
    }
    Blob.File = Len ? File : nullptr; // a zero-length blob stays a miss
    Blob.Offset = SnapshotHeaderBytes + R.position();
    Blob.Len = static_cast<size_t>(Len);
    R.skip(static_cast<size_t>(Len));
  };

  size_t PoolCount = R.readLength(8);
  std::vector<std::shared_ptr<FrontCell>> Pool;
  Pool.reserve(PoolCount);
  for (size_t I = 0; I < PoolCount && R.ok(); ++I) {
    auto Cell = std::make_shared<FrontCell>();
    blobRange(Cell->Blob);
    Pool.push_back(std::move(Cell));
  }

  std::vector<std::pair<PassCacheKey, std::shared_ptr<FrontCell>>> Fronts;
  size_t FrontCount = R.readLength(16);
  for (size_t I = 0; I < FrontCount && R.ok(); ++I) {
    PassCacheKey Key;
    if (!readKey(R, Key))
      break;
    uint64_t Idx = R.readU64();
    if (Idx >= Pool.size()) {
      R.fail();
      break;
    }
    Fronts.emplace_back(std::move(Key), Pool[Idx]);
  }

  std::vector<std::pair<PassCacheKey, std::shared_ptr<ProgramCell>>> Programs;
  size_t ProgramCount = R.readLength(24);
  for (size_t I = 0; I < ProgramCount && R.ok(); ++I) {
    PassCacheKey Key;
    if (!readKey(R, Key))
      break;
    uint64_t Idx = R.readU64();
    if (Idx >= Pool.size()) {
      R.fail();
      break;
    }
    auto Cell = std::make_shared<ProgramCell>();
    Cell->Front = Pool[Idx];
    blobRange(Cell->Blob);
    Programs.emplace_back(std::move(Key), std::move(Cell));
  }
  if (!R.ok() || R.remaining() != 0)
    return Status::error("cache file " + Path + ": malformed payload index");

  // Commit. Existing keys win: a loaded entry never replaces one already
  // inserted (in-process results are at least as fresh).
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &Entry : Fronts) {
    if (MaxEntries && NumEntries >= MaxEntries)
      break;
    if (findExact<std::shared_ptr<FrontCell>>(FrontMap, Entry.first))
      continue;
    FrontMap[Entry.first.hash()].push_back(std::move(Entry));
    ++NumEntries;
  }
  for (auto &Entry : Programs) {
    if (MaxEntries && NumEntries >= MaxEntries)
      break;
    if (findExact<std::shared_ptr<ProgramCell>>(ProgramMap, Entry.first))
      continue;
    ProgramMap[Entry.first.hash()].push_back(std::move(Entry));
    ++NumEntries;
  }
  return Status::success();
}

Status PassCache::mergeSnapshots(const std::vector<std::string> &Inputs,
                                 const std::string &Output) {
  return mergeSnapshots(Inputs, Output, /*Skipped=*/nullptr);
}

Status PassCache::mergeSnapshots(const std::vector<std::string> &Inputs,
                                 const std::string &Output,
                                 std::vector<std::string> *Skipped) {
  PassCache Merged(/*MaxEntries=*/0);
  for (const std::string &Input : Inputs) {
    if (Status S = Merged.loadSnapshot(Input)) {
      if (!Skipped)
        return S;
      // Tolerant mode: a bad segment costs its shard's entries (they
      // recompute as cold misses later), never the whole merge.
      Skipped->push_back(Input + ": " + S.message());
    }
  }
  // Saving a just-loaded cache copies section payloads verbatim, so the
  // merge never materializes a template.
  return Merged.saveSnapshot(Output);
}
