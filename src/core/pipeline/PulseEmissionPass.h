//===- core/pipeline/PulseEmissionPass.h - Pulse stream + stats *- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline stage 5: flattens the annotated program into the executable
/// pulse stream and replays it on a fresh device model to derive the
/// paper's evaluation metrics (pulse counts, execution time, EPS — §8).
/// The replay re-validates every Table 1 pre-condition end to end, so a
/// program that survives this pass is executable by construction.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_PULSEEMISSIONPASS_H
#define WEAVER_CORE_PIPELINE_PULSEEMISSIONPASS_H

#include "core/pipeline/Pass.h"

namespace weaver {
namespace core {
namespace pipeline {

class PulseEmissionPass : public Pass {
public:
  const char *name() const override { return "pulse-emission"; }
  Status run(CompilationContext &Ctx) override;

  /// Pulse statistics never read angle values (durations and fidelities
  /// are per pulse kind), so they are cached with the program template;
  /// restoring re-flattens the patched program and skips the replay — the
  /// template was validated when it was built.
  void saveSections(const CompilationContext &Ctx,
                    PassCacheEntryBuilder &Builder) const override;
  bool restoreSections(const PassCacheEntry &Entry,
                       CompilationContext &Ctx) const override;

  /// Flattens \p Program's annotations into one stream (setup + per
  /// statement + trailing), the order the device executes them in.
  static std::vector<qasm::Annotation>
  flatten(const qasm::WqasmProgram &Program);
};

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_PULSEEMISSIONPASS_H
