//===- core/pipeline/PulseEmissionPass.h - Pulse stream + stats *- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline stage 5: flattens the annotated program into the executable
/// pulse stream and replays it on a fresh device model to derive the
/// paper's evaluation metrics (pulse counts, execution time, EPS — §8).
/// The replay re-validates every Table 1 pre-condition end to end, so a
/// program that survives this pass is executable by construction.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_PULSEEMISSIONPASS_H
#define WEAVER_CORE_PIPELINE_PULSEEMISSIONPASS_H

#include "core/pipeline/Pass.h"

namespace weaver {
namespace core {
namespace pipeline {

class PulseEmissionPass : public Pass {
public:
  const char *name() const override { return "pulse-emission"; }
  Status run(CompilationContext &Ctx) override;
};

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_PULSEEMISSIONPASS_H
