//===- core/pipeline/PulseEmissionPass.h - Pulse stream + stats *- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline stage 5: replays the program's annotations (in execution
/// order, through the zero-copy qasm::AnnotationView) on a fresh device
/// model to derive the paper's evaluation metrics (pulse counts,
/// execution time, EPS — §8), and publishes a non-owning index of the
/// pulse stream. The replay re-validates every Table 1 pre-condition end
/// to end, so a program that survives this pass is executable by
/// construction.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_PULSEEMISSIONPASS_H
#define WEAVER_CORE_PIPELINE_PULSEEMISSIONPASS_H

#include "core/pipeline/Pass.h"

namespace weaver {
namespace core {
namespace pipeline {

class PulseEmissionPass : public Pass {
public:
  const char *name() const override { return "pulse-emission"; }
  Status run(CompilationContext &Ctx) override;

  /// Pulse statistics never read angle values (durations and fidelities
  /// are per pulse kind), so they are cached with the program template;
  /// restoring re-flattens the patched program and skips the replay — the
  /// template was validated when it was built.
  void saveSections(const CompilationContext &Ctx,
                    PassCacheEntryBuilder &Builder) const override;
  bool restoreSections(const PassCacheEntry &Entry,
                       CompilationContext &Ctx) const override;

  /// Indexes \p Program's annotations as one stream of non-owning
  /// pointers (setup + per statement + trailing), the order the device
  /// executes them in. Valid while \p Program is alive and unmutated.
  static std::vector<const qasm::Annotation *>
  flatten(const qasm::WqasmProgram &Program);
};

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_PULSEEMISSIONPASS_H
