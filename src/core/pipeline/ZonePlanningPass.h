//===- core/pipeline/ZonePlanningPass.h - Site placement pass --*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline stage 2 (paper §5.3, Fig. 5): assigns every coloured clause a
/// site in its colour's diagonal zone, lays out the SLM trap plane (home
/// traps plus shared zone target traps), derives each colour's AOD slot
/// list, and sizes the AOD column grid. Purely geometric — no pulses are
/// emitted here.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_ZONEPLANNINGPASS_H
#define WEAVER_CORE_PIPELINE_ZONEPLANNINGPASS_H

#include "core/pipeline/Pass.h"

namespace weaver {
namespace core {
namespace pipeline {

class ZonePlanningPass : public Pass {
public:
  const char *name() const override { return "zone-planning"; }
  Status run(CompilationContext &Ctx) override;

  /// The zone plan depends only on the front-half key (formula, geometry,
  /// colouring); its sections are cached alongside the colouring.
  void saveSections(const CompilationContext &Ctx,
                    PassCacheEntryBuilder &Builder) const override;
  bool restoreSections(const PassCacheEntry &Entry,
                       CompilationContext &Ctx) const override;
};

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_ZONEPLANNINGPASS_H
