//===- core/pipeline/GateLoweringPass.h - Pulse emission pass --*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline stage 4 (paper §5.4, Fig. 7): executes the zone plan and the
/// shuttle schedules, lowering every coloured clause group to annotated
/// wQASM statements. Each clause group emits either the compressed
/// 2-CCZ + 2-CZ fragment or the pure CZ-ladder fallback, surrounded by the
/// planned movement; every annotation is validated against the FpqaDevice
/// state machine as it is emitted, so the produced program satisfies all
/// Table 1 pre-conditions by construction.
///
/// Raman pulse convention: @raman (x, y, z) applies RZ(z) * RY(y) * RX(x)
/// (RX first). The gates the generator needs map to:
///   X       -> (pi, 0, 0)
///   H       -> (0, -pi/2, pi)          (H = RZ(pi) * RY(-pi/2))
///   RX(t)   -> (t, 0, 0)
///   RZ(t)   -> (0, 0, t)
/// all up to global phase.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_GATELOWERINGPASS_H
#define WEAVER_CORE_PIPELINE_GATELOWERINGPASS_H

#include "core/pipeline/Pass.h"

namespace weaver {
namespace core {
namespace pipeline {

class GateLoweringPass : public Pass {
public:
  const char *name() const override { return "gate-lowering"; }
  Status run(CompilationContext &Ctx) override;

  /// At fixed non-angle inputs the emitted program is a template: gamma
  /// and beta appear only as exact power-of-two multiples at positions the
  /// emitter records (Ctx.AngleSlots when Ctx.CollectAngleSlots is set).
  /// Restoring copies the cached template and patches the slots, which is
  /// bit-identical to re-emission.
  void saveSections(const CompilationContext &Ctx,
                    PassCacheEntryBuilder &Builder) const override;
  bool restoreSections(const PassCacheEntry &Entry,
                       CompilationContext &Ctx) const override;
};

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_GATELOWERINGPASS_H
