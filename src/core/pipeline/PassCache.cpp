//===- core/pipeline/PassCache.cpp - Pass-result memoisation --------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/pipeline/PassCache.h"

#include <cstring>

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;

// --- Keys ----------------------------------------------------------------

void PassCacheKey::add(uint64_t Word) { Words.push_back(Word); }

void PassCacheKey::add(double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value), "double is not 64-bit");
  std::memcpy(&Bits, &Value, sizeof(Bits));
  Words.push_back(Bits);
}

void PassCacheKey::finish() {
  // FNV-1a over the payload words.
  uint64_t H = 1469598103934665603ull;
  for (uint64_t W : Words)
    for (int B = 0; B < 8; ++B) {
      H ^= (W >> (8 * B)) & 0xff;
      H *= 1099511628211ull;
    }
  Hash = H;
}

// The key serializers below enumerate every field of Layout and
// HardwareParams by hand. These asserts fail the build when a field is
// added to either struct, forcing the new field into the key (or an
// explicit exemption here) — a forgotten field would mean silent stale
// hits.
static_assert(sizeof(core::Layout) == 13 * sizeof(double),
              "Layout changed: update PassCacheKey::frontHalf");
static_assert(sizeof(fpqa::HardwareParams) == 15 * sizeof(double),
              "HardwareParams changed: update PassCacheKey::program");

PassCacheKey PassCacheKey::frontHalf(const CompilationContext &Ctx) {
  PassCacheKey K;
  const sat::CnfFormula &F = *Ctx.Formula;
  K.add(static_cast<uint64_t>(F.numVariables()));
  K.add(static_cast<uint64_t>(F.numClauses()));
  for (const sat::Clause &C : F.clauses()) {
    for (sat::Literal L : C)
      K.add(static_cast<uint64_t>(static_cast<int64_t>(L.dimacs())));
    // DIMACS-style clause terminator keeps clause boundaries unambiguous.
    K.add(uint64_t{0});
  }
  const Layout &G = Ctx.Options.Geometry;
  K.add(G.HomeSpacing);
  K.add(G.PickupRowY);
  K.add(G.TriangleHalfWidth);
  K.add(G.TriangleHeight);
  K.add(G.SiteSpacing);
  K.add(G.ZoneBaseY);
  K.add(G.ZoneStepY);
  K.add(G.ZoneStepX);
  K.add(static_cast<uint64_t>(G.ZoneCycle));
  K.add(G.CzLift);
  K.add(G.PairShift);
  K.add(G.BumpGap);
  K.add(G.ParkSpacing);
  K.add(static_cast<uint64_t>(Ctx.UseDSatur));
  K.finish();
  return K;
}

PassCacheKey PassCacheKey::program(const PassCacheKey &FrontKey,
                                   const CompilationContext &Ctx) {
  PassCacheKey K = FrontKey;
  K.add(static_cast<uint64_t>(Ctx.Options.Qaoa.Layers));
  K.add(static_cast<uint64_t>(Ctx.Options.UseCompression));
  K.add(static_cast<uint64_t>(Ctx.Options.ReuseAodAtoms));
  K.add(static_cast<uint64_t>(Ctx.Options.Measure));
  K.add(static_cast<uint64_t>(Ctx.Options.Qaoa.Measure));
  K.add(static_cast<uint64_t>(Ctx.Options.Qaoa.UseCompressedClauses));
  const fpqa::HardwareParams &Hw = Ctx.Hw;
  K.add(Hw.MinSlmSeparation);
  K.add(Hw.MinAodSeparation);
  K.add(Hw.MaxTransferDistance);
  K.add(Hw.RydbergRadius);
  K.add(Hw.EquidistanceTolerance);
  K.add(Hw.ShuttleSpeedUmPerSec);
  K.add(Hw.TransferTime);
  K.add(Hw.RamanLocalTime);
  K.add(Hw.RamanGlobalTime);
  K.add(Hw.RydbergTime);
  K.add(Hw.RamanFidelity);
  K.add(Hw.CzFidelity);
  K.add(Hw.CczFidelity);
  K.add(Hw.TransferFidelity);
  K.add(Hw.T2);
  K.finish();
  return K;
}

// --- Store ---------------------------------------------------------------

namespace {

template <typename T, typename MapT>
const T *findExact(MapT &Map, const PassCacheKey &Key) {
  auto It = Map.find(Key.hash());
  if (It == Map.end())
    return nullptr;
  for (const std::pair<PassCacheKey, T> &Entry : It->second)
    if (Entry.first == Key)
      return &Entry.second;
  return nullptr;
}

} // namespace

PassCacheEntry PassCache::lookupProgram(const PassCacheKey &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (const auto *Cell =
          findExact<std::shared_ptr<ProgramCell>>(ProgramMap, Key))
    if (materializeProgramLocked(**Cell)) {
      ++Counts.ProgramHits;
      return {(*Cell)->Front->Value, (*Cell)->Value};
    }
  ++Counts.ProgramMisses;
  return {};
}

std::shared_ptr<const FrontHalfSections>
PassCache::lookupFront(const PassCacheKey &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (const auto *Cell = findExact<std::shared_ptr<FrontCell>>(FrontMap, Key))
    if (materializeFrontLocked(**Cell)) {
      ++Counts.FrontHits;
      return (*Cell)->Value;
    }
  ++Counts.FrontMisses;
  return nullptr;
}

void PassCache::evictForInsertLocked() {
  if (MaxEntries && NumEntries + 1 > MaxEntries) {
    FrontMap.clear();
    ProgramMap.clear(); // also drops any mapped snapshot references
    NumEntries = 0;
  }
}

std::shared_ptr<const FrontHalfSections>
PassCache::insertFront(const PassCacheKey &Key, FrontHalfSections Sections) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (const auto *Cell =
          findExact<std::shared_ptr<FrontCell>>(FrontMap, Key)) {
    // Another worker compiled the same formula first — or the slot came
    // from a snapshot whose payload failed to parse; refill it then.
    if (!(*Cell)->Value)
      (*Cell)->Value =
          std::make_shared<const FrontHalfSections>(std::move(Sections));
    return (*Cell)->Value;
  }
  evictForInsertLocked();
  auto Cell = std::make_shared<FrontCell>();
  Cell->Value = std::make_shared<const FrontHalfSections>(std::move(Sections));
  FrontMap[Key.hash()].push_back({Key, Cell});
  ++NumEntries;
  return Cell->Value;
}

void PassCache::insertProgram(const PassCacheKey &Key,
                              const PassCacheKey &FrontKey,
                              std::shared_ptr<const FrontHalfSections> Front,
                              ProgramSections Sections) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (const auto *Cell =
          findExact<std::shared_ptr<ProgramCell>>(ProgramMap, Key)) {
    if ((*Cell)->Value)
      return;
    // Unparseable snapshot slot: refill it in place.
    (*Cell)->Value =
        std::make_shared<const ProgramSections>(std::move(Sections));
    if (!(*Cell)->Front->Value)
      (*Cell)->Front->Value = std::move(Front);
    return;
  }
  evictForInsertLocked();
  // Link the template to the front cell stored under FrontKey so one
  // front payload serves both tiers (in memory and in a snapshot).
  std::shared_ptr<FrontCell> FCell;
  if (const auto *Existing =
          findExact<std::shared_ptr<FrontCell>>(FrontMap, FrontKey)) {
    FCell = *Existing;
    if (!FCell->Value)
      FCell->Value = std::move(Front);
  } else {
    FCell = std::make_shared<FrontCell>();
    FCell->Value = std::move(Front);
    evictForInsertLocked();
    FrontMap[FrontKey.hash()].push_back({FrontKey, FCell});
    ++NumEntries;
  }
  auto PCell = std::make_shared<ProgramCell>();
  PCell->Front = std::move(FCell);
  PCell->Value = std::make_shared<const ProgramSections>(std::move(Sections));
  ProgramMap[Key.hash()].push_back({Key, std::move(PCell)});
  ++NumEntries;
}

PassCache::CacheStats PassCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counts;
}

size_t PassCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return NumEntries;
}

void PassCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  FrontMap.clear();
  ProgramMap.clear();
  NumEntries = 0;
}

// --- Template instantiation ----------------------------------------------

void pipeline::patchProgramAngles(qasm::WqasmProgram &Program,
                                  const std::vector<AngleSlot> &Slots,
                                  double Gamma, double Beta) {
  for (const AngleSlot &S : Slots) {
    double Value =
        S.Coeff * (S.Dep == AngleSlot::Param::Gamma ? Gamma : Beta);
    qasm::GateStatement &Stmt = Program.Statements[S.Statement];
    switch (S.Where) {
    case AngleSlot::Field::GateParam0:
      Stmt.Gate.setParam(0, Value);
      break;
    case AngleSlot::Field::AnnotationX:
      Stmt.Annotations[S.Annotation].AngleX = Value;
      break;
    case AngleSlot::Field::AnnotationZ:
      Stmt.Annotations[S.Annotation].AngleZ = Value;
      break;
    }
  }
}
