//===- core/pipeline/ShuttleSchedulingPass.h - Shuttle planning *- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline stage 3 (paper §5.3, Algorithm 2): plans the colour-shuttling
/// traffic. For every (layer, colour) boundary it decides — by simulating
/// the AOD row occupancy across the whole execution — which row atoms the
/// next colour can keep in their columns (the ReuseAodAtoms saving), which
/// must return home, which home atoms load onto which columns, and where
/// every column finally parks. The output is a list of BoundarySchedules
/// plus the final unload set; GateLoweringPass turns them into shuttle and
/// transfer pulses without taking any further decisions.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_SHUTTLESCHEDULINGPASS_H
#define WEAVER_CORE_PIPELINE_SHUTTLESCHEDULINGPASS_H

#include "core/pipeline/Pass.h"

namespace weaver {
namespace core {
namespace pipeline {

class ShuttleSchedulingPass : public Pass {
public:
  const char *name() const override { return "shuttle-scheduling"; }
  Status run(CompilationContext &Ctx) override;
};

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_SHUTTLESCHEDULINGPASS_H
