//===- core/pipeline/PulseEmissionPass.cpp - Pulse stream + stats ---------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/pipeline/PulseEmissionPass.h"

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;

std::vector<const qasm::Annotation *>
PulseEmissionPass::flatten(const qasm::WqasmProgram &Program) {
  std::vector<const qasm::Annotation *> Stream;
  Stream.reserve(Program.numAnnotations());
  for (const qasm::Annotation &A : qasm::AnnotationView(Program))
    Stream.push_back(&A);
  return Stream;
}

Status PulseEmissionPass::run(CompilationContext &Ctx) {
  Ctx.PulseStream = flatten(Ctx.Program);

  // Replay straight off the program — no copied stream.
  auto Stats = fpqa::analyzePulseProgram(Ctx.Program, Ctx.Hw);
  if (!Stats)
    return Stats.status();
  Ctx.Stats = *Stats;
  Ctx.HasStats = true;
  return Status::success();
}

void PulseEmissionPass::saveSections(const CompilationContext &Ctx,
                                     PassCacheEntryBuilder &Builder) const {
  Builder.Back.Stats = Ctx.Stats;
  Builder.SavedStats = true;
}

bool PulseEmissionPass::restoreSections(const PassCacheEntry &Entry,
                                        CompilationContext &Ctx) const {
  if (!Entry.Back)
    return false;
  Ctx.PulseStream = flatten(Ctx.Program);
  Ctx.Stats = Entry.Back->Stats;
  Ctx.HasStats = true;
  return true;
}
