//===- core/pipeline/PulseEmissionPass.cpp - Pulse stream + stats ---------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/pipeline/PulseEmissionPass.h"

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;

std::vector<qasm::Annotation>
PulseEmissionPass::flatten(const qasm::WqasmProgram &Program) {
  std::vector<qasm::Annotation> Stream;
  Stream.reserve(Program.numAnnotations());
  for (const qasm::GateStatement &S : Program.Statements)
    for (const qasm::Annotation &A : S.Annotations)
      Stream.push_back(A);
  for (const qasm::Annotation &A : Program.TrailingAnnotations)
    Stream.push_back(A);
  return Stream;
}

Status PulseEmissionPass::run(CompilationContext &Ctx) {
  Ctx.PulseStream = flatten(Ctx.Program);

  auto Stats = fpqa::analyzePulseProgram(Ctx.PulseStream, Ctx.Hw);
  if (!Stats)
    return Stats.status();
  Ctx.Stats = *Stats;
  Ctx.HasStats = true;
  return Status::success();
}

void PulseEmissionPass::saveSections(const CompilationContext &Ctx,
                                     PassCacheEntryBuilder &Builder) const {
  Builder.Back.Stats = Ctx.Stats;
  Builder.SavedStats = true;
}

bool PulseEmissionPass::restoreSections(const PassCacheEntry &Entry,
                                        CompilationContext &Ctx) const {
  if (!Entry.Back)
    return false;
  Ctx.PulseStream = flatten(Ctx.Program);
  Ctx.Stats = Entry.Back->Stats;
  Ctx.HasStats = true;
  return true;
}
