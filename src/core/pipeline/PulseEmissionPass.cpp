//===- core/pipeline/PulseEmissionPass.cpp - Pulse stream + stats ---------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/pipeline/PulseEmissionPass.h"

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;

Status PulseEmissionPass::run(CompilationContext &Ctx) {
  Ctx.PulseStream.clear();
  for (const qasm::GateStatement &S : Ctx.Program.Statements)
    for (const qasm::Annotation &A : S.Annotations)
      Ctx.PulseStream.push_back(A);
  for (const qasm::Annotation &A : Ctx.Program.TrailingAnnotations)
    Ctx.PulseStream.push_back(A);

  auto Stats = fpqa::analyzePulseProgram(Ctx.PulseStream, Ctx.Hw);
  if (!Stats)
    return Stats.status();
  Ctx.Stats = *Stats;
  Ctx.HasStats = true;
  return Status::success();
}
