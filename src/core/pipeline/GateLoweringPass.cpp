//===- core/pipeline/GateLoweringPass.cpp - Gate lowering pass ------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/pipeline/GateLoweringPass.h"

#include "fpqa/Device.h"

#include <algorithm>
#include <cmath>

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;
using circuit::Gate;
using circuit::GateKind;
using fpqa::FpqaDevice;
using qasm::Annotation;
using sat::Clause;
using sat::Literal;

namespace {

constexpr double Pi = 3.14159265358979323846;

/// A rotation angle that is Coeff * (gamma or beta) when Parameterised —
/// every coefficient the emitter uses is an exact power of two, so the
/// product is bit-identical to the former inline expressions (Gamma / 4,
/// -Gamma / 2, 2 * Beta, ...) and can be re-substituted by the
/// program-template cache (see AngleSlot).
struct ParamAngle {
  double Value = 0;
  double Coeff = 0;
  AngleSlot::Param Dep = AngleSlot::Param::Gamma;
  bool Parameterised = false;
};

/// Executes the planned movement and lowers the clause gates. All
/// decisions were taken by the planning passes; this class only tracks the
/// continuous column/row positions needed to emit correct shuttle offsets
/// (including bump cascades) and the device state machine validation.
class Emitter {
public:
  explicit Emitter(CompilationContext &Ctx)
      : Ctx(Ctx), Formula(*Ctx.Formula), Device(Ctx.Hw) {
    QubitColumn.assign(Formula.numVariables(), -1);
    QubitColumnEpoch.assign(Formula.numVariables(), 0);
  }

  Status run();

private:
  ParamAngle gammaAngle(double Coeff) const {
    return {Coeff * Ctx.Options.Qaoa.Gamma, Coeff, AngleSlot::Param::Gamma,
            true};
  }
  ParamAngle betaAngle(double Coeff) const {
    return {Coeff * Ctx.Options.Qaoa.Beta, Coeff, AngleSlot::Param::Beta,
            true};
  }

  // --- Emission primitives ---------------------------------------------
  Status pulse(Annotation A);
  void stmt(const Gate &G);
  /// Emits a local Raman pulse plus the matching logical 1-qubit gate.
  Status ramanGate(int Qubit, GateKind Kind, ParamAngle Angle = {});
  /// Emits a global Raman pulse plus one logical gate per qubit.
  Status globalRaman(GateKind Kind, ParamAngle Angle = {});

  // --- Movement ----------------------------------------------------------
  Status moveColumnTo(int Column, double X);
  Status shuttleRowTo(double Y);
  Status transferHome(int Qubit, int Column);
  Status transferSite(const ClausePlan &CP);

  // --- Batched movement (Algorithm 2 parallel shuttle sets) --------------
  /// Stages a column move in memory: updates the ColX mirror with exactly
  /// the bump-cascade semantics of moveColumnTo, but emits nothing. The
  /// net displacements accumulate until flushColumnBatch() turns them into
  /// ONE parallel multi-column @shuttle — the whole AOD step the paper's
  /// Algorithm 2 performs at once, instead of O(moves) cascading pulses.
  void planColumnTo(int Column, double X);
  /// Records \p Column's pre-batch position on first touch.
  void touchColumn(int Column);
  /// Emits the staged net moves as one @shuttle annotation (single-column
  /// form when only one column moved) and closes the batch. Columns whose
  /// staged moves cancelled out are skipped.
  Status flushColumnBatch();

  // --- Program structure -------------------------------------------------
  Status emitSetup();
  Status emitColor(int Color, const BoundarySchedule &Boundary);
  /// Order-preserving parallel load/unload rounds over (qubit, column)
  /// pairs sorted by column (Algorithm 2).
  Status emitHomeRounds(std::vector<Slot> Atoms);
  /// Executes a planned colour boundary: unload, load, then place all
  /// columns on their scheduled targets.
  Status emitColorBoundary(ColorPlan &Plan, const BoundarySchedule &B);
  Status emitFinalUnload();
  Status emitCompressedGates(const ColorPlan &Plan, int Color);
  Status emitLadderGates(const ColorPlan &Plan, int Color);
  Status emitPolarityConjugation(const ColorPlan &Plan);
  Status emitPairPhase(const ColorPlan &Plan);
  Status emitRzzLadderStep(const std::vector<std::pair<int, int>> &Pairs,
                           const std::vector<ParamAngle> &Thetas);
  Status emitCxStep(const std::vector<std::pair<int, int>> &Pairs);

  const Clause &clauseOf(const ClausePlan &CP) const {
    return Formula.clause(CP.ClauseIndex);
  }

  CompilationContext &Ctx;
  const sat::CnfFormula &Formula;
  FpqaDevice Device;

  std::vector<double> ColX; ///< column position mirror
  double RowYPos = 0;

  /// Open-batch staging state (see planColumnTo/flushColumnBatch).
  /// PreBatchX holds each touched column's position when the batch opened;
  /// the epoch array makes per-batch reset O(touched), not O(columns).
  std::vector<double> PreBatchX;
  std::vector<uint32_t> TouchedEpoch;
  uint32_t BatchEpoch = 1;
  std::vector<int> TouchedColumns;

  qasm::WqasmProgram Program;
  std::vector<Annotation> Pending; ///< annotations awaiting next statement

  /// Parameterised angles inside Pending, resolved to final AngleSlots
  /// (with the flushing statement's index) by stmt().
  struct PendingAngle {
    size_t AnnIdx;
    AngleSlot::Field Where;
    double Coeff;
    AngleSlot::Param Dep;
  };
  std::vector<PendingAngle> PendingAngles;

  /// Epoch-tagged qubit -> column index for the current boundary; avoids
  /// both a per-boundary reset and the former clauses x slots scan.
  std::vector<int> QubitColumn;
  std::vector<uint32_t> QubitColumnEpoch;
  uint32_t ColumnEpoch = 0;

  /// High-water annotation count of a statement flush, used to pre-size
  /// Pending for the next boundary's movement burst.
  size_t PendingHint = 0;
};

Status Emitter::pulse(Annotation A) {
  if (Status S = Device.apply(A))
    return Status::error("codegen produced an invalid instruction: " +
                         S.message());
  Pending.push_back(std::move(A));
  return Status::success();
}

void Emitter::stmt(const Gate &G) {
  uint32_t StmtIdx = static_cast<uint32_t>(Program.Statements.size());
  // Hand the whole buffer to the flushing statement (O(1) swap — each
  // annotation is only ever written once, where it ends up). The next
  // boundary pre-sizes the fresh buffer from PendingHint, so the burst of
  // a movement cascade does not regrow it from scratch either.
  PendingHint = std::max(PendingHint, Pending.size());
  Program.Statements.push_back(qasm::GateStatement{G, {}});
  Program.Statements.back().Annotations.swap(Pending);
  for (const PendingAngle &P : PendingAngles)
    Ctx.AngleSlots.push_back({StmtIdx, static_cast<uint32_t>(P.AnnIdx),
                              P.Where, P.Dep, P.Coeff});
  PendingAngles.clear();
}

Status Emitter::ramanGate(int Qubit, GateKind Kind, ParamAngle Angle) {
  double X = 0, Y = 0, Z = 0;
  Gate G;
  AngleSlot::Field AnnField = AngleSlot::Field::AnnotationX;
  switch (Kind) {
  case GateKind::X:
    X = Pi;
    G = Gate(GateKind::X, {Qubit});
    break;
  case GateKind::H:
    Y = -Pi / 2;
    Z = Pi;
    G = Gate(GateKind::H, {Qubit});
    break;
  case GateKind::RX:
    X = Angle.Value;
    G = Gate(GateKind::RX, {Qubit}, {Angle.Value});
    break;
  case GateKind::RZ:
    Z = Angle.Value;
    G = Gate(GateKind::RZ, {Qubit}, {Angle.Value});
    AnnField = AngleSlot::Field::AnnotationZ;
    break;
  default:
    assert(false && "unsupported Raman gate kind");
  }
  bool Record = Ctx.CollectAngleSlots && Angle.Parameterised;
  if (Record)
    PendingAngles.push_back({Pending.size(), AnnField, Angle.Coeff,
                             Angle.Dep});
  if (Status S = pulse(Annotation::ramanLocal(Qubit, X, Y, Z)))
    return S;
  stmt(G);
  if (Record)
    Ctx.AngleSlots.push_back(
        {static_cast<uint32_t>(Program.Statements.size() - 1), 0,
         AngleSlot::Field::GateParam0, Angle.Dep, Angle.Coeff});
  return Status::success();
}

Status Emitter::globalRaman(GateKind Kind, ParamAngle Angle) {
  double X = 0, Y = 0, Z = 0;
  AngleSlot::Field AnnField = AngleSlot::Field::AnnotationX;
  switch (Kind) {
  case GateKind::H:
    Y = -Pi / 2;
    Z = Pi;
    break;
  case GateKind::RX:
    X = Angle.Value;
    break;
  case GateKind::RZ:
    Z = Angle.Value;
    AnnField = AngleSlot::Field::AnnotationZ;
    break;
  default:
    assert(false && "unsupported global Raman gate kind");
  }
  bool Record = Ctx.CollectAngleSlots && Angle.Parameterised;
  if (Record)
    PendingAngles.push_back({Pending.size(), AnnField, Angle.Coeff,
                             Angle.Dep});
  if (Status S = pulse(Annotation::ramanGlobal(X, Y, Z)))
    return S;
  for (int Q = 0; Q < Formula.numVariables(); ++Q) {
    Gate G = Kind == GateKind::H ? Gate(GateKind::H, {Q})
                                 : Gate(Kind, {Q}, {Angle.Value});
    stmt(G);
    if (Record)
      Ctx.AngleSlots.push_back(
          {static_cast<uint32_t>(Program.Statements.size() - 1), 0,
           AngleSlot::Field::GateParam0, Angle.Dep, Angle.Coeff});
  }
  return Status::success();
}

Status Emitter::moveColumnTo(int Column, double X) {
  assert(Column >= 0 && Column < Ctx.NumColumns &&
         "column index out of range");
  assert(TouchedColumns.empty() &&
         "single-column move while a staged batch is open");
  double Gap = Ctx.Options.Geometry.BumpGap;
  if (std::abs(ColX[Column] - X) < 1e-9)
    return Status::success();
  // The epsilon keeps exactly-Gap-spaced park targets from triggering
  // spurious displacement of an already-placed neighbour.
  if (X > ColX[Column]) {
    if (Column + 1 < Ctx.NumColumns && ColX[Column + 1] < X + Gap - 1e-7)
      if (Status S = moveColumnTo(Column + 1, X + Gap))
        return S;
  } else {
    if (Column > 0 && ColX[Column - 1] > X - Gap + 1e-7)
      if (Status S = moveColumnTo(Column - 1, X - Gap))
        return S;
  }
  if (Status S =
          pulse(Annotation::shuttle(/*Row=*/false, Column, X - ColX[Column])))
    return S;
  ColX[Column] = X;
  return Status::success();
}

void Emitter::touchColumn(int Column) {
  if (TouchedEpoch[Column] != BatchEpoch) {
    TouchedEpoch[Column] = BatchEpoch;
    PreBatchX[Column] = ColX[Column];
    TouchedColumns.push_back(Column);
  }
}

void Emitter::planColumnTo(int Column, double X) {
  assert(Column >= 0 && Column < Ctx.NumColumns &&
         "column index out of range");
  double Gap = Ctx.Options.Geometry.BumpGap;
  if (std::abs(ColX[Column] - X) < 1e-9)
    return;
  // Same displacement-cascade decisions as moveColumnTo (including the
  // epsilon that keeps exactly-Gap-spaced park targets from spurious
  // bumps) — only staged instead of emitted.
  if (X > ColX[Column]) {
    if (Column + 1 < Ctx.NumColumns && ColX[Column + 1] < X + Gap - 1e-7)
      planColumnTo(Column + 1, X + Gap);
  } else {
    if (Column > 0 && ColX[Column - 1] > X - Gap + 1e-7)
      planColumnTo(Column - 1, X - Gap);
  }
  touchColumn(Column);
  ColX[Column] = X;
}

Status Emitter::flushColumnBatch() {
  std::sort(TouchedColumns.begin(), TouchedColumns.end());
  std::vector<int> Indices;
  std::vector<double> Offsets;
  Indices.reserve(TouchedColumns.size());
  Offsets.reserve(TouchedColumns.size());
  for (int C : TouchedColumns) {
    double Delta = ColX[C] - PreBatchX[C];
    if (std::abs(Delta) < 1e-9) {
      // Net-zero move (a bump cancelled by a later move): restore the
      // exact pre-batch coordinate so the mirror cannot drift.
      ColX[C] = PreBatchX[C];
      continue;
    }
    Indices.push_back(C);
    Offsets.push_back(Delta);
  }
  TouchedColumns.clear();
  ++BatchEpoch;
  if (Indices.empty())
    return Status::success();
  // The whole batch is one AOD step. The device validates the endpoint
  // configuration; with start and end both ordered, the simultaneous
  // linear motion in between cannot cross columns.
  if (Indices.size() == 1)
    return pulse(Annotation::shuttle(/*Row=*/false, Indices[0], Offsets[0]));
  return pulse(
      Annotation::shuttleParallel(/*Rows=*/false, std::move(Indices),
                                  std::move(Offsets)));
}

Status Emitter::shuttleRowTo(double Y) {
  if (std::abs(RowYPos - Y) < 1e-9)
    return Status::success();
  if (Status S = pulse(Annotation::shuttle(/*Row=*/true, 0, Y - RowYPos)))
    return S;
  RowYPos = Y;
  return Status::success();
}

Status Emitter::transferHome(int Qubit, int Column) {
  // Home trap index equals the qubit id by construction; the transfer
  // direction is implied by which trap is occupied.
  return pulse(Annotation::transfer(Qubit, Column, 0));
}

Status Emitter::transferSite(const ClausePlan &CP) {
  return pulse(Annotation::transfer(CP.TargetTrap, CP.ColTarget, 0));
}

Status Emitter::emitSetup() {
  const Layout &L = Ctx.Options.Geometry;
  if (Status S = pulse(Annotation::slm(Ctx.SlmTraps)))
    return S;
  if (Ctx.NumColumns > 0) {
    std::vector<double> Xs;
    for (int C = 0; C < Ctx.NumColumns; ++C)
      Xs.push_back(-L.ParkSpacing * (Ctx.NumColumns - C));
    ColX = Xs;
    PreBatchX.assign(Ctx.NumColumns, 0);
    TouchedEpoch.assign(Ctx.NumColumns, 0);
    RowYPos = L.PickupRowY;
    if (Status S = pulse(Annotation::aod(Xs, {RowYPos})))
      return S;
  }
  for (int Q = 0; Q < Formula.numVariables(); ++Q)
    if (Status S = pulse(Annotation::bindSlm(Q, Q)))
      return S;
  return Status::success();
}

/// Partitions \p Atoms into order-preserving rounds and, per round, aligns
/// each column with its atom's home trap and fires one parallel transfer
/// batch. This is Algorithm 2 (§5.3): atoms whose order along the AOD row
/// matches their order at the destination shuttle together; the rest wait
/// for a later round. Works symmetrically for loading (homes -> row) and
/// unloading (row -> homes); the transfer direction follows occupancy.
Status Emitter::emitHomeRounds(std::vector<Slot> Atoms) {
  const Layout &L = Ctx.Options.Geometry;
  std::sort(Atoms.begin(), Atoms.end(),
            [](const Slot &A, const Slot &B) { return A.Column < B.Column; });
  // Partition into the order-preserving rounds. First-fit placement onto
  // the round tails is equivalent to the former repeated greedy
  // maximal-increasing-subsequence extraction (an element lands in round
  // r exactly when it breaks the chains of rounds 0..r-1), and the tails
  // are non-increasing across rounds, so each element binary-searches its
  // round: O(k log k) instead of O(k x rounds) re-scans.
  std::vector<std::vector<Slot>> Rounds;
  std::vector<double> Tails; ///< last home x per round, non-increasing
  for (const Slot &S : Atoms) {
    double HomeX = L.homePosition(S.Qubit).X;
    size_t R =
        std::lower_bound(Tails.begin(), Tails.end(), HomeX,
                         [](double Tail, double H) { return Tail >= H; }) -
        Tails.begin();
    if (R == Rounds.size()) {
      Rounds.emplace_back();
      Tails.push_back(HomeX);
    } else {
      Tails[R] = HomeX;
    }
    Rounds[R].push_back(S);
  }
  for (const std::vector<Slot> &Round : Rounds) {
    // Stage every column move of the round and emit them as ONE parallel
    // multi-column shuttle. A bump cascade from a later staged move can
    // displace an earlier round column, so iterate the staging to a
    // simultaneous fixpoint first (homes sit HomeSpacing apart, far above
    // BumpGap, so this settles immediately in practice).
    bool AllAligned = false;
    for (int Sweep = 0; Sweep < 3 && !AllAligned; ++Sweep) {
      for (const Slot &S : Round)
        planColumnTo(S.Column, L.homePosition(S.Qubit).X);
      AllAligned = true;
      for (const Slot &S : Round)
        AllAligned &=
            std::abs(ColX[S.Column] - L.homePosition(S.Qubit).X) < 1e-9;
    }
    if (AllAligned) {
      // One AOD step, then one parallel transfer batch.
      if (Status St = flushColumnBatch())
        return St;
      for (const Slot &S : Round)
        if (Status St = transferHome(S.Qubit, S.Column))
          return St;
      continue;
    }
    // Pathological spacing (no simultaneous alignment): fall back to
    // interleaved move+transfer — each column is on its home at its own
    // transfer instant, like the pre-batching emitter.
    for (const Slot &S : Round) {
      planColumnTo(S.Column, L.homePosition(S.Qubit).X);
      if (Status St = flushColumnBatch())
        return St;
      if (Status St = transferHome(S.Qubit, S.Column))
        return St;
    }
  }
  return Status::success();
}

Status Emitter::emitFinalUnload() {
  if (Ctx.FinalUnload.empty())
    return Status::success();
  Pending.reserve(PendingHint);
  if (Status S = shuttleRowTo(Ctx.Options.Geometry.PickupRowY))
    return S;
  return emitHomeRounds(Ctx.FinalUnload);
}

Status Emitter::emitColorBoundary(ColorPlan &Plan,
                                  const BoundarySchedule &B) {
  if (B.Empty)
    return Status::success();
  Pending.reserve(PendingHint);
  if (B.NeedPickupShuttle)
    if (Status S = shuttleRowTo(Ctx.Options.Geometry.PickupRowY))
      return S;
  if (Status S = emitHomeRounds(B.ToUnload))
    return S;
  if (Status S = emitHomeRounds(B.ToLoad))
    return S;

  // Record the scheduled assignment on the plan. An epoch-tagged
  // qubit -> column index makes this O(slots + clauses) per boundary
  // instead of the former clauses x slots scan.
  int NumSlots = static_cast<int>(Plan.Slots.size());
  ++ColumnEpoch;
  for (int I = 0; I < NumSlots; ++I) {
    Plan.Slots[I].Column = B.SlotColumn[I];
    int Q = Plan.Slots[I].Qubit;
    QubitColumn[Q] = B.SlotColumn[I];
    QubitColumnEpoch[Q] = ColumnEpoch;
  }
  auto ColOf = [&](int Q, int Fallback) {
    return Q >= 0 && QubitColumnEpoch[Q] == ColumnEpoch ? QubitColumn[Q]
                                                        : Fallback;
  };
  for (ClausePlan &CP : Plan.Clauses) {
    CP.ColLeft = ColOf(CP.Left, CP.ColLeft);
    CP.ColTarget = ColOf(CP.Target, CP.ColTarget);
    CP.ColRight = ColOf(CP.Right, CP.ColRight);
  }

  // Place every column on its scheduled target in ONE parallel AOD step.
  // The scheduler guarantees targets ascending with >= BumpGap spacing
  // (the invariant the former per-column sweep relied on); under it a
  // staged rightward move can only bump a not-yet-staged column at most
  // onto its own target and a leftward move never reaches back to a
  // staged one, so one increasing staging sweep lands every column and
  // the whole boundary flushes as a single batch. Irregular targets would
  // be a scheduler bug — reject them instead of keeping the dead
  // multi-sweep fallback.
  const double Gap = Ctx.Options.Geometry.BumpGap;
  for (int C = 0; C + 1 < Ctx.NumColumns; ++C)
    if (B.ColumnTargets[C + 1] - B.ColumnTargets[C] < Gap - 1e-9)
      return Status::error(
          "scheduled column targets are not monotone with BumpGap "
          "spacing; ShuttleSchedulingPass must produce them pre-monotone");
  for (int C = 0; C < Ctx.NumColumns; ++C)
    planColumnTo(C, B.ColumnTargets[C]);
#ifndef NDEBUG
  for (int C = 0; C < Ctx.NumColumns; ++C)
    assert(std::abs(ColX[C] - B.ColumnTargets[C]) < 1e-9 &&
           "monotone staging sweep left a column off target");
#endif
  return flushColumnBatch();
}

Status Emitter::emitPolarityConjugation(const ColorPlan &Plan) {
  for (const ClausePlan &CP : Plan.Clauses)
    for (Literal Lit : clauseOf(CP))
      if (!Lit.isNegated())
        if (Status S = ramanGate(Lit.variable() - 1, GateKind::X))
          return S;
  return Status::success();
}

/// Emits one RZZ ladder step shared by every listed pair: H on the second
/// qubit, a global Rydberg CZ pulse, H-RZ-H, a second CZ pulse, H. All
/// pairs must already be the only atom groups inside the blockade radius.
Status Emitter::emitRzzLadderStep(
    const std::vector<std::pair<int, int>> &Pairs,
    const std::vector<ParamAngle> &Thetas) {
  assert(Pairs.size() == Thetas.size() && "one angle per pair");
  if (Pairs.empty())
    return Status::success();
  for (const auto &[A, B] : Pairs) {
    (void)A;
    if (Status S = ramanGate(B, GateKind::H))
      return S;
  }
  if (Status S = pulse(Annotation::rydberg()))
    return S;
  for (const auto &[A, B] : Pairs)
    stmt(Gate(GateKind::CZ, {A, B}));
  for (size_t I = 0; I < Pairs.size(); ++I) {
    int B = Pairs[I].second;
    if (Status S = ramanGate(B, GateKind::H))
      return S;
    if (Status S = ramanGate(B, GateKind::RZ, Thetas[I]))
      return S;
    if (Status S = ramanGate(B, GateKind::H))
      return S;
  }
  if (Status S = pulse(Annotation::rydberg()))
    return S;
  for (const auto &[A, B] : Pairs)
    stmt(Gate(GateKind::CZ, {A, B}));
  for (const auto &[A, B] : Pairs) {
    (void)A;
    if (Status S = ramanGate(B, GateKind::H))
      return S;
  }
  return Status::success();
}

/// Emits one CX layer shared by every listed (control, target) pair:
/// H(target), global Rydberg CZ, H(target).
Status Emitter::emitCxStep(const std::vector<std::pair<int, int>> &Pairs) {
  if (Pairs.empty())
    return Status::success();
  for (const auto &[C, T] : Pairs) {
    (void)C;
    if (Status S = ramanGate(T, GateKind::H))
      return S;
  }
  if (Status S = pulse(Annotation::rydberg()))
    return S;
  for (const auto &[C, T] : Pairs)
    stmt(Gate(GateKind::CZ, {C, T}));
  for (const auto &[C, T] : Pairs) {
    (void)C;
    if (Status S = ramanGate(T, GateKind::H))
      return S;
  }
  return Status::success();
}

/// Shared pair phase: with the row lifted clear of the targets, every
/// 3-literal clause runs its control-pair RZZ ladder and every 2-literal
/// clause runs its whole pair ladder; all CZs ride the same two global
/// Rydberg pulses. Leaves the row lifted.
Status Emitter::emitPairPhase(const ColorPlan &Plan) {
  const Layout &L = Ctx.Options.Geometry;
  std::vector<std::pair<int, int>> Pairs;
  std::vector<ParamAngle> Thetas;
  for (const ClausePlan &CP : Plan.Clauses) {
    if (CP.Width < 2)
      continue;
    Pairs.push_back({CP.Left, CP.Right});
    Thetas.push_back(CP.Width == 3 ? gammaAngle(0.25) : gammaAngle(0.5));
  }
  if (Pairs.empty())
    return Status::success();

  // Bring 2-literal pairs together; lift the row away from the targets.
  for (const ClausePlan &CP : Plan.Clauses)
    if (CP.Width == 2)
      if (Status S = moveColumnTo(CP.ColLeft, CP.SiteX))
        return S;
  if (Status S = shuttleRowTo(RowYPos + L.CzLift))
    return S;

  if (Status S = emitRzzLadderStep(Pairs, Thetas))
    return S;

  // Separate the 2-literal pairs again.
  for (const ClausePlan &CP : Plan.Clauses)
    if (CP.Width == 2)
      if (Status S =
              moveColumnTo(CP.ColLeft, CP.SiteX - 2 * L.TriangleHalfWidth))
        return S;
  return Status::success();
}

Status Emitter::emitCompressedGates(const ColorPlan &Plan, int Color) {
  const Layout &L = Ctx.Options.Geometry;

  if (Status S = emitPolarityConjugation(Plan))
    return S;

  bool AnyTriple = false;
  for (const ClausePlan &CP : Plan.Clauses)
    AnyTriple |= CP.Width == 3;

  if (AnyTriple) {
    if (Status S = shuttleRowTo(L.gateRowY(Color)))
      return S;
    // Drop targets into their zone SLM traps, forming the triangles.
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        if (Status S = transferSite(CP))
          return S;
    // H(target), then the CCZ sandwich with RX(g/2) in the middle.
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        if (Status S = ramanGate(CP.Target, GateKind::H))
          return S;
    if (Status S = pulse(Annotation::rydberg()))
      return S;
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        stmt(Gate(GateKind::CCZ, {CP.Left, CP.Target, CP.Right}));
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        if (Status S = ramanGate(CP.Target, GateKind::RX, gammaAngle(0.5)))
          return S;
    if (Status S = pulse(Annotation::rydberg()))
      return S;
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        stmt(Gate(GateKind::CCZ, {CP.Left, CP.Target, CP.Right}));
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        if (Status S = ramanGate(CP.Target, GateKind::H))
          return S;
  }

  // Control-pair ladders (and complete 2-literal clauses) with the row
  // lifted so targets stay out of the blockade radius.
  if (Status S = emitPairPhase(Plan))
    return S;

  // Single-qubit residues.
  for (const ClausePlan &CP : Plan.Clauses) {
    switch (CP.Width) {
    case 1:
      if (Status S = ramanGate(CP.Target, GateKind::RZ, gammaAngle(-1.0)))
        return S;
      break;
    case 2:
      if (Status S = ramanGate(CP.Left, GateKind::RZ, gammaAngle(-0.5)))
        return S;
      if (Status S = ramanGate(CP.Right, GateKind::RZ, gammaAngle(-0.5)))
        return S;
      break;
    case 3:
      if (Status S = ramanGate(CP.Left, GateKind::RZ, gammaAngle(-0.25)))
        return S;
      if (Status S = ramanGate(CP.Right, GateKind::RZ, gammaAngle(-0.25)))
        return S;
      if (Status S = ramanGate(CP.Target, GateKind::RZ, gammaAngle(-0.5)))
        return S;
      break;
    }
  }

  // Retrieve targets back onto the row.
  if (AnyTriple) {
    if (Status S = shuttleRowTo(L.gateRowY(Color)))
      return S;
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        if (Status S = transferSite(CP))
          return S;
  }

  return emitPolarityConjugation(Plan);
}

/// Uncompressed lowering (§5.4 fallback / ablation): each 3-literal clause
/// is a pure CZ-ladder network. The three ZZ pair terms execute in the
/// configurations LT (right control shifted away), RT (left control
/// shifted away) and LR (row lifted); the cubic term is a CX ladder across
/// configurations LT-RT-LT.
Status Emitter::emitLadderGates(const ColorPlan &Plan, int Color) {
  const Layout &L = Ctx.Options.Geometry;

  if (Status S = emitPolarityConjugation(Plan))
    return S;

  std::vector<const ClausePlan *> Triples;
  for (const ClausePlan &CP : Plan.Clauses)
    if (CP.Width == 3)
      Triples.push_back(&CP);

  auto ShiftRight = [&](bool Away) {
    for (const ClausePlan *CP : Triples)
      if (Status S = moveColumnTo(CP->ColRight,
                                  CP->SiteX + L.TriangleHalfWidth +
                                      (Away ? L.PairShift : 0.0)))
        return S;
    return Status::success();
  };
  auto ShiftLeft = [&](bool Away) {
    for (const ClausePlan *CP : Triples)
      if (Status S = moveColumnTo(CP->ColLeft,
                                  CP->SiteX - L.TriangleHalfWidth -
                                      (Away ? L.PairShift : 0.0)))
        return S;
    return Status::success();
  };

  if (!Triples.empty()) {
    if (Status S = shuttleRowTo(L.gateRowY(Color)))
      return S;
    for (const ClausePlan *CP : Triples)
      if (Status S = transferSite(*CP))
        return S;

    std::vector<std::pair<int, int>> Pairs;
    std::vector<ParamAngle> Thetas;

    // Config LT: (Left, Target) pairs interact; Right shifted away.
    if (Status S = ShiftRight(/*Away=*/true))
      return S;
    Pairs.clear();
    Thetas.clear();
    for (const ClausePlan *CP : Triples) {
      Pairs.push_back({CP->Left, CP->Target});
      Thetas.push_back(gammaAngle(0.25));
    }
    if (Status S = emitRzzLadderStep(Pairs, Thetas))
      return S;

    // Config RT: (Target, Right) pairs; Left shifted away.
    if (Status S = ShiftRight(/*Away=*/false))
      return S;
    if (Status S = ShiftLeft(/*Away=*/true))
      return S;
    Pairs.clear();
    Thetas.clear();
    for (const ClausePlan *CP : Triples) {
      Pairs.push_back({CP->Target, CP->Right});
      Thetas.push_back(gammaAngle(0.25));
    }
    if (Status S = emitRzzLadderStep(Pairs, Thetas))
      return S;
    if (Status S = ShiftLeft(/*Away=*/false))
      return S;
  }

  // Config LR via the shared pair phase (also completes 2-literal
  // clauses); leaves the row lifted, so bring it back for the cubic part.
  if (Status S = emitPairPhase(Plan))
    return S;

  if (!Triples.empty()) {
    if (Status S = shuttleRowTo(L.gateRowY(Color)))
      return S;

    // Cubic CX ladder: CX(L,T) CX(T,R) RZ(R) CX(T,R) CX(L,T).
    std::vector<std::pair<int, int>> CxLT, CxTR;
    for (const ClausePlan *CP : Triples) {
      CxLT.push_back({CP->Left, CP->Target});
      CxTR.push_back({CP->Target, CP->Right});
    }
    if (Status S = ShiftRight(/*Away=*/true))
      return S;
    if (Status S = emitCxStep(CxLT))
      return S;
    if (Status S = ShiftRight(/*Away=*/false))
      return S;
    if (Status S = ShiftLeft(/*Away=*/true))
      return S;
    if (Status S = emitCxStep(CxTR))
      return S;
    for (const ClausePlan *CP : Triples)
      if (Status S = ramanGate(CP->Right, GateKind::RZ, gammaAngle(-0.25)))
        return S;
    if (Status S = emitCxStep(CxTR))
      return S;
    if (Status S = ShiftLeft(/*Away=*/false))
      return S;
    if (Status S = ShiftRight(/*Away=*/true))
      return S;
    if (Status S = emitCxStep(CxLT))
      return S;
    if (Status S = ShiftRight(/*Away=*/false))
      return S;
  }

  // Single-qubit terms: ladder form uses -g/4 on all three qubits.
  for (const ClausePlan &CP : Plan.Clauses) {
    switch (CP.Width) {
    case 1:
      if (Status S = ramanGate(CP.Target, GateKind::RZ, gammaAngle(-1.0)))
        return S;
      break;
    case 2:
      if (Status S = ramanGate(CP.Left, GateKind::RZ, gammaAngle(-0.5)))
        return S;
      if (Status S = ramanGate(CP.Right, GateKind::RZ, gammaAngle(-0.5)))
        return S;
      break;
    case 3:
      if (Status S = ramanGate(CP.Left, GateKind::RZ, gammaAngle(-0.25)))
        return S;
      if (Status S = ramanGate(CP.Target, GateKind::RZ, gammaAngle(-0.25)))
        return S;
      if (Status S = ramanGate(CP.Right, GateKind::RZ, gammaAngle(-0.25)))
        return S;
      break;
    }
  }

  // Retrieve targets back onto the row.
  if (!Triples.empty()) {
    if (Status S = shuttleRowTo(L.gateRowY(Color)))
      return S;
    for (const ClausePlan *CP : Triples)
      if (Status S = transferSite(*CP))
        return S;
  }

  return emitPolarityConjugation(Plan);
}

Status Emitter::emitColor(int Color, const BoundarySchedule &Boundary) {
  ColorPlan &Plan = Ctx.Plans[Color];
  if (Status S = emitColorBoundary(Plan, Boundary))
    return S;
  if (Ctx.Options.UseCompression)
    return emitCompressedGates(Plan, Color);
  return emitLadderGates(Plan, Color);
}

Status Emitter::run() {
  Program.NumQubits = Formula.numVariables();
  Program.NumBits = Ctx.Options.Measure ? Formula.numVariables() : 0;
  if (Status S = emitSetup())
    return S;
  if (Status S = globalRaman(GateKind::H))
    return S;
  size_t BoundaryIdx = 0;
  for (int Layer = 0; Layer < Ctx.Options.Qaoa.Layers; ++Layer) {
    for (int Color = 0; Color < Ctx.Coloring.numColors(); ++Color)
      if (Status S = emitColor(Color, Ctx.Boundaries[BoundaryIdx++]))
        return S;
    if (Status S = globalRaman(GateKind::RX, betaAngle(2.0)))
      return S;
  }
  // Park every atom back in its home trap so the program ends in the same
  // configuration it started from (and measurement happens in the SLM).
  if (Status S = emitFinalUnload())
    return S;
  if (Ctx.Options.Measure)
    for (int Q = 0; Q < Formula.numVariables(); ++Q)
      stmt(Gate(GateKind::Measure, {Q}));
  // Parameterised pulses are always followed by their statement, so none
  // can end up among the unpatched trailing annotations.
  assert(PendingAngles.empty() &&
         "parameterised angle left in trailing annotations");
  Program.TrailingAnnotations = std::move(Pending);
  Ctx.Program = std::move(Program);
  return Status::success();
}

} // namespace

Status GateLoweringPass::run(CompilationContext &Ctx) {
  if (Ctx.Boundaries.size() != static_cast<size_t>(Ctx.Options.Qaoa.Layers) *
                                   Ctx.Coloring.numColors())
    return Status::error("shuttle schedule does not cover the execution "
                         "order; run ShuttleSchedulingPass first");
  Ctx.AngleSlots.clear();
  Emitter E(Ctx);
  return E.run();
}

void GateLoweringPass::saveSections(const CompilationContext &Ctx,
                                    PassCacheEntryBuilder &Builder) const {
  Builder.Back.Program = Ctx.Program;
  Builder.Back.AngleSlots = Ctx.AngleSlots;
  Builder.SavedProgram = true;
}

bool GateLoweringPass::restoreSections(const PassCacheEntry &Entry,
                                       CompilationContext &Ctx) const {
  if (!Entry.Back)
    return false;
  Ctx.Program = Entry.Back->Program;
  patchProgramAngles(Ctx.Program, Entry.Back->AngleSlots,
                     Ctx.Options.Qaoa.Gamma, Ctx.Options.Qaoa.Beta);
  return true;
}
