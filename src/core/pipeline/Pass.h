//===- core/pipeline/Pass.h - Compilation pass interface -------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass interface of the FPQA pipeline. A pass reads the sections of
/// the CompilationContext produced by its predecessors and fills its own;
/// it must not depend on state outside the context, so pipelines can be
/// re-ordered, ablated, and driven concurrently over independent contexts.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_PASS_H
#define WEAVER_CORE_PIPELINE_PASS_H

#include "core/pipeline/CompilationContext.h"
#include "support/Status.h"

namespace weaver {
namespace core {
namespace pipeline {

/// One stage of the compilation pipeline.
class Pass {
public:
  virtual ~Pass() = default;

  /// Stable pass name used in diagnostics and timing records.
  virtual const char *name() const = 0;

  /// Runs the pass over \p Ctx. On failure the context is left in an
  /// unspecified (but destructible) state and the pipeline stops.
  virtual Status run(CompilationContext &Ctx) = 0;
};

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_PASS_H
