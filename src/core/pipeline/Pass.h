//===- core/pipeline/Pass.h - Compilation pass interface -------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass interface of the FPQA pipeline. A pass reads the sections of
/// the CompilationContext produced by its predecessors and fills its own;
/// it must not depend on state outside the context, so pipelines can be
/// re-ordered, ablated, and driven concurrently over independent contexts.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_PASS_H
#define WEAVER_CORE_PIPELINE_PASS_H

#include "core/pipeline/CompilationContext.h"
#include "core/pipeline/PassCache.h"
#include "support/Status.h"

namespace weaver {
namespace core {
namespace pipeline {

/// One stage of the compilation pipeline.
class Pass {
public:
  virtual ~Pass() = default;

  /// Stable pass name used in diagnostics and timing records.
  virtual const char *name() const = 0;

  /// Runs the pass over \p Ctx. On failure the context is left in an
  /// unspecified (but destructible) state and the pipeline stops.
  virtual Status run(CompilationContext &Ctx) = 0;

  // --- Memoisation hooks (see PassCache.h) ------------------------------
  // A pass declares its context sections cacheable by overriding this
  // pair. saveSections copies the sections the pass just produced into the
  // entry under construction; restoreSections writes the cached sections
  // back into the context and returns true, or returns false when the
  // entry does not carry the pass's tier — the pass then runs normally.
  // Passes that stay silent (the default) always run.

  /// Copies this pass's output sections into \p Builder. Called by
  /// PassManager immediately after a successful run() while a cache entry
  /// is being built (so later passes cannot have mutated the sections).
  virtual void saveSections(const CompilationContext &Ctx,
                            PassCacheEntryBuilder &Builder) const {
    (void)Ctx;
    (void)Builder;
  }

  /// Restores this pass's sections from \p Entry into \p Ctx; returns
  /// false when the entry lacks them (the pass must run instead).
  virtual bool restoreSections(const PassCacheEntry &Entry,
                               CompilationContext &Ctx) const {
    (void)Entry;
    (void)Ctx;
    return false;
  }
};

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_PASS_H
