//===- core/pipeline/ShuttleSchedulingPass.cpp - Shuttle planning ---------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/pipeline/ShuttleSchedulingPass.h"

#include <algorithm>
#include <cassert>

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;

namespace {

/// Simulated row occupancy threaded through the boundaries.
struct RowState {
  std::vector<int> AtomColumn; ///< qubit -> column on the row, or -1
  std::vector<int> ColumnAtom; ///< column -> qubit riding it, or -1
};

/// Plans one colour boundary against the current row occupancy and applies
/// its net effect to \p State. Mirrors the decision half of the former
/// Generator::emitColorBoundary exactly.
BoundarySchedule planBoundary(const ColorPlan &Plan,
                              const CompilationContext &Ctx,
                              RowState &State) {
  BoundarySchedule B;
  if (Plan.Slots.empty())
    return B;
  B.Empty = false;
  const Layout &L = Ctx.Options.Geometry;
  double Gap = L.BumpGap;
  int NumColumns = Ctx.NumColumns;
  int NumSlots = static_cast<int>(Plan.Slots.size());

  // Idle (atom-free) columns caught between two slot columns must park in
  // the physical gap between the slots' resting positions. Capacity[i] is
  // how many parked columns fit between slot i and slot i+1 (zero inside a
  // clause triangle, ~19 between sites).
  std::vector<int> Capacity(NumSlots, 0);
  for (int I = 0; I + 1 < NumSlots; ++I)
    Capacity[I] = std::max(
        0, static_cast<int>((Plan.Slots[I + 1].RestX - Plan.Slots[I].RestX) /
                            Gap) -
               1);

  // Select reusable atoms (Algorithm 2's order-preservation condition,
  // adapted to fixed column indices): a row atom keeps its column when
  // (a) the columns left/right of it suffice for the earlier/later slots,
  // and (b) the idle columns trapped between it and the previously kept
  // column fit into the physical slot gaps in between.
  std::vector<int> SlotColumn(NumSlots, -1);
  std::vector<bool> ColumnKept(NumColumns, false);
  if (Ctx.Options.ReuseAodAtoms) {
    int LastCol = -1, LastSlot = -1;
    for (int I = 0; I < NumSlots; ++I) {
      int Q = Plan.Slots[I].Qubit;
      int C = State.AtomColumn[Q];
      if (C < 0)
        continue;
      if (C < LastCol + (I - LastSlot) || C > NumColumns - (NumSlots - I))
        continue;
      if (LastSlot >= 0) {
        int Idle = (C - LastCol - 1) - (I - LastSlot - 1);
        int Room = 0;
        for (int T = LastSlot; T < I; ++T)
          Room += Capacity[T];
        if (Idle > Room)
          continue;
      }
      SlotColumn[I] = C;
      ColumnKept[C] = true;
      LastCol = C;
      LastSlot = I;
    }
  }

  // Unload every row atom that is not kept.
  for (int C = 0; C < NumColumns; ++C)
    if (State.ColumnAtom[C] != -1 && !ColumnKept[C])
      B.ToUnload.push_back({State.ColumnAtom[C], C, 0});
  bool NeedLoading = false;
  for (int I = 0; I < NumSlots; ++I)
    NeedLoading |= SlotColumn[I] == -1;
  B.NeedPickupShuttle = !B.ToUnload.empty() || NeedLoading;

  // Assign columns to the runs of unassigned slots.
  //  * A run that ends at a kept column distributes the idle columns the
  //    kept atom traps (quota-checked above) greedily into the earliest
  //    slot gaps, placing the new slots on the indices in between.
  //  * The head run (no kept column before it) right-aligns against the
  //    first kept column so all idle columns park on the unbounded left.
  //  * The tail run (no kept column after it) takes indices immediately
  //    after the last kept column so idles park on the unbounded right.
  for (int I = 0; I < NumSlots;) {
    if (SlotColumn[I] != -1) {
      ++I;
      continue;
    }
    int RunEnd = I; // one past the run of unassigned slots
    while (RunEnd < NumSlots && SlotColumn[RunEnd] == -1)
      ++RunEnd;
    int LastCol = I == 0 ? -1 : SlotColumn[I - 1];
    if (RunEnd == NumSlots) {
      // Tail (or no kept at all): consecutive indices after LastCol.
      for (int T = I; T < RunEnd; ++T)
        SlotColumn[T] = ++LastCol;
    } else if (I == 0) {
      // Head run: right-align against the first kept column.
      int KeptCol = SlotColumn[RunEnd];
      for (int T = RunEnd - 1, C = KeptCol - 1; T >= 0; --T, --C)
        SlotColumn[T] = C;
    } else {
      // Interior run bounded by kept columns on both sides: spread the
      // trapped idle columns into the gaps greedily, earliest first.
      int KeptCol = SlotColumn[RunEnd];
      int RunLen = RunEnd - I;
      int Idle = (KeptCol - LastCol - 1) - RunLen;
      int Cursor = LastCol;
      for (int T = I; T < RunEnd; ++T) {
        int G = std::min(Idle, Capacity[T - 1]);
        Cursor += G;
        Idle -= G;
        SlotColumn[T] = ++Cursor;
      }
      assert(Idle <= Capacity[RunEnd - 1] &&
             "interior idle columns exceed the final gap capacity");
    }
    for (int T = I; T < RunEnd; ++T) {
      assert(SlotColumn[T] >= 0 && SlotColumn[T] < NumColumns &&
             !ColumnKept[SlotColumn[T]] && "column assignment out of range");
      B.ToLoad.push_back(
          {Plan.Slots[T].Qubit, SlotColumn[T], Plan.Slots[T].RestX});
    }
    I = RunEnd;
  }
  B.SlotColumn = SlotColumn;

  // Compute an explicit target for EVERY column: slot columns rest at
  // their slot x; idle columns park left of the first slot, in the gaps
  // between slots, or right of the last slot. Targets ascend with index
  // and keep >= Gap spacing, so the placement sweep cannot trigger
  // displacement cascades.
  B.ColumnTargets.resize(NumColumns);
  int FirstSlotCol = SlotColumn[0], LastSlotCol = SlotColumn[NumSlots - 1];
  for (int C = FirstSlotCol - 1, K = 1; C >= 0; --C, ++K)
    B.ColumnTargets[C] = Plan.Slots[0].RestX - Gap * K;
  for (int C = LastSlotCol + 1, K = 1; C < NumColumns; ++C, ++K)
    B.ColumnTargets[C] = Plan.Slots[NumSlots - 1].RestX + Gap * K;
  {
    int SlotIdx = 0;
    double ParkBase = 0;
    int ParkRank = 0;
    for (int C = FirstSlotCol; C <= LastSlotCol; ++C) {
      if (SlotIdx < NumSlots && SlotColumn[SlotIdx] == C) {
        B.ColumnTargets[C] = Plan.Slots[SlotIdx].RestX;
        ParkBase = Plan.Slots[SlotIdx].RestX;
        ParkRank = 0;
        ++SlotIdx;
        continue;
      }
      B.ColumnTargets[C] = ParkBase + Gap * ++ParkRank;
    }
  }

  // Net occupancy effect: unloaded atoms leave the row; after loading the
  // row holds exactly the colour's slots on their assigned columns.
  for (const Slot &S : B.ToUnload) {
    State.ColumnAtom[S.Column] = -1;
    State.AtomColumn[S.Qubit] = -1;
  }
  for (const Slot &S : B.ToLoad) {
    State.AtomColumn[S.Qubit] = S.Column;
    State.ColumnAtom[S.Column] = S.Qubit;
  }
  return B;
}

} // namespace

Status ShuttleSchedulingPass::run(CompilationContext &Ctx) {
  RowState State;
  State.AtomColumn.assign(Ctx.Formula->numVariables(), -1);
  State.ColumnAtom.assign(Ctx.NumColumns, -1);

  int NumColors = Ctx.Coloring.numColors();
  Ctx.Boundaries.reserve(
      static_cast<size_t>(Ctx.Options.Qaoa.Layers) * NumColors);
  for (int Layer = 0; Layer < Ctx.Options.Qaoa.Layers; ++Layer)
    for (int Color = 0; Color < NumColors; ++Color)
      Ctx.Boundaries.push_back(planBoundary(Ctx.Plans[Color], Ctx, State));

  // Park every atom back in its home trap at the end of the program.
  for (int C = 0; C < Ctx.NumColumns; ++C)
    if (State.ColumnAtom[C] != -1)
      Ctx.FinalUnload.push_back({State.ColumnAtom[C], C, 0});
  return Status::success();
}
