//===- core/pipeline/ClauseColoringPass.cpp - Colouring pass --------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/pipeline/ClauseColoringPass.h"

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;

Status ClauseColoringPass::run(CompilationContext &Ctx) {
  if (!Ctx.Formula)
    return Status::error("compilation context has no formula");
  if (Ctx.HasColoring) {
    if (!Ctx.Coloring.isValid(*Ctx.Formula))
      return Status::error("supplied clause colouring is invalid: two "
                           "same-coloured clauses share a variable");
    return Status::success();
  }
  Ctx.Coloring = Ctx.UseDSatur ? colorClausesDSatur(*Ctx.Formula)
                               : colorClausesFirstFit(*Ctx.Formula);
  Ctx.HasColoring = true;
  return Status::success();
}

void ClauseColoringPass::saveSections(const CompilationContext &Ctx,
                                      PassCacheEntryBuilder &Builder) const {
  Builder.Front.Coloring = Ctx.Coloring;
  Builder.SavedColoring = true;
}

bool ClauseColoringPass::restoreSections(const PassCacheEntry &Entry,
                                         CompilationContext &Ctx) const {
  if (!Entry.Front)
    return false;
  Ctx.Coloring = Entry.Front->Coloring;
  Ctx.HasColoring = true;
  return true;
}
